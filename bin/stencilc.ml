(* stencilc: an mlir-opt-style driver for the shared stack.

   Reads a module in the generic textual format (or builds one of the
   built-in demo programs), runs a named pass pipeline or an explicit list
   of passes, and prints the result.  This is the "Open Earth Compiler"
   style entry point: stencil programs written directly at the stencil
   dialect level share the whole backend with the Devito and PSyclone
   frontends. *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let demo_module name =
  match name with
  | "heat2d" ->
      let g = Devito.Symbolic.grid ~dt: 0.1 [ 64; 64 ] in
      let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
      let eqn =
        Devito.Symbolic.eq (Devito.Symbolic.Dt u)
          Devito.Symbolic.(f 0.5 *: laplace u)
      in
      Some (snd (Devito.Operator.operator ~name: "heat2d" ~timesteps: 8 eqn))
  | "pw" ->
      Some
        (Psyclone.Codegen.compile
           (Psyclone.Benchkernels.pw_advection ~shape: [ 32; 32; 32 ]))
  | "traadv" ->
      Some
        (Psyclone.Codegen.compile
           (Psyclone.Benchkernels.tracer_advection ~iterations: 2
              ~shape: [ 16; 16; 16 ] ()))
  | _ -> None

let all_passes : (string * Ir.Pass.t) list =
  [
    ("canonicalize", Transforms.Canonicalize.pass);
    ("stencil-shape-inference", Core.Shape_inference.pass);
    ("cse", Transforms.Cse.pass);
    ("dce", Transforms.Dce.pass);
    ("loop-invariant-code-motion", Transforms.Licm.pass);
    ( "convert-stencil-to-loops",
      Core.Stencil_to_loops.pass ~style: Core.Stencil_to_loops.Sequential () );
    ( "convert-stencil-to-parallel-loops",
      Core.Stencil_to_loops.pass ~style: Core.Stencil_to_loops.Parallel_flat () );
    ( "convert-stencil-to-tiled-omp",
      Core.Stencil_to_loops.pass
        ~style: (Core.Stencil_to_loops.Tiled_omp [ 32; 32; 32 ]) () );
    ( "convert-stencil-to-gpu",
      Core.Stencil_to_loops.pass
        ~style:
          (Core.Stencil_to_loops.Gpu_launch
             { synchronous = true; managed = false })
        () );
    ("eliminate-redundant-swaps", Core.Swap_elim.pass);
    ("overlap-communication", Core.Overlap.pass);
    ("convert-dmp-to-mpi", Core.Dmp_to_mpi.pass);
    ("convert-mpi-to-func", Core.Mpi_to_func.pass);
    ( "convert-stencil-to-hls-initial",
      Core.Stencil_to_hls.pass ~mode: Core.Stencil_to_hls.Initial () );
    ( "convert-stencil-to-hls-optimized",
      Core.Stencil_to_hls.pass ~mode: Core.Stencil_to_hls.Optimized () );
  ]

let strategy_of_string = function
  | "1d" -> Core.Decomposition.Slice1d
  | "2d" -> Core.Decomposition.Slice2d
  | "3d" -> Core.Decomposition.Slice3d
  | s -> failwith ("unknown decomposition strategy: " ^ s)

let distribute_pass ~ranks ~strategy =
  Core.Distribute.pass
    (Core.Distribute.options ~ranks ~strategy: (strategy_of_string strategy) ())

(* --tile 8,8 -> [8; 8]; "" (the default) -> untiled. *)
let parse_tiles spec =
  if String.trim spec = "" then []
  else
    List.map
      (fun w ->
        match int_of_string_opt (String.trim w) with
        | Some n when n > 0 -> n
        | _ ->
            failwith
              ("--tile expects comma-separated positive ints, got: " ^ spec))
      (String.split_on_char ',' spec)

(* Execute the module end-to-end on an MPI substrate (--run-par/--run-sim):
   serial reference, distribute + lower, run, gather, compare. *)
let execute_distributed ~substrate ~ranks ~strategy ~stall_timeout ~trace_out
    ~report ~exec ~overlap ~tile ~threads m =
  (* [of_name] fails with the registered executor names spelled out. *)
  let executor = Interp.Executor.of_name exec in
  if threads < 1 then failwith "--threads-per-rank must be positive";
  (* Threads act on omp.parallel regions, which only the tiled lowering
     emits — so asking for threads without --tile defaults the tiling
     rather than silently running sequential regions. *)
  let tiles =
    match parse_tiles tile with
    | [] when threads > 1 -> [ 32; 32 ]
    | ts -> ts
  in
  (match report with
  | None | Some "text" | Some "json" -> ()
  | Some other ->
      failwith ("unknown report format: " ^ other ^ " (expected text or json)"));
  (* --report needs the event timeline, so it forces tracing on. *)
  let trace = trace_out <> None || report <> None in
  if trace then Obs.enable ();
  let r =
    Driver.Harness.run_distributed ~substrate
      ~strategy: (strategy_of_string strategy)
      ~stall_timeout_s: stall_timeout ~trace ~executor ~overlap ~tiles
      ~threads_per_rank: threads ~ranks m
  in
  Format.printf "substrate:  %s@." r.Driver.Harness.substrate_name;
  Format.printf "executor:   %s@." r.Driver.Harness.executor_name;
  Format.printf "overlap:    %s@."
    (if r.Driver.Harness.overlap then "on" else "off");
  Format.printf "tile:       %s@."
    (if tiles = [] then "off"
     else String.concat "x" (List.map string_of_int tiles));
  Format.printf "threads:    %d per rank@." threads;
  Format.printf "ranks:      %d (topology %s)@." r.Driver.Harness.ranks
    (String.concat "x" (List.map string_of_int r.Driver.Harness.grid));
  Format.printf "domain:     %s@."
    (String.concat "x" (List.map string_of_int r.Driver.Harness.domain));
  Format.printf "serial:     %.6f s@." r.Driver.Harness.serial_wall_s;
  Format.printf "distributed: %.6f s (speedup %.2fx)@." r.Driver.Harness.wall_s
    (r.Driver.Harness.serial_wall_s /. r.Driver.Harness.wall_s);
  Format.printf "traffic:    %d messages, %d bytes@."
    r.Driver.Harness.messages r.Driver.Harness.bytes;
  Format.printf "max abs diff vs serial: %g@."
    r.Driver.Harness.max_diff_vs_serial;
  (match (report, r.Driver.Harness.analysis) with
  | None, _ | _, None -> ()
  | Some "json", Some a -> print_string (Analysis.report_json a)
  | Some _, Some a -> Format.printf "%a" Analysis.pp_report a);
  (match trace_out with
  | Some path ->
      Obs.Trace.write_chrome_json path;
      Format.eprintf
        "// trace written to %s (load in Perfetto: https://ui.perfetto.dev)@."
        path
  | None -> ());
  if r.Driver.Harness.max_diff_vs_serial = 0. then 0
  else begin
    Format.eprintf "stencilc: distributed run diverged from serial@.";
    1
  end

(* --autotune: enumerate decomposition candidates for the module at a
   rank count, price each through the scale-out replay engine, print the
   scored table and the winner.  Purely symbolic — nothing executes. *)
let autotune ~ranks ~netmodel m =
  let model =
    match netmodel with
    | Some spec -> Scale.Netmodel.of_spec spec
    | None -> Scale.Netmodel.default
  in
  match Scale.Tune.tune ~model ~ranks m with
  | None ->
      Format.eprintf
        "stencilc: no valid decomposition for %d ranks (extents not \
         divisible?)@."
        ranks;
      1
  | Some ch ->
      Format.printf "auto-tune: %d ranks, model %s@." ranks
        (Scale.Netmodel.describe model);
      Format.printf "  %-34s %10s %10s %12s@." "candidate" "pred (s)"
        "msgs/step" "bytes/step";
      List.iter
        (fun (c : Scale.Tune.candidate) ->
          Format.printf "  %-34s %10.6f %10d %12d%s@."
            (Scale.Tune.candidate_name c)
            c.Scale.Tune.c_wall_s c.Scale.Tune.c_messages_per_step
            c.Scale.Tune.c_bytes_per_step
            (if c == ch.Scale.Tune.best then "  <- best" else ""))
        ch.Scale.Tune.considered;
      if ch.Scale.Tune.skipped > 0 then
        Format.printf "  (%d invalid candidate(s) skipped)@."
          ch.Scale.Tune.skipped;
      let b = ch.Scale.Tune.best in
      Format.printf
        "chosen: strategy=%s mode=%s overlap=%b grid=%s predicted=%.6f s@."
        (Core.Decomposition.strategy_name b.Scale.Tune.c_strategy)
        (match b.Scale.Tune.c_mode with
        | Core.Decomposition.Faces -> "faces"
        | Core.Decomposition.Diagonals -> "diagonals")
        b.Scale.Tune.c_overlap
        (String.concat "x" (List.map string_of_int b.Scale.Tune.c_grid))
        b.Scale.Tune.c_wall_s;
      0

(* --serve: answer newline-delimited compile/run requests from the
   process-wide artifact cache — on stdin/stdout by default, or as a
   multi-client daemon behind --socket PATH / --tcp PORT.  The run
   handler executes through the same Harness path as
   --run-sim/--run-par, so a served run and a CLI run are the same
   code. *)
let serve_handlers : Service.Serve.handlers =
  {
    Service.Serve.resolve_demo = demo_module;
    scheduler = None;
    run =
      Some
        (fun m (art : Service.Artifact.t) ~ranks ~substrate ~threads ->
          let strategy, overlap, tiles =
            match art.Service.Artifact.target with
            | Core.Pipeline.Distributed_cpu { strategy; overlap; tiles; _ } ->
                (strategy, overlap, tiles)
            | t ->
                failwith
                  ("run requires target=distributed-cpu, got "
                  ^ Core.Pipeline.target_name t)
          in
          let substrate =
            match substrate with
            | "par" -> Driver.Harness.Par
            | _ -> Driver.Harness.Sim
          in
          let executor =
            Interp.Executor.of_name art.Service.Artifact.executor_name
          in
          let r =
            Driver.Harness.run_distributed ~substrate ~strategy ~executor
              ~overlap ~tiles ~threads_per_rank: threads ~ranks m
          in
          [
            ("substrate", r.Driver.Harness.substrate_name);
            ( "grid",
              String.concat "x"
                (List.map string_of_int r.Driver.Harness.grid) );
            ("wall_ms", Printf.sprintf "%.3f" (r.Driver.Harness.wall_s *. 1000.));
            ( "serial_ms",
              Printf.sprintf "%.3f" (r.Driver.Harness.serial_wall_s *. 1000.)
            );
            ("messages", string_of_int r.Driver.Harness.messages);
            ("bytes", string_of_int r.Driver.Harness.bytes);
            ( "max_diff",
              Printf.sprintf "%g" r.Driver.Harness.max_diff_vs_serial );
          ]);
  }

(* Cache/store knobs shared by every serve mode (stdin, socket, tcp). *)
let configure_service ~store_dir ~store_max_mb ~cache_capacity ~cache_eviction =
  let eviction =
    match Service.Cache.eviction_of_string cache_eviction with
    | Some e -> e
    | None ->
        failwith
          ("unknown eviction policy: " ^ cache_eviction
         ^ " (expected fifo, lru or cost)")
  in
  Service.Artifact.set_policy ~capacity: cache_capacity ~eviction ();
  match store_dir with
  | None -> ()
  | Some dir ->
      let max_bytes =
        match store_max_mb with
        | Some mb when mb <= 0 -> failwith "--store-max-mb must be positive"
        | Some mb -> Some (mb * 1024 * 1024)
        | None -> None
      in
      Service.Artifact.set_store (Some (Service.Store.create ?max_bytes dir));
      (* Warm start: previously-seen digests answer without the pass
         pipeline (persisted lowered module + executor compile only). *)
      let n = Service.Artifact.warm_start () in
      if n > 0 then
        Format.eprintf "// warm start: %d artifact(s) preloaded from %s@." n
          dir

(* --connect ADDR: a minimal client for the socket daemon.  Forwards all
   of stdin to the server (so ir=<nbytes> payloads pass through without
   any parsing here), half-closes, then prints every response line —
   exactly what the check.sh smokes and quick manual poking need. *)
let connect_addr spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p ->
          let host = if host = "" then "127.0.0.1" else host in
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          Unix.ADDR_INET (inet, p)
      | None -> Unix.ADDR_UNIX spec)
  | None -> Unix.ADDR_UNIX spec

let client_pump spec =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = connect_addr spec in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  let oc = Unix.out_channel_of_descr fd in
  let buf = Bytes.create 65536 in
  let rec forward () =
    let n = input Stdlib.stdin buf 0 (Bytes.length buf) in
    if n > 0 then begin
      output oc buf 0 n;
      forward ()
    end
  in
  forward ();
  flush oc;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr fd in
  (try
     while true do
       print_endline (input_line ic)
     done
   with End_of_file -> ());
  Unix.close fd;
  0

let serve_daemon endpoint =
  let s = Service.Socket_server.run ~handlers: serve_handlers endpoint in
  Format.eprintf
    "// %s: served %d connection(s); %d compile batch(es) over %d batched \
     request(s)@."
    (Service.Socket_server.endpoint_name endpoint)
    s.Service.Socket_server.connections s.Service.Socket_server.batches
    s.Service.Socket_server.batched_jobs;
  0

let run_cmd input demo pipeline passes ranks strategy rewrite_driver
    print_after verify stats profile pass_stats trace_out report run_par
    run_sim stall_timeout exec overlap tile threads serve socket tcp_port
    store_dir store_max_mb cache_capacity cache_eviction connect_to
    autotune_ranks netmodel =
  try
    match connect_to with
    | Some spec -> client_pump spec
    | None ->
    if serve || socket <> None || tcp_port <> None then begin
      configure_service ~store_dir ~store_max_mb ~cache_capacity
        ~cache_eviction;
      match (socket, tcp_port) with
      | Some _, Some _ -> failwith "--socket and --tcp are mutually exclusive"
      | Some path, None ->
          serve_daemon (Service.Socket_server.Unix_path path)
      | None, Some port -> serve_daemon (Service.Socket_server.Tcp_port port)
      | None, None ->
          Service.Serve.serve ~handlers: serve_handlers In_channel.stdin
            Out_channel.stdout;
          0
    end
    else begin
    (match Ir.Rewriter.driver_of_string rewrite_driver with
    | Some d -> Ir.Rewriter.set_default_driver d
    | None ->
        failwith
          ("unknown rewrite driver: " ^ rewrite_driver
         ^ " (expected worklist or sweep)"));
    (* Any observability flag installs the Obs sink before the pipeline
       runs; off otherwise, so plain compiles pay nothing. *)
    if profile || pass_stats || trace_out <> None then Obs.enable ();
    let m =
      match demo with
      | Some name -> (
          match demo_module name with
          | Some m -> m
          | None -> failwith ("unknown demo: " ^ name))
      | None -> Ir.Parser.parse_string (read_input input)
    in
    match (autotune_ranks, run_par, run_sim) with
    | Some ranks, _, _ -> autotune ~ranks ~netmodel m
    | None, Some ranks, _ ->
        execute_distributed ~substrate: Driver.Harness.Par ~ranks ~strategy
          ~stall_timeout ~trace_out ~report ~exec ~overlap ~tile ~threads m
    | None, None, Some ranks ->
        execute_distributed ~substrate: Driver.Harness.Sim ~ranks ~strategy
          ~stall_timeout ~trace_out ~report ~exec ~overlap ~tile ~threads m
    | None, None, None ->
    let selected =
      match (pipeline, passes) with
      | Some p, _ -> (
          match List.assoc_opt p Core.Pipeline.named_pipelines with
          | Some pl -> pl
          | None -> failwith ("unknown pipeline: " ^ p))
      | None, ps ->
          Ir.Pass.pipeline "cli"
            (List.map
               (fun name ->
                 if name = "distribute-stencil" then
                   distribute_pass ~ranks ~strategy
                 else
                   match List.assoc_opt name all_passes with
                   | Some p -> p
                   | None -> failwith ("unknown pass: " ^ name))
               ps)
    in
    let result =
      Ir.Pass.run_pipeline ~verify ~checks: Core.Registry.checks ~print_after
        selected m
    in
    if stats then
      Format.printf "// op histogram:@.%a" Transforms.Statistics.pp_histogram
        result
    else Format.printf "%a" Ir.Printer.print_module result;
    if profile || pass_stats then begin
      Format.eprintf "%a" Obs.Passes.pp_table ();
      Format.eprintf "%a" Obs.Rewrites.pp_table ()
    end;
    if profile then Format.eprintf "%a" Obs.Trace.pp_summary ();
    (match trace_out with
    | Some path ->
        Obs.Trace.write_chrome_json path;
        Format.eprintf "// trace written to %s (load in Perfetto: https://ui.perfetto.dev)@." path
    | None -> ());
    0
    end
  with
  | Failure msg | Ir.Op.Ill_formed msg | Sys_error msg ->
      Format.eprintf "stencilc: %s@." msg;
      1
  | Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "stencilc: %s(%s): %s@." fn arg (Unix.error_message e);
      1
  | Mpi_par.Stall report ->
      Format.eprintf "stencilc: %s@." report;
      1
  | Ir.Parser.Parse_error msg ->
      Format.eprintf "stencilc: parse error: %s@." msg;
      1
  | Ir.Verifier.Verification_error msg ->
      Format.eprintf "stencilc: verification failed: %s@." msg;
      1

let input_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv: "FILE" ~doc: "Input IR file (- for stdin).")

let demo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "demo" ] ~docv: "NAME"
        ~doc: "Use a built-in demo program instead of reading input: heat2d, pw, traadv.")

let pipeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "pipeline" ] ~docv: "NAME"
        ~doc:
          "Named pipeline: cpu-sequential, cpu-openmp, distributed-cpu-4, \
           gpu, fpga-initial, fpga-optimized, canonicalize.")

let passes_arg =
  Arg.(
    value & opt_all string []
    & info [ "pass" ] ~docv: "PASS" ~doc: "Run an individual pass (repeatable).")

let ranks_arg =
  Arg.(value & opt int 4 & info [ "ranks" ] ~doc: "Ranks for distribute-stencil.")

let strategy_arg =
  Arg.(
    value & opt string "2d"
    & info [ "strategy" ] ~doc: "Decomposition strategy: 1d, 2d, 3d.")

let rewrite_driver_arg =
  Arg.(
    value
    & opt string "worklist"
    & info [ "rewrite-driver" ] ~docv: "DRIVER"
        ~doc:
          "Greedy rewrite driver for pattern passes: worklist (default, \
           re-enqueues only users of changed values) or sweep (legacy \
           whole-module sweeps, for A/B comparison).")

let print_after_arg =
  Arg.(value & flag & info [ "print-after-all" ] ~doc: "Dump IR after each pass.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc: "Verify after each pass.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc: "Print an op histogram instead of IR.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile the pipeline: print the per-pass stats table and a \
           trace summary to stderr.")

let pass_stats_arg =
  Arg.(
    value & flag
    & info [ "pass-stats" ]
        ~doc:
          "Print the per-pass stats table (wall/verify time, op-count and \
           IR-size deltas, pattern applications) to stderr.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv: "FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the compilation (one span \
           per pass) to $(docv); load it in Perfetto or chrome://tracing.")

let report_arg =
  Arg.(
    value
    & opt ~vopt: (Some "text") (some string) None
    & info [ "report" ] ~docv: "FORMAT"
        ~doc:
          "After --run-par/--run-sim, analyze the run's event timeline and \
           print per-rank compute/pack/wait/unpack breakdowns, the \
           rank-by-rank comm matrix, the critical path, overlap efficiency \
           and an alpha-beta network-model fit.  $(docv) is text (default) \
           or json.  Implies tracing.")

let run_par_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "run-par" ] ~docv: "N"
        ~doc:
          "Execute the module end-to-end on $(docv) parallel ranks (one \
           OCaml domain per rank, shared-memory transport), compare \
           against the serial interpreter and report wall-clock speedup. \
           Combines with --strategy and --trace-out (per-rank wall-clock \
           timelines).")

let run_sim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "run-sim" ] ~docv: "N"
        ~doc:
          "Execute the module end-to-end on $(docv) simulated ranks \
           (deterministic cooperative fibers) and compare against the \
           serial interpreter.")

let stall_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "stall-timeout" ] ~docv: "SECONDS"
        ~doc:
          "Watchdog for --run-par: abort when no transport progress is \
           made for $(docv) seconds while every domain is blocked, and \
           report each domain's pending operation.")

let exec_arg =
  Arg.(
    value & opt string "compiled"
    & info [ "exec" ] ~docv: "BACKEND"
        ~doc:
          "Execution backend for --run-par/--run-sim: compiled (default; \
           ahead-of-time closure compilation of the lowered module) or \
           interp (the tree-walking reference interpreter).  The serial \
           reference is always interpreted.")

let overlap_arg =
  Arg.(
    value & opt bool true
    & info [ "overlap" ] ~docv: "BOOL"
        ~doc:
          "Communication/computation overlap for --run-par/--run-sim \
           (default true): split-phase halo exchanges with interior \
           compute while messages are in flight.  Pass --overlap=false \
           for the fused swap pipeline.")

let tile_arg =
  Arg.(
    value & opt string ""
    & info [ "tile" ] ~docv: "T1,T2,..."
        ~doc:
          "Cache-block sizes for --run-par/--run-sim: lower each stencil \
           through the tiled omp pipeline with these per-dimension block \
           sizes (e.g. --tile 32,32).  Dimensions beyond the list are \
           untiled.  Tiling is part of the compile target, so tiled and \
           untiled runs produce (and cache) distinct artifacts.")

let threads_arg =
  Arg.(
    value & opt int 1
    & info [ "threads-per-rank" ] ~docv: "N"
        ~doc:
          "Worker domains per rank for --run-par/--run-sim with the \
           compiled backend: each rank schedules its omp.parallel regions \
           across a pool of $(docv) OCaml domains (default 1, \
           sequential).  A pure runtime knob — it does not change the \
           compiled artifact.  Implies --tile 32,32 when no --tile is \
           given (threads act on omp regions, which only the tiled \
           lowering emits).")

let serve_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run as a compile service: read newline-delimited compile/run \
           requests from stdin and answer one line per request from the \
           content-addressed artifact cache (repeated or concurrent \
           requests for structurally identical programs compile once).  \
           See DESIGN.md for the protocol.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv: "PATH"
        ~doc:
          "With --serve semantics: listen on a Unix-domain socket at \
           $(docv) and accept multiple concurrent client connections \
           (each served by its own domain; cold compiles are batched).  \
           A client sending 'shutdown' stops the daemon; 'quit' or EOF \
           closes only that connection.  Implies --serve.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv: "PORT"
        ~doc:
          "Like --socket, but listen on loopback TCP port $(docv).  \
           Mutually exclusive with --socket.  Implies --serve.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv: "DIR"
        ~doc:
          "Persist compiled artifacts to a digest-keyed on-disk store \
           under $(docv) (one atomic file per digest: canonical IR, \
           lowered-module text, metadata).  A restarted server warm-starts \
           from the store, skipping the pass pipeline for previously-seen \
           programs.")

let store_max_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "store-max-mb" ] ~docv: "MB"
        ~doc:
          "Cap the on-disk artifact store (--store) at $(docv) megabytes: \
           after every save, the oldest artifacts (by file mtime) are \
           evicted until the store fits, each eviction logged to stderr.  \
           Unset: the store grows without bound.")

let cache_capacity_arg =
  Arg.(
    value & opt int 128
    & info [ "cache-capacity" ] ~docv: "N"
        ~doc:
          "Maximum artifacts retained by the in-memory cache (0 or \
           negative: unbounded).")

let cache_eviction_arg =
  Arg.(
    value & opt string "lru"
    & info [ "cache-eviction" ] ~docv: "POLICY"
        ~doc:
          "Eviction policy when the cache exceeds its capacity: lru \
           (default), fifo, or cost (evict the cheapest-to-recompile \
           entry, by recorded compile seconds, among the least recently \
           used).")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv: "ADDR"
        ~doc:
          "Act as a client for a running --serve daemon: forward stdin \
           to the server at $(docv) (a Unix socket path, or host:port / \
           :port for TCP) and print its response lines.")

let autotune_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "autotune" ] ~docv: "N"
        ~doc:
          "Auto-tune the decomposition for $(docv) ranks: enumerate \
           strategy x exchange-mode x overlap candidates, predict each \
           one's wall-clock with the scale-out replay engine (no \
           execution), and print the scored table and the chosen \
           decomposition.  Combine with --netmodel for a calibrated cost \
           model.")

let netmodel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "netmodel" ] ~docv: "SPEC"
        ~doc:
          "Cost model for --autotune as comma-separated key=value pairs \
           (keys: alpha, beta, compute, pack, unpack; e.g. \
           'alpha=2e-6,beta=1e-9').  Unset keys use built-in defaults.")

let cmd =
  let doc = "shared stencil compilation stack driver" in
  Cmd.v
    (Cmd.info "stencilc" ~doc)
    Term.(
      const run_cmd $ input_arg $ demo_arg $ pipeline_arg $ passes_arg
      $ ranks_arg $ strategy_arg $ rewrite_driver_arg $ print_after_arg
      $ verify_arg $ stats_arg $ profile_arg $ pass_stats_arg
      $ trace_out_arg $ report_arg $ run_par_arg $ run_sim_arg
      $ stall_timeout_arg $ exec_arg $ overlap_arg $ tile_arg $ threads_arg
      $ serve_arg $ socket_arg $ tcp_arg $ store_arg $ store_max_mb_arg
      $ cache_capacity_arg $ cache_eviction_arg $ connect_arg $ autotune_arg
      $ netmodel_arg)

let () = exit (Cmd.eval' cmd)

(* Tests for the observability subsystem: span nesting/balance invariants,
   Chrome trace-event JSON export (validity + event-count round-trip),
   per-pass pipeline metrics, rewrite-pattern counters, deterministic
   mpi_sim rank timelines, and the stencilc --profile smoke run. *)

open Ir
open Core

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* Every test runs against a fresh sink and a deterministic fake clock,
   and restores the disabled-by-default global state afterwards. *)
let with_obs f =
  let ticks = ref 0. in
  Obs.set_clock (fun () ->
      ticks := !ticks +. 1e-3;
      !ticks);
  Obs.enable ();
  Fun.protect
    ~finally: (fun () ->
      Obs.disable ();
      Obs.set_clock Sys.time)
    f

(* --- span nesting / balance --- *)

let test_span_balance () =
  with_obs (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () ->
              check int_c "two open" 2 (Obs.Trace.open_spans ())));
      check int_c "balanced" 0 (Obs.Trace.open_spans ());
      check int_c "four events" 4 (Obs.Trace.event_count ());
      match Obs.Trace.events () with
      | [ b1; b2; e2; e1 ] ->
          check Alcotest.string "outer begins first" "outer" b1.Obs.name;
          check Alcotest.string "inner nested" "inner" b2.Obs.name;
          check Alcotest.string "inner ends first" "inner" e2.Obs.name;
          check Alcotest.string "outer ends last" "outer" e1.Obs.name;
          check bool_c "timestamps monotonic" true
            (b1.Obs.ts <= b2.Obs.ts && b2.Obs.ts <= e2.Obs.ts
            && e2.Obs.ts <= e1.Obs.ts)
      | _ -> Alcotest.fail "expected exactly four events")

let test_span_balance_on_exception () =
  with_obs (fun () ->
      (try
         Obs.Trace.with_span "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      check int_c "balanced after exception" 0 (Obs.Trace.open_spans ()))

let test_unbalanced_begin_detected () =
  with_obs (fun () ->
      Obs.Trace.begin_span "dangling";
      check int_c "one open span" 1 (Obs.Trace.open_spans ()))

let test_disabled_is_silent () =
  Obs.disable ();
  Obs.Trace.with_span "nothing" (fun () -> Obs.Trace.instant "nope");
  Obs.Patterns.note "nope";
  check bool_c "disabled" false (Obs.enabled ());
  check int_c "no events" 0 (Obs.Trace.event_count ());
  check int_c "no counts" 0 (List.length (Obs.Patterns.counts ()))

(* --- a minimal JSON parser, enough to validate the exporter --- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char b (Option.get (peek ()));
              advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elements [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let trace_events_of json =
  match json with
  | Jobj members -> (
      match List.assoc_opt "traceEvents" members with
      | Some (Jarr evs) -> evs
      | _ -> Alcotest.fail "missing traceEvents array")
  | _ -> Alcotest.fail "top level is not an object"

(* --- Chrome JSON export --- *)

let test_chrome_json_roundtrip () =
  with_obs (fun () ->
      Obs.Trace.with_span ~cat: "pass"
        ~args: [ ("pipeline", Obs.Str "cpu\"quoted\nname") ]
        "span one"
        (fun () ->
          Obs.Trace.instant
            ~args:
              [
                ("n", Obs.Int (-3));
                ("x", Obs.Float 1.5);
                ("flag", Obs.Bool true);
              ]
            "marker");
      Obs.Trace.counter "ops" 42.;
      Obs.Trace.complete ~ts: 0.1 ~dur: 0.05 "window";
      let n_emitted = Obs.Trace.event_count () in
      let json_text = Obs.Trace.to_chrome_json () in
      let evs = trace_events_of (parse_json json_text) in
      check int_c "event count round-trips" n_emitted (List.length evs);
      (* Every event carries the mandatory Chrome fields. *)
      List.iter
        (fun ev ->
          match ev with
          | Jobj fields ->
              List.iter
                (fun k ->
                  check bool_c (k ^ " present") true (List.mem_assoc k fields))
                [ "name"; "ph"; "ts"; "pid"; "tid" ]
          | _ -> Alcotest.fail "event is not an object")
        evs;
      (* The escaped arg string survives the round trip. *)
      let has_escaped =
        List.exists
          (fun ev ->
            match ev with
            | Jobj fields -> (
                match List.assoc_opt "args" fields with
                | Some (Jobj args) ->
                    List.assoc_opt "pipeline" args
                    = Some (Jstr "cpu\"quoted\nname")
                | _ -> false)
            | _ -> false)
          evs
      in
      check bool_c "escaped string round-trips" true has_escaped)

(* --- per-pass pipeline metrics --- *)

let test_pass_stats_one_entry_per_pass () =
  with_obs (fun () ->
      let pl = Pipeline.pipeline_for Pipeline.Cpu_sequential in
      let m = Programs.heat2d_module ~nx: 8 ~ny: 8 in
      ignore (Pass.run_pipeline ~verify: true ~checks: Registry.checks pl m);
      let stats = Obs.Passes.stats () in
      check int_c "one stat per pass"
        (List.length pl.Pass.passes)
        (List.length stats);
      List.iter2
        (fun (pass : Pass.t) (st : Obs.pass_stat) ->
          check Alcotest.string "stat order follows pass order" pass.Pass.name
            st.Obs.pass_name;
          check Alcotest.string "pipeline recorded" pl.Pass.pipeline_name
            st.Obs.pipeline;
          check bool_c "op counts positive" true
            (st.Obs.ops_before > 0 && st.Obs.ops_after > 0);
          check bool_c "ir sizes positive" true
            (st.Obs.ir_bytes_before > 0 && st.Obs.ir_bytes_after > 0);
          check bool_c "wall time non-negative" true (st.Obs.wall_s >= 0.))
        pl.Pass.passes stats;
      (* One Begin span per pass, nested under the pipeline span. *)
      List.iter
        (fun (pass : Pass.t) ->
          let begins =
            List.filter
              (fun (ev : Obs.event) ->
                ev.Obs.ph = Obs.Begin && ev.Obs.name = pass.Pass.name)
              (Obs.Trace.events ())
          in
          check int_c
            (Printf.sprintf "one begin span for %s" pass.Pass.name)
            1 (List.length begins))
        pl.Pass.passes;
      check int_c "all spans closed" 0 (Obs.Trace.open_spans ()))

(* --- rewrite-pattern application counters --- *)

let test_pattern_apps_counted () =
  with_obs (fun () ->
      let erase_nop =
        Pattern.pattern "erase-nop" (fun op ->
            if op.Op.name = "test.nop" then Some Pattern.Erase else None)
      in
      let m =
        Op.module_op
          [ Op.make "test.nop"; Op.make "test.keep"; Op.make "test.nop" ]
      in
      let pl =
        Pass.pipeline "pattern-test" [ Pass.of_patterns "nop-elim" [ erase_nop ] ]
      in
      let m' = Pass.run_pipeline pl m in
      check int_c "nops erased" 0 (Transforms.Statistics.count m' "test.nop");
      check (Alcotest.list (Alcotest.pair Alcotest.string int_c))
        "two applications counted"
        [ ("erase-nop", 2) ]
        (Obs.Patterns.counts ());
      match Obs.Passes.stats () with
      | [ st ] ->
          check
            (Alcotest.list (Alcotest.pair Alcotest.string int_c))
            "per-pass pattern apps"
            [ ("erase-nop", 2) ]
            st.Obs.pattern_apps
      | sts -> Alcotest.fail (Printf.sprintf "expected 1 stat, got %d" (List.length sts)))

(* --- mpi_sim timelines --- *)

let run_message_pattern ~trace (ranks, msgs) =
  Mpi_sim.run ~trace ~ranks (fun ctx ->
      let me = Mpi_sim.rank ctx in
      List.iter
        (fun (src, dst, tag, len) ->
          if src = me then
            Mpi_sim.send ctx ~dest: dst ~tag
              (Mpi_sim.Floats (Array.make len 1.)))
        msgs;
      List.iter
        (fun (src, dst, tag, _) ->
          if dst = me then ignore (Mpi_sim.recv ctx ~source: src ~tag))
        msgs;
      Mpi_sim.barrier ctx)

let timeline_determinism_prop =
  QCheck.Test.make ~count: 25
    ~name: "mpi_sim timelines are identical across two runs"
    QCheck.(
      make
        Gen.(
          int_range 2 4 >>= fun ranks ->
          list_size (int_range 0 12)
            (int_range 0 (ranks - 1) >>= fun src ->
             int_range 0 (ranks - 1) >>= fun dst ->
             int_range 0 3 >>= fun tag ->
             int_range 1 5 >>= fun len -> return (src, dst, tag, len))
          >>= fun msgs -> return (ranks, msgs)))
    (fun case ->
      let c1 = run_message_pattern ~trace: true case in
      let c2 = run_message_pattern ~trace: true case in
      Mpi_sim.timeline c1 = Mpi_sim.timeline c2
      && Mpi_sim.edge_bytes c1 = Mpi_sim.total_bytes c1)

let test_trace_off_by_default () =
  let comm = run_message_pattern ~trace: false (2, [ (0, 1, 0, 4) ]) in
  check int_c "no timeline when tracing off" 0
    (List.length (Mpi_sim.timeline comm));
  check bool_c "traffic still counted" true (Mpi_sim.total_bytes comm > 0)

(* --- the 4-rank heat acceptance run: per-rank timeline edges vs
   aggregate traffic counters --- *)

let test_heat_timeline_edge_bytes () =
  let nx = 16 and ny = 16 and steps = 4 in
  let init i j = Float.sin (float_of_int ((3 * i) + j)) in
  let ranks = 4 in
  let m = Programs.heat2d_timeloop_module ~nx ~ny ~steps in
  let dm =
    Distribute.run
      (Distribute.options ~ranks ~strategy: Decomposition.Slice2d ())
      m
  in
  let fop = Option.get (Op.lookup_symbol dm "run") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let global_a = Programs.make_field_2d ~nx ~ny init in
  let hook_called = ref false in
  let comm =
    with_obs (fun () ->
        let comm =
          Driver.Simulate.run_spmd ~trace: true
            ~on_timeline: (fun _ -> hook_called := true)
            ~ranks ~func: "run"
            ~make_args: (fun ctx ->
              let rank = Mpi_sim.rank ctx in
              let mk () =
                Driver.Domain.scatter_field ~global: global_a ~grid
                  ~local_bounds ~rank
              in
              [ Interp.Rtval.Rbuf (mk ()); Interp.Rtval.Rbuf (mk ()) ])
            dm
        in
        (* The timeline also lands in the Obs sink, one process per rank. *)
        check bool_c "mpi events exported to obs" true
          (List.exists
             (fun (ev : Obs.event) -> ev.Obs.cat = "mpi")
             (Obs.Trace.events ()));
        comm)
  in
  check bool_c "on_timeline hook ran" true !hook_called;
  let tl = Mpi_sim.timeline comm in
  check bool_c "timeline nonempty" true (tl <> []);
  (* Message-edge byte totals must equal the aggregate traffic counter,
     globally and per rank. *)
  check int_c "edge bytes == total_bytes" (Mpi_sim.total_bytes comm)
    (Mpi_sim.edge_bytes comm);
  for r = 0 to ranks - 1 do
    let sent =
      List.fold_left
        (fun acc (ev : Mpi_sim.timeline_event) ->
          match ev.Mpi_sim.kind with
          | Mpi_sim.Isend { bytes; _ } -> acc + bytes
          | _ -> acc)
        0
        (Mpi_sim.rank_timeline comm r)
    in
    check int_c
      (Printf.sprintf "rank %d edge bytes" r)
      (Mpi_sim.rank_stats comm r).Mpi_sim.bytes sent
  done;
  (* Each rank's events are a sub-sequence: seqs strictly increase. *)
  for r = 0 to ranks - 1 do
    let seqs =
      List.map
        (fun (ev : Mpi_sim.timeline_event) -> ev.Mpi_sim.seq)
        (Mpi_sim.rank_timeline comm r)
    in
    check bool_c
      (Printf.sprintf "rank %d seq monotone" r)
      true
      (List.sort compare seqs = seqs)
  done

(* --- enriched deadlock reports --- *)

let test_deadlock_names_ranks () =
  match
    Mpi_sim.run ~trace: true ~ranks: 2 (fun ctx ->
        ignore (Mpi_sim.recv ctx ~source: (1 - Mpi_sim.rank ctx) ~tag: 3))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Mpi_sim.Deadlock msg ->
      let has needle =
        check bool_c
          (Printf.sprintf "message mentions %S" needle)
          true
          (Support.contains msg needle)
      in
      has "rank 0";
      has "rank 1";
      has "irecv src=1 tag=3";
      has "irecv src=0 tag=3";
      has "last event"

(* --- stencilc --profile smoke run (the built binary is a test dep) --- *)

let test_stencilc_profile_smoke () =
  (* The binary path comes from the dune stanza (STENCILC) with a
     fallback next to the test executable, and all artifacts live in a
     temp dir, so this test is independent of the invoking cwd and
     leaves nothing behind. *)
  let stencilc = Support.stencilc_path () in
  let dir = Filename.temp_dir "obs_smoke" "" in
  let out_file = Filename.concat dir "obs_smoke_out.txt" in
  let err_file = Filename.concat dir "obs_smoke_err.txt" in
  let trace_file = Filename.concat dir "obs_smoke_trace.json" in
  Fun.protect
    ~finally: (fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ out_file; err_file; trace_file ];
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let rc =
        Sys.command
          (Printf.sprintf
             "%s --demo heat2d -p distributed-cpu-4 --profile --trace-out \
              %s > %s 2> %s"
             (Filename.quote stencilc)
             (Filename.quote trace_file)
             (Filename.quote out_file)
             (Filename.quote err_file))
      in
      check int_c "stencilc --profile exits 0" 0 rc;
      let slurp path = In_channel.with_open_text path In_channel.input_all in
      let err = slurp err_file in
      check bool_c "pass table printed" true (Support.contains err "pass");
      check bool_c "trace summary printed" true
        (Support.contains err "trace summary");
      (* The trace file is valid JSON with >= 1 begin span per pipeline
         pass. *)
      let evs = trace_events_of (parse_json (slurp trace_file)) in
      check bool_c "trace has events" true (evs <> []);
      let pl = List.assoc "distributed-cpu-4" Pipeline.named_pipelines in
      List.iter
        (fun (pass : Pass.t) ->
          let spans =
            List.filter
              (fun ev ->
                match ev with
                | Jobj fields ->
                    List.assoc_opt "name" fields = Some (Jstr pass.Pass.name)
                    && List.assoc_opt "ph" fields = Some (Jstr "B")
                | _ -> false)
              evs
          in
          check bool_c
            (Printf.sprintf "trace has a span for pass %s" pass.Pass.name)
            true
            (spans <> []))
        pl.Pass.passes)

let suite =
  [
    Alcotest.test_case "span nesting and balance" `Quick test_span_balance;
    Alcotest.test_case "span balance on exception" `Quick
      test_span_balance_on_exception;
    Alcotest.test_case "unbalanced begin detected" `Quick
      test_unbalanced_begin_detected;
    Alcotest.test_case "disabled sink is silent" `Quick
      test_disabled_is_silent;
    Alcotest.test_case "chrome json round-trips" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "pass stats: one entry per pass" `Quick
      test_pass_stats_one_entry_per_pass;
    Alcotest.test_case "pattern applications counted" `Quick
      test_pattern_apps_counted;
    Alcotest.test_case "mpi trace off by default" `Quick
      test_trace_off_by_default;
    Alcotest.test_case "heat 4-rank timeline edge bytes" `Quick
      test_heat_timeline_edge_bytes;
    Alcotest.test_case "deadlock names blocked ranks" `Quick
      test_deadlock_names_ranks;
    Alcotest.test_case "stencilc --profile smoke" `Quick
      test_stencilc_profile_smoke;
    QCheck_alcotest.to_alcotest timeline_determinism_prop;
  ]

(* Structural tests of the dmp->mpi and mpi->func lowerings: the generated
   IR must contain the paper's artifacts — non-blocking pairs under
   existence checks, null requests for skipped exchanges, one waitall per
   swap, request-array materialization, mpich magic constants, appended
   external declarations, and LICM-hoistable buffers. *)

open Ir
open Core

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* A module with a single swap over a 2D memref, as stencil-to-loops
   would produce it. *)
let swap_module ~grid ~exchanges : Op.t =
  let f =
    Dialects.Func.define "main"
      ~arg_tys: [ Typesys.Memref ([ 10; 10 ], Typesys.f32) ]
      ~res_tys: [] (fun bld args ->
        Builder.add bld
          (Op.make Dmp.swap
             ~operands: [ List.hd args ]
             ~attrs:
               [
                 ("topo", Typesys.Grid_attr grid);
                 ( "exchanges",
                   Typesys.Array_attr
                     (List.map (fun e -> Typesys.Exchange_attr e) exchanges)
                 );
                 ("origin", Typesys.Dense_attr [ 1; 1 ]);
               ]);
        Dialects.Func.return_op bld [])
  in
  Op.module_op [ f ]

let exchanges_2d =
  Decomposition.exchanges ~interior: [ 8; 8 ] ~halo: [| (-1, 1); (-1, 1) |]
    ~grid: [ 2; 2 ] ()

let test_swap_lowering_structure () =
  let m = swap_module ~grid: [ 2; 2 ] ~exchanges: exchanges_2d in
  let lowered = Dmp_to_mpi.run m in
  Verifier.verify ~checks: Registry.checks lowered;
  (* Per exchange: one scf.if with isend+irecv in the then-branch and two
     null requests in the else-branch, plus one unpack scf.if. *)
  check int_c "isend per exchange" 4
    (Transforms.Statistics.count lowered "mpi.isend");
  check int_c "irecv per exchange" 4
    (Transforms.Statistics.count lowered "mpi.irecv");
  check int_c "two null requests per skipped branch" 8
    (Transforms.Statistics.count lowered "mpi.null_request");
  check int_c "one waitall per swap" 1
    (Transforms.Statistics.count lowered "mpi.waitall");
  check int_c "one rank query per swap" 1
    (Transforms.Statistics.count lowered "mpi.comm_rank");
  (* Send + receive buffers per exchange. *)
  check int_c "buffers" 8 (Transforms.Statistics.count lowered "memref.alloc");
  check bool_c "no dmp left" false
    (Op.exists (fun o -> o.Op.name = Dmp.swap) lowered)

let test_mpi_to_func_structure () =
  let m = swap_module ~grid: [ 2; 2 ] ~exchanges: exchanges_2d in
  let lowered = Mpi_to_func.run (Dmp_to_mpi.run m) in
  Verifier.verify ~checks: Registry.checks lowered;
  (* No mpi ops remain. *)
  check bool_c "no mpi ops left" false (Op.exists Mpi.is_mpi_op lowered);
  (* Declarations appended for exactly the functions used. *)
  let decls =
    List.filter_map
      (fun (op : Op.t) ->
        if op.Op.name = Dialects.Func.func && Dialects.Func.is_declaration op
        then Some (Dialects.Func.name_of op)
        else None)
      (Op.module_ops lowered)
  in
  List.iter
    (fun f -> check bool_c (f ^ " declared") true (List.mem f decls))
    [ "MPI_Comm_rank"; "MPI_Isend"; "MPI_Irecv"; "MPI_Waitall" ];
  check bool_c "MPI_Bcast not declared" false (List.mem "MPI_Bcast" decls);
  (* The mpich magic constants appear as i32 constants. *)
  let has_const v =
    Op.exists
      (fun o ->
        o.Op.name = "arith.constant"
        &&
        match Op.attr o "value" with
        | Some (Typesys.Int_attr (x, _)) -> x = v
        | _ -> false)
      lowered
  in
  check bool_c "MPI_COMM_WORLD constant" true (has_const Mpi.Mpich.comm_world);
  check bool_c "MPI_FLOAT constant" true (has_const Mpi.Mpich.float);
  check bool_c "MPI_REQUEST_NULL constant" true
    (has_const Mpi.Mpich.request_null);
  (* Request array for waitall: one extract_ptr per waitall + per
     send/recv buffer unwrap. *)
  check bool_c "request array materialized" true
    (Transforms.Statistics.count lowered "memref.extract_ptr" >= 9)

(* The halo data path is bulk: each exchange packs and unpacks with a
   single memref.copy_strided (bracketed by mpi.pcontrol phase markers),
   never with scalar element loops. *)
let test_bulk_pack_structure () =
  let m = swap_module ~grid: [ 2; 2 ] ~exchanges: exchanges_2d in
  let lowered = Dmp_to_mpi.run m in
  Verifier.verify ~checks: Registry.checks lowered;
  check int_c "one pack + one unpack copy per exchange" 8
    (Transforms.Statistics.count lowered "memref.copy_strided");
  (* pcontrol brackets: open/close around each pack and each unpack. *)
  check int_c "pcontrol markers" 16
    (Transforms.Statistics.count lowered "mpi.pcontrol");
  (* No scalar element traffic: the swap lowering emits no loads, stores
     or loops of its own (the module has no compute). *)
  check int_c "no scalar loads" 0
    (Transforms.Statistics.count lowered "memref.load");
  check int_c "no scalar stores" 0
    (Transforms.Statistics.count lowered "memref.store");
  check int_c "no pack loop nests" 0
    (Transforms.Statistics.count lowered "scf.for")

(* Regression guard for the distributed hot path: after the full executed
   pipeline — Pipeline.compile (Distributed_cpu {tiles = []; overlap =
   true; ...}), the single definition of the flow Harness.run_distributed
   compiles through the artifact layer — the time loop must contain NO
   allocations (exchange buffers are hoisted) and NO scalar pack/unpack
   element traffic (rank-1 float buffer loads/stores), only bulk copies.
   The i32 request-array stores of the waitall lowering are allowed. *)
let test_hot_loop_structural_regression () =
  let m = Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 3 in
  let lowered =
    Pipeline.compile ~verify: true
      (Pipeline.Distributed_cpu
         {
           ranks = 4;
           strategy = Decomposition.Slice2d;
           mode = Decomposition.Faces;
           tiles = [];
           overlap = true;
         })
      m
  in
  (* The outermost scf.for of the function is the time loop. *)
  let time_loop = ref None in
  List.iter
    (fun (top : Op.t) ->
      if top.Op.name = Dialects.Func.func && top.Op.regions <> [] then
        List.iter
          (fun (inner : Op.t) ->
            if inner.Op.name = "scf.for" && !time_loop = None then
              time_loop := Some inner)
          (Op.region_ops (List.hd top.Op.regions)))
    (Op.module_ops lowered);
  let time_loop =
    match !time_loop with
    | Some l -> l
    | None -> Alcotest.fail "no time loop in lowered module"
  in
  let count name =
    let n = ref 0 in
    Op.walk (fun o -> if o.Op.name = name then incr n) time_loop;
    !n
  in
  check int_c "zero allocations per timestep" 0 (count "memref.alloc");
  check bool_c "bulk copies in the loop" true (count "memref.copy_strided" > 0);
  (* No rank-1 float buffer element traffic: scalar pack loops loaded the
     field into a flat send buffer / stored a flat recv buffer into the
     field element by element.  Compute loads/stores hit rank-2 fields;
     the request array is i32. *)
  let rank1_float v =
    match Value.ty v with
    | Typesys.Memref ([ _ ], Typesys.Float _) -> true
    | _ -> false
  in
  let scalar_pack = ref 0 in
  Op.walk
    (fun o ->
      match o.Op.name with
      | "memref.load" | "memref.store" ->
          let buf_operand =
            match (o.Op.name, o.Op.operands) with
            | "memref.load", b :: _ -> Some b
            | "memref.store", _ :: b :: _ -> Some b
            | _ -> None
          in
          (match buf_operand with
          | Some b when rank1_float b -> incr scalar_pack
          | _ -> ())
      | _ -> ())
    time_loop;
  check int_c "zero scalar pack/unpack element accesses" 0 !scalar_pack

let test_tag_pairing () =
  (* Tags pair up: my send toward v matches the neighbor's receive of
     direction -v. *)
  List.iter
    (fun (e : Typesys.exchange) ->
      let opposite =
        {
          e with
          Typesys.ex_neighbor = List.map (fun d -> -d) e.Typesys.ex_neighbor;
        }
      in
      check int_c "send matches opposite recv" (Dmp_to_mpi.send_tag e)
        (Dmp_to_mpi.recv_tag opposite))
    (Decomposition.exchanges ~mode: Decomposition.Diagonals
       ~interior: [ 6; 6; 6 ]
       ~halo: [| (-1, 1); (-1, 1); (-1, 1) |]
       ~grid: [ 2; 2; 2 ] ())

(* Tag soundness under Decomposition.Diagonals: enumerate every rank's
   posted sends and receives on random 2D/3D grids and require that each
   (sender, receiver, tag) send triple is unique and matches exactly one
   posted receive.  The base-3 direction encoding guarantees this even
   when several exchange directions share their first nonzero component
   (edges/corners). *)
let tag_uniqueness_prop =
  QCheck.Test.make ~count: 100
    ~name: "diagonal exchange tags pair uniquely"
    QCheck.(
      make
        Gen.(
          let* rank = int_range 2 3 in
          let* grid = list_size (return rank) (int_range 1 3) in
          return grid))
    (fun grid ->
      let rank_dims = List.length grid in
      let interior = List.map (fun _ -> 4) grid in
      let halo = Array.make rank_dims (-1, 1) in
      let exchanges =
        Decomposition.exchanges ~mode: Decomposition.Diagonals ~interior
          ~halo ~grid ()
      in
      let nranks = List.fold_left ( * ) 1 grid in
      let strides = Dmp_to_mpi.grid_strides grid in
      let coords_of r = List.map2 (fun g s -> r / s mod g) grid strides in
      let neighbor_of r (e : Typesys.exchange) =
        let nc = List.map2 ( + ) (coords_of r) e.Typesys.ex_neighbor in
        if List.for_all2 (fun c g -> c >= 0 && c < g) nc grid then
          Some (List.fold_left2 (fun acc c s -> acc + (c * s)) 0 nc strides)
        else None
      in
      let sends = Hashtbl.create 64 and recvs = Hashtbl.create 64 in
      let duplicate = ref false in
      for r = 0 to nranks - 1 do
        List.iter
          (fun e ->
            match neighbor_of r e with
            | None -> ()
            | Some nbr ->
                let s_key = (r, nbr, Dmp_to_mpi.send_tag e) in
                let r_key = (nbr, r, Dmp_to_mpi.recv_tag e) in
                if Hashtbl.mem sends s_key then duplicate := true;
                if Hashtbl.mem recvs r_key then duplicate := true;
                Hashtbl.add sends s_key ();
                Hashtbl.add recvs r_key ())
          exchanges
      done;
      (* Unique posts, and a bijection between sends and receives. *)
      (not !duplicate)
      && Hashtbl.length sends = Hashtbl.length recvs
      && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem recvs k) sends true)

let test_grid_strides () =
  check (Alcotest.list int_c) "3d strides" [ 16; 4; 1 ]
    (Dmp_to_mpi.grid_strides [ 4; 4; 4 ]);
  check (Alcotest.list int_c) "2d strides" [ 2; 1 ]
    (Dmp_to_mpi.grid_strides [ 4; 2 ])

(* LICM hoists the communication buffers and rank queries out of a time
   loop wrapping the swap (the paper's loop-invariant hoisting). *)
let test_licm_hoists_comm_setup () =
  let f =
    Dialects.Func.define "main"
      ~arg_tys: [ Typesys.Memref ([ 10; 10 ], Typesys.f32) ]
      ~res_tys: [] (fun bld args ->
        let lo = Dialects.Arith.const_index bld 0 in
        let hi = Dialects.Arith.const_index bld 4 in
        let st = Dialects.Arith.const_index bld 1 in
        ignore
          (Dialects.Scf.for_op bld ~lo ~hi ~step: st (fun body _ _ ->
               Builder.add body
                 (Op.make Dmp.swap
                    ~operands: [ List.hd args ]
                    ~attrs:
                      [
                        ("topo", Typesys.Grid_attr [ 2; 2 ]);
                        ( "exchanges",
                          Typesys.Array_attr
                            (List.map
                               (fun e -> Typesys.Exchange_attr e)
                               exchanges_2d) );
                        ("origin", Typesys.Dense_attr [ 1; 1 ]);
                      ]);
               Dialects.Scf.yield_op body []));
        Dialects.Func.return_op bld [])
  in
  let m = Op.module_op [ f ] in
  let lowered = Transforms.Licm.run (Dmp_to_mpi.run m) in
  (* The time loop body must no longer contain allocations or rank
     queries. *)
  let in_loop name =
    let found = ref false in
    Op.walk
      (fun o ->
        if o.Op.name = "scf.for" then
          List.iter
            (Op.walk (fun inner -> if inner.Op.name = name then found := true))
            (Op.region_ops (List.hd o.Op.regions)))
      lowered;
    !found
  in
  check bool_c "allocs hoisted" false (in_loop "memref.alloc");
  check bool_c "rank query hoisted" false (in_loop "mpi.comm_rank");
  (* Packing and the exchanges themselves stay inside. *)
  check bool_c "isend stays in loop" true (in_loop "mpi.isend")

(* The lowered module executes correctly on boundary ranks: a 1x2 grid
   where rank 0 has no low neighbor exercises the null-request path. *)
let test_null_request_path_executes () =
  let exchanges =
    Decomposition.exchanges ~interior: [ 8 ] ~halo: [| (-1, 1) |]
      ~grid: [ 2 ] ()
  in
  let f =
    Dialects.Func.define "main"
      ~arg_tys: [ Typesys.Memref ([ 10 ], Typesys.f64) ]
      ~res_tys: [] (fun bld args ->
        Builder.add bld
          (Op.make Dmp.swap
             ~operands: [ List.hd args ]
             ~attrs:
               [
                 ("topo", Typesys.Grid_attr [ 2 ]);
                 ( "exchanges",
                   Typesys.Array_attr
                     (List.map (fun e -> Typesys.Exchange_attr e) exchanges)
                 );
                 ("origin", Typesys.Dense_attr [ 1 ]);
               ]);
        Dialects.Func.return_op bld [])
  in
  let lowered = Mpi_to_func.run (Dmp_to_mpi.run (Op.module_op [ f ])) in
  let results = Array.make 2 [||] in
  ignore
    (Driver.Simulate.run_spmd ~ranks: 2 ~func: "main"
       ~make_args: (fun ctx ->
         let me = Mpi_sim.rank ctx in
         let b = Interp.Rtval.alloc_buffer [ 10 ] Typesys.f64 in
         Interp.Rtval.fill b (fun i -> float_of_int ((10 * me) + i));
         results.(me) <- (match b.Interp.Rtval.data with
           | Interp.Rtval.F a -> a
           | _ -> [||]);
         [ Interp.Rtval.Rbuf b ])
       lowered);
  (* Rank 0's high halo (index 9) received rank 1's first interior value
     (index 1 -> 10*1+1 = 11); its low halo is untouched (0-neighbor
     missing). *)
  check (Alcotest.float 1e-9) "rank0 high halo" 11. results.(0).(9);
  check (Alcotest.float 1e-9) "rank0 low halo untouched" 0. results.(0).(0);
  (* Rank 1's low halo (index 0) received rank 0's last interior value
     (index 8 -> 8). *)
  check (Alcotest.float 1e-9) "rank1 low halo" 8. results.(1).(0);
  check (Alcotest.float 1e-9) "rank1 high halo untouched" 19.
    results.(1).(9)

let suite =
  [
    Alcotest.test_case "dmp->mpi structure" `Quick
      test_swap_lowering_structure;
    Alcotest.test_case "mpi->func structure + magic constants" `Quick
      test_mpi_to_func_structure;
    Alcotest.test_case "bulk pack/unpack structure" `Quick
      test_bulk_pack_structure;
    Alcotest.test_case "hot loop: no allocs, no scalar packs" `Quick
      test_hot_loop_structural_regression;
    Alcotest.test_case "tag pairing (incl. diagonals)" `Quick
      test_tag_pairing;
    QCheck_alcotest.to_alcotest tag_uniqueness_prop;
    Alcotest.test_case "grid strides" `Quick test_grid_strides;
    Alcotest.test_case "licm hoists comm setup" `Quick
      test_licm_hoists_comm_setup;
    Alcotest.test_case "null-request path executes" `Quick
      test_null_request_path_executes;
  ]

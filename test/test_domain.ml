(* Edge-case tests for the host-side scatter/gather decomposition helpers
   (Driver.Domain): non-divisible extents, 1-cell slabs, 3D grids,
   boundary halos and rebased gathers. *)

open Ir

let check = Alcotest.check
let float_c = Alcotest.float 1e-12

(* A global buffer with symmetric ghost margins [margin] and interior
   [extents], filled with a coordinate-identifying pattern.  Logical
   coordinates run [-margin, extent + margin) per dimension. *)
let make_global ~margin ~extents =
  let lo = List.map (fun _ -> -margin) extents in
  let shape = List.map (fun n -> n + (2 * margin)) extents in
  let b = Interp.Rtval.alloc_buffer ~lo shape Typesys.f64 in
  Interp.Rtval.fill b (fun i -> float_of_int i *. 0.5);
  b

let local_bounds ~margin ~interior ~grid =
  List.map2
    (fun n parts -> Typesys.{ lo = -margin; hi = (n / parts) + margin })
    interior grid

(* Scatter to every rank, then gather every interior back into a zeroed
   copy; the interiors must round-trip exactly. *)
let roundtrip ~margin ~extents ~grid =
  let global = make_global ~margin ~extents in
  let lb = local_bounds ~margin ~interior: extents ~grid in
  let interior = List.map2 (fun n parts -> n / parts) extents grid in
  let back =
    Interp.Rtval.alloc_buffer ~lo: global.Interp.Rtval.lo
      global.Interp.Rtval.shape global.Interp.Rtval.elt
  in
  let ranks = List.fold_left ( * ) 1 grid in
  for rank = 0 to ranks - 1 do
    let local =
      Driver.Domain.scatter_field ~global ~grid ~local_bounds: lb ~rank
    in
    Driver.Domain.gather_interior ~global: back ~local ~grid ~interior ~rank ()
  done;
  (global, back, interior)

let check_interior_equal ~what (global, back, _interior) ~extents =
  let rec nest dims coords =
    match dims with
    | [] ->
        let c = List.rev coords in
        check float_c
          (Printf.sprintf "%s %s" what
             (String.concat "," (List.map string_of_int c)))
          (Interp.Rtval.as_float (Interp.Rtval.get global c))
          (Interp.Rtval.as_float (Interp.Rtval.get back c))
    | n :: rest ->
        for i = 0 to n - 1 do
          nest rest (i :: coords)
        done
  in
  nest extents []

let test_roundtrip_2d () =
  let extents = [ 8; 8 ] in
  check_interior_equal ~what: "2x2"
    (roundtrip ~margin: 1 ~extents ~grid: [ 2; 2 ])
    ~extents

let test_roundtrip_3d () =
  (* A full 3D decomposition: 2x2x2 ranks over an 8x4x6 box. *)
  let extents = [ 8; 4; 6 ] in
  check_interior_equal ~what: "2x2x2"
    (roundtrip ~margin: 2 ~extents ~grid: [ 2; 2; 2 ])
    ~extents

let test_one_cell_slabs () =
  (* Grid 4 over extent 4: every rank owns a single 1-cell-wide slab, so
     each local buffer is pure halo except one line. *)
  let extents = [ 4; 6 ] in
  check_interior_equal ~what: "1-cell slab"
    (roundtrip ~margin: 1 ~extents ~grid: [ 4; 1 ])
    ~extents

let test_non_divisible_rejected () =
  (* The decomposition is compile-time-bounds based: extents that do not
     divide evenly across the grid are rejected, not silently truncated. *)
  (try
     ignore (Core.Decomposition.local_interior ~interior: [ 10; 16 ] ~grid: [ 3; 2 ]);
     Alcotest.fail "expected Ill_formed"
   with Op.Ill_formed msg ->
     check Alcotest.bool "names the extent"
       true
       (String.length msg > 0));
  (* And end-to-end through the distribution pass. *)
  let m = Programs.heat2d_timeloop_module ~nx: 15 ~ny: 16 ~steps: 1 in
  match
    Core.Distribute.run
      (Core.Distribute.options ~ranks: 4 ~strategy: Core.Decomposition.Slice2d ())
      m
  with
  | _ -> Alcotest.fail "expected Ill_formed from distribution"
  | exception Op.Ill_formed _ -> ()

let test_boundary_halo_zero () =
  (* Halo cells that fall outside the global domain are zero-filled;
     halo cells inside it take the neighbour's values. *)
  let extents = [ 4; 4 ] in
  let global = make_global ~margin: 0 ~extents in
  let lb = local_bounds ~margin: 1 ~interior: extents ~grid: [ 2; 1 ] in
  let local0 =
    Driver.Domain.scatter_field ~global ~grid: [ 2; 1 ] ~local_bounds: lb
      ~rank: 0
  in
  (* Rank 0's low-side halo row (-1) is outside the global buffer. *)
  check float_c "outside halo is zero" 0.
    (Interp.Rtval.as_float (Interp.Rtval.get local0 [ -1; 0 ]));
  (* Its high-side halo row (2) is rank 1's first interior row. *)
  check float_c "interior halo from neighbour"
    (Interp.Rtval.as_float (Interp.Rtval.get global [ 2; 0 ]))
    (Interp.Rtval.as_float (Interp.Rtval.get local0 [ 2; 0 ]))

let test_rebased_gather_origin () =
  (* Lowered code rebases locals to lo = 0; gather_interior's [origin]
     shifts coordinates back by the halo width. *)
  let extents = [ 4; 4 ] in
  let global = make_global ~margin: 0 ~extents in
  let lb = local_bounds ~margin: 1 ~interior: extents ~grid: [ 2; 2 ] in
  let interior = [ 2; 2 ] in
  let back =
    Interp.Rtval.alloc_buffer ~lo: global.Interp.Rtval.lo
      global.Interp.Rtval.shape global.Interp.Rtval.elt
  in
  for rank = 0 to 3 do
    let local =
      Driver.Domain.scatter_field ~global ~grid: [ 2; 2 ] ~local_bounds: lb
        ~rank
    in
    (* Rebase: same data, logical origin moved to 0. *)
    let rebased =
      { local with Interp.Rtval.lo = List.map (fun _ -> 0) local.Interp.Rtval.lo }
    in
    Driver.Domain.gather_interior ~origin: [ 1; 1 ] ~global: back
      ~local: rebased ~grid: [ 2; 2 ] ~interior ~rank ()
  done;
  check_interior_equal ~what: "rebased" (global, back, interior) ~extents

let suite =
  [
    Alcotest.test_case "2D round-trip" `Quick test_roundtrip_2d;
    Alcotest.test_case "3D 2x2x2 round-trip" `Quick test_roundtrip_3d;
    Alcotest.test_case "1-cell slabs" `Quick test_one_cell_slabs;
    Alcotest.test_case "non-divisible extents rejected" `Quick
      test_non_divisible_rejected;
    Alcotest.test_case "boundary halo zero-fill" `Quick test_boundary_halo_zero;
    Alcotest.test_case "rebased gather origin" `Quick test_rebased_gather_origin;
  ]

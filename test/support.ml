(* Shared helpers for the test suites. *)

(* Substring search (the suites match needles in error reports and
   captured tool output). *)
let contains hay needle =
  let ln = String.length needle and lm = String.length hay in
  let rec scan i =
    i + ln <= lm && (String.sub hay i ln = needle || scan (i + 1))
  in
  scan 0

(* Fail the test when [hay] lacks [needle]; [what] names the haystack in
   the failure message. *)
let assert_contains ~what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s %S lacks %S" what hay needle

(* Absolute path of the built stencilc binary.  The dune test stanza sets
   STENCILC to the declared ../bin/stencilc.exe dependency (relative to
   the test's build directory, which is also its cwd at startup); outside
   dune — or after a chdir — fall back to resolving it as a sibling of
   the running test executable, which always lives in
   _build/<ctx>/test/. *)
let stencilc_path () =
  let absolutize p =
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  match Sys.getenv_opt "STENCILC" with
  | Some p when Sys.file_exists p -> absolutize p
  | _ ->
      absolutize
        (Filename.concat
           (Filename.dirname Sys.executable_name)
           (Filename.concat Filename.parent_dir_name
              (Filename.concat "bin" "stencilc.exe")))

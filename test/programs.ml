(* Stencil programs used across the test suites, built through the public
   dialect APIs. *)

open Ir
open Dialects
open Core

let b1 lo hi = Typesys.bound lo hi

(* One Jacobi step: %out[i] = (in[i-1] + in[i] + in[i+1]) / 3. *)
let jacobi1d_step_body bld args =
  match args with
  | [ t ] ->
      let l = Stencil.access_op bld t [ -1 ] in
      let c = Stencil.access_op bld t [ 0 ] in
      let r = Stencil.access_op bld t [ 1 ] in
      let third = Arith.const_float bld (1. /. 3.) in
      let s = Arith.add_f bld l c in
      let s = Arith.add_f bld s r in
      let m = Arith.mul_f bld s third in
      Stencil.return_vals bld [ m ]
  | _ -> assert false

(* func @step(%a, %b : field<[-1,n+1) f64>): b[0,n) = jacobi(a). *)
let jacobi1d_module ~n : Op.t =
  let fty = Stencil.field_ty [ b1 (-1) (n + 1) ] Typesys.f64 in
  let f =
    Func.define "step" ~arg_tys: [ fty; fty ] ~res_tys: [] (fun bld args ->
        match args with
        | [ a; bfield ] ->
            let t = Stencil.load_op bld a in
            let res =
              Stencil.apply_op bld ~inputs: [ t ]
                ~out_bounds: [ b1 0 n ] ~elt: Typesys.f64 ~n_results: 1
                jacobi1d_step_body
            in
            Stencil.store_op bld (List.hd res) bfield ~lb: [ 0 ] ~ub: [ n ];
            Func.return_op bld []
        | _ -> assert false)
  in
  Op.module_op [ f ]

(* func @run(%a, %b): for t in [0, steps): swap buffers each iteration. *)
let jacobi1d_timeloop_module ~n ~steps : Op.t =
  let fty = Stencil.field_ty [ b1 (-1) (n + 1) ] Typesys.f64 in
  let f =
    Func.define "run" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ a; bfield ] ->
            let lo = Arith.const_index bld 0 in
            let hi = Arith.const_index bld steps in
            let step = Arith.const_index bld 1 in
            let outs =
              Scf.for_op bld ~lo ~hi ~step ~init: [ a; bfield ]
                (fun body _iv iters ->
                  match iters with
                  | [ cur; nxt ] ->
                      let t = Stencil.load_op body cur in
                      let res =
                        Stencil.apply_op body ~inputs: [ t ]
                          ~out_bounds: [ b1 0 n ] ~elt: Typesys.f64
                          ~n_results: 1 jacobi1d_step_body
                      in
                      Stencil.store_op body (List.hd res) nxt ~lb: [ 0 ]
                        ~ub: [ n ];
                      Scf.yield_op body [ nxt; cur ]
                  | _ -> assert false)
            in
            Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ f ]

(* 2D 5-point heat stencil with one timestep. *)
let heat2d_module ~nx ~ny : Op.t =
  let bounds = [ b1 (-1) (nx + 1); b1 (-1) (ny + 1) ] in
  let fty = Stencil.field_ty bounds Typesys.f32 in
  let f =
    Func.define "step" ~arg_tys: [ fty; fty ] ~res_tys: [] (fun bld args ->
        match args with
        | [ a; out ] ->
            let t = Stencil.load_op bld a in
            let res =
              Stencil.apply_op bld ~inputs: [ t ]
                ~out_bounds: [ b1 0 nx; b1 0 ny ]
                ~elt: Typesys.f32 ~n_results: 1 (fun body ba ->
                  match ba with
                  | [ t ] ->
                      let c = Stencil.access_op body t [ 0; 0 ] in
                      let n = Stencil.access_op body t [ 0; -1 ] in
                      let s = Stencil.access_op body t [ 0; 1 ] in
                      let w = Stencil.access_op body t [ -1; 0 ] in
                      let e = Stencil.access_op body t [ 1; 0 ] in
                      let alpha =
                        Arith.const_float body ~ty: Typesys.f32 0.1
                      in
                      let four =
                        Arith.const_float body ~ty: Typesys.f32 4.
                      in
                      let sum = Arith.add_f body n s in
                      let sum = Arith.add_f body sum w in
                      let sum = Arith.add_f body sum e in
                      let c4 = Arith.mul_f body c four in
                      let lap = Arith.sub_f body sum c4 in
                      let dt = Arith.mul_f body lap alpha in
                      let out_v = Arith.add_f body c dt in
                      Stencil.return_vals body [ out_v ]
                  | _ -> assert false)
            in
            Stencil.store_op bld (List.hd res) out ~lb: [ 0; 0 ]
              ~ub: [ nx; ny ];
            Func.return_op bld []
        | _ -> assert false)
  in
  Op.module_op [ f ]

(* 2D heat with a time loop and buffer swapping. *)
let heat2d_timeloop_module ~nx ~ny ~steps : Op.t =
  let bounds = [ b1 (-1) (nx + 1); b1 (-1) (ny + 1) ] in
  let fty = Stencil.field_ty bounds Typesys.f32 in
  let f =
    Func.define "run" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ a; out ] ->
            let lo = Arith.const_index bld 0 in
            let hi = Arith.const_index bld steps in
            let stepv = Arith.const_index bld 1 in
            let outs =
              Scf.for_op bld ~lo ~hi ~step: stepv ~init: [ a; out ]
                (fun body _iv iters ->
                  match iters with
                  | [ cur; nxt ] ->
                      let t = Stencil.load_op body cur in
                      let res =
                        Stencil.apply_op body ~inputs: [ t ]
                          ~out_bounds: [ b1 0 nx; b1 0 ny ]
                          ~elt: Typesys.f32 ~n_results: 1 (fun bb ba ->
                            match ba with
                            | [ t ] ->
                                let c = Stencil.access_op bb t [ 0; 0 ] in
                                let n = Stencil.access_op bb t [ 0; -1 ] in
                                let s = Stencil.access_op bb t [ 0; 1 ] in
                                let w = Stencil.access_op bb t [ -1; 0 ] in
                                let e = Stencil.access_op bb t [ 1; 0 ] in
                                let alpha =
                                  Arith.const_float bb ~ty: Typesys.f32 0.1
                                in
                                let four =
                                  Arith.const_float bb ~ty: Typesys.f32 4.
                                in
                                let sum = Arith.add_f bb n s in
                                let sum = Arith.add_f bb sum w in
                                let sum = Arith.add_f bb sum e in
                                let c4 = Arith.mul_f bb c four in
                                let lap = Arith.sub_f bb sum c4 in
                                let dt = Arith.mul_f bb lap alpha in
                                let out_v = Arith.add_f bb c dt in
                                Stencil.return_vals bb [ out_v ]
                            | _ -> assert false)
                      in
                      Stencil.store_op body (List.hd res) nxt ~lb: [ 0; 0 ]
                        ~ub: [ nx; ny ];
                      Scf.yield_op body [ nxt; cur ]
                  | _ -> assert false)
            in
            Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ f ]

(* 2D wave equation with a time loop: u_next = 2*u - u_prev + c*lap(u),
   the classic 3-time-level scheme folded onto two buffers (u_next
   overwrites u_prev, then the levels rotate through the loop carries).
   A second differential-test workload beside heat2d: two stencil inputs
   per apply, so the threaded executor's frame cloning is exercised with
   more than one live buffer. *)
let wave2d_timeloop_module ~nx ~ny ~steps : Op.t =
  let bounds = [ b1 (-1) (nx + 1); b1 (-1) (ny + 1) ] in
  let fty = Stencil.field_ty bounds Typesys.f32 in
  let f =
    Func.define "wave" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ prev; cur ] ->
            let lo = Arith.const_index bld 0 in
            let hi = Arith.const_index bld steps in
            let stepv = Arith.const_index bld 1 in
            let outs =
              Scf.for_op bld ~lo ~hi ~step: stepv ~init: [ prev; cur ]
                (fun body _iv iters ->
                  match iters with
                  | [ prev; cur ] ->
                      let tc = Stencil.load_op body cur in
                      let tp = Stencil.load_op body prev in
                      let res =
                        Stencil.apply_op body ~inputs: [ tc; tp ]
                          ~out_bounds: [ b1 0 nx; b1 0 ny ]
                          ~elt: Typesys.f32 ~n_results: 1 (fun bb ba ->
                            match ba with
                            | [ c; p ] ->
                                let u = Stencil.access_op bb c [ 0; 0 ] in
                                let n = Stencil.access_op bb c [ 0; -1 ] in
                                let s = Stencil.access_op bb c [ 0; 1 ] in
                                let w = Stencil.access_op bb c [ -1; 0 ] in
                                let e = Stencil.access_op bb c [ 1; 0 ] in
                                let up = Stencil.access_op bb p [ 0; 0 ] in
                                let c2 =
                                  Arith.const_float bb ~ty: Typesys.f32 0.25
                                in
                                let two =
                                  Arith.const_float bb ~ty: Typesys.f32 2.
                                in
                                let four =
                                  Arith.const_float bb ~ty: Typesys.f32 4.
                                in
                                let sum = Arith.add_f bb n s in
                                let sum = Arith.add_f bb sum w in
                                let sum = Arith.add_f bb sum e in
                                let u4 = Arith.mul_f bb u four in
                                let lap = Arith.sub_f bb sum u4 in
                                let u2 = Arith.mul_f bb u two in
                                let acc = Arith.sub_f bb u2 up in
                                let dt = Arith.mul_f bb lap c2 in
                                let out_v = Arith.add_f bb acc dt in
                                Stencil.return_vals bb [ out_v ]
                            | _ -> assert false)
                      in
                      Stencil.store_op body (List.hd res) prev ~lb: [ 0; 0 ]
                        ~ub: [ nx; ny ];
                      Scf.yield_op body [ cur; prev ]
                  | _ -> assert false)
            in
            Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ f ]

(* Field initialization helpers. *)

let make_field_1d ~n f : Interp.Rtval.buffer =
  let buf = Interp.Rtval.alloc_buffer ~lo: [ -1 ] [ n + 2 ] Typesys.f64 in
  for i = -1 to n do
    Interp.Rtval.set buf [ i ] (Interp.Rtval.Rf (f i))
  done;
  buf

let make_field_2d ~nx ~ny f : Interp.Rtval.buffer =
  let buf =
    Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ nx + 2; ny + 2 ] Typesys.f32
  in
  for i = -1 to nx do
    for j = -1 to ny do
      Interp.Rtval.set buf [ i; j ] (Interp.Rtval.Rf (f i j))
    done
  done;
  buf

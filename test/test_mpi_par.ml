(* Tests for the multicore domain substrate (mpi_par) and for the
   behaviour shared across both MPI substrates through the common
   {!Mpi_intf.MPI_CORE} signature: point-to-point transport, collectives,
   deterministic wildcard matching, payload-aliasing safety (qcheck),
   backpressure, the stall watchdog, and end-to-end equivalence of the
   distributed pipeline on domains vs fibers. *)

let check = Alcotest.check
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-9

let contains msg needle = Support.assert_contains ~what: "report" msg needle

(* --- substrate-generic tests, instantiated for both runtimes --- *)

module Shared (M : Mpi_intf.MPI_CORE) = struct
  let floats a = Mpi_intf.Floats a

  let test_send_recv () =
    let received = ref [||] in
    ignore
      (M.run ~ranks: 2 (fun ctx ->
           if M.rank ctx = 0 then
             M.send ctx ~dest: 1 ~tag: 0 (floats [| 1.; 2.; 3. |])
           else
             match M.recv ctx ~source: 0 ~tag: 0 with
             | Mpi_intf.Floats a -> received := a
             | _ -> ()));
    check (Alcotest.array float_c) "payload" [| 1.; 2.; 3. |] !received

  let test_exchange_pair () =
    let results = Array.make 2 0. in
    ignore
      (M.run ~ranks: 2 (fun ctx ->
           let me = M.rank ctx in
           let peer = 1 - me in
           let s =
             M.isend ctx ~dest: peer ~tag: 7 (floats [| float_of_int (10 + me) |])
           in
           let r = M.irecv ctx ~source: peer ~tag: 7 in
           M.waitall [ s; r ];
           match M.wait r with
           | Some (Mpi_intf.Floats x) -> results.(me) <- x.(0)
           | _ -> ()));
    check float_c "rank 0 got 11" 11. results.(0);
    check float_c "rank 1 got 10" 10. results.(1)

  let test_any_source_deterministic () =
    (* Ranks 1 and 2 each send one message to rank 0, then everybody
       synchronizes, and only then does rank 0 post two wildcard receives:
       both messages are pending, so deterministic matching must complete
       them in ascending source order on either substrate. *)
    let order = ref [] in
    let comm =
      M.run ~trace: true ~ranks: 3 (fun ctx ->
          let me = M.rank ctx in
          if me > 0 then M.send ctx ~dest: 0 ~tag: 4 (floats [| float_of_int me |]);
          M.barrier ctx;
          if me = 0 then
            for _ = 1 to 2 do
              match M.recv ctx ~source: Mpi_intf.any_source ~tag: 4 with
              | Mpi_intf.Floats x -> order := x.(0) :: !order
              | _ -> ()
            done)
    in
    check (Alcotest.list float_c) "ascending source order" [ 1.; 2. ]
      (List.rev !order);
    (* The timeline records the wildcard irecv and the resolved source. *)
    let resolved =
      List.filter_map
        (fun (e : Mpi_intf.timeline_event) ->
          match e.Mpi_intf.kind with
          | Mpi_intf.Recv_complete { source; tag = 4; _ } when e.Mpi_intf.ev_rank = 0 ->
              Some source
          | _ -> None)
        (M.timeline comm)
    in
    check (Alcotest.list int_c) "resolved sources" [ 1; 2 ] resolved;
    let wildcards =
      List.exists
        (fun (e : Mpi_intf.timeline_event) ->
          match e.Mpi_intf.kind with
          | Mpi_intf.Irecv { source; _ } -> source = Mpi_intf.any_source
          | _ -> false)
        (M.timeline comm)
    in
    check Alcotest.bool "wildcard irecv recorded" true wildcards

  let test_collectives () =
    let ranks = 4 in
    let bcast_got = Array.make ranks 0. in
    let reduce_got = ref 0. in
    let allreduce_got = Array.make ranks 0. in
    let gather_got = ref [] in
    ignore
      (M.run ~ranks (fun ctx ->
           let me = M.rank ctx in
           (match
              M.bcast ctx ~root: 1
                (if me = 1 then floats [| 7. |] else floats [| 0. |])
            with
           | Mpi_intf.Floats x -> bcast_got.(me) <- x.(0)
           | _ -> ());
           (match M.reduce ctx ~root: 0 `Sum (floats [| float_of_int me |]) with
           | Some (Mpi_intf.Floats x) -> reduce_got := x.(0)
           | _ -> ());
           (match M.allreduce ctx `Max (floats [| float_of_int (me * me) |]) with
           | Mpi_intf.Floats x -> allreduce_got.(me) <- x.(0)
           | _ -> ());
           (match M.gather ctx ~root: 0 (floats [| float_of_int me |]) with
           | Some parts ->
               gather_got :=
                 List.map (function Mpi_intf.Floats x -> x.(0) | _ -> nan) parts
           | None -> ());
           M.barrier ctx));
    Array.iter (fun v -> check float_c "bcast" 7. v) bcast_got;
    check float_c "reduce sum" 6. !reduce_got;
    Array.iter (fun v -> check float_c "allreduce max" 9. v) allreduce_got;
    check (Alcotest.list float_c) "gather" [ 0.; 1.; 2.; 3. ] !gather_got

  (* Satellite: mutating a received payload must never corrupt the
     sender's buffer, and mutating the sender's buffer after the send must
     not alter what the receiver observes (eager copy-out semantics). *)
  let aliasing_prop =
    QCheck.Test.make ~count: 30
      ~name: (Printf.sprintf "no payload aliasing (%s)" M.substrate)
      QCheck.(list_of_size Gen.(1 -- 16) (float_range (-1e3) 1e3))
      (fun values ->
        let original = Array.of_list values in
        let sent = Array.copy original in
        let observed = ref [||] in
        ignore
          (M.run ~ranks: 2 (fun ctx ->
               if M.rank ctx = 0 then begin
                 M.send ctx ~dest: 1 ~tag: 0 (floats sent);
                 (* Mutate the sender's buffer after the send returns. *)
                 Array.fill sent 0 (Array.length sent) nan;
                 ignore (M.recv ctx ~source: 1 ~tag: 1)
               end
               else begin
                 (match M.recv ctx ~source: 0 ~tag: 0 with
                 | Mpi_intf.Floats a ->
                     observed := Array.copy a;
                     (* Mutate the received payload in place. *)
                     Array.fill a 0 (Array.length a) infinity
                 | _ -> ());
                 M.send ctx ~dest: 0 ~tag: 1 (floats [| 0. |])
               end));
        !observed = original)

  let suite =
    let tag name = Printf.sprintf "%s (%s)" name M.substrate in
    [
      Alcotest.test_case (tag "send/recv") `Quick test_send_recv;
      Alcotest.test_case (tag "exchange pair") `Quick test_exchange_pair;
      Alcotest.test_case
        (tag "any_source deterministic")
        `Quick test_any_source_deterministic;
      Alcotest.test_case (tag "collectives") `Quick test_collectives;
      QCheck_alcotest.to_alcotest aliasing_prop;
    ]
end

module Shared_sim = Shared (Mpi_sim)
module Shared_par = Shared (Mpi_par)

(* --- mpi_par-specific behaviour --- *)

let floats a = Mpi_intf.Floats a

let test_fifo_order () =
  let got = ref [] in
  ignore
    (Mpi_par.run ~ranks: 2 (fun ctx ->
         if Mpi_par.rank ctx = 0 then
           for i = 1 to 8 do
             Mpi_par.send ctx ~dest: 1 ~tag: 0 (floats [| float_of_int i |])
           done
         else
           for _ = 1 to 8 do
             match Mpi_par.recv ctx ~source: 0 ~tag: 0 with
             | Mpi_intf.Floats x -> got := x.(0) :: !got
             | _ -> ()
           done));
  check (Alcotest.list float_c) "fifo" [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ]
    (List.rev !got)

let test_backpressure () =
  (* Capacity-1 mailboxes: the sender must block on the full queue and be
     woken by each receive; everything still arrives in order. *)
  let got = ref [] in
  ignore
    (Mpi_par.run_with ~queue_capacity: 1 ~stall_timeout_s: 10. ~ranks: 2
       (fun ctx ->
         if Mpi_par.rank ctx = 0 then
           for i = 1 to 16 do
             Mpi_par.send ctx ~dest: 1 ~tag: 0 (floats [| float_of_int i |])
           done
         else
           for _ = 1 to 16 do
             match Mpi_par.recv ctx ~source: 0 ~tag: 0 with
             | Mpi_intf.Floats x -> got := x.(0) :: !got
             | _ -> ()
           done));
  check int_c "all delivered" 16 (List.length !got);
  check (Alcotest.list float_c) "in order"
    (List.init 16 (fun i -> float_of_int (i + 1)))
    (List.rev !got)

let test_stall_watchdog () =
  (* Deliberately mismatched tags: rank 0 waits on tag 0, rank 1 waits on
     tag 1, nobody sends.  The watchdog must poison the run and the report
     must name each blocked domain's pending operation. *)
  match
    Mpi_par.run_with ~stall_timeout_s: 0.3 ~ranks: 2 (fun ctx ->
        let me = Mpi_par.rank ctx in
        ignore (Mpi_par.recv ctx ~source: (1 - me) ~tag: me))
  with
  | _ -> Alcotest.fail "expected Stall"
  | exception Mpi_par.Stall report ->
      contains report "rank 0";
      contains report "rank 1";
      contains report "recv";
      contains report "tag=0";
      contains report "tag=1"

let test_stall_peer_exited () =
  (* Rank 1 waits for a peer that already finished: no progress is possible
     even though one domain completed cleanly. *)
  match
    Mpi_par.run_with ~stall_timeout_s: 0.3 ~ranks: 2 (fun ctx ->
        if Mpi_par.rank ctx = 1 then
          ignore (Mpi_par.recv ctx ~source: 0 ~tag: 9))
  with
  | _ -> Alcotest.fail "expected Stall"
  | exception Mpi_par.Stall report ->
      contains report "rank 1";
      contains report "tag=9"

let test_stall_report_recent_events () =
  (* When the stalled run was traced, the watchdog report must replay each
     blocked rank's most recent timeline events with their age, so the
     deadlock can be diagnosed from the report alone. *)
  match
    Mpi_par.run_with ~stall_timeout_s: 0.3 ~trace: true ~ranks: 2 (fun ctx ->
        let me = Mpi_par.rank ctx in
        let peer = 1 - me in
        (* One successful round first, so the report has history to show. *)
        Mpi_par.send ctx ~dest: peer ~tag: 5 (Mpi_intf.Floats [| 1.; 2. |]);
        ignore (Mpi_par.recv ctx ~source: peer ~tag: 5);
        (* Then a mismatched-tag deadlock. *)
        ignore (Mpi_par.recv ctx ~source: peer ~tag: me))
  with
  | _ -> Alcotest.fail "expected Stall"
  | exception Mpi_par.Stall report ->
      contains report "blocked in";
      contains report "ago:";
      contains report "recv-complete";
      contains report "bytes=16"

let test_body_exception_propagates () =
  (* A domain raising must poison the others (blocked in recv) and the
     original exception must surface, not a stall. *)
  match
    Mpi_par.run_with ~stall_timeout_s: 10. ~ranks: 2 (fun ctx ->
        if Mpi_par.rank ctx = 0 then failwith "boom"
        else ignore (Mpi_par.recv ctx ~source: 0 ~tag: 0))
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> check Alcotest.string "original exception" "boom" msg

let test_bad_peer () =
  match
    Mpi_par.run ~ranks: 2 (fun ctx ->
        if Mpi_par.rank ctx = 0 then
          Mpi_par.send ctx ~dest: 5 ~tag: 0 (floats [| 1. |]))
  with
  | _ -> Alcotest.fail "expected Mpi_error"
  | exception Mpi_par.Mpi_error _ -> ()

let test_traffic_and_timeline () =
  let comm =
    Mpi_par.run ~trace: true ~ranks: 2 (fun ctx ->
        if Mpi_par.rank ctx = 0 then begin
          Mpi_par.send ctx ~dest: 1 ~tag: 0 ~bytes: 400 (floats (Array.make 100 0.));
          Mpi_par.send ctx ~dest: 1 ~tag: 0 ~bytes: 400 (floats (Array.make 100 0.))
        end
        else begin
          ignore (Mpi_par.recv ctx ~source: 0 ~tag: 0);
          ignore (Mpi_par.recv ctx ~source: 0 ~tag: 0)
        end)
  in
  check int_c "messages" 2 (Mpi_par.total_messages comm);
  check int_c "bytes" 800 (Mpi_par.total_bytes comm);
  check int_c "edge bytes = total bytes" (Mpi_par.total_bytes comm)
    (Mpi_intf.edge_bytes_of (Mpi_par.timeline comm));
  check int_c "rank1 sent nothing" 0
    (Mpi_par.rank_stats comm 1).Mpi_intf.messages;
  (* Both ranks produced events; sequence numbers are unique and dense. *)
  List.iter
    (fun r ->
      if Mpi_par.rank_timeline comm r = [] then
        Alcotest.failf "rank %d has no timeline" r)
    [ 0; 1 ];
  let seqs = List.map (fun (e : Mpi_intf.timeline_event) -> e.Mpi_intf.seq)
      (Mpi_par.timeline comm)
  in
  check (Alcotest.list int_c) "dense seq" (List.init (List.length seqs) Fun.id) seqs

(* --- end-to-end: the distributed pipeline on domains vs fibers --- *)

let test_harness_equivalence () =
  let m = Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 2 in
  List.iter
    (fun ranks ->
      let sim =
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim ~ranks m
      in
      let par =
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~ranks m
      in
      check float_c
        (Printf.sprintf "par == serial at %d ranks" ranks)
        0. par.Driver.Harness.max_diff_vs_serial;
      check float_c
        (Printf.sprintf "sim == serial at %d ranks" ranks)
        0. sim.Driver.Harness.max_diff_vs_serial;
      check float_c
        (Printf.sprintf "par == sim at %d ranks" ranks)
        0.
        (Driver.Harness.max_result_diff par sim))
    [ 1; 2; 4; 8 ]

let suite =
  Shared_sim.suite @ Shared_par.suite
  @ [
      Alcotest.test_case "fifo order (par)" `Quick test_fifo_order;
      Alcotest.test_case "backpressure capacity 1" `Quick test_backpressure;
      Alcotest.test_case "stall watchdog: mismatched tags" `Quick
        test_stall_watchdog;
      Alcotest.test_case "stall watchdog: peer exited" `Quick
        test_stall_peer_exited;
      Alcotest.test_case "stall report replays recent traced events" `Quick
        test_stall_report_recent_events;
      Alcotest.test_case "body exception propagates" `Quick
        test_body_exception_propagates;
      Alcotest.test_case "bad peer" `Quick test_bad_peer;
      Alcotest.test_case "traffic + timeline" `Quick test_traffic_and_timeline;
      Alcotest.test_case "distributed pipeline: par == sim == serial" `Quick
        test_harness_equivalence;
    ]

(* Tests for the simulated MPI runtime: point-to-point matching, requests,
   collectives, determinism, deadlock detection and traffic accounting. *)

let check = Alcotest.check
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-9

let floats a = Mpi_sim.Floats a

let test_send_recv () =
  let received = ref [||] in
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         if Mpi_sim.rank ctx = 0 then
           Mpi_sim.send ctx ~dest: 1 ~tag: 0 (floats [| 1.; 2.; 3. |])
         else
           match Mpi_sim.recv ctx ~source: 0 ~tag: 0 with
           | Mpi_sim.Floats a -> received := a
           | _ -> ()));
  check (Alcotest.array float_c) "payload" [| 1.; 2.; 3. |] !received

let test_recv_before_send () =
  (* Rank 1 posts the receive before rank 0 sends: the scheduler must block
     and resume it. *)
  let ok = ref false in
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         if Mpi_sim.rank ctx = 1 then begin
           let p = Mpi_sim.recv ctx ~source: 0 ~tag: 5 in
           ok := p = floats [| 9. |]
         end
         else begin
           (* Let rank 1 block first by doing a barrier-free busy step. *)
           Mpi_sim.send ctx ~dest: 1 ~tag: 5 (floats [| 9. |])
         end));
  check Alcotest.bool "resumed" true !ok

let test_tag_matching () =
  (* Messages with different tags must not cross. *)
  let a = ref 0. and b = ref 0. in
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         if Mpi_sim.rank ctx = 0 then begin
           Mpi_sim.send ctx ~dest: 1 ~tag: 1 (floats [| 1. |]);
           Mpi_sim.send ctx ~dest: 1 ~tag: 2 (floats [| 2. |])
         end
         else begin
           (* Receive in the opposite order. *)
           (match Mpi_sim.recv ctx ~source: 0 ~tag: 2 with
           | Mpi_sim.Floats x -> b := x.(0)
           | _ -> ());
           match Mpi_sim.recv ctx ~source: 0 ~tag: 1 with
           | Mpi_sim.Floats x -> a := x.(0)
           | _ -> ()
         end));
  check float_c "tag 1" 1. !a;
  check float_c "tag 2" 2. !b

let test_fifo_order () =
  (* Same (src, dst, tag): messages arrive in send order. *)
  let got = ref [] in
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         if Mpi_sim.rank ctx = 0 then
           for i = 1 to 4 do
             Mpi_sim.send ctx ~dest: 1 ~tag: 0 (floats [| float_of_int i |])
           done
         else
           for _ = 1 to 4 do
             match Mpi_sim.recv ctx ~source: 0 ~tag: 0 with
             | Mpi_sim.Floats x -> got := x.(0) :: !got
             | _ -> ()
           done));
  check (Alcotest.list float_c) "fifo" [ 1.; 2.; 3.; 4. ] (List.rev !got)

let test_isend_irecv_waitall () =
  let results = Array.make 2 0. in
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         let me = Mpi_sim.rank ctx in
         let peer = 1 - me in
         let s =
           Mpi_sim.isend ctx ~dest: peer ~tag: 7
             (floats [| float_of_int (10 + me) |])
         in
         let r = Mpi_sim.irecv ctx ~source: peer ~tag: 7 in
         Mpi_sim.waitall [ s; r ];
         match Mpi_sim.wait r with
         | Some (Mpi_sim.Floats x) -> results.(me) <- x.(0)
         | _ -> ()));
  check float_c "rank 0 got 11" 11. results.(0);
  check float_c "rank 1 got 10" 10. results.(1)

let test_test_progress () =
  ignore
    (Mpi_sim.run ~ranks: 2 (fun ctx ->
         if Mpi_sim.rank ctx = 0 then
           Mpi_sim.send ctx ~dest: 1 ~tag: 0 (floats [| 1. |])
         else begin
           let r = Mpi_sim.irecv ctx ~source: 0 ~tag: 0 in
           (* The eager send happens before this fiber runs again, so test
              eventually succeeds; at worst after one wait. *)
           ignore (Mpi_sim.test r);
           ignore (Mpi_sim.wait r)
         end))

let test_bcast () =
  let got = Array.make 4 0. in
  ignore
    (Mpi_sim.run ~ranks: 4 (fun ctx ->
         let me = Mpi_sim.rank ctx in
         let payload = if me = 2 then floats [| 5. |] else floats [| 0. |] in
         match Mpi_sim.bcast ctx ~root: 2 payload with
         | Mpi_sim.Floats x -> got.(me) <- x.(0)
         | _ -> ()));
  Array.iter (fun v -> check float_c "bcast value" 5. v) got

let test_reduce_sum () =
  let result = ref 0. in
  ignore
    (Mpi_sim.run ~ranks: 5 (fun ctx ->
         let me = Mpi_sim.rank ctx in
         match
           Mpi_sim.reduce ctx ~root: 0 `Sum (floats [| float_of_int me |])
         with
         | Some (Mpi_sim.Floats x) -> result := x.(0)
         | _ -> ()));
  check float_c "0+1+2+3+4" 10. !result

let test_allreduce_max () =
  let worst = ref infinity in
  ignore
    (Mpi_sim.run ~ranks: 4 (fun ctx ->
         let me = Mpi_sim.rank ctx in
         match
           Mpi_sim.allreduce ctx `Max (floats [| float_of_int (me * me) |])
         with
         | Mpi_sim.Floats x -> if x.(0) < !worst then worst := x.(0)
         | _ -> ()));
  check float_c "max everywhere" 9. !worst

let test_gather () =
  let collected = ref [] in
  ignore
    (Mpi_sim.run ~ranks: 3 (fun ctx ->
         let me = Mpi_sim.rank ctx in
         match Mpi_sim.gather ctx ~root: 0 (floats [| float_of_int me |]) with
         | Some parts ->
             collected :=
               List.map
                 (function Mpi_sim.Floats x -> x.(0) | _ -> nan)
                 parts
         | None -> ()));
  check (Alcotest.list float_c) "gathered" [ 0.; 1.; 2. ] !collected

let test_barrier_all_arrive () =
  let after = ref 0 in
  ignore
    (Mpi_sim.run ~ranks: 6 (fun ctx ->
         Mpi_sim.barrier ctx;
         ignore ctx;
         incr after));
  check int_c "all passed barrier" 6 !after

let test_deadlock_detection () =
  (try
     ignore
       (Mpi_sim.run ~ranks: 2 (fun ctx ->
            (* Both ranks wait for a message nobody sends. *)
            ignore (Mpi_sim.recv ctx ~source: (1 - Mpi_sim.rank ctx) ~tag: 3)));
     Alcotest.fail "expected deadlock"
   with Mpi_sim.Deadlock msg ->
     (* The report names every stuck rank and what it is blocked on. *)
     let contains needle =
       Support.assert_contains ~what: "deadlock report" msg needle
     in
     contains "rank 0";
     contains "rank 1";
     contains "irecv")

let test_bad_peer () =
  (try
     ignore
       (Mpi_sim.run ~ranks: 2 (fun ctx ->
            Mpi_sim.send ctx ~dest: 5 ~tag: 0 (floats [| 1. |])));
     Alcotest.fail "expected error"
   with Mpi_sim.Mpi_error _ -> ())

let test_traffic_accounting () =
  let comm =
    Mpi_sim.run ~ranks: 2 (fun ctx ->
        if Mpi_sim.rank ctx = 0 then begin
          Mpi_sim.send ctx ~dest: 1 ~tag: 0 ~bytes: 400 (floats (Array.make 100 0.));
          Mpi_sim.send ctx ~dest: 1 ~tag: 0 ~bytes: 400 (floats (Array.make 100 0.))
        end
        else begin
          ignore (Mpi_sim.recv ctx ~source: 0 ~tag: 0);
          ignore (Mpi_sim.recv ctx ~source: 0 ~tag: 0)
        end)
  in
  check int_c "messages" 2 (Mpi_sim.total_messages comm);
  check int_c "bytes" 800 (Mpi_sim.total_bytes comm);
  check int_c "rank1 sent nothing" 0 (Mpi_sim.rank_stats comm 1).Mpi_sim.messages

let test_determinism () =
  (* Two identical runs must interleave identically; we check via a trace of
     receive completions. *)
  let trace () =
    let log = ref [] in
    ignore
      (Mpi_sim.run ~ranks: 3 (fun ctx ->
           let me = Mpi_sim.rank ctx in
           let peer = (me + 1) mod 3 in
           let from = (me + 2) mod 3 in
           Mpi_sim.send ctx ~dest: peer ~tag: 0 (floats [| float_of_int me |]);
           match Mpi_sim.recv ctx ~source: from ~tag: 0 with
           | Mpi_sim.Floats x -> log := (me, x.(0)) :: !log
           | _ -> ()));
    !log
  in
  let t1 = trace () and t2 = trace () in
  Alcotest.check Alcotest.bool "deterministic schedule" true (t1 = t2)

let suite =
  [
    Alcotest.test_case "send/recv" `Quick test_send_recv;
    Alcotest.test_case "recv posted before send" `Quick test_recv_before_send;
    Alcotest.test_case "tag matching" `Quick test_tag_matching;
    Alcotest.test_case "fifo order per channel" `Quick test_fifo_order;
    Alcotest.test_case "isend/irecv/waitall" `Quick test_isend_irecv_waitall;
    Alcotest.test_case "test + wait" `Quick test_test_progress;
    Alcotest.test_case "bcast" `Quick test_bcast;
    Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
    Alcotest.test_case "allreduce max" `Quick test_allreduce_max;
    Alcotest.test_case "gather" `Quick test_gather;
    Alcotest.test_case "barrier" `Quick test_barrier_all_arrive;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "bad peer" `Quick test_bad_peer;
    Alcotest.test_case "traffic accounting" `Quick test_traffic_accounting;
    Alcotest.test_case "deterministic scheduling" `Quick test_determinism;
  ]

(* Tests for the compile-service layer: canonical digests (stable across
   print/parse round-trips and SSA renumbering, insensitive to attribute
   order), the Domains-safe promise-per-key cache, single-compilation
   through the artifact layer, and the --serve line protocol. *)

open Ir

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The heat2d demo as stencilc builds it; constructing it twice allocates
   fresh SSA value ids throughout, which the canonical print must hide. *)
let heat_module ?(n = 16) ?(timesteps = 3) () : Op.t =
  let g = Devito.Symbolic.grid ~dt: 0.1 [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  snd (Devito.Operator.operator ~name: "heat2d" ~timesteps eqn)

let dist_target ~ranks : Core.Pipeline.target =
  Core.Pipeline.Distributed_cpu
    {
      ranks;
      strategy = Core.Decomposition.Slice2d;
      mode = Core.Decomposition.Faces;
      tiles = [];
      overlap = true;
    }

(* --- canonical digests --- *)

(* Random well-typed programs (reusing the exec_compile generators):
   printing and re-parsing allocates fresh value ids, and the generic
   printer's output order is deterministic, so the canonical string must
   be identical on both sides. *)
let roundtrip_digest_prop =
  QCheck.Test.make ~count: 100
    ~name: "canonical digest stable under print -> parse round-trip"
    (QCheck.make
       QCheck.Gen.(
         triple Test_exec_compile.gen_ie Test_exec_compile.gen_fe (1 -- 5))
       ~print: (fun (_, _, steps) ->
         Printf.sprintf "<random program, %d steps>" steps))
    (fun prog ->
      let m = Test_exec_compile.program_module prog in
      let reparsed = Parser.parse_string (Printer.module_to_string m) in
      Printer.canonical_module_string m
      = Printer.canonical_module_string reparsed)

let test_digest_ssa_insensitive () =
  (* Two builds of the same source program differ in every value id. *)
  let a = heat_module () and b = heat_module () in
  check bool_c "same canonical string" true
    (Printer.canonical_module_string a = Printer.canonical_module_string b);
  check bool_c "same artifact digest" true
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) b);
  (* ... and the digest keys on the program and the target. *)
  check bool_c "different program, different digest" false
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 4)
        (heat_module ~timesteps: 4 ()));
  check bool_c "different target, different digest" false
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 8) a)

let test_digest_attr_order_insensitive () =
  let m = heat_module () in
  let permuted =
    Op.with_module_ops m
      (List.map
         (fun (op : Op.t) -> { op with Op.attrs = List.rev op.Op.attrs })
         (Op.module_ops m))
  in
  (* The plain generic print renders attrs in insertion order, so the
     permutation is visible there... *)
  check bool_c "plain print differs" false
    (Printer.module_to_string m = Printer.module_to_string permuted);
  (* ... but the canonical rendering sorts attribute dictionaries. *)
  check bool_c "canonical print identical" true
    (Printer.canonical_module_string m
    = Printer.canonical_module_string permuted)

(* --- the Domains-safe cache --- *)

let test_cache_concurrent_same_key () =
  let c : int Service.Cache.t = Service.Cache.create "test-cache" in
  let computed = Atomic.make 0 in
  let workers = 8 in
  let domains =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            Service.Cache.find_or_compute c ~key: "k" (fun () ->
                Atomic.incr computed;
                (* Widen the race window so joiners really do find the
                   Pending entry and wait on the condition variable. *)
                Unix.sleepf 0.02;
                41 + 1)))
  in
  let results = List.map Domain.join domains in
  check bool_c "every requester got the value" true
    (List.for_all (fun (v, _) -> v = 42) results);
  check int_c "computed exactly once" 1 (Atomic.get computed);
  check int_c "exactly one miss flag" 1
    (List.length (List.filter (fun (_, f) -> f = `Miss) results));
  let s = Service.Cache.stats c in
  check int_c "counters reconcile with requests" workers
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check int_c "one miss counted" 1 s.Service.Cache.misses

let test_cache_concurrent_distinct_keys () =
  let c : string Service.Cache.t = Service.Cache.create "test-cache-2" in
  let computed = Atomic.make 0 in
  let keys = [ "a"; "b"; "c"; "d" ] in
  let domains =
    List.concat_map
      (fun key ->
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                fst
                  (Service.Cache.find_or_compute c ~key (fun () ->
                       Atomic.incr computed;
                       Unix.sleepf 0.01;
                       String.uppercase_ascii key)))))
      keys
  in
  let results = List.map Domain.join domains in
  check bool_c "all results correct" true
    (List.for_all (fun v -> String.length v = 1) results);
  check int_c "one computation per distinct key" (List.length keys)
    (Atomic.get computed);
  let s = Service.Cache.stats c in
  check int_c "counters reconcile" 12
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check int_c "entries resident" (List.length keys) (Service.Cache.length c)

let test_cache_failure_cached () =
  let c : int Service.Cache.t = Service.Cache.create "test-cache-3" in
  let computed = Atomic.make 0 in
  let attempt () =
    Service.Cache.find_or_compute c ~key: "boom" (fun () ->
        Atomic.incr computed;
        failwith "deterministic failure")
  in
  (match attempt () with
  | _ -> Alcotest.fail "expected the computation's exception"
  | exception Failure msg ->
      check bool_c "original message" true (msg = "deterministic failure"));
  (* The failure is cached: no recompute, same exception. *)
  (match attempt () with
  | _ -> Alcotest.fail "expected the cached exception"
  | exception Failure _ -> ());
  check int_c "computed once despite two requests" 1 (Atomic.get computed);
  check int_c "failure counted" 1 (Service.Cache.stats c).Service.Cache.failures

(* --- single compilation through the artifact layer --- *)

let test_single_compilation_4_ranks () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let c0 = Exec_compile.compile_count () in
  let r =
    Driver.Harness.run_distributed ~executor: Exec_compile.executor ~ranks: 4
      m
  in
  check bool_c "distributed == serial" true
    (r.Driver.Harness.max_diff_vs_serial = 0.);
  check int_c "4 ranks, exactly one closure compilation" 1
    (Exec_compile.compile_count () - c0);
  (* A second run of the structurally identical program is a pure cache
     hit: zero further compilations. *)
  let r2 =
    Driver.Harness.run_distributed ~executor: Exec_compile.executor ~ranks: 4
      (heat_module ())
  in
  check bool_c "second run still exact" true
    (r2.Driver.Harness.max_diff_vs_serial = 0.);
  check int_c "second run compiles nothing" 1
    (Exec_compile.compile_count () - c0)

let test_artifact_counters () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let s0 = Service.Artifact.stats () in
  let target = dist_target ~ranks: 2 in
  let executor = Exec_compile.executor in
  let a1, f1 = Service.Artifact.get_cached ~executor ~target m in
  let a2, f2 = Service.Artifact.get_cached ~executor ~target m in
  let s1 = Service.Artifact.stats () in
  check bool_c "first is a miss" true (f1 = `Miss);
  check bool_c "second is a hit" true (f2 = `Hit);
  check bool_c "same digest" true (a1.Service.Artifact.digest = a2.Service.Artifact.digest);
  check bool_c "hit artifacts report zero compile time" true
    (a2.Service.Artifact.compile_s = 0.);
  check int_c "one miss" 1
    (s1.Service.Cache.misses - s0.Service.Cache.misses);
  check int_c "one hit" 1 (s1.Service.Cache.hits - s0.Service.Cache.hits)

(* --- the --serve protocol --- *)

let test_serve_protocol () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let handlers =
    {
      Service.Serve.resolve_demo =
        (fun name -> if name = "heat-demo" then Some (heat_module ()) else None);
      run = None;
    }
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.Serve.serve ~handlers ic oc;
        close_in_noerr ic;
        close_out_noerr oc)
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let ask line =
    output_string oc (line ^ "\n");
    flush oc;
    match In_channel.input_line ic with
    | Some resp -> resp
    | None -> Alcotest.fail "server closed the pipe"
  in
  (* key=value field of a response line. *)
  let field resp key =
    List.find_map
      (fun w ->
        let prefix = key ^ "=" in
        let np = String.length prefix in
        if String.length w > np && String.sub w 0 np = prefix then
          Some (String.sub w np (String.length w - np))
        else None)
      (String.split_on_char ' ' resp)
  in
  check bool_c "ping" true (ask "ping" = "ok pong");
  let c1 = ask "compile demo=heat-demo ranks=2" in
  check bool_c "first compile misses" true (contains c1 "cached=miss");
  let c2 = ask "compile demo=heat-demo ranks=2" in
  check bool_c "repeat compile hits" true (contains c2 "cached=hit");
  check bool_c "same digest both times" true
    (field c1 "digest" = field c2 "digest" && field c1 "digest" <> None);
  (* Inline IR payload: digest must equal the demo's (same canonical
     form, reparsed). *)
  let ir_text = Printer.module_to_string m in
  let ir_req =
    Printf.sprintf "compile ir=%d ranks=2\n%s" (String.length ir_text) ir_text
  in
  output_string oc ir_req;
  flush oc;
  let c3 =
    match In_channel.input_line ic with
    | Some r -> r
    | None -> Alcotest.fail "server closed the pipe"
  in
  check bool_c "inline IR hits the demo's cache entry" true
    (contains c3 "cached=hit");
  check bool_c "inline IR digest equals the demo's" true
    (field c3 "digest" = field c1 "digest");
  let stats = ask "stats" in
  check bool_c "stats reports hits" true (contains stats "hits=");
  check bool_c "unknown demo is an error" true
    (contains (ask "compile demo=nope ranks=2") "error");
  check bool_c "run without handler is an error" true
    (contains (ask "run demo=heat-demo ranks=2") "error");
  check bool_c "unknown command is an error" true
    (contains (ask "frobnicate") "error");
  check bool_c "quit" true (ask "quit" = "ok bye");
  Domain.join server;
  List.iter Unix.close [ req_w; resp_r ]

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip_digest_prop;
    Alcotest.test_case "digest ignores SSA numbering" `Quick
      test_digest_ssa_insensitive;
    Alcotest.test_case "digest ignores attribute order" `Quick
      test_digest_attr_order_insensitive;
    Alcotest.test_case "cache: concurrent same key compiles once" `Quick
      test_cache_concurrent_same_key;
    Alcotest.test_case "cache: distinct keys compile independently" `Quick
      test_cache_concurrent_distinct_keys;
    Alcotest.test_case "cache: failures cached and re-raised" `Quick
      test_cache_failure_cached;
    Alcotest.test_case "harness 4 ranks: exactly one closure compile" `Quick
      test_single_compilation_4_ranks;
    Alcotest.test_case "artifact cache counters" `Quick test_artifact_counters;
    Alcotest.test_case "--serve line protocol" `Quick test_serve_protocol;
  ]

(* Tests for the compile-service layer: canonical digests (stable across
   print/parse round-trips and SSA renumbering, insensitive to attribute
   order), the Domains-safe promise-per-key cache (including eviction
   policies and failed-hit accounting), single-compilation through the
   artifact layer, the --serve line protocol (including the
   payload-drain framing rule), the multi-client socket daemon, and the
   on-disk artifact store's restart-persistence path. *)

open Ir

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The heat2d demo as stencilc builds it; constructing it twice allocates
   fresh SSA value ids throughout, which the canonical print must hide. *)
let heat_module ?(n = 16) ?(timesteps = 3) () : Op.t =
  let g = Devito.Symbolic.grid ~dt: 0.1 [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  snd (Devito.Operator.operator ~name: "heat2d" ~timesteps eqn)

let dist_target ~ranks : Core.Pipeline.target =
  Core.Pipeline.Distributed_cpu
    {
      ranks;
      strategy = Core.Decomposition.Slice2d;
      mode = Core.Decomposition.Faces;
      tiles = [];
      overlap = true;
    }

(* --- canonical digests --- *)

(* Random well-typed programs (reusing the exec_compile generators):
   printing and re-parsing allocates fresh value ids, and the generic
   printer's output order is deterministic, so the canonical string must
   be identical on both sides. *)
let roundtrip_digest_prop =
  QCheck.Test.make ~count: 100
    ~name: "canonical digest stable under print -> parse round-trip"
    (QCheck.make
       QCheck.Gen.(
         triple Test_exec_compile.gen_ie Test_exec_compile.gen_fe (1 -- 5))
       ~print: (fun (_, _, steps) ->
         Printf.sprintf "<random program, %d steps>" steps))
    (fun prog ->
      let m = Test_exec_compile.program_module prog in
      let reparsed = Parser.parse_string (Printer.module_to_string m) in
      Printer.canonical_module_string m
      = Printer.canonical_module_string reparsed)

let test_digest_ssa_insensitive () =
  (* Two builds of the same source program differ in every value id. *)
  let a = heat_module () and b = heat_module () in
  check bool_c "same canonical string" true
    (Printer.canonical_module_string a = Printer.canonical_module_string b);
  check bool_c "same artifact digest" true
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) b);
  (* ... and the digest keys on the program and the target. *)
  check bool_c "different program, different digest" false
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 4)
        (heat_module ~timesteps: 4 ()));
  check bool_c "different target, different digest" false
    (Service.Artifact.digest_of ~target: (dist_target ~ranks: 4) a
    = Service.Artifact.digest_of ~target: (dist_target ~ranks: 8) a)

let test_digest_attr_order_insensitive () =
  let m = heat_module () in
  let permuted =
    Op.with_module_ops m
      (List.map
         (fun (op : Op.t) -> { op with Op.attrs = List.rev op.Op.attrs })
         (Op.module_ops m))
  in
  (* The plain generic print renders attrs in insertion order, so the
     permutation is visible there... *)
  check bool_c "plain print differs" false
    (Printer.module_to_string m = Printer.module_to_string permuted);
  (* ... but the canonical rendering sorts attribute dictionaries. *)
  check bool_c "canonical print identical" true
    (Printer.canonical_module_string m
    = Printer.canonical_module_string permuted)

(* --- the Domains-safe cache --- *)

let test_cache_concurrent_same_key () =
  let c : int Service.Cache.t = Service.Cache.create "test-cache" in
  let computed = Atomic.make 0 in
  let workers = 8 in
  let domains =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            Service.Cache.find_or_compute c ~key: "k" (fun () ->
                Atomic.incr computed;
                (* Widen the race window so joiners really do find the
                   Pending entry and wait on the condition variable. *)
                Unix.sleepf 0.02;
                41 + 1)))
  in
  let results = List.map Domain.join domains in
  check bool_c "every requester got the value" true
    (List.for_all (fun (v, _) -> v = 42) results);
  check int_c "computed exactly once" 1 (Atomic.get computed);
  check int_c "exactly one miss flag" 1
    (List.length (List.filter (fun (_, f) -> f = `Miss) results));
  let s = Service.Cache.stats c in
  check int_c "counters reconcile with requests" workers
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check int_c "one miss counted" 1 s.Service.Cache.misses

let test_cache_concurrent_distinct_keys () =
  let c : string Service.Cache.t = Service.Cache.create "test-cache-2" in
  let computed = Atomic.make 0 in
  let keys = [ "a"; "b"; "c"; "d" ] in
  let domains =
    List.concat_map
      (fun key ->
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                fst
                  (Service.Cache.find_or_compute c ~key (fun () ->
                       Atomic.incr computed;
                       Unix.sleepf 0.01;
                       String.uppercase_ascii key)))))
      keys
  in
  let results = List.map Domain.join domains in
  check bool_c "all results correct" true
    (List.for_all (fun v -> String.length v = 1) results);
  check int_c "one computation per distinct key" (List.length keys)
    (Atomic.get computed);
  let s = Service.Cache.stats c in
  check int_c "counters reconcile" 12
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check int_c "entries resident" (List.length keys) (Service.Cache.length c)

let test_cache_failure_cached () =
  let c : int Service.Cache.t = Service.Cache.create "test-cache-3" in
  let computed = Atomic.make 0 in
  let attempt () =
    Service.Cache.find_or_compute c ~key: "boom" (fun () ->
        Atomic.incr computed;
        failwith "deterministic failure")
  in
  (match attempt () with
  | _ -> Alcotest.fail "expected the computation's exception"
  | exception Failure msg ->
      check bool_c "original message" true (msg = "deterministic failure"));
  (* The failure is cached: no recompute, same exception. *)
  (match attempt () with
  | _ -> Alcotest.fail "expected the cached exception"
  | exception Failure _ -> ());
  check int_c "computed once despite two requests" 1 (Atomic.get computed);
  let s = Service.Cache.stats c in
  check int_c "failure counted" 1 s.Service.Cache.failures;
  (* The repeat lookup landed on the cached failure: that is a
     failed_hit, NOT a healthy hit — a server hammered with a broken
     module must not report a clean hit rate. *)
  check int_c "failed lookup is a failed_hit" 1 s.Service.Cache.failed_hits;
  check int_c "no healthy hits" 0 s.Service.Cache.hits;
  check int_c "one miss" 1 s.Service.Cache.misses

(* --- eviction policies --- *)

let fill c keys =
  List.iter
    (fun k ->
      ignore (Service.Cache.find_or_compute c ~key: k (fun () -> k)))
    keys

(* Recompute = the thunk ran = the key had been evicted. *)
let recomputes c key =
  let ran = ref false in
  ignore
    (Service.Cache.find_or_compute c ~key (fun () ->
         ran := true;
         key));
  !ran

let test_eviction_fifo () =
  let c =
    Service.Cache.create ~capacity: 2 ~eviction: Service.Cache.Fifo "ev-fifo"
  in
  fill c [ "a"; "b" ];
  (* Touch "a": FIFO ignores use, so "a" is still the oldest. *)
  ignore (Service.Cache.find_or_compute c ~key: "a" (fun () -> "a"));
  fill c [ "c" ];
  check int_c "capacity held" 2 (Service.Cache.length c);
  check int_c "evictions counted" 1 (Service.Cache.stats c).Service.Cache.evictions;
  check bool_c "fifo evicts the oldest insertion (a)" true (recomputes c "a")

let test_eviction_lru () =
  let c =
    Service.Cache.create ~capacity: 2 ~eviction: Service.Cache.Lru "ev-lru"
  in
  fill c [ "a"; "b" ];
  (* Touch "a": LRU refreshes it, so "b" becomes the victim. *)
  ignore (Service.Cache.find_or_compute c ~key: "a" (fun () -> "a"));
  fill c [ "c" ];
  check int_c "capacity held" 2 (Service.Cache.length c);
  check bool_c "lru keeps the recently used (a)" false (recomputes c "a");
  check bool_c "lru evicted the stale entry (b)" true (recomputes c "b")

let test_eviction_cost_weighted () =
  let c =
    Service.Cache.create ~capacity: 2 ~eviction: Service.Cache.Cost_weighted
      "ev-cost"
  in
  (* "slow" is expensive to recompute, "fast" is nearly free: over
     capacity, the cost policy sacrifices "fast". *)
  ignore
    (Service.Cache.find_or_compute c ~key: "slow" (fun () ->
         Unix.sleepf 0.05;
         "slow"));
  ignore (Service.Cache.find_or_compute c ~key: "fast" (fun () -> "fast"));
  fill c [ "c" ];
  check int_c "capacity held" 2 (Service.Cache.length c);
  check bool_c "expensive entry survives" false (recomputes c "slow");
  check bool_c "cheap entry evicted" true (recomputes c "fast")

let test_set_policy_shrinks () =
  let c = Service.Cache.create ~eviction: Service.Cache.Lru "ev-shrink" in
  fill c [ "a"; "b"; "c"; "d" ];
  check int_c "unbounded holds all" 4 (Service.Cache.length c);
  Service.Cache.set_policy ~capacity: 2 c;
  check int_c "set_policy evicts immediately" 2 (Service.Cache.length c)

(* --- single compilation through the artifact layer --- *)

let test_single_compilation_4_ranks () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let c0 = Exec_compile.compile_count () in
  let r =
    Driver.Harness.run_distributed ~executor: Exec_compile.executor ~ranks: 4
      m
  in
  check bool_c "distributed == serial" true
    (r.Driver.Harness.max_diff_vs_serial = 0.);
  check int_c "4 ranks, exactly one closure compilation" 1
    (Exec_compile.compile_count () - c0);
  (* A second run of the structurally identical program is a pure cache
     hit: zero further compilations. *)
  let r2 =
    Driver.Harness.run_distributed ~executor: Exec_compile.executor ~ranks: 4
      (heat_module ())
  in
  check bool_c "second run still exact" true
    (r2.Driver.Harness.max_diff_vs_serial = 0.);
  check int_c "second run compiles nothing" 1
    (Exec_compile.compile_count () - c0)

let test_artifact_counters () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let s0 = Service.Artifact.stats () in
  let target = dist_target ~ranks: 2 in
  let executor = Exec_compile.executor in
  let a1, f1 = Service.Artifact.get_cached ~executor ~target m in
  let a2, f2 = Service.Artifact.get_cached ~executor ~target m in
  let s1 = Service.Artifact.stats () in
  check bool_c "first is a miss" true (f1 = `Miss);
  check bool_c "second is a hit" true (f2 = `Hit);
  check bool_c "same digest" true (a1.Service.Artifact.digest = a2.Service.Artifact.digest);
  check bool_c "hit artifacts report zero compile time" true
    (a2.Service.Artifact.compile_s = 0.);
  check int_c "one miss" 1
    (s1.Service.Cache.misses - s0.Service.Cache.misses);
  check int_c "one hit" 1 (s1.Service.Cache.hits - s0.Service.Cache.hits)

(* --- the --serve protocol --- *)

let test_serve_protocol () =
  Service.Artifact.clear ();
  let m = heat_module () in
  let handlers =
    {
      Service.Serve.resolve_demo =
        (fun name -> if name = "heat-demo" then Some (heat_module ()) else None);
      run = None;
      scheduler = None;
    }
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.Serve.serve ~handlers ic oc;
        close_in_noerr ic;
        close_out_noerr oc)
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let ask line =
    output_string oc (line ^ "\n");
    flush oc;
    match In_channel.input_line ic with
    | Some resp -> resp
    | None -> Alcotest.fail "server closed the pipe"
  in
  (* key=value field of a response line. *)
  let field resp key =
    List.find_map
      (fun w ->
        let prefix = key ^ "=" in
        let np = String.length prefix in
        if String.length w > np && String.sub w 0 np = prefix then
          Some (String.sub w np (String.length w - np))
        else None)
      (String.split_on_char ' ' resp)
  in
  check bool_c "ping" true (ask "ping" = "ok pong");
  let c1 = ask "compile demo=heat-demo ranks=2" in
  check bool_c "first compile misses" true (contains c1 "cached=miss");
  let c2 = ask "compile demo=heat-demo ranks=2" in
  check bool_c "repeat compile hits" true (contains c2 "cached=hit");
  check bool_c "same digest both times" true
    (field c1 "digest" = field c2 "digest" && field c1 "digest" <> None);
  (* Inline IR payload: digest must equal the demo's (same canonical
     form, reparsed). *)
  let ir_text = Printer.module_to_string m in
  let ir_req =
    Printf.sprintf "compile ir=%d ranks=2\n%s" (String.length ir_text) ir_text
  in
  output_string oc ir_req;
  flush oc;
  let c3 =
    match In_channel.input_line ic with
    | Some r -> r
    | None -> Alcotest.fail "server closed the pipe"
  in
  check bool_c "inline IR hits the demo's cache entry" true
    (contains c3 "cached=hit");
  check bool_c "inline IR digest equals the demo's" true
    (field c3 "digest" = field c1 "digest");
  let stats = ask "stats" in
  check bool_c "stats reports hits" true (contains stats "hits=");
  check bool_c "unknown demo is an error" true
    (contains (ask "compile demo=nope ranks=2") "error");
  check bool_c "run without handler is an error" true
    (contains (ask "run demo=heat-demo ranks=2") "error");
  check bool_c "unknown command is an error" true
    (contains (ask "frobnicate") "error");
  check bool_c "quit" true (ask "quit" = "ok bye");
  Domain.join server;
  List.iter Unix.close [ req_w; resp_r ]

(* --- framing: malformed requests must not desync the stream --- *)

(* A validation failure in a request that declares an ir=<nbytes> payload
   must still drain those bytes: otherwise the loop parses the payload as
   the next request and every later exchange is desynchronized.  The
   regression: send malformed ir= requests, then a ping — the ping must
   still answer pong. *)
let test_serve_desync_regression () =
  Service.Artifact.clear ();
  let handlers =
    {
      Service.Serve.resolve_demo =
        (fun name -> if name = "heat-demo" then Some (heat_module ()) else None);
      run = None;
      scheduler = None;
    }
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.Serve.serve ~handlers ic oc;
        close_in_noerr ic;
        close_out_noerr oc)
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let send raw =
    output_string oc raw;
    flush oc
  in
  let recv () =
    match In_channel.input_line ic with
    | Some resp -> resp
    | None -> Alcotest.fail "server closed the pipe"
  in
  (* 1. Ambiguous spec (demo AND ir): fails validation, but the declared
     payload bytes must be consumed. *)
  send "compile ir=5 demo=heat-demo ranks=2\nhello";
  check bool_c "ambiguous spec is an error" true (contains (recv ()) "error");
  send "ping\n";
  check bool_c "stream still in sync after ambiguous spec" true
    (recv () = "ok pong");
  (* 2. Valid payload, bad target knob: the failure happens after the
     payload, which must also leave the stream clean. *)
  let ir_text = Printer.module_to_string (heat_module ()) in
  send
    (Printf.sprintf "compile ir=%d strategy=bogus\n%s" (String.length ir_text)
       ir_text);
  check bool_c "bad strategy is an error" true
    (contains (recv ()) "unknown strategy");
  send "ping\n";
  check bool_c "stream still in sync after bad strategy" true
    (recv () = "ok pong");
  (* 3. Unknown command carrying a payload: drained all the same. *)
  send "frobnicate ir=3 x=1\nabc";
  check bool_c "unknown command is an error" true (contains (recv ()) "error");
  send "ping\n";
  check bool_c "stream still in sync after unknown command" true
    (recv () = "ok pong");
  send "quit\n";
  check bool_c "quit" true (recv () = "ok bye");
  Domain.join server;
  List.iter Unix.close [ req_w; resp_r ]

(* --- the multi-client socket daemon --- *)

let test_socket_concurrent_clients () =
  Service.Artifact.clear ();
  let s0 = Service.Artifact.stats () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stencilc-test-%d.sock" (Unix.getpid ()))
  in
  (* Two distinct programs: clients hammer both, each must compile
     exactly once across the whole daemon. *)
  let handlers =
    {
      Service.Serve.resolve_demo =
        (fun name ->
          match name with
          | "h3" -> Some (heat_module ~timesteps: 3 ())
          | "h4" -> Some (heat_module ~timesteps: 4 ())
          | _ -> None);
      run = None;
      scheduler = None;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Service.Socket_server.run ~handlers
          ~on_ready: (fun () -> Atomic.set ready true)
          (Service.Socket_server.Unix_path sock))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let connect () =
    let rec retry n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> fd
      | exception Unix.Unix_error _ when n > 0 ->
          Unix.close fd;
          Unix.sleepf 0.01;
          retry (n - 1)
    in
    retry 100
  in
  let requests_per_client = 10 in
  let client _id =
    Domain.spawn (fun () ->
        let fd = connect () in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let ok = ref 0 in
        for r = 1 to requests_per_client do
          let demo = if r mod 2 = 0 then "h3" else "h4" in
          output_string oc
            (Printf.sprintf "compile demo=%s ranks=2\n" demo);
          flush oc;
          match In_channel.input_line ic with
          | Some resp
            when String.length resp >= 3
                 && String.sub resp 0 3 = "ok "
                 && contains resp "digest="
                 && contains resp "compile_ms=" ->
              incr ok
          | Some _ | None -> ()
        done;
        output_string oc "quit\n";
        flush oc;
        (match In_channel.input_line ic with _ -> () | exception _ -> ());
        Unix.close fd;
        !ok)
  in
  let clients = List.init 4 client in
  let oks = List.map Domain.join clients in
  (* Stop the daemon. *)
  let fd = connect () in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc "shutdown\n";
  flush oc;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let server_stats = Domain.join server in
  let s1 = Service.Artifact.stats () in
  check bool_c "every response well-formed" true
    (List.for_all (fun n -> n = requests_per_client) oks);
  check int_c "each distinct digest compiled exactly once" 2
    (s1.Service.Cache.misses - s0.Service.Cache.misses);
  check int_c "no failures" 0
    (s1.Service.Cache.failures - s0.Service.Cache.failures);
  check int_c "no failed hits" 0
    (s1.Service.Cache.failed_hits - s0.Service.Cache.failed_hits);
  check bool_c "daemon saw all client connections" true
    (server_stats.Service.Socket_server.connections >= 5);
  check bool_c "socket file removed on shutdown" false (Sys.file_exists sock)

(* --- the on-disk artifact store: restart persistence --- *)

let with_temp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stencilc-store-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  let store = Service.Store.create dir in
  Fun.protect
    ~finally: (fun () ->
      Service.Artifact.set_store None;
      List.iter
        (fun d -> Service.Store.remove store ~digest: d)
        (Service.Store.list store);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f store)

let test_store_restart_persistence () =
  with_temp_store (fun store ->
      Service.Artifact.set_store (Some store);
      Service.Artifact.clear ();
      let m = heat_module () in
      let target = dist_target ~ranks: 2 in
      let executor = Exec_compile.executor in
      let a1, f1 = Service.Artifact.get_cached ~executor ~target m in
      check bool_c "cold compile is a miss" true (f1 = `Miss);
      check bool_c "artifact persisted" true
        (Service.Store.list store = [ a1.Service.Artifact.digest ]);
      (* "Restart": drop the in-memory cache, keep the store.  The next
         request must come back from disk (pipeline skipped), not from a
         cold compile. *)
      Service.Artifact.clear ();
      let a2, f2 = Service.Artifact.get_cached ~executor ~target m in
      check bool_c "restart answers from the store" true (f2 = `Store);
      check bool_c "same digest" true
        (a1.Service.Artifact.digest = a2.Service.Artifact.digest);
      check bool_c "same lowered module" true
        (Printer.canonical_module_string a1.Service.Artifact.lowered
        = Printer.canonical_module_string a2.Service.Artifact.lowered);
      (* ... and the restored program executes: instantiate both and the
         restore is hit-equivalent thereafter. *)
      let _, f3 = Service.Artifact.get_cached ~executor ~target m in
      check bool_c "second request is a plain hit" true (f3 = `Hit);
      (* warm_start preloads eagerly: clear again, preload, then the very
         first request is already a hit. *)
      Service.Artifact.clear ();
      check int_c "warm_start preloads the persisted artifact" 1
        (Service.Artifact.warm_start ());
      let _, f4 = Service.Artifact.get_cached ~executor ~target m in
      check bool_c "request after warm_start is a hit" true (f4 = `Hit))

let test_store_corruption_falls_back () =
  with_temp_store (fun store ->
      Service.Artifact.set_store (Some store);
      Service.Artifact.clear ();
      let m = heat_module () in
      let target = dist_target ~ranks: 2 in
      let executor = Exec_compile.executor in
      let a1, _ = Service.Artifact.get_cached ~executor ~target m in
      let digest = a1.Service.Artifact.digest in
      (* Truncate the persisted file: load must reject it and the next
         miss must fall back to a full (correct) compile. *)
      let path =
        Filename.concat (Service.Store.dir store) (digest ^ ".art")
      in
      let oc = open_out_bin path in
      output_string oc "stencilc-artifact v1\ndigest deadbeef\n";
      close_out oc;
      check bool_c "corrupt file loads as None" true
        (Service.Store.load store ~digest = None);
      Service.Artifact.clear ();
      let a2, f2 = Service.Artifact.get_cached ~executor ~target m in
      check bool_c "fallback is a full compile" true (f2 = `Miss);
      check bool_c "fallback digest intact" true
        (a2.Service.Artifact.digest = digest))

(* --- store size cap: oldest-first eviction --- *)

let test_store_size_cap_evicts_oldest () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stencilc-cap-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  let digest i = Printf.sprintf "%031xa" i in
  let blob = String.make 2048 'x' in
  let persisted i =
    {
      Service.Store.p_digest = digest i;
      p_executor = "compiled";
      p_target = "t";
      p_compile_s = 0.1;
      p_canonical = blob;
      p_lowered = blob;
      p_lowered_bin = None;
    }
  in
  Fun.protect
    ~finally: (fun () ->
      (match Sys.readdir dir with
      | files ->
          Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files
      | exception Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (match Service.Store.create ~max_bytes: 0 dir with
      | _ -> Alcotest.fail "max_bytes = 0 must be rejected"
      | exception Invalid_argument _ -> ());
      (* Each file is ~4.2 KB; cap the store at three of them. *)
      let store = Service.Store.create ~max_bytes: (3 * 4400) dir in
      let path i =
        Filename.concat (Service.Store.dir store) (digest i ^ ".art")
      in
      let base = Unix.time () -. 1000. in
      List.iter
        (fun i ->
          Service.Store.save store (persisted i);
          (* Pin distinct mtimes: file-system timestamp resolution must
             not decide which artifact counts as oldest. *)
          Unix.utimes (path i) base (base +. float_of_int i))
        [ 1; 2; 3 ];
      check (Alcotest.list Alcotest.string) "three artifacts fit"
        [ digest 1; digest 2; digest 3 ]
        (Service.Store.list store);
      (* A fourth save exceeds the cap: the oldest (digest 1) goes. *)
      Service.Store.save store (persisted 4);
      check (Alcotest.list Alcotest.string) "oldest evicted on overflow"
        [ digest 2; digest 3; digest 4 ]
        (Service.Store.list store);
      (* The artifact just saved is exempt, even under a cap smaller
         than a single file: saving must never evict its own result. *)
      let tiny = Service.Store.create ~max_bytes: 64 dir in
      Service.Store.save tiny (persisted 5);
      check bool_c "just-saved artifact survives a tiny cap" true
        (List.mem (digest 5) (Service.Store.list tiny));
      check bool_c "everything else was evicted" true
        (Service.Store.list tiny = [ digest 5 ]);
      (* Uncapped stores never evict (the historical behavior). *)
      let unbounded = Service.Store.create dir in
      List.iter
        (fun i -> Service.Store.save unbounded (persisted i))
        [ 6; 7; 8 ];
      check int_c "unbounded store only grows" 4
        (List.length (Service.Store.list unbounded)))

(* --- target fingerprints round-trip (the store depends on it) --- *)

let test_fingerprint_roundtrip () =
  let targets =
    [
      Core.Pipeline.Cpu_sequential;
      Core.Pipeline.Cpu_openmp { tiles = [ 32; 32; 32 ] };
      Core.Pipeline.Cpu_openmp { tiles = [] };
      dist_target ~ranks: 4;
      Core.Pipeline.Distributed_cpu
        {
          ranks = 8;
          strategy = Core.Decomposition.Slice3d;
          mode = Core.Decomposition.Diagonals;
          tiles = [ 16; 16 ];
          overlap = false;
        };
      Core.Pipeline.Gpu { managed = true };
      Core.Pipeline.Fpga { optimized = false };
    ]
  in
  List.iter
    (fun t ->
      let fp = Core.Pipeline.target_fingerprint t in
      match Core.Pipeline.target_of_fingerprint fp with
      | Some t' ->
          check bool_c (Printf.sprintf "roundtrip %s" fp) true (t = t')
      | None -> Alcotest.fail (Printf.sprintf "unparseable fingerprint %s" fp))
    targets;
  check bool_c "garbage does not parse" true
    (Core.Pipeline.target_of_fingerprint "quantum[qubits=8]" = None)

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip_digest_prop;
    Alcotest.test_case "digest ignores SSA numbering" `Quick
      test_digest_ssa_insensitive;
    Alcotest.test_case "digest ignores attribute order" `Quick
      test_digest_attr_order_insensitive;
    Alcotest.test_case "cache: concurrent same key compiles once" `Quick
      test_cache_concurrent_same_key;
    Alcotest.test_case "cache: distinct keys compile independently" `Quick
      test_cache_concurrent_distinct_keys;
    Alcotest.test_case "cache: failures cached and re-raised" `Quick
      test_cache_failure_cached;
    Alcotest.test_case "harness 4 ranks: exactly one closure compile" `Quick
      test_single_compilation_4_ranks;
    Alcotest.test_case "artifact cache counters" `Quick test_artifact_counters;
    Alcotest.test_case "cache: fifo eviction" `Quick test_eviction_fifo;
    Alcotest.test_case "cache: lru eviction" `Quick test_eviction_lru;
    Alcotest.test_case "cache: cost-weighted eviction" `Quick
      test_eviction_cost_weighted;
    Alcotest.test_case "cache: set_policy shrinks immediately" `Quick
      test_set_policy_shrinks;
    Alcotest.test_case "--serve line protocol" `Quick test_serve_protocol;
    Alcotest.test_case "--serve: malformed ir= does not desync" `Quick
      test_serve_desync_regression;
    Alcotest.test_case "socket daemon: 4 concurrent clients, one compile per digest"
      `Quick test_socket_concurrent_clients;
    Alcotest.test_case "store: restart persistence" `Quick
      test_store_restart_persistence;
    Alcotest.test_case "store: corruption falls back to compile" `Quick
      test_store_corruption_falls_back;
    Alcotest.test_case "store: size cap evicts oldest" `Quick
      test_store_size_cap_evicts_oldest;
    Alcotest.test_case "target fingerprint roundtrip" `Quick
      test_fingerprint_roundtrip;
  ]

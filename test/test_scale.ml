(* Tests for the scale-out subsystem (lib/scale): symbolic schedule
   extraction, discrete-event replay (including that predicted timelines
   satisfy every Analysis invariant real traces satisfy), the bucketed
   constrained netmodel calibration, and the decomposition auto-tuner. *)

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool
let eps = 1e-9

let heat2d ~nx ~ny ~steps = Programs.heat2d_timeloop_module ~nx ~ny ~steps

(* --- schedule extraction --- *)

(* The symbolic schedule must agree exactly with what an executed run
   sends: same message count, same byte volume. *)
let test_schedule_matches_executed_run () =
  let m = heat2d ~nx: 8 ~ny: 8 ~steps: 3 in
  List.iter
    (fun overlap ->
      let s = Scale.Schedule.of_module ~overlap ~ranks: 4 m in
      let r =
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim ~overlap
          ~ranks: 4 m
      in
      check int_c
        (Printf.sprintf "messages (overlap=%b)" overlap)
        r.Driver.Harness.messages
        (Scale.Schedule.total_messages s);
      check int_c
        (Printf.sprintf "bytes (overlap=%b)" overlap)
        r.Driver.Harness.bytes
        (Scale.Schedule.total_bytes s);
      check Alcotest.(list int) "grid" r.Driver.Harness.grid s.Scale.Schedule.grid)
    [ false; true ]

let test_schedule_shape () =
  let m = heat2d ~nx: 8 ~ny: 8 ~steps: 5 in
  let s = Scale.Schedule.of_module ~overlap: false ~ranks: 4 m in
  check int_c "steps" 5 s.Scale.Schedule.steps;
  check int_c "elt bytes" 4 s.Scale.Schedule.elt_bytes;
  (* 2x2 grid, faces: every rank has 2 neighbors -> 8 messages/step. *)
  check Alcotest.(list int) "grid" [ 2; 2 ] s.Scale.Schedule.grid;
  check int_c "messages/step" 8 (Scale.Schedule.messages_per_step s);
  (* Interior 4x4 per rank. *)
  check int_c "cells/step" 16 (Scale.Schedule.cells_per_step s);
  (* Sends and receives pair up across the whole grid: every (dest, tag)
     posted by some rank is expected by that dest. *)
  let swaps = Array.length s.Scale.Schedule.swaps in
  for swap = 0 to swaps - 1 do
    let expected = Hashtbl.create 16 in
    for rank = 0 to 3 do
      List.iter
        (fun (src, tag, bytes) -> Hashtbl.add expected (src, rank, tag) bytes)
        (Scale.Schedule.rank_recvs s ~swap ~rank)
    done;
    for rank = 0 to 3 do
      List.iter
        (fun (dest, tag, bytes) ->
          match Hashtbl.find_opt expected (rank, dest, tag) with
          | Some b -> check int_c "send/recv bytes agree" b bytes
          | None -> Alcotest.failf "send %d->%d tag %d unexpected" rank dest tag)
        (Scale.Schedule.rank_sends s ~swap ~rank)
    done
  done

let test_schedule_overlap_split () =
  let m = heat2d ~nx: 8 ~ny: 8 ~steps: 2 in
  let s = Scale.Schedule.of_module ~overlap: true ~ranks: 4 m in
  let begins, waits, fused =
    List.fold_left
      (fun (b, w, f) -> function
        | Scale.Schedule.Swap_begin _ -> (b + 1, w, f)
        | Scale.Schedule.Swap_wait _ -> (b, w + 1, f)
        | Scale.Schedule.Swap _ -> (b, w, f + 1)
        | Scale.Schedule.Compute _ -> (b, w, f))
      (0, 0, 0) s.Scale.Schedule.body
  in
  check bool_c "has split swaps" true (begins > 0);
  check int_c "begin/wait paired" begins waits;
  check int_c "no fused swaps left" 0 fused

(* --- replay --- *)

let replay ?model ?cores ~overlap ~ranks m =
  let s = Scale.Schedule.of_module ~overlap ~ranks m in
  (s, Scale.Replay.run ?model ?cores s)

(* Replayed timelines must satisfy the same invariants Analysis
   guarantees on real traces: phase buckets sum to the rank span, the
   comm matrix reconciles with the schedule's totals, the critical path
   is at least the longest rank span, and every send is matched. *)
let replay_invariants (nx, ny, steps, ranks, overlap) =
  let m = heat2d ~nx ~ny ~steps in
  let s, p = replay ~overlap ~ranks m in
  let a = Analysis.analyze ~ranks p.Scale.Replay.p_timeline in
  let max_span =
    Array.fold_left
      (fun acc bd -> Float.max acc bd.Analysis.bd_span_s)
      0. a.Analysis.r_breakdown
  in
  Array.iter
    (fun bd ->
      let sum =
        bd.Analysis.bd_compute_s +. bd.Analysis.bd_pack_s
        +. bd.Analysis.bd_wait_s +. bd.Analysis.bd_unpack_s
        +. bd.Analysis.bd_collective_s
      in
      if Float.abs (sum -. bd.Analysis.bd_span_s) > 1e-6 then
        Alcotest.failf "rank %d: phase sum %.9f <> span %.9f"
          bd.Analysis.bd_rank sum bd.Analysis.bd_span_s)
    a.Analysis.r_breakdown;
  check int_c "matrix messages = schedule messages"
    (Scale.Schedule.total_messages s)
    (Analysis.matrix_total_messages a.Analysis.r_matrix);
  check int_c "matrix bytes = schedule bytes"
    (Scale.Schedule.total_bytes s)
    (Analysis.matrix_total_bytes a.Analysis.r_matrix);
  check int_c "edge bytes = schedule bytes"
    (Scale.Schedule.total_bytes s)
    (Mpi_intf.edge_bytes_of p.Scale.Replay.p_timeline);
  check int_c "unmatched sends" 0 a.Analysis.r_unmatched_sends;
  if a.Analysis.r_critical_path_s +. 1e-6 < max_span then
    Alcotest.failf "critical path %.9f < max span %.9f"
      a.Analysis.r_critical_path_s max_span;
  (* The replay's own wall clock is the slowest rank's clock. *)
  let wall =
    Array.fold_left Float.max 0. p.Scale.Replay.p_rank_span_s
  in
  if Float.abs (wall -. p.Scale.Replay.p_wall_s) > eps then
    Alcotest.failf "wall %.9f <> max rank clock %.9f" p.Scale.Replay.p_wall_s
      wall;
  true

let replay_config_arb =
  QCheck.make
    ~print: (fun (nx, ny, steps, ranks, overlap) ->
      Printf.sprintf "nx=%d ny=%d steps=%d ranks=%d overlap=%b" nx ny steps
        ranks overlap)
    QCheck.Gen.(
      let* ranks_exp = int_range 0 3 in
      let ranks = 1 lsl ranks_exp in
      let* nx_f = int_range 1 4 and* ny_f = int_range 1 4 in
      (* Extents divisible by any grid factorization of <= 8 ranks. *)
      let* steps = int_range 1 4 and* overlap = bool in
      return (8 * nx_f, 8 * ny_f, steps, ranks, overlap))

let test_replay_invariants_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name: "replayed timelines satisfy Analysis invariants"
       ~count: 30 replay_config_arb replay_invariants)

let test_replay_deterministic () =
  let m = heat2d ~nx: 16 ~ny: 16 ~steps: 3 in
  let _, p1 = replay ~overlap: true ~ranks: 4 m in
  let _, p2 = replay ~overlap: true ~ranks: 4 m in
  check (Alcotest.float eps) "deterministic wall" p1.Scale.Replay.p_wall_s
    p2.Scale.Replay.p_wall_s;
  check int_c "deterministic event count"
    (List.length p1.Scale.Replay.p_timeline)
    (List.length p2.Scale.Replay.p_timeline)

(* Golden ordering: overlap must be predicted cheaper than no-overlap for
   heat2d at 4 ranks — the ordering every measured mpi_par run shows. *)
let test_replay_overlap_ordering () =
  let m = heat2d ~nx: 32 ~ny: 32 ~steps: 4 in
  let _, off = replay ~overlap: false ~ranks: 4 m in
  let _, on_ = replay ~overlap: true ~ranks: 4 m in
  if on_.Scale.Replay.p_wall_s >= off.Scale.Replay.p_wall_s then
    Alcotest.failf "overlap-on %.9f not cheaper than overlap-off %.9f"
      on_.Scale.Replay.p_wall_s off.Scale.Replay.p_wall_s;
  (* And the analyzer sees the hiding: higher overlap efficiency on. *)
  let eff p =
    let a = Analysis.analyze ~ranks: 4 p.Scale.Replay.p_timeline in
    match a.Analysis.r_overlap.Analysis.ov_efficiency with
    | Some e -> e
    | None -> 0.
  in
  if eff on_ < eff off then
    Alcotest.failf "overlap efficiency on=%.3f < off=%.3f" (eff on_) (eff off)

(* 1024 simulated ranks without spawning anything: replay a large rank
   count and check scaling structure (more ranks -> less local work per
   rank; wall decreases until communication dominates). *)
let test_replay_1024_ranks () =
  let m = heat2d ~nx: 128 ~ny: 128 ~steps: 2 in
  let t0 = Unix.gettimeofday () in
  let s = Scale.Schedule.of_module ~overlap: true ~ranks: 1024 m in
  let p = Scale.Replay.run s in
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.(list int) "grid" [ 32; 32 ] s.Scale.Schedule.grid;
  check bool_c "positive wall" true (p.Scale.Replay.p_wall_s > 0.);
  (* 32x32 grid of 4x4 interiors: inner ranks exchange 4 faces. *)
  check int_c "messages/step"
    ((1024 * 4) - (4 * 32))
    (Scale.Schedule.messages_per_step s);
  (* The whole point: pricing 1024 ranks stays interactive. *)
  check bool_c "fast enough (<10s)" true (elapsed < 10.)

let test_replay_oversubscription_slowdown () =
  let m = heat2d ~nx: 32 ~ny: 32 ~steps: 2 in
  let s = Scale.Schedule.of_module ~overlap: false ~ranks: 4 m in
  let free = Scale.Replay.run ~cores: 4 s in
  let shared = Scale.Replay.run ~cores: 1 s in
  check bool_c "time-sharing slows the prediction" true
    (shared.Scale.Replay.p_wall_s > free.Scale.Replay.p_wall_s)

(* --- netmodel calibration --- *)

let sample ~bytes ~lat i : Analysis.msg_sample =
  {
    Analysis.ms_src = 0;
    ms_dst = 1;
    ms_tag = 0;
    ms_bytes = bytes;
    ms_send_ts = float_of_int i *. 1e-3;
    ms_recv_ts = (float_of_int i *. 1e-3) +. lat;
  }

let synth ~alpha ~beta ~sizes ~per_size =
  List.concat_map
    (fun bytes ->
      List.init per_size (fun i ->
          sample ~bytes ~lat: (alpha +. (beta *. float_of_int bytes)) i))
    sizes

let test_fit_recovers_known_model () =
  let alpha = 3e-6 and beta = 2e-9 in
  let samples =
    synth ~alpha ~beta ~sizes: [ 64; 256; 1024; 4096 ] ~per_size: 5
  in
  match Scale.Netmodel.fit_alpha_beta samples with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok f ->
      if Float.abs (f.Scale.Netmodel.f_alpha_s -. alpha) > 1e-8 then
        Alcotest.failf "alpha %.3e <> %.3e" f.Scale.Netmodel.f_alpha_s alpha;
      if Float.abs (f.Scale.Netmodel.f_beta_s_per_byte -. beta) > 1e-12 then
        Alcotest.failf "beta %.3e <> %.3e" f.Scale.Netmodel.f_beta_s_per_byte
          beta;
      check bool_c "r2 ~ 1" true (f.Scale.Netmodel.f_r2 > 0.999);
      check int_c "no outliers on clean data" 0 f.Scale.Netmodel.f_dropped

(* Pooled OLS over these samples yields a negative slope (the big
   messages are fast, the small ones carry stall outliers) — the bug the
   bucketed fit exists to fix.  The constrained fit must keep beta >= 0
   and reject the stalls. *)
let test_fit_constrained_nonnegative_with_outliers () =
  let clean =
    synth ~alpha: 2e-6 ~beta: 1e-9 ~sizes: [ 64; 512; 2048 ] ~per_size: 6
  in
  let stalls = List.init 4 (fun i -> sample ~bytes: 64 ~lat: 5e-3 i) in
  match Scale.Netmodel.fit_alpha_beta (clean @ stalls) with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok f ->
      check bool_c "alpha >= 0" true (f.Scale.Netmodel.f_alpha_s >= 0.);
      check bool_c "beta >= 0" true (f.Scale.Netmodel.f_beta_s_per_byte >= 0.);
      check int_c "stalls rejected" 4 f.Scale.Netmodel.f_dropped;
      (* With the stalls gone the clean line is recovered. *)
      if Float.abs (f.Scale.Netmodel.f_beta_s_per_byte -. 1e-9) > 1e-12 then
        Alcotest.failf "beta %.3e after outlier rejection"
          f.Scale.Netmodel.f_beta_s_per_byte

let test_fit_degenerate_cases () =
  (match Scale.Netmodel.fit_alpha_beta [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sample list must not fit");
  (* One message size cannot identify alpha and beta separately. *)
  (match
     Scale.Netmodel.fit_alpha_beta
       (synth ~alpha: 1e-6 ~beta: 1e-9 ~sizes: [ 256 ] ~per_size: 20)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "single-size samples must not fit");
  (* And the json for a failed fit carries nulls, not nonsense. *)
  let j = Scale.Netmodel.fit_json (Error "no matched message samples") in
  Support.assert_contains ~what: "degenerate fit json" j "\"alpha_s\": null";
  Support.assert_contains ~what: "degenerate fit json" j "\"fit_error\""

let test_netmodel_spec_roundtrip () =
  let m = Scale.Netmodel.of_spec "alpha=5e-6,beta=2e-9,compute=1e-8" in
  check (Alcotest.float 1e-12) "alpha" 5e-6 m.Scale.Netmodel.alpha_s;
  check (Alcotest.float 1e-12) "beta" 2e-9 m.Scale.Netmodel.beta_s_per_byte;
  check (Alcotest.float 1e-12) "compute" 1e-8
    m.Scale.Netmodel.compute_s_per_cell;
  (* Unset keys keep defaults. *)
  check (Alcotest.float 1e-12) "pack default"
    Scale.Netmodel.default.Scale.Netmodel.pack_s_per_byte
    m.Scale.Netmodel.pack_s_per_byte;
  match Scale.Netmodel.of_spec "alpha=-1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "negative spec value must be rejected"

(* --- auto-tuner --- *)

let test_tuner_beats_or_ties_every_candidate () =
  let m = heat2d ~nx: 32 ~ny: 32 ~steps: 2 in
  match Scale.Tune.tune ~ranks: 4 m with
  | None -> Alcotest.fail "tuner found no valid candidate"
  | Some ch ->
      List.iter
        (fun (c : Scale.Tune.candidate) ->
          if ch.Scale.Tune.best.Scale.Tune.c_wall_s > c.Scale.Tune.c_wall_s
          then
            Alcotest.failf "best %.9f worse than candidate %s (%.9f)"
              ch.Scale.Tune.best.Scale.Tune.c_wall_s
              (Scale.Tune.candidate_name c)
              c.Scale.Tune.c_wall_s)
        ch.Scale.Tune.considered;
      (* The hardcoded default the bench used to pin must not beat the
         tuner's choice. *)
      let s_default =
        Scale.Schedule.of_module ~strategy: Core.Decomposition.Slice2d
          ~overlap: true ~ranks: 4 m
      in
      let p_default =
        Scale.Replay.run ~emit_timeline: false s_default
      in
      check bool_c "tuned <= hardcoded slice2d/overlap" true
        (ch.Scale.Tune.best.Scale.Tune.c_wall_s
         <= p_default.Scale.Replay.p_wall_s +. eps)

let test_tuner_tie_break_keeps_default () =
  (* All candidates of one (mode, overlap) pair on a square domain: the
     slice2d default must win ties so tuned runs stay reproducible
     against existing baselines. *)
  let m = heat2d ~nx: 32 ~ny: 32 ~steps: 2 in
  match
    Scale.Tune.tune
      ~strategies: [ Core.Decomposition.Slice2d; Core.Decomposition.Slice3d ]
      ~modes: [ Core.Decomposition.Faces ] ~overlaps: [ true ] ~ranks: 4 m
  with
  | None -> Alcotest.fail "tuner found no valid candidate"
  | Some ch ->
      (* Slice3d degrades to Slice2d on a 2D domain: identical cost, and
         the earlier (Slice2d) candidate must be kept. *)
      check Alcotest.string "tie kept slice2d" "2d-slice"
        (Core.Decomposition.strategy_name
           ch.Scale.Tune.best.Scale.Tune.c_strategy)

let test_tuner_skips_invalid () =
  (* 20x20 at 8 ranks: slice1d needs 20 % 8 = 0 — invalid and skipped;
     slice2d's 4x2 grid divides evenly and must be found. *)
  let m = heat2d ~nx: 20 ~ny: 20 ~steps: 1 in
  match Scale.Tune.tune ~ranks: 8 m with
  | None -> Alcotest.fail "tuner should find the valid 4x2 decomposition"
  | Some ch ->
      check bool_c "some candidates skipped" true (ch.Scale.Tune.skipped > 0);
      check Alcotest.(list int) "grid divides the domain" [ 4; 2 ]
        ch.Scale.Tune.best.Scale.Tune.c_grid

let suite =
  [
    Alcotest.test_case "schedule matches executed run" `Quick
      test_schedule_matches_executed_run;
    Alcotest.test_case "schedule shape" `Quick test_schedule_shape;
    Alcotest.test_case "schedule overlap split" `Quick
      test_schedule_overlap_split;
    test_replay_invariants_qcheck;
    Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "replay overlap ordering" `Quick
      test_replay_overlap_ordering;
    Alcotest.test_case "replay 1024 ranks" `Quick test_replay_1024_ranks;
    Alcotest.test_case "replay oversubscription slowdown" `Quick
      test_replay_oversubscription_slowdown;
    Alcotest.test_case "fit recovers known model" `Quick
      test_fit_recovers_known_model;
    Alcotest.test_case "fit constrained with outliers" `Quick
      test_fit_constrained_nonnegative_with_outliers;
    Alcotest.test_case "fit degenerate cases" `Quick test_fit_degenerate_cases;
    Alcotest.test_case "netmodel spec" `Quick test_netmodel_spec_roundtrip;
    Alcotest.test_case "tuner beats or ties candidates" `Quick
      test_tuner_beats_or_ties_every_candidate;
    Alcotest.test_case "tuner tie-break keeps default" `Quick
      test_tuner_tie_break_keeps_default;
    Alcotest.test_case "tuner skips invalid decompositions" `Quick
      test_tuner_skips_invalid;
  ]

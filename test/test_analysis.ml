(* Tests for the timeline-analytics layer (Analysis): qcheck invariants
   over randomized message patterns on the deterministic simulator, a
   fixed heat2d 4-rank golden report, the alpha-beta network-model fit,
   and the bounded Obs event buffer. *)

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool
let eps = 1e-9

(* One randomized SPMD round on the simulator: every rank packs + sends
   its outgoing messages (eager, so this cannot deadlock), posts all its
   receives, blocks in waitall, runs an unpack phase and a barrier.
   Exercises every phase class the analyzer distinguishes. *)
let run_pattern (ranks, msgs) =
  Mpi_sim.run ~trace: true ~ranks (fun ctx ->
      let me = Mpi_sim.rank ctx in
      Mpi_sim.span_begin ctx "pack";
      List.iter
        (fun (src, dst, tag, len) ->
          if src = me then
            Mpi_sim.send ctx ~dest: dst ~tag
              (Mpi_intf.Floats (Array.make len 1.)))
        msgs;
      Mpi_sim.span_end ctx "pack";
      let reqs =
        List.filter_map
          (fun (src, dst, tag, _) ->
            if dst = me then Some (Mpi_sim.irecv ctx ~source: src ~tag)
            else None)
          msgs
      in
      Mpi_sim.waitall reqs;
      Mpi_sim.span_begin ctx "unpack";
      Mpi_sim.span_end ctx "unpack";
      Mpi_sim.barrier ctx)

let pattern_arb =
  QCheck.make
    QCheck.Gen.(
      int_range 2 4 >>= fun ranks ->
      list_size (int_range 0 12)
        (int_range 0 (ranks - 1) >>= fun src ->
         int_range 0 (ranks - 1) >>= fun dst ->
         int_range 0 3 >>= fun tag ->
         int_range 1 5 >>= fun len -> return (src, dst, tag, len))
      >>= fun msgs -> return (ranks, msgs))
    ~print: (fun (ranks, msgs) ->
      Printf.sprintf "%d ranks, msgs=[%s]" ranks
        (String.concat "; "
           (List.map
              (fun (s, d, t, l) -> Printf.sprintf "%d->%d tag%d len%d" s d t l)
              msgs)))

let analyze_pattern case =
  let ranks, _ = case in
  let comm = run_pattern case in
  (comm, Analysis.analyze ~ranks (Mpi_sim.timeline comm))

let phase_sum_prop =
  QCheck.Test.make ~count: 100
    ~name: "phase breakdown sums to each rank's span" pattern_arb (fun case ->
      let _, r = analyze_pattern case in
      Array.for_all
        (fun bd ->
          let total =
            bd.Analysis.bd_compute_s +. bd.Analysis.bd_pack_s
            +. bd.Analysis.bd_wait_s +. bd.Analysis.bd_unpack_s
            +. bd.Analysis.bd_collective_s
          in
          Float.abs (total -. bd.Analysis.bd_span_s) < eps)
        r.Analysis.r_breakdown)

let matrix_totals_prop =
  QCheck.Test.make ~count: 100
    ~name: "comm-matrix totals reconcile with timeline traffic" pattern_arb
    (fun case ->
      let comm, r = analyze_pattern case in
      Analysis.matrix_total_bytes r.Analysis.r_matrix
      = Mpi_sim.edge_bytes comm
      && Analysis.matrix_total_bytes r.Analysis.r_matrix
         = Mpi_sim.total_bytes comm
      && Analysis.matrix_total_messages r.Analysis.r_matrix
         = Mpi_sim.total_messages comm
      && r.Analysis.r_unmatched_sends = 0)

let critical_path_prop =
  QCheck.Test.make ~count: 100
    ~name: "critical path is nonnegative, additive and bounds every rank"
    pattern_arb (fun case ->
      let _, r = analyze_pattern case in
      let link_sum =
        List.fold_left
          (fun acc l -> acc +. l.Analysis.pl_dur_s)
          0. r.Analysis.r_critical_path
      in
      let max_span =
        Array.fold_left
          (fun acc bd -> Float.max acc bd.Analysis.bd_span_s)
          0. r.Analysis.r_breakdown
      in
      List.for_all (fun l -> l.Analysis.pl_dur_s > 0.) r.Analysis.r_critical_path
      && Float.abs (link_sum -. r.Analysis.r_critical_path_s) < eps
      && r.Analysis.r_critical_path_s >= max_span -. eps
      && Array.for_all (fun s -> s >= 0.) r.Analysis.r_slack_s)

let overlap_bounds_prop =
  QCheck.Test.make ~count: 100
    ~name: "overlap stats are consistent and efficiency is in [0, 1]"
    pattern_arb (fun case ->
      let _, r = analyze_pattern case in
      let ov = r.Analysis.r_overlap in
      ov.Analysis.ov_inflight_s >= 0.
      && ov.Analysis.ov_hidden_s <= ov.Analysis.ov_inflight_s +. eps
      &&
      match ov.Analysis.ov_efficiency with
      | None -> r.Analysis.r_samples = [] || ov.Analysis.ov_inflight_s = 0.
      | Some e -> e >= 0. && e <= 1.)

let determinism_prop =
  QCheck.Test.make ~count: 25
    ~name: "analysis of a deterministic timeline is deterministic"
    pattern_arb (fun case ->
      let _, r1 = analyze_pattern case in
      let _, r2 = analyze_pattern case in
      r1 = r2)

(* --- fixed 4-rank heat2d golden report --- *)

let heat_report () =
  let m = Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 4 in
  let r =
    Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim
      ~trace: true ~ranks: 4 m
  in
  (r, Option.get r.Driver.Harness.analysis)

let test_heat_golden_report () =
  let r, a = heat_report () in
  check int_c "ranks" 4 a.Analysis.r_ranks;
  check int_c "matrix is 4x4" 4 a.Analysis.r_matrix.Analysis.cm_ranks;
  (* The matrix must reconcile exactly with the harness traffic counters
     (which come from the substrate stats, not the timeline). *)
  check int_c "matrix messages == harness messages" r.Driver.Harness.messages
    (Analysis.matrix_total_messages a.Analysis.r_matrix);
  check int_c "matrix bytes == harness bytes" r.Driver.Harness.bytes
    (Analysis.matrix_total_bytes a.Analysis.r_matrix);
  check int_c "every send matched" 0 a.Analysis.r_unmatched_sends;
  (* 2x2 topology: each rank exchanges with exactly two neighbors, and
     halo traffic is symmetric. *)
  let m = a.Analysis.r_matrix.Analysis.cm_messages in
  for src = 0 to 3 do
    check int_c
      (Printf.sprintf "rank %d has two neighbors" src)
      2
      (List.length
         (List.filter
            (fun dst -> m.(src).(dst) > 0)
            [ 0; 1; 2; 3 ]));
    for dst = 0 to 3 do
      check int_c
        (Printf.sprintf "edge %d->%d symmetric" src dst)
        m.(src).(dst)
        m.(dst).(src)
    done
  done;
  Array.iter
    (fun bd ->
      let r = bd.Analysis.bd_rank in
      check bool_c (Printf.sprintf "rank %d packed" r) true
        (bd.Analysis.bd_pack_s > 0.);
      check bool_c (Printf.sprintf "rank %d unpacked" r) true
        (bd.Analysis.bd_unpack_s > 0.);
      check bool_c (Printf.sprintf "rank %d waited" r) true
        (bd.Analysis.bd_wait_s > 0.))
    a.Analysis.r_breakdown;
  check bool_c "critical path nonempty" true (a.Analysis.r_critical_path <> []);
  let max_span =
    Array.fold_left
      (fun acc bd -> Float.max acc bd.Analysis.bd_span_s)
      0. a.Analysis.r_breakdown
  in
  check bool_c "critical path bounds the longest rank" true
    (a.Analysis.r_critical_path_s >= max_span -. eps);
  (match a.Analysis.r_overlap.Analysis.ov_efficiency with
  | None -> Alcotest.fail "expected an overlap-efficiency figure"
  | Some e -> check bool_c "efficiency in [0,1]" true (e >= 0. && e <= 1.));
  check bool_c "netmodel fits" true
    (Analysis.fit_netmodel a.Analysis.r_samples <> None)

let test_report_renders () =
  let _, a = heat_report () in
  let text = Format.asprintf "%a" Analysis.pp_report a in
  List.iter
    (fun needle -> Support.assert_contains ~what: "report text" text needle)
    [
      "phase breakdown";
      "comm matrix";
      "critical path";
      "overlap";
      "network model";
    ];
  (* The JSON form must parse and carry the same reconciled totals. *)
  let jmember name = function
    | Test_obs.Jobj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let json = Test_obs.parse_json (Analysis.report_json a) in
  (match jmember "ranks" json with
  | Some (Test_obs.Jnum n) -> check int_c "json ranks" 4 (int_of_float n)
  | _ -> Alcotest.fail "report json: no ranks field");
  match jmember "netmodel" json with
  | Some (Test_obs.Jobj _) -> ()
  | _ -> Alcotest.fail "report json: no netmodel object"

(* --- alpha-beta fit --- *)

let sample ~bytes ~dur =
  {
    Analysis.ms_src = 0;
    ms_dst = 1;
    ms_tag = 0;
    ms_bytes = bytes;
    ms_send_ts = 0.;
    ms_recv_ts = dur;
  }

let test_netmodel_recovers_line () =
  let alpha = 2e-4 and beta = 3e-8 in
  let samples =
    List.map
      (fun bytes ->
        sample ~bytes ~dur: (alpha +. (beta *. float_of_int bytes)))
      [ 64; 256; 1024; 4096; 16384 ]
  in
  match Analysis.fit_netmodel samples with
  | None -> Alcotest.fail "expected a fit"
  | Some nm ->
      check (Alcotest.float 1e-9) "alpha" alpha nm.Analysis.nm_alpha_s;
      check (Alcotest.float 1e-12) "beta" beta nm.Analysis.nm_beta_s_per_byte;
      check bool_c "r2 ~ 1" true (nm.Analysis.nm_r2 > 0.999999);
      check int_c "samples" 5 nm.Analysis.nm_samples

let test_netmodel_degenerate () =
  check bool_c "no samples -> no fit" true (Analysis.fit_netmodel [] = None);
  (* Zero byte variance: slope 0, alpha = mean duration. *)
  match
    Analysis.fit_netmodel
      [ sample ~bytes: 128 ~dur: 1e-4; sample ~bytes: 128 ~dur: 3e-4 ]
  with
  | None -> Alcotest.fail "expected a fit"
  | Some nm ->
      check (Alcotest.float 1e-12) "beta 0" 0. nm.Analysis.nm_beta_s_per_byte;
      check (Alcotest.float 1e-9) "alpha mean" 2e-4 nm.Analysis.nm_alpha_s

(* --- bounded Obs event buffer --- *)

let test_obs_event_cap () =
  let saved = Obs.event_cap () in
  Fun.protect
    ~finally: (fun () ->
      Obs.set_event_cap saved;
      Obs.disable ())
    (fun () ->
      Obs.set_event_cap (Some 10);
      Obs.enable ();
      for i = 1 to 25 do
        Obs.Trace.instant (Printf.sprintf "ev%d" i)
      done;
      check int_c "kept first 10" 10 (Obs.Trace.event_count ());
      check int_c "dropped the rest" 15 (Obs.Trace.dropped_events ());
      check int_c "list is bounded" 10 (List.length (Obs.Trace.events ()));
      (* keep-first: the earliest events survive *)
      (match Obs.Trace.events () with
      | first :: _ -> check Alcotest.string "first kept" "ev1" first.Obs.name
      | [] -> Alcotest.fail "no events");
      Support.assert_contains ~what: "chrome json" (Obs.Trace.to_chrome_json ())
        "\"droppedEvents\":15";
      let summary = Format.asprintf "%a" Obs.Trace.pp_summary () in
      Support.assert_contains ~what: "summary" summary "15 dropped")

let test_obs_no_cap_no_metadata () =
  let saved = Obs.event_cap () in
  Fun.protect
    ~finally: (fun () ->
      Obs.set_event_cap saved;
      Obs.disable ())
    (fun () ->
      Obs.set_event_cap None;
      Obs.enable ();
      for i = 1 to 25 do
        Obs.Trace.instant (Printf.sprintf "ev%d" i)
      done;
      check int_c "all kept" 25 (Obs.Trace.event_count ());
      check int_c "nothing dropped" 0 (Obs.Trace.dropped_events ());
      check bool_c "no dropped metadata" false
        (let json = Obs.Trace.to_chrome_json () in
         let rec has i =
           i + 13 <= String.length json
           && (String.sub json i 13 = "droppedEvents" || has (i + 1))
         in
         has 0))

let suite =
  [
    Alcotest.test_case "heat2d 4-rank golden report" `Quick
      test_heat_golden_report;
    Alcotest.test_case "report renders (text and json)" `Quick
      test_report_renders;
    Alcotest.test_case "netmodel recovers a known line" `Quick
      test_netmodel_recovers_line;
    Alcotest.test_case "netmodel degenerate inputs" `Quick
      test_netmodel_degenerate;
    Alcotest.test_case "obs event buffer cap (keep-first)" `Quick
      test_obs_event_cap;
    Alcotest.test_case "obs unbounded buffer has no dropped metadata" `Quick
      test_obs_no_cap_no_metadata;
    QCheck_alcotest.to_alcotest phase_sum_prop;
    QCheck_alcotest.to_alcotest matrix_totals_prop;
    QCheck_alcotest.to_alcotest critical_path_prop;
    QCheck_alcotest.to_alcotest overlap_bounds_prop;
    QCheck_alcotest.to_alcotest determinism_prop;
  ]

(* Tests for the closure-compiled executor (Exec_compile): differential
   equivalence against the reference interpreter on random arith/scf
   programs, lowered stencil programs, and the full distributed harness. *)

open Ir
open Dialects
module R = Interp.Rtval

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-12

let run_on (e : Interp.Executor.t) ?externs m func args =
  e.Interp.Executor.prepare ?externs m func args

(* --- random well-typed arith/scf programs --- *)

(* Integer expressions over the loop induction variable; divisors are
   nonzero constants so both executors see the same defined behavior. *)
type ie =
  | IC of int
  | IV  (* the induction variable *)
  | IAdd of ie * ie
  | ISub of ie * ie
  | IMul of ie * ie
  | IDiv of ie * int
  | IRem of ie * int
  | ISel of Arith.predicate * ie * ie * ie * ie

type fe =
  | FC of float
  | FOfI of ie
  | FAdd of fe * fe
  | FSub of fe * fe
  | FMul of fe * fe
  | FDiv of fe * fe
  | FMax of fe * fe
  | FMin of fe * fe
  | FNeg of fe
  | FSel of Arith.predicate * fe * fe * fe * fe

let gen_pred =
  QCheck.Gen.oneofl
    [ Arith.Eq; Arith.Ne; Arith.Lt; Arith.Le; Arith.Gt; Arith.Ge ]

let gen_divisor =
  QCheck.Gen.(map (fun (s, d) -> if s then d else -d) (pair bool (1 -- 7)))

let gen_ie =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof [ map (fun c -> IC c) (-20 -- 20); return IV ]
           else
             let sub = self (n / 2) in
             frequency
               [
                 (2, map (fun c -> IC c) (-20 -- 20));
                 (2, return IV);
                 (3, map2 (fun a b -> IAdd (a, b)) sub sub);
                 (3, map2 (fun a b -> ISub (a, b)) sub sub);
                 (2, map2 (fun a b -> IMul (a, b)) sub sub);
                 (1, map2 (fun a d -> IDiv (a, d)) sub gen_divisor);
                 (1, map2 (fun a d -> IRem (a, d)) sub gen_divisor);
                 ( 1,
                   map2
                     (fun (p, a, b) (c, d) -> ISel (p, a, b, c, d))
                     (triple gen_pred sub sub)
                     (pair sub sub) );
               ]))

let gen_fe =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun c -> FC c) (float_range (-10.) 10.);
                 map (fun i -> FOfI i) (gen_ie |> map (fun x -> x));
               ]
           else
             let sub = self (n / 2) in
             frequency
               [
                 (2, map (fun c -> FC c) (float_range (-10.) 10.));
                 (1, map (fun i -> FOfI i) gen_ie);
                 (3, map2 (fun a b -> FAdd (a, b)) sub sub);
                 (2, map2 (fun a b -> FSub (a, b)) sub sub);
                 (2, map2 (fun a b -> FMul (a, b)) sub sub);
                 (1, map2 (fun a b -> FDiv (a, b)) sub sub);
                 (1, map2 (fun a b -> FMax (a, b)) sub sub);
                 (1, map2 (fun a b -> FMin (a, b)) sub sub);
                 (1, map (fun a -> FNeg a) sub);
                 ( 1,
                   map2
                     (fun (p, a, b) (c, d) -> FSel (p, a, b, c, d))
                     (triple gen_pred sub sub)
                     (pair sub sub) );
               ]))

let rec emit_ie bld iv = function
  | IC c -> Arith.const_int bld c
  | IV -> iv
  | IAdd (a, b) -> Arith.add_i bld (emit_ie bld iv a) (emit_ie bld iv b)
  | ISub (a, b) -> Arith.sub_i bld (emit_ie bld iv a) (emit_ie bld iv b)
  | IMul (a, b) -> Arith.mul_i bld (emit_ie bld iv a) (emit_ie bld iv b)
  | IDiv (a, d) -> Arith.div_i bld (emit_ie bld iv a) (Arith.const_int bld d)
  | IRem (a, d) -> Arith.rem_i bld (emit_ie bld iv a) (Arith.const_int bld d)
  | ISel (p, a, b, c, d) ->
      let cond = Arith.cmp_i bld p (emit_ie bld iv a) (emit_ie bld iv b) in
      Arith.select_op bld cond (emit_ie bld iv c) (emit_ie bld iv d)

let rec emit_fe bld iv = function
  | FC c -> Arith.const_float bld c
  | FOfI i -> Arith.si_to_fp bld (emit_ie bld iv i) Typesys.f64
  | FAdd (a, b) -> Arith.add_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FSub (a, b) -> Arith.sub_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FMul (a, b) -> Arith.mul_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FDiv (a, b) -> Arith.div_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FMax (a, b) -> Arith.max_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FMin (a, b) -> Arith.min_f bld (emit_fe bld iv a) (emit_fe bld iv b)
  | FNeg a -> Arith.neg_f bld (emit_fe bld iv a)
  | FSel (p, a, b, c, d) ->
      let cond = Arith.cmp_f bld p (emit_fe bld iv a) (emit_fe bld iv b) in
      Arith.select_op bld cond (emit_fe bld iv c) (emit_fe bld iv d)

(* func @main() -> (i64, f64): an scf.for over [0, steps) accumulating an
   int and a float carried value through the generated expressions. *)
let program_module (ie, fe, steps) : Op.t =
  let f =
    Func.define "main" ~arg_tys: [] ~res_tys: [ Typesys.i64; Typesys.f64 ]
      (fun bld _ ->
        let lo = Arith.const_index bld 0 in
        let hi = Arith.const_index bld steps in
        let st = Arith.const_index bld 1 in
        let i0 = Arith.const_int bld 0 in
        let f0 = Arith.const_float bld 0. in
        let outs =
          Scf.for_op bld ~lo ~hi ~step: st ~init: [ i0; f0 ]
            (fun body iv iters ->
              match iters with
              | [ ia; fa ] ->
                  let iv64 = Arith.index_cast_op body iv Typesys.i64 in
                  let i' = Arith.add_i body ia (emit_ie body iv64 ie) in
                  let f' = Arith.add_f body fa (emit_fe body iv64 fe) in
                  Scf.yield_op body [ i'; f' ]
              | _ -> assert false)
        in
        Func.return_op bld outs)
  in
  Op.module_op [ f ]

let differential_prop =
  QCheck.Test.make ~count: 200
    ~name: "random arith/scf: compiled == interpreted"
    (QCheck.make
       QCheck.Gen.(triple gen_ie gen_fe (1 -- 5))
       ~print: (fun (_, _, steps) ->
         Printf.sprintf "<random program, %d steps>" steps))
    (fun prog ->
      let m = program_module prog in
      let interp = run_on Interp.Executor.interpreter m "main" [] in
      let compiled = run_on Exec_compile.executor m "main" [] in
      (* Structural equality is bitwise here: Rf nan compares equal to
         itself under Stdlib.compare, matching interpreter semantics. *)
      Stdlib.compare interp compiled = 0)

(* --- lowered stencil programs --- *)

let lowered_equivalence name m args_of =
  let func = Driver.Harness.default_func m in
  let lowered =
    Core.Pipeline.compile ~verify: false Core.Pipeline.Cpu_sequential m
  in
  let run e =
    let args = args_of () in
    let results = run_on e lowered func args in
    List.filter_map
      (function R.Rbuf b -> Some b | _ -> None)
      (results @ args)
  in
  let bi = run Interp.Executor.interpreter in
  let bc = run Exec_compile.executor in
  check int_c (name ^ ": same buffer count") (List.length bi)
    (List.length bc);
  List.iter2
    (fun a b ->
      check bool_c (name ^ ": identical contents") true
        (R.float_contents a = R.float_contents b))
    bi bc

let test_jacobi_lowered () =
  let n = 32 in
  lowered_equivalence "jacobi1d"
    (Programs.jacobi1d_timeloop_module ~n ~steps: 5)
    (fun () ->
      [
        R.Rbuf
          (Driver.Harness.rebase
             (Programs.make_field_1d ~n (fun i -> Float.sin (float_of_int i))));
        R.Rbuf
          (Driver.Harness.rebase (Programs.make_field_1d ~n (fun _ -> 0.)));
      ])

let test_heat_lowered () =
  let nx = 16 and ny = 16 in
  let mk f = R.Rbuf (Driver.Harness.rebase (Programs.make_field_2d ~nx ~ny f)) in
  lowered_equivalence "heat2d"
    (Programs.heat2d_timeloop_module ~nx ~ny ~steps: 3)
    (fun () ->
      [
        mk (fun i j -> Float.cos (float_of_int (i + (2 * j)) *. 0.21));
        mk (fun _ _ -> 0.);
      ])

(* Loop-carried swap through scf.yield: the parallel-move case — the
   compiled loop must read all yielded values before writing any carried
   slot. *)
let test_scalar_swap_loop () =
  let f =
    Func.define "main" ~arg_tys: [] ~res_tys: [ Typesys.i64; Typesys.i64 ]
      (fun bld _ ->
        let lo = Arith.const_index bld 0 in
        let hi = Arith.const_index bld 5 in
        let st = Arith.const_index bld 1 in
        let a0 = Arith.const_int bld 1 in
        let b0 = Arith.const_int bld 2 in
        let outs =
          Scf.for_op bld ~lo ~hi ~step: st ~init: [ a0; b0 ]
            (fun body _iv iters ->
              match iters with
              | [ a; b ] ->
                  let b' = Arith.add_i body b (Arith.const_int body 10) in
                  (* swap: next (a, b) = (b + 10, a) *)
                  Scf.yield_op body [ b'; a ]
              | _ -> assert false)
        in
        Func.return_op bld outs)
  in
  let m = Op.module_op [ f ] in
  let interp = run_on Interp.Executor.interpreter m "main" [] in
  let compiled = run_on Exec_compile.executor m "main" [] in
  check bool_c "swap loop identical" true (Stdlib.compare interp compiled = 0)

(* --- compile-time behavior --- *)

let test_unsupported_stencil () =
  let m = Programs.jacobi1d_module ~n: 8 in
  match run_on Exec_compile.executor m "step" [] with
  | _ -> Alcotest.fail "expected Unsupported on a stencil-dialect module"
  | exception Exec_compile.Unsupported msg ->
      Support.assert_contains ~what: "Unsupported message" msg "stencil"

(* Extern calls are pre-bound at compile time and dispatch through the
   externs handler exactly like the interpreter's stub calls. *)
let test_extern_call () =
  let f =
    Func.define "main" ~arg_tys: [] ~res_tys: [ Typesys.i64 ] (fun bld _ ->
        let x = Arith.const_int bld 21 in
        let rs = Func.call_op bld "MY_EXT" [ x ] [ Typesys.i64 ] in
        Func.return_op bld rs)
  in
  let m = Op.module_op [ f ] in
  let calls = ref 0 in
  let externs (op : Op.t) args =
    match (op.Op.name, Op.attr op "callee") with
    | "func.call", Some (Typesys.Symbol_attr "MY_EXT") ->
        incr calls;
        Some [ R.Ri (2 * R.as_int (List.hd args)) ]
    | _ -> None
  in
  let results = run_on Exec_compile.executor ~externs m "main" [] in
  check int_c "extern called once" 1 !calls;
  check bool_c "extern result" true (results = [ R.Ri 42 ]);
  (* An unbound extern is a runtime error, as in the interpreter. *)
  match run_on Exec_compile.executor m "main" [] with
  | _ -> Alcotest.fail "expected undefined-function error"
  | exception R.Runtime_error msg ->
      Support.assert_contains ~what: "error" msg "MY_EXT"

let test_of_name () =
  check bool_c "compiled resolves" true
    (match Exec_compile.of_name "compiled" with
    | Some e -> e.Interp.Executor.exec_name = "compiled"
    | None -> false);
  check bool_c "interp resolves" true
    (match Exec_compile.of_name "interp" with
    | Some e -> e.Interp.Executor.exec_name = "interp"
    | None -> false);
  check bool_c "unknown rejected" true (Exec_compile.of_name "jit" = None);
  (* The raising registry lookup must spell out what would have worked. *)
  check bool_c "unknown name error lists available executors" true
    (match Interp.Executor.of_name "jit" with
    | _ -> false
    | exception Failure msg ->
        let mentions needle =
          let nh = String.length msg and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub msg i nn = needle || go (i + 1))
          in
          go 0
        in
        mentions "available" && mentions "compiled" && mentions "interp")

(* --- full harness equivalence: compiled-par == compiled-sim ==
   interpreted-serial, exactly --- *)

let wave_module ~shape ~timesteps : Op.t =
  let g = Devito.Symbolic.grid ~dt: 0.02 shape in
  let u = Devito.Symbolic.function_ ~space_order: 4 ~time_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(f 2.25 *: laplace u)
  in
  snd (Devito.Operator.operator ~name: "wave" ~timesteps eqn)

let test_harness_equivalence_compiled () =
  let workloads =
    [
      ("heat2d", Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 2);
      ("wave", wave_module ~shape: [ 16; 16 ] ~timesteps: 2);
    ]
  in
  List.iter
    (fun (name, m) ->
      List.iter
        (fun ranks ->
          let executor = Exec_compile.executor in
          let sim =
            Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim
              ~executor ~ranks m
          in
          let par =
            Driver.Harness.run_distributed ~substrate: Driver.Harness.Par
              ~executor ~ranks m
          in
          check float_c
            (Printf.sprintf "%s: compiled-sim == interp-serial at %d ranks"
               name ranks)
            0. sim.Driver.Harness.max_diff_vs_serial;
          check float_c
            (Printf.sprintf "%s: compiled-par == interp-serial at %d ranks"
               name ranks)
            0. par.Driver.Harness.max_diff_vs_serial;
          check float_c
            (Printf.sprintf "%s: compiled-par == compiled-sim at %d ranks"
               name ranks)
            0.
            (Driver.Harness.max_result_diff par sim))
        [ 1; 2; 4 ])
    workloads

let suite =
  [
    Alcotest.test_case "jacobi1d lowered: compiled == interp" `Quick
      test_jacobi_lowered;
    Alcotest.test_case "heat2d lowered: compiled == interp" `Quick
      test_heat_lowered;
    Alcotest.test_case "scf.for carried swap (parallel move)" `Quick
      test_scalar_swap_loop;
    Alcotest.test_case "stencil dialect raises Unsupported" `Quick
      test_unsupported_stencil;
    Alcotest.test_case "extern calls pre-bound" `Quick test_extern_call;
    Alcotest.test_case "of_name executor selection" `Quick test_of_name;
    Alcotest.test_case "harness: compiled par == sim == serial" `Quick
      test_harness_equivalence_compiled;
    QCheck_alcotest.to_alcotest differential_prop;
  ]

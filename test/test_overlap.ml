(* Tests for the communication/computation-overlap extension: interior/
   boundary splitting geometry, the structural rewrite, and end-to-end
   distributed equivalence of the overlapped program at the stencil+dmp and
   fully lowered stages. *)

open Ir
open Core

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* --- geometry --- *)

let test_interior_box () =
  let inner =
    Overlap.interior_box ~halo: [| (-1, 1); (-2, 2) |] ([ 0; 0 ], [ 8; 10 ])
  in
  check (Alcotest.pair (Alcotest.list int_c) (Alcotest.list int_c))
    "interior shrinks by halo" ([ 1; 2 ], [ 7; 8 ]) inner

let box_points (lb, ub) =
  List.fold_left2 (fun acc l u -> acc * max 0 (u - l)) 1 lb ub

let test_boundary_cover () =
  let outer = ([ 0; 0 ], [ 8; 10 ]) in
  let inner = ([ 1; 2 ], [ 7; 8 ]) in
  let frags = Overlap.boundary_fragments ~outer ~inner in
  (* Disjoint cover: points sum to outer minus inner. *)
  let total = List.fold_left (fun acc b -> acc + box_points b) 0 frags in
  check int_c "covers outer minus inner" (80 - 36) total;
  (* Pairwise disjoint. *)
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (lb, ub) ->
      for i = List.nth lb 0 to List.nth ub 0 - 1 do
        for j = List.nth lb 1 to List.nth ub 1 - 1 do
          check bool_c "cell covered once" false (Hashtbl.mem cells (i, j));
          Hashtbl.add cells (i, j) ()
        done
      done)
    frags;
  (* No fragment overlaps the interior. *)
  Hashtbl.iter
    (fun (i, j) () ->
      check bool_c "outside interior" false
        (i >= 1 && i < 7 && j >= 2 && j < 8))
    cells

let boundary_prop =
  QCheck.Test.make ~count: 200
    ~name: "boundary fragments partition outer minus inner"
    QCheck.(
      make
        Gen.(
          let* rank = int_range 1 3 in
          let* dims = list_size (return rank) (int_range 3 9) in
          let* halo = list_size (return rank) (int_range 0 2) in
          return (dims, halo)))
    (fun (dims, halo) ->
      let outer = (List.map (fun _ -> 0) dims, dims) in
      let halo_arr = Array.of_list (List.map (fun h -> (-h, h)) halo) in
      let inner = Overlap.interior_box ~halo: halo_arr outer in
      let frags = Overlap.boundary_fragments ~outer ~inner in
      let inner_pts = if Overlap.box_empty inner then 0 else box_points inner in
      let frag_pts = List.fold_left (fun acc b -> acc + box_points b) 0 frags in
      frag_pts + inner_pts = box_points outer)

(* --- structural rewrite --- *)

let distributed_heat () =
  Distribute.run
    (Distribute.options ~ranks: 4 ~strategy: Decomposition.Slice2d ())
    (Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 3)

let test_overlap_structure () =
  let m = Overlap.run (Swap_elim.run (distributed_heat ())) in
  Verifier.verify ~checks: Registry.checks m;
  check int_c "no fused swaps left" 0
    (Transforms.Statistics.count m "dmp.swap");
  check int_c "one begin" 1 (Transforms.Statistics.count m "dmp.swap_begin");
  check int_c "one wait" 1 (Transforms.Statistics.count m "dmp.swap_wait");
  (* 1 interior apply + 4 boundary slabs. *)
  check int_c "interior + 4 slabs" 5
    (Transforms.Statistics.count m "stencil.apply");
  (* The interior apply sits between begin and wait. *)
  let order = ref [] in
  Op.walk
    (fun o ->
      if
        List.mem o.Op.name
          [ "dmp.swap_begin"; "dmp.swap_wait"; "stencil.apply" ]
      then order := o.Op.name :: !order)
    m;
  (match List.rev !order with
  | "dmp.swap_begin" :: "stencil.apply" :: "dmp.swap_wait" :: _ -> ()
  | other ->
      Alcotest.failf "unexpected op order: %s" (String.concat ", " other))

let test_overlap_conservative () =
  (* A block without the pattern is untouched. *)
  let m = Programs.heat2d_module ~nx: 8 ~ny: 8 in
  let m' = Overlap.run m in
  check Alcotest.string "no change without swaps"
    (Printer.module_to_string m)
    (Printer.module_to_string m')

(* --- end-to-end equivalence --- *)

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

let run_overlapped ~lowered_stage () =
  let nx = 16 and ny = 16 and steps = 4 and ranks = 4 in
  let init i j = Float.cos (float_of_int ((2 * i) + (3 * j))) in
  let m = Programs.heat2d_timeloop_module ~nx ~ny ~steps in
  let serial =
    match
      Driver.Simulate.run_serial ~func: "run" m
        [
          Interp.Rtval.Rbuf (Programs.make_field_2d ~nx ~ny init);
          Interp.Rtval.Rbuf (Programs.make_field_2d ~nx ~ny init);
        ]
    with
    | [ Interp.Rtval.Rbuf latest; _ ] -> latest
    | _ -> Alcotest.fail "expected buffers"
  in
  let dm =
    Overlap.run
      (Swap_elim.run
         (Distribute.run
            (Distribute.options ~ranks ~strategy: Decomposition.Slice2d ())
            m))
  in
  let fop = Option.get (Op.lookup_symbol dm "run") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let lowered =
    if lowered_stage then
      Mpi_to_func.run
        (Dmp_to_mpi.run
           (Stencil_to_loops.run ~style: Stencil_to_loops.Sequential dm))
    else dm
  in
  Verifier.verify ~checks: Registry.checks lowered;
  let interior = List.map2 (fun n p -> n / p) [ nx; ny ] grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let global = Programs.make_field_2d ~nx ~ny init in
  let gathered = Programs.make_field_2d ~nx ~ny (fun _ _ -> nan) in
  ignore
    (Driver.Simulate.run_spmd ~ranks ~func: "run"
       ~make_args: (fun ctx ->
         let rank = Mpi_sim.rank ctx in
         List.init 2 (fun _ ->
             let b =
               Driver.Domain.scatter_field ~global ~grid ~local_bounds ~rank
             in
             Interp.Rtval.Rbuf (if lowered_stage then rebase b else b)))
       ~collect: (fun ctx _ results ->
         match results with
         | Interp.Rtval.Rbuf latest :: _ ->
             Driver.Domain.gather_interior
               ~origin: (if lowered_stage then origin else [ 0; 0 ])
               ~global: gathered ~local: latest ~grid ~interior
               ~rank: (Mpi_sim.rank ctx) ()
         | _ -> Alcotest.fail "expected buffers")
       lowered);
  let worst = ref 0. in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
      let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
      worst := Float.max !worst (Float.abs (s -. d))
    done
  done;
  check (Alcotest.float 1e-12)
    (Printf.sprintf "overlapped == serial (%s)"
       (if lowered_stage then "func-calls" else "stencil+dmp"))
    0. !worst

let test_overlap_matches_serial_stencil () = run_overlapped ~lowered_stage: false ()
let test_overlap_matches_serial_lowered () = run_overlapped ~lowered_stage: true ()

(* The executed pipeline end-to-end: Harness.run_distributed (which owns
   the overlap-by-default lowering) must reproduce the serial oracle
   bitwise on every substrate x executor x rank count, with overlap both
   on and off. *)
let test_harness_overlap_matrix () =
  let workloads =
    [
      ("heat2d", Programs.heat2d_timeloop_module ~nx: 12 ~ny: 12 ~steps: 2);
      ("jacobi1d", Programs.jacobi1d_timeloop_module ~n: 16 ~steps: 3);
    ]
  in
  let executors =
    [
      ("interp", None);
      ("compiled", Some Exec_compile.executor);
    ]
  in
  List.iter
    (fun (wname, m) ->
      List.iter
        (fun (sname, substrate) ->
          List.iter
            (fun (ename, executor) ->
              List.iter
                (fun ranks ->
                  List.iter
                    (fun overlap ->
                      let r =
                        Driver.Harness.run_distributed ~substrate ?executor
                          ~overlap ~ranks m
                      in
                      check bool_c
                        (Printf.sprintf "%s %s %s r%d ov=%b overlap recorded"
                           wname sname ename ranks overlap)
                        overlap r.Driver.Harness.overlap;
                      check (Alcotest.float 0.)
                        (Printf.sprintf "%s %s %s r%d ov=%b == serial" wname
                           sname ename ranks overlap)
                        0. r.Driver.Harness.max_diff_vs_serial)
                    [ true; false ])
                [ 1; 2; 4 ])
            executors)
        [ ("sim", Driver.Harness.Sim); ("par", Driver.Harness.Par) ])
    workloads

(* Halo pack/unpack phases appear as spans on substrate timelines: the
   lowered module's MPI_Pcontrol markers flow through Runtime_link into
   Span_begin/Span_end events, balanced per rank. *)
let test_pack_unpack_spans_recorded () =
  let nx = 12 and ny = 12 and steps = 2 and ranks = 4 in
  let m = Programs.heat2d_timeloop_module ~nx ~ny ~steps in
  let dm =
    Overlap.run
      (Swap_elim.run
         (Distribute.run
            (Distribute.options ~ranks ~strategy: Decomposition.Slice2d ())
            m))
  in
  let lowered =
    Mpi_to_func.run
      (Dmp_to_mpi.run
         (Stencil_to_loops.run ~style: Stencil_to_loops.Sequential dm))
  in
  let fop = Option.get (Op.lookup_symbol dm "run") in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let shape = List.map Typesys.bound_size local_bounds in
  let comm =
    Driver.Simulate.run_spmd ~trace: true ~ranks ~func: "run"
      ~make_args: (fun _ctx ->
        List.init 2 (fun _ ->
            Interp.Rtval.Rbuf
              (Interp.Rtval.alloc_buffer shape Typesys.f32)))
      lowered
  in
  let events = Mpi_sim.timeline comm in
  let count kind =
    List.length
      (List.filter (fun (e : Mpi_intf.timeline_event) -> e.Mpi_intf.kind = kind) events)
  in
  let pack_open = count (Mpi_intf.Span_begin "pack") in
  let pack_close = count (Mpi_intf.Span_end "pack") in
  let unpack_open = count (Mpi_intf.Span_begin "unpack") in
  let unpack_close = count (Mpi_intf.Span_end "unpack") in
  check bool_c "pack spans recorded" true (pack_open > 0);
  check bool_c "unpack spans recorded" true (unpack_open > 0);
  check int_c "pack spans balanced" pack_open pack_close;
  check int_c "unpack spans balanced" unpack_open unpack_close

let suite =
  [
    Alcotest.test_case "interior box" `Quick test_interior_box;
    Alcotest.test_case "boundary cover (2D)" `Quick test_boundary_cover;
    QCheck_alcotest.to_alcotest boundary_prop;
    Alcotest.test_case "overlap rewrite structure" `Quick
      test_overlap_structure;
    Alcotest.test_case "overlap is conservative" `Quick
      test_overlap_conservative;
    Alcotest.test_case "overlapped == serial (stencil+dmp)" `Quick
      test_overlap_matches_serial_stencil;
    Alcotest.test_case "overlapped == serial (func-calls)" `Quick
      test_overlap_matches_serial_lowered;
    Alcotest.test_case "harness overlap matrix == serial" `Quick
      test_harness_overlap_matrix;
    Alcotest.test_case "pack/unpack spans recorded" `Quick
      test_pack_unpack_spans_recorded;
  ]

let () =
  Alcotest.run "stencil-shared-stack"
    [
      ("ir", Test_ir.suite);
      ("rewriter", Test_rewriter.suite);
      ("interp", Test_interp.suite);
      ("exec_compile", Test_exec_compile.suite);
      ("service", Test_service.suite);
      ("lowering", Test_lowering.suite);
      ("mpi_sim", Test_mpi_sim.suite);
      ("mpi_par", Test_mpi_par.suite);
      ("domain", Test_domain.suite);
      ("distributed", Test_distributed.suite);
      ("threads", Test_threads.suite);
      ("hls", Test_hls.suite);
      ("frontends", Test_frontends.suite);
      ("machine", Test_machine.suite);
      ("pipelines", Test_pipelines.suite);
      ("mpi_lowering", Test_mpi_lowering.suite);
      ("overlap", Test_overlap.suite);
      ("extras", Test_extras.suite);
      ("shared_stack", Test_shared_stack.suite);
      ("obs", Test_obs.suite);
      ("analysis", Test_analysis.suite);
      ("scale", Test_scale.suite);
    ]

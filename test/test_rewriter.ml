(* The shared rewrite core: workspace mutation API, worklist re-enqueue
   cascades, the CSE attr-order fix, non-convergence reporting, and
   sweep/worklist semantic equivalence (deterministic and qcheck). *)

open Ir
module W = Rewriter.Workspace

let check = Alcotest.check
let float_c = Alcotest.float 1e-9

let mk_const n =
  let v = Value.fresh Typesys.i64 in
  ( Op.make Dialects.Arith.constant ~results: [ v ]
      ~attrs: [ ("value", Typesys.Int_attr (n, Typesys.i64)) ],
    v )

let const_value (op : Op.t) =
  match Op.attr op "value" with
  | Some (Typesys.Int_attr (n, _)) -> Some n
  | _ -> None

(* --- workspace mutation API --- *)

let test_use_counts () =
  let c, v = mk_const 1 in
  let u1 = Op.make "test.use" ~operands: [ v ] in
  let u2 = Op.make "test.use" ~operands: [ v; v ] in
  let ws = W.of_op (Op.module_op [ c; u1; u2 ]) in
  check Alcotest.int "three uses" 3 (W.use_count ws v);
  check Alcotest.int "two users" 2 (List.length (W.users ws v));
  let u2_nid = List.nth (W.users ws v) 1 in
  let released = W.erase_op ws u2_nid in
  check Alcotest.int "one use left" 1 (W.use_count ws v);
  check Alcotest.int "one user left" 1 (List.length (W.users ws v));
  check Alcotest.bool "erase released the constant" true
    (List.exists (fun r -> Value.id r = Value.id v) released)

let test_replace_all_uses () =
  let c1, v1 = mk_const 1 in
  let c2, v2 = mk_const 2 in
  let u = Op.make "test.use" ~operands: [ v1 ] in
  let ws = W.of_op (Op.module_op [ c1; c2; u ]) in
  let affected = W.replace_all_uses ws v1 v2 in
  check Alcotest.int "one affected user" 1 (List.length affected);
  check Alcotest.int "old value unused" 0 (W.use_count ws v1);
  check Alcotest.int "new value used" 1 (W.use_count ws v2);
  Op.walk
    (fun o ->
      if o.Op.name = "test.use" then
        check Alcotest.int "operand redirected" (Value.id v2)
          (Value.id (List.hd o.Op.operands)))
    (W.to_op ws)

let test_insert_and_replace () =
  let c1, v1 = mk_const 1 in
  let u = Op.make "test.use" ~operands: [ v1 ] in
  let ws = W.of_op (Op.module_op [ c1; u ]) in
  (* Insert a marker between the constant and its use. *)
  let u_nid = List.hd (W.users ws v1) in
  ignore (W.insert_before ws ~anchor: u_nid (Op.make "test.marker"));
  check (Alcotest.list Alcotest.string) "insertion order"
    [ "arith.constant"; "test.marker"; "test.use" ]
    (List.map (fun (o : Op.t) -> o.Op.name) (Op.module_ops (W.to_op ws)));
  (* Replace the constant with another one; the use must be remapped. *)
  let c_nid =
    match W.def_site ws v1 with `Op n -> n | _ -> Alcotest.fail "def site"
  in
  let c9, v9 = mk_const 9 in
  let _, affected, _ = W.replace_op ws c_nid [ c9 ] [ (v1, v9) ] in
  check Alcotest.int "use re-targeted on replace" 1 (List.length affected);
  check Alcotest.int "new value used" 1 (W.use_count ws v9);
  Op.walk
    (fun o ->
      if o.Op.name = "test.use" then
        check Alcotest.int "use reads replacement" (Value.id v9)
          (Value.id (List.hd o.Op.operands)))
    (W.to_op ws)

let test_erase_dead_cascade () =
  let c1, v1 = mk_const 1 in
  let c2, v2 = mk_const 2 in
  let add = Value.fresh Typesys.i64 in
  let a = Op.make Dialects.Arith.addi ~operands: [ v1; v1 ] ~results: [ add ] in
  let u = Op.make "test.use" ~operands: [ v2 ] in
  let ws = W.of_op (Op.module_op [ c1; c2; a; u ]) in
  let n =
    Rewriter.erase_dead ~removable: Transforms.Effects.removable_if_unused ws
  in
  check Alcotest.int "dead add and its constant erased" 2 n;
  check (Alcotest.list Alcotest.string) "survivors"
    [ "arith.constant"; "test.use" ]
    (List.map (fun (o : Op.t) -> o.Op.name) (Op.module_ops (W.to_op ws)))

(* --- worklist re-enqueue cascade --- *)

(* test.inc(constant c) -> constant (c + 1): each application strands the
   old constant, which only the driver's dead-op folding can remove, and
   enables the next inc, which only re-enqueueing its user can reach. *)
let inc_pattern =
  Rewriter.pattern ~roots: [ "test.inc" ] "fold-inc" (fun ctx op ->
      match op.Op.operands with
      | [ x ] -> (
          match ctx.Rewriter.def x with
          | Some d when d.Op.name = Dialects.Arith.constant -> (
              match const_value d with
              | Some n ->
                  let c, v = mk_const (n + 1) in
                  Pattern.replace_with [ c ] [ (Op.result_exn op, v) ]
              | None -> None)
          | _ -> None)
      | _ -> None)

let test_worklist_cascade () =
  Obs.enable ();
  let c0, v0 = mk_const 0 in
  let mk_inc x =
    let r = Value.fresh Typesys.i64 in
    (Op.make "test.inc" ~operands: [ x ] ~results: [ r ], r)
  in
  let i1, r1 = mk_inc v0 in
  let i2, r2 = mk_inc r1 in
  let i3, r3 = mk_inc r2 in
  let u = Op.make "test.use" ~operands: [ r3 ] in
  let m = Op.module_op [ c0; i1; i2; i3; u ] in
  let m' =
    Rewriter.run ~driver: Rewriter.Worklist
      ~dead: Transforms.Effects.removable_if_unused ~name: "test-cascade"
      [ inc_pattern ] m
  in
  check Alcotest.int "one constant left" 1
    (Transforms.Statistics.count m' Dialects.Arith.constant);
  check Alcotest.int "incs all folded" 0
    (Transforms.Statistics.count m' "test.inc");
  Op.walk
    (fun o ->
      if o.Op.name = Dialects.Arith.constant then
        check (Alcotest.option Alcotest.int) "cascade reached 3" (Some 3)
          (const_value o))
    m';
  let st =
    List.find
      (fun (s : Obs.rewrite_stat) -> s.Obs.rw_pass = "test-cascade")
      (Obs.Rewrites.stats ())
  in
  check Alcotest.string "driver recorded" "worklist" st.Obs.rw_driver;
  check Alcotest.int "three applications" 3 st.Obs.rw_applied;
  check Alcotest.int "three stranded constants erased" 3 st.Obs.rw_erased_dead;
  check Alcotest.bool "enqueued counted" true (st.Obs.rw_enqueued > 0);
  Obs.disable ()

(* --- CSE attr-order regression ---

   Op.set_attr prepends, so semantically equal ops can carry their attrs
   in different orders; the CSE key must not distinguish them. *)
let test_cse_attr_order () =
  let c1, v1 = mk_const 1 in
  let c2, v2 = mk_const 2 in
  let attrs_a =
    [ ("k1", Typesys.Unit_attr); ("k2", Typesys.Int_attr (7, Typesys.i64)) ]
  in
  let attrs_b = List.rev attrs_a in
  let r1 = Value.fresh Typesys.i64 and r2 = Value.fresh Typesys.i64 in
  let a1 =
    Op.make Dialects.Arith.addi ~operands: [ v1; v2 ] ~results: [ r1 ]
      ~attrs: attrs_a
  in
  let a2 =
    Op.make Dialects.Arith.addi ~operands: [ v1; v2 ] ~results: [ r2 ]
      ~attrs: attrs_b
  in
  let u = Op.make "test.use" ~operands: [ r1; r2 ] in
  let m' = Transforms.Cse.run (Op.module_op [ c1; c2; a1; a2; u ]) in
  check Alcotest.int "attr order does not defeat CSE" 1
    (Transforms.Statistics.count m' Dialects.Arith.addi)

(* --- non-convergence warning --- *)

(* A flip-flop that never converges: each application toggles an attr. *)
let flip_pattern =
  Rewriter.pattern ~roots: [ "test.flip" ] "flip" (fun _ op ->
      let phase =
        match Op.attr op "phase" with
        | Some (Typesys.Int_attr (n, _)) -> n
        | _ -> 0
      in
      Pattern.replace_with
        [
          Op.make "test.flip"
            ~attrs: [ ("phase", Typesys.Int_attr (1 - phase, Typesys.i64)) ];
        ]
        [])

let test_non_convergence_warning () =
  Obs.enable ();
  let m = Op.module_op [ Op.make "test.flip" ] in
  List.iter
    (fun driver ->
      ignore (Rewriter.run ~driver ~name: "test-flip" [ flip_pattern ] m))
    [ Rewriter.Worklist; Rewriter.Sweep ];
  let instants =
    List.filter
      (fun (e : Obs.event) ->
        e.Obs.name = "rewrite-non-convergence" && e.Obs.ph = Obs.Instant)
      (Obs.Trace.events ())
  in
  check Alcotest.int "both drivers reported non-convergence" 2
    (List.length instants);
  List.iter
    (fun (e : Obs.event) ->
      check Alcotest.bool "event names the pass" true
        (List.mem ("pass", Obs.Str "test-flip") e.Obs.ev_args))
    instants;
  Obs.disable ()

(* --- sweep/worklist equivalence: deterministic pipeline --- *)

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

let test_pipeline_drivers_agree () =
  let m = Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 3 in
  let init i j = Float.sin (float_of_int ((2 * i) + j)) in
  let run_with driver =
    Rewriter.set_default_driver driver;
    Fun.protect
      ~finally: (fun () -> Rewriter.set_default_driver Rewriter.Worklist)
      (fun () ->
        let compiled = Core.Pipeline.compile Core.Pipeline.Cpu_sequential m in
        let a = rebase (Programs.make_field_2d ~nx: 8 ~ny: 8 init) in
        let b = rebase (Programs.make_field_2d ~nx: 8 ~ny: 8 init) in
        ignore
          (Driver.Simulate.run_serial ~func: "run" compiled
             [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ]);
        (a, b))
  in
  let a1, b1 = run_with Rewriter.Sweep in
  let a2, b2 = run_with Rewriter.Worklist in
  check float_c "drivers compile to the same program" 0.
    (Float.max
       (Driver.Simulate.max_abs_diff a1 a2)
       (Driver.Simulate.max_abs_diff b1 b2))

(* --- sweep/worklist equivalence: random arith/scf programs --- *)

let pick xs k = List.nth xs (abs k mod List.length xs)

(* Deterministic program builder from a list of step seeds: a pool-based
   straight-line function over random constants, exercising every
   canonicalize pattern family (int/float folds, cmpi+select, sitofp,
   identities) plus an optional scf.for reduction. *)
let build_program (int_vals, float_vals, steps, use_loop) =
  let f =
    Dialects.Func.define "main" ~arg_tys: [] ~res_tys: [ Typesys.f64 ]
      (fun bld _args ->
        let module A = Dialects.Arith in
        let ipool = ref (List.map (fun n -> A.const_int bld n) int_vals) in
        let fpool = ref (List.map (fun x -> A.const_float bld x) float_vals) in
        List.iter
          (fun seed ->
            let s1 = seed / 4 and s2 = seed / 16 and s3 = seed / 64 in
            match seed mod 4 with
            | 0 ->
                let name = pick [ A.addi; A.subi; A.muli ] s1 in
                let r = A.binop bld name (pick !ipool s2) (pick !ipool s3) in
                ipool := r :: !ipool
            | 1 ->
                let name = pick [ A.addf; A.subf; A.mulf ] s1 in
                let r = A.binop bld name (pick !fpool s2) (pick !fpool s3) in
                fpool := r :: !fpool
            | 2 ->
                let pred =
                  pick [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ] s1
                in
                let c = A.cmp_i bld pred (pick !ipool s2) (pick !ipool s3) in
                let r =
                  A.select_op bld c (pick !fpool s2) (pick !fpool s3)
                in
                fpool := r :: !fpool
            | _ ->
                let r = Value.fresh Typesys.f64 in
                Builder.add bld
                  (Op.make A.sitofp
                     ~operands: [ pick !ipool s2 ]
                     ~results: [ r ]);
                fpool := r :: !fpool)
          steps;
        if use_loop then begin
          let lo = A.const_index bld 0
          and hi = A.const_index bld 4
          and step = A.const_index bld 1 in
          let addend = pick !fpool 1 in
          let res =
            Dialects.Scf.for_op bld ~lo ~hi ~step ~init: [ pick !fpool 0 ]
              (fun b _iv args ->
                Dialects.Scf.yield_op b
                  [ A.add_f b (List.hd args) addend ])
          in
          fpool := res @ !fpool
        end;
        let result =
          List.fold_left (fun a b -> A.add_f bld a b) (List.hd !fpool)
            (List.tl !fpool)
        in
        Dialects.Func.return_op bld [ result ])
  in
  Op.module_op [ f ]

let gen_program =
  QCheck.Gen.(
    let* int_vals = list_size (int_range 1 3) (int_range (-20) 20) in
    let* float_vals =
      list_size (int_range 1 3)
        (map (fun i -> float_of_int i /. 8.) (int_range (-100) 100))
    in
    let* steps = list_size (int_range 0 12) (int_range 0 1_000_000) in
    let* use_loop = bool in
    return (int_vals, float_vals, steps, use_loop))

let run_main m =
  match Interp.Engine.run (Interp.Engine.create m) "main" [] with
  | [ Interp.Rtval.Rf x ] -> x
  | _ -> Alcotest.fail "main must return one f64"

let drivers_prop =
  QCheck.Test.make ~count: 60
    ~name: "worklist and sweep rewrites preserve semantics"
    (QCheck.make gen_program ~print: (fun spec ->
         Printer.module_to_string (build_program spec)))
    (fun spec ->
      let m = build_program spec in
      let reference = run_main m in
      List.for_all
        (fun driver ->
          let m' =
            Transforms.Dce.run
              (Transforms.Cse.run (Transforms.Canonicalize.run ~driver m))
          in
          Float.equal reference (run_main m'))
        [ Rewriter.Sweep; Rewriter.Worklist ])

let suite =
  [
    Alcotest.test_case "workspace use counts" `Quick test_use_counts;
    Alcotest.test_case "replace_all_uses" `Quick test_replace_all_uses;
    Alcotest.test_case "insert and replace_op" `Quick test_insert_and_replace;
    Alcotest.test_case "erase_dead cascade" `Quick test_erase_dead_cascade;
    Alcotest.test_case "worklist re-enqueue cascade" `Quick
      test_worklist_cascade;
    Alcotest.test_case "cse ignores attr order" `Quick test_cse_attr_order;
    Alcotest.test_case "non-convergence is reported" `Quick
      test_non_convergence_warning;
    Alcotest.test_case "pipeline agrees across drivers" `Quick
      test_pipeline_drivers_agree;
    QCheck_alcotest.to_alcotest drivers_prop;
  ]

(* Threaded execution of omp.parallel regions in the compiled backend.

   - Domain_pool unit tests: index coverage, reuse across epochs,
     degenerate size-1 pools, failure propagation through the join
     barrier, idempotent shutdown.
   - Dialect hygiene: the omp.parallel builder/verifier reject
     non-positive num_threads and malformed tiles; num_threads and tile
     survive a print/parse round trip.
   - Dropped-yield regression: a parallel/dataflow region yielding
     values is rejected by the verifier AND raises in the interpreter
     (both executors used to silently discard the values).
   - Owner assertion: a worker domain touching the mpi_par mailbox
     substrate raises Mpi_error (workers compute only).
   - Differential matrix: compiled-threaded == compiled-sequential ==
     serial interpreter, bitwise, at {1,2,4} threads x {1,2,4} ranks on
     heat2d and wave2d, tiled and untiled; tiling never changes the
     exact message/byte counters. *)

open Ir

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

module Pool = Exec_compile.Domain_pool

(* --- Domain_pool --- *)

let test_pool_covers_indices () =
  let pool = Pool.create 4 in
  Fun.protect
    ~finally: (fun () -> Pool.shutdown pool)
    (fun () ->
      check int_c "size" 4 (Pool.size pool);
      let hits = Array.init 4 (fun _ -> Atomic.make 0) in
      Pool.run pool (fun p -> Atomic.incr hits.(p));
      Array.iteri
        (fun i n ->
          check int_c (Printf.sprintf "participant %d ran once" i) 1
            (Atomic.get n))
        hits;
      (* The pool survives many epochs: every participant runs every
         job exactly once, never a stale one. *)
      let total = Atomic.make 0 in
      for _ = 1 to 25 do
        Pool.run pool (fun _ -> Atomic.incr total)
      done;
      check int_c "25 epochs x 4 participants" 100 (Atomic.get total))

let test_pool_size_one_runs_inline () =
  let pool = Pool.create 1 in
  let ran = ref 0 in
  Pool.run pool (fun p ->
      check int_c "caller is participant 0" 0 p;
      incr ran);
  check int_c "ran exactly once" 1 !ran;
  Pool.shutdown pool;
  (* Idempotent: release paths may shut down twice. *)
  Pool.shutdown pool

let test_pool_propagates_worker_failure () =
  let pool = Pool.create 3 in
  Fun.protect
    ~finally: (fun () -> Pool.shutdown pool)
    (fun () ->
      (match Pool.run pool (fun p -> if p = 1 then failwith "boom") with
      | () -> Alcotest.fail "worker failure must re-raise from run"
      | exception Failure msg -> check bool_c "message" true (msg = "boom"));
      (* A failed epoch must not poison the pool. *)
      let total = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr total);
      check int_c "usable after a failure" 3 (Atomic.get total))

let test_pool_caller_failure_wins () =
  let pool = Pool.create 2 in
  Fun.protect
    ~finally: (fun () -> Pool.shutdown pool)
    (fun () ->
      match Pool.run pool (fun p -> if p = 0 then failwith "caller") with
      | () -> Alcotest.fail "caller failure must re-raise from run"
      | exception Failure msg ->
          check bool_c "caller exception preferred" true (msg = "caller"))

let test_pool_rejects_run_after_shutdown () =
  let pool = Pool.create 2 in
  Pool.shutdown pool;
  match Pool.run pool (fun _ -> ()) with
  | () -> Alcotest.fail "run on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

(* --- omp.parallel builder / verifier / round trip --- *)

let omp_module ~attrs ~body =
  let f =
    Dialects.Func.define "f" ~arg_tys: [] ~res_tys: [] (fun bld _ ->
        Builder.emit0 bld "omp.parallel" ~attrs
          ~regions: [ Builder.region_of body ];
        Dialects.Func.return_op bld [])
  in
  Op.module_op [ f ]

let expect_verifier_error name m =
  match Verifier.verify ~checks: Core.Registry.checks m with
  | () -> Alcotest.fail (name ^ ": expected a verification error")
  | exception Verifier.Verification_error _ -> ()

let test_builder_rejects_negative_num_threads () =
  match
    Dialects.Func.define "f" ~arg_tys: [] ~res_tys: [] (fun bld _ ->
        Dialects.Omp.parallel_op bld ~num_threads: (-2) (fun _ -> ());
        Dialects.Func.return_op bld [])
  with
  | _ -> Alcotest.fail "negative num_threads must be rejected, not dropped"
  | exception Invalid_argument _ -> ()

let test_verifier_rejects_bad_attrs () =
  expect_verifier_error "num_threads = 0"
    (omp_module
       ~attrs: [ ("num_threads", Typesys.Int_attr (0, Typesys.i64)) ]
       ~body: (fun _ -> ()));
  expect_verifier_error "num_threads = -3"
    (omp_module
       ~attrs: [ ("num_threads", Typesys.Int_attr (-3, Typesys.i64)) ]
       ~body: (fun _ -> ()));
  expect_verifier_error "num_threads not an int"
    (omp_module
       ~attrs: [ ("num_threads", Typesys.String_attr "four") ]
       ~body: (fun _ -> ()));
  expect_verifier_error "tile with a zero"
    (omp_module
       ~attrs: [ ("tile", Typesys.Dense_attr [ 8; 0 ]) ]
       ~body: (fun _ -> ()));
  (* Well-formed attributes still pass. *)
  Verifier.verify ~checks: Core.Registry.checks
    (omp_module
       ~attrs:
         [
           ("num_threads", Typesys.Int_attr (4, Typesys.i64));
           ("tile", Typesys.Dense_attr [ 8; 8 ]);
         ]
       ~body: (fun b -> ignore (Dialects.Arith.const_index b 1)))

let test_num_threads_and_tile_roundtrip () =
  let m =
    Op.module_op
      [
        Dialects.Func.define "f" ~arg_tys: [] ~res_tys: [] (fun bld _ ->
            Dialects.Omp.parallel_op bld ~num_threads: 3 ~tile: [ 8; 4 ]
              (fun b -> ignore (Dialects.Arith.const_index b 1));
            Dialects.Func.return_op bld []);
      ]
  in
  Verifier.verify ~checks: Core.Registry.checks m;
  let reparsed =
    Parser.parse_string (Format.asprintf "%a" Printer.print_module m)
  in
  let found = ref false in
  Op.walk
    (fun o ->
      if o.Op.name = Dialects.Omp.parallel then begin
        found := true;
        check int_c "num_threads round-trips" 3 (Dialects.Omp.num_threads_of o);
        check (Alcotest.list int_c) "tile round-trips" [ 8; 4 ]
          (Dialects.Omp.tile_of o)
      end)
    reparsed;
  check bool_c "op survived the round trip" true !found;
  (* Unset stays unset. *)
  let bare =
    omp_module ~attrs: [] ~body: (fun b ->
        ignore (Dialects.Arith.const_index b 1))
  in
  Op.walk
    (fun o ->
      if o.Op.name = Dialects.Omp.parallel then begin
        check int_c "unset num_threads reads 0" 0
          (Dialects.Omp.num_threads_of o);
        check (Alcotest.list int_c) "unset tile reads []" []
          (Dialects.Omp.tile_of o)
      end)
    bare

(* --- dropped-yield regression --- *)

let yielding_region_module opname =
  let f =
    Dialects.Func.define "f" ~arg_tys: [] ~res_tys: [] (fun bld _ ->
        Builder.emit0 bld opname
          ~regions:
            [
              Builder.region_of (fun b ->
                  let v = Dialects.Arith.const_index b 7 in
                  Dialects.Scf.yield_op b [ v ]);
            ];
        Dialects.Func.return_op bld [])
  in
  Op.module_op [ f ]

let test_verifier_rejects_yielding_parallel_region () =
  expect_verifier_error "omp.parallel region yields a value"
    (yielding_region_module "omp.parallel")

let test_interp_rejects_dropped_yields () =
  (* The interpreter used to [ignore] the region result for these ops,
     silently discarding non-empty yields. *)
  List.iter
    (fun opname ->
      let m = yielding_region_module opname in
      let eng = Interp.Engine.create m in
      match Interp.Engine.run eng "f" [] with
      | _ -> Alcotest.fail (opname ^ ": expected a runtime error")
      | exception Interp.Rtval.Runtime_error msg ->
          check bool_c
            (opname ^ ": error names the region yield")
            true
            (String.length msg > 0))
    [ "omp.parallel"; "hls.dataflow" ]

(* --- worker domains must not touch the mailbox substrate --- *)

let test_worker_mailbox_raises () =
  ignore
    (Mpi_par.run_with ~ranks: 1 (fun ctx ->
         let attempt f =
           Domain.join
             (Domain.spawn (fun () ->
                  match f () with
                  | _ -> false
                  | exception Mpi_par.Mpi_error _ -> true))
         in
         check bool_c "isend from a worker domain raises" true
           (attempt (fun () ->
                Mpi_par.isend ctx ~dest: 0 ~tag: 0
                  (Mpi_intf.Floats [| 1.0 |])));
         check bool_c "irecv from a worker domain raises" true
           (attempt (fun () -> Mpi_par.irecv ctx ~source: 0 ~tag: 0));
         (* The owning domain still works after the rejected attempts. *)
         Mpi_par.send ctx ~dest: 0 ~tag: 1 (Mpi_intf.Floats [| 2.5 |]);
         match Mpi_par.recv ctx ~source: 0 ~tag: 1 with
         | Mpi_intf.Floats [| v |] ->
             check bool_c "owner self-send still works" true (v = 2.5)
         | _ -> Alcotest.fail "bad payload"))

(* --- differential matrix: threaded == sequential == interpreter --- *)

let compiled = Interp.Executor.of_name "compiled"
let interp = Interp.Executor.of_name "interp"

let run_dist ?(substrate = Driver.Harness.Sim) ~executor ~ranks ~threads
    ~tiles m =
  Driver.Harness.run_distributed ~substrate ~executor ~tiles
    ~threads_per_rank: threads ~ranks m

let exactly_zero name d = check (Alcotest.float 0.) name 0. d

let differential_matrix name m () =
  List.iter
    (fun ranks ->
      let oracle =
        run_dist ~executor: interp ~ranks ~threads: 1 ~tiles: [] m
      in
      let seq =
        run_dist ~executor: compiled ~ranks ~threads: 1 ~tiles: [ 8; 8 ] m
      in
      exactly_zero
        (Printf.sprintf "%s ranks=%d: interp == serial" name ranks)
        oracle.Driver.Harness.max_diff_vs_serial;
      exactly_zero
        (Printf.sprintf "%s ranks=%d: compiled-seq == serial" name ranks)
        seq.Driver.Harness.max_diff_vs_serial;
      List.iter
        (fun threads ->
          let thr =
            run_dist ~executor: compiled ~ranks ~threads ~tiles: [ 8; 8 ] m
          in
          exactly_zero
            (Printf.sprintf "%s ranks=%d threads=%d: threaded == serial" name
               ranks threads)
            thr.Driver.Harness.max_diff_vs_serial;
          exactly_zero
            (Printf.sprintf
               "%s ranks=%d threads=%d: threaded == compiled-seq" name ranks
               threads)
            (Driver.Harness.max_result_diff seq thr);
          exactly_zero
            (Printf.sprintf "%s ranks=%d threads=%d: threaded == interp" name
               ranks threads)
            (Driver.Harness.max_result_diff oracle thr))
        [ 2; 4 ])
    [ 1; 2; 4 ]

let test_threaded_par_substrate () =
  (* Real rank domains AND worker domains together: 2 ranks x 2 threads. *)
  let m = Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 3 in
  let r =
    run_dist ~substrate: Driver.Harness.Par ~executor: compiled ~ranks: 2
      ~threads: 2 ~tiles: [ 8; 8 ] m
  in
  exactly_zero "par substrate threaded == serial"
    r.Driver.Harness.max_diff_vs_serial

let test_tiling_preserves_traffic () =
  let m = Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 3 in
  let base = run_dist ~executor: compiled ~ranks: 4 ~threads: 1 ~tiles: [] m in
  List.iter
    (fun tiles ->
      let r = run_dist ~executor: compiled ~ranks: 4 ~threads: 1 ~tiles m in
      let tag = String.concat "x" (List.map string_of_int tiles) in
      check int_c
        (Printf.sprintf "tile %s: messages unchanged" tag)
        base.Driver.Harness.messages r.Driver.Harness.messages;
      check int_c
        (Printf.sprintf "tile %s: bytes unchanged" tag)
        base.Driver.Harness.bytes r.Driver.Harness.bytes;
      exactly_zero
        (Printf.sprintf "tile %s: result unchanged" tag)
        (Driver.Harness.max_result_diff base r))
    [ [ 4; 4 ]; [ 8; 8 ]; [ 16; 16 ]; [ 5; 3 ] ]

let test_tiles_change_fingerprint () =
  let target tiles =
    Core.Pipeline.Distributed_cpu
      {
        ranks = 4;
        strategy = Core.Decomposition.Slice2d;
        mode = Core.Decomposition.Faces;
        tiles;
        overlap = true;
      }
  in
  check bool_c "tiled and untiled targets digest differently" false
    (Core.Pipeline.target_fingerprint (target [ 8; 8 ])
    = Core.Pipeline.target_fingerprint (target []));
  check bool_c "different tile sizes digest differently" false
    (Core.Pipeline.target_fingerprint (target [ 8; 8 ])
    = Core.Pipeline.target_fingerprint (target [ 16; 16 ]))

(* Property: random tile shapes, rank counts and thread counts are all
   bitwise-equal to the untiled sequential compiled run. *)
let threaded_tiled_prop =
  QCheck.Test.make ~count: 6
    ~name: "random tiles x ranks x threads match sequential bitwise"
    QCheck.(
      make
        ~print: (fun (tiles, ranks, threads) ->
          Printf.sprintf "tiles=[%s] ranks=%d threads=%d"
            (String.concat ";" (List.map string_of_int tiles))
            ranks threads)
        Gen.(
          let* tiles =
            oneofl [ [ 4; 4 ]; [ 8; 8 ]; [ 16; 16 ]; [ 5; 3 ]; [ 8 ] ]
          in
          let* ranks = oneofl [ 1; 2; 4 ] in
          let* threads = oneofl [ 2; 3; 4 ] in
          return (tiles, ranks, threads)))
    (fun (tiles, ranks, threads) ->
      let m = Programs.wave2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 2 in
      let seq = run_dist ~executor: compiled ~ranks ~threads: 1 ~tiles: [] m in
      let thr = run_dist ~executor: compiled ~ranks ~threads ~tiles m in
      seq.Driver.Harness.max_diff_vs_serial = 0.
      && thr.Driver.Harness.max_diff_vs_serial = 0.
      && Driver.Harness.max_result_diff seq thr = 0.)

let suite =
  [
    Alcotest.test_case "pool covers all indices" `Quick
      test_pool_covers_indices;
    Alcotest.test_case "pool of one runs inline" `Quick
      test_pool_size_one_runs_inline;
    Alcotest.test_case "pool propagates worker failure" `Quick
      test_pool_propagates_worker_failure;
    Alcotest.test_case "pool prefers caller failure" `Quick
      test_pool_caller_failure_wins;
    Alcotest.test_case "pool rejects run after shutdown" `Quick
      test_pool_rejects_run_after_shutdown;
    Alcotest.test_case "builder rejects negative num_threads" `Quick
      test_builder_rejects_negative_num_threads;
    Alcotest.test_case "verifier rejects bad omp attrs" `Quick
      test_verifier_rejects_bad_attrs;
    Alcotest.test_case "num_threads and tile round-trip" `Quick
      test_num_threads_and_tile_roundtrip;
    Alcotest.test_case "verifier rejects yielding parallel region" `Quick
      test_verifier_rejects_yielding_parallel_region;
    Alcotest.test_case "interp rejects dropped yields" `Quick
      test_interp_rejects_dropped_yields;
    Alcotest.test_case "worker domain cannot touch the mailbox" `Quick
      test_worker_mailbox_raises;
    Alcotest.test_case "heat2d differential matrix" `Slow
      (differential_matrix "heat2d"
         (Programs.heat2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 3));
    Alcotest.test_case "wave2d differential matrix" `Slow
      (differential_matrix "wave2d"
         (Programs.wave2d_timeloop_module ~nx: 16 ~ny: 16 ~steps: 3));
    Alcotest.test_case "threaded run on the par substrate" `Quick
      test_threaded_par_substrate;
    Alcotest.test_case "tiling preserves traffic counters" `Quick
      test_tiling_preserves_traffic;
    Alcotest.test_case "tiles change the target fingerprint" `Quick
      test_tiles_change_fingerprint;
    QCheck_alcotest.to_alcotest threaded_tiled_prop;
  ]

(* Frontend tests.

   Devito: Fornberg weights against textbook values, symbolic derivative
   expansion, solve, and full operator compilation checked against manual
   timestepping.

   PSyclone: stencil recognition (region/computation counts, rejection of
   non-stencil code), and compiled kernels checked against the independent
   Fortran reference interpreter. *)

open Ir

let check = Alcotest.check
let float_c eps = Alcotest.float eps
let int_c = Alcotest.int

(* --- Fornberg weights --- *)

let test_fornberg_second_order () =
  let w = Devito.Fornberg.central ~deriv: 2 ~order: 2 ~h: 1. in
  check (Alcotest.list (Alcotest.pair int_c (float_c 1e-12)))
    "d2 order 2"
    [ (-1, 1.); (0, -2.); (1, 1.) ]
    w

let test_fornberg_fourth_order () =
  let w = Devito.Fornberg.central ~deriv: 2 ~order: 4 ~h: 1. in
  let expect =
    [ (-2, -1. /. 12.); (-1, 4. /. 3.); (0, -5. /. 2.); (1, 4. /. 3.);
      (2, -1. /. 12.) ]
  in
  List.iter2
    (fun (o, w) (oe, we) ->
      check int_c "offset" oe o;
      check (float_c 1e-9) "weight" we w)
    w expect

let test_fornberg_first_derivative () =
  let w = Devito.Fornberg.central ~deriv: 1 ~order: 2 ~h: 2. in
  (* (f(x+h) - f(x-h)) / 2h with h = 2. *)
  check (Alcotest.list (Alcotest.pair int_c (float_c 1e-12)))
    "d1 order 2"
    [ (-1, -0.25); (1, 0.25) ]
    w

let test_fornberg_scaling () =
  let w = Devito.Fornberg.central ~deriv: 2 ~order: 2 ~h: 0.5 in
  (* 1/h² = 4 *)
  check (float_c 1e-12) "center" (-8.) (List.assoc 0 w)

let test_fornberg_exactness () =
  (* The order-p weights differentiate polynomials of degree <= p+1
     exactly: apply d2 weights to f(x) = x^3 + 2x^2 at x=0 -> 4. *)
  let w = Devito.Fornberg.central ~deriv: 2 ~order: 4 ~h: 1. in
  let f x = (x ** 3.) +. (2. *. (x ** 2.)) in
  let approx =
    List.fold_left
      (fun acc (o, c) -> acc +. (c *. f (float_of_int o)))
      0. w
  in
  check (float_c 1e-9) "d2(x^3+2x^2)(0)" 4. approx

(* --- symbolic layer --- *)

let test_laplace_halo () =
  let g = Devito.Symbolic.grid ~dt: 0.1 [ 16; 16 ] in
  let u = Devito.Symbolic.function_ ~space_order: 4 "u" g in
  let lap = Devito.Symbolic.laplace u in
  let halo = Devito.Symbolic.halo_of_expr ~rank: 2 lap in
  check (Alcotest.pair int_c int_c) "dim0" (-2, 2) halo.(0);
  check (Alcotest.pair int_c int_c) "dim1" (-2, 2) halo.(1)

let test_solve_heat_form () =
  let g = Devito.Symbolic.grid ~dt: 0.1 [ 8 ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  let u', update = Devito.Symbolic.solve eqn in
  check Alcotest.string "solves for u" "u" u'.Devito.Symbolic.name;
  (* The update reads only the current step. *)
  List.iter
    (fun (_, t) -> check int_c "time shift" 0 t)
    (Devito.Symbolic.distinct_reads update)

let test_solve_wave_reads_backward () =
  let g = Devito.Symbolic.grid ~dt: 0.05 [ 8; 8 ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 ~time_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(f 2.25 *: laplace u)
  in
  let _, update = Devito.Symbolic.solve eqn in
  let shifts = List.map snd (Devito.Symbolic.distinct_reads update) in
  check Alcotest.bool "reads t-1" true (List.mem (-1) shifts)

(* --- Devito operator codegen vs manual timestepping --- *)

let test_heat1d_operator () =
  let n = 16 in
  let steps = 5 in
  let dt = 0.1 in
  let g = Devito.Symbolic.grid ~dt [ n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  let spec, m =
    Devito.Operator.operator ~name: "heat" ~timesteps: steps ~elt: Typesys.f64
      eqn
  in
  check int_c "two time buffers" 2 spec.Devito.Operator.time_depth;
  Verifier.verify ~checks: Core.Registry.checks m;
  (* Run through the interpreter. *)
  let init i = Float.exp (-.Float.abs (float_of_int (i - 8)) /. 4.) in
  let mk () = Programs.make_field_1d ~n init in
  let b0 = mk () and b1 = mk () in
  let results =
    Driver.Simulate.run_serial ~func: "heat" m
      [ Interp.Rtval.Rbuf b0; Interp.Rtval.Rbuf b1 ]
  in
  let latest =
    match results with
    | Interp.Rtval.Rbuf _ :: Interp.Rtval.Rbuf l :: _ -> l
    | _ -> Alcotest.fail "expected buffers"
  in
  (* Manual reference: u += dt * 0.5 * (u[i-1] - 2u[i] + u[i+1]). *)
  let cur = ref (Array.init (n + 2) (fun k -> init (k - 1))) in
  for _ = 1 to steps do
    let nxt = Array.copy !cur in
    for i = 1 to n do
      nxt.(i) <-
        !cur.(i)
        +. (dt *. 0.5 *. (!cur.(i - 1) -. (2. *. !cur.(i)) +. !cur.(i + 1)))
    done;
    cur := nxt
  done;
  for i = 0 to n - 1 do
    check (float_c 1e-9)
      (Printf.sprintf "u[%d]" i)
      !cur.(i + 1)
      (Interp.Rtval.as_float (Interp.Rtval.get latest [ i ]))
  done

let test_wave2d_operator () =
  let n = 12 in
  let steps = 4 in
  let dt = 0.05 in
  let c2 = 2.25 in
  let g = Devito.Symbolic.grid ~dt [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 ~time_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(f c2 *: laplace u)
  in
  let spec, m =
    Devito.Operator.operator ~name: "wave" ~timesteps: steps ~elt: Typesys.f64
      eqn
  in
  check int_c "three time buffers" 3 spec.Devito.Operator.time_depth;
  Verifier.verify ~checks: Core.Registry.checks m;
  let init i j = if i = 6 && j = 6 then 1. else 0. in
  let mk () = Programs.make_field_2d ~nx: n ~ny: n init in
  (* f32 fields in programs helper; wave needs f64 — build manually. *)
  ignore mk;
  let mkf () =
    let b =
      Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ n + 2; n + 2 ] Typesys.f64
    in
    for i = -1 to n do
      for j = -1 to n do
        Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
      done
    done;
    b
  in
  let bufs = [ mkf (); mkf (); mkf () ] in
  let results =
    Driver.Simulate.run_serial ~func: "wave" m
      (List.map (fun b -> Interp.Rtval.Rbuf b) bufs)
  in
  let latest =
    match List.rev results with
    | Interp.Rtval.Rbuf l :: _ -> l
    | _ -> Alcotest.fail "expected buffers"
  in
  (* Manual leapfrog reference. *)
  let sz = n + 2 in
  let idx i j = ((i + 1) * sz) + (j + 1) in
  let prev = ref (Array.init (sz * sz) (fun k -> init ((k / sz) - 1) ((k mod sz) - 1))) in
  let cur = ref (Array.copy !prev) in
  for _ = 1 to steps do
    let nxt = Array.copy !prev in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let lap =
          !cur.(idx (i - 1) j)
          +. !cur.(idx (i + 1) j)
          +. !cur.(idx i (j - 1))
          +. !cur.(idx i (j + 1))
          -. (4. *. !cur.(idx i j))
        in
        nxt.(idx i j) <-
          (2. *. !cur.(idx i j)) -. !prev.(idx i j) +. (dt *. dt *. c2 *. lap)
      done
    done;
    prev := !cur;
    cur := nxt
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check (float_c 1e-9)
        (Printf.sprintf "u[%d,%d]" i j)
        !cur.(idx i j)
        (Interp.Rtval.as_float (Interp.Rtval.get latest [ i; j ]))
    done
  done

(* --- PSyclone --- *)

let test_pw_recognition () =
  let k = Psyclone.Benchkernels.pw_advection ~shape: [ 8; 8; 8 ] in
  let psy = Psyclone.Psy_ir.of_kernel k in
  check int_c "one region" 1 (Psyclone.Psy_ir.count_regions psy);
  check int_c "three computations" 3 (Psyclone.Psy_ir.count_computations psy)

let test_traadv_recognition () =
  let k =
    Psyclone.Benchkernels.tracer_advection ~iterations: 2 ~shape: [ 6; 6; 6 ] ()
  in
  let psy = Psyclone.Psy_ir.of_kernel k in
  check int_c "18 regions" 18 (Psyclone.Psy_ir.count_regions psy);
  check int_c "24 computations" 24 (Psyclone.Psy_ir.count_computations psy)

let test_rejects_non_stencil () =
  (* A transposed write a(j,i) is not a stencil. *)
  let k =
    Psyclone.Fortran.kernel ~name: "bad"
      ~arrays:
        [ { Psyclone.Fortran.array_name = "a"; decl_bounds = [ (0, 7); (0, 7) ] } ]
      ~scalars: []
      [
        {
          Psyclone.Fortran.loop_vars = [ "i"; "j" ];
          ranges = [ (0, 7); (0, 7) ];
          assigns =
            [
              {
                Psyclone.Fortran.lhs =
                  ("a", [ Psyclone.Fortran.ix "j"; Psyclone.Fortran.ix "i" ]);
                rhs = Psyclone.Fortran.Num 1.;
              };
            ];
        };
      ]
  in
  ignore k;
  match Psyclone.Psy_ir.of_kernel k with
  | Psyclone.Psy_ir.Schedule [ Psyclone.Psy_ir.Unrecognized _ ] -> ()
  | _ -> Alcotest.fail "expected Unrecognized"

(* Compile a kernel, run it through the interpreter, and compare every
   array against the Fortran reference interpreter. *)
let compiled_matches_reference (k : Psyclone.Fortran.kernel) seed =
  let m = Psyclone.Codegen.compile ~elt: Typesys.f64 k in
  Verifier.verify ~checks: Core.Registry.checks m;
  (* Shared initialization by array index. *)
  let init name i =
    Float.sin (float_of_int (Hashtbl.hash name mod 13 + i + seed) *. 0.1)
  in
  (* Reference. *)
  let env = Psyclone.Reference.env_of_kernel k in
  List.iter
    (fun (d : Psyclone.Fortran.array_decl) ->
      let arr = Psyclone.Reference.array env d.Psyclone.Fortran.array_name in
      Array.iteri
        (fun i _ ->
          arr.Psyclone.Reference.data.(i) <-
            init d.Psyclone.Fortran.array_name i)
        arr.Psyclone.Reference.data)
    k.Psyclone.Fortran.arrays;
  Psyclone.Reference.run k env;
  (* Compiled. *)
  let bufs =
    List.map
      (fun (d : Psyclone.Fortran.array_decl) ->
        let bounds = Psyclone.Codegen.bounds_of_decl d in
        let shape = List.map Typesys.bound_size bounds in
        let lo = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) bounds in
        let b = Interp.Rtval.alloc_buffer ~lo shape Typesys.f64 in
        Interp.Rtval.fill b (fun i -> init d.Psyclone.Fortran.array_name i);
        b)
      k.Psyclone.Fortran.arrays
  in
  ignore
    (Driver.Simulate.run_serial ~func: k.Psyclone.Fortran.kernel_name m
       (List.map (fun b -> Interp.Rtval.Rbuf b) bufs));
  (* Compare all arrays element-wise. *)
  List.iter2
    (fun (d : Psyclone.Fortran.array_decl) buf ->
      let arr = Psyclone.Reference.array env d.Psyclone.Fortran.array_name in
      let compiled = Interp.Rtval.float_contents buf in
      Array.iteri
        (fun i expected ->
          if Float.abs (expected -. compiled.(i)) > 1e-9 then
            Alcotest.failf "%s[%d]: reference %g, compiled %g"
              d.Psyclone.Fortran.array_name i expected compiled.(i))
        arr.Psyclone.Reference.data)
    k.Psyclone.Fortran.arrays bufs

let test_pw_matches_reference () =
  compiled_matches_reference
    (Psyclone.Benchkernels.pw_advection ~shape: [ 6; 5; 4 ])
    0

let test_traadv_matches_reference () =
  compiled_matches_reference
    (Psyclone.Benchkernels.tracer_advection ~iterations: 3 ~shape: [ 5; 4; 4 ] ())
    7

let suite =
  [
    Alcotest.test_case "fornberg order-2 weights" `Quick
      test_fornberg_second_order;
    Alcotest.test_case "fornberg order-4 weights" `Quick
      test_fornberg_fourth_order;
    Alcotest.test_case "fornberg first derivative" `Quick
      test_fornberg_first_derivative;
    Alcotest.test_case "fornberg h scaling" `Quick test_fornberg_scaling;
    Alcotest.test_case "fornberg polynomial exactness" `Quick
      test_fornberg_exactness;
    Alcotest.test_case "laplace halo" `Quick test_laplace_halo;
    Alcotest.test_case "solve heat form" `Quick test_solve_heat_form;
    Alcotest.test_case "solve wave reads backward" `Quick
      test_solve_wave_reads_backward;
    Alcotest.test_case "heat1d operator vs manual" `Quick test_heat1d_operator;
    Alcotest.test_case "wave2d operator vs manual" `Quick test_wave2d_operator;
    Alcotest.test_case "pw recognition counts" `Quick test_pw_recognition;
    Alcotest.test_case "traadv recognition counts" `Quick
      test_traadv_recognition;
    Alcotest.test_case "rejects non-stencil Fortran" `Quick
      test_rejects_non_stencil;
    Alcotest.test_case "pw compiled == fortran reference" `Quick
      test_pw_matches_reference;
    Alcotest.test_case "traadv compiled == fortran reference" `Quick
      test_traadv_matches_reference;
  ]

(* Lowering validation: executing the program before and after each lowering
   must give identical results.  This covers convert-stencil-to-loops in all
   three styles, the canonicalization/CSE/DCE/LICM passes, and round-trips
   of the lowered IR through the printer/parser. *)

open Ir
open Core

let float_c = Alcotest.float 1e-6

let field_copy (b : Interp.Rtval.buffer) : Interp.Rtval.buffer =
  {
    b with
    Interp.Rtval.data =
      (match b.Interp.Rtval.data with
      | Interp.Rtval.F a -> Interp.Rtval.F (Array.copy a)
      | Interp.Rtval.I a -> Interp.Rtval.I (Array.copy a));
  }

(* Rebased view for lowered (memref-typed) functions: same storage, logical
   origin moved to zero. *)
let rebase (b : Interp.Rtval.buffer) : Interp.Rtval.buffer =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

let run_stencil_level m func bufs =
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng func
       (List.map (fun b -> Interp.Rtval.Rbuf b) bufs))

let run_lowered m func bufs =
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng func
       (List.map (fun b -> Interp.Rtval.Rbuf (rebase b)) bufs))

let check_equal name (a : Interp.Rtval.buffer) (b : Interp.Rtval.buffer) =
  Alcotest.check float_c name 0. (Driver.Simulate.max_abs_diff a b)

(* Compare stencil-level execution against a lowered execution of the same
   program for each loop style. *)
let compare_styles ~make_module ~make_fields ~func () =
  let m = make_module () in
  let ref_fields = make_fields () in
  run_stencil_level m func ref_fields;
  List.iter
    (fun (style_name, style) ->
      let lowered = Stencil_to_loops.run ~style m in
      Verifier.verify ~checks: Registry.checks lowered;
      let fields = make_fields () in
      run_lowered lowered func fields;
      List.iteri
        (fun i (f, rf) ->
          check_equal (Printf.sprintf "%s field %d" style_name i) f rf)
        (List.combine fields ref_fields))
    [
      ("sequential", Stencil_to_loops.Sequential);
      ("parallel", Stencil_to_loops.Parallel_flat);
      ("tiled", Stencil_to_loops.Tiled_omp [ 4; 4; 4 ]);
      ( "gpu",
        Stencil_to_loops.Gpu_launch { synchronous = true; managed = false } );
      ( "gpu-managed",
        Stencil_to_loops.Gpu_launch { synchronous = false; managed = true } );
    ]

let test_lower_jacobi1d =
  compare_styles
    ~make_module: (fun () -> Programs.jacobi1d_module ~n: 12)
    ~make_fields: (fun () ->
      [
        Programs.make_field_1d ~n: 12 (fun i -> Float.sin (float_of_int i));
        Programs.make_field_1d ~n: 12 (fun _ -> 0.);
      ])
    ~func: "step"

let test_lower_heat2d =
  compare_styles
    ~make_module: (fun () -> Programs.heat2d_module ~nx: 10 ~ny: 6)
    ~make_fields: (fun () ->
      [
        Programs.make_field_2d ~nx: 10 ~ny: 6 (fun i j ->
            float_of_int ((i * 7) + j));
        Programs.make_field_2d ~nx: 10 ~ny: 6 (fun _ _ -> 0.);
      ])
    ~func: "step"

let test_lower_heat2d_timeloop =
  compare_styles
    ~make_module: (fun () ->
      Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 5)
    ~make_fields: (fun () ->
      [
        Programs.make_field_2d ~nx: 8 ~ny: 8 (fun i j ->
            if i = 3 && j = 4 then 100. else 0.);
        Programs.make_field_2d ~nx: 8 ~ny: 8 (fun _ _ -> 0.);
      ])
    ~func: "run"

(* The lowered module must be free of stencil ops. *)
let test_lowering_complete () =
  let m = Programs.heat2d_timeloop_module ~nx: 4 ~ny: 4 ~steps: 2 in
  let lowered = Stencil_to_loops.run ~style: Stencil_to_loops.Sequential m in
  Alcotest.check Alcotest.bool "no stencil ops left" false
    (Op.exists
       (fun o ->
         String.length o.Op.name > 8 && String.sub o.Op.name 0 8 = "stencil.")
       lowered)

(* Store fusion: single-consumer applies write straight into their target
   field without an intermediate allocation. *)
let test_store_fusion () =
  let m = Programs.jacobi1d_module ~n: 8 in
  let lowered = Stencil_to_loops.run ~style: Stencil_to_loops.Sequential m in
  Alcotest.check Alcotest.int "no temp alloc" 0
    (Transforms.Statistics.count lowered "memref.alloc")

(* Lowered IR still round-trips through the textual format. *)
let test_lowered_roundtrip () =
  let m = Programs.heat2d_timeloop_module ~nx: 4 ~ny: 4 ~steps: 2 in
  let lowered =
    Stencil_to_loops.run ~style: (Stencil_to_loops.Tiled_omp [ 4; 4 ]) m
  in
  let s = Printer.module_to_string lowered in
  Alcotest.check Alcotest.string "roundtrip" s
    (Printer.module_to_string (Parser.parse_string s))

(* Optimization passes preserve semantics on the lowered heat program. *)
let test_passes_preserve_semantics () =
  let m = Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 3 in
  let lowered = Stencil_to_loops.run ~style: Stencil_to_loops.Sequential m in
  let optimized =
    Pass.run_pipeline
      (Pass.pipeline "opt"
         [
           Transforms.Canonicalize.pass;
           Transforms.Cse.pass;
           Transforms.Licm.pass;
           Transforms.Dce.pass;
         ])
      lowered
  in
  Verifier.verify ~checks: Registry.checks optimized;
  let mk () =
    [
      Programs.make_field_2d ~nx: 8 ~ny: 8 (fun i j ->
          Float.cos (float_of_int (i + (2 * j))));
      Programs.make_field_2d ~nx: 8 ~ny: 8 (fun _ _ -> 0.);
    ]
  in
  let f1 = mk () and f2 = mk () in
  run_lowered lowered "run" f1;
  run_lowered optimized "run" f2;
  List.iter2 (fun a b -> check_equal "optimized equals baseline" a b) f1 f2;
  (* And the optimizer should actually shrink the op count. *)
  Alcotest.check Alcotest.bool "optimizer reduces ops" true
    (Op.count_ops optimized <= Op.count_ops lowered)

(* CSE dedupes identical constants. *)
let test_cse_basic () =
  let src =
    {|
    %1 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %2 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %3 = "arith.addi"(%1, %2) : (i64, i64) -> (i64)
    %4 = "test.sink"(%3) : (i64) -> (i64)
    |}
  in
  let m = Transforms.Cse.run (Parser.parse_string src) in
  Alcotest.check Alcotest.int "one constant"
    1
    (Transforms.Statistics.count m "arith.constant")

(* DCE removes unused pure chains but keeps side effects. *)
let test_dce_basic () =
  let src =
    {|
    %1 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %2 = "arith.addi"(%1, %1) : (i64, i64) -> (i64)
    "test.effect"() : () -> ()
    |}
  in
  let m = Transforms.Dce.run (Parser.parse_string src) in
  Alcotest.check Alcotest.int "dead arith gone" 1
    (Op.count_ops m - 1 (* module op itself *))

(* Constant folding computes through chains. *)
let test_folding () =
  let src =
    {|
    %1 = "arith.constant"() {value = 6 : i64} : () -> (i64)
    %2 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %3 = "arith.muli"(%1, %2) : (i64, i64) -> (i64)
    %4 = "test.sink"(%3) : (i64) -> (i64)
    |}
  in
  let m = Transforms.Canonicalize.run (Parser.parse_string src) in
  let found = ref None in
  Op.walk
    (fun o ->
      if o.Op.name = "arith.constant" then
        match Op.attr o "value" with
        | Some (Typesys.Int_attr (v, _)) -> found := Some v
        | _ -> ())
    m;
  (match !found with
  | Some 42 -> ()
  | Some v -> Alcotest.failf "folded to %d, expected 42" v
  | None -> Alcotest.fail "no constant left");
  Alcotest.check Alcotest.int "mul folded away" 0
    (Transforms.Statistics.count m "arith.muli")

(* x * 1.0 simplifies away. *)
let test_identities () =
  let src =
    {|
    %1 = "test.source"() : () -> (f64)
    %2 = "arith.constant"() {value = 1.0 : f64} : () -> (f64)
    %3 = "arith.mulf"(%1, %2) : (f64, f64) -> (f64)
    %4 = "test.sink"(%3) : (f64) -> (f64)
    |}
  in
  let m = Transforms.Canonicalize.run (Parser.parse_string src) in
  Alcotest.check Alcotest.int "mulf gone" 0
    (Transforms.Statistics.count m "arith.mulf")

(* LICM hoists invariant computations out of loops. *)
let test_licm () =
  let m =
    Op.module_op
      [
        Dialects.Func.define "main" ~arg_tys: [] ~res_tys: [] (fun bld _ ->
            let lo = Dialects.Arith.const_index bld 0 in
            let hi = Dialects.Arith.const_index bld 10 in
            let st = Dialects.Arith.const_index bld 1 in
            ignore
              (Dialects.Scf.for_op bld ~lo ~hi ~step: st (fun body _iv _ ->
                   (* invariant: 3.0 *. 4.0; variant: uses iv *)
                   let a = Dialects.Arith.const_float body 3. in
                   let b = Dialects.Arith.const_float body 4. in
                   let c = Dialects.Arith.mul_f body a b in
                   Builder.emit0 body "test.effect" ~operands: [ c ];
                   Dialects.Scf.yield_op body []));
            Dialects.Func.return_op bld [])
      ]
  in
  let hoisted = Transforms.Licm.run m in
  (* The loop body should now contain only the effectful op + yield. *)
  let loop_body_size = ref 0 in
  Op.walk
    (fun o ->
      if o.Op.name = "scf.for" then
        loop_body_size :=
          List.length (Op.region_ops (List.hd o.Op.regions)))
    hoisted;
  Alcotest.check Alcotest.int "loop body shrank" 2 !loop_body_size

(* Property: canonicalize+cse+dce preserve the interpreted result of random
   arithmetic expression modules. *)
let gen_arith_module =
  QCheck.Gen.(
    let* n = int_range 1 15 in
    let bld = Builder.create () in
    let seed = Dialects.Arith.const_float bld 1.5 in
    let rec build k defined =
      if k = 0 then return defined
      else
        let* pick = int_range 0 2 in
        let* a = oneofl defined in
        let* b = oneofl defined in
        let v =
          match pick with
          | 0 -> Dialects.Arith.add_f bld a b
          | 1 -> Dialects.Arith.mul_f bld a b
          | _ -> Dialects.Arith.sub_f bld a b
        in
        build (k - 1) (v :: defined)
    in
    let* defined = build n [ seed ] in
    Dialects.Func.return_op bld [ List.hd defined ];
    let f =
      Op.make "func.func"
        ~attrs:
          [
            ("sym_name", Typesys.String_attr "main");
            ( "function_type",
              Typesys.Type_attr (Typesys.Fn ([], [ Typesys.f64 ])) );
          ]
        ~regions: [ Op.region (Builder.ops bld) ]
    in
    return (Op.module_op [ f ]))

let opt_preserves_prop =
  QCheck.Test.make ~count: 100
    ~name: "canonicalize/cse/dce preserve interpreted semantics"
    (QCheck.make gen_arith_module ~print: Printer.module_to_string)
    (fun m ->
      let run m =
        let eng = Interp.Engine.create m in
        match Interp.Engine.run eng "main" [] with
        | [ Interp.Rtval.Rf v ] -> v
        | _ -> nan
      in
      let before = run m in
      let after =
        run
          (Transforms.Dce.run
             (Transforms.Cse.run (Transforms.Canonicalize.run m)))
      in
      Float.abs (before -. after) <= 1e-9 *. Float.max 1. (Float.abs before))

let suite =
  [
    Alcotest.test_case "lower jacobi1d (3 styles)" `Quick test_lower_jacobi1d;
    Alcotest.test_case "lower heat2d (3 styles)" `Quick test_lower_heat2d;
    Alcotest.test_case "lower heat2d timeloop (3 styles)" `Quick
      test_lower_heat2d_timeloop;
    Alcotest.test_case "lowering removes stencil ops" `Quick
      test_lowering_complete;
    Alcotest.test_case "store fusion avoids temp allocs" `Quick
      test_store_fusion;
    Alcotest.test_case "lowered IR roundtrips" `Quick test_lowered_roundtrip;
    Alcotest.test_case "opt passes preserve semantics" `Quick
      test_passes_preserve_semantics;
    Alcotest.test_case "cse dedupes" `Quick test_cse_basic;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_basic;
    Alcotest.test_case "constant folding" `Quick test_folding;
    Alcotest.test_case "algebraic identities" `Quick test_identities;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm;
    QCheck_alcotest.to_alcotest opt_preserves_prop;
  ]

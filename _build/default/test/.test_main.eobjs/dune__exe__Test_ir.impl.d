test/test_ir.ml: Alcotest Builder Core Dialects Ir List Op Parser Printer Printf Programs QCheck QCheck_alcotest Typesys Value Verifier

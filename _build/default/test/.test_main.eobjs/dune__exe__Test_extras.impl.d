test/test_extras.ml: Alcotest Array Builder Core Devito Dialects Driver Float Interp Ir Lexer List Mpi_sim Op Parser Printer Printf Programs Psyclone Typesys Value Verifier

test/test_hls.ml: Alcotest Core Dialects Driver Float Hls Interp Ir List Op Programs Registry Stencil Stencil_to_hls Transforms Typesys Verifier

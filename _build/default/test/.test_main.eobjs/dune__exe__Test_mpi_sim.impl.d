test/test_mpi_sim.ml: Alcotest Array List Mpi_sim

test/test_frontends.ml: Alcotest Array Core Devito Driver Float Hashtbl Interp Ir List Printf Programs Psyclone Typesys Verifier

test/test_shared_stack.ml: Alcotest Buffer Core Devito Driver Float Interp Ir List Mpi_sim Op Option Parser Printf Psyclone String Typesys

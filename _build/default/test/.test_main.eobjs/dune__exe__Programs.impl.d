test/programs.ml: Arith Core Dialects Func Interp Ir List Op Scf Stencil Typesys

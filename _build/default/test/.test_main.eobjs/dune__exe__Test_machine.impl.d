test/test_machine.ml: Alcotest Core Devito Ir Machine Psyclone

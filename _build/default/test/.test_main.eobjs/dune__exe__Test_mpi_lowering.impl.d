test/test_mpi_lowering.ml: Alcotest Array Builder Core Decomposition Dialects Dmp Dmp_to_mpi Driver Interp Ir List Mpi Mpi_sim Mpi_to_func Op Registry Transforms Typesys Verifier

test/test_interp.ml: Alcotest Arith Array Dialects Func Interp Ir List Memref Op Printf Programs Scf Typesys

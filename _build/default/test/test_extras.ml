(* Additional coverage: lexer/parser edge cases, shape inference, the mpi
   dialect's collectives driven from IR, Devito coefficient fields and
   first derivatives, and PSyclone recognizer corner cases. *)

open Ir

let check = Alcotest.check
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-9
let bool_c = Alcotest.bool

(* --- lexer / parser edges --- *)

let test_comments_and_whitespace () =
  let src =
    "// leading comment\n\
     %1 = \"arith.constant\"() {value = 1 : i64} : () -> (i64)\n\
     // trailing comment\n"
  in
  check int_c "one op" 1 (List.length (Op.module_ops (Parser.parse_string src)))

let test_string_escapes () =
  let op =
    Op.make "test.op"
      ~attrs: [ ("s", Typesys.String_attr "a\"b\\c\nd\te") ]
  in
  let s = Printer.module_to_string (Op.module_op [ op ]) in
  let m = Parser.parse_string s in
  match Op.module_ops m with
  | [ op' ] ->
      check Alcotest.string "escaped string survives" "a\"b\\c\nd\te"
        (Op.string_attr_exn op' "s")
  | _ -> Alcotest.fail "expected one op"

let test_float_forms () =
  List.iter
    (fun v ->
      let op =
        Op.make "test.op" ~attrs: [ ("x", Typesys.Float_attr (v, Typesys.f64)) ]
      in
      let s = Printer.module_to_string (Op.module_op [ op ]) in
      match Op.module_ops (Parser.parse_string s) with
      | [ op' ] -> (
          match Op.attr op' "x" with
          | Some (Typesys.Float_attr (v', _)) ->
              check float_c (Printf.sprintf "%.17g" v) v v'
          | _ -> Alcotest.fail "missing float attr")
      | _ -> Alcotest.fail "expected one op")
    [ 0.; 1.; -1.5; 3.14159265358979; 1e-30; 2.5e22; -7.25e-3; 1e300 ]

let test_deep_nesting_roundtrip () =
  (* 6 levels of nested loops. *)
  let bld = Builder.create () in
  let rec nest b d =
    if d = 0 then begin
      let c = Dialects.Arith.const_float b 1. in
      Builder.emit0 b "test.sink" ~operands: [ c ]
    end
    else begin
      let lo = Dialects.Arith.const_index b 0 in
      let hi = Dialects.Arith.const_index b 2 in
      let st = Dialects.Arith.const_index b 1 in
      ignore
        (Dialects.Scf.for_op b ~lo ~hi ~step: st (fun b' _ _ ->
             nest b' (d - 1);
             Dialects.Scf.yield_op b' []))
    end
  in
  nest bld 6;
  let m = Op.module_op (Builder.ops bld) in
  let s = Printer.module_to_string m in
  check Alcotest.string "deep roundtrip" s
    (Printer.module_to_string (Parser.parse_string s))

let test_parse_error_messages () =
  let expect_fail src =
    try
      ignore (Parser.parse_string src);
      Alcotest.failf "expected parse error for %S" src
    with Parser.Parse_error _ | Lexer.Lex_error _ -> ()
  in
  expect_fail "%1 = ";
  expect_fail "\"op\"(";
  expect_fail "%1 = \"op\"() : () -> (i32) extra";
  expect_fail "\"op\"() : () -> (!unknown.type)";
  expect_fail "\"op\"() {k = } : () -> ()"

(* --- shape inference --- *)

let test_shape_inference_accepts () =
  ignore (Core.Shape_inference.run (Programs.heat2d_module ~nx: 8 ~ny: 8));
  ignore
    (Core.Shape_inference.run
       (Programs.jacobi1d_timeloop_module ~n: 8 ~steps: 2))

let test_shape_inference_rejects_missing_halo () =
  (* A field without ghost margin cannot feed a 3-point stencil over its
     full extent. *)
  let n = 8 in
  let fty = Core.Stencil.field_ty [ Typesys.bound 0 n ] Typesys.f64 in
  let f =
    Dialects.Func.define "bad" ~arg_tys: [ fty; fty ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ a; out ] ->
            let t = Core.Stencil.load_op bld a in
            let r =
              Core.Stencil.apply_op bld ~inputs: [ t ]
                ~out_bounds: [ Typesys.bound 0 n ] ~elt: Typesys.f64
                ~n_results: 1 Programs.jacobi1d_step_body
            in
            Core.Stencil.store_op bld (List.hd r) out ~lb: [ 0 ] ~ub: [ n ];
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  (try
     ignore (Core.Shape_inference.run (Op.module_op [ f ]));
     Alcotest.fail "expected shape error"
   with Core.Shape_inference.Shape_error _ -> ())

let test_shape_inference_required_bounds () =
  let m = Programs.heat2d_module ~nx: 8 ~ny: 8 in
  let required = ref [||] in
  Op.walk
    (fun o ->
      if o.Op.name = Core.Stencil.apply then
        required := Core.Shape_inference.required_input_bounds o)
    m;
  match !required.(0) with
  | [ b0; b1 ] ->
      check int_c "lo expanded" (-1) b0.Typesys.lo;
      check int_c "hi expanded" 9 b0.Typesys.hi;
      check int_c "dim1 lo" (-1) b1.Typesys.lo
  | _ -> Alcotest.fail "expected 2D bounds"

(* --- mpi dialect collectives from IR --- *)

(* A program computing the global sum of each rank's local value via
   mpi.allreduce, exercising collective ops through the full
   interpret-under-mpi_sim path. *)
let test_allreduce_from_ir () =
  let mref = Typesys.Memref ([ 1 ], Typesys.f64) in
  let f =
    Dialects.Func.define "global_sum" ~arg_tys: [ mref; mref ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ local; result ] ->
            Core.Mpi.allreduce_op bld ~sendbuf: local ~recvbuf: result
              Core.Mpi.Sum;
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  let m = Op.module_op [ f ] in
  let sums = Array.make 4 0. in
  ignore
    (Driver.Simulate.run_spmd ~ranks: 4 ~func: "global_sum"
       ~make_args: (fun ctx ->
         let me = Mpi_sim.rank ctx in
         let local = Interp.Rtval.alloc_buffer [ 1 ] Typesys.f64 in
         Interp.Rtval.set local [ 0 ] (Interp.Rtval.Rf (float_of_int (me + 1)));
         let result = Interp.Rtval.alloc_buffer [ 1 ] Typesys.f64 in
         [ Interp.Rtval.Rbuf local; Interp.Rtval.Rbuf result ])
       ~collect: (fun ctx args _ ->
         match args with
         | [ _; Interp.Rtval.Rbuf result ] ->
             sums.(Mpi_sim.rank ctx) <-
               Interp.Rtval.as_float (Interp.Rtval.get result [ 0 ])
         | _ -> Alcotest.fail "bad args")
       m);
  Array.iter (fun s -> check float_c "1+2+3+4" 10. s) sums

(* The same program after the func lowering (MPI_Allreduce + magic op
   constant). *)
let test_allreduce_lowered () =
  let mref = Typesys.Memref ([ 1 ], Typesys.f64) in
  let f =
    Dialects.Func.define "global_sum" ~arg_tys: [ mref; mref ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ local; result ] ->
            Core.Mpi.allreduce_op bld ~sendbuf: local ~recvbuf: result
              Core.Mpi.Sum;
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  let lowered = Core.Mpi_to_func.run (Op.module_op [ f ]) in
  check bool_c "calls MPI_Allreduce" true
    (Op.exists
       (fun o ->
         o.Op.name = "func.call"
         && Op.attr o "callee" = Some (Typesys.Symbol_attr "MPI_Allreduce"))
       lowered);
  let sums = Array.make 3 0. in
  ignore
    (Driver.Simulate.run_spmd ~ranks: 3 ~func: "global_sum"
       ~make_args: (fun ctx ->
         let me = Mpi_sim.rank ctx in
         let local = Interp.Rtval.alloc_buffer [ 1 ] Typesys.f64 in
         Interp.Rtval.set local [ 0 ] (Interp.Rtval.Rf (float_of_int me));
         [ Interp.Rtval.Rbuf local;
           Interp.Rtval.Rbuf (Interp.Rtval.alloc_buffer [ 1 ] Typesys.f64) ])
       ~collect: (fun ctx args _ ->
         match args with
         | [ _; Interp.Rtval.Rbuf result ] ->
             sums.(Mpi_sim.rank ctx) <-
               Interp.Rtval.as_float (Interp.Rtval.get result [ 0 ])
         | _ -> Alcotest.fail "bad args")
       lowered);
  Array.iter (fun s -> check float_c "0+1+2" 3. s) sums

(* --- Devito extras --- *)

(* A coefficient field (velocity model): u.dt2 = m * laplace(u). *)
let test_coefficient_field () =
  let n = 10 in
  let g = Devito.Symbolic.grid ~dt: 0.05 [ n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 ~time_order: 2 "u" g in
  let m_field = Devito.Symbolic.function_ ~space_order: 2 "m" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(here m_field *: laplace u)
  in
  let spec, modl =
    Devito.Operator.operator ~name: "varwave" ~timesteps: 3 ~elt: Typesys.f64
      eqn
  in
  check int_c "one coefficient" 1
    (List.length spec.Devito.Operator.coefficients);
  Verifier.verify ~checks: Core.Registry.checks modl;
  (* Execute: 3 u-buffers + the model field. *)
  let init_u i = if i = 5 then 1. else 0. in
  let init_m i = 1.5 +. (0.1 *. float_of_int i) in
  let mkf init =
    let b = Interp.Rtval.alloc_buffer ~lo: [ -1 ] [ n + 2 ] Typesys.f64 in
    for i = -1 to n do
      Interp.Rtval.set b [ i ] (Interp.Rtval.Rf (init i))
    done;
    b
  in
  let bufs = [ mkf init_u; mkf init_u; mkf init_u; mkf init_m ] in
  let results =
    Driver.Simulate.run_serial ~func: "varwave" modl
      (List.map (fun b -> Interp.Rtval.Rbuf b) bufs)
  in
  (* Manual leapfrog with variable coefficient. *)
  let dt = 0.05 in
  let prev = ref (Array.init (n + 2) (fun k -> init_u (k - 1))) in
  let cur = ref (Array.copy !prev) in
  for _ = 1 to 3 do
    let nxt = Array.copy !prev in
    for i = 1 to n do
      let lap = !cur.(i - 1) -. (2. *. !cur.(i)) +. !cur.(i + 1) in
      nxt.(i) <-
        (2. *. !cur.(i)) -. !prev.(i)
        +. (dt *. dt *. init_m (i - 1) *. lap)
    done;
    prev := !cur;
    cur := nxt
  done;
  (match List.rev results with
  | _coeff :: Interp.Rtval.Rbuf latest :: _ ->
      for i = 0 to n - 1 do
        check float_c
          (Printf.sprintf "u[%d]" i)
          !cur.(i + 1)
          (Interp.Rtval.as_float (Interp.Rtval.get latest [ i ]))
      done
  | _ -> Alcotest.fail "expected buffers")

let test_first_derivative_operator () =
  (* Advection: u.dt = -c * d1(u): first-order upwind-ish with central
     difference; check against manual stepping. *)
  let n = 12 in
  let g = Devito.Symbolic.grid ~dt: 0.1 [ n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f (-0.5) *: d1 u 0)
  in
  let _, m = Devito.Operator.operator ~name: "adv" ~timesteps: 2 ~elt: Typesys.f64 eqn in
  let init i = Float.sin (0.5 *. float_of_int i) in
  let mkf () =
    let b = Interp.Rtval.alloc_buffer ~lo: [ -1 ] [ n + 2 ] Typesys.f64 in
    for i = -1 to n do
      Interp.Rtval.set b [ i ] (Interp.Rtval.Rf (init i))
    done;
    b
  in
  let results =
    Driver.Simulate.run_serial ~func: "adv" m
      [ Interp.Rtval.Rbuf (mkf ()); Interp.Rtval.Rbuf (mkf ()) ]
  in
  let cur = ref (Array.init (n + 2) (fun k -> init (k - 1))) in
  for _ = 1 to 2 do
    let nxt = Array.copy !cur in
    for i = 1 to n do
      nxt.(i) <-
        !cur.(i) +. (0.1 *. -0.5 *. ((!cur.(i + 1) -. !cur.(i - 1)) /. 2.))
    done;
    cur := nxt
  done;
  (match List.rev results with
  | Interp.Rtval.Rbuf latest :: _ ->
      for i = 0 to n - 1 do
        check float_c
          (Printf.sprintf "u[%d]" i)
          !cur.(i + 1)
          (Interp.Rtval.as_float (Interp.Rtval.get latest [ i ]))
      done
  | _ -> Alcotest.fail "expected buffers")

(* --- PSyclone recognizer corners --- *)

let simple_decl name = { Psyclone.Fortran.array_name = name; decl_bounds = [ (0, 7); (0, 7) ] }

let nest_with assigns =
  Psyclone.Fortran.kernel ~name: "k"
    ~arrays: [ simple_decl "a"; simple_decl "b" ]
    ~scalars: []
    [ { Psyclone.Fortran.loop_vars = [ "i"; "j" ]; ranges = [ (0, 7); (0, 7) ]; assigns } ]

let test_reject_loop_carried () =
  (* a(i,j) = a(i-1,j): reading the written array at non-zero offset in the
     same nest is rejected. *)
  let k =
    nest_with
      [
        {
          Psyclone.Fortran.lhs = ("a", Psyclone.Fortran.[ ix "i"; ix "j" ]);
          rhs =
            Psyclone.Fortran.Ref
              ("a", Psyclone.Fortran.[ ix ~shift: (-1) "i"; ix "j" ]);
        };
      ]
  in
  match Psyclone.Psy_ir.of_kernel k with
  | Psyclone.Psy_ir.Schedule [ Psyclone.Psy_ir.Unrecognized _ ] -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_accept_forwarding () =
  (* b written then read at offset zero in the same nest: forwarded. *)
  let k =
    nest_with
      Psyclone.Fortran.
        [
          { lhs = ("b", [ ix "i"; ix "j" ]); rhs = Num 2. };
          {
            lhs = ("a", [ ix "i"; ix "j" ]);
            rhs = Ref ("b", [ ix "i"; ix "j" ]);
          };
        ]
  in
  match Psyclone.Psy_ir.of_kernel k with
  | Psyclone.Psy_ir.Schedule
      [ Psyclone.Psy_ir.Stencil_region { computations; _ } ] ->
      check int_c "two computations" 2 (List.length computations)
  | _ -> Alcotest.fail "expected one region"

let test_external_inputs () =
  let k = Psyclone.Benchkernels.tracer_advection ~iterations: 1 ~shape: [ 4; 4; 4 ] () in
  let inputs = Psyclone.Fortran.external_inputs k in
  List.iter
    (fun a -> check bool_c (a ^ " is input") true (List.mem a inputs))
    [ "rnfmsk"; "tsn"; "un"; "vn"; "wn"; "mydomain" ];
  check bool_c "zind is internal" false (List.mem "zind" inputs)

(* --- interpreter extras --- *)

let test_stream_underflow () =
  let f =
    Dialects.Func.define "bad" ~arg_tys: [] ~res_tys: [ Typesys.f64 ]
      (fun bld _ ->
        let s = Core.Hls.stream_create_op bld Typesys.f64 in
        let v = Core.Hls.stream_read_op bld s in
        Dialects.Func.return_op bld [ v ])
  in
  (try
     ignore (Driver.Simulate.run_serial ~func: "bad" (Op.module_op [ f ]) []);
     Alcotest.fail "expected underflow"
   with Interp.Rtval.Runtime_error _ -> ())

let test_gpu_ops_interp () =
  let f =
    Dialects.Func.define "g" ~arg_tys: [ Typesys.Memref ([ 4 ], Typesys.f64) ]
      ~res_tys: [] (fun bld args ->
        let host = List.hd args in
        let dev = Dialects.Gpu.alloc_op bld [ 4 ] Typesys.f64 in
        Dialects.Gpu.memcpy_op bld ~src: host ~dst: dev;
        let two = Dialects.Arith.const_index bld 2 in
        let v = Dialects.Arith.const_float bld 9. in
        Dialects.Memref.store_op bld v dev [ two ];
        Dialects.Gpu.memcpy_op bld ~src: dev ~dst: host;
        Dialects.Gpu.dealloc_op bld dev;
        Dialects.Func.return_op bld [])
  in
  let b = Interp.Rtval.alloc_buffer [ 4 ] Typesys.f64 in
  ignore
    (Driver.Simulate.run_serial ~func: "g" (Op.module_op [ f ])
       [ Interp.Rtval.Rbuf b ]);
  check float_c "copied back" 9. (Interp.Rtval.as_float (Interp.Rtval.get b [ 2 ]))

let test_unbound_value_error () =
  let ghost = Value.fresh Typesys.f64 in
  let f =
    Op.make "func.func"
      ~attrs:
        [
          ("sym_name", Typesys.String_attr "bad");
          ("function_type", Typesys.Type_attr (Typesys.Fn ([], [])));
        ]
      ~regions: [ Op.region [ Op.make "test.sink" ~operands: [ ghost ] ] ]
  in
  (try
     ignore (Driver.Simulate.run_serial ~func: "bad" (Op.module_op [ f ]) []);
     Alcotest.fail "expected error"
   with Interp.Rtval.Runtime_error _ -> ())

let suite =
  [
    Alcotest.test_case "comments + whitespace" `Quick
      test_comments_and_whitespace;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "float literal forms" `Quick test_float_forms;
    Alcotest.test_case "deep nesting roundtrip" `Quick
      test_deep_nesting_roundtrip;
    Alcotest.test_case "parse error coverage" `Quick test_parse_error_messages;
    Alcotest.test_case "shape inference accepts" `Quick
      test_shape_inference_accepts;
    Alcotest.test_case "shape inference rejects missing halo" `Quick
      test_shape_inference_rejects_missing_halo;
    Alcotest.test_case "required input bounds" `Quick
      test_shape_inference_required_bounds;
    Alcotest.test_case "mpi.allreduce from IR" `Quick test_allreduce_from_ir;
    Alcotest.test_case "MPI_Allreduce lowered" `Quick test_allreduce_lowered;
    Alcotest.test_case "devito coefficient field" `Quick
      test_coefficient_field;
    Alcotest.test_case "devito first derivative" `Quick
      test_first_derivative_operator;
    Alcotest.test_case "psyclone rejects loop-carried" `Quick
      test_reject_loop_carried;
    Alcotest.test_case "psyclone forwards same-point writes" `Quick
      test_accept_forwarding;
    Alcotest.test_case "psyclone external inputs" `Quick test_external_inputs;
    Alcotest.test_case "stream underflow" `Quick test_stream_underflow;
    Alcotest.test_case "gpu ops interpret" `Quick test_gpu_ops_interp;
    Alcotest.test_case "unbound value error" `Quick test_unbound_value_error;
  ]

(* Tests for the stencil-to-HLS flow: both the initial (Von Neumann) and the
   optimized (dataflow + shift buffer) forms must compute the same values as
   the stencil-level execution, and the optimized structure must carry the
   dataflow/pipelining metadata the FPGA model consumes. *)

open Ir
open Core

let float_c = Alcotest.float 1e-6

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

let run_hls ~mode m func bufs =
  let lowered = Stencil_to_hls.run ~mode m in
  Verifier.verify ~checks: Registry.checks lowered;
  let eng = Interp.Engine.create lowered in
  ignore
    (Interp.Engine.run eng func
       (List.map (fun b -> Interp.Rtval.Rbuf (rebase b)) bufs));
  lowered

let mk_fields () =
  [
    Programs.make_field_2d ~nx: 8 ~ny: 6 (fun i j -> float_of_int ((i * 3) + j));
    Programs.make_field_2d ~nx: 8 ~ny: 6 (fun _ _ -> 0.);
  ]

let reference () =
  let m = Programs.heat2d_module ~nx: 8 ~ny: 6 in
  let fields = mk_fields () in
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng "step"
       (List.map (fun b -> Interp.Rtval.Rbuf b) fields));
  fields

let test_initial_matches () =
  let reference_fields = reference () in
  let m = Programs.heat2d_module ~nx: 8 ~ny: 6 in
  let fields = mk_fields () in
  ignore (run_hls ~mode: Stencil_to_hls.Initial m "step" fields);
  List.iter2
    (fun a b ->
      Alcotest.check float_c "initial == stencil" 0.
        (Driver.Simulate.max_abs_diff a b))
    fields reference_fields

let test_optimized_matches () =
  let reference_fields = reference () in
  let m = Programs.heat2d_module ~nx: 8 ~ny: 6 in
  let fields = mk_fields () in
  ignore (run_hls ~mode: Stencil_to_hls.Optimized m "step" fields);
  List.iter2
    (fun a b ->
      Alcotest.check float_c "optimized == stencil" 0.
        (Driver.Simulate.max_abs_diff a b))
    fields reference_fields

let test_optimized_structure () =
  let m = Programs.heat2d_module ~nx: 8 ~ny: 6 in
  let lowered = Stencil_to_hls.run ~mode: Stencil_to_hls.Optimized m in
  Alcotest.check Alcotest.int "one dataflow region" 1
    (Transforms.Statistics.count lowered "hls.dataflow");
  Alcotest.check Alcotest.int "read + compute + write stages" 3
    (Hls.count_stages lowered);
  Alcotest.check Alcotest.bool "has shift buffer" true
    (Hls.has_shift_buffer lowered);
  (* The compute stage is pipelined at II = 1. *)
  let ii = ref 0 in
  Op.walk
    (fun o ->
      if o.Op.name = Hls.stage then
        match Hls.pipeline_ii o with Some v -> ii := v | None -> ())
    lowered;
  Alcotest.check Alcotest.int "II = 1" 1 !ii

let test_initial_marked () =
  let m = Programs.heat2d_module ~nx: 8 ~ny: 6 in
  let lowered = Stencil_to_hls.run ~mode: Stencil_to_hls.Initial m in
  match Op.lookup_symbol lowered "step" with
  | Some f ->
      Alcotest.check Alcotest.string "kernel attr" "initial"
        (Op.string_attr_exn f Stencil_to_hls.kernel_attr);
      Alcotest.check Alcotest.bool "no dataflow" false
        (Op.exists (fun o -> o.Op.name = Hls.dataflow) lowered)
  | None -> Alcotest.fail "missing function"

let test_window_span () =
  (* 5-point stencil on an 8-column row-major grid: offsets (0,-1) and
     (0,1) are 2 apart; (-1,0) to (1,0) span two rows = 2*8; window =
     2*8 + 1 ... plus the cross arms: max linear = +8, min = -8. *)
  let span =
    Stencil_to_hls.window_span ~shape: [ 10; 8 ]
      ~offsets: [ [ 0; 0 ]; [ 0; -1 ]; [ 0; 1 ]; [ -1; 0 ]; [ 1; 0 ] ]
  in
  Alcotest.check Alcotest.int "window" 17 span

let test_chained_applies () =
  (* Two chained stencils: intermediate temp must flow through a stream
     between compute stages without touching DDR. *)
  let n = 12 in
  let fty = Stencil.field_ty [ Typesys.bound (-2) (n + 2) ] Typesys.f64 in
  let f =
    Dialects.Func.define "chain" ~arg_tys: [ fty; fty ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ a; out ] ->
            let t = Stencil.load_op bld a in
            (* First stage computes on an extended domain so the second has
               its halo. *)
            let mid =
              Stencil.apply_op bld ~inputs: [ t ]
                ~out_bounds: [ Typesys.bound (-1) (n + 1) ]
                ~elt: Typesys.f64 ~n_results: 1 Programs.jacobi1d_step_body
            in
            let final =
              Stencil.apply_op bld ~inputs: [ List.hd mid ]
                ~out_bounds: [ Typesys.bound 0 n ] ~elt: Typesys.f64
                ~n_results: 1 Programs.jacobi1d_step_body
            in
            Stencil.store_op bld (List.hd final) out ~lb: [ 0 ] ~ub: [ n ];
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  let m = Op.module_op [ f ] in
  (* Reference at stencil level. *)
  let mk () =
    [
      (let b = Interp.Rtval.alloc_buffer ~lo: [ -2 ] [ n + 4 ] Typesys.f64 in
       for i = -2 to n + 1 do
         Interp.Rtval.set b [ i ]
           (Interp.Rtval.Rf (Float.cos (float_of_int i)))
       done;
       b);
      Interp.Rtval.alloc_buffer ~lo: [ -2 ] [ n + 4 ] Typesys.f64;
    ]
  in
  let ref_fields = mk () in
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng "chain"
       (List.map (fun b -> Interp.Rtval.Rbuf b) ref_fields));
  let fields = mk () in
  let lowered = run_hls ~mode: Stencil_to_hls.Optimized m "chain" fields in
  List.iter2
    (fun a b ->
      Alcotest.check float_c "chained == stencil" 0.
        (Driver.Simulate.max_abs_diff a b))
    fields ref_fields;
  (* Structure: read, compute, compute, write = 4 stages. *)
  Alcotest.check Alcotest.int "four stages" 4 (Hls.count_stages lowered)

let suite =
  [
    Alcotest.test_case "initial mode matches stencil" `Quick
      test_initial_matches;
    Alcotest.test_case "optimized mode matches stencil" `Quick
      test_optimized_matches;
    Alcotest.test_case "optimized structure" `Quick test_optimized_structure;
    Alcotest.test_case "initial marked, no dataflow" `Quick
      test_initial_marked;
    Alcotest.test_case "window span" `Quick test_window_span;
    Alcotest.test_case "chained applies through streams" `Quick
      test_chained_applies;
  ]

(* Interpreter tests: arith/scf/memref semantics, then stencil-level
   execution of the reference programs against hand-computed expectations. *)

open Ir
open Dialects

let check = Alcotest.check
let float_c = Alcotest.float 1e-9
let int_c = Alcotest.int

let run_main ?externs m args =
  let eng = Interp.Engine.create ?externs m in
  Interp.Engine.run eng "main" args

(* Build: func main() -> (ty) { ...; return v } *)
let fn_module ~res_tys f =
  Op.module_op [ Func.define "main" ~arg_tys: [] ~res_tys f ]

let test_arith_eval () =
  let m =
    fn_module ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let a = Arith.const_float bld 2.5 in
        let b = Arith.const_float bld 4. in
        let c = Arith.mul_f bld a b in
        let d = Arith.sub_f bld c a in
        Func.return_op bld [ d ])
  in
  match run_main m [] with
  | [ Interp.Rtval.Rf v ] -> check float_c "2.5*4-2.5" 7.5 v
  | _ -> Alcotest.fail "expected one float"

let test_int_ops () =
  let m =
    fn_module ~res_tys: [ Typesys.i64; Typesys.i64 ] (fun bld _ ->
        let a = Arith.const_int bld 17 in
        let b = Arith.const_int bld 5 in
        let q = Arith.div_i bld a b in
        let r = Arith.rem_i bld a b in
        Func.return_op bld [ q; r ])
  in
  match run_main m [] with
  | [ Interp.Rtval.Ri q; Interp.Rtval.Ri r ] ->
      check int_c "17/5" 3 q;
      check int_c "17 mod 5" 2 r
  | _ -> Alcotest.fail "expected two ints"

let test_select_cmp () =
  let m =
    fn_module ~res_tys: [ Typesys.i64 ] (fun bld _ ->
        let a = Arith.const_int bld 3 in
        let b = Arith.const_int bld 9 in
        let lt = Arith.cmp_i bld Arith.Lt a b in
        let r = Arith.select_op bld lt b a in
        Func.return_op bld [ r ])
  in
  match run_main m [] with
  | [ Interp.Rtval.Ri v ] -> check int_c "max" 9 v
  | _ -> Alcotest.fail "expected int"

let test_scf_for_sum () =
  (* sum over i in [0, 10) of i = 45 via loop-carried value *)
  let m =
    fn_module ~res_tys: [ Typesys.i64 ] (fun bld _ ->
        let lo = Arith.const_index bld 0 in
        let hi = Arith.const_index bld 10 in
        let st = Arith.const_index bld 1 in
        let zero = Arith.const_int bld 0 in
        let outs =
          Scf.for_op bld ~lo ~hi ~step: st ~init: [ zero ]
            (fun body iv iters ->
              let acc = List.hd iters in
              let acc' = Arith.add_i body acc iv in
              Scf.yield_op body [ acc' ])
        in
        Func.return_op bld outs)
  in
  match run_main m [] with
  | [ Interp.Rtval.Ri v ] -> check int_c "sum" 45 v
  | _ -> Alcotest.fail "expected int"

let test_scf_if () =
  let m =
    fn_module ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let a = Arith.const_int bld 1 in
        let b = Arith.const_int bld 2 in
        let c = Arith.cmp_i bld Arith.Gt a b in
        let outs =
          Scf.if_op bld c ~res_tys: [ Typesys.f64 ]
            ~then_: (fun bb ->
              let v = Arith.const_float bb 1. in
              Scf.yield_op bb [ v ])
            ~else_: (fun bb ->
              let v = Arith.const_float bb (-1.) in
              Scf.yield_op bb [ v ])
        in
        Func.return_op bld outs)
  in
  match run_main m [] with
  | [ Interp.Rtval.Rf v ] -> check float_c "else branch" (-1.) v
  | _ -> Alcotest.fail "expected float"

let test_memref_ops () =
  let m =
    fn_module ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let buf = Memref.alloc_op bld [ 4; 4 ] Typesys.f64 in
        let i = Arith.const_index bld 2 in
        let j = Arith.const_index bld 3 in
        let v = Arith.const_float bld 42.5 in
        Memref.store_op bld v buf [ i; j ];
        let r = Memref.load_op bld buf [ i; j ] in
        Func.return_op bld [ r ])
  in
  match run_main m [] with
  | [ Interp.Rtval.Rf v ] -> check float_c "load after store" 42.5 v
  | _ -> Alcotest.fail "expected float"

let test_oob_load () =
  let m =
    fn_module ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let buf = Memref.alloc_op bld [ 4 ] Typesys.f64 in
        let i = Arith.const_index bld 7 in
        let r = Memref.load_op bld buf [ i ] in
        Func.return_op bld [ r ])
  in
  (try
     ignore (run_main m []);
     Alcotest.fail "expected out-of-bounds error"
   with Interp.Rtval.Runtime_error _ -> ())

let test_scf_parallel () =
  (* Fill a 3x3 buffer with i*3+j via scf.parallel, then read one cell. *)
  let m =
    fn_module ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let buf = Memref.alloc_op bld [ 3; 3 ] Typesys.f64 in
        let zero = Arith.const_index bld 0 in
        let three = Arith.const_index bld 3 in
        let one = Arith.const_index bld 1 in
        Scf.parallel_op bld ~lbs: [ zero; zero ] ~ubs: [ three; three ]
          ~steps: [ one; one ] (fun body ivs ->
            match ivs with
            | [ i; j ] ->
                let c3 = Arith.const_index body 3 in
                let i3 = Arith.mul_i body i c3 in
                let lin = Arith.add_i body i3 j in
                let f = Arith.si_to_fp body lin Typesys.f64 in
                Memref.store_op body f buf [ i; j ]
            | _ -> assert false);
        let two = Arith.const_index bld 2 in
        let one_i = Arith.const_index bld 1 in
        let r = Memref.load_op bld buf [ two; one_i ] in
        Func.return_op bld [ r ])
  in
  match run_main m [] with
  | [ Interp.Rtval.Rf v ] -> check float_c "2*3+1" 7. v
  | _ -> Alcotest.fail "expected float"

let test_call_between_funcs () =
  let callee =
    Func.define "double" ~arg_tys: [ Typesys.f64 ] ~res_tys: [ Typesys.f64 ]
      (fun bld args ->
        let two = Arith.const_float bld 2. in
        let r = Arith.mul_f bld (List.hd args) two in
        Func.return_op bld [ r ])
  in
  let main =
    Func.define "main" ~arg_tys: [] ~res_tys: [ Typesys.f64 ] (fun bld _ ->
        let x = Arith.const_float bld 21. in
        let r = Func.call1 bld "double" [ x ] Typesys.f64 in
        Func.return_op bld [ r ])
  in
  let m = Op.module_op [ callee; main ] in
  match run_main m [] with
  | [ Interp.Rtval.Rf v ] -> check float_c "42" 42. v
  | _ -> Alcotest.fail "expected float"

(* --- stencil-level execution --- *)

let test_jacobi1d_one_step () =
  let n = 8 in
  let m = Programs.jacobi1d_module ~n in
  let a = Programs.make_field_1d ~n (fun i -> float_of_int i) in
  let b = Programs.make_field_1d ~n (fun _ -> 0.) in
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng "step" [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ]);
  (* Mean of (i-1, i, i+1) is i for the linear ramp. *)
  for i = 0 to n - 1 do
    match Interp.Rtval.get b [ i ] with
    | Interp.Rtval.Rf v -> check float_c (Printf.sprintf "b[%d]" i) (float_of_int i) v
    | _ -> Alcotest.fail "expected float"
  done

let test_heat2d_conservation () =
  (* The 5-point explicit heat step preserves a constant field. *)
  let nx = 6 and ny = 6 in
  let m = Programs.heat2d_module ~nx ~ny in
  let a = Programs.make_field_2d ~nx ~ny (fun _ _ -> 3.5) in
  let out = Programs.make_field_2d ~nx ~ny (fun _ _ -> 0.) in
  let eng = Interp.Engine.create m in
  ignore
    (Interp.Engine.run eng "step"
       [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf out ]);
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      match Interp.Rtval.get out [ i; j ] with
      | Interp.Rtval.Rf v ->
          check (Alcotest.float 1e-6) "constant preserved" 3.5 v
      | _ -> Alcotest.fail "expected float"
    done
  done

let test_timeloop_buffer_swap () =
  (* After an even number of steps the data lands back in the first buffer;
     results.(0) must always alias the freshest buffer. *)
  let n = 6 in
  let steps = 4 in
  let m = Programs.jacobi1d_timeloop_module ~n ~steps in
  let init i = float_of_int (i * i) in
  let a = Programs.make_field_1d ~n init in
  (* Both buffers need the same (never-updated) boundary halo values. *)
  let b = Programs.make_field_1d ~n init in
  let eng = Interp.Engine.create m in
  let results =
    Interp.Engine.run eng "run"
      [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ]
  in
  match results with
  | [ Interp.Rtval.Rbuf latest; Interp.Rtval.Rbuf _prev ] ->
      (* Compare against a step-by-step serial recomputation. *)
      let cur = ref (Array.init (n + 2) (fun k -> float_of_int ((k - 1) * (k - 1)))) in
      for _ = 1 to steps do
        let nxt = Array.copy !cur in
        for i = 1 to n do
          nxt.(i) <- (!cur.(i - 1) +. !cur.(i) +. !cur.(i + 1)) /. 3.
        done;
        cur := nxt
      done;
      for i = 0 to n - 1 do
        match Interp.Rtval.get latest [ i ] with
        | Interp.Rtval.Rf v ->
            check (Alcotest.float 1e-9) (Printf.sprintf "x[%d]" i)
              !cur.(i + 1) v
        | _ -> Alcotest.fail "expected float"
      done
  | _ -> Alcotest.fail "expected two buffers"

let suite =
  [
    Alcotest.test_case "arith eval" `Quick test_arith_eval;
    Alcotest.test_case "int div/rem" `Quick test_int_ops;
    Alcotest.test_case "cmp + select" `Quick test_select_cmp;
    Alcotest.test_case "scf.for loop-carried sum" `Quick test_scf_for_sum;
    Alcotest.test_case "scf.if" `Quick test_scf_if;
    Alcotest.test_case "memref store/load" `Quick test_memref_ops;
    Alcotest.test_case "out-of-bounds load" `Quick test_oob_load;
    Alcotest.test_case "scf.parallel" `Quick test_scf_parallel;
    Alcotest.test_case "func.call" `Quick test_call_between_funcs;
    Alcotest.test_case "jacobi1d one step" `Quick test_jacobi1d_one_step;
    Alcotest.test_case "heat2d constant preserved" `Quick
      test_heat2d_conservation;
    Alcotest.test_case "time loop buffer swap" `Quick
      test_timeloop_buffer_swap;
  ]

(* Tests for the analytic machine models and the IR-based feature
   extraction: sanity properties (monotonicity, roofline behaviour, the
   effects each paper finding depends on) rather than absolute numbers. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let float_c = Alcotest.float 1e-9

(* Minimal local copy of the bench workload helpers (the bench executable
   is not a library). *)
module Workbench = struct
  type w = { module_ : Ir.Op.t; spec : Devito.Operator.t }

  let heat ~dims ~so =
    let shape = if dims = 2 then [ 16; 16 ] else [ 8; 8; 8 ] in
    let g = Devito.Symbolic.grid ~dt: 0.1 shape in
    let u = Devito.Symbolic.function_ ~space_order: so "u" g in
    let eqn =
      Devito.Symbolic.eq (Devito.Symbolic.Dt u)
        Devito.Symbolic.(f 0.5 *: laplace u)
    in
    let spec, m = Devito.Operator.operator ~name: "heat" ~timesteps: 1 eqn in
    { module_ = m; spec }

  let xdsl_features w ~points =
    Machine.Features.with_points
      (Machine.Features.of_stencil_module ~elt_bytes: 4 w.module_)
      points
end

let heat_features ~dims ~so ~points =
  Workbench.xdsl_features (Workbench.heat ~dims ~so) ~points

let test_feature_extraction () =
  let f = heat_features ~dims: 2 ~so: 2 ~points: 1e6 in
  check Alcotest.int "one region" 1 f.Machine.Features.stencil_regions;
  (* 5-point stencil: 5 distinct accesses. *)
  check (Alcotest.float 0.1) "reads/pt" 5. f.Machine.Features.reads_per_pt;
  check bool_c "has flops" true (f.Machine.Features.flops_per_pt > 0.);
  check float_c "points applied" 1e6 f.Machine.Features.points_per_step;
  check Alcotest.int "radius" 1 f.Machine.Features.radius

let test_features_scale_with_so () =
  let f2 = heat_features ~dims: 3 ~so: 2 ~points: 1e6 in
  let f8 = heat_features ~dims: 3 ~so: 8 ~points: 1e6 in
  check bool_c "so8 has more flops" true
    (f8.Machine.Features.flops_per_pt > f2.Machine.Features.flops_per_pt);
  check bool_c "so8 has more reads" true
    (f8.Machine.Features.reads_per_pt > f2.Machine.Features.reads_per_pt);
  check Alcotest.int "so8 radius" 4 f8.Machine.Features.radius

let test_cpu_roofline () =
  let node = Machine.Cpu.archer2_node in
  let q = Machine.Cpu.xdsl_cpu_quality in
  let f = heat_features ~dims: 2 ~so: 2 ~points: 1e8 in
  (* Doubling the traffic per point must not increase throughput. *)
  let heavy =
    { f with Machine.Features.unique_bytes_per_pt =
        2. *. f.Machine.Features.unique_bytes_per_pt }
  in
  let t1 = Machine.Cpu.throughput node q f ~points: 1e8 ~threads: 128 in
  let t2 = Machine.Cpu.throughput node q heavy ~points: 1e8 ~threads: 128 in
  check bool_c "more bytes, less throughput" true (t2 < t1);
  (* More threads never hurt. *)
  let t16 = Machine.Cpu.throughput node q f ~points: 1e8 ~threads: 16 in
  check bool_c "threads help" true (t1 >= t16)

let test_cpu_barrier_effect () =
  let node = Machine.Cpu.archer2_node in
  let q = Machine.Cpu.xdsl_cpu_quality in
  let f = heat_features ~dims: 3 ~so: 2 ~points: 4e6 in
  let many_regions = { f with Machine.Features.stencil_regions = 18 } in
  let t1 = Machine.Cpu.throughput node q f ~points: 4e6 ~threads: 128 in
  let t18 =
    Machine.Cpu.throughput node q many_regions ~points: 4e6 ~threads: 128
  in
  check bool_c "regions cost throughput at small sizes" true (t18 < t1);
  (* The gap narrows at large problem sizes (fig. 10 effect). *)
  let big = 5e8 in
  let fb = Machine.Features.with_points f big in
  let mb = Machine.Features.with_points many_regions big in
  let r_small = t18 /. t1 in
  let r_big =
    Machine.Cpu.throughput node q mb ~points: big ~threads: 128
    /. Machine.Cpu.throughput node q fb ~points: big ~threads: 128
  in
  check bool_c "gap narrows with size" true (r_big > r_small)

let test_net_alpha_beta () =
  let spec = Machine.Net.slingshot in
  let sched messages bytes =
    { Machine.Net.messages; bytes; overlap = false;
      host_us_per_msg = Machine.Net.xdsl_host_us_per_msg }
  in
  (* Latency-dominated vs bandwidth-dominated regimes. *)
  let tiny = Machine.Net.comm_time spec (sched 8 64.) in
  let huge = Machine.Net.comm_time spec (sched 8 64e6) in
  check bool_c "volume costs" true (huge > tiny);
  check bool_c "latency floor" true
    (tiny >= 8. *. spec.Machine.Net.latency_us *. 1e-6)

let test_net_overlap_hides_wire () =
  let spec = Machine.Net.slingshot in
  let mk overlap =
    { Machine.Net.messages = 6; bytes = 4e6; overlap;
      host_us_per_msg = 2. }
  in
  let compute = 1e-3 in
  let t_no = Machine.Net.step_time spec ~compute (mk false) in
  let t_ov = Machine.Net.step_time spec ~compute (mk true) in
  check bool_c "overlap is faster" true (t_ov < t_no);
  check bool_c "overlap still above compute" true (t_ov > compute)

let test_gpu_managed_penalty () =
  let f = heat_features ~dims: 2 ~so: 2 ~points: 6.7e7 in
  let t_explicit =
    Machine.Gpu.throughput Machine.Gpu.v100 Machine.Gpu.xdsl_cuda_quality f
      ~points: 6.7e7
  in
  let t_managed =
    Machine.Gpu.throughput Machine.Gpu.v100
      Machine.Gpu.psyclone_openacc_quality f ~points: 6.7e7
  in
  check bool_c "managed memory is slower" true (t_managed < t_explicit)

let test_gpu_sync_per_region () =
  let f = heat_features ~dims: 2 ~so: 2 ~points: 1e6 in
  let many = { f with Machine.Features.stencil_regions = 18 } in
  let t1 =
    Machine.Gpu.step_time Machine.Gpu.v100 Machine.Gpu.xdsl_cuda_quality f
      ~points: 1e6
  in
  let t18 =
    Machine.Gpu.step_time Machine.Gpu.v100 Machine.Gpu.xdsl_cuda_quality many
      ~points: 1e6
  in
  check bool_c "launch sync per region costs" true (t18 > t1)

let test_fpga_shapes () =
  let k = Psyclone.Benchkernels.pw_advection ~shape: [ 8; 8; 8 ] in
  let m = Psyclone.Codegen.compile k in
  let f = Machine.Features.of_stencil_module ~elt_bytes: 4 m in
  let initial =
    Machine.Fpga.shape_of_module
      (Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Initial m)
      ~f ()
  in
  let optimized =
    Machine.Fpga.shape_of_module
      (Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Optimized m)
      ~f ~external_streams: 4 ()
  in
  check bool_c "initial not optimized" false initial.Machine.Fpga.optimized;
  check bool_c "optimized detected" true optimized.Machine.Fpga.optimized;
  let t_i = Machine.Fpga.throughput Machine.Fpga.u280 initial ~points: 1e7 in
  let t_o = Machine.Fpga.throughput Machine.Fpga.u280 optimized ~points: 1e7 in
  check bool_c "dataflow transform wins" true (t_o > 50. *. t_i)

let test_devito_factorization () =
  (* Factorization shrinks flops, more at higher orders. *)
  let flops so =
    let g = Devito.Symbolic.grid ~dt: 0.1 [ 8; 8; 8 ] in
    let u = Devito.Symbolic.function_ ~space_order: so "u" g in
    let _, update =
      Devito.Symbolic.solve
        (Devito.Symbolic.eq (Devito.Symbolic.Dt u)
           Devito.Symbolic.(f 0.5 *: laplace u))
    in
    ( Devito.Symbolic.flops update,
      Devito.Baseline.factorized_flops update )
  in
  let naive2, fact2 = flops 2 in
  let naive8, fact8 = flops 8 in
  check bool_c "so2 reduced" true (fact2 < naive2);
  check bool_c "so8 reduced" true (fact8 < naive8);
  check bool_c "bigger saving at so8" true
    (float_of_int fact8 /. float_of_int naive8
    < float_of_int fact2 /. float_of_int naive2 +. 0.05)

let test_devito_cse () =
  (* Hash-consing counts shared subtrees once. *)
  let open Devito.Symbolic in
  let g = grid [ 4 ] in
  let u = function_ "u" g in
  let a = here u +: f 1. in
  let e = a *: a in
  check Alcotest.int "shared subtree counted once" 2
    (Devito.Baseline.cse_flops e);
  check Alcotest.int "naive counts twice" 3 (flops e)

let test_devito_comm_schedule () =
  let g = Devito.Symbolic.grid ~dt: 0.1 [ 8; 8; 8 ] in
  let u = Devito.Symbolic.function_ ~space_order: 4 "u" g in
  let spec, _ =
    Devito.Operator.operator ~name: "x"
      (Devito.Symbolic.eq (Devito.Symbolic.Dt u)
         Devito.Symbolic.(f 0.5 *: laplace u))
  in
  let sched3d =
    Devito.Baseline.comm_schedule spec ~grid: [ 4; 4; 4 ] ~elt_bytes: 4
      ~local_interior: [ 256; 256; 256 ]
  in
  check bool_c "diagonals add messages" true
    (sched3d.Machine.Net.messages > 6);
  check bool_c "overlap enabled" true sched3d.Machine.Net.overlap;
  let sched1d =
    Devito.Baseline.comm_schedule spec ~grid: [ 64; 1; 1 ] ~elt_bytes: 4
      ~local_interior: [ 16; 1024; 1024 ]
  in
  check Alcotest.int "1D has no diagonals" 2 sched1d.Machine.Net.messages

let suite =
  [
    Alcotest.test_case "feature extraction" `Quick test_feature_extraction;
    Alcotest.test_case "features scale with space order" `Quick
      test_features_scale_with_so;
    Alcotest.test_case "cpu roofline monotonicity" `Quick test_cpu_roofline;
    Alcotest.test_case "cpu barrier effect (fig10 mechanism)" `Quick
      test_cpu_barrier_effect;
    Alcotest.test_case "net alpha-beta" `Quick test_net_alpha_beta;
    Alcotest.test_case "net overlap hides wire time" `Quick
      test_net_overlap_hides_wire;
    Alcotest.test_case "gpu managed-memory penalty" `Quick
      test_gpu_managed_penalty;
    Alcotest.test_case "gpu per-region sync" `Quick test_gpu_sync_per_region;
    Alcotest.test_case "fpga shapes and speedup" `Quick test_fpga_shapes;
    Alcotest.test_case "devito symbolic factorization" `Quick
      test_devito_factorization;
    Alcotest.test_case "devito symbolic cse" `Quick test_devito_cse;
    Alcotest.test_case "devito comm schedule" `Quick
      test_devito_comm_schedule;
  ]

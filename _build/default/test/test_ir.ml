(* Unit and property tests for the IR core: types, attributes, ops, builder,
   printer/parser round-tripping and the verifier. *)

open Ir

let check = Alcotest.check
let bool_c = Alcotest.bool
let string_c = Alcotest.string
let int_c = Alcotest.int

(* --- types and attributes --- *)

let test_ty_printing () =
  check string_c "i32" "i32" (Typesys.ty_to_string Typesys.i32);
  check string_c "f64" "f64" (Typesys.ty_to_string Typesys.f64);
  check string_c "index" "index" (Typesys.ty_to_string Typesys.Index);
  check string_c "memref" "memref<4x5xf32>"
    (Typesys.ty_to_string (Typesys.Memref ([ 4; 5 ], Typesys.f32)));
  check string_c "field"
    "!stencil.field<[-4,68] x [-4,68] x f64>"
    (Typesys.ty_to_string
       (Typesys.Field
          ([ Typesys.bound (-4) 68; Typesys.bound (-4) 68 ], Typesys.f64)));
  check string_c "request" "!mpi.request" (Typesys.ty_to_string Typesys.Request)

let test_attr_printing () =
  check string_c "int attr" "42 : i32"
    (Typesys.attr_to_string (Typesys.Int_attr (42, Typesys.i32)));
  check string_c "dense" "dense<[1, -2, 3]>"
    (Typesys.attr_to_string (Typesys.Dense_attr [ 1; -2; 3 ]));
  check string_c "grid" "#dmp.grid<2x2x1>"
    (Typesys.attr_to_string (Typesys.Grid_attr [ 2; 2; 1 ]))

let test_bounds () =
  let b = Typesys.bound (-2) 10 in
  check int_c "size" 12 (Typesys.bound_size b);
  Alcotest.check_raises "bad bound" (Invalid_argument "Typesys.bound: hi < lo")
    (fun () -> ignore (Typesys.bound 3 1))

let test_byte_width () =
  check int_c "f32" 4 (Typesys.byte_width Typesys.f32);
  check int_c "f64" 8 (Typesys.byte_width Typesys.f64);
  check int_c "i1" 1 (Typesys.byte_width Typesys.i1)

(* --- ops and builder --- *)

let build_simple () =
  let bld = Builder.create () in
  let a = Dialects.Arith.const_int bld ~ty: Typesys.i32 1 in
  let b = Dialects.Arith.const_int bld ~ty: Typesys.i32 2 in
  let _c = Dialects.Arith.add_i bld a b in
  Builder.ops bld

let test_builder_order () =
  let ops = build_simple () in
  check int_c "three ops" 3 (List.length ops);
  check string_c "last is add" "arith.addi" (List.nth ops 2).Op.name

let test_op_attrs () =
  let op =
    Op.make "test.op" ~attrs: [ ("x", Typesys.Int_attr (7, Typesys.i64)) ]
  in
  check int_c "attr" 7 (Op.int_attr_exn op "x");
  check bool_c "has" true (Op.has_attr op "x");
  let op = Op.set_attr op "x" (Typesys.Int_attr (9, Typesys.i64)) in
  check int_c "updated" 9 (Op.int_attr_exn op "x");
  let op = Op.remove_attr op "x" in
  check bool_c "removed" false (Op.has_attr op "x")

let test_walk_count () =
  let m = Programs.jacobi1d_module ~n: 8 in
  let applies = ref 0 in
  Op.walk
    (fun o -> if o.Op.name = "stencil.apply" then incr applies)
    m;
  check int_c "one apply" 1 !applies;
  check bool_c "count > 5" true (Op.count_ops m > 5)

let test_clone_fresh_values () =
  let m = Programs.jacobi1d_module ~n: 8 in
  let c = Op.clone m in
  let ids op =
    Op.fold
      (fun acc o -> List.map Value.id o.Op.results @ acc)
      [] op
  in
  let orig = ids m and cloned = ids c in
  List.iter
    (fun i -> check bool_c "fresh id" false (List.mem i orig))
    cloned

let test_substitute () =
  let v1 = Value.fresh Typesys.i32 in
  let v2 = Value.fresh Typesys.i32 in
  let op = Op.make "test.op" ~operands: [ v1 ] in
  let op' = Op.substitute (Value.Map.singleton v1 v2) op in
  check int_c "substituted" (Value.id v2) (Value.id (List.hd op'.Op.operands))

let test_free_values () =
  let outer = Value.fresh Typesys.f64 in
  let bld = Builder.create () in
  let a = Dialects.Arith.const_float bld 1. in
  let _ = Dialects.Arith.add_f bld a outer in
  let wrapper =
    Op.make "test.wrap" ~regions: [ Op.region (Builder.ops bld) ]
  in
  let free = Op.free_values wrapper in
  check bool_c "outer free" true (Value.Set.mem outer free);
  check bool_c "a not free" false (Value.Set.mem a free)

(* --- printer / parser --- *)

let roundtrip m =
  let s = Printer.module_to_string m in
  let m' = Parser.parse_string s in
  let s' = Printer.module_to_string m' in
  (s, s')

let test_roundtrip_jacobi () =
  let s, s' = roundtrip (Programs.jacobi1d_module ~n: 16) in
  check string_c "roundtrip fixpoint" s s'

let test_roundtrip_heat_timeloop () =
  let s, s' =
    roundtrip (Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 3)
  in
  check string_c "roundtrip fixpoint" s s'

let test_parse_example () =
  let src =
    {|
    %1 = "arith.constant"() {value = 42 : i32} : () -> (i32)
    %2 = "arith.addi"(%1, %1) : (i32, i32) -> (i32)
    |}
  in
  let m = Parser.parse_string src in
  check int_c "two ops" 2 (List.length (Op.module_ops m))

let test_parse_errors () =
  let bad = "%1 = \"arith.addi\"(%7, %7) : (i32, i32) -> (i32)" in
  Alcotest.check_raises "undefined value"
    (Parser.Parse_error "use of undefined value %7") (fun () ->
      ignore (Parser.parse_string bad))

let test_parse_type_mismatch () =
  let bad =
    "%1 = \"arith.constant\"() {value = 1 : i32} : () -> (i32)\n\
     %2 = \"arith.addi\"(%1, %1) : (i64, i64) -> (i64)"
  in
  (try
     ignore (Parser.parse_string bad);
     Alcotest.fail "expected parse error"
   with Parser.Parse_error _ -> ())

(* Random module generator for round-trip property testing. *)

let gen_scalar_ty =
  QCheck.Gen.oneofl
    [ Typesys.i1; Typesys.i32; Typesys.i64; Typesys.f32; Typesys.f64;
      Typesys.Index ]

let gen_ty =
  QCheck.Gen.(
    frequency
      [
        (6, gen_scalar_ty);
        ( 2,
          map2
            (fun dims elt -> Typesys.Memref (dims, elt))
            (list_size (int_range 1 3) (int_range 1 8))
            gen_scalar_ty );
        ( 1,
          map2
            (fun bs elt -> Typesys.Field (bs, elt))
            (list_size (int_range 1 3)
               (map2
                  (fun lo size -> Typesys.bound lo (lo + size))
                  (int_range (-4) 0) (int_range 1 16)))
            (oneofl [ Typesys.f32; Typesys.f64 ]) );
      ])

let gen_attr =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Typesys.Int_attr (i, Typesys.i64)) (int_range (-100) 100));
        ( 2,
          map
            (fun f -> Typesys.Float_attr (f, Typesys.f64))
            (map (fun i -> float_of_int i /. 8.) (int_range (-800) 800)) );
        (2, map (fun s -> Typesys.String_attr s) (string_size ~gen: (char_range 'a' 'z') (int_range 0 8)));
        (1, map (fun xs -> Typesys.Dense_attr xs) (list_size (int_range 0 4) (int_range (-9) 9)));
        (1, map (fun s -> Typesys.Symbol_attr s) (string_size ~gen: (char_range 'a' 'z') (int_range 1 6)));
        (1, return Typesys.Unit_attr);
        (1, map (fun b -> Typesys.Bool_attr b) bool);
      ])

(* Random straight-line module: constants and unary/binary "test.op"s with
   random attributes, nested one level of regions occasionally. *)
let gen_module =
  QCheck.Gen.(
    let gen_op defined =
      let* n_operands = int_range 0 (min 2 (List.length defined)) in
      let* operands =
        if n_operands = 0 then return []
        else
          list_size (return n_operands) (oneofl defined)
      in
      let* n_results = int_range 0 2 in
      let* result_tys = list_size (return n_results) gen_ty in
      let* n_attrs = int_range 0 2 in
      let* attr_vals = list_size (return n_attrs) gen_attr in
      let attrs = List.mapi (fun i a -> (Printf.sprintf "k%d" i, a)) attr_vals in
      let results = List.map Value.fresh result_tys in
      return (Op.make "test.op" ~operands ~results ~attrs)
    in
    let* n_ops = int_range 0 12 in
    let rec build k defined acc =
      if k = 0 then return (List.rev acc)
      else
        let* op = gen_op defined in
        build (k - 1) (op.Op.results @ defined) (op :: acc)
    in
    let* ops = build n_ops [] [] in
    return (Op.module_op ops))

let roundtrip_prop =
  QCheck.Test.make ~count: 200 ~name: "printer/parser round-trip"
    (QCheck.make gen_module ~print: Printer.module_to_string)
    (fun m ->
      let s = Printer.module_to_string m in
      let m' = Parser.parse_string s in
      Printer.module_to_string m' = s)

let ty_roundtrip_prop =
  QCheck.Test.make ~count: 500 ~name: "type print/parse round-trip"
    (QCheck.make gen_ty ~print: Typesys.ty_to_string)
    (fun t ->
      (* Parse the type by embedding it in an op signature. *)
      let v = Value.fresh t in
      let op = Op.make "test.op" ~results: [ v ] in
      let s = Printer.module_to_string (Op.module_op [ op ]) in
      Printer.module_to_string (Parser.parse_string s) = s)

(* --- verifier --- *)

let test_verify_ok () =
  Verifier.verify ~checks: Dialects.Registry.checks
    (Programs.jacobi1d_module ~n: 8);
  Verifier.verify ~checks: Core.Registry.checks
    (Programs.heat2d_timeloop_module ~nx: 4 ~ny: 4 ~steps: 2)

let test_verify_use_before_def () =
  let v = Value.fresh Typesys.i32 in
  let bad =
    Op.module_op
      [
        Op.make "test.use" ~operands: [ v ];
        Op.make "test.def" ~results: [ v ];
      ]
  in
  (try
     Verifier.verify bad;
     Alcotest.fail "expected verification error"
   with Verifier.Verification_error _ -> ())

let test_verify_double_def () =
  let v = Value.fresh Typesys.i32 in
  let bad =
    Op.module_op
      [ Op.make "test.def" ~results: [ v ]; Op.make "test.def2" ~results: [ v ] ]
  in
  (try
     Verifier.verify bad;
     Alcotest.fail "expected verification error"
   with Verifier.Verification_error _ -> ())

let test_verify_arith_type_mismatch () =
  let a = Value.fresh Typesys.i32 in
  let r = Value.fresh Typesys.i64 in
  let bad =
    Op.module_op
      [
        Op.make "arith.constant" ~results: [ a ]
          ~attrs: [ ("value", Typesys.Int_attr (1, Typesys.i32)) ];
        Op.make "arith.addi" ~operands: [ a; a ] ~results: [ r ];
      ]
  in
  (try
     Verifier.verify ~checks: Dialects.Registry.checks bad;
     Alcotest.fail "expected verification error"
   with Verifier.Verification_error _ -> ())

let suite =
  [
    Alcotest.test_case "type printing" `Quick test_ty_printing;
    Alcotest.test_case "attr printing" `Quick test_attr_printing;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "byte widths" `Quick test_byte_width;
    Alcotest.test_case "builder order" `Quick test_builder_order;
    Alcotest.test_case "op attrs" `Quick test_op_attrs;
    Alcotest.test_case "walk count" `Quick test_walk_count;
    Alcotest.test_case "clone freshness" `Quick test_clone_fresh_values;
    Alcotest.test_case "substitute" `Quick test_substitute;
    Alcotest.test_case "free values" `Quick test_free_values;
    Alcotest.test_case "roundtrip jacobi" `Quick test_roundtrip_jacobi;
    Alcotest.test_case "roundtrip heat timeloop" `Quick
      test_roundtrip_heat_timeloop;
    Alcotest.test_case "parse example" `Quick test_parse_example;
    Alcotest.test_case "parse undefined value" `Quick test_parse_errors;
    Alcotest.test_case "parse type mismatch" `Quick test_parse_type_mismatch;
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest ty_roundtrip_prop;
    Alcotest.test_case "verify ok" `Quick test_verify_ok;
    Alcotest.test_case "verify use-before-def" `Quick
      test_verify_use_before_def;
    Alcotest.test_case "verify double-def" `Quick test_verify_double_def;
    Alcotest.test_case "verify arith mismatch" `Quick
      test_verify_arith_type_mismatch;
  ]

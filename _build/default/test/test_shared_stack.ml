(* The paper's headline claim, tested directly: distinct frontends arrive
   at the same stencil dialect and share every pass below it.

   - The same heat equation written in the Devito symbolic DSL and as a
     PSyclone Fortran kernel must produce bit-identical results through the
     shared pipeline.
   - The textual stencil IR (the Open Earth Compiler-style front door used
     by stencilc) is a third entry point into the very same stack.
   - 3D programs distribute correctly with the 3D slicing strategy. *)

open Ir

let check = Alcotest.check
let float_c = Alcotest.float 1e-12

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

(* u[t+1](i,j) = u + k*(u(i-1)+u(i+1)+u(j-1)+u(j+1)-4u), k = dt*0.5. *)
let n = 12
let dt = 0.1
let k = dt *. 0.5

let devito_heat () =
  let g = Devito.Symbolic.grid ~dt [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  snd (Devito.Operator.operator ~name: "heat" ~timesteps: 1 ~elt: Typesys.f64 eqn)

(* The same update as Fortran source for the PSyclone flow.  The PSyclone
   program has no time loop: the driver calls it once per step with swapped
   arguments, as NEMO-style kernels do. *)
let psyclone_heat () =
  let open Psyclone.Fortran in
  let idx ?(di = 0) ?(dj = 0) () = [ ix ~shift: di "i"; ix ~shift: dj "j" ] in
  let r name ?(di = 0) ?(dj = 0) () = Ref (name, idx ~di ~dj ()) in
  let kernel =
    kernel ~name: "heat"
      ~arrays:
        [
          { array_name = "unew"; decl_bounds = [ (-1, n); (-1, n) ] };
          { array_name = "u"; decl_bounds = [ (-1, n); (-1, n) ] };
        ]
      ~scalars: [ ("kappa", k) ]
      [
        {
          loop_vars = [ "i"; "j" ];
          ranges = [ (0, n - 1); (0, n - 1) ];
          assigns =
            [
              {
                lhs = ("unew", idx ());
                rhs =
                  r "u" ()
                  +| (Scalar "kappa"
                     *| (r "u" ~di: (-1) ()
                        +| r "u" ~di: 1 ()
                        +| r "u" ~dj: (-1) ()
                        +| r "u" ~dj: 1 ()
                        -| (Num 4. *| r "u" ())));
              };
            ];
        };
      ]
  in
  Psyclone.Codegen.compile ~elt: Typesys.f64 kernel

(* The same single step in the textual stencil IR (placeholders expanded
   by plain string substitution to avoid a fragile format string). *)
let textual_heat () =
  let template =
    {|
    "func.func"() {sym_name = "heat", function_type = type<(FIELD, FIELD) -> ()>} ({
    ^(%1 : FIELD, %2 : FIELD):
      %3 = "stencil.load"(%1) : (FIELD) -> (TEMP)
      %4 = "stencil.apply"(%3) ({
      ^(%5 : TEMP):
        %6 = "stencil.access"(%5) {offset = dense<[-1, 0]>} : (TEMP) -> (f64)
        %7 = "stencil.access"(%5) {offset = dense<[1, 0]>} : (TEMP) -> (f64)
        %8 = "stencil.access"(%5) {offset = dense<[0, -1]>} : (TEMP) -> (f64)
        %9 = "stencil.access"(%5) {offset = dense<[0, 1]>} : (TEMP) -> (f64)
        %10 = "stencil.access"(%5) {offset = dense<[0, 0]>} : (TEMP) -> (f64)
        %11 = "arith.constant"() {value = KAPPA : f64} : () -> (f64)
        %12 = "arith.constant"() {value = 4.0 : f64} : () -> (f64)
        %13 = "arith.addf"(%6, %7) : (f64, f64) -> (f64)
        %14 = "arith.addf"(%13, %8) : (f64, f64) -> (f64)
        %15 = "arith.addf"(%14, %9) : (f64, f64) -> (f64)
        %16 = "arith.mulf"(%10, %12) : (f64, f64) -> (f64)
        %17 = "arith.subf"(%15, %16) : (f64, f64) -> (f64)
        %18 = "arith.mulf"(%17, %11) : (f64, f64) -> (f64)
        %19 = "arith.addf"(%10, %18) : (f64, f64) -> (f64)
        "stencil.return"(%19) : (f64) -> ()
      }) : (TEMP) -> (OUT)
      "stencil.store"(%4, %2) {lb = dense<[0, 0]>, ub = dense<[N, N]>} : (OUT, FIELD) -> ()
      "func.return"() : () -> ()
    }) : () -> ()
    |}
  in
  let substitute pat by str =
    let buf = Buffer.create (String.length str) in
    let pl = String.length pat in
    let i = ref 0 in
    while !i < String.length str do
      if
        !i + pl <= String.length str
        && String.sub str !i pl = pat
      then begin
        Buffer.add_string buf by;
        i := !i + pl
      end
      else begin
        Buffer.add_char buf str.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let bound = Printf.sprintf "[-1,%d]" (n + 1) in
  let src =
    template
    |> substitute "FIELD"
         (Printf.sprintf "!stencil.field<%s x %s x f64>" bound bound)
    |> substitute "TEMP"
         (Printf.sprintf "!stencil.temp<%s x %s x f64>" bound bound)
    |> substitute "OUT"
         (Printf.sprintf "!stencil.temp<[0,%d] x [0,%d] x f64>" n n)
    |> substitute "KAPPA" (Typesys.float_repr k)
    |> substitute "N" (string_of_int n)
  in
  Parser.parse_string src

let init i j = Float.sin (float_of_int ((3 * i) + (2 * j)) *. 0.17)

let mkf () =
  let b =
    Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ n + 2; n + 2 ] Typesys.f64
  in
  for i = -1 to n do
    for j = -1 to n do
      Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
    done
  done;
  b

(* Run [steps] steps through the shared CPU pipeline, swapping buffers on
   the host side; returns the final buffer. *)
let run_steps ~func ~arg_order compiled steps =
  let a = rebase (mkf ()) and b = rebase (mkf ()) in
  let cur = ref a and nxt = ref b in
  for _ = 1 to steps do
    let args =
      match arg_order with
      | `Src_dst -> [ Interp.Rtval.Rbuf !cur; Interp.Rtval.Rbuf !nxt ]
      | `Dst_src -> [ Interp.Rtval.Rbuf !nxt; Interp.Rtval.Rbuf !cur ]
    in
    ignore (Driver.Simulate.run_serial ~func compiled args);
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

let compile m = Core.Pipeline.compile Core.Pipeline.Cpu_sequential m

(* The Devito module has its own internal time loop; run it for [steps]. *)
let run_devito steps =
  let g = Devito.Symbolic.grid ~dt [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  let _, m =
    Devito.Operator.operator ~name: "heat" ~timesteps: steps ~elt: Typesys.f64
      eqn
  in
  let compiled = compile m in
  let a = rebase (mkf ()) and b = rebase (mkf ()) in
  match
    Driver.Simulate.run_serial ~func: "heat" compiled
      [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ]
  with
  | [ Interp.Rtval.Rbuf _; Interp.Rtval.Rbuf latest ] -> latest
  | _ -> Alcotest.fail "expected two buffers"

let test_three_frontends_agree () =
  let steps = 5 in
  let devito_result = run_devito steps in
  let psyclone_result =
    run_steps ~func: "heat" ~arg_order: `Dst_src (compile (psyclone_heat ()))
      steps
  in
  let textual_result =
    run_steps ~func: "heat" ~arg_order: `Src_dst (compile (textual_heat ()))
      steps
  in
  let diff name a b =
    (* Compare interiors only: the Devito path rotates buffers internally,
       so halos may hold different history. *)
    let worst = ref 0. in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let va = Interp.Rtval.as_float (Interp.Rtval.get a [ i + 1; j + 1 ]) in
        let vb = Interp.Rtval.as_float (Interp.Rtval.get b [ i + 1; j + 1 ]) in
        worst := Float.max !worst (Float.abs (va -. vb))
      done
    done;
    check float_c name 0. !worst
  in
  diff "devito == psyclone" devito_result psyclone_result;
  diff "devito == textual IR" devito_result textual_result

(* 3D distribution with the 3D slicing strategy, fully lowered. *)
let test_heat3d_distributed () =
  let n3 = 8 and steps = 3 and ranks = 8 in
  let g = Devito.Symbolic.grid ~dt: 0.05 [ n3; n3; n3 ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.4 *: laplace u)
  in
  let _, m =
    Devito.Operator.operator ~name: "heat3" ~timesteps: steps
      ~elt: Typesys.f64 eqn
  in
  let init i j kk =
    Float.sin (float_of_int ((9 * i) + (5 * j) + (2 * kk)) *. 0.11)
  in
  let mkf3 () =
    let b =
      Interp.Rtval.alloc_buffer ~lo: [ -1; -1; -1 ]
        [ n3 + 2; n3 + 2; n3 + 2 ] Typesys.f64
    in
    for i = -1 to n3 do
      for j = -1 to n3 do
        for kk = -1 to n3 do
          Interp.Rtval.set b [ i; j; kk ] (Interp.Rtval.Rf (init i j kk))
        done
      done
    done;
    b
  in
  let serial =
    match
      Driver.Simulate.run_serial ~func: "heat3" m
        [ Interp.Rtval.Rbuf (mkf3 ()); Interp.Rtval.Rbuf (mkf3 ()) ]
    with
    | [ _; Interp.Rtval.Rbuf latest ] -> latest
    | _ -> Alcotest.fail "expected buffers"
  in
  let dm =
    Core.Distribute.run
      (Core.Distribute.options ~ranks ~strategy: Core.Decomposition.Slice3d ())
      m
  in
  let fop = Option.get (Op.lookup_symbol dm "heat3") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let lowered =
    Core.Mpi_to_func.run
      (Core.Dmp_to_mpi.run
         (Core.Stencil_to_loops.run ~style: Core.Stencil_to_loops.Sequential
            (Core.Swap_elim.run dm)))
  in
  let interior = List.map2 (fun d p -> d / p) [ n3; n3; n3 ] grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let global = mkf3 () in
  let gathered = mkf3 () in
  ignore
    (Driver.Simulate.run_spmd ~ranks ~func: "heat3"
       ~make_args: (fun ctx ->
         let rank = Mpi_sim.rank ctx in
         List.init 2 (fun _ ->
             Interp.Rtval.Rbuf
               (rebase
                  (Driver.Domain.scatter_field ~global ~grid ~local_bounds
                     ~rank))))
       ~collect: (fun ctx _ results ->
         match results with
         | [ _; Interp.Rtval.Rbuf latest ] ->
             Driver.Domain.gather_interior ~origin ~global: gathered
               ~local: latest ~grid ~interior ~rank: (Mpi_sim.rank ctx) ()
         | _ -> Alcotest.fail "expected buffers")
       lowered);
  let worst = ref 0. in
  for i = 0 to n3 - 1 do
    for j = 0 to n3 - 1 do
      for kk = 0 to n3 - 1 do
        let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j; kk ]) in
        let d =
          Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j; kk ])
        in
        worst := Float.max !worst (Float.abs (s -. d))
      done
    done
  done;
  check float_c "3D distributed == serial" 0. !worst

let suite =
  [
    Alcotest.test_case "three frontends, one stack, same numbers" `Quick
      test_three_frontends_agree;
    Alcotest.test_case "heat3d distributed (2x2x2, func-calls)" `Quick
      test_heat3d_distributed;
  ]

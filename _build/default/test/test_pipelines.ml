(* Coverage of the named pipelines and additional cross-cutting properties:
   every pipeline compiles + verifies + (where executable) runs the heat
   program correctly; boundary conditions encoded with stencil.index and
   scf.if survive all lowerings; qcheck properties for decomposition
   partitioning. *)

open Ir
open Core

let check = Alcotest.check
let float_c = Alcotest.float 1e-6

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

(* --- every named pipeline compiles and verifies --- *)

let test_named_pipelines_compile () =
  let m = Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 2 in
  List.iter
    (fun (name, pipeline) ->
      let out = Pass.run_pipeline pipeline m in
      try Verifier.verify ~checks: Registry.checks out
      with Verifier.Verification_error msg ->
        Alcotest.failf "pipeline %s: %s" name msg)
    Pipeline.named_pipelines

(* The shared-memory pipelines all compute the same answer. *)
let test_executable_pipelines_agree () =
  let m = Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 3 in
  let init i j = Float.sin (float_of_int ((2 * i) + j)) in
  let reference = ref None in
  List.iter
    (fun target ->
      let compiled = Pipeline.compile target m in
      let a = rebase (Programs.make_field_2d ~nx: 8 ~ny: 8 init) in
      let b = rebase (Programs.make_field_2d ~nx: 8 ~ny: 8 init) in
      ignore
        (Driver.Simulate.run_serial ~func: "run" compiled
           [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ]);
      match !reference with
      | None -> reference := Some (a, b)
      | Some (ra, rb) ->
          check float_c
            (Printf.sprintf "%s matches" (Pipeline.target_name target))
            0.
            (Float.max
               (Driver.Simulate.max_abs_diff a ra)
               (Driver.Simulate.max_abs_diff b rb)))
    [
      Pipeline.Cpu_sequential;
      Pipeline.Cpu_openmp { tiles = [ 4; 4 ] };
      Pipeline.Gpu { managed = false };
      Pipeline.Gpu { managed = true };
      Pipeline.Fpga { optimized = false };
      Pipeline.Fpga { optimized = true };
    ]

(* --- boundary conditions via stencil.index + scf.if (paper §4.1: the
   dialect can encode boundary conditions manually as conditionals) --- *)

let bc_module ~n : Op.t =
  let fty = Stencil.field_ty [ Typesys.bound (-1) (n + 1) ] Typesys.f64 in
  let f =
    Dialects.Func.define "bc" ~arg_tys: [ fty; fty ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ a; out ] ->
            let t = Stencil.load_op bld a in
            let res =
              Stencil.apply_op bld ~inputs: [ t ]
                ~out_bounds: [ Typesys.bound 0 n ] ~elt: Typesys.f64
                ~n_results: 1 (fun ab targs ->
                  match targs with
                  | [ u ] ->
                      (* Dirichlet edges: out[i] = 0 at i = 0 and n-1,
                         interior gets the 3-point average. *)
                      let idx = Stencil.index_op ab ~dim: 0 in
                      let zero = Dialects.Arith.const_index ab 0 in
                      let last = Dialects.Arith.const_index ab (n - 1) in
                      let at_lo = Dialects.Arith.cmp_i ab Dialects.Arith.Eq idx zero in
                      let at_hi = Dialects.Arith.cmp_i ab Dialects.Arith.Eq idx last in
                      let on_edge =
                        Dialects.Arith.binop ab Dialects.Arith.ori at_lo at_hi
                      in
                      let results =
                        Dialects.Scf.if_op ab on_edge
                          ~res_tys: [ Typesys.f64 ]
                          ~then_: (fun b ->
                            let z = Dialects.Arith.const_float b 0. in
                            Dialects.Scf.yield_op b [ z ])
                          ~else_: (fun b ->
                            let l = Stencil.access_op b u [ -1 ] in
                            let c = Stencil.access_op b u [ 0 ] in
                            let r = Stencil.access_op b u [ 1 ] in
                            let third = Dialects.Arith.const_float b (1. /. 3.) in
                            let s = Dialects.Arith.add_f b l c in
                            let s = Dialects.Arith.add_f b s r in
                            let avg = Dialects.Arith.mul_f b s third in
                            Dialects.Scf.yield_op b [ avg ])
                      in
                      Stencil.return_vals ab results
                  | _ -> assert false)
            in
            Stencil.store_op bld (List.hd res) out ~lb: [ 0 ] ~ub: [ n ];
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  Op.module_op [ f ]

let test_boundary_conditions () =
  let n = 10 in
  let m = bc_module ~n in
  Verifier.verify ~checks: Registry.checks m;
  let mk () = Programs.make_field_1d ~n (fun i -> float_of_int (i + 2)) in
  (* Stencil-level execution. *)
  let a1 = mk () and o1 = mk () in
  ignore
    (Driver.Simulate.run_serial ~func: "bc" m
       [ Interp.Rtval.Rbuf a1; Interp.Rtval.Rbuf o1 ]);
  check float_c "left edge zero" 0.
    (Interp.Rtval.as_float (Interp.Rtval.get o1 [ 0 ]));
  check float_c "right edge zero" 0.
    (Interp.Rtval.as_float (Interp.Rtval.get o1 [ n - 1 ]));
  check float_c "interior average" 5.
    (Interp.Rtval.as_float (Interp.Rtval.get o1 [ 3 ]));
  (* And after the CPU lowering. *)
  let lowered = Pipeline.compile Pipeline.Cpu_sequential m in
  let a2 = rebase (mk ()) and o2 = rebase (mk ()) in
  ignore
    (Driver.Simulate.run_serial ~func: "bc" lowered
       [ Interp.Rtval.Rbuf a2; Interp.Rtval.Rbuf o2 ]);
  check float_c "lowered agrees" 0. (Driver.Simulate.max_abs_diff o1 o2)

(* --- qcheck: decomposition partitions the domain exactly --- *)

let partition_prop =
  QCheck.Test.make ~count: 100
    ~name: "rank interiors partition the global domain"
    QCheck.(
      make
        Gen.(
          let* ranks = oneofl [ 2; 4; 8; 16 ] in
          let* strategy = oneofl [ 0; 1; 2 ] in
          let* mult = int_range 1 4 in
          return (ranks, strategy, mult)))
    (fun (ranks, strategy_i, mult) ->
      let strategy =
        match strategy_i with
        | 0 -> Decomposition.Slice1d
        | 1 -> Decomposition.Slice2d
        | _ -> Decomposition.Slice3d
      in
      let rank = 3 in
      let grid = Decomposition.grid_of strategy ~ranks ~rank in
      let interior = List.map (fun g -> g * mult * 2) grid in
      let local = Decomposition.local_interior ~interior ~grid in
      (* Every global cell is owned by exactly one rank. *)
      let counts = Hashtbl.create 64 in
      let strides = Core.Dmp_to_mpi.grid_strides grid in
      for r = 0 to ranks - 1 do
        let coords = List.map2 (fun g s -> r / s mod g) grid strides in
        let offset = List.map2 (fun c n -> c * n) coords local in
        let rec iter dims acc =
          match dims with
          | [] ->
              let key = List.rev acc in
              Hashtbl.replace counts key
                (1 + try Hashtbl.find counts key with Not_found -> 0)
          | n :: rest ->
              for i = 0 to n - 1 do
                iter rest ((i :: acc) : int list)
              done
        in
        let rec iter_local dims off acc =
          match (dims, off) with
          | [], [] ->
              let key = List.rev acc in
              Hashtbl.replace counts key
                (1 + try Hashtbl.find counts key with Not_found -> 0)
          | n :: rest, o :: orest ->
              for i = 0 to n - 1 do
                iter_local rest orest ((o + i) :: acc)
              done
          | _ -> ()
        in
        ignore iter;
        iter_local local offset []
      done;
      let total = List.fold_left ( * ) 1 interior in
      Hashtbl.length counts = total
      && Hashtbl.fold (fun _ c ok -> ok && c = 1) counts true)

(* --- qcheck: every exchange's send region lies inside the interior and
   its receive region inside the halo --- *)

let exchange_regions_prop =
  QCheck.Test.make ~count: 200 ~name: "exchange regions are well-placed"
    QCheck.(
      make
        Gen.(
          let* rank = int_range 1 3 in
          let* interior = list_size (return rank) (int_range 4 16) in
          let* radius = int_range 1 2 in
          let* diag = bool in
          return (interior, radius, diag)))
    (fun (interior, radius, diag) ->
      let rank = List.length interior in
      let grid = List.map (fun _ -> 2) interior in
      let halo = Array.make rank (-radius, radius) in
      let mode =
        if diag then Decomposition.Diagonals else Decomposition.Faces
      in
      let exs = Decomposition.exchanges ~mode ~interior ~halo ~grid () in
      List.for_all
        (fun (e : Typesys.exchange) ->
          List.for_all2
            (fun d n_d ->
              let off = List.nth e.Typesys.ex_offset d in
              let sz = List.nth e.Typesys.ex_size d in
              let src = off + List.nth e.Typesys.ex_source_offset d in
              (* receive region within [-radius, n+radius) *)
              off >= -radius
              && off + sz <= n_d + radius
              (* send region within the interior [0, n) *)
              && src >= 0
              && src + sz <= n_d)
            (List.init rank (fun d -> d))
            interior)
        exs)

(* --- qcheck: textual round-trip of exchange attributes --- *)

let exchange_attr_roundtrip_prop =
  QCheck.Test.make ~count: 200 ~name: "exchange attr print/parse round-trip"
    QCheck.(
      make
        Gen.(
          let* rank = int_range 1 3 in
          let v k = list_size (return rank) (int_range (-k) k) in
          let* ex_offset = v 8 in
          let* ex_size = list_size (return rank) (int_range 1 9) in
          let* ex_source_offset = v 8 in
          let* ex_neighbor = v 1 in
          return
            Typesys.{ ex_offset; ex_size; ex_source_offset; ex_neighbor }))
    (fun e ->
      let attr = Typesys.Exchange_attr e in
      let op =
        Op.make "test.op" ~attrs: [ ("x", attr) ]
      in
      let s = Printer.module_to_string (Op.module_op [ op ]) in
      let m = Parser.parse_string s in
      match Op.module_ops m with
      | [ op' ] -> Op.attr op' "x" = Some attr
      | _ -> false)

let suite =
  [
    Alcotest.test_case "named pipelines compile+verify" `Quick
      test_named_pipelines_compile;
    Alcotest.test_case "executable pipelines agree" `Quick
      test_executable_pipelines_agree;
    Alcotest.test_case "boundary conditions via index+if" `Quick
      test_boundary_conditions;
    QCheck_alcotest.to_alcotest partition_prop;
    QCheck_alcotest.to_alcotest exchange_regions_prop;
    QCheck_alcotest.to_alcotest exchange_attr_roundtrip_prop;
  ]

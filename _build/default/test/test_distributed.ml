(* End-to-end distributed-memory validation: the distributed execution on N
   simulated ranks must bit-match the serial execution, at every lowering
   stage — (A) stencil + dmp, (B) loops + dmp, (C) loops + mpi dialect, and
   (D) fully lowered MPI_* function calls.

   Also: unit tests for decomposition arithmetic, halo inference and the
   swap-elimination dataflow. *)

open Ir
open Core

let check = Alcotest.check
let int_c = Alcotest.int

(* --- decomposition unit tests --- *)

let test_grid_shapes () =
  check (Alcotest.list int_c) "1d" [ 8; 1 ]
    (Decomposition.grid_of Decomposition.Slice1d ~ranks: 8 ~rank: 2);
  check (Alcotest.list int_c) "2d" [ 4; 2 ]
    (Decomposition.grid_of Decomposition.Slice2d ~ranks: 8 ~rank: 2);
  check (Alcotest.list int_c) "2d square" [ 4; 4 ]
    (Decomposition.grid_of Decomposition.Slice2d ~ranks: 16 ~rank: 2);
  check (Alcotest.list int_c) "3d" [ 2; 2; 2 ]
    (Decomposition.grid_of Decomposition.Slice3d ~ranks: 8 ~rank: 3);
  check (Alcotest.list int_c) "3d 64" [ 4; 4; 4 ]
    (Decomposition.grid_of Decomposition.Slice3d ~ranks: 64 ~rank: 3);
  check (Alcotest.list int_c) "2d on 3d domain" [ 4; 2; 1 ]
    (Decomposition.grid_of Decomposition.Slice2d ~ranks: 8 ~rank: 3)

let test_grid_product () =
  (* The grid always covers exactly the rank count. *)
  List.iter
    (fun ranks ->
      List.iter
        (fun strategy ->
          let g = Decomposition.grid_of strategy ~ranks ~rank: 3 in
          check int_c
            (Printf.sprintf "product for %d ranks" ranks)
            ranks
            (List.fold_left ( * ) 1 g))
        [ Decomposition.Slice1d; Decomposition.Slice2d; Decomposition.Slice3d ])
    [ 1; 2; 4; 6; 8; 12; 16; 32; 64; 128 ]

let test_local_bounds () =
  let bs =
    Decomposition.local_bounds ~interior: [ 64; 64 ] ~grid: [ 4; 2 ]
      ~halo: [| (-2, 2); (-1, 1) |]
  in
  check (Alcotest.list int_c) "los" [ -2; -1 ]
    (List.map (fun (b : Typesys.bound) -> b.Typesys.lo) bs);
  check (Alcotest.list int_c) "his" [ 18; 33 ]
    (List.map (fun (b : Typesys.bound) -> b.Typesys.hi) bs)

let test_indivisible_extent () =
  (try
     ignore
       (Decomposition.local_bounds ~interior: [ 10 ] ~grid: [ 3 ]
          ~halo: [| (-1, 1) |]);
     Alcotest.fail "expected error"
   with Op.Ill_formed _ -> ())

let test_exchange_generation () =
  let exs =
    Decomposition.exchanges ~interior: [ 16; 8 ] ~halo: [| (-2, 2); (-1, 1) |]
      ~grid: [ 2; 2 ] ()
  in
  check int_c "4 exchanges" 4 (List.length exs);
  (* Low-side exchange along dim 0: receive [-2,0) x [0,8). *)
  let e = List.hd exs in
  check (Alcotest.list int_c) "offset" [ -2; 0 ] e.Typesys.ex_offset;
  check (Alcotest.list int_c) "size" [ 2; 8 ] e.Typesys.ex_size;
  check (Alcotest.list int_c) "source shift" [ 2; 0 ] e.Typesys.ex_source_offset;
  check (Alcotest.list int_c) "neighbor" [ -1; 0 ] e.Typesys.ex_neighbor;
  check int_c "volume" (2 * (2 * 8) + 2 * (16 * 1))
    (Decomposition.exchange_volume exs)

let test_no_exchange_on_undecomposed_dim () =
  let exs =
    Decomposition.exchanges ~interior: [ 16; 8 ] ~halo: [| (-1, 1); (-1, 1) |]
      ~grid: [ 4; 1 ] ()
  in
  check int_c "only dim-0 exchanges" 2 (List.length exs);
  List.iter
    (fun (e : Typesys.exchange) ->
      check int_c "dim1 direction zero" 0 (List.nth e.Typesys.ex_neighbor 1))
    exs

(* --- halo inference from stencil access offsets --- *)

let test_halo_inference () =
  let m = Programs.heat2d_module ~nx: 8 ~ny: 8 in
  let halo = ref [||] in
  Op.walk
    (fun o ->
      if o.Op.name = Stencil.apply then halo := Stencil.combined_halo o ~rank: 2)
    m;
  check (Alcotest.pair int_c int_c) "dim0" (-1, 1) !halo.(0);
  check (Alcotest.pair int_c int_c) "dim1" (-1, 1) !halo.(1)

(* --- swap insertion and elimination --- *)

let distribute ?(ranks = 4) ?(strategy = Decomposition.Slice2d) m =
  Distribute.run (Distribute.options ~ranks ~strategy ()) m

let count_swaps m = Transforms.Statistics.count m "dmp.swap"

let test_swap_inserted () =
  let m = distribute (Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 2) in
  Verifier.verify ~checks: Registry.checks m;
  check int_c "one swap per load" 1 (count_swaps m)

let test_swap_elim_dedupes () =
  (* A program loading the same (unmodified) field twice needs one swap. *)
  let n = 8 in
  let fty = Stencil.field_ty [ Typesys.bound (-1) (n + 1) ] Typesys.f64 in
  let f =
    Dialects.Func.define "step" ~arg_tys: [ fty; fty; fty ] ~res_tys: []
      (fun bld args ->
        match args with
        | [ a; out1; out2 ] ->
            let t1 = Stencil.load_op bld a in
            let r1 =
              Stencil.apply_op bld ~inputs: [ t1 ]
                ~out_bounds: [ Typesys.bound 0 n ] ~elt: Typesys.f64
                ~n_results: 1 Programs.jacobi1d_step_body
            in
            Stencil.store_op bld (List.hd r1) out1 ~lb: [ 0 ] ~ub: [ n ];
            (* Second load of the *same untouched* field. *)
            let t2 = Stencil.load_op bld a in
            let r2 =
              Stencil.apply_op bld ~inputs: [ t2 ]
                ~out_bounds: [ Typesys.bound 0 n ] ~elt: Typesys.f64
                ~n_results: 1 Programs.jacobi1d_step_body
            in
            Stencil.store_op bld (List.hd r2) out2 ~lb: [ 0 ] ~ub: [ n ];
            Dialects.Func.return_op bld []
        | _ -> assert false)
  in
  let m = distribute ~strategy: Decomposition.Slice1d (Op.module_op [ f ]) in
  check int_c "two swaps before elimination" 2 (count_swaps m);
  let m' = Swap_elim.run m in
  check int_c "one swap after elimination" 1 (count_swaps m');
  (* A swap inside a time loop must never be eliminated. *)
  let timeloop =
    distribute (Programs.heat2d_timeloop_module ~nx: 8 ~ny: 8 ~steps: 2)
  in
  check int_c "loop swap kept" 1 (count_swaps (Swap_elim.run timeloop))

(* --- end-to-end distributed equivalence --- *)

type stage = Stencil_dmp | Loops_dmp | Loops_mpi | Func_calls

let stage_name = function
  | Stencil_dmp -> "stencil+dmp"
  | Loops_dmp -> "loops+dmp"
  | Loops_mpi -> "loops+mpi"
  | Func_calls -> "func-calls"

let lower_to stage m =
  match stage with
  | Stencil_dmp -> m
  | Loops_dmp ->
      Stencil_to_loops.run ~style: Stencil_to_loops.Sequential (Swap_elim.run m)
  | Loops_mpi ->
      Dmp_to_mpi.run
        (Stencil_to_loops.run ~style: Stencil_to_loops.Sequential
           (Swap_elim.run m))
  | Func_calls ->
      Mpi_to_func.run
        (Dmp_to_mpi.run
           (Stencil_to_loops.run ~style: Stencil_to_loops.Sequential
              (Swap_elim.run m)))

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

(* Run the heat2d time loop distributed at the given stage and compare the
   gathered interior with the serial run. *)
let heat_distributed_matches_serial ~ranks ~strategy ~stage () =
  let nx = 16 and ny = 16 and steps = 4 in
  let init i j = Float.sin (float_of_int ((3 * i) + j)) in
  let m = Programs.heat2d_timeloop_module ~nx ~ny ~steps in
  (* Serial reference. *)
  let ga = Programs.make_field_2d ~nx ~ny init in
  let gb = Programs.make_field_2d ~nx ~ny init in
  let serial_eng = Interp.Engine.create m in
  let serial_result =
    match
      Interp.Engine.run serial_eng "run"
        [ Interp.Rtval.Rbuf ga; Interp.Rtval.Rbuf gb ]
    with
    | [ Interp.Rtval.Rbuf latest; _ ] -> latest
    | _ -> Alcotest.fail "expected two buffers"
  in
  (* Distributed run. *)
  let dm = Distribute.run (Distribute.options ~ranks ~strategy ()) m in
  let fop =
    match Op.lookup_symbol dm "run" with
    | Some f -> f
    | None -> Alcotest.fail "missing run function"
  in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds =
    match Driver.Domain.field_arg_bounds fop with
    | bs :: _ -> bs
    | [] ->
        (* Lowered stages erase field types; recompute from the source. *)
        []
  in
  let local_bounds =
    if local_bounds <> [] then local_bounds
    else
      Distribute.localize_bounds
        ~domain: [ nx; ny ] ~grid
        [ Typesys.bound (-1) (nx + 1); Typesys.bound (-1) (ny + 1) ]
  in
  let lowered = lower_to stage dm in
  Verifier.verify ~checks: Registry.checks lowered;
  let interior =
    List.map2
      (fun n parts -> n / parts)
      [ nx; ny ] grid
  in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let global_a = Programs.make_field_2d ~nx ~ny init in
  let gathered = Programs.make_field_2d ~nx ~ny (fun _ _ -> nan) in
  let needs_rebase = stage <> Stencil_dmp in
  ignore
    (Driver.Simulate.run_spmd ~ranks ~func: "run"
       ~make_args: (fun ctx ->
         let rank = Mpi_sim.rank ctx in
         let la =
           Driver.Domain.scatter_field ~global: global_a ~grid ~local_bounds
             ~rank
         in
         let lb =
           Driver.Domain.scatter_field ~global: global_a ~grid ~local_bounds
             ~rank
         in
         let fix b = if needs_rebase then rebase b else b in
         [ Interp.Rtval.Rbuf (fix la); Interp.Rtval.Rbuf (fix lb) ])
       ~collect: (fun ctx _args results ->
         match results with
         | Interp.Rtval.Rbuf latest :: _ ->
             Driver.Domain.gather_interior
               ~origin: (if needs_rebase then origin else List.map (fun _ -> 0) origin)
               ~global: gathered ~local: latest ~grid ~interior
               ~rank: (Mpi_sim.rank ctx) ()
         | _ -> Alcotest.fail "expected buffers")
       lowered);
  (* Compare interiors. *)
  let worst = ref 0. in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      let s = Interp.Rtval.as_float (Interp.Rtval.get serial_result [ i; j ]) in
      let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
      worst := Float.max !worst (Float.abs (s -. d))
    done
  done;
  check (Alcotest.float 1e-9)
    (Printf.sprintf "distributed %s == serial" (stage_name stage))
    0. !worst

let stage_cases =
  List.concat_map
    (fun stage ->
      [
        Alcotest.test_case
          (Printf.sprintf "heat2d 4 ranks 2d-slice (%s)" (stage_name stage))
          `Quick
          (heat_distributed_matches_serial ~ranks: 4
             ~strategy: Decomposition.Slice2d ~stage);
      ])
    [ Stencil_dmp; Loops_dmp; Loops_mpi; Func_calls ]

let extra_topology_cases =
  [
    Alcotest.test_case "heat2d 2 ranks 1d-slice (func-calls)" `Quick
      (heat_distributed_matches_serial ~ranks: 2
         ~strategy: Decomposition.Slice1d ~stage: Func_calls);
    Alcotest.test_case "heat2d 8 ranks 2d-slice (func-calls)" `Quick
      (heat_distributed_matches_serial ~ranks: 8
         ~strategy: Decomposition.Slice2d ~stage: Func_calls);
    Alcotest.test_case "heat2d 16 ranks 2d-slice (stencil+dmp)" `Quick
      (heat_distributed_matches_serial ~ranks: 16
         ~strategy: Decomposition.Slice2d ~stage: Stencil_dmp);
    Alcotest.test_case "heat2d 1 rank degenerate (func-calls)" `Quick
      (heat_distributed_matches_serial ~ranks: 1
         ~strategy: Decomposition.Slice2d ~stage: Func_calls);
  ]

(* Property: random rank counts and initializations agree with serial at the
   final stage. *)
let distributed_prop =
  QCheck.Test.make ~count: 8 ~name: "random distributed runs match serial"
    QCheck.(
      make
        Gen.(
          pair (oneofl [ 2; 4; 8 ]) (int_range 0 1000)))
    (fun (ranks, seed) ->
      let nx = 8 and ny = 8 and steps = 2 in
      let init i j =
        Float.sin (float_of_int (seed + (5 * i) + j))
      in
      let m = Programs.heat2d_timeloop_module ~nx ~ny ~steps in
      let ga = Programs.make_field_2d ~nx ~ny init in
      let gb = Programs.make_field_2d ~nx ~ny init in
      let serial =
        match
          Driver.Simulate.run_serial ~func: "run" m
            [ Interp.Rtval.Rbuf ga; Interp.Rtval.Rbuf gb ]
        with
        | [ Interp.Rtval.Rbuf latest; _ ] -> latest
        | _ -> failwith "bad results"
      in
      let dm =
        Distribute.run
          (Distribute.options ~ranks ~strategy: Decomposition.Slice2d ())
          m
      in
      let fop = Option.get (Op.lookup_symbol dm "run") in
      let grid = Driver.Domain.topology_of fop in
      let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
      let lowered = lower_to Func_calls dm in
      let interior = List.map2 (fun n p -> n / p) [ nx; ny ] grid in
      let origin =
        List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
      in
      let global_a = Programs.make_field_2d ~nx ~ny init in
      let gathered = Programs.make_field_2d ~nx ~ny (fun _ _ -> nan) in
      ignore
        (Driver.Simulate.run_spmd ~ranks ~func: "run"
           ~make_args: (fun ctx ->
             let rank = Mpi_sim.rank ctx in
             let mk () =
               rebase
                 (Driver.Domain.scatter_field ~global: global_a ~grid
                    ~local_bounds ~rank)
             in
             [ Interp.Rtval.Rbuf (mk ()); Interp.Rtval.Rbuf (mk ()) ])
           ~collect: (fun ctx _ results ->
             match results with
             | Interp.Rtval.Rbuf latest :: _ ->
                 Driver.Domain.gather_interior ~origin ~global: gathered
                   ~local: latest ~grid ~interior ~rank: (Mpi_sim.rank ctx) ()
             | _ -> failwith "bad results")
           lowered);
      let ok = ref true in
      for i = 0 to nx - 1 do
        for j = 0 to ny - 1 do
          let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
          let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
          if Float.abs (s -. d) > 1e-9 then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "grid shapes" `Quick test_grid_shapes;
    Alcotest.test_case "grid covers ranks" `Quick test_grid_product;
    Alcotest.test_case "local bounds" `Quick test_local_bounds;
    Alcotest.test_case "indivisible extent rejected" `Quick
      test_indivisible_extent;
    Alcotest.test_case "exchange generation" `Quick test_exchange_generation;
    Alcotest.test_case "no exchange on undecomposed dim" `Quick
      test_no_exchange_on_undecomposed_dim;
    Alcotest.test_case "halo inference" `Quick test_halo_inference;
    Alcotest.test_case "swap inserted per load" `Quick test_swap_inserted;
    Alcotest.test_case "swap elimination" `Quick test_swap_elim_dedupes;
  ]
  @ stage_cases @ extra_topology_cases
  @ [ QCheck_alcotest.to_alcotest distributed_prop ]

(* --- diagonal exchanges (the paper's future-work extension) --- *)

let test_direction_enumeration () =
  check int_c "2D faces" 4
    (List.length (Decomposition.directions ~rank: 2 ~mode: Decomposition.Faces));
  check int_c "2D with diagonals" 8
    (List.length
       (Decomposition.directions ~rank: 2 ~mode: Decomposition.Diagonals));
  check int_c "3D faces" 6
    (List.length (Decomposition.directions ~rank: 3 ~mode: Decomposition.Faces));
  check int_c "3D with diagonals" 26
    (List.length
       (Decomposition.directions ~rank: 3 ~mode: Decomposition.Diagonals))

let test_diagonal_exchange_regions () =
  let exs =
    Decomposition.exchanges ~mode: Decomposition.Diagonals
      ~interior: [ 8; 8 ]
      ~halo: [| (-1, 1); (-1, 1) |]
      ~grid: [ 2; 2 ] ()
  in
  check int_c "4 faces + 4 corners" 8 (List.length exs);
  (* The (+1,+1) corner receives the 1x1 region at (8,8) from data at
     (7,7). *)
  let corner =
    List.find (fun (e : Typesys.exchange) -> e.Typesys.ex_neighbor = [ 1; 1 ]) exs
  in
  check (Alcotest.list int_c) "corner offset" [ 8; 8 ] corner.Typesys.ex_offset;
  check (Alcotest.list int_c) "corner size" [ 1; 1 ] corner.Typesys.ex_size;
  check (Alcotest.list int_c) "corner source" [ -1; -1 ]
    corner.Typesys.ex_source_offset

(* A 9-point box stencil genuinely reads corner neighbors, so distributing
   it is only correct with diagonal exchanges. *)
let box9_module ~n ~steps : Op.t =
  let bounds = [ Typesys.bound (-1) (n + 1); Typesys.bound (-1) (n + 1) ] in
  let fty = Stencil.field_ty bounds Typesys.f64 in
  let f =
    Dialects.Func.define "box" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ a; out ] ->
            let lo = Dialects.Arith.const_index bld 0 in
            let hi = Dialects.Arith.const_index bld steps in
            let st = Dialects.Arith.const_index bld 1 in
            let outs =
              Dialects.Scf.for_op bld ~lo ~hi ~step: st ~init: [ a; out ]
                (fun body _ iters ->
                  match iters with
                  | [ cur; nxt ] ->
                      let t = Stencil.load_op body cur in
                      let res =
                        Stencil.apply_op body ~inputs: [ t ]
                          ~out_bounds: [ Typesys.bound 0 n; Typesys.bound 0 n ]
                          ~elt: Typesys.f64 ~n_results: 1 (fun ab targs ->
                            match targs with
                            | [ u ] ->
                                let ninth =
                                  Dialects.Arith.const_float ab (1. /. 9.)
                                in
                                let acc = ref None in
                                for di = -1 to 1 do
                                  for dj = -1 to 1 do
                                    let v =
                                      Stencil.access_op ab u [ di; dj ]
                                    in
                                    acc :=
                                      Some
                                        (match !acc with
                                        | None -> v
                                        | Some s ->
                                            Dialects.Arith.add_f ab s v)
                                  done
                                done;
                                let avg =
                                  Dialects.Arith.mul_f ab
                                    (Option.get !acc) ninth
                                in
                                Stencil.return_vals ab [ avg ]
                            | _ -> assert false)
                      in
                      Stencil.store_op body (List.hd res) nxt ~lb: [ 0; 0 ]
                        ~ub: [ n; n ];
                      Dialects.Scf.yield_op body [ nxt; cur ]
                  | _ -> assert false)
            in
            Dialects.Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ f ]

let run_box9_distributed ?(ranks = 4) ~mode ~stage () : float =
  let n = 12 and steps = 3 in
  let init i j = Float.sin (float_of_int ((5 * i) + (3 * j))) in
  let mk_field () =
    let b =
      Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ n + 2; n + 2 ] Typesys.f64
    in
    for i = -1 to n do
      for j = -1 to n do
        Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
      done
    done;
    b
  in
  let m = box9_module ~n ~steps in
  let serial =
    match
      Driver.Simulate.run_serial ~func: "box" m
        [ Interp.Rtval.Rbuf (mk_field ()); Interp.Rtval.Rbuf (mk_field ()) ]
    with
    | [ Interp.Rtval.Rbuf latest; _ ] -> latest
    | _ -> Alcotest.fail "expected buffers"
  in
  let dm =
    Distribute.run
      (Distribute.options ~mode ~ranks ~strategy: Decomposition.Slice2d ())
      m
  in
  let fop = Option.get (Op.lookup_symbol dm "box") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let lowered = lower_to stage dm in
  Verifier.verify ~checks: Registry.checks lowered;
  let interior = List.map2 (fun d p -> d / p) [ n; n ] grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let needs_rebase = stage <> Stencil_dmp in
  let global = mk_field () in
  let gathered = mk_field () in
  ignore
    (Driver.Simulate.run_spmd ~ranks ~func: "box"
       ~make_args: (fun ctx ->
         let rank = Mpi_sim.rank ctx in
         List.init 2 (fun _ ->
             let b =
               Driver.Domain.scatter_field ~global ~grid ~local_bounds ~rank
             in
             Interp.Rtval.Rbuf (if needs_rebase then rebase b else b)))
       ~collect: (fun ctx _ results ->
         match results with
         | Interp.Rtval.Rbuf latest :: _ ->
             Driver.Domain.gather_interior
               ~origin: (if needs_rebase then origin else [ 0; 0 ])
               ~global: gathered ~local: latest ~grid ~interior
               ~rank: (Mpi_sim.rank ctx) ()
         | _ -> Alcotest.fail "expected buffers")
       lowered);
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
      let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
      worst := Float.max !worst (Float.abs (s -. d))
    done
  done;
  !worst

let test_box9_needs_diagonals () =
  (* Face-only exchange leaves corner halos stale: the result must differ
     from the serial run (this is the prototype limitation the paper
     notes). *)
  let diff = run_box9_distributed ~mode: Decomposition.Faces ~stage: Stencil_dmp () in
  check Alcotest.bool "faces alone are insufficient" true (diff > 1e-9)

let test_box9_diagonals_correct () =
  List.iter
    (fun stage ->
      let diff = run_box9_distributed ~mode: Decomposition.Diagonals ~stage () in
      check (Alcotest.float 1e-12)
        (Printf.sprintf "diagonal exchange exact at %s" (stage_name stage))
        0. diff)
    [ Stencil_dmp; Loops_dmp; Loops_mpi; Func_calls ];
  (* A 3x3 rank grid exercises ranks with all 8 neighbors. *)
  let diff =
    run_box9_distributed ~ranks: 9 ~mode: Decomposition.Diagonals
      ~stage: Func_calls ()
  in
  check (Alcotest.float 1e-12) "3x3 grid, interior rank has 8 neighbors" 0.
    diff

let diagonal_cases =
  [
    Alcotest.test_case "direction enumeration" `Quick
      test_direction_enumeration;
    Alcotest.test_case "diagonal exchange regions" `Quick
      test_diagonal_exchange_regions;
    Alcotest.test_case "box9: faces alone insufficient" `Quick
      test_box9_needs_diagonals;
    Alcotest.test_case "box9: diagonals exact at all stages" `Quick
      test_box9_diagonals_correct;
  ]

let suite = suite @ diagonal_cases

(* --- property: arbitrary random stencils are distribution-invariant --- *)

(* Build a one-apply time-loop program from a random stencil description:
   [offsets] within radius [r], matching random weights. *)
let random_stencil_module ~n ~r ~steps ~(taps : (int list * float) list) :
    Op.t =
  let bounds = [ Typesys.bound (-r) (n + r); Typesys.bound (-r) (n + r) ] in
  let fty = Stencil.field_ty bounds Typesys.f64 in
  let f =
    Dialects.Func.define "rand" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ a; b ] ->
            let lo = Dialects.Arith.const_index bld 0 in
            let hi = Dialects.Arith.const_index bld steps in
            let st = Dialects.Arith.const_index bld 1 in
            let outs =
              Dialects.Scf.for_op bld ~lo ~hi ~step: st ~init: [ a; b ]
                (fun body _ iters ->
                  match iters with
                  | [ cur; nxt ] ->
                      let t = Stencil.load_op body cur in
                      let res =
                        Stencil.apply_op body ~inputs: [ t ]
                          ~out_bounds: [ Typesys.bound 0 n; Typesys.bound 0 n ]
                          ~elt: Typesys.f64 ~n_results: 1 (fun ab targs ->
                            match targs with
                            | [ u ] ->
                                let acc =
                                  List.fold_left
                                    (fun acc (off, w) ->
                                      let v = Stencil.access_op ab u off in
                                      let wv =
                                        Dialects.Arith.const_float ab w
                                      in
                                      let term =
                                        Dialects.Arith.mul_f ab v wv
                                      in
                                      match acc with
                                      | None -> Some term
                                      | Some acc ->
                                          Some (Dialects.Arith.add_f ab acc term))
                                    None taps
                                in
                                Stencil.return_vals ab [ Option.get acc ]
                            | _ -> assert false)
                      in
                      Stencil.store_op body (List.hd res) nxt ~lb: [ 0; 0 ]
                        ~ub: [ n; n ];
                      Dialects.Scf.yield_op body [ nxt; cur ]
                  | _ -> assert false)
            in
            Dialects.Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ f ]

let print_case (r, taps, ranks, seed) =
  Printf.sprintf "r=%d ranks=%d seed=%d taps=[%s]" r ranks seed
    (String.concat "; "
       (List.map
          (fun (o, w) ->
            Printf.sprintf "(%s)*%g"
              (String.concat "," (List.map string_of_int o))
              w)
          taps))

let random_stencil_prop =
  QCheck.Test.make ~count: 12
    ~name: "random stencils are distribution-invariant (diagonal exchange)"
    QCheck.(
      make ~print: print_case
        Gen.(
          let* r = int_range 1 2 in
          let* n_taps = int_range 1 5 in
          let* taps =
            list_size (return n_taps)
              (let* di = int_range (-r) r in
               let* dj = int_range (-r) r in
               let* w = int_range (-8) 8 in
               return ([ di; dj ], float_of_int w /. 16.))
          in
          let* ranks = oneofl [ 2; 4 ] in
          let* seed = int_range 0 999 in
          return (r, taps, ranks, seed)))
    (fun (r, taps, ranks, seed) ->
      let n = 8 and steps = 2 in
      let init i j =
        Float.sin (float_of_int (seed + (7 * i) + (3 * j)) *. 0.21)
      in
      let mkf () =
        let b =
          Interp.Rtval.alloc_buffer ~lo: [ -r; -r ]
            [ n + (2 * r); n + (2 * r) ]
            Typesys.f64
        in
        for i = -r to n + r - 1 do
          for j = -r to n + r - 1 do
            Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
          done
        done;
        b
      in
      let m = random_stencil_module ~n ~r ~steps ~taps in
      let serial =
        match
          Driver.Simulate.run_serial ~func: "rand" m
            [ Interp.Rtval.Rbuf (mkf ()); Interp.Rtval.Rbuf (mkf ()) ]
        with
        | [ Interp.Rtval.Rbuf latest; _ ] -> latest
        | _ -> failwith "bad results"
      in
      let dm =
        Distribute.run
          (Distribute.options ~mode: Decomposition.Diagonals ~ranks
             ~strategy: Decomposition.Slice2d ())
          m
      in
      let fop = Option.get (Op.lookup_symbol dm "rand") in
      let grid = Driver.Domain.topology_of fop in
      let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
      let lowered = lower_to Func_calls dm in
      let interior = List.map2 (fun d p -> d / p) [ n; n ] grid in
      let origin =
        List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
      in
      let global = mkf () in
      let gathered = mkf () in
      ignore
        (Driver.Simulate.run_spmd ~ranks ~func: "rand"
           ~make_args: (fun ctx ->
             let rank = Mpi_sim.rank ctx in
             List.init 2 (fun _ ->
                 Interp.Rtval.Rbuf
                   (rebase
                      (Driver.Domain.scatter_field ~global ~grid
                         ~local_bounds ~rank))))
           ~collect: (fun ctx _ results ->
             match results with
             | Interp.Rtval.Rbuf latest :: _ ->
                 Driver.Domain.gather_interior ~origin ~global: gathered
                   ~local: latest ~grid ~interior ~rank: (Mpi_sim.rank ctx) ()
             | _ -> failwith "bad results")
           lowered);
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
          let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
          if Float.abs (s -. d) > 1e-12 then ok := false
        done
      done;
      !ok)

let suite = suite @ [ QCheck_alcotest.to_alcotest random_stencil_prop ]


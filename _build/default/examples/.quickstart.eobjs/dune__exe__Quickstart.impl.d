examples/quickstart.ml: Arith Core Dialects Driver Float Format Func Interp Ir List Op Pipeline Printer Registry Scf Stencil Typesys Verifier

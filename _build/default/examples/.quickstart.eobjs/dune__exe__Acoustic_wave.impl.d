examples/acoustic_wave.ml: Array Core Devito Driver Float Format Interp Ir List Mpi_sim Op Option Typesys

examples/heat_diffusion.ml: Core Devito Driver Float Format Interp Ir List Machine Mpi_sim Op Option Printf String Transforms Typesys

examples/fpga_offload.mli:

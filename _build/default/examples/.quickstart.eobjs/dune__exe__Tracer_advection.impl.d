examples/tracer_advection.ml: Array Core Dialects Driver Float Format Hashtbl Interp Ir List Machine Op Psyclone String Typesys Verifier

examples/quickstart.mli:

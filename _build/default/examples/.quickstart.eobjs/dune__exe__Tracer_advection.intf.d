examples/tracer_advection.mli:

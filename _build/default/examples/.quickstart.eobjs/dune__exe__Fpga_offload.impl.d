examples/fpga_offload.ml: Core Driver Float Format Hashtbl Interp Ir List Machine Psyclone String Typesys Verifier

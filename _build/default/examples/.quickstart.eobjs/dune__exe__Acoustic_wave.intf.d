examples/acoustic_wave.mli:

(* Quickstart: the paper's running example (fig. 2 / listing 1) — a 1D
   3-point Jacobi stencil built directly against the stencil dialect API,
   compiled through the shared stack, executed, and printed at each stage.

   Run with: dune exec examples/quickstart.exe *)

open Ir
open Dialects
open Core

let n = 64
let steps = 10

(* Build the module of listing 1: load a field, apply the 3-point average,
   store the result. *)
let build_module () =
  let fty = Stencil.field_ty [ Typesys.bound (-1) (n + 1) ] Typesys.f64 in
  let fdef =
    Func.define "jacobi" ~arg_tys: [ fty; fty ] ~res_tys: [ fty; fty ]
      (fun bld args ->
        match args with
        | [ a; b ] ->
            let lo = Arith.const_index bld 0 in
            let hi = Arith.const_index bld steps in
            let step = Arith.const_index bld 1 in
            let outs =
              Scf.for_op bld ~lo ~hi ~step ~init: [ a; b ]
                (fun body _t iters ->
                  match iters with
                  | [ cur; nxt ] ->
                      let t = Stencil.load_op body cur in
                      let res =
                        Stencil.apply_op body ~inputs: [ t ]
                          ~out_bounds: [ Typesys.bound 0 n ]
                          ~elt: Typesys.f64 ~n_results: 1 (fun ab targs ->
                            match targs with
                            | [ u ] ->
                                let l = Stencil.access_op ab u [ -1 ] in
                                let c = Stencil.access_op ab u [ 0 ] in
                                let r = Stencil.access_op ab u [ 1 ] in
                                let third =
                                  Arith.const_float ab (1. /. 3.)
                                in
                                let s = Arith.add_f ab l c in
                                let s = Arith.add_f ab s r in
                                let avg = Arith.mul_f ab s third in
                                Stencil.return_vals ab [ avg ]
                            | _ -> assert false)
                      in
                      Stencil.store_op body (List.hd res) nxt ~lb: [ 0 ]
                        ~ub: [ n ];
                      Scf.yield_op body [ nxt; cur ]
                  | _ -> assert false)
            in
            Func.return_op bld outs
        | _ -> assert false)
  in
  Op.module_op [ fdef ]

let () =
  let m = build_module () in
  Format.printf "=== stencil dialect (the paper's listing 1, with a time loop) ===@.%a@."
    Printer.print_module m;
  Verifier.verify ~checks: Registry.checks m;

  (* Compile for shared-memory CPU with the tiled OpenMP pipeline. *)
  let compiled = Pipeline.compile (Pipeline.Cpu_openmp { tiles = [ 16 ] }) m in
  Format.printf "=== after the shared cpu-openmp pipeline ===@.%a@."
    Printer.print_module compiled;

  (* Execute both and compare. *)
  let init i = if i >= 24 && i < 40 then 1. else 0. in
  let make_field () =
    let b = Interp.Rtval.alloc_buffer ~lo: [ -1 ] [ n + 2 ] Typesys.f64 in
    for i = -1 to n do
      Interp.Rtval.set b [ i ] (Interp.Rtval.Rf (init i))
    done;
    b
  in
  let a1 = make_field () and b1 = make_field () in
  ignore
    (Driver.Simulate.run_serial ~func: "jacobi" m
       [ Interp.Rtval.Rbuf a1; Interp.Rtval.Rbuf b1 ]);
  let a2 = make_field () and b2 = make_field () in
  let rebase buf =
    { buf with Interp.Rtval.lo = List.map (fun _ -> 0) buf.Interp.Rtval.lo }
  in
  ignore
    (Driver.Simulate.run_serial ~func: "jacobi" compiled
       [ Interp.Rtval.Rbuf (rebase a2); Interp.Rtval.Rbuf (rebase b2) ]);
  let diff =
    Float.max
      (Driver.Simulate.max_abs_diff a1 a2)
      (Driver.Simulate.max_abs_diff b1 b2)
  in
  Format.printf "max |stencil-level - compiled| over all buffers: %g@." diff;
  assert (diff = 0.);
  Format.printf "quickstart: OK — %d Jacobi steps over %d points@." steps n

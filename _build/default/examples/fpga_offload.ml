(* FPGA offload of the PW advection scheme (the paper's Table 1 flow): the
   same Fortran source compiles to an *initial* Von-Neumann FPGA kernel and
   to the *optimized* dataflow form (streams + shift buffer + II=1
   pipelines).  Both are executed functionally by the interpreter and must
   agree; the U280 machine model then reports the modeled speedup of the
   automatic dataflow transformation.

   Run with: dune exec examples/fpga_offload.exe *)

open Ir

let shape = [ 12; 10; 8 ]

let () =
  let k = Psyclone.Benchkernels.pw_advection ~shape in
  let m = Psyclone.Codegen.compile ~elt: Typesys.f64 k in
  Format.printf "PW advection on %s via the HLS dialect@."
    (String.concat "x" (List.map string_of_int shape));

  let initial = Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Initial m in
  let optimized =
    Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Optimized m
  in
  Verifier.verify ~checks: Core.Registry.checks initial;
  Verifier.verify ~checks: Core.Registry.checks optimized;
  Format.printf
    "optimized kernel structure: %d dataflow stages, shift buffer: %b@."
    (Core.Hls.count_stages optimized)
    (Core.Hls.has_shift_buffer optimized);

  (* Execute both and compare all arrays. *)
  let init name i =
    Float.cos (float_of_int ((Hashtbl.hash name mod 11) + (2 * i)) *. 0.03)
  in
  let make_bufs () =
    List.map
      (fun (d : Psyclone.Fortran.array_decl) ->
        let bounds = Psyclone.Codegen.bounds_of_decl d in
        let shape = List.map Typesys.bound_size bounds in
        let b = Interp.Rtval.alloc_buffer shape Typesys.f64 in
        Interp.Rtval.fill b (fun i -> init d.Psyclone.Fortran.array_name i);
        b)
      k.Psyclone.Fortran.arrays
  in
  let run_on module_ bufs =
    ignore
      (Driver.Simulate.run_serial ~func: "pw_advection" module_
         (List.map (fun b -> Interp.Rtval.Rbuf b) bufs))
  in
  let bufs_initial = make_bufs () in
  let bufs_optimized = make_bufs () in
  run_on initial bufs_initial;
  run_on optimized bufs_optimized;
  let worst =
    List.fold_left2
      (fun acc a b -> Float.max acc (Driver.Simulate.max_abs_diff a b))
      0. bufs_initial bufs_optimized
  in
  Format.printf "initial vs optimized (functional): max abs diff = %g@." worst;
  assert (worst = 0.);

  (* Modeled U280 throughput at the paper's problem scales. *)
  let features = Machine.Features.of_stencil_module ~elt_bytes: 4 m in
  let external_streams = List.length (Psyclone.Fortran.external_inputs k) + 1 in
  let shape_initial = Machine.Fpga.shape_of_module initial ~f: features () in
  let shape_optimized =
    Machine.Fpga.shape_of_module optimized ~f: features ~external_streams ()
  in
  List.iter
    (fun (label, npts) ->
      let t_i = Machine.Fpga.throughput Machine.Fpga.u280 shape_initial ~points: npts in
      let t_o =
        Machine.Fpga.throughput Machine.Fpga.u280 shape_optimized ~points: npts
      in
      Format.printf
        "%-10s initial %.1e GPts/s   optimized %.1e GPts/s   speedup %.0fx@."
        label t_i t_o (t_o /. t_i))
    [ ("pw-8m", 8e6); ("pw-33m", 33e6); ("pw-134m", 134e6) ];
  Format.printf "fpga_offload: OK@."

(* NEMO tracer advection through the PSyclone frontend (the paper's §6.2
   benchmark): the Fortran-like kernel is parsed into PSy-IR, its 18 loop
   nests are recognized as stencil regions (24 computations), lowered into
   the shared stencil dialect, compiled with the tiled-OpenMP pipeline and
   checked against the independent Fortran reference interpreter.

   Run with: dune exec examples/tracer_advection.exe *)

open Ir

let shape = [ 12; 12; 8 ]
let iterations = 4

let () =
  let k = Psyclone.Benchkernels.tracer_advection ~iterations ~shape () in
  let psy = Psyclone.Psy_ir.of_kernel k in
  Format.printf
    "tracer advection: %s grid, %d outer iterations@."
    (String.concat "x" (List.map string_of_int shape))
    iterations;
  Format.printf "recognized %d stencil regions, %d stencil computations@."
    (Psyclone.Psy_ir.count_regions psy)
    (Psyclone.Psy_ir.count_computations psy);

  let m = Psyclone.Codegen.compile ~elt: Typesys.f64 k in
  Verifier.verify ~checks: Core.Registry.checks m;
  Format.printf "stencil module: %d ops@." (Op.count_ops m);

  (* Shared tiled-OpenMP CPU pipeline. *)
  let compiled =
    Core.Pipeline.compile (Core.Pipeline.Cpu_openmp { tiles = [ 8; 8; 8 ] }) m
  in
  Format.printf
    "after cpu-openmp pipeline: %d ops, %d omp.parallel regions@."
    (Op.count_ops compiled)
    (Dialects.Omp.count_regions compiled);

  (* Fortran reference (independent oracle). *)
  let init name i =
    Float.sin (float_of_int ((Hashtbl.hash name mod 17) + i) *. 0.05)
  in
  let env = Psyclone.Reference.env_of_kernel k in
  List.iter
    (fun (d : Psyclone.Fortran.array_decl) ->
      let arr = Psyclone.Reference.array env d.Psyclone.Fortran.array_name in
      Array.iteri
        (fun i _ ->
          arr.Psyclone.Reference.data.(i) <-
            init d.Psyclone.Fortran.array_name i)
        arr.Psyclone.Reference.data)
    k.Psyclone.Fortran.arrays;
  Psyclone.Reference.run k env;

  (* Compiled execution. *)
  let bufs =
    List.map
      (fun (d : Psyclone.Fortran.array_decl) ->
        let bounds = Psyclone.Codegen.bounds_of_decl d in
        let shape = List.map Typesys.bound_size bounds in
        let b = Interp.Rtval.alloc_buffer shape Typesys.f64 in
        Interp.Rtval.fill b (fun i -> init d.Psyclone.Fortran.array_name i);
        b)
      k.Psyclone.Fortran.arrays
  in
  ignore
    (Driver.Simulate.run_serial ~func: "tracer_advection" compiled
       (List.map (fun b -> Interp.Rtval.Rbuf b) bufs));

  let worst = ref 0. in
  List.iter2
    (fun (d : Psyclone.Fortran.array_decl) buf ->
      let arr = Psyclone.Reference.array env d.Psyclone.Fortran.array_name in
      let compiled_data = Interp.Rtval.float_contents buf in
      Array.iteri
        (fun i expected ->
          worst := Float.max !worst (Float.abs (expected -. compiled_data.(i))))
        arr.Psyclone.Reference.data)
    k.Psyclone.Fortran.arrays bufs;
  Format.printf "compiled vs Fortran reference: max abs diff = %g@." !worst;
  assert (!worst < 1e-9);

  (* Modeled node throughput at a paper-scale size, showing the
     parallel-region overhead effect on many-region kernels. *)
  let features = Machine.Features.of_stencil_module ~elt_bytes: 4 m in
  List.iter
    (fun npts ->
      let f = Machine.Features.with_points features npts in
      let gpts =
        Machine.Cpu.throughput Machine.Cpu.archer2_node
          Machine.Cpu.xdsl_cpu_quality f ~points: npts ~threads: 128
      in
      Format.printf
        "modeled ARCHER2 node throughput at %.0fM pts: %.3f GPts/s@."
        (npts /. 1e6) gpts)
    [ 4e6; 32e6; 128e6 ];
  Format.printf "tracer_advection: OK@."

(* Isotropic acoustic wave equation through the Devito frontend (the
   paper's second Devito workload): second-order-in-time leapfrog, compiled
   through the shared stack, distributed over simulated MPI ranks, and
   sanity-checked for physical behaviour (finite numerical wave speed,
   serial/distributed agreement).

   Run with: dune exec examples/acoustic_wave.exe *)

open Ir

let n = 24
let steps = 12
let ranks = 4
let dt = 0.05
let velocity = 1.5

let () =
  let g = Devito.Symbolic.grid ~dt [ n; n ] in
  let u = Devito.Symbolic.function_ ~space_order: 4 ~time_order: 2 "u" g in
  (* u.dt2 = c^2 * laplace(u) *)
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(f (velocity *. velocity) *: laplace u)
  in
  let spec, m =
    Devito.Operator.operator ~name: "wave" ~timesteps: steps ~elt: Typesys.f64
      eqn
  in
  Format.printf "Devito 2D acoustic wave: %dx%d, so=4, %d steps, %d buffers@."
    n n steps spec.Devito.Operator.time_depth;

  let radius =
    Array.fold_left
      (fun acc (neg, pos) -> max acc (max (-neg) pos))
      0 spec.Devito.Operator.halo
  in
  Format.printf "stencil radius inferred from the update expression: %d@."
    radius;

  (* Point source in the middle. *)
  let init i j = if i = n / 2 && j = n / 2 then 1. else 0. in
  let mkf () =
    let b =
      Interp.Rtval.alloc_buffer
        ~lo: [ -radius; -radius ]
        [ n + (2 * radius); n + (2 * radius) ]
        Typesys.f64
    in
    for i = -radius to n + radius - 1 do
      for j = -radius to n + radius - 1 do
        Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
      done
    done;
    b
  in

  (* Serial run. *)
  let serial_bufs = [ mkf (); mkf (); mkf () ] in
  let serial_results =
    Driver.Simulate.run_serial ~func: "wave" m
      (List.map (fun b -> Interp.Rtval.Rbuf b) serial_bufs)
  in
  let serial =
    match List.rev serial_results with
    | Interp.Rtval.Rbuf latest :: _ -> latest
    | _ -> failwith "unexpected results"
  in

  (* Physical sanity: information travels at most [radius] cells/step. *)
  let max_reach = steps * radius in
  let leaked = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = max (abs (i - (n / 2))) (abs (j - (n / 2))) in
      if d > max_reach then
        leaked :=
          Float.max !leaked
            (Float.abs
               (Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ])))
    done
  done;
  Format.printf "signal outside the numerical domain of dependence: %g@."
    !leaked;
  assert (!leaked = 0.);

  (* Distribute and compare. *)
  let dm =
    Core.Distribute.run
      (Core.Distribute.options ~ranks ~strategy: Core.Decomposition.Slice2d ())
      m
  in
  let fop = Option.get (Op.lookup_symbol dm "wave") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let lowered =
    Core.Mpi_to_func.run
      (Core.Dmp_to_mpi.run
         (Core.Stencil_to_loops.run ~style: Core.Stencil_to_loops.Sequential
            (Core.Swap_elim.run dm)))
  in
  let interior = List.map2 (fun d p -> d / p) [ n; n ] grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let global = mkf () in
  let gathered = mkf () in
  let rebase buf =
    { buf with Interp.Rtval.lo = List.map (fun _ -> 0) buf.Interp.Rtval.lo }
  in
  let comm =
    Driver.Simulate.run_spmd ~ranks ~func: "wave"
      ~make_args: (fun ctx ->
        let rank = Mpi_sim.rank ctx in
        List.init 3 (fun _ ->
            Interp.Rtval.Rbuf
              (rebase
                 (Driver.Domain.scatter_field ~global ~grid ~local_bounds
                    ~rank))))
      ~collect: (fun ctx _ results ->
        match List.rev results with
        | Interp.Rtval.Rbuf latest :: _ ->
            Driver.Domain.gather_interior ~origin ~global: gathered
              ~local: latest ~grid ~interior ~rank: (Mpi_sim.rank ctx) ()
        | _ -> failwith "unexpected results")
      lowered
  in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
      let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
      worst := Float.max !worst (Float.abs (s -. d))
    done
  done;
  Format.printf "distributed vs serial max abs diff: %g@." !worst;
  Format.printf "simulated MPI traffic: %d messages, %d bytes@."
    (Mpi_sim.total_messages comm) (Mpi_sim.total_bytes comm);
  assert (!worst = 0.);
  Format.printf "acoustic_wave: OK@."

(* Heat diffusion through the Devito frontend (the paper's listing 5),
   compiled once through the shared stack for serial CPU and once for
   distributed-memory CPU, executed on a simulated 4-rank MPI job, and
   checked for bitwise agreement with the serial run.

   Run with: dune exec examples/heat_diffusion.exe *)

open Ir

let nx = 32
let ny = 32
let steps = 20
let ranks = 4

let () =
  (* Model the problem, as in the Devito DSL. *)
  let g = Devito.Symbolic.grid ~dt: 0.1 [ nx; ny ] in
  let u = Devito.Symbolic.function_ ~space_order: 2 "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  let _spec, m =
    Devito.Operator.operator ~name: "heat" ~timesteps: steps
      ~elt: Typesys.f64 eqn
  in
  Format.printf "Devito 2D heat: %dx%d grid, %d steps, so=2@." nx ny steps;

  (* Initial condition: a hot square in the middle. *)
  let init i j = if abs (i - 16) < 5 && abs (j - 16) < 5 then 100. else 0. in
  let global_field () =
    let b =
      Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ nx + 2; ny + 2 ] Typesys.f64
    in
    for i = -1 to nx do
      for j = -1 to ny do
        Interp.Rtval.set b [ i; j ] (Interp.Rtval.Rf (init i j))
      done
    done;
    b
  in

  (* Serial execution of the stencil-level module. *)
  let serial =
    match
      Driver.Simulate.run_serial ~func: "heat" m
        [ Interp.Rtval.Rbuf (global_field ()); Interp.Rtval.Rbuf (global_field ()) ]
    with
    | Interp.Rtval.Rbuf _ :: Interp.Rtval.Rbuf latest :: _ -> latest
    | _ -> failwith "unexpected results"
  in

  (* Distribute over 4 ranks (2x2) and fully lower to MPI_* calls. *)
  let dm =
    Core.Distribute.run
      (Core.Distribute.options ~ranks ~strategy: Core.Decomposition.Slice2d ())
      m
  in
  let fop = Option.get (Op.lookup_symbol dm "heat") in
  let grid = Driver.Domain.topology_of fop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds fop) in
  let lowered =
    Core.Mpi_to_func.run
      (Core.Dmp_to_mpi.run
         (Core.Stencil_to_loops.run ~style: Core.Stencil_to_loops.Sequential
            (Core.Swap_elim.run dm)))
  in
  let lowered = Transforms.Licm.run lowered in
  Format.printf "rank topology: %s; local field bounds: %s@."
    (String.concat "x" (List.map string_of_int grid))
    (String.concat " "
       (List.map
          (fun (b : Typesys.bound) ->
            Printf.sprintf "[%d,%d)" b.Typesys.lo b.Typesys.hi)
          local_bounds));

  let interior = List.map2 (fun n p -> n / p) [ nx; ny ] grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  let global = global_field () in
  let gathered = global_field () in
  let rebase buf =
    { buf with Interp.Rtval.lo = List.map (fun _ -> 0) buf.Interp.Rtval.lo }
  in
  let comm =
    Driver.Simulate.run_spmd ~ranks ~func: "heat"
      ~make_args: (fun ctx ->
        let rank = Mpi_sim.rank ctx in
        let mk () =
          rebase
            (Driver.Domain.scatter_field ~global ~grid ~local_bounds ~rank)
        in
        [ Interp.Rtval.Rbuf (mk ()); Interp.Rtval.Rbuf (mk ()) ])
      ~collect: (fun ctx _ results ->
        match results with
        | Interp.Rtval.Rbuf _ :: Interp.Rtval.Rbuf latest :: _ ->
            Driver.Domain.gather_interior ~origin ~global: gathered
              ~local: latest ~grid ~interior ~rank: (Mpi_sim.rank ctx) ()
        | _ -> failwith "unexpected results")
      lowered
  in

  (* Compare interiors. *)
  let worst = ref 0. in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      let s = Interp.Rtval.as_float (Interp.Rtval.get serial [ i; j ]) in
      let d = Interp.Rtval.as_float (Interp.Rtval.get gathered [ i; j ]) in
      worst := Float.max !worst (Float.abs (s -. d))
    done
  done;
  Format.printf
    "distributed (%d ranks) vs serial: max abs diff = %g@." ranks !worst;
  Format.printf "simulated MPI traffic: %d messages, %d bytes@."
    (Mpi_sim.total_messages comm) (Mpi_sim.total_bytes comm);
  assert (!worst = 0.);

  (* Modeled single-node throughput of the same kernel at paper scale. *)
  let features =
    Machine.Features.of_stencil_module ~elt_bytes: 4 m
    |> fun f -> Machine.Features.with_points f (16384. *. 16384.)
  in
  let gpts =
    Machine.Cpu.throughput Machine.Cpu.archer2_node
      Machine.Cpu.xdsl_cpu_quality features
      ~points: (16384. *. 16384.) ~threads: 128
  in
  Format.printf
    "modeled ARCHER2-node throughput at 16384^2 (xDSL pipeline): %.2f GPts/s@."
    gpts;
  Format.printf "heat_diffusion: OK@."

(* Figure 10: PSyclone single-node CPU (a, ARCHER2) and GPU (b, V100)
   throughput for PW advection and tracer advection at several problem
   sizes.

   The paper's shape: on CPU, xDSL slightly exceeds Cray-PSyclone on PW
   advection (one fused stencil region), GNU trails both; on tracer
   advection, xDSL is considerably slower at small sizes because the MLIR
   scf-to-openmp lowering emits one parallel region per stencil (the
   kmp_wait effect), narrowing at larger sizes.  On GPU, xDSL wins on PW
   (explicit device memory vs managed-memory page faults) and lags on
   small tracer advection (synchronous launch per region). *)

let sizes_pw = [ ("pw-8m", 8e6); ("pw-33m", 33e6); ("pw-134m", 134e6) ]
let sizes_traadv = [ ("traadv-4m", 4e6); ("traadv-32m", 32e6) ]

(* Native PSyclone compiles the whole schedule into one parallel region, so
   the baselines do not pay per-region fork/join. *)
let native_features f = { f with Machine.Features.stencil_regions = 1 }

let cpu_row (w : Workloads.psyclone_workload) (label, points) =
  let f = Workloads.psyclone_features w ~points in
  let node = Machine.Cpu.archer2_node in
  let xdsl =
    Machine.Cpu.throughput node Machine.Cpu.xdsl_cpu_quality f ~points
      ~threads: 128
  in
  let cray =
    Machine.Cpu.throughput node Machine.Cpu.cray_quality (native_features f)
      ~points ~threads: 128
  in
  let gnu =
    Machine.Cpu.throughput node Machine.Cpu.gnu_quality (native_features f)
      ~points ~threads: 128
  in
  Printf.printf "  %-11s  %8.3f  %8.3f  %8.3f   (%d regions)\n" label xdsl
    cray gnu f.Machine.Features.stencil_regions

(* The PW binaries fault on unified memory (managed); tracer advection's
   working set stays resident, so its OpenACC baseline runs clean while
   xDSL pays a synchronization per stencil region. *)
let gpu_row (w : Workloads.psyclone_workload) (label, points) =
  let f = Workloads.psyclone_features w ~points in
  let xdsl =
    Machine.Gpu.throughput Machine.Gpu.v100 Machine.Gpu.xdsl_cuda_quality f
      ~points
  in
  let baseline_quality =
    if w.Workloads.p_name = "pw" then Machine.Gpu.psyclone_openacc_quality
    else Machine.Gpu.psyclone_openacc_resident_quality
  in
  let nvidia =
    Machine.Gpu.throughput Machine.Gpu.v100 baseline_quality
      (native_features f) ~points
  in
  Printf.printf "  %-11s  %8.3f  %8.3f   %5.2fx\n" label xdsl nvidia
    (xdsl /. nvidia)

let run () =
  let pw = Workloads.pw () in
  let traadv = Workloads.traadv () in
  Printf.printf
    "== Figure 10a: PSyclone single-node CPU (GPts/s): xDSL / Cray / GNU ==\n";
  Printf.printf "  %-11s  %8s  %8s  %8s\n" "benchmark" "xDSL" "Cray" "GNU";
  List.iter (cpu_row pw) sizes_pw;
  List.iter (cpu_row traadv) sizes_traadv;
  Printf.printf
    "== Figure 10b: PSyclone V100 GPU (GPts/s): xDSL / NVIDIA OpenACC ==\n";
  Printf.printf "  %-11s  %8s  %8s\n" "benchmark" "xDSL" "NVIDIA";
  List.iter (gpu_row pw) sizes_pw;
  List.iter (gpu_row traadv) sizes_traadv;
  print_newline ()

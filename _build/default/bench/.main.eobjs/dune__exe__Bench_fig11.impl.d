bench/bench_fig11.ml: Core List Machine Printf String Workloads

bench/bench_fig10.ml: List Machine Printf Workloads

bench/bench_fig9.ml: List Machine Printf Workloads

bench/main.ml: Array Bench_ablation Bench_fig10 Bench_fig11 Bench_fig7 Bench_fig8 Bench_fig9 Bench_measured Bench_tab1 List Printf Sys

bench/main.mli:

bench/bench_ablation.ml: Array Core Dialects Ir List Machine Op Printf String Transforms Workloads

bench/workloads.ml: Core Devito Driver Float Ir List Machine Op Psyclone Typesys

bench/bench_fig8.ml: Array Core Devito Driver Float Interp Ir List Machine Mpi_sim Op Option Printf Transforms Typesys Workloads

bench/bench_fig7.ml: List Machine Printf Workloads

bench/bench_measured.ml: Analyze Bechamel Benchmark Core Driver Instance Interp Ir List Measure Mpi_sim Op Parser Printer Printf Staged Test Time Toolkit Typesys Workloads

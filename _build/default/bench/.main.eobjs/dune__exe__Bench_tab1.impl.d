bench/bench_tab1.ml: Core List Machine Printf Psyclone Workloads

(* Table 1: Alveo U280 FPGA throughput — the initial (unchanged Von Neumann
   CPU design) vs the compiler-optimized (dataflow regions + 3D shift
   buffer, II=1) form of both PSyclone benchmarks, at the paper's problem
   sizes.  The shapes come from the actual hls-lowered modules. *)

let rows =
  [ ("pw-8m", `Pw, 8e6); ("pw-33m", `Pw, 33e6); ("pw-134m", `Pw, 134e6);
    ("traadv-4m", `Traadv, 4e6); ("traadv-32m", `Traadv, 32e6) ]

let run () =
  Printf.printf
    "== Table 1: Alveo U280 FPGA, initial vs optimized (GPts/s) ==\n";
  Printf.printf "  %-11s  %12s  %12s  %12s\n" "benchmark" "initial"
    "optimized" "improvement";
  let pw = Workloads.pw () in
  let traadv = Workloads.traadv () in
  let shapes w =
    let f = Workloads.psyclone_features w ~points: 1. in
    (* DDR boundary of the fused dataflow: primary inputs + final output. *)
    let external_streams =
      List.length (Psyclone.Fortran.external_inputs w.Workloads.kernel) + 1
    in
    let initial =
      Machine.Fpga.shape_of_module
        (Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Initial
           w.Workloads.p_module)
        ~f ()
    in
    let optimized =
      Machine.Fpga.shape_of_module
        (Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Optimized
           w.Workloads.p_module)
        ~f ~external_streams ()
    in
    (initial, optimized)
  in
  let pw_shapes = shapes pw in
  let traadv_shapes = shapes traadv in
  List.iter
    (fun (label, which, points) ->
      let initial, optimized =
        match which with `Pw -> pw_shapes | `Traadv -> traadv_shapes
      in
      let t_i = Machine.Fpga.throughput Machine.Fpga.u280 initial ~points in
      let t_o = Machine.Fpga.throughput Machine.Fpga.u280 optimized ~points in
      Printf.printf "  %-11s  %12.1e  %12.1e  %10.0fx\n" label t_i t_o
        (t_o /. t_i))
    rows;
  print_newline ()

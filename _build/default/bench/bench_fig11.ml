(* Figure 11: multi-node strong scaling of xDSL-PSyclone on ARCHER2 with
   the 2D dmp decomposition strategy (vertical dimension kept local, as is
   standard for atmosphere/ocean models): PW advection on [256,256,128]
   (a) and tracer advection on [512,512,128] (b), up to 128 nodes.

   Only xDSL results exist in the paper (the PSyclone NEMO API has no
   distributed-memory support); the expected shape is good scaling to ~8
   nodes and strong-scaling saturation beyond, because the global problems
   are small. *)

let nodes_list = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

(* One MPI rank per node, 128 threads (fig. 11 uses whole nodes). *)
let node = Machine.Cpu.archer2_node

let scaling (w : Workloads.psyclone_workload) ~(global : float list) =
  let total = List.fold_left ( *. ) 1. global in
  List.iter
    (fun nodes ->
      let ranks = nodes in
      let grid =
        Core.Decomposition.grid_of Core.Decomposition.Slice2d ~ranks ~rank: 3
      in
      let local = List.map2 (fun n g -> n /. float_of_int g) global grid in
      let local_points = List.fold_left ( *. ) 1. local in
      let f = Workloads.psyclone_features w ~points: local_points in
      (* Each stencil region re-exchanges its read halos: messages scale
         with the region count (no overlap in the prototype). *)
      let dims_cut = List.length (List.filter (fun g -> g > 1) grid) in
      let face_bytes =
        List.mapi
          (fun d ld ->
            if List.nth grid d > 1 then
              let others =
                List.filteri (fun i _ -> i <> d) local
                |> List.fold_left ( *. ) 1.
              in
              2. *. others *. 4.
            else (ignore ld; 0.))
          local
        |> List.fold_left ( +. ) 0.
      in
      let swaps = float_of_int f.Machine.Features.stencil_regions in
      let sched =
        {
          Machine.Net.messages =
            int_of_float (swaps *. float_of_int (2 * dims_cut));
          bytes = swaps *. face_bytes;
          overlap = false;
          host_us_per_msg = Machine.Net.xdsl_host_us_per_msg;
        }
      in
      let compute =
        Machine.Cpu.step_time node Machine.Cpu.xdsl_cpu_quality f
          ~points: local_points ~threads: 128
      in
      let step = Machine.Net.step_time Machine.Net.slingshot ~compute sched in
      Printf.printf "  %6d  %10.2f    (local %s, comm share %3.0f%%)\n" nodes
        (total /. step /. 1e9)
        (String.concat "x" (List.map (fun v -> string_of_int (int_of_float v)) local))
        (100. *. (1. -. (compute /. step)))
    )
    nodes_list

let run () =
  Printf.printf
    "== Figure 11: xDSL-PSyclone strong scaling on ARCHER2 (GPts/s) ==\n";
  Printf.printf "   nodes  %10s\n" "xDSL";
  Printf.printf " (a) PW advection [256,256,128], 2D decomposition:\n";
  scaling (Workloads.pw ()) ~global: [ 256.; 256.; 128. ];
  Printf.printf " (b) tracer advection [512,512,128], 2D decomposition:\n";
  scaling (Workloads.traadv ()) ~global: [ 512.; 512.; 128. ];
  print_newline ()

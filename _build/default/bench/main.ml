(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) from the compiled IR and the machine models, and
   measures real executions of the stack with Bechamel.

   Run with: dune exec bench/main.exe
   (pass a section name — fig7 fig8 fig9 fig10 fig11 tab1 ablation
   measured — to run just that section). *)

let sections =
  [
    ("fig7", Bench_fig7.run);
    ("fig8", Bench_fig8.run);
    ("fig9", Bench_fig9.run);
    ("fig10", Bench_fig10.run);
    ("tab1", Bench_tab1.run);
    ("fig11", Bench_fig11.run);
    ("ablation", Bench_ablation.run);
    ("measured", Bench_measured.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    if args = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name args) sections
  in
  if selected = [] then begin
    prerr_endline "unknown section; available:";
    List.iter (fun (n, _) -> prerr_endline ("  " ^ n)) sections;
    exit 1
  end;
  Printf.printf
    "shared stencil compilation stack: evaluation reproduction\n\
     (absolute numbers come from first-order machine models; the paper's\n\
     claims are about shapes/ratios — see EXPERIMENTS.md)\n\n";
  List.iter (fun (_, run) -> run ()) selected

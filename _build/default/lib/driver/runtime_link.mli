(** Binding between interpreted IR and the simulated MPI runtime: an
    {!Interp.Engine.externs} handler for one rank that implements the fully
    lowered MPI_* ABI (with mpich magic constants), the mpi dialect ops,
    and the dmp dialect's declarative swaps — so distributed programs can
    be executed and validated at every lowering stage. *)

type state
(** Per-rank handler state (request-handle table). *)

val create : Mpi_sim.rank_ctx -> state

val externs_for : state -> Interp.Engine.externs
(** The combined handler for one rank. *)

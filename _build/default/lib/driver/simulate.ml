(* SPMD execution of a compiled module on the simulated MPI runtime: every
   rank interprets the same module with its own external-call state, exactly
   as the generated executable would run under mpirun. *)

open Ir

(* Run [func] on [ranks] simulated ranks.  [make_args] builds each rank's
   argument list (typically scattered local fields); [collect] receives the
   rank context, its argument list and the function results once the rank
   finishes.  Returns the communicator for traffic inspection. *)
let run_spmd ~(ranks : int) ~(func : string)
    ~(make_args : Mpi_sim.rank_ctx -> Interp.Rtval.t list)
    ?(collect :
        (Mpi_sim.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit)
        option) (m : Op.t) : Mpi_sim.comm =
  Mpi_sim.run ~ranks (fun ctx ->
      let st = Runtime_link.create ctx in
      let eng = Interp.Engine.create ~externs: (Runtime_link.externs_for st) m in
      let args = make_args ctx in
      let results = Interp.Engine.run eng func args in
      match collect with
      | Some f -> f ctx args results
      | None -> ())

(* Serial execution (no MPI): interpret [func] with the given arguments. *)
let run_serial ~(func : string) (m : Op.t) (args : Interp.Rtval.t list) :
    Interp.Rtval.t list =
  let eng = Interp.Engine.create m in
  Interp.Engine.run eng func args

(* Maximum absolute difference between two float buffers, used by
   equivalence checks throughout tests and examples. *)
let max_abs_diff (a : Interp.Rtval.buffer) (b : Interp.Rtval.buffer) : float
    =
  let fa = Interp.Rtval.float_contents a in
  let fb = Interp.Rtval.float_contents b in
  if Array.length fa <> Array.length fb then infinity
  else begin
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (Float.abs (v -. fb.(i))))
      fa;
    !worst
  end

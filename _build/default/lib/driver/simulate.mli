(** SPMD execution of compiled modules on the simulated MPI runtime: every
    rank interprets the same module with its own external-call state,
    exactly as the generated executable would run under mpirun. *)

open Ir

val run_spmd :
  ranks:int ->
  func:string ->
  make_args:(Mpi_sim.rank_ctx -> Interp.Rtval.t list) ->
  ?collect:
    (Mpi_sim.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit) ->
  Op.t ->
  Mpi_sim.comm
(** Run [func] on [ranks] simulated ranks; [make_args] builds each rank's
    arguments (typically scattered local fields), [collect] receives the
    context, arguments and results when a rank finishes.  Returns the
    communicator for traffic inspection. *)

val run_serial : func:string -> Op.t -> Interp.Rtval.t list -> Interp.Rtval.t list

val max_abs_diff : Interp.Rtval.buffer -> Interp.Rtval.buffer -> float
(** Equivalence metric used throughout tests and examples (infinite when
    shapes differ). *)

lib/driver/runtime_link.ml: Array Core Hashtbl Interp Ir List Mpi_sim Op String Typesys

lib/driver/runtime_link.mli: Interp Mpi_sim

lib/driver/simulate.ml: Array Float Interp Ir Mpi_sim Op Runtime_link

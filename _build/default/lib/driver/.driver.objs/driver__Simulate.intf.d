lib/driver/simulate.mli: Interp Ir Mpi_sim Op

lib/driver/domain.mli: Interp Ir Op Typesys

lib/driver/domain.ml: Core Dialects Interp Ir List Op Typesys

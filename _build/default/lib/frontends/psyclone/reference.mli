(** A direct interpreter for the Fortran kernel AST: executes the loop
    nests naively over plain arrays.  An *independent oracle* — it never
    touches the compiler stack — used to check that the compiled stencil
    program computes exactly what the Fortran source says. *)

type ndarray = { dims : (int * int) list; data : float array }

val make_array : Fortran.array_decl -> ndarray
val linear : ndarray -> int list -> int
val get : ndarray -> int list -> float
val set : ndarray -> int list -> float -> unit

type env

val env_of_kernel : Fortran.kernel -> env
val array : env -> string -> ndarray
val eval : env -> (string * int) list -> Fortran.expr -> float
val run_nest : env -> Fortran.nest -> unit
val run : Fortran.kernel -> env -> unit

(* The xDSL-side PSy-IR (paper §5.2.1): a DAG-shaped schedule that closely
   resembles PSyclone's own IR — loops, assignments and array accesses with
   explicit structure that transformations exploit, before lowering to SSA
   form.  The stencil recognizer turns eligible loop nests into
   [Stencil_region] nodes; everything else stays as schedule nodes (the
   "escape hatch" retains the surrounding Fortran semantics — here it is
   preserved structurally and rejected at codegen if it cannot be expressed
   with the dialects we lower to). *)

type access = {
  array : string;
  offsets : int list;  (* constant offsets per loop dimension *)
}

(* One point update: write [target] at the loop point using [reads]. *)
type computation = {
  target : string;
  rhs : Fortran.expr;
  reads : access list;
}

type node =
  | Schedule of node list
  | Outer_loop of { count : int; body : node list }
      (* the non-spatial repetition loop of e.g. tracer advection *)
  | Stencil_region of {
      region_name : string;
      dims : string list;  (* loop variables, outermost first *)
      ranges : (int * int) list;  (* inclusive bounds per dim *)
      computations : computation list;
    }
  | Unrecognized of string
      (* anything the stencil recognizer could not classify *)

(* Map a Fortran index list to constant offsets given the loop variables
   (positional).  None if the reference does not follow the loop order. *)
let offsets_of ~(loop_vars : string list) (idx : Fortran.index list) :
    int list option =
  if List.length idx <> List.length loop_vars then None
  else begin
    let ok =
      List.for_all2
        (fun (i : Fortran.index) v -> i.Fortran.var = v)
        idx loop_vars
    in
    if ok then Some (List.map (fun (i : Fortran.index) -> i.Fortran.shift) idx)
    else None
  end

exception Not_a_stencil of string

(* Recognize one loop nest as a stencil region: every assignment writes the
   current point (offset zero in loop order), every read is at constant
   offsets.  Reads of arrays written earlier in the same nest must be at
   offset zero (they forward through SSA inside the fused region); any
   other shape raises. *)
let recognize_nest index (n : Fortran.nest) : node =
  let computations =
    List.map
      (fun (a : Fortran.assign) ->
        let target, lhs_idx = a.Fortran.lhs in
        (match offsets_of ~loop_vars: n.Fortran.loop_vars lhs_idx with
        | Some offs when List.for_all (( = ) 0) offs -> ()
        | _ ->
            raise
              (Not_a_stencil
                 (Printf.sprintf "%s is not written at the loop point" target)));
        let reads =
          List.map
            (fun (arr, idx) ->
              match offsets_of ~loop_vars: n.Fortran.loop_vars idx with
              | Some offsets -> { array = arr; offsets }
              | None ->
                  raise
                    (Not_a_stencil
                       (Printf.sprintf "access to %s is not affine-constant"
                          arr)))
            (Fortran.expr_reads a.Fortran.rhs)
        in
        { target; rhs = a.Fortran.rhs; reads })
      n.Fortran.assigns
  in
  (* Enforce the intra-region forwarding rule.  A computation's own target
     counts as written, so loop-carried accesses like a(i,j) = a(i-1,j)
     (whose sequential-Fortran semantics a parallel stencil would not
     preserve) are rejected too. *)
  let written = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun r ->
          if
            (List.mem r.array !written || r.array = c.target)
            && not (List.for_all (( = ) 0) r.offsets)
          then
            raise
              (Not_a_stencil
                 (Printf.sprintf
                    "%s read at non-zero offset after being written in the \
                     same nest" r.array)))
        c.reads;
      written := c.target :: !written)
    computations;
  Stencil_region
    {
      region_name = Printf.sprintf "region%d" index;
      dims = n.Fortran.loop_vars;
      ranges = n.Fortran.ranges;
      computations;
    }

(* Translate a whole kernel into PSy-IR, recognizing stencils nest by
   nest. *)
let of_kernel (k : Fortran.kernel) : node =
  let regions =
    List.mapi
      (fun i n ->
        try recognize_nest i n
        with Not_a_stencil reason -> Unrecognized reason)
      k.Fortran.nests
  in
  if k.Fortran.iterations > 1 then
    Schedule [ Outer_loop { count = k.Fortran.iterations; body = regions } ]
  else Schedule regions

let rec count_regions = function
  | Schedule ns | Outer_loop { body = ns; _ } ->
      List.fold_left (fun acc n -> acc + count_regions n) 0 ns
  | Stencil_region _ -> 1
  | Unrecognized _ -> 0

let rec count_computations = function
  | Schedule ns | Outer_loop { body = ns; _ } ->
      List.fold_left (fun acc n -> acc + count_computations n) 0 ns
  | Stencil_region { computations; _ } -> List.length computations
  | Unrecognized _ -> 0

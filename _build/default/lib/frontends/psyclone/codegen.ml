(* Lowering PSy-IR to the shared stencil dialect (paper §5.2.1): recognized
   stencil regions become stencil.load / stencil.apply / stencil.store; a
   region with several computations becomes one fused apply with multiple
   results (this is why PW advection lowers to a single parallel region
   while tracer advection keeps its 18, fig. 10). *)

open Ir
open Dialects
open Core

exception Unsupported of string

let bounds_of_decl (d : Fortran.array_decl) : Typesys.bound list =
  List.map (fun (lo, hi) -> Typesys.bound lo (hi + 1)) d.Fortran.decl_bounds

(* Generate one region's computations inside an apply body. *)
let gen_region_body bld ~elt ~scalars ~(inputs : (string * Value.t) list)
    (computations : Psy_ir.computation list) : unit =
  (* Values produced so far at the current point, by target array. *)
  let produced : (string, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let rec gen (e : Fortran.expr) : Value.t =
    match e with
    | Fortran.Num c -> Arith.const_float bld ~ty: elt c
    | Fortran.Scalar s -> (
        match List.assoc_opt s scalars with
        | Some v -> Arith.const_float bld ~ty: elt v
        | None -> raise (Unsupported (Printf.sprintf "unknown scalar %s" s)))
    | Fortran.Ref (arr, idx) -> (
        match Hashtbl.find_opt produced arr with
        | Some v -> v (* forwarded through SSA inside the fused region *)
        | None -> (
            match List.assoc_opt arr inputs with
            | Some temp_arg ->
                Stencil.access_op bld temp_arg
                  (List.map (fun (i : Fortran.index) -> i.Fortran.shift) idx)
            | None ->
                raise
                  (Unsupported (Printf.sprintf "array %s is not an input" arr))))
    | Fortran.Bin (op, a, b) -> (
        let va = gen a in
        let vb = gen b in
        match op with
        | Fortran.Fadd -> Arith.add_f bld va vb
        | Fortran.Fsub -> Arith.sub_f bld va vb
        | Fortran.Fmul -> Arith.mul_f bld va vb
        | Fortran.Fdiv -> Arith.div_f bld va vb)
    | Fortran.Neg a -> Arith.neg_f bld (gen a)
  in
  let results =
    List.map
      (fun (c : Psy_ir.computation) ->
        let v = gen c.Psy_ir.rhs in
        Hashtbl.replace produced c.Psy_ir.target v;
        v)
      computations
  in
  Stencil.return_vals bld results

let rec gen_node bld ~elt ~scalars ~(field_of : string -> Value.t)
    ~(bounds_of : string -> Typesys.bound list) (node : Psy_ir.node) : unit =
  match node with
  | Psy_ir.Schedule ns ->
      List.iter (gen_node bld ~elt ~scalars ~field_of ~bounds_of) ns
  | Psy_ir.Outer_loop { count; body } ->
      let lo = Arith.const_index bld 0 in
      let hi = Arith.const_index bld count in
      let step = Arith.const_index bld 1 in
      ignore
        (Scf.for_op bld ~lo ~hi ~step (fun b _iv _ ->
             List.iter (gen_node b ~elt ~scalars ~field_of ~bounds_of) body;
             Scf.yield_op b []))
  | Psy_ir.Unrecognized reason ->
      raise
        (Unsupported
           (Printf.sprintf
              "kernel contains Fortran the stencil recognizer rejected: %s"
              reason))
  | Psy_ir.Stencil_region { computations; ranges; _ } ->
      (* External inputs: arrays read before (or never) being written in
         this region. *)
      let written = ref [] in
      let external_reads = ref [] in
      List.iter
        (fun (c : Psy_ir.computation) ->
          List.iter
            (fun (r : Psy_ir.access) ->
              if
                (not (List.mem r.Psy_ir.array !written))
                && not (List.mem r.Psy_ir.array !external_reads)
              then external_reads := r.Psy_ir.array :: !external_reads)
            c.Psy_ir.reads;
          written := c.Psy_ir.target :: !written)
        computations;
      let input_arrays = List.rev !external_reads in
      let temps =
        List.map
          (fun arr -> (arr, Stencil.load_op bld (field_of arr)))
          input_arrays
      in
      let out_bounds =
        List.map (fun (lo, hi) -> Typesys.bound lo (hi + 1)) ranges
      in
      let results =
        Stencil.apply_op bld
          ~inputs: (List.map snd temps)
          ~out_bounds ~elt
          ~n_results: (List.length computations)
          (fun body args ->
            let inputs = List.combine input_arrays args in
            gen_region_body body ~elt ~scalars ~inputs computations)
      in
      List.iter2
        (fun (c : Psy_ir.computation) res ->
          ignore (bounds_of c.Psy_ir.target);
          Stencil.store_op bld res (field_of c.Psy_ir.target)
            ~lb: (List.map fst ranges)
            ~ub: (List.map (fun (_, hi) -> hi + 1) ranges))
        computations results

(* Compile a Fortran kernel to a stencil-dialect module.  The function takes
   one field argument per declared array, in declaration order. *)
let compile ?(elt = Typesys.f32) (k : Fortran.kernel) : Op.t =
  let psy = Psy_ir.of_kernel k in
  let arg_tys =
    List.map
      (fun d -> Stencil.field_ty (bounds_of_decl d) elt)
      k.Fortran.arrays
  in
  let fdef =
    Func.define k.Fortran.kernel_name ~arg_tys ~res_tys: [] (fun bld args ->
        let table = List.combine k.Fortran.arrays args in
        let field_of name =
          let rec find = function
            | [] -> raise (Unsupported (Printf.sprintf "undeclared array %s" name))
            | ((d : Fortran.array_decl), v) :: rest ->
                if d.Fortran.array_name = name then v else find rest
          in
          find table
        in
        let bounds_of name =
          let rec find = function
            | [] -> raise (Unsupported name)
            | (d : Fortran.array_decl) :: rest ->
                if d.Fortran.array_name = name then bounds_of_decl d
                else find rest
          in
          find k.Fortran.arrays
        in
        gen_node bld ~elt ~scalars: k.Fortran.scalars ~field_of ~bounds_of psy;
        Func.return_op bld [])
  in
  Op.module_op [ fdef ]

(* The two PSyclone evaluation workloads of the paper (§6.2), written as
   Fortran-like kernels for the NEMO-API flow:

   - [pw_advection]: the Piacsek and Williams advection scheme used by the
     MONC atmospheric model — three momentum-source stencil computations
     over the three wind fields, all in one loop nest (so the whole scheme
     fuses into a single stencil region);

   - [tracer_advection]: the NEMO tracer-advection benchmark from
     PSycloneBench — a chain of 18 loop nests computing 24 stencil updates
     across the tracer/velocity fields with intermediate arrays, wrapped in
     an outer iteration loop (100 in the paper). *)

open Fortran

(* 3D array declared with a one-cell ghost margin around [shape]. *)
let d3 name shape =
  { array_name = name; decl_bounds = List.map (fun n -> (-1, n)) shape }

let i3 ?(di = 0) ?(dj = 0) ?(dk = 0) () =
  [ ix ~shift: di "i"; ix ~shift: dj "j"; ix ~shift: dk "k" ]

let r name ?(di = 0) ?(dj = 0) ?(dk = 0) () = Ref (name, i3 ~di ~dj ~dk ())

(* --- PW advection --- *)

(* One directional flux term of the PW scheme:
   c * (f(x-1)*(g(x) + g(x-1)) - f(x+1)*(g(x) + g(x+1))) along dim. *)
let pw_term c fname gname dim =
  let shift v =
    match dim with
    | `I -> r fname ~di: v ()
    | `J -> r fname ~dj: v ()
    | `K -> r fname ~dk: v ()
  in
  let gshift v =
    match dim with
    | `I -> r gname ~di: v ()
    | `J -> r gname ~dj: v ()
    | `K -> r gname ~dk: v ()
  in
  Scalar c
  *| ((shift (-1) *| (gshift 0 +| gshift (-1)))
     -| (shift 1 *| (gshift 0 +| gshift 1)))

let pw_advection ~shape : kernel =
  let arrays =
    [
      d3 "u" shape; d3 "v" shape; d3 "w" shape;
      d3 "su" shape; d3 "sv" shape; d3 "sw" shape;
    ]
  in
  (* The three momentum sources advect u, v, w; each mixes all three wind
     components, as in the MONC implementation. *)
  let source target advected =
    {
      lhs = (target, i3 ());
      rhs =
        pw_term "tcx" "u" advected `I
        +| pw_term "tcy" "v" advected `J
        +| pw_term "tcz" "w" advected `K;
    }
  in
  let su = source "su" "u" in
  let sv = source "sv" "v" in
  let sw = source "sw" "w" in
  kernel ~name: "pw_advection" ~arrays
    ~scalars: [ ("tcx", 0.25); ("tcy", 0.25); ("tcz", 0.25) ]
    [
      {
        loop_vars = [ "i"; "j"; "k" ];
        ranges = List.map (fun n -> (0, n - 1)) shape;
        assigns = [ su; sv; sw ];
      };
    ]

(* --- NEMO tracer advection --- *)

(* The benchmark chains slope/flux computations: each nest derives a new
   intermediate from earlier arrays with a small directional stencil.  Six
   nests carry two updates (x and y directions share a nest), giving the
   paper's 18 stencil regions and 24 computations. *)
let tracer_advection ?(iterations = 100) ~shape () : kernel =
  let names =
    [
      "mydomain"; "tsn"; "un"; "vn"; "wn"; "rnfmsk";
      "zind"; "ztu"; "ztv"; "ztw"; "zslpx"; "zslpy"; "zslpz";
      "zwx"; "zwy"; "zwz"; "zkx"; "zky"; "zkz"; "ztra";
    ]
  in
  let arrays = List.map (fun nm -> d3 nm shape) names in
  let full = List.map (fun n -> (0, n - 1)) shape in
  let nest assigns = { loop_vars = [ "i"; "j"; "k" ]; ranges = full; assigns } in
  let a target rhs = { lhs = (target, i3 ()); rhs } in
  let nests =
    [
      (* 1: upstream indicator from the runoff mask and tracer. *)
      nest
        [
          a "zind"
            ((Scalar "half" *| r "rnfmsk" ())
            +| (Scalar "quarter" *| r "tsn" ()));
        ];
      (* 2: x/y tracer gradients (2 computations, 1 region). *)
      nest
        [
          a "ztu" (r "un" () *| (r "tsn" ~di: 1 () -| r "tsn" ()));
          a "ztv" (r "vn" () *| (r "tsn" ~dj: 1 () -| r "tsn" ()));
        ];
      (* 3: vertical gradient. *)
      nest [ a "ztw" (r "wn" () *| (r "tsn" ~dk: 1 () -| r "tsn" ())) ];
      (* 4: x/y slopes (2 computations). *)
      nest
        [
          a "zslpx" (Scalar "half" *| (r "ztu" () +| r "ztu" ~di: (-1) ()));
          a "zslpy" (Scalar "half" *| (r "ztv" () +| r "ztv" ~dj: (-1) ()));
        ];
      (* 5: vertical slope. *)
      nest [ a "zslpz" (Scalar "half" *| (r "ztw" () +| r "ztw" ~dk: (-1) ())) ];
      (* 6: slope limiting in x/y (2 computations). *)
      nest
        [
          a "zwx"
            (r "zslpx" ()
            *| (Num 1. -| (Scalar "quarter" *| r "zind" ())));
          a "zwy"
            (r "zslpy" ()
            *| (Num 1. -| (Scalar "quarter" *| r "zind" ())));
        ];
      (* 7: slope limiting in z. *)
      nest
        [
          a "zwz"
            (r "zslpz" ()
            *| (Num 1. -| (Scalar "quarter" *| r "zind" ~dk: (-1) ())));
        ];
      (* 8: x/y upstream fluxes (2 computations). *)
      nest
        [
          a "zkx"
            (Scalar "half"
            *| (r "un" ()
               *| (r "tsn" () +| r "tsn" ~di: 1 ())
               -| (r "zwx" () *| (r "tsn" ~di: 1 () -| r "tsn" ()))));
          a "zky"
            (Scalar "half"
            *| (r "vn" ()
               *| (r "tsn" () +| r "tsn" ~dj: 1 ())
               -| (r "zwy" () *| (r "tsn" ~dj: 1 () -| r "tsn" ()))));
        ];
      (* 9: vertical flux. *)
      nest
        [
          a "zkz"
            (Scalar "half"
            *| (r "wn" ()
               *| (r "tsn" () +| r "tsn" ~dk: 1 ())
               -| (r "zwz" () *| (r "tsn" ~dk: 1 () -| r "tsn" ()))));
        ];
      (* 10: flux divergence x/y (2 computations). *)
      nest
        [
          a "ztu" (r "zkx" () -| r "zkx" ~di: (-1) ());
          a "ztv" (r "zky" () -| r "zky" ~dj: (-1) ());
        ];
      (* 11: flux divergence z. *)
      nest [ a "ztw" (r "zkz" () -| r "zkz" ~dk: (-1) ()) ];
      (* 12: tendency. *)
      nest
        [
          a "ztra"
            (Neg (r "ztu" () +| r "ztv" () +| r "ztw" ()));
        ];
      (* 13: second-pass horizontal slope for the corrector. *)
      nest
        [
          a "zslpx"
            (Scalar "half"
            *| ((r "ztra" ~di: 1 () -| r "ztra" ~di: (-1) ())
               +| (Scalar "quarter" *| r "ztra" ())));
        ];
      (* 14: corrector z slope. *)
      nest
        [
          a "zslpz"
            (Scalar "half" *| (r "ztra" ~dk: 1 () -| r "ztra" ~dk: (-1) ()));
        ];
      (* 15: corrected fluxes x. *)
      nest
        [
          a "zwx" (r "zkx" () +| (Scalar "quarter" *| r "zslpx" ()));
        ];
      (* 16: corrected fluxes y/z (2 computations). *)
      nest
        [
          a "zwy" (r "zky" () +| (Scalar "quarter" *| r "zslpy" ()));
          a "zwz" (r "zkz" () +| (Scalar "quarter" *| r "zslpz" ()));
        ];
      (* 17: corrected divergence. *)
      nest
        [
          a "ztra"
            (Neg
               ((r "zwx" () -| r "zwx" ~di: (-1) ())
               +| (r "zwy" () -| r "zwy" ~dj: (-1) ())
               +| (r "zwz" () -| r "zwz" ~dk: (-1) ())));
        ];
      (* 18: update the tracer domain. *)
      nest
        [
          a "mydomain" (r "mydomain" () +| (Scalar "rdt" *| r "ztra" ()));
        ];
    ]
  in
  kernel ~iterations ~name: "tracer_advection" ~arrays
    ~scalars: [ ("half", 0.5); ("quarter", 0.25); ("rdt", 0.01) ]
    nests

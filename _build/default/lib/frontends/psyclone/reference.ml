(* A direct interpreter for the Fortran kernel AST: executes the loop nests
   naively over plain arrays.  This is an *independent oracle* — it never
   touches the compiler stack — used by tests to check that the recognized
   and compiled stencil program computes exactly what the Fortran source
   says. *)

type ndarray = {
  dims : (int * int) list;  (* inclusive bounds per dimension *)
  data : float array;
}

let make_array (decl : Fortran.array_decl) : ndarray =
  let n =
    List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1
      decl.Fortran.decl_bounds
  in
  { dims = decl.Fortran.decl_bounds; data = Array.make n 0. }

let linear (a : ndarray) (coords : int list) =
  List.fold_left2
    (fun acc (lo, hi) c ->
      if c < lo || c > hi then
        invalid_arg
          (Printf.sprintf "fortran reference: index %d out of (%d:%d)" c lo hi)
      else (acc * (hi - lo + 1)) + (c - lo))
    0 a.dims coords

let get a coords = a.data.(linear a coords)
let set a coords v = a.data.(linear a coords) <- v

type env = {
  arrays : (string, ndarray) Hashtbl.t;
  scalars : (string * float) list;
}

let env_of_kernel (k : Fortran.kernel) : env =
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace arrays d.Fortran.array_name (make_array d))
    k.Fortran.arrays;
  { arrays; scalars = k.Fortran.scalars }

let array env name =
  match Hashtbl.find_opt env.arrays name with
  | Some a -> a
  | None -> invalid_arg ("fortran reference: unknown array " ^ name)

let rec eval env (point : (string * int) list) (e : Fortran.expr) : float =
  match e with
  | Fortran.Num c -> c
  | Fortran.Scalar s -> (
      match List.assoc_opt s env.scalars with
      | Some v -> v
      | None -> invalid_arg ("fortran reference: unknown scalar " ^ s))
  | Fortran.Ref (name, idx) ->
      let coords =
        List.map
          (fun (i : Fortran.index) ->
            match List.assoc_opt i.Fortran.var point with
            | Some v -> v + i.Fortran.shift
            | None -> invalid_arg ("unbound loop variable " ^ i.Fortran.var))
          idx
      in
      get (array env name) coords
  | Fortran.Bin (op, a, b) -> (
      let va = eval env point a and vb = eval env point b in
      match op with
      | Fortran.Fadd -> va +. vb
      | Fortran.Fsub -> va -. vb
      | Fortran.Fmul -> va *. vb
      | Fortran.Fdiv -> va /. vb)
  | Fortran.Neg a -> -.eval env point a

let run_nest env (n : Fortran.nest) : unit =
  let rec loops vars ranges point =
    match (vars, ranges) with
    | [], [] ->
        List.iter
          (fun (a : Fortran.assign) ->
            let name, idx = a.Fortran.lhs in
            let coords =
              List.map
                (fun (i : Fortran.index) ->
                  List.assoc i.Fortran.var point + i.Fortran.shift)
                idx
            in
            set (array env name) coords (eval env point a.Fortran.rhs))
          n.Fortran.assigns
    | v :: vars', (lo, hi) :: ranges' ->
        for i = lo to hi do
          loops vars' ranges' (point @ [ (v, i) ])
        done
    | _ -> invalid_arg "fortran reference: loop rank mismatch"
  in
  loops n.Fortran.loop_vars n.Fortran.ranges []

let run (k : Fortran.kernel) (env : env) : unit =
  for _ = 1 to k.Fortran.iterations do
    List.iter (run_nest env) k.Fortran.nests
  done

(* A Fortran-like kernel AST: what PSyclone's fparser front door produces
   for the NEMO-API codes we target (paper §5.2).  Scientists write plain
   Fortran loop nests over arrays; the PSyclone layer recognizes stencils in
   them and hands everything else to the Fortran pipeline. *)

type index = { var : string; shift : int }  (* e.g. i+1, k-2 *)

let ix ?(shift = 0) var = { var; shift }

type binop = Fadd | Fsub | Fmul | Fdiv

type expr =
  | Num of float
  | Scalar of string  (* named scalar constant (e.g. tcx) *)
  | Ref of string * index list  (* array reference a(i, j+1, k) *)
  | Bin of binop * expr * expr
  | Neg of expr

let ( +| ) a b = Bin (Fadd, a, b)
let ( -| ) a b = Bin (Fsub, a, b)
let ( *| ) a b = Bin (Fmul, a, b)
let ( /| ) a b = Bin (Fdiv, a, b)

type assign = { lhs : string * index list; rhs : expr }

(* A perfect loop nest: outermost first; [ranges] are inclusive Fortran
   bounds (lo, hi) per loop variable. *)
type nest = { loop_vars : string list; ranges : (int * int) list;
              assigns : assign list }

(* An array declaration with inclusive Fortran bounds per dimension, e.g.
   real u(0:nx+1, 0:ny+1). *)
type array_decl = { array_name : string; decl_bounds : (int * int) list }

type kernel = {
  kernel_name : string;
  arrays : array_decl list;
  scalars : (string * float) list;
  nests : nest list;
  iterations : int;  (* outer repetitions of the whole kernel body *)
}

let kernel ?(iterations = 1) ~name ~arrays ~scalars nests =
  { kernel_name = name; arrays; scalars; nests; iterations }

(* --- analysis helpers --- *)

let rec expr_reads (e : expr) : (string * index list) list =
  match e with
  | Num _ | Scalar _ -> []
  | Ref (a, idx) -> [ (a, idx) ]
  | Bin (_, a, b) -> expr_reads a @ expr_reads b
  | Neg a -> expr_reads a

let rec expr_flops = function
  | Num _ | Scalar _ | Ref _ -> 0
  | Bin (_, a, b) -> 1 + expr_flops a + expr_flops b
  | Neg a -> 1 + expr_flops a

let arrays_written (n : nest) =
  List.map (fun a -> fst a.lhs) n.assigns

let arrays_read (n : nest) =
  List.concat_map (fun a -> List.map fst (expr_reads a.rhs)) n.assigns
  |> List.sort_uniq compare

(* The kernel's dataflow boundary: arrays read before ever being written
   (primary inputs).  Together with the final output this is what must
   stream from/to external memory in a fused FPGA dataflow; everything
   else can live in on-chip streams. *)
let external_inputs (k : kernel) : string list =
  let written = ref [] in
  let inputs = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (a : assign) ->
          List.iter
            (fun (arr, _) ->
              if
                (not (List.mem arr !written))
                && not (List.mem arr !inputs)
              then inputs := arr :: !inputs)
            (expr_reads a.rhs);
          written := fst a.lhs :: !written)
        n.assigns)
    k.nests;
  List.rev !inputs

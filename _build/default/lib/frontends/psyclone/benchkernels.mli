(** The paper's two PSyclone evaluation workloads (§6.2), as Fortran-like
    kernels for the NEMO-API flow. *)

val pw_advection : shape:int list -> Fortran.kernel
(** The Piacsek–Williams advection scheme (MONC): three momentum-source
    computations in one loop nest, so the whole scheme fuses into a single
    stencil region. *)

val tracer_advection :
  ?iterations:int -> shape:int list -> unit -> Fortran.kernel
(** The NEMO tracer-advection benchmark (PSycloneBench): 18 loop nests with
    24 stencil updates, wrapped in an outer iteration loop (100 in the
    paper). *)

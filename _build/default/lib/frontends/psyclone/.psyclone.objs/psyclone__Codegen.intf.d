lib/frontends/psyclone/codegen.mli: Fortran Ir Op Typesys

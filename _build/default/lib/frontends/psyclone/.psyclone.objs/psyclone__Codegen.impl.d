lib/frontends/psyclone/codegen.ml: Arith Core Dialects Fortran Func Hashtbl Ir List Op Printf Psy_ir Scf Stencil Typesys Value

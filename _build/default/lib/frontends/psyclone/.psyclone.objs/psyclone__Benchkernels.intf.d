lib/frontends/psyclone/benchkernels.mli: Fortran

lib/frontends/psyclone/reference.ml: Array Fortran Hashtbl List Printf

lib/frontends/psyclone/psy_ir.mli: Fortran

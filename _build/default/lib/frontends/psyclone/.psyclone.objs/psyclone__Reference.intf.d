lib/frontends/psyclone/reference.mli: Fortran

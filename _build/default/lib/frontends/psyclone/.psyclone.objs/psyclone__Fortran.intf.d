lib/frontends/psyclone/fortran.mli:

lib/frontends/psyclone/psy_ir.ml: Fortran List Printf

lib/frontends/psyclone/fortran.ml: List

lib/frontends/psyclone/benchkernels.ml: Fortran List

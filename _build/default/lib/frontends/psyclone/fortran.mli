(** A Fortran-like kernel AST: what PSyclone's parser front door produces
    for the NEMO-API codes (paper §5.2) — loop nests over arrays with
    scalar constants. *)

type index = { var : string; shift : int }

val ix : ?shift:int -> string -> index

type binop = Fadd | Fsub | Fmul | Fdiv

type expr =
  | Num of float
  | Scalar of string
  | Ref of string * index list
  | Bin of binop * expr * expr
  | Neg of expr

val ( +| ) : expr -> expr -> expr
val ( -| ) : expr -> expr -> expr
val ( *| ) : expr -> expr -> expr
val ( /| ) : expr -> expr -> expr

type assign = { lhs : string * index list; rhs : expr }

(** A perfect loop nest, outermost variable first; [ranges] are inclusive
    Fortran bounds. *)
type nest = {
  loop_vars : string list;
  ranges : (int * int) list;
  assigns : assign list;
}

type array_decl = { array_name : string; decl_bounds : (int * int) list }

type kernel = {
  kernel_name : string;
  arrays : array_decl list;
  scalars : (string * float) list;
  nests : nest list;
  iterations : int;
}

val kernel :
  ?iterations:int ->
  name:string ->
  arrays:array_decl list ->
  scalars:(string * float) list ->
  nest list ->
  kernel

val expr_reads : expr -> (string * index list) list
val expr_flops : expr -> int
val arrays_written : nest -> string list
val arrays_read : nest -> string list

val external_inputs : kernel -> string list
(** Arrays read before ever being written: the kernel's primary inputs —
    together with the final output, the DDR boundary of a fused FPGA
    dataflow. *)

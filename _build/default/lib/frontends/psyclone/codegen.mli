(** Lowering PSy-IR to the shared stencil dialect (paper §5.2.1):
    recognized stencil regions become stencil.load/apply/store; a region
    with several computations becomes one fused apply with multiple results
    (why PW advection lowers to a single parallel region while tracer
    advection keeps 18). *)

open Ir

exception Unsupported of string
(** Raised on kernels containing Fortran the recognizer rejected. *)

val bounds_of_decl : Fortran.array_decl -> Typesys.bound list
(** Inclusive Fortran declaration bounds to half-open stencil bounds. *)

val compile : ?elt:Typesys.ty -> Fortran.kernel -> Op.t
(** One field argument per declared array, in declaration order. *)

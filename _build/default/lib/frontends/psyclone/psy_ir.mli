(** The xDSL-side PSy-IR (paper §5.2.1): a schedule that closely resembles
    PSyclone's own IR, on which the stencil recognizer turns eligible
    Fortran loop nests into stencil regions.  Everything the recognizer
    rejects is preserved as [Unrecognized] (the "escape hatch"). *)

type access = { array : string; offsets : int list }

(** One point update of a region. *)
type computation = {
  target : string;
  rhs : Fortran.expr;
  reads : access list;
}

type node =
  | Schedule of node list
  | Outer_loop of { count : int; body : node list }
  | Stencil_region of {
      region_name : string;
      dims : string list;
      ranges : (int * int) list;  (** inclusive Fortran bounds *)
      computations : computation list;
    }
  | Unrecognized of string

val offsets_of : loop_vars:string list -> Fortran.index list -> int list option
(** Constant offsets of an index list relative to the loop variables, if it
    follows the loop order. *)

exception Not_a_stencil of string

val recognize_nest : int -> Fortran.nest -> node
(** Recognize one loop nest: every assignment writes the loop point, every
    read sits at constant offsets; reads of arrays written earlier in the
    same nest must be at offset zero (forwarded through SSA inside the
    fused region).  Raises {!Not_a_stencil} otherwise. *)

val of_kernel : Fortran.kernel -> node
(** Translate a kernel, recognizing stencils nest by nest. *)

val count_regions : node -> int
val count_computations : node -> int

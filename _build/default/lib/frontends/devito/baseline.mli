(** The native-Devito comparison path (paper §6.1 baseline): reproduces
    standalone Devito's symbolic flop reduction (CSE, factorization of
    symmetric FD coefficients) and its advanced MPI schedule (diagonal
    exchanges with computation/communication overlap, Bisbas et al. 2023)
    at the feature level the machine models consume. *)

val cse_flops : Symbolic.expr -> int
(** Flops after hash-consing shared subtrees. *)

val factorized_flops : Symbolic.expr -> int
(** Flops after grouping additive (weight * access) terms by weight —
    symmetric FD weights repeat, so the saving grows with space order. *)

val features : Operator.t -> elt_bytes:int -> Machine.Features.t

val comm_schedule :
  Operator.t ->
  grid:int list ->
  elt_bytes:int ->
  local_interior:int list ->
  Machine.Net.schedule
(** Devito's schedule: face + diagonal messages, overlap enabled, optimized
    per-message host cost. *)

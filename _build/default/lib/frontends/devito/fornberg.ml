(* Finite-difference weights on uniform grids via Fornberg's algorithm
   (Fornberg 1988, "Generation of finite difference formulas on arbitrarily
   spaced grids").  Devito derives its stencil coefficients symbolically
   through SymPy; we compute the same central-difference weights directly. *)

(* Weights for the [m]-th derivative at x = 0 given sample locations
   [points] (grid offsets).  Returns one weight per point. *)
let weights ~m ~(points : float array) : float array =
  let n = Array.length points in
  if m >= n then invalid_arg "Fornberg.weights: need more points than m";
  (* c.(j).(k): weight of point j for the k-th derivative. *)
  let c = Array.make_matrix n (m + 1) 0. in
  let x0 = 0. in
  c.(0).(0) <- 1.;
  let c1 = ref 1. in
  for i = 1 to n - 1 do
    let c2 = ref 1. in
    let mn = min i m in
    for j = 0 to i - 1 do
      let c3 = points.(i) -. points.(j) in
      c2 := !c2 *. c3;
      for k = mn downto 0 do
        let prev_k1 = if k > 0 then c.(i - 1).(k - 1) else 0. in
        if j = i - 1 then
          c.(i).(k) <-
            !c1
            *. ((float_of_int k *. prev_k1)
               -. ((points.(i - 1) -. x0) *. c.(i - 1).(k)))
            /. !c2
        else ();
        let prev_jk1 = if k > 0 then c.(j).(k - 1) else 0. in
        c.(j).(k) <-
          (((points.(i) -. x0) *. c.(j).(k)) -. (float_of_int k *. prev_jk1))
          /. c3
      done
    done;
    c1 := !c2
  done;
  Array.init n (fun j -> c.(j).(m))

(* Central-difference weights for the [deriv]-th derivative with
   space-discretization order [order] (radius = order / 2 for second
   derivatives, following Devito's convention): returns (offset, weight)
   pairs scaled by 1 / h^deriv. *)
let central ~deriv ~order ~h : (int * float) list =
  if order mod 2 <> 0 then invalid_arg "Fornberg.central: order must be even";
  let radius = order / 2 in
  let offsets = Array.init ((2 * radius) + 1) (fun i -> i - radius) in
  let points = Array.map float_of_int offsets in
  let w = weights ~m: deriv ~points in
  let scale = 1. /. Float.pow h (float_of_int deriv) in
  Array.to_list
    (Array.mapi (fun i off -> (off, w.(i) *. scale)) offsets)
  |> List.filter (fun (_, w) -> Float.abs w > 1e-12)

(* First-order forward/backward differences in time, as used by u.dt and
   u.dt2 with Devito's default 1st/2nd-order time discretizations. *)
let forward_dt ~dt : (int * float) list =
  [ (1, 1. /. dt); (0, -1. /. dt) ]

let central_dt2 ~dt : (int * float) list =
  let d2 = dt *. dt in
  [ (1, 1. /. d2); (0, -2. /. d2); (-1, 1. /. d2) ]

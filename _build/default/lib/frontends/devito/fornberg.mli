(** Finite-difference weights on uniform grids via Fornberg's algorithm
    (Fornberg 1988).  Devito derives its stencil coefficients symbolically
    through SymPy; this computes the same central-difference weights
    directly. *)

val weights : m:int -> points:float array -> float array
(** Weights of the [m]-th derivative at x = 0 for the given sample
    locations. *)

val central : deriv:int -> order:int -> h:float -> (int * float) list
(** Central-difference (offset, weight) pairs for the [deriv]-th derivative
    at accuracy [order] on spacing [h]; zero weights are dropped. *)

val forward_dt : dt:float -> (int * float) list
(** First-order forward difference in time (u.dt). *)

val central_dt2 : dt:float -> (int * float) list
(** Second-order central difference in time (u.dt2). *)

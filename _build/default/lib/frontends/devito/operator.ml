(* The Devito Operator: compile a solved update equation into a stencil
   dialect module with a time loop and circular buffer rotation (paper §5.1,
   fig. 5/6).  The integration happens at the highest level of Devito's IR:
   the symbolic expression is parsed for read/write accesses and translated
   into stencil.apply / stencil.load / stencil.store plus scf/arith ops. *)

open Ir
open Dialects
open Core

type t = {
  op_name : string;
  target : Symbolic.field;  (* the time function being updated *)
  update : Symbolic.expr;  (* rhs of u[t+1] = ... *)
  coefficients : Symbolic.field list;  (* read-only fields in the rhs *)
  time_depth : int;  (* number of rotating buffers for the target *)
  halo : (int * int) array;
  timesteps : int;
}

(* Symmetric ghost margin per dimension: the stencil radius. *)
let margin spec =
  Array.to_list (Array.map (fun (n, p) -> max (-n) p) spec.halo)

let field_bounds spec (fl : Symbolic.field) =
  let m = margin spec in
  List.map2
    (fun n r -> Typesys.bound (-r) (n + r))
    fl.Symbolic.fgrid.shape m

let create ~name ?(timesteps = 1) ((u, rhs) : Symbolic.field * Symbolic.expr)
    : t =
  let rank = Symbolic.rank u in
  let reads = Symbolic.distinct_reads rhs in
  let coefficients =
    List.filter_map
      (fun ((fl : Symbolic.field), _) ->
        if fl.Symbolic.name = u.Symbolic.name then None else Some fl)
      reads
    |> List.sort_uniq (fun a b ->
           compare a.Symbolic.name b.Symbolic.name)
  in
  let max_back =
    List.fold_left
      (fun acc ((fl : Symbolic.field), t) ->
        if fl.Symbolic.name = u.Symbolic.name then min acc t else acc)
      0 reads
  in
  {
    op_name = name;
    target = u;
    update = rhs;
    coefficients;
    time_depth = 2 - max_back;
    halo = Symbolic.halo_of_expr ~rank rhs;
    timesteps;
  }

(* Generate the arith ops for the rhs at one grid point.  [access] resolves
   a (field, time shift, offsets) triple to a scalar value. *)
let rec gen_expr bld ~elt ~access (e : Symbolic.expr) : Value.t =
  match e with
  | Symbolic.Const c -> Arith.const_float bld ~ty: elt c
  | Symbolic.Access (fl, t, offs) -> access fl t offs
  | Symbolic.Add (a, b) ->
      Arith.add_f bld (gen_expr bld ~elt ~access a) (gen_expr bld ~elt ~access b)
  | Symbolic.Sub (a, b) ->
      Arith.sub_f bld (gen_expr bld ~elt ~access a) (gen_expr bld ~elt ~access b)
  | Symbolic.Mul (a, b) ->
      Arith.mul_f bld (gen_expr bld ~elt ~access a) (gen_expr bld ~elt ~access b)
  | Symbolic.Div (a, b) ->
      Arith.div_f bld (gen_expr bld ~elt ~access a) (gen_expr bld ~elt ~access b)
  | Symbolic.Neg a -> Arith.neg_f bld (gen_expr bld ~elt ~access a)

(* Build the stencil-dialect module.

   Function signature: one field argument per time level of the target
   (oldest first), then one per coefficient field.  The body is
   scf.for t: load the levels read by the rhs, apply, store into the
   scratch (oldest) buffer, rotate. *)
let build ?(elt = Typesys.f32) (spec : t) : Op.t =
  let u = spec.target in
  let n = u.Symbolic.fgrid.shape in
  let u_bounds = field_bounds spec u in
  let u_ty = Stencil.field_ty u_bounds elt in
  let coeff_tys =
    List.map
      (fun fl -> Stencil.field_ty (field_bounds spec fl) elt)
      spec.coefficients
  in
  let arg_tys = List.init spec.time_depth (fun _ -> u_ty) @ coeff_tys in
  let out_bounds = List.map (fun d -> Typesys.bound 0 d) n in
  let fdef =
    Func.define spec.op_name ~arg_tys ~res_tys: arg_tys (fun bld args ->
        let time_bufs, coeff_bufs =
          let rec split k xs =
            if k = 0 then ([], xs)
            else
              match xs with
              | x :: rest ->
                  let a, b = split (k - 1) rest in
                  (x :: a, b)
              | [] -> assert false
          in
          split spec.time_depth args
        in
        let lo = Arith.const_index bld 0 in
        let hi = Arith.const_index bld spec.timesteps in
        let step = Arith.const_index bld 1 in
        let outs =
          Scf.for_op bld ~lo ~hi ~step ~init: (time_bufs @ coeff_bufs)
            (fun body _iv iters ->
              let rec split k xs =
                if k = 0 then ([], xs)
                else
                  match xs with
                  | x :: rest ->
                      let a, b = split (k - 1) rest in
                      (x :: a, b)
                  | [] -> assert false
              in
              let levels, coeffs = split spec.time_depth iters in
              (* levels = [oldest; ...; current]; write into oldest. *)
              let current = List.nth levels (spec.time_depth - 1) in
              let scratch = List.hd levels in
              (* Load each (field, tshift) actually read. *)
              let reads = Symbolic.distinct_reads spec.update in
              let load_of ((fl : Symbolic.field), t) =
                if fl.Symbolic.name = u.Symbolic.name then
                  (* t = 0 -> current; t = -1 -> previous = levels[depth-2]. *)
                  let idx = spec.time_depth - 1 + t in
                  Stencil.load_op body (List.nth levels idx)
                else begin
                  let rec find i = function
                    | [] -> Op.ill_formed "unknown coefficient field"
                    | (c : Symbolic.field) :: rest ->
                        if c.Symbolic.name = fl.Symbolic.name then
                          List.nth coeffs i
                        else find (i + 1) rest
                  in
                  Stencil.load_op body (find 0 spec.coefficients)
                end
              in
              let temps = List.map (fun r -> (r, load_of r)) reads in
              let inputs = List.map snd temps in
              let results =
                Stencil.apply_op body ~inputs ~out_bounds ~elt ~n_results: 1
                  (fun ab bargs ->
                    let temp_args = List.combine (List.map fst temps) bargs in
                    let access fl t offs =
                      let rec find = function
                        | [] ->
                            Op.ill_formed "access to unloaded field %s"
                              fl.Symbolic.name
                        | (((fl' : Symbolic.field), t'), arg) :: rest ->
                            if fl'.Symbolic.name = fl.Symbolic.name && t' = t
                            then arg
                            else find rest
                      in
                      Stencil.access_op ab (find temp_args) offs
                    in
                    let v = gen_expr ab ~elt ~access spec.update in
                    Stencil.return_vals ab [ v ])
              in
              Stencil.store_op body (List.hd results) scratch
                ~lb: (List.map (fun _ -> 0) n)
                ~ub: n;
              (* Rotate: drop the oldest (now newest) to the back. *)
              let rotated = List.tl levels @ [ scratch ] in
              ignore current;
              Scf.yield_op body (rotated @ coeffs))
        in
        Func.return_op bld outs)
  in
  Op.module_op [ fdef ]

(* Convenience: model, solve, build in one go, as in Devito's
   `op = Operator(Eq(u.forward, solve(eqn, u.forward)))`. *)
let operator ~name ?timesteps ?elt eqn =
  let solved = Symbolic.solve eqn in
  let spec = create ~name ?timesteps solved in
  (spec, build ?elt spec)

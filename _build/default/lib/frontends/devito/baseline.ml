(* The *native Devito* comparison path (paper §6.1 baseline).

   Standalone Devito applies symbolic flop-reduction passes (common
   sub-expression elimination, factorization of symmetric finite-difference
   coefficients) before emitting C, and its MPI layer supports diagonal
   halo exchanges with computation/communication overlap (Bisbas et al.
   2023).  This module reproduces those effects at the symbolic level: it
   measures the baseline's effective kernel features (flops after symbolic
   optimization) and communication schedule, which the machine models
   consume next to the shared-stack ("xDSL-Devito") features measured from
   the compiled IR. *)

open Symbolic

(* Structural key for expression hash-consing. *)
let rec key (e : expr) : string =
  match e with
  | Const c -> Printf.sprintf "c%.17g" c
  | Access (fl, t, offs) ->
      Printf.sprintf "a%s@%d[%s]" fl.name t
        (String.concat "," (List.map string_of_int offs))
  | Add (a, b) -> Printf.sprintf "(+ %s %s)" (key a) (key b)
  | Sub (a, b) -> Printf.sprintf "(- %s %s)" (key a) (key b)
  | Mul (a, b) -> Printf.sprintf "(* %s %s)" (key a) (key b)
  | Div (a, b) -> Printf.sprintf "(/ %s %s)" (key a) (key b)
  | Neg a -> Printf.sprintf "(~ %s)" (key a)

(* Flops after hash-consing common subexpressions: every distinct non-leaf
   node costs one op, shared subtrees cost once. *)
let cse_flops (e : expr) : int =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go e =
    let k = key e in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      match e with
      | Const _ | Access _ -> ()
      | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
          incr count;
          go a;
          go b
      | Neg a ->
          incr count;
          go a
    end
  in
  go e;
  !count

(* Flatten nested additions into a term list. *)
let rec terms = function
  | Add (a, b) -> terms a @ terms b
  | e -> [ e ]

(* Factorization: group additive terms of the form (w * access) by their
   coefficient w, turning sum_i w*a_i into w * sum_i a_i.  Symmetric FD
   weights repeat 2d times per coefficient, so the saving grows with the
   space order — exactly why native Devito pulls ahead at high arithmetic
   intensity in fig. 7. *)
let rec factorized_flops (e : expr) : int =
  match e with
  | Const _ | Access _ -> 0
  | Add _ ->
      let ts = terms e in
      let groups : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let other = ref 0 and n_other = ref 0 in
      List.iter
        (fun t ->
          match t with
          | Mul (Const w, Access _) | Mul (Access _, Const w) ->
              let k = Printf.sprintf "%.17g" w in
              Hashtbl.replace groups k
                (1 + try Hashtbl.find groups k with Not_found -> 0)
          | t ->
              incr n_other;
              other := !other + factorized_flops t)
        ts;
      let grouped =
        Hashtbl.fold
          (fun _ n acc ->
            (* n accesses: (n-1) adds + 1 multiply by the shared weight *)
            acc + (n - 1) + 1)
          groups 0
      in
      let n_groups = Hashtbl.length groups in
      let joins = max 0 (n_groups + !n_other - 1) in
      grouped + !other + joins
  | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      1 + factorized_flops a + factorized_flops b
  | Neg a -> 1 + factorized_flops a

(* Features of the native-Devito compiled kernel for the machine model. *)
let features (spec : Operator.t) ~(elt_bytes : int) : Machine.Features.t =
  let e = spec.Operator.update in
  let reads = Symbolic.count_accesses e in
  let inputs =
    List.length (Symbolic.distinct_reads e)
  in
  let radius =
    Array.fold_left
      (fun acc (n, p) -> max acc (max (-n) p))
      0 spec.Operator.halo
  in
  let points =
    List.fold_left
      (fun acc n -> acc * n)
      1 spec.Operator.target.Symbolic.fgrid.shape
  in
  {
    Machine.Features.flops_per_pt = float_of_int (factorized_flops e);
    reads_per_pt = float_of_int reads;
    unique_bytes_per_pt = float_of_int ((inputs + 2) * elt_bytes);
    stencil_regions = 1;
    points_per_step = float_of_int points;
    elt_bytes;
    radius;
  }

(* Devito's MPI schedule (Bisbas et al. 2023): diagonal exchanges in the
   cartesian topology and communication/computation overlap.  Diagonals add
   messages (up to 3^d - 1 neighbors) but tiny volumes; overlap hides most
   of the cost. *)
let comm_schedule (spec : Operator.t) ~(grid : int list) ~(elt_bytes : int)
    ~(local_interior : int list) : Machine.Net.schedule =
  let dims_decomposed =
    List.length (List.filter (fun g -> g > 1) grid)
  in
  let r = Array.fold_left (fun acc (n, p) -> max acc (max (-n) p)) 0 spec.Operator.halo in
  (* Face volumes as in the standard scheme. *)
  let face_bytes =
    List.mapi
      (fun d n_d ->
        if List.nth grid d > 1 then
          let others =
            List.filteri (fun i _ -> i <> d) local_interior
            |> List.fold_left ( * ) 1
          in
          2 * r * others
        else 0 |> fun v -> ignore n_d; v)
      local_interior
    |> List.fold_left ( + ) 0
  in
  let face_msgs = 2 * dims_decomposed in
  (* Diagonal neighbors: edges/corners, small volumes r^2 / r^3 scale. *)
  let diag_msgs =
    match dims_decomposed with
    | 0 | 1 -> 0
    | 2 -> 4
    | _ -> 12 + 8
  in
  {
    Machine.Net.messages = face_msgs + diag_msgs;
    bytes =
      float_of_int ((face_bytes * elt_bytes) + (diag_msgs * r * r * elt_bytes));
    overlap = true;
    host_us_per_msg = Machine.Net.devito_host_us_per_msg;
  }

(* The Devito-style symbolic layer: grids, (time-)functions, symbolic
   expressions with finite-difference derivative operators, equations and
   [solve] (paper §5.1, listing 5).

   Users model PDEs as textbook maths; derivative operators expand to
   weighted sums of shifted accesses using Fornberg weights, and [solve]
   inverts the time discretization to produce the forward-update
   expression. *)

type grid = {
  shape : int list;  (** interior points per dimension *)
  spacing : float list;  (** grid spacing h per dimension *)
  dt : float;  (** timestep *)
}

let grid ?(spacing = []) ?(dt = 0.1) shape =
  let spacing =
    if spacing = [] then List.map (fun _ -> 1.) shape else spacing
  in
  { shape; spacing; dt }

(* A discretized field on a grid.  [time_order] > 0 makes it a
   TimeFunction with that many levels of history. *)
type field = {
  name : string;
  fgrid : grid;
  space_order : int;
  time_order : int;
}

let function_ ?(time_order = 1) ?(space_order = 2) name fgrid =
  { name; fgrid; space_order; time_order }

(* Symbolic expressions.  An access names a field at a relative time shift
   (0 = current step, +1 = forward, -1 = backward) and relative space
   offsets. *)
type expr =
  | Const of float
  | Access of field * int * int list
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr

let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) a b = Mul (a, b)
let ( /: ) a b = Div (a, b)
let f c = Const c

(* u at the current timestep, centered. *)
let at ?(t = 0) field offsets = Access (field, t, offsets)

let here field = at field (List.map (fun _ -> 0) field.fgrid.shape)

let forward field = at ~t: 1 field (List.map (fun _ -> 0) field.fgrid.shape)
let backward field = at ~t: (-1) field (List.map (fun _ -> 0) field.fgrid.shape)

let rank field = List.length field.fgrid.shape

let shift_offsets base d off =
  List.mapi (fun i o -> if i = d then o + off else o) base

(* Weighted sum of spatially shifted accesses. *)
let weighted_sum field t weights_per_dim =
  List.fold_left
    (fun acc (d, terms) ->
      List.fold_left
        (fun acc (off, w) ->
          let zero = List.map (fun _ -> 0) field.fgrid.shape in
          let a = Access (field, t, shift_offsets zero d off) in
          let term = Mul (Const w, a) in
          match acc with None -> Some term | Some e -> Some (Add (e, term)))
        acc terms)
    None weights_per_dim
  |> Option.get

(* Second space derivative along dimension [d]. *)
let d2 field d =
  let h = List.nth field.fgrid.spacing d in
  let terms = Fornberg.central ~deriv: 2 ~order: field.space_order ~h in
  weighted_sum field 0 [ (d, terms) ]

(* First space derivative along [d] (central). *)
let d1 field d =
  let h = List.nth field.fgrid.spacing d in
  let terms = Fornberg.central ~deriv: 1 ~order: field.space_order ~h in
  weighted_sum field 0 [ (d, terms) ]

(* The Laplacian: sum of second derivatives over all dimensions. *)
let laplace field =
  let n = rank field in
  let rec go d = if d = n - 1 then d2 field d else Add (d2 field d, go (d + 1))
  in
  go 0

(* Time derivatives (symbolic markers resolved by [solve]). *)
type time_derivative = Dt of field | Dt2 of field

type equation = Eq of time_derivative * expr

let eq lhs rhs = Eq (lhs, rhs)

(* Devito's [solve(eqn, u.forward)]: invert the time discretization.

   - u.dt  = rhs  with forward difference:
       (u[t+1] - u[t]) / dt = rhs      =>  u[t+1] = u[t] + dt * rhs
   - u.dt2 = rhs  with central difference:
       (u[t+1] - 2u[t] + u[t-1]) / dt² = rhs
                                        =>  u[t+1] = 2u[t] - u[t-1] + dt²rhs *)
let solve (Eq (lhs, rhs)) : field * expr =
  match lhs with
  | Dt u ->
      let dt = u.fgrid.dt in
      (u, here u +: (f dt *: rhs))
  | Dt2 u ->
      let dt = u.fgrid.dt in
      ( u,
        (f 2. *: here u) -: backward u +: (f (dt *. dt) *: rhs) )

(* --- expression analysis shared by codegen and the baseline optimizer --- *)

(* All (field, time shift) pairs read by an expression. *)
let rec reads (e : expr) : (field * int) list =
  match e with
  | Const _ -> []
  | Access (fl, t, _) -> [ (fl, t) ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> reads a @ reads b
  | Neg a -> reads a

let distinct_reads e =
  List.sort_uniq
    (fun (f1, t1) (f2, t2) ->
      compare (f1.name, t1) (f2.name, t2))
    (reads e)

(* Spatial halo (neg, pos) per dimension required by [e]. *)
let halo_of_expr ~rank e =
  let halo = Array.make rank (0, 0) in
  let rec go = function
    | Const _ -> ()
    | Access (_, _, offs) ->
        List.iteri
          (fun d o ->
            if d < rank then begin
              let n, p = halo.(d) in
              halo.(d) <- (min n o, max p o)
            end)
          offs
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        go a;
        go b
    | Neg a -> go a
  in
  go e;
  halo

(* Raw flop count of an expression tree. *)
let rec flops = function
  | Const _ | Access _ -> 0
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + flops a + flops b
  | Neg a -> 1 + flops a

(* Number of distinct access terms (memory operands). *)
let access_count e = List.length (distinct_reads e)

let rec count_accesses = function
  | Const _ -> 0
  | Access _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      count_accesses a + count_accesses b
  | Neg a -> count_accesses a

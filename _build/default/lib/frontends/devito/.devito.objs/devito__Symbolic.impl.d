lib/frontends/devito/symbolic.ml: Array Fornberg List Option

lib/frontends/devito/baseline.mli: Machine Operator Symbolic

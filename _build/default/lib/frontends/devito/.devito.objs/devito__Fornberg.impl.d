lib/frontends/devito/fornberg.ml: Array Float List

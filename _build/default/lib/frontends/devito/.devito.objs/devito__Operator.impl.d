lib/frontends/devito/operator.ml: Arith Array Core Dialects Func Ir List Op Scf Stencil Symbolic Typesys Value

lib/frontends/devito/fornberg.mli:

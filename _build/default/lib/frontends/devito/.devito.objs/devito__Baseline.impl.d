lib/frontends/devito/baseline.ml: Array Hashtbl List Machine Operator Printf String Symbolic

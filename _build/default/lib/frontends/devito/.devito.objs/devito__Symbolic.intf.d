lib/frontends/devito/symbolic.mli:

lib/frontends/devito/operator.mli: Ir Op Symbolic Typesys

(** The Devito-style symbolic layer (paper §5.1, listing 5): grids,
    (time-)functions, symbolic expressions with finite-difference
    derivative operators, equations and [solve].  Users model PDEs as
    textbook maths; derivative operators expand to weighted sums of shifted
    accesses (Fornberg weights) and [solve] inverts the time
    discretization into the forward-update expression. *)

type grid = {
  shape : int list;  (** interior points per dimension *)
  spacing : float list;
  dt : float;
}

val grid : ?spacing:float list -> ?dt:float -> int list -> grid

type field = {
  name : string;
  fgrid : grid;
  space_order : int;
  time_order : int;
}

val function_ : ?time_order:int -> ?space_order:int -> string -> grid -> field
(** A discretized (time-)function on a grid, as in
    [TimeFunction(name='u', grid=grid, space_order=2)]. *)

(** Symbolic expressions: an access names a field at a relative time shift
    and relative space offsets. *)
type expr =
  | Const of float
  | Access of field * int * int list
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr

val f : float -> expr
(** A floating-point literal. *)

val at : ?t:int -> field -> int list -> expr
val here : field -> expr
val forward : field -> expr
val backward : field -> expr
val rank : field -> int
val shift_offsets : int list -> int -> int -> int list

val d1 : field -> int -> expr
(** First central space derivative along a dimension. *)

val d2 : field -> int -> expr
(** Second central space derivative along a dimension. *)

val laplace : field -> expr
(** Sum of second derivatives over all dimensions. *)

(** Time-derivative markers resolved by {!solve}. *)
type time_derivative = Dt of field | Dt2 of field

type equation = Eq of time_derivative * expr

val eq : time_derivative -> expr -> equation

val solve : equation -> field * expr
(** Devito's [solve(eqn, u.forward)]: invert the time discretization.
    [u.dt = rhs] yields [u + dt*rhs]; [u.dt2 = rhs] yields
    [2u - u.backward + dt²·rhs]. *)

(** {1 Expression analyses} *)

val reads : expr -> (field * int) list
val distinct_reads : expr -> (field * int) list
val halo_of_expr : rank:int -> expr -> (int * int) array
val flops : expr -> int
val access_count : expr -> int
val count_accesses : expr -> int

(** The Devito Operator (paper §5.1, figs. 5–6): compile a solved update
    equation into a stencil-dialect module with a time loop and circular
    buffer rotation.  Integration happens at the highest level of Devito's
    IR: the symbolic expression is parsed for read/write accesses and
    translated into stencil/scf/arith ops. *)

open Ir

type t = {
  op_name : string;
  target : Symbolic.field;
  update : Symbolic.expr;
  coefficients : Symbolic.field list;  (** read-only rhs fields *)
  time_depth : int;  (** rotating buffers (2 for heat, 3 for wave) *)
  halo : (int * int) array;
  timesteps : int;
}

val margin : t -> int list
(** Symmetric ghost margin per dimension (the stencil radius). *)

val field_bounds : t -> Symbolic.field -> Typesys.bound list

val create : name:string -> ?timesteps:int -> Symbolic.field * Symbolic.expr -> t

val build : ?elt:Typesys.ty -> t -> Op.t
(** The stencil-dialect module: one field argument per time level plus the
    coefficient fields; scf.for time loop with load/apply/store and buffer
    rotation. *)

val operator :
  name:string ->
  ?timesteps:int ->
  ?elt:Typesys.ty ->
  Symbolic.equation ->
  t * Op.t
(** Model, solve and build in one go, as in
    [Operator(Eq(u.forward, solve(eqn, u.forward)))]. *)

(** The IR interpreter: a reference executor for every dialect in the
    stack.  It runs programs at any lowering stage — high-level stencil
    programs, scf/memref loop nests, and fully lowered modules whose MPI_*
    calls are bound to external handlers — so each lowering is validated by
    comparing executions before and after. *)

open Ir

type externs = Op.t -> Rtval.t list -> Rtval.t list option
(** Handler for ops the interpreter does not know (mpi/dmp dialects,
    external function calls).  For external calls the handler receives a
    stub func.call op carrying the callee symbol. *)

type t = {
  funcs : (string, Op.t) Hashtbl.t;
  externs : externs;
  mutable ops_executed : int;  (** total ops evaluated, a cost proxy *)
}

val create : ?externs:externs -> Op.t -> t
(** Index the functions of a module. *)

val run : t -> string -> Rtval.t list -> Rtval.t list
(** Call a function by symbol name with the given arguments. *)

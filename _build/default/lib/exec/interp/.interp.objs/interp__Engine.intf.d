lib/exec/interp/engine.mli: Hashtbl Ir Op Rtval

lib/exec/interp/engine.ml: Core Dialects Float Hashtbl Ir List Op Queue Rtval Typesys Value

lib/exec/interp/rtval.mli: Format Ir Queue

lib/exec/interp/rtval.ml: Array Format Ir List Queue

(** Operations, regions and blocks — the SSA+Regions program structure.

    Operations are immutable: rewrites rebuild enclosing blocks.  Regions
    contain blocks; every abstraction in the paper uses single-block regions
    and the helpers below assume that shape where noted. *)

type t = {
  name : string;  (** Fully-qualified op name, e.g. ["stencil.apply"]. *)
  operands : Value.t list;
  results : Value.t list;
  attrs : (string * Typesys.attr) list;
  regions : region list;
}

and region = { blocks : block list }

and block = { args : Value.t list; ops : t list }

val make :
  ?operands:Value.t list ->
  ?results:Value.t list ->
  ?attrs:(string * Typesys.attr) list ->
  ?regions:region list ->
  string ->
  t

val block : ?args:Value.t list -> t list -> block

val region : ?args:Value.t list -> t list -> region
(** Single-block region whose block has the given arguments. *)

val single_block : region -> block
(** Raises [Invalid_argument] unless the region has exactly one block. *)

val region_ops : region -> t list
val region_args : region -> Value.t list

val attr : t -> string -> Typesys.attr option
val has_attr : t -> string -> bool
val set_attr : t -> string -> Typesys.attr -> t
val remove_attr : t -> string -> t

exception Ill_formed of string
(** Raised when IR violates an op's structural expectations. *)

val ill_formed : ('a, Format.formatter, unit, 'b) format4 -> 'a

val attr_exn : t -> string -> Typesys.attr
val int_attr_exn : t -> string -> int
val string_attr_exn : t -> string -> string
val symbol_attr_exn : t -> string -> string
val dense_attr_exn : t -> string -> int list
val result_exn : t -> Value.t
val operand_exn : t -> int -> Value.t

val walk : (t -> unit) -> t -> unit
(** Pre-order visit of the op and everything nested in its regions. *)

val walk_regions : (t -> unit) -> t -> unit
(** Like [walk] but skips the root op itself. *)

val exists : (t -> bool) -> t -> bool
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val count_ops : t -> int

val substitute : Value.t Value.Map.t -> t -> t
(** Replace operand uses (recursively) according to the map. *)

val clone : t -> t
(** Deep copy with fresh result values and fresh nested definitions. *)

val defined_values : t -> Value.Set.t
val free_values : t -> Value.Set.t

val module_op : t list -> t
(** Wrap top-level ops in a [builtin.module]. *)

val module_ops : t -> t list
val with_module_ops : t -> t list -> t

val lookup_symbol : t -> string -> t option
(** Find a top-level op whose [sym_name] attribute matches. *)

(** SSA values: each is defined exactly once, either as an operation result or
    as a block argument.  Identity is a process-unique integer id; the value's
    type travels with it so lowerings can read (e.g. stencil bounds)
    information directly off operands. *)

type t = { id : int; ty : Typesys.ty }

val fresh : Typesys.ty -> t
(** Allocate a value with a fresh id. *)

val with_id : int -> Typesys.ty -> t
(** Materialize a value with a given id (parser only); keeps the internal
    counter ahead of every explicit id. *)

val id : t -> int
val ty : t -> Typesys.ty
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [%id]. *)

val pp_typed : Format.formatter -> t -> unit
(** Prints [%id : ty]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

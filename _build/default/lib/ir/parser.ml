(* Recursive-descent parser for the generic textual IR format produced by
   Printer.  The two are developed together; round-tripping is enforced by
   property tests. *)

open Lexer

exception Parse_error of string

type state = { mutable toks : token list; values : (int, Value.t) Hashtbl.t }

let error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t = peek st in
  if t = tok then advance st
  else error "expected %s, found %s" (token_to_string tok) (token_to_string t)

let expect_ident st name =
  match peek st with
  | IDENT s when s = name -> advance st
  | t -> error "expected %S, found %s" name (token_to_string t)

let parse_int st =
  match peek st with
  | INT i ->
      advance st;
      i
  | t -> error "expected integer, found %s" (token_to_string t)

(* Sequences like 4x5x2 appear as DIM 4, DIM 5, INT 2. *)
let parse_dims_then_int st =
  let rec go acc =
    match peek st with
    | DIM d ->
        advance st;
        go (d :: acc)
    | INT i ->
        advance st;
        List.rev (i :: acc)
    | t -> error "expected dimension, found %s" (token_to_string t)
  in
  go []

let parse_int_list st =
  expect st LBRACK;
  let rec go acc =
    match peek st with
    | RBRACK ->
        advance st;
        List.rev acc
    | COMMA ->
        advance st;
        go acc
    | INT i ->
        advance st;
        go (i :: acc)
    | t -> error "expected int in list, found %s" (token_to_string t)
  in
  go []

let parse_bound st =
  expect st LBRACK;
  let lo = parse_int st in
  expect st COMMA;
  let hi = parse_int st in
  expect st RBRACK;
  Typesys.{ lo; hi }

let rec parse_ty st : Typesys.ty =
  match peek st with
  | IDENT "i1" ->
      advance st;
      Typesys.i1
  | IDENT "i8" ->
      advance st;
      Typesys.Int W8
  | IDENT "i16" ->
      advance st;
      Typesys.Int W16
  | IDENT "i32" ->
      advance st;
      Typesys.i32
  | IDENT "i64" ->
      advance st;
      Typesys.i64
  | IDENT "f32" ->
      advance st;
      Typesys.f32
  | IDENT "f64" ->
      advance st;
      Typesys.f64
  | IDENT "index" ->
      advance st;
      Typesys.Index
  | IDENT "none" ->
      advance st;
      Typesys.None_type
  | IDENT "memref" ->
      advance st;
      expect st LT;
      let rec dims acc =
        match peek st with
        | DIM d ->
            advance st;
            dims (d :: acc)
        | _ -> List.rev acc
      in
      let shape = dims [] in
      let elt = parse_ty st in
      expect st GT;
      Typesys.Memref (shape, elt)
  | LPAREN ->
      let args = parse_ty_parens st in
      expect st ARROW;
      let res = parse_ty_parens st in
      Typesys.Fn (args, res)
  | BANG name ->
      advance st;
      parse_bang_ty st name
  | t -> error "expected type, found %s" (token_to_string t)

and parse_ty_parens st =
  expect st LPAREN;
  let rec go acc =
    match peek st with
    | RPAREN ->
        advance st;
        List.rev acc
    | COMMA ->
        advance st;
        go acc
    | _ ->
        let t = parse_ty st in
        go (t :: acc)
  in
  go []

and parse_bounded_ty st =
  (* [lo,hi] x [lo,hi] x elt-type *)
  let rec go acc =
    match peek st with
    | LBRACK ->
        let b = parse_bound st in
        expect_ident st "x";
        go (b :: acc)
    | _ ->
        let elt = parse_ty st in
        (List.rev acc, elt)
  in
  go []

and parse_bang_ty st name =
  match name with
  | "llvm.ptr" -> Typesys.Ptr
  | "mpi.request" -> Typesys.Request
  | "mpi.status" -> Typesys.Status
  | "mpi.datatype" -> Typesys.Datatype
  | "mpi.comm" -> Typesys.Comm
  | "mpi.request_array" ->
      expect st LT;
      let n = parse_int st in
      expect st GT;
      Typesys.Request_array n
  | "stencil.result" ->
      expect st LT;
      let t = parse_ty st in
      expect st GT;
      Typesys.Result_type t
  | "stencil.field" ->
      expect st LT;
      let bs, elt = parse_bounded_ty st in
      expect st GT;
      Typesys.Field (bs, elt)
  | "stencil.temp" ->
      expect st LT;
      let bs, elt = parse_bounded_ty st in
      expect st GT;
      Typesys.Temp (bs, elt)
  | "hls.stream" ->
      expect st LT;
      let t = parse_ty st in
      expect st GT;
      Typesys.Stream t
  | _ -> error "unknown dialect type !%s" name

let rec parse_attr st : Typesys.attr =
  match peek st with
  | IDENT "unit" ->
      advance st;
      Typesys.Unit_attr
  | IDENT "true" ->
      advance st;
      Typesys.Bool_attr true
  | IDENT "false" ->
      advance st;
      Typesys.Bool_attr false
  | IDENT "type" ->
      advance st;
      expect st LT;
      let t = parse_ty st in
      expect st GT;
      Typesys.Type_attr t
  | IDENT "dense" ->
      advance st;
      expect st LT;
      let xs = parse_int_list st in
      expect st GT;
      Typesys.Dense_attr xs
  | INT v ->
      advance st;
      expect st COLON;
      let t = parse_ty st in
      Typesys.Int_attr (v, t)
  | FLOAT v ->
      advance st;
      expect st COLON;
      let t = parse_ty st in
      Typesys.Float_attr (v, t)
  | STRING s ->
      advance st;
      Typesys.String_attr s
  | AT s ->
      advance st;
      Typesys.Symbol_attr s
  | LBRACK ->
      advance st;
      let rec go acc =
        match peek st with
        | RBRACK ->
            advance st;
            List.rev acc
        | COMMA ->
            advance st;
            go acc
        | _ ->
            let a = parse_attr st in
            go (a :: acc)
      in
      Typesys.Array_attr (go [])
  | HASH "dmp.grid" ->
      advance st;
      expect st LT;
      let dims = parse_dims_then_int st in
      expect st GT;
      Typesys.Grid_attr dims
  | HASH "dmp.exchange" ->
      advance st;
      expect st LT;
      expect_ident st "at";
      let ex_offset = parse_int_list st in
      expect_ident st "size";
      let ex_size = parse_int_list st in
      expect_ident st "source";
      expect_ident st "offset";
      let ex_source_offset = parse_int_list st in
      expect_ident st "to";
      let ex_neighbor = parse_int_list st in
      expect st GT;
      Typesys.Exchange_attr
        { ex_offset; ex_size; ex_source_offset; ex_neighbor }
  | t -> error "expected attribute, found %s" (token_to_string t)

let parse_attr_dict st =
  if peek st <> LBRACE then []
  else begin
    advance st;
    let rec go acc =
      match peek st with
      | RBRACE ->
          advance st;
          List.rev acc
      | COMMA ->
          advance st;
          go acc
      | IDENT key ->
          advance st;
          expect st EQUAL;
          let a = parse_attr st in
          go ((key, a) :: acc)
      | t -> error "expected attribute key, found %s" (token_to_string t)
    in
    go []
  end

let define_value st id ty =
  let v = Value.with_id id ty in
  Hashtbl.replace st.values id v;
  v

let use_value st id =
  match Hashtbl.find_opt st.values id with
  | Some v -> v
  | None -> error "use of undefined value %%%d" id

let rec parse_op st : Op.t =
  (* optional result list *)
  let result_ids =
    match peek st with
    | PERCENT _ ->
        let rec go acc =
          match peek st with
          | PERCENT id ->
              advance st;
              (match peek st with
              | COMMA ->
                  advance st;
                  go (id :: acc)
              | EQUAL ->
                  advance st;
                  List.rev (id :: acc)
              | t ->
                  error "expected ',' or '=' after result, found %s"
                    (token_to_string t))
          | t -> error "expected result value, found %s" (token_to_string t)
        in
        go []
    | _ -> []
  in
  let name =
    match peek st with
    | STRING s ->
        advance st;
        s
    | t -> error "expected op name string, found %s" (token_to_string t)
  in
  expect st LPAREN;
  let rec operands acc =
    match peek st with
    | RPAREN ->
        advance st;
        List.rev acc
    | COMMA ->
        advance st;
        operands acc
    | PERCENT id ->
        advance st;
        operands (use_value st id :: acc)
    | t -> error "expected operand, found %s" (token_to_string t)
  in
  let operands = operands [] in
  let attrs = parse_attr_dict st in
  let regions =
    if peek st = LPAREN && peek2 st = LBRACE then begin
      advance st;
      let rec go acc =
        let r = parse_region st in
        match peek st with
        | COMMA ->
            advance st;
            go (r :: acc)
        | RPAREN ->
            advance st;
            List.rev (r :: acc)
        | t ->
            error "expected ',' or ')' after region, found %s"
              (token_to_string t)
      in
      go []
    end
    else []
  in
  expect st COLON;
  let operand_tys = parse_ty_parens st in
  expect st ARROW;
  let result_tys = parse_ty_parens st in
  if List.length operand_tys <> List.length operands then
    error "%s: operand count mismatch with signature" name;
  List.iter2
    (fun v t ->
      if not (Typesys.equal_ty (Value.ty v) t) then
        error "%s: operand %%%d has type %s, signature says %s" name
          (Value.id v)
          (Typesys.ty_to_string (Value.ty v))
          (Typesys.ty_to_string t))
    operands operand_tys;
  if List.length result_tys <> List.length result_ids then
    error "%s: result count mismatch with signature" name;
  let results = List.map2 (define_value st) result_ids result_tys in
  Op.make name ~operands ~results ~attrs ~regions

and parse_region st : Op.region =
  expect st LBRACE;
  let rec blocks acc =
    match peek st with
    | RBRACE ->
        advance st;
        List.rev acc
    | CARET ->
        let b = parse_block st in
        blocks (b :: acc)
    | t -> error "expected block or '}', found %s" (token_to_string t)
  in
  { Op.blocks = blocks [] }

and parse_block st : Op.block =
  expect st CARET;
  expect st LPAREN;
  let rec args acc =
    match peek st with
    | RPAREN ->
        advance st;
        List.rev acc
    | COMMA ->
        advance st;
        args acc
    | PERCENT id ->
        advance st;
        expect st COLON;
        let ty = parse_ty st in
        args (define_value st id ty :: acc)
    | t -> error "expected block argument, found %s" (token_to_string t)
  in
  let args = args [] in
  expect st COLON;
  let rec ops acc =
    match peek st with
    | RBRACE | CARET -> List.rev acc
    | _ ->
        let op = parse_op st in
        ops (op :: acc)
  in
  { Op.args; ops = ops [] }

let parse_string (src : string) : Op.t =
  let st = { toks = Lexer.tokenize src; values = Hashtbl.create 64 } in
  let rec go acc =
    match peek st with
    | EOF -> List.rev acc
    | _ ->
        let op = parse_op st in
        go (op :: acc)
  in
  match go [] with
  | [ m ] when m.Op.name = "builtin.module" -> m
  | ops -> Op.module_op ops

let parse_op_string (src : string) : Op.t =
  let st = { toks = Lexer.tokenize src; values = Hashtbl.create 64 } in
  parse_op st

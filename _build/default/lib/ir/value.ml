(* SSA values.  Identity is the numeric id; the type travels with the value so
   that, per the paper's design, any operation using stencil-related types can
   read bounds information directly off its operands. *)

type t = { id : int; ty : Typesys.ty }

let counter = ref 0

let fresh ty =
  incr counter;
  { id = !counter; ty }

(* Used only by the parser, which must materialize values with the ids
   appearing in the source text. *)
let with_id id ty =
  if id > !counter then counter := id;
  { id; ty }

let id v = v.id
let ty v = v.ty
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash v = v.id

let pp fmt v = Format.fprintf fmt "%%%d" v.id
let pp_typed fmt v = Format.fprintf fmt "%%%d : %a" v.id Typesys.pp_ty v.ty

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

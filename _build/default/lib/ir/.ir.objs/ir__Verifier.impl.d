lib/ir/verifier.ml: Format Hashtbl List Op Printf Value

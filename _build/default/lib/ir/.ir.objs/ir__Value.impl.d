lib/ir/value.ml: Format Int Map Set Typesys

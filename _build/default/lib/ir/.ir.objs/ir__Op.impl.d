lib/ir/op.ml: Format List Typesys Value

lib/ir/op.mli: Format Typesys Value

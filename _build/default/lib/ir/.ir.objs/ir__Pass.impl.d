lib/ir/pass.ml: Format List Logs Op Pattern Printer Verifier

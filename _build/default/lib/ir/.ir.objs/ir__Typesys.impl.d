lib/ir/typesys.ml: Float Format List Printf String

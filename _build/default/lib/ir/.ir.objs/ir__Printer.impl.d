lib/ir/printer.ml: Format List Op String Typesys Value

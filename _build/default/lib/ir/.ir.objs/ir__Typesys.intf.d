lib/ir/typesys.mli: Format

lib/ir/builder.mli: Op Typesys Value

lib/ir/value.mli: Format Map Set Typesys

lib/ir/builder.ml: List Op Value

lib/ir/lexer.ml: Buffer List Printf String

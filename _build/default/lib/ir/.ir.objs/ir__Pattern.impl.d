lib/ir/pattern.ml: List Op Value

lib/ir/parser.mli: Op

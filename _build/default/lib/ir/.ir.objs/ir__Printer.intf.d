lib/ir/printer.mli: Format Op

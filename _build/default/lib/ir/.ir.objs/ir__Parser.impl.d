lib/ir/parser.ml: Format Hashtbl Lexer List Op Typesys Value

lib/ir/pass.mli: Op Pattern Verifier

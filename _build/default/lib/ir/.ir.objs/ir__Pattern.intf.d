lib/ir/pattern.mli: Op Value

(** The closed type and attribute universe of the shared compilation stack.

    MLIR keeps types and attributes openly extensible; since every dialect of
    this reproduction lives in this repository we use closed variants instead,
    which buys exhaustive pattern matching in every lowering. *)

(** Bit widths of the signless integer types ([i1] ... [i64]). *)
type int_width = W1 | W8 | W16 | W32 | W64

(** IEEE-754 widths of the floating point types. *)
type float_width = F32 | F64

(** A per-dimension half-open bound [\[lo, hi)] as carried by stencil types.
    The paper's enhancement to the stencil dialect attaches domain bounds to
    the types themselves rather than to operation attributes. *)
type bound = { lo : int; hi : int }

val bound : int -> int -> bound
(** [bound lo hi] builds a bound; raises [Invalid_argument] if [hi < lo]. *)

val bound_size : bound -> int
(** Number of points covered by a bound. *)

(** Every type of every dialect used in the stack. *)
type ty =
  | Int of int_width  (** [iN] signless integers. *)
  | Float of float_width  (** [f32]/[f64]. *)
  | Index  (** Target-width loop/index integer. *)
  | None_type  (** Unit-like type for ops without meaningful results. *)
  | Memref of int list * ty  (** Static-shaped memory reference. *)
  | Ptr  (** [!llvm.ptr], an opaque pointer. *)
  | Fn of ty list * ty list  (** Function type. *)
  | Field of bound list * ty
      (** [!stencil.field]: the buffer stencil values are loaded from /
          stored to, with static bounds per dimension. *)
  | Temp of bound list * ty
      (** [!stencil.temp]: value-semantics stencil values operated on by
          [stencil.apply]. *)
  | Result_type of ty  (** [!stencil.result]: value yielded per grid point. *)
  | Request  (** [!mpi.request]. *)
  | Request_array of int  (** Fixed-size list of MPI requests. *)
  | Status  (** [!mpi.status]. *)
  | Datatype  (** [!mpi.datatype]. *)
  | Comm  (** [!mpi.comm]. *)
  | Stream of ty  (** [!hls.stream]: FPGA dataflow FIFO channel. *)

val i1 : ty
val i32 : ty
val i64 : ty
val f32 : ty
val f64 : ty
val index : ty

(** One halo exchange declaration, mirroring [#dmp.exchange]: receive the
    rectangle at [ex_offset] of size [ex_size] from the neighbor in direction
    [ex_neighbor]; send the same-sized rectangle shifted by
    [ex_source_offset]. *)
type exchange = {
  ex_offset : int list;
  ex_size : int list;
  ex_source_offset : int list;
  ex_neighbor : int list;
}

(** Every attribute of every dialect used in the stack. *)
type attr =
  | Unit_attr
  | Bool_attr of bool
  | Int_attr of int * ty
  | Float_attr of float * ty
  | String_attr of string
  | Type_attr of ty
  | Array_attr of attr list
  | Dense_attr of int list  (** Dense integer vectors (offsets, bounds). *)
  | Symbol_attr of string  (** [@symbol] references. *)
  | Grid_attr of int list  (** [#dmp.grid]: cartesian rank topology. *)
  | Exchange_attr of exchange  (** [#dmp.exchange]. *)

val equal_ty : ty -> ty -> bool
val equal_attr : attr -> attr -> bool

val is_signless_numeric : ty -> bool
(** True on integers, floats and index (including under [Result_type]). *)

val is_float : ty -> bool
val is_int_like : ty -> bool

val bounds_of : ty -> bound list option
(** Bounds carried by stencil field/temp types. *)

val element_of : ty -> ty option
(** Element type of shaped/container types. *)

val rank_of : ty -> int option
(** Number of dimensions of shaped types. *)

val memref_num_elements : ty -> int
(** Total element count of a static memref; raises on other types. *)

val byte_width : ty -> int
(** Size in bytes of a scalar type; raises on aggregates. *)

val int_width_bits : int_width -> int

val pp_bound : Format.formatter -> bound -> unit
val pp_ty : Format.formatter -> ty -> unit
val pp_ty_list : Format.formatter -> ty list -> unit
val pp_attr : Format.formatter -> attr -> unit
val pp_int_list : Format.formatter -> int list -> unit

val float_repr : float -> string
(** Decimal representation that round-trips through the parser. *)

val ty_to_string : ty -> string
val attr_to_string : attr -> string

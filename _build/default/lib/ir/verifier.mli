(** Structural IR verification: SSA dominance (definitions precede uses,
    values captured from enclosing regions are visible), unique definitions,
    plus caller-supplied dialect op checks. *)

type check = Op.t -> (unit, string) result

exception Verification_error of string

val verify : ?checks:check list -> Op.t -> unit
(** Raises {!Verification_error} on the first violation. *)

val for_op : string -> (Op.t -> (unit, string) result) -> check
(** Restrict a check to ops with the given name. *)

val expect_operands : string -> int -> check
val expect_results : string -> int -> check

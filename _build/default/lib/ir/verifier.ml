(* Structural verification: SSA dominance (defs before uses, captured values
   visible from enclosing regions), unique definitions, plus any dialect
   op-checks supplied by the caller. *)

type check = Op.t -> (unit, string) result

exception Verification_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Verification_error s)) fmt

let verify ?(checks : check list = []) (root : Op.t) : unit =
  let defined = Hashtbl.create 256 in
  let define v =
    if Hashtbl.mem defined (Value.id v) then
      fail "value %%%d defined twice" (Value.id v)
    else Hashtbl.add defined (Value.id v) ()
  in
  let rec check_op visible (op : Op.t) =
    List.iter
      (fun v ->
        if not (Value.Set.mem v visible) then
          fail "%s: operand %%%d used before definition" op.Op.name
            (Value.id v))
      op.Op.operands;
    List.iter
      (fun (chk : check) ->
        match chk op with
        | Ok () -> ()
        | Error msg -> fail "%s: %s" op.Op.name msg)
      checks;
    List.iter
      (fun (r : Op.region) ->
        List.iter
          (fun (b : Op.block) ->
            List.iter define b.Op.args;
            let visible =
              List.fold_left (fun s v -> Value.Set.add v s) visible b.Op.args
            in
            ignore
              (List.fold_left
                 (fun visible o ->
                   check_op visible o;
                   List.iter define o.Op.results;
                   List.fold_left
                     (fun s v -> Value.Set.add v s)
                     visible o.Op.results)
                 visible b.Op.ops))
          r.Op.blocks)
      op.Op.regions
  in
  check_op Value.Set.empty root;
  List.iter define root.Op.results

(* Convenience: build a check from an op-name and a predicate on that op. *)
let for_op name f : check =
 fun op -> if op.Op.name = name then f op else Ok ()

let expect_operands name n : check =
  for_op name (fun op ->
      if List.length op.Op.operands = n then Ok ()
      else
        Error
          (Printf.sprintf "expected %d operands, got %d" n
             (List.length op.Op.operands)))

let expect_results name n : check =
  for_op name (fun op ->
      if List.length op.Op.results = n then Ok ()
      else
        Error
          (Printf.sprintf "expected %d results, got %d" n
             (List.length op.Op.results)))

(* Block builder: dialect constructors append ops to a builder and return the
   result values, so straight-line IR reads like the computation it builds. *)

type t = { mutable rev_ops : Op.t list }

let create () = { rev_ops = [] }

let add b op = b.rev_ops <- op :: b.rev_ops

let ops b = List.rev b.rev_ops

(* Emit an op with a single fresh result of type [ty]. *)
let emit1 b ?operands ?attrs ?regions name ty =
  let v = Value.fresh ty in
  add b (Op.make name ?operands ~results: [ v ] ?attrs ?regions);
  v

(* Emit an op with no results. *)
let emit0 b ?operands ?attrs ?regions name =
  add b (Op.make name ?operands ?attrs ?regions)

(* Build a single-block region by running [f] on a nested builder; [f]
   receives the builder and the freshly created block arguments. *)
let region_with_args arg_tys f =
  let args = List.map Value.fresh arg_tys in
  let b = create () in
  f b args;
  Op.region ~args (ops b)

let region_of f =
  let b = create () in
  f b;
  Op.region (ops b)

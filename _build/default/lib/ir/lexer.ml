(* Hand-written lexer for the generic textual IR format. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | DIM of int (* an integer immediately followed by 'x', as in memref<4x5x..> *)
  | STRING of string
  | PERCENT of int
  | AT of string
  | BANG of string
  | HASH of string
  | CARET
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LT
  | GT
  | COMMA
  | COLON
  | EQUAL
  | ARROW
  | EOF

exception Lex_error of string * int

let token_to_string = function
  | IDENT s -> Printf.sprintf "ident %S" s
  | INT i -> Printf.sprintf "int %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | DIM i -> Printf.sprintf "dim %dx" i
  | STRING s -> Printf.sprintf "string %S" s
  | PERCENT i -> Printf.sprintf "%%%d" i
  | AT s -> Printf.sprintf "@%s" s
  | BANG s -> Printf.sprintf "!%s" s
  | HASH s -> Printf.sprintf "#%s" s
  | CARET -> "^"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACK -> "["
  | RBRACK -> "]"
  | LT -> "<"
  | GT -> ">"
  | COMMA -> ","
  | COLON -> ":"
  | EQUAL -> "="
  | ARROW -> "->"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '.'

(* Tokenize the whole input eagerly; IR files are small. *)
let tokenize (src : string) : token list =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let error msg = raise (Lex_error (msg, !pos)) in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char src.[!pos] do incr pos done;
    String.sub src start (!pos - start)
  in
  let lex_digits () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do incr pos done;
    String.sub src start (!pos - start)
  in
  (* digits [. digits] [e [+|-] digits]; an integer directly followed by 'x'
     becomes a DIM token (MLIR-style shape syntax). *)
  let lex_number ~neg =
    let intpart = lex_digits () in
    let is_float = ref false in
    let buf = Buffer.create 16 in
    if neg then Buffer.add_char buf '-';
    Buffer.add_string buf intpart;
    (match peek 0 with
    | Some '.' when (match peek 1 with Some c -> is_digit c | None -> false)
      ->
        is_float := true;
        Buffer.add_char buf '.';
        incr pos;
        Buffer.add_string buf (lex_digits ())
    | _ -> ());
    (match peek 0 with
    | Some ('e' | 'E')
      when (match peek 1 with
           | Some c -> is_digit c || c = '+' || c = '-'
           | None -> false) ->
        is_float := true;
        Buffer.add_char buf 'e';
        incr pos;
        (match peek 0 with
        | Some (('+' | '-') as c) ->
            Buffer.add_char buf c;
            incr pos
        | _ -> ());
        Buffer.add_string buf (lex_digits ())
    | _ -> ());
    if !is_float then push (FLOAT (float_of_string (Buffer.contents buf)))
    else
      match peek 0 with
      | Some 'x' ->
          incr pos;
          push (DIM (int_of_string (Buffer.contents buf)))
      | _ -> push (INT (int_of_string (Buffer.contents buf)))
  in
  let lex_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (match peek 0 with
            | Some 'n' -> Buffer.add_char buf '\n'
            | Some 't' -> Buffer.add_char buf '\t'
            | Some '\\' -> Buffer.add_char buf '\\'
            | Some '"' -> Buffer.add_char buf '"'
            | _ -> error "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    push (STRING (Buffer.contents buf))
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if is_digit c then lex_number ~neg: false
    else if c = '-' then begin
      match peek 1 with
      | Some '>' ->
          pos := !pos + 2;
          push ARROW
      | Some d when is_digit d ->
          incr pos;
          lex_number ~neg: true
      | _ -> error "unexpected '-'"
    end
    else if is_ident_start c then push (IDENT (lex_ident ()))
    else
      match c with
      | '"' -> lex_string ()
      | '%' ->
          incr pos;
          let digits = lex_digits () in
          if digits = "" then error "expected digits after %%"
          else push (PERCENT (int_of_string digits))
      | '@' ->
          incr pos;
          push (AT (lex_ident ()))
      | '!' ->
          incr pos;
          push (BANG (lex_ident ()))
      | '#' ->
          incr pos;
          push (HASH (lex_ident ()))
      | '^' ->
          incr pos;
          push CARET
      | '(' ->
          incr pos;
          push LPAREN
      | ')' ->
          incr pos;
          push RPAREN
      | '{' ->
          incr pos;
          push LBRACE
      | '}' ->
          incr pos;
          push RBRACE
      | '[' ->
          incr pos;
          push LBRACK
      | ']' ->
          incr pos;
          push RBRACK
      | '<' ->
          incr pos;
          push LT
      | '>' ->
          incr pos;
          push GT
      | ',' ->
          incr pos;
          push COMMA
      | ':' ->
          incr pos;
          push COLON
      | '=' ->
          incr pos;
          push EQUAL
      | _ -> error (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (EOF :: !toks)

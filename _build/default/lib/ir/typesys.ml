(* The closed type and attribute universe of the shared compilation stack.

   MLIR keeps types and attributes openly extensible; since every dialect of
   this reproduction lives in this repository we instead use closed variants,
   which buys exhaustive pattern matching everywhere a lowering inspects a
   type.  Adding a dialect means extending these variants. *)

type int_width = W1 | W8 | W16 | W32 | W64

type float_width = F32 | F64

type bound = { lo : int; hi : int }

let bound lo hi =
  if hi < lo then invalid_arg "Typesys.bound: hi < lo";
  { lo; hi }

let bound_size b = b.hi - b.lo

type ty =
  | Int of int_width
  | Float of float_width
  | Index
  | None_type
  | Memref of int list * ty
  | Ptr
  | Fn of ty list * ty list
  | Field of bound list * ty
  | Temp of bound list * ty
  | Result_type of ty
  | Request
  | Request_array of int
  | Status
  | Datatype
  | Comm
  | Stream of ty

let i1 = Int W1
let i32 = Int W32
let i64 = Int W64
let f32 = Float F32
let f64 = Float F64
let index = Index

type exchange = {
  ex_offset : int list;
  ex_size : int list;
  ex_source_offset : int list;
  ex_neighbor : int list;
}

type attr =
  | Unit_attr
  | Bool_attr of bool
  | Int_attr of int * ty
  | Float_attr of float * ty
  | String_attr of string
  | Type_attr of ty
  | Array_attr of attr list
  | Dense_attr of int list
  | Symbol_attr of string
  | Grid_attr of int list
  | Exchange_attr of exchange

let equal_ty (a : ty) (b : ty) = a = b
let equal_attr (a : attr) (b : attr) = a = b

let rec is_signless_numeric = function
  | Int _ | Float _ | Index -> true
  | Result_type t -> is_signless_numeric t
  | None_type | Memref _ | Ptr | Fn _ | Field _ | Temp _ | Request
  | Request_array _ | Status | Datatype | Comm | Stream _ ->
      false

let is_float = function Float _ -> true | _ -> false
let is_int_like = function Int _ | Index -> true | _ -> false

let bounds_of = function
  | Field (bs, _) | Temp (bs, _) -> Some bs
  | Int _ | Float _ | Index | None_type | Memref _ | Ptr | Fn _
  | Result_type _ | Request | Request_array _ | Status | Datatype | Comm
  | Stream _ ->
      None

let element_of = function
  | Field (_, t) | Temp (_, t) | Memref (_, t) | Stream t | Result_type t ->
      Some t
  | Int _ | Float _ | Index | None_type | Ptr | Fn _ | Request
  | Request_array _ | Status | Datatype | Comm ->
      None

let rank_of ty =
  match ty with
  | Field (bs, _) | Temp (bs, _) -> Some (List.length bs)
  | Memref (shape, _) -> Some (List.length shape)
  | _ -> None

let memref_num_elements = function
  | Memref (shape, _) -> List.fold_left ( * ) 1 shape
  | _ -> invalid_arg "Typesys.memref_num_elements: not a memref"

(* Byte width used by cost models and buffer sizing. *)
let byte_width = function
  | Int W1 | Int W8 -> 1
  | Int W16 -> 2
  | Int W32 | Float F32 -> 4
  | Int W64 | Float F64 | Index | Ptr -> 8
  | None_type | Memref _ | Fn _ | Field _ | Temp _ | Result_type _ | Request
  | Request_array _ | Status | Datatype | Comm | Stream _ ->
      invalid_arg "Typesys.byte_width: not a scalar type"

let int_width_bits = function
  | W1 -> 1
  | W8 -> 8
  | W16 -> 16
  | W32 -> 32
  | W64 -> 64

(* Pretty printing, shared by the diagnostics and the textual format. *)

let pp_bound fmt b = Format.fprintf fmt "[%d,%d]" b.lo b.hi

let rec pp_ty fmt = function
  | Int w -> Format.fprintf fmt "i%d" (int_width_bits w)
  | Float F32 -> Format.pp_print_string fmt "f32"
  | Float F64 -> Format.pp_print_string fmt "f64"
  | Index -> Format.pp_print_string fmt "index"
  | None_type -> Format.pp_print_string fmt "none"
  | Memref (shape, t) ->
      Format.fprintf fmt "memref<%a%a>" pp_shape shape pp_ty t
  | Ptr -> Format.pp_print_string fmt "!llvm.ptr"
  | Fn (args, res) ->
      Format.fprintf fmt "(%a) -> (%a)" pp_ty_list args pp_ty_list res
  | Field (bs, t) ->
      Format.fprintf fmt "!stencil.field<%a%a>" pp_bounds bs pp_ty t
  | Temp (bs, t) ->
      Format.fprintf fmt "!stencil.temp<%a%a>" pp_bounds bs pp_ty t
  | Result_type t -> Format.fprintf fmt "!stencil.result<%a>" pp_ty t
  | Request -> Format.pp_print_string fmt "!mpi.request"
  | Request_array n -> Format.fprintf fmt "!mpi.request_array<%d>" n
  | Status -> Format.pp_print_string fmt "!mpi.status"
  | Datatype -> Format.pp_print_string fmt "!mpi.datatype"
  | Comm -> Format.pp_print_string fmt "!mpi.comm"
  | Stream t -> Format.fprintf fmt "!hls.stream<%a>" pp_ty t

and pp_shape fmt shape =
  List.iter (fun d -> Format.fprintf fmt "%dx" d) shape

and pp_bounds fmt bs =
  List.iter (fun b -> Format.fprintf fmt "%a x " pp_bound b) bs

and pp_ty_list fmt tys =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_ty fmt tys

let pp_int_list fmt xs =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_int)
    xs

(* Floats are printed with enough digits to round-trip through the parser. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec pp_attr fmt = function
  | Unit_attr -> Format.pp_print_string fmt "unit"
  | Bool_attr b -> Format.pp_print_bool fmt b
  | Int_attr (v, t) -> Format.fprintf fmt "%d : %a" v pp_ty t
  | Float_attr (v, t) ->
      Format.fprintf fmt "%s : %a" (float_repr v) pp_ty t
  | String_attr s -> Format.fprintf fmt "%S" s
  | Type_attr t -> Format.fprintf fmt "type<%a>" pp_ty t
  | Array_attr xs ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_attr)
        xs
  | Dense_attr xs -> Format.fprintf fmt "dense<%a>" pp_int_list xs
  | Symbol_attr s -> Format.fprintf fmt "@%s" s
  | Grid_attr dims ->
      Format.fprintf fmt "#dmp.grid<%s>"
        (String.concat "x" (List.map string_of_int dims))
  | Exchange_attr e ->
      Format.fprintf fmt
        "#dmp.exchange<at %a size %a source offset %a to %a>" pp_int_list
        e.ex_offset pp_int_list e.ex_size pp_int_list e.ex_source_offset
        pp_int_list e.ex_neighbor

let ty_to_string t = Format.asprintf "%a" pp_ty t
let attr_to_string a = Format.asprintf "%a" pp_attr a

(* Pass management: named module-to-module transformations composed into
   pipelines, with optional verification and print-after-all debugging. *)

type t = { name : string; run : Op.t -> Op.t }

let make name run = { name; run }

let of_patterns name patterns =
  { name; run = Pattern.run_on_module patterns }

type pipeline = { pipeline_name : string; passes : t list }

let pipeline pipeline_name passes = { pipeline_name; passes }

let log_src = Logs.Src.create "ir.pass" ~doc: "Pass manager"

module Log = (val Logs.src_log log_src)

let run_pipeline ?(verify = false) ?(checks = []) ?(print_after = false)
    (p : pipeline) (m : Op.t) : Op.t =
  List.fold_left
    (fun m pass ->
      Log.debug (fun f -> f "running pass %s" pass.name);
      let m' = pass.run m in
      if print_after then
        Format.eprintf "// ----- after %s -----@.%a@." pass.name
          Printer.print_module m';
      if verify then Verifier.verify ~checks m';
      m')
    m p.passes

(** Block builder used by dialect constructors: ops are appended in order and
    the constructor returns the new op's result values. *)

type t

val create : unit -> t
val add : t -> Op.t -> unit

val ops : t -> Op.t list
(** Ops added so far, in program order. *)

val emit1 :
  t ->
  ?operands:Value.t list ->
  ?attrs:(string * Typesys.attr) list ->
  ?regions:Op.region list ->
  string ->
  Typesys.ty ->
  Value.t
(** Append an op with one fresh result of the given type; return it. *)

val emit0 :
  t ->
  ?operands:Value.t list ->
  ?attrs:(string * Typesys.attr) list ->
  ?regions:Op.region list ->
  string ->
  unit
(** Append an op with no results. *)

val region_with_args :
  Typesys.ty list -> (t -> Value.t list -> unit) -> Op.region
(** Build a single-block region with fresh block arguments of the given
    types; [f] populates the body. *)

val region_of : (t -> unit) -> Op.region
(** Build an argument-less single-block region. *)

(** Textual output in MLIR's generic-operation style; everything printed here
    round-trips through {!Parser}. *)

val pp_op : ?indent:int -> Format.formatter -> Op.t -> unit
val op_to_string : Op.t -> string
val print_module : Format.formatter -> Op.t -> unit
val module_to_string : Op.t -> string

(** Parser for the generic textual IR format produced by {!Printer}. *)

exception Parse_error of string

val parse_string : string -> Op.t
(** Parse a module: either a single [builtin.module] op, or a sequence of
    top-level ops that gets wrapped in one. *)

val parse_op_string : string -> Op.t
(** Parse a single operation. *)

(* Operations, regions and blocks: the SSA+Regions structure at the heart of
   the stack.  Operations are immutable; rewriting rebuilds the enclosing
   block.  All abstractions in the paper use single-block regions, but the
   structure keeps the general block list. *)

type t = {
  name : string;
  operands : Value.t list;
  results : Value.t list;
  attrs : (string * Typesys.attr) list;
  regions : region list;
}

and region = { blocks : block list }

and block = { args : Value.t list; ops : t list }

let make ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = []) name =
  { name; operands; results; attrs; regions }

let block ?(args = []) ops = { args; ops }
let region ?(args = []) ops = { blocks = [ block ~args ops ] }

let single_block r =
  match r.blocks with
  | [ b ] -> b
  | _ -> invalid_arg "Op.single_block: region does not have exactly one block"

let region_ops r = (single_block r).ops
let region_args r = (single_block r).args

let attr op key = List.assoc_opt key op.attrs
let has_attr op key = List.mem_assoc key op.attrs

let set_attr op key value =
  { op with attrs = (key, value) :: List.remove_assoc key op.attrs }

let remove_attr op key = { op with attrs = List.remove_assoc key op.attrs }

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let attr_exn op key =
  match attr op key with
  | Some a -> a
  | None -> ill_formed "%s: missing attribute %S" op.name key

let int_attr_exn op key =
  match attr_exn op key with
  | Typesys.Int_attr (v, _) -> v
  | a ->
      ill_formed "%s: attribute %S is %s, expected integer" op.name key
        (Typesys.attr_to_string a)

let string_attr_exn op key =
  match attr_exn op key with
  | Typesys.String_attr s -> s
  | _ -> ill_formed "%s: attribute %S is not a string" op.name key

let symbol_attr_exn op key =
  match attr_exn op key with
  | Typesys.Symbol_attr s -> s
  | _ -> ill_formed "%s: attribute %S is not a symbol" op.name key

let dense_attr_exn op key =
  match attr_exn op key with
  | Typesys.Dense_attr xs -> xs
  | _ -> ill_formed "%s: attribute %S is not a dense vector" op.name key

let result_exn op =
  match op.results with
  | [ r ] -> r
  | _ -> ill_formed "%s: expected exactly one result" op.name

let operand_exn op i =
  match List.nth_opt op.operands i with
  | Some v -> v
  | None -> ill_formed "%s: missing operand %d" op.name i

(* Traversal *)

let rec walk f op =
  f op;
  List.iter (fun r -> List.iter (fun b -> List.iter (walk f) b.ops) r.blocks)
    op.regions

let walk_regions f op =
  List.iter (fun r -> List.iter (fun b -> List.iter (walk f) b.ops) r.blocks)
    op.regions

let rec exists p op =
  p op
  || List.exists
       (fun r -> List.exists (fun b -> List.exists (exists p) b.ops) r.blocks)
       op.regions

let fold f acc op =
  let acc = ref acc in
  walk (fun o -> acc := f !acc o) op;
  !acc

let count_ops op = fold (fun n _ -> n + 1) 0 op

(* Substitute values (operands and nested uses) according to [subst]. *)
let rec substitute subst op =
  let map_value v = match Value.Map.find_opt v subst with
    | Some v' -> v'
    | None -> v
  in
  {
    op with
    operands = List.map map_value op.operands;
    regions =
      List.map
        (fun r ->
          { blocks =
              List.map
                (fun b -> { b with ops = List.map (substitute subst) b.ops })
                r.blocks;
          })
        op.regions;
  }

(* Rebuild an op with fresh result values and recursively fresh values for
   every nested definition, so a cloned op can coexist with the original. *)
let clone op =
  let subst = ref Value.Map.empty in
  let refresh v =
    let v' = Value.fresh (Value.ty v) in
    subst := Value.Map.add v v' !subst;
    v'
  in
  let lookup v =
    match Value.Map.find_opt v !subst with Some v' -> v' | None -> v
  in
  let rec go op =
    let operands = List.map lookup op.operands in
    let regions =
      List.map
        (fun r ->
          { blocks =
              List.map
                (fun b ->
                  let args = List.map refresh b.args in
                  { args; ops = List.map go b.ops })
                r.blocks;
          })
        op.regions
    in
    let results = List.map refresh op.results in
    { op with operands; results; regions }
  in
  go op

(* Values defined by an op (its results plus everything nested). *)
let defined_values op =
  fold
    (fun acc o ->
      let acc = List.fold_left (fun s v -> Value.Set.add v s) acc o.results in
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc b ->
              List.fold_left (fun s v -> Value.Set.add v s) acc b.args)
            acc r.blocks)
        acc o.regions)
    Value.Set.empty op

(* Values used by an op (transitively) that it does not define itself. *)
let free_values op =
  let defined = defined_values op in
  fold
    (fun acc o ->
      List.fold_left
        (fun acc v ->
          if Value.Set.mem v defined then acc else Value.Set.add v acc)
        acc o.operands)
    Value.Set.empty op

(* Module-level helpers: a module is the op "builtin.module" with one
   single-block region holding the top-level ops. *)

let module_op ops = make "builtin.module" ~regions: [ region ops ]

let module_ops m =
  if m.name <> "builtin.module" then
    ill_formed "expected builtin.module, got %s" m.name;
  region_ops (List.hd m.regions)

let with_module_ops m ops =
  if m.name <> "builtin.module" then
    ill_formed "expected builtin.module, got %s" m.name;
  { m with regions = [ region ops ] }

(* Find a symbol-defining op (e.g. a func.func with sym_name) in a module. *)
let lookup_symbol m name =
  List.find_opt
    (fun op ->
      match attr op "sym_name" with
      | Some (Typesys.String_attr s) -> s = name
      | _ -> false)
    (module_ops m)

(* Textual output in MLIR's generic-operation style.  Printer and parser are
   designed together: everything printed here round-trips through Parser. *)

let pp_attr_dict fmt attrs =
  if attrs <> [] then begin
    Format.fprintf fmt " {";
    List.iteri
      (fun i (k, a) ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "%s = %a" k Typesys.pp_attr a)
      attrs;
    Format.fprintf fmt "}"
  end

let rec pp_op ?(indent = 0) fmt (op : Op.t) =
  let pad = String.make indent ' ' in
  Format.fprintf fmt "%s" pad;
  if op.results <> [] then begin
    List.iteri
      (fun i v ->
        if i > 0 then Format.fprintf fmt ", ";
        Value.pp fmt v)
      op.results;
    Format.fprintf fmt " = "
  end;
  Format.fprintf fmt "%S(" op.name;
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Value.pp fmt v)
    op.operands;
  Format.fprintf fmt ")";
  pp_attr_dict fmt op.attrs;
  if op.regions <> [] then begin
    Format.fprintf fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_region ~indent fmt r)
      op.regions;
    Format.fprintf fmt ")"
  end;
  Format.fprintf fmt " : (%a) -> (%a)" Typesys.pp_ty_list
    (List.map Value.ty op.operands)
    Typesys.pp_ty_list
    (List.map Value.ty op.results)

and pp_region ~indent fmt (r : Op.region) =
  Format.fprintf fmt "{\n";
  List.iter (pp_block ~indent: (indent + 2) fmt) r.blocks;
  Format.fprintf fmt "%s}" (String.make indent ' ')

and pp_block ~indent fmt (b : Op.block) =
  Format.fprintf fmt "%s^(" (String.make (indent - 1) ' ');
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Value.pp_typed fmt v)
    b.args;
  Format.fprintf fmt "):\n";
  List.iter (fun op -> Format.fprintf fmt "%a\n" (pp_op ~indent) op) b.ops

let op_to_string op = Format.asprintf "%a" (pp_op ~indent: 0) op

let print_module fmt m =
  Format.fprintf fmt "%a@." (pp_op ~indent: 0) m

let module_to_string m = Format.asprintf "%a" print_module m

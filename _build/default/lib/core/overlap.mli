(** Communication/computation overlap (paper §8 future work, implemented
    here as an extension): split each halo exchange into
    dmp.swap_begin / dmp.swap_wait and split the dependent stencil.apply
    into an interior computation (running while messages are in flight)
    and boundary slab computations executed after the wait.

    The rewrite is conservative: a swap/load/apply/store segment is only
    transformed when it matches exactly; everything else is untouched. *)

open Ir

type box = int list * int list
(** A half-open box (lower bounds, upper bounds). *)

val box_empty : box -> bool

val interior_box : halo:(int * int) array -> box -> box
(** The output subregion computable without halo data. *)

val boundary_fragments : outer:box -> inner:box -> box list
(** Disjoint slabs covering [outer] minus [inner]. *)

val run : Op.t -> Op.t
val pass : Pass.t

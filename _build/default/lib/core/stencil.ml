(* The stencil dialect (paper §4.1).

   Extended from the Open Earth Compiler's dialect as described in the paper:
   - domain bounds live in the types ([!stencil.field]/[!stencil.temp] carry
     per-dimension static [lo,hi) bounds), so any op using stencil values can
     read bounds directly off its operands;
   - stencils of any rank are supported (not only 3D);
   - value semantics: [stencil.load] turns a field into a temp,
     [stencil.apply] maps a point function over temps, [stencil.store]
     writes a temp back to a field over a range. *)

open Ir

let load = "stencil.load"
let store = "stencil.store"
let apply = "stencil.apply"
let access = "stencil.access"
let index = "stencil.index"
let return_ = "stencil.return"
let cast = "stencil.cast"

(* Types *)

let field_ty bounds elt = Typesys.Field (bounds, elt)
let temp_ty bounds elt = Typesys.Temp (bounds, elt)

let bounds_exn v =
  match Typesys.bounds_of (Value.ty v) with
  | Some bs -> bs
  | None ->
      Op.ill_formed "expected a stencil field/temp, got %s"
        (Typesys.ty_to_string (Value.ty v))

let element_exn v =
  match Typesys.element_of (Value.ty v) with
  | Some t -> t
  | None ->
      Op.ill_formed "expected a stencil field/temp, got %s"
        (Typesys.ty_to_string (Value.ty v))

(* Constructors *)

(* Load the whole field into a temp covering the same bounds. *)
let load_op b field =
  let bs = bounds_exn field in
  let elt = element_exn field in
  Builder.emit1 b load (temp_ty bs elt) ~operands: [ field ]

(* Store a temp to a field over the user-defined [lb, ub) range. *)
let store_op b temp field ~lb ~ub =
  Builder.emit0 b store ~operands: [ temp; field ]
    ~attrs:
      [ ("lb", Typesys.Dense_attr lb); ("ub", Typesys.Dense_attr ub) ]

(* Access an operand temp at a relative offset from the current position.
   Inside an apply body the block argument stands for the temp operand. *)
let access_op b temp offsets =
  let elt = element_exn temp in
  Builder.emit1 b access elt ~operands: [ temp ]
    ~attrs: [ ("offset", Typesys.Dense_attr offsets) ]

(* Current position along [dim], as an index value. *)
let index_op b ~dim =
  Builder.emit1 b index Typesys.Index
    ~attrs: [ ("dim", Typesys.Int_attr (dim, Typesys.i64)) ]

let return_vals b vs = Builder.emit0 b return_ ~operands: vs

(* Apply a stencil function over [out_bounds].  [f] receives the body builder
   and the block arguments standing for [inputs]; it must end the body with
   [return_vals] of [n_results] scalars of [elt] type. *)
let apply_op b ~inputs ~out_bounds ~elt ~n_results f =
  let region =
    Builder.region_with_args (List.map Value.ty inputs) f
  in
  let results =
    List.init n_results (fun _ -> Value.fresh (temp_ty out_bounds elt))
  in
  Builder.add b
    (Op.make apply ~operands: inputs ~results ~regions: [ region ]);
  results

(* Reinterpret a field's bounds (used when localizing a decomposed domain). *)
let cast_op b field bounds =
  let elt = element_exn field in
  Builder.emit1 b cast (field_ty bounds elt) ~operands: [ field ]

(* Accessors *)

let access_offset (op : Op.t) = Op.dense_attr_exn op "offset"
let store_range (op : Op.t) =
  (Op.dense_attr_exn op "lb", Op.dense_attr_exn op "ub")

let apply_body (op : Op.t) =
  match op.Op.regions with
  | [ r ] -> Op.single_block r
  | _ -> Op.ill_formed "stencil.apply: expected one region"

(* All accesses in an apply body, as (input position, offsets). *)
let apply_accesses (op : Op.t) =
  let body = apply_body op in
  let arg_index v =
    let rec find i = function
      | [] -> None
      | a :: rest -> if Value.equal a v then Some i else find (i + 1) rest
    in
    find 0 body.Op.args
  in
  let acc = ref [] in
  List.iter
    (Op.walk (fun o ->
         if o.Op.name = access then
           match o.Op.operands with
           | [ t ] -> (
               match arg_index t with
               | Some i -> acc := (i, access_offset o) :: !acc
               | None -> ())
           | _ -> ()))
    body.Op.ops;
  List.rev !acc

(* The radius of the stencil: per input and per dimension, the (negative,
   positive) extents of all accesses.  This is the information the paper uses
   to derive minimal halo shapes for distributed memory (§4.1). *)
let halo_extents (op : Op.t) ~rank =
  let n_inputs = List.length op.Op.operands in
  let ext = Array.init n_inputs (fun _ -> Array.make rank (0, 0)) in
  List.iter
    (fun (input, offsets) ->
      List.iteri
        (fun d o ->
          if d < rank then begin
            let neg, pos = ext.(input).(d) in
            ext.(input).(d) <- (min neg o, max pos o)
          end)
        offsets)
    (apply_accesses op);
  ext

(* Combined halo over all inputs: per dimension (neg, pos). *)
let combined_halo (op : Op.t) ~rank =
  let ext = halo_extents op ~rank in
  let combined = Array.make rank (0, 0) in
  Array.iter
    (fun per_input ->
      Array.iteri
        (fun d (neg, pos) ->
          let cn, cp = combined.(d) in
          combined.(d) <- (min cn neg, max cp pos))
        per_input)
    ext;
  combined

(* Verifier checks *)

let checks : Verifier.check list =
  [
    Verifier.for_op load (fun op ->
        match (op.Op.operands, op.Op.results) with
        | [ f ], [ r ] -> (
            match (Value.ty f, Value.ty r) with
            | Typesys.Field (bs, t), Typesys.Temp (bs', t')
              when bs = bs' && t = t' ->
                Ok ()
            | _ -> Error "load must take a field to a temp of equal bounds")
        | _ -> Error "load takes one field and returns one temp");
    Verifier.for_op store (fun op ->
        match op.Op.operands with
        | [ t; f ] -> (
            match (Value.ty t, Value.ty f) with
            | Typesys.Temp _, Typesys.Field _ -> Ok ()
            | _ -> Error "store takes a temp and a field")
        | _ -> Error "store takes exactly two operands");
    Verifier.for_op access (fun op ->
        match op.Op.operands with
        | [ t ] -> (
            match Value.ty t with
            | Typesys.Temp (bs, _) ->
                let offsets = access_offset op in
                if List.length offsets = List.length bs then Ok ()
                else Error "access offset rank must match temp rank"
            | _ -> Error "access operand must be a temp")
        | _ -> Error "access takes exactly one operand");
    Verifier.for_op apply (fun op ->
        match op.Op.regions with
        | [ r ] ->
            let body = Op.single_block r in
            if List.length body.Op.args <> List.length op.Op.operands then
              Error "apply body must have one argument per operand"
            else if
              List.for_all2
                (fun a o -> Typesys.equal_ty (Value.ty a) (Value.ty o))
                body.Op.args op.Op.operands
            then Ok ()
            else Error "apply body argument types must match operands"
        | _ -> Error "apply has exactly one region");
    Verifier.for_op index (fun op ->
        match Op.attr op "dim" with
        | Some (Typesys.Int_attr _) -> Ok ()
        | _ -> Error "index needs a dim attribute");
  ]

(* The hls dialect: FPGA high-level-synthesis constructs used by the
   stencil-to-FPGA flow (paper §6.2, Table 1; Stencil-HMLS).

   The dialect models the two shapes the paper compares:
   - the *initial* version: the Von-Neumann-style loop nest reading external
     DDR memory directly for every stencil access;
   - the *optimized* version: separate dataflow regions connected by streams,
     a shift buffer that caches the stencil window so one external read per
     cycle suffices, and pipelined compute loops with initiation interval 1.

   The interpreter executes both functionally (streams are FIFOs, stages run
   in dependency order); the FPGA machine model reads the structure
   (dataflow? shift buffer? pipeline II?) to estimate cycles. *)

open Ir

let dataflow = "hls.dataflow"
let stage = "hls.stage"
let stream_create = "hls.stream_create"
let stream_read = "hls.stream_read"
let stream_write = "hls.stream_write"
let shift_buffer = "hls.shift_buffer"
let pipeline_attr = "pipeline_ii"

let stream_create_op b elt =
  Builder.emit1 b stream_create (Typesys.Stream elt)

let stream_read_op b s =
  let elt =
    match Value.ty s with
    | Typesys.Stream t -> t
    | t -> Op.ill_formed "stream_read on %s" (Typesys.ty_to_string t)
  in
  Builder.emit1 b stream_read elt ~operands: [ s ]

let stream_write_op b s v = Builder.emit0 b stream_write ~operands: [ s; v ]

(* A dataflow region: its nested hls.stage regions conceptually run as
   concurrent processes connected by streams. *)
let dataflow_op b stages =
  let region = Builder.region_of stages in
  Builder.emit0 b dataflow ~regions: [ region ]

let stage_op b ?(name = "") body =
  let region = Builder.region_of body in
  let attrs =
    if name = "" then [] else [ ("stage_name", Typesys.String_attr name) ]
  in
  Builder.emit0 b stage ~attrs ~regions: [ region ]

(* A shift buffer caching [window] points of the input stream: filled once,
   it provides every stencil operand per cycle while a single new value is
   read from the stream (paper: the 3D shift buffer of Brown [2021]). *)
let shift_buffer_op b ~input ~window ~elt =
  Builder.emit1 b shift_buffer (Typesys.Memref ([ window ], elt))
    ~operands: [ input ]
    ~attrs: [ ("window", Typesys.Int_attr (window, Typesys.i64)) ]

let set_pipeline_ii op ii =
  Op.set_attr op pipeline_attr (Typesys.Int_attr (ii, Typesys.i64))

let pipeline_ii (op : Op.t) =
  match Op.attr op pipeline_attr with
  | Some (Typesys.Int_attr (ii, _)) -> Some ii
  | _ -> None

let count_stages m =
  Op.fold (fun n op -> if op.Op.name = stage then n + 1 else n) 0 m

let has_shift_buffer m =
  Op.exists (fun op -> op.Op.name = shift_buffer) m

let checks : Verifier.check list =
  [
    Verifier.for_op stream_write (fun op ->
        match op.Op.operands with
        | [ s; v ] -> (
            match Value.ty s with
            | Typesys.Stream t when Typesys.equal_ty t (Value.ty v) -> Ok ()
            | Typesys.Stream _ -> Error "written value must match stream type"
            | _ -> Error "first operand must be a stream")
        | _ -> Error "stream_write takes stream and value");
    Verifier.for_op dataflow (fun op ->
        if List.length op.Op.regions = 1 then Ok ()
        else Error "dataflow needs one region");
    Verifier.for_op stage (fun op ->
        if List.length op.Op.regions = 1 then Ok ()
        else Error "stage needs one region");
  ]

(** Lowering stencils to the hls dialect for FPGA execution (paper §6.2,
    Table 1; the Stencil-HMLS flow).

    [Initial] keeps the Von-Neumann loop structure (every operand read hits
    external memory, no pipelining); [Optimized] restructures each stencil
    program into dataflow stages connected by streams, with a shift buffer
    caching the stencil window and compute loops pipelined at initiation
    interval 1.  Chained stencils stream between compute stages without
    round-tripping to DDR. *)

open Ir

type mode = Initial | Optimized

val kernel_attr : string
(** Function attribute recording the kernel form ("initial"/"optimized"). *)

val window_span : shape:int list -> offsets:int list list -> int
(** Row-major linear span of the access offsets: the number of elements the
    shift buffer must hold. *)

val run : mode:mode -> Op.t -> Op.t
val pass : mode:mode -> unit -> Pass.t

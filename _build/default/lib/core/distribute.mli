(** Automatic domain decomposition (paper §4.2): convert a stencil program
    on the global domain into a rank-local stencil program with dmp.swap
    halo exchanges.

    Every stencil-typed value is rewritten to its rank-local bounds (the
    ghost margins carried by the types double as exchange halos), and a
    [dmp.swap] is inserted before each [stencil.load]; redundant swaps are
    removed afterwards by {!Swap_elim}. *)

open Ir

type options = {
  ranks : int;
  strategy : Decomposition.strategy;
  mode : Decomposition.exchange_mode;
}

val options :
  ?mode:Decomposition.exchange_mode ->
  ranks:int ->
  strategy:Decomposition.strategy ->
  unit ->
  options
(** Defaults to the paper's face-only exchange prototype. *)

val find_domain : Op.t -> int list
(** The global interior domain of a function (from its first apply's output
    bounds, which must start at 0). *)

val function_halo : Op.t -> rank:int -> (int * int) array
(** The combined stencil radius over every apply in the function. *)

val localize_bounds :
  domain:int list -> grid:int list -> Typesys.bound list -> Typesys.bound list
(** Shrink global bounds to one rank's share, keeping ghost margins. *)

val localize_ty : domain:int list -> grid:int list -> Typesys.ty -> Typesys.ty

val field_exchanges :
  mode:Decomposition.exchange_mode ->
  domain:int list ->
  grid:int list ->
  halo:(int * int) array ->
  Typesys.bound list ->
  Typesys.exchange list
(** The exchanges for one field: the function-wide halo clamped to the
    field's own ghost margins. *)

val run : options -> Op.t -> Op.t
val pass : options -> Pass.t

(** Stencil shape inference: checks that every stencil access stays within
    its operand's bounds (the bounds-in-types analogue of the Open Earth
    Compiler's shape inference) and computes the minimal input bounds an
    apply requires. *)

open Ir

exception Shape_error of string

val required_input_bounds : Op.t -> Typesys.bound list array
(** Per input of an apply, the output bounds extended by that input's
    access extents. *)

val covers : Typesys.bound list -> Typesys.bound list -> bool

val check_apply : Op.t -> unit
val check_store : Op.t -> unit

val run : Op.t -> Op.t
(** Raises {!Shape_error} on the first violation; the IR is unchanged. *)

val pass : Pass.t

(* Decomposition strategies (paper §4.2).

   A strategy exposes the interface the distribution rewrite needs: the rank
   layout (the dmp.grid attribute), the rank-local domain computed from the
   global domain, and the halo exchange declarations (dmp.exchange
   attributes) generated from the stencil access patterns.  The standard
   slicing strategies support 1D, 2D and 3D grids; adopters can supply their
   own layout via [Custom]. *)

open Ir

type strategy =
  | Slice1d
  | Slice2d
  | Slice3d
  | Custom of string * (int -> int -> int list)
      (** name, and [fun ranks rank -> grid dims]. *)

let strategy_name = function
  | Slice1d -> "1d-slice"
  | Slice2d -> "2d-slice"
  | Slice3d -> "3d-slice"
  | Custom (name, _) -> name

(* Balanced factorization of [n] into [k] factors, largest first. *)
let balanced_factors n k =
  let rec factor n k =
    if k = 1 then [ n ]
    else begin
      (* Choose the divisor of n closest to n^(1/k) from above. *)
      let target = int_of_float (Float.round (Float.pow (float n) (1. /. float k))) in
      let rec search d =
        if d > n then n
        else if d >= target && n mod d = 0 then d
        else search (d + 1)
      in
      let d = search (max target 1) in
      d :: factor (n / d) (k - 1)
    end
  in
  List.sort (fun a b -> compare b a) (factor n k)

(* The cartesian rank layout for [ranks] total ranks over a [rank]-D domain.
   Dimensions beyond the strategy's slicing depth get extent 1. *)
let rec grid_of strategy ~ranks ~rank =
  match strategy with
  | Custom (_, f) -> f ranks rank
  | Slice1d -> List.init rank (fun i -> if i = 0 then ranks else 1)
  | Slice2d ->
      if rank < 2 then [ ranks ]
      else begin
        match balanced_factors ranks 2 with
        | [ a; b ] -> a :: b :: List.init (rank - 2) (fun _ -> 1)
        | _ -> assert false
      end
  | Slice3d ->
      if rank < 3 then grid_of Slice2d ~ranks ~rank
      else begin
        match balanced_factors ranks 3 with
        | [ a; b; c ] -> a :: b :: c :: List.init (rank - 3) (fun _ -> 1)
        | _ -> assert false
      end

(* Split a global interior extent over [parts] ranks.  The paper's prototype
   decomposes equally; we require divisibility and report a clear error
   otherwise (recompilation per problem size is already assumed by the
   compile-time-bounds design). *)
let split_extent ~global ~parts =
  if global mod parts <> 0 then
    Op.ill_formed
      "decomposition: extent %d not divisible by %d ranks along a dimension"
      global parts
  else global / parts

(* Rank-local bounds from the global *interior* extents: interior
   [0, n/p) per dimension, extended by the halo (which doubles as the
   boundary ghost region on edge ranks).  [halo] gives (neg, pos) extents
   per dimension, with neg <= 0 <= pos. *)
let local_bounds ~(interior : int list) ~(grid : int list)
    ~(halo : (int * int) array) : Typesys.bound list =
  List.mapi
    (fun d n ->
      let parts = List.nth grid d in
      let local = split_extent ~global: n ~parts in
      let neg, pos = if d < Array.length halo then halo.(d) else (0, 0) in
      Typesys.{ lo = neg; hi = local + pos })
    interior

(* Local interior extents per dimension. *)
let local_interior ~(interior : int list) ~(grid : int list) : int list =
  List.mapi
    (fun d n -> split_extent ~global: n ~parts: (List.nth grid d))
    interior

(* Which neighbor set to exchange with.  [Faces] is the paper's prototype
   (a limitation it notes versus Devito's diagonal scheme); [Diagonals]
   implements the extension the paper leaves as future work — corner and
   edge exchanges in the cartesian topology, required for stencils whose
   accesses mix dimensions. *)
type exchange_mode = Faces | Diagonals

(* The exchange with the neighbor in direction [v] (components in
   {-1,0,+1}): per dimension, a -1/+1 component selects the low/high halo
   slab while 0 spans the interior.  Returns None if any involved
   dimension is undecomposed or has no halo there. *)
let exchange_for_direction ~(interior : int list)
    ~(halo : (int * int) array) ~(grid : int list) (v : int list) :
    Typesys.exchange option =
  let per_dim =
    List.mapi
      (fun d vd ->
        let n_d = List.nth interior d in
        let neg, pos = if d < Array.length halo then halo.(d) else (0, 0) in
        let parts = List.nth grid d in
        match vd with
        | 0 -> Some (0, n_d, 0)
        | -1 ->
            if parts > 1 && neg < 0 then Some (neg, -neg, -neg) else None
        | 1 ->
            if parts > 1 && pos > 0 then Some (n_d, pos, -pos) else None
        | _ -> None)
      v
  in
  if List.exists (( = ) None) per_dim then None
  else begin
    let per_dim = List.map Option.get per_dim in
    Some
      Typesys.
        {
          ex_offset = List.map (fun (o, _, _) -> o) per_dim;
          ex_size = List.map (fun (_, s, _) -> s) per_dim;
          ex_source_offset = List.map (fun (_, _, so) -> so) per_dim;
          ex_neighbor = v;
        }
  end

(* All direction vectors in {-1,0,1}^rank minus the origin: the faces
   first (dimension order, low side then high side), then — with
   [Diagonals] — the edge/corner directions. *)
let directions ~rank ~(mode : exchange_mode) : int list list =
  let face d v = List.init rank (fun i -> if i = d then v else 0) in
  let faces =
    List.concat (List.init rank (fun d -> [ face d (-1); face d 1 ]))
  in
  match mode with
  | Faces -> faces
  | Diagonals ->
      let rec enum d =
        if d = 0 then [ [] ]
        else
          List.concat_map
            (fun rest -> [ -1 :: rest; 0 :: rest; 1 :: rest ])
            (enum (d - 1))
      in
      let diag =
        List.filter
          (fun v -> List.length (List.filter (( <> ) 0) v) >= 2)
          (enum rank)
      in
      faces @ diag

(* Exchange declarations for a local domain.

   Every exchange pairs a receive with a send to the same neighbor, and all
   ranks execute the same program — so each dimension's halo is symmetrized
   first ([(-1,0)] becomes [(-1,1)]): otherwise a rank with only a low-side
   halo would wait on a neighbor that never posts the matching send (the
   neighbor's high-side exchange would not exist).  Asymmetric stencils
   thus over-communicate slightly, in the spirit of the prototype's
   swap-then-eliminate design. *)
let exchanges ?(mode = Faces) ~(interior : int list)
    ~(halo : (int * int) array) ~(grid : int list) () :
    Typesys.exchange list =
  let rank = List.length interior in
  let halo =
    Array.map (fun (neg, pos) -> (min neg (-pos), max pos (-neg))) halo
  in
  List.filter_map
    (exchange_for_direction ~interior ~halo ~grid)
    (directions ~rank ~mode)

(* Total number of points communicated by a list of exchanges. *)
let exchange_volume (exs : Typesys.exchange list) =
  List.fold_left
    (fun acc (e : Typesys.exchange) ->
      acc + List.fold_left ( * ) 1 e.ex_size)
    0 exs

(* All verifier checks of the full stack: the generic dialects plus the
   stencil / dmp / mpi / hls dialects contributed by this work. *)

let checks : Ir.Verifier.check list =
  Dialects.Registry.checks @ Stencil.checks @ Dmp.checks @ Mpi.checks
  @ Hls.checks

(** The dmp dialect (paper §4.2): an IR for distributed-memory parallelism.

    [dmp.swap] is a high-level declarative expression of a halo exchange:
    it takes the buffer being exchanged and carries the cartesian rank
    topology ([#dmp.grid]) plus the rectangular region exchanges
    ([#dmp.exchange]) as attributes (fig. 3).  Nothing in the dialect is
    MPI-specific; {!Dmp_to_mpi} is one possible lowering. *)

open Ir

val swap : string
(** The op name, ["dmp.swap"]. *)

val swap_begin : string
val swap_wait : string

val swap_op :
  Builder.t ->
  Value.t ->
  grid:int list ->
  exchanges:Typesys.exchange list ->
  unit
(** Declare a halo exchange of [buffer] over the given topology. *)

val swap_begin_op :
  Builder.t ->
  Value.t ->
  grid:int list ->
  exchanges:Typesys.exchange list ->
  Value.t list
(** Split-phase exchange (the paper's communication/computation-overlap
    future work): post the sends/receives and return one (send, receive)
    request pair per exchange. *)

val swap_wait_op :
  Builder.t ->
  Value.t ->
  Value.t list ->
  grid:int list ->
  exchanges:Typesys.exchange list ->
  unit
(** Complete a split-phase exchange and unpack the halos. *)

val grid_of : Op.t -> int list
(** The cartesian rank topology of a swap. *)

val exchanges_of : Op.t -> Typesys.exchange list
(** The exchange declarations of a swap. *)

val buffer_of : Op.t -> Value.t
(** The exchanged buffer (a field before loop lowering, a memref after). *)

val checks : Verifier.check list

(* The dmp dialect (paper §4.2): an IR for distributed-memory parallelism.

   The single computational op is [dmp.swap], a high-level declarative
   expression of a halo exchange: it takes the buffer being exchanged and
   carries the cartesian rank topology ([#dmp.grid]) plus the list of
   rectangular region exchanges ([#dmp.exchange]) as attributes.  Nothing in
   the dialect is MPI-specific; the provided lowering targets the mpi
   dialect but other communication libraries could be targeted instead. *)

open Ir

let swap = "dmp.swap"
let swap_begin = "dmp.swap_begin"
let swap_wait = "dmp.swap_wait"

let swap_op b buffer ~(grid : int list) ~(exchanges : Typesys.exchange list)
    =
  Builder.emit0 b swap ~operands: [ buffer ]
    ~attrs:
      [
        ("topo", Typesys.Grid_attr grid);
        ( "exchanges",
          Typesys.Array_attr
            (List.map (fun e -> Typesys.Exchange_attr e) exchanges) );
      ]

let swap_attrs ~(grid : int list) ~(exchanges : Typesys.exchange list) =
  [
    ("topo", Typesys.Grid_attr grid);
    ( "exchanges",
      Typesys.Array_attr
        (List.map (fun e -> Typesys.Exchange_attr e) exchanges) );
  ]

(* Split-phase exchange (communication/computation overlap, the future-work
   extension of §4.2/§8): [swap_begin] posts the sends and receives and
   returns one request pair per exchange; [swap_wait] completes them and
   unpacks the halos.  Interior computation can run between the two. *)
let swap_begin_op b buffer ~(grid : int list)
    ~(exchanges : Typesys.exchange list) : Value.t list =
  let results =
    List.concat_map
      (fun _ -> [ Value.fresh Typesys.Request; Value.fresh Typesys.Request ])
      exchanges
  in
  Builder.add b
    (Op.make swap_begin ~operands: [ buffer ] ~results
       ~attrs: (swap_attrs ~grid ~exchanges));
  results

let swap_wait_op b buffer (requests : Value.t list) ~(grid : int list)
    ~(exchanges : Typesys.exchange list) : unit =
  Builder.emit0 b swap_wait
    ~operands: (buffer :: requests)
    ~attrs: (swap_attrs ~grid ~exchanges)

let grid_of (op : Op.t) =
  match Op.attr_exn op "topo" with
  | Typesys.Grid_attr g -> g
  | _ -> Op.ill_formed "dmp.swap: topo must be a #dmp.grid attribute"

let exchanges_of (op : Op.t) =
  match Op.attr_exn op "exchanges" with
  | Typesys.Array_attr xs ->
      List.map
        (function
          | Typesys.Exchange_attr e -> e
          | _ -> Op.ill_formed "dmp.swap: exchanges must be #dmp.exchange")
        xs
  | _ -> Op.ill_formed "dmp.swap: exchanges must be an array attribute"

let buffer_of (op : Op.t) = Op.operand_exn op 0

let swap_like_check name : Verifier.check =
  Verifier.for_op name (fun op ->
      match op.Op.operands with
      | buf :: reqs ->
          let rank =
            match Value.ty buf with
            | Typesys.Field (bs, _) | Typesys.Temp (bs, _) ->
                Some (List.length bs)
            | Typesys.Memref (shape, _) -> Some (List.length shape)
            | _ -> None
          in
          if rank = None then Error "first operand must be a buffer"
          else if
            List.for_all (fun r -> Value.ty r = Typesys.Request) reqs
          then Ok ()
          else Error "trailing operands must be requests"
      | [] -> Error "missing buffer operand")

let checks : Verifier.check list =
  [
    swap_like_check swap_begin;
    swap_like_check swap_wait;
    Verifier.for_op swap (fun op ->
        match op.Op.operands with
        | [ buf ] -> (
            let rank =
              match Value.ty buf with
              | Typesys.Field (bs, _) | Typesys.Temp (bs, _) ->
                  Some (List.length bs)
              | Typesys.Memref (shape, _) -> Some (List.length shape)
              | _ -> None
            in
            match rank with
            | None -> Error "swap operand must be a field, temp or memref"
            | Some rank ->
                let grid = grid_of op in
                let exs = exchanges_of op in
                if List.length grid <> rank then
                  Error "grid rank must match buffer rank"
                else if
                  List.for_all
                    (fun (e : Typesys.exchange) ->
                      List.length e.ex_offset = rank
                      && List.length e.ex_size = rank
                      && List.length e.ex_source_offset = rank
                      && List.length e.ex_neighbor = rank)
                    exs
                then Ok ()
                else Error "exchange vectors must match buffer rank")
        | _ -> Error "swap takes exactly one operand");
  ]

(** The hls dialect: FPGA high-level-synthesis constructs used by the
    stencil-to-FPGA flow (paper §6.2, Table 1) — dataflow regions and
    stages, streams, shift buffers and pipeline metadata. *)

open Ir

val dataflow : string
val stage : string
val stream_create : string
val stream_read : string
val stream_write : string
val shift_buffer : string

val pipeline_attr : string
(** Attribute key carrying a loop/stage initiation interval. *)

val stream_create_op : Builder.t -> Typesys.ty -> Value.t
val stream_read_op : Builder.t -> Value.t -> Value.t
val stream_write_op : Builder.t -> Value.t -> Value.t -> unit

val dataflow_op : Builder.t -> (Builder.t -> unit) -> unit
(** A dataflow region whose nested stages conceptually run as concurrent
    processes connected by streams. *)

val stage_op : Builder.t -> ?name:string -> (Builder.t -> unit) -> unit

val shift_buffer_op :
  Builder.t -> input:Value.t -> window:int -> elt:Typesys.ty -> Value.t
(** A shift buffer caching [window] elements of the input stream so every
    stencil operand is available per cycle while one new value streams in
    (the 3D shift buffer of Brown [2021]). *)

val set_pipeline_ii : Op.t -> int -> Op.t
val pipeline_ii : Op.t -> int option

val count_stages : Op.t -> int
val has_shift_buffer : Op.t -> bool
val checks : Verifier.check list

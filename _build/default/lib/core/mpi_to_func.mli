(** Lowering the mpi dialect to plain function calls (paper §4.3,
    listing 4): mpi ops become func.call ops on external MPI_* functions
    with mpich magic constants substituted for datatype/communicator/op
    handles; external declarations are appended to the end of the module.

    ABI note: where the C API returns values through pointer out-parameters
    (ranks, requests), the declared externals return them directly — the
    simulated MPI runtime implements the same ABI. *)

open Ir

val convert_ty : Typesys.ty -> Typesys.ty
(** Requests/statuses/datatypes/communicators become i32 handles. *)

val externals : (string * (Typesys.ty list * Typesys.ty list)) list
(** The external signatures the lowering may declare. *)

val run : Op.t -> Op.t
val pass : Pass.t

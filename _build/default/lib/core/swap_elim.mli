(** Redundant halo-exchange elimination (paper §4.2).

    The distribution pass inserts a dmp.swap before every stencil.load; this
    pass analyzes the SSA data flow and removes a swap whose buffer is
    already clean (no store since its previous swap in the same block).
    Buffers entering loop bodies as block arguments start dirty, so
    exchanges inside time loops are kept. *)

open Ir

val run : Op.t -> Op.t

val count_swaps : Op.t -> int
(** Number of dmp.swap ops in a module (ablation metric). *)

val pass : Pass.t

lib/core/mpi_to_func.ml: Arith Dialects Func Ir List Memref Mpi Op Pass Set String Transforms Typesys Value

lib/core/registry.mli: Ir

lib/core/shape_inference.ml: Array Format Ir List Op Pass Printf Stencil String Typesys Value

lib/core/dmp.mli: Builder Ir Op Typesys Value Verifier

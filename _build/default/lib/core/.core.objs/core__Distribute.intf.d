lib/core/distribute.mli: Decomposition Ir Op Pass Typesys

lib/core/stencil_to_hls.ml: Builder Dialects Func Hashtbl Hls Ir List Memref Op Pass Printf Stencil Stencil_to_loops Typesys Value

lib/core/stencil.mli: Builder Ir Op Typesys Value Verifier

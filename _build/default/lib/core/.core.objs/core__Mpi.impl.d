lib/core/mpi.ml: Builder Ir List Op String Typesys Value Verifier

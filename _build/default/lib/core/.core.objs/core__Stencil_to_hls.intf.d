lib/core/stencil_to_hls.mli: Ir Op Pass

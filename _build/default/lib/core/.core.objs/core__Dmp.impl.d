lib/core/dmp.ml: Builder Ir List Op Typesys Value Verifier

lib/core/hls.mli: Builder Ir Op Typesys Value Verifier

lib/core/stencil_to_loops.ml: Arith Builder Dialects Func Gpu Hashtbl Ir List Memref Omp Op Pass Scf Stencil Typesys Value

lib/core/swap_elim.mli: Ir Op Pass

lib/core/shape_inference.mli: Ir Op Pass Typesys

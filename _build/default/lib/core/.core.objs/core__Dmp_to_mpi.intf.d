lib/core/dmp_to_mpi.mli: Builder Ir Op Pass Typesys Value

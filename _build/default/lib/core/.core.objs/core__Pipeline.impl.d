lib/core/pipeline.ml: Decomposition Distribute Dmp_to_mpi Ir Mpi_to_func Op Overlap Pass Registry Shape_inference Stencil_to_hls Stencil_to_loops Swap_elim Transforms Verifier

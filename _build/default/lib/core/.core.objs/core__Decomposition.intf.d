lib/core/decomposition.mli: Ir Typesys

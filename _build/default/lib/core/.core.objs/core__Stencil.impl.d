lib/core/stencil.ml: Array Builder Ir List Op Typesys Value Verifier

lib/core/swap_elim.ml: Dmp Int Ir List Op Pass Set Transforms Value

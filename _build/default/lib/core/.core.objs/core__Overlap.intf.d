lib/core/overlap.mli: Ir Op Pass

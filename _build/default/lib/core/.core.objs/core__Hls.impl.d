lib/core/hls.ml: Builder Ir List Op Typesys Value Verifier

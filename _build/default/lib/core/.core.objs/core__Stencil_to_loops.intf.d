lib/core/stencil_to_loops.mli: Builder Hashtbl Ir Op Pass Typesys Value

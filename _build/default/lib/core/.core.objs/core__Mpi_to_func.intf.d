lib/core/mpi_to_func.mli: Ir Op Pass Typesys

lib/core/distribute.ml: Array Builder Decomposition Dialects Dmp Func Hashtbl Ir List Op Pass Stencil Typesys Value

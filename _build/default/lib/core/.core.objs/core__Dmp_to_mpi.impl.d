lib/core/dmp_to_mpi.ml: Arith Builder Dialects Dmp Hashtbl Ir List Memref Mpi Op Pass Scf Typesys Value

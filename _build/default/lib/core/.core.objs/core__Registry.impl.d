lib/core/registry.ml: Dialects Dmp Hls Ir Mpi Stencil

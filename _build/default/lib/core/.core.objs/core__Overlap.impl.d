lib/core/overlap.ml: Array Builder Dialects Dmp Hashtbl Ir List Op Pass Stencil Stencil_to_loops Typesys Value

lib/core/mpi.mli: Builder Ir Op Typesys Value Verifier

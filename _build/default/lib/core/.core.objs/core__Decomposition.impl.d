lib/core/decomposition.ml: Array Float Ir List Op Option Typesys

lib/core/pipeline.mli: Decomposition Ir Op Pass

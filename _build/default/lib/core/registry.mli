(** All verifier checks of the full stack: the generic dialects plus the
    stencil / dmp / mpi / hls dialects contributed by this work. *)

val checks : Ir.Verifier.check list

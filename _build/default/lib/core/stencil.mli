(** The stencil dialect (paper §4.1).

    Extended from the Open Earth Compiler's dialect as described in the
    paper: domain bounds live in the types ([!stencil.field] and
    [!stencil.temp] carry static per-dimension bounds, so any op using
    stencil values reads bounds directly off its operands); stencils of any
    rank are supported; and value semantics separate buffers (fields) from
    values (temps). *)

open Ir

(** {1 Operation names} *)

val load : string
val store : string
val apply : string
val access : string
val index : string
val return_ : string
val cast : string

(** {1 Types} *)

val field_ty : Typesys.bound list -> Typesys.ty -> Typesys.ty
(** [!stencil.field]: the buffer stencil values are loaded from / stored
    to. *)

val temp_ty : Typesys.bound list -> Typesys.ty -> Typesys.ty
(** [!stencil.temp]: value-semantics stencil values. *)

val bounds_exn : Value.t -> Typesys.bound list
(** Bounds of a stencil-typed value; raises {!Ir.Op.Ill_formed} otherwise. *)

val element_exn : Value.t -> Typesys.ty
(** Element type of a stencil-typed value. *)

(** {1 Constructors} *)

val load_op : Builder.t -> Value.t -> Value.t
(** [stencil.load]: take a field's values into a temp of equal bounds. *)

val store_op :
  Builder.t -> Value.t -> Value.t -> lb:int list -> ub:int list -> unit
(** [stencil.store temp field ~lb ~ub]: write the temp to the field over the
    user-defined range [\[lb, ub)]. *)

val access_op : Builder.t -> Value.t -> int list -> Value.t
(** [stencil.access temp offsets]: read the temp at an offset relative to
    the current position (only valid inside an apply body, where the temp
    is a block argument). *)

val index_op : Builder.t -> dim:int -> Value.t
(** [stencil.index]: the current position along [dim] (used to encode
    boundary conditions as conditionals, per the paper's §4.1 limitation
    discussion). *)

val return_vals : Builder.t -> Value.t list -> unit
(** [stencil.return]: terminate an apply body with the per-point results. *)

val apply_op :
  Builder.t ->
  inputs:Value.t list ->
  out_bounds:Typesys.bound list ->
  elt:Typesys.ty ->
  n_results:int ->
  (Builder.t -> Value.t list -> unit) ->
  Value.t list
(** [stencil.apply]: apply a stencil function over [out_bounds].  The body
    callback receives a builder and block arguments standing for [inputs];
    it must end with {!return_vals} of [n_results] scalars of type [elt].
    Returns the result temps. *)

val cast_op : Builder.t -> Value.t -> Typesys.bound list -> Value.t
(** [stencil.cast]: reinterpret a field's bounds. *)

(** {1 Accessors and analyses} *)

val access_offset : Op.t -> int list
val store_range : Op.t -> int list * int list

val apply_body : Op.t -> Op.block
(** The single body block of an apply op. *)

val apply_accesses : Op.t -> (int * int list) list
(** Every access in an apply body as (input position, offsets). *)

val halo_extents : Op.t -> rank:int -> (int * int) array array
(** Per input and per dimension, the (negative, positive) access extents. *)

val combined_halo : Op.t -> rank:int -> (int * int) array
(** The halo over all inputs: the minimal exchange shape for distributed
    memory, derived by scanning access offsets (paper §4.1). *)

val checks : Verifier.check list
(** Dialect verifier checks. *)

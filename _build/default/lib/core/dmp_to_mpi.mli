(** Lowering dmp.swap to the mpi dialect (paper §4.2/§4.3, fig. 4): per
    exchange, temporary contiguous buffers, the neighbor-rank computation
    with boundary existence checks, packing, non-blocking isend/irecv under
    scf.if (skipped exchanges yield null requests), one waitall per swap,
    and unpacking.  Buffer allocations and rank queries are left for the
    shared LICM pass to hoist out of time loops. *)

open Ir

val product : int list -> int

val grid_strides : int list -> int list
(** Row-major strides of a cartesian rank grid. *)

val direction_of : Ir.Typesys.exchange -> int * int
(** First decomposed dimension and sign of an exchange's neighbor vector. *)

val send_tag : Typesys.exchange -> int
(** Message tags encode the direction of travel (toward +d: 2d+1, toward
    -d: 2d) so matching sends and receives pair up. *)

val recv_tag : Typesys.exchange -> int

val emit_box_loops :
  Builder.t ->
  int list ->
  (Builder.t -> Value.t list -> Value.t -> unit) ->
  unit
(** Loop nest over a box; the body receives zero-based coordinates and the
    row-major linear index (used for pack/unpack). *)

val lower_swap : Builder.t -> Op.t -> unit
(** Lower one dmp.swap into the builder. *)

val run : Op.t -> Op.t
val pass : Pass.t

(** Decomposition strategies (paper §4.2).

    A strategy exposes the interface the distribution rewrite needs: the
    rank layout (the dmp.grid attribute), the rank-local domain computed
    from the global domain, and the halo exchange declarations generated
    from the stencil access patterns.  Slicing strategies for 1D, 2D and 3D
    grids are provided; adopters can supply their own layout via
    [Custom]. *)

open Ir

type strategy =
  | Slice1d
  | Slice2d
  | Slice3d
  | Custom of string * (int -> int -> int list)
      (** name, and [fun ranks rank -> grid dimensions]. *)

val strategy_name : strategy -> string

val balanced_factors : int -> int -> int list
(** [balanced_factors n k] factors [n] into [k] near-equal factors, largest
    first. *)

val grid_of : strategy -> ranks:int -> rank:int -> int list
(** The cartesian rank layout for [ranks] total ranks over a [rank]-D
    domain; the product of the grid always equals [ranks]. *)

val split_extent : global:int -> parts:int -> int
(** Equal split of one extent; raises {!Ir.Op.Ill_formed} when not
    divisible (the prototype decomposes equally, as in the paper). *)

val local_bounds :
  interior:int list ->
  grid:int list ->
  halo:(int * int) array ->
  Typesys.bound list
(** Rank-local bounds: interior [\[0, n/p)] per dimension extended by the
    halo (which doubles as the boundary ghost region on edge ranks). *)

val local_interior : interior:int list -> grid:int list -> int list
(** Local interior extents per dimension. *)

(** Which neighbor set to exchange with: [Faces] is the paper's prototype;
    [Diagonals] implements the future-work extension (corner and edge
    exchanges), required for stencils whose accesses mix dimensions. *)
type exchange_mode = Faces | Diagonals

val exchange_for_direction :
  interior:int list ->
  halo:(int * int) array ->
  grid:int list ->
  int list ->
  Typesys.exchange option
(** The exchange with the neighbor in a given direction vector (components
    in [-1;0;+1]); [None] when any involved dimension is undecomposed or
    has no halo on that side. *)

val directions : rank:int -> mode:exchange_mode -> int list list
(** All direction vectors for a mode: faces first (dimension order, low
    then high side), then edge/corner directions for [Diagonals]. *)

val exchanges :
  ?mode:exchange_mode ->
  interior:int list ->
  halo:(int * int) array ->
  grid:int list ->
  unit ->
  Typesys.exchange list
(** The exchange declarations of one rank-local domain. *)

val exchange_volume : Typesys.exchange list -> int
(** Total points communicated by a list of exchanges. *)

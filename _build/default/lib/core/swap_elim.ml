(* Redundant halo-exchange elimination (paper §4.2).

   The distribution pass inserts a dmp.swap before *every* stencil.load,
   which may generate redundant data exchanges.  This pass analyzes the SSA
   data flow and removes a swap when the swapped buffer is already clean:
   no store has written to it since its previous swap in the same block.

   Block arguments (e.g. time-loop iteration buffers) start dirty, so
   exchanges inside time loops are conservatively kept — which is exactly
   the behaviour needed for buffer-swapping time iterations. *)

open Ir

module Int_set = Set.Make (Int)

let rec elim_block (b : Op.block) : Op.block =
  let clean = ref Int_set.empty in
  let kept =
    List.fold_left
      (fun acc (op : Op.t) ->
        match op.Op.name with
        | "dmp.swap" ->
            let buf = Value.id (Dmp.buffer_of op) in
            if Int_set.mem buf !clean then acc
            else begin
              clean := Int_set.add buf !clean;
              op :: acc
            end
        | "stencil.store" ->
            let field = Value.id (Op.operand_exn op 1) in
            clean := Int_set.remove field !clean;
            op :: acc
        | "memref.store" | "memref.copy" ->
            (* After lowering, conservatively dirty the written memref. *)
            (match op.Op.name with
            | "memref.store" ->
                clean := Int_set.remove (Value.id (Op.operand_exn op 1)) !clean
            | _ ->
                clean :=
                  Int_set.remove (Value.id (Op.operand_exn op 1)) !clean);
            op :: acc
        | "stencil.apply" ->
            (* Value semantics: an apply reads temps and yields new temps;
               it can never write a field, so swap state survives it. *)
            op :: acc
        | _ ->
            (* Other ops with regions may store into captured or aliased
               buffers (e.g. time loops whose iteration arguments alias the
               operands), so clear the state conservatively and recurse. *)
            let op =
              if op.Op.regions = [] then op
              else begin
                clean := Int_set.empty;
                {
                  op with
                  Op.regions =
                    List.map
                      (fun (r : Op.region) ->
                        { Op.blocks = List.map elim_block r.Op.blocks })
                      op.Op.regions;
                }
              end
            in
            op :: acc)
      [] b.Op.ops
  in
  { b with Op.ops = List.rev kept }

let run (m : Op.t) : Op.t =
  {
    m with
    Op.regions =
      List.map
        (fun (r : Op.region) ->
          { Op.blocks = List.map elim_block r.Op.blocks })
        m.Op.regions;
  }

let count_swaps m = Transforms.Statistics.count m Dmp.swap

let pass = Pass.make "eliminate-redundant-swaps" run

(* All verifier checks of the generic dialects, to be combined with the
   stencil/dmp/mpi/hls checks from the core library. *)

let checks : Ir.Verifier.check list =
  Arith.checks @ Func.checks @ Scf.checks @ Memref.checks @ Omp.checks
  @ Gpu.checks

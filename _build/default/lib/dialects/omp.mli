(** A miniature omp dialect: a parallel region wrapping a loop nest.  The
    machine model charges a fork/join barrier per region — the effect
    behind the paper's tracer-advection findings. *)

open Ir

val parallel : string
val parallel_op : Builder.t -> ?num_threads:int -> (Builder.t -> unit) -> unit

val count_regions : Op.t -> int
(** omp.parallel regions in a module: the fork/join overhead input. *)

val checks : Verifier.check list

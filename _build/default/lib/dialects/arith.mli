(** The arith dialect: SSA arithmetic on signless integers, floats and
    index values (the MLIR subset used by the stencil lowerings). *)

open Ir

(** {1 Operation names} *)

val constant : string
val addi : string
val subi : string
val muli : string
val divsi : string
val remsi : string
val andi : string
val ori : string
val xori : string
val addf : string
val subf : string
val mulf : string
val divf : string
val maximumf : string
val minimumf : string
val negf : string
val cmpi : string
val cmpf : string
val select : string
val index_cast : string
val sitofp : string
val fptosi : string
val extf : string
val truncf : string

val int_binops : string list
val float_binops : string list

(** {1 Comparison predicates} *)

type predicate = Eq | Ne | Lt | Le | Gt | Ge

val predicate_to_string : predicate -> string
val predicate_of_string : string -> predicate

(** {1 Constructors} *)

val const_int : Builder.t -> ?ty:Typesys.ty -> int -> Value.t
val const_index : Builder.t -> int -> Value.t
val const_float : Builder.t -> ?ty:Typesys.ty -> float -> Value.t

val binop : Builder.t -> string -> Value.t -> Value.t -> Value.t
(** Generic same-typed binary op by name. *)

val add_i : Builder.t -> Value.t -> Value.t -> Value.t
val sub_i : Builder.t -> Value.t -> Value.t -> Value.t
val mul_i : Builder.t -> Value.t -> Value.t -> Value.t
val div_i : Builder.t -> Value.t -> Value.t -> Value.t
val rem_i : Builder.t -> Value.t -> Value.t -> Value.t
val add_f : Builder.t -> Value.t -> Value.t -> Value.t
val sub_f : Builder.t -> Value.t -> Value.t -> Value.t
val mul_f : Builder.t -> Value.t -> Value.t -> Value.t
val div_f : Builder.t -> Value.t -> Value.t -> Value.t
val max_f : Builder.t -> Value.t -> Value.t -> Value.t
val min_f : Builder.t -> Value.t -> Value.t -> Value.t
val neg_f : Builder.t -> Value.t -> Value.t

val cmp_i : Builder.t -> predicate -> Value.t -> Value.t -> Value.t
val cmp_f : Builder.t -> predicate -> Value.t -> Value.t -> Value.t
val select_op : Builder.t -> Value.t -> Value.t -> Value.t -> Value.t
val index_cast_op : Builder.t -> Value.t -> Typesys.ty -> Value.t
val si_to_fp : Builder.t -> Value.t -> Typesys.ty -> Value.t

(** {1 Matchers} *)

val const_int_value : Op.t -> int option
val const_float_value : Op.t -> float option
val is_int_binop : string -> bool
val is_float_binop : string -> bool
val is_commutative : string -> bool

val checks : Verifier.check list

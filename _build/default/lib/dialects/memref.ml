(* The memref dialect: statically shaped memory buffers with load/store. *)

open Ir

let alloc = "memref.alloc"
let dealloc = "memref.dealloc"
let load = "memref.load"
let store = "memref.store"
let copy = "memref.copy"
let extract_ptr = "memref.extract_ptr"

let alloc_op b shape elt =
  Builder.emit1 b alloc (Typesys.Memref (shape, elt))

let dealloc_op b m = Builder.emit0 b dealloc ~operands: [ m ]

let load_op b m indices =
  let elt =
    match Value.ty m with
    | Typesys.Memref (_, t) -> t
    | t ->
        Op.ill_formed "memref.load on non-memref type %s"
          (Typesys.ty_to_string t)
  in
  Builder.emit1 b load elt ~operands: (m :: indices)

let store_op b value m indices =
  Builder.emit0 b store ~operands: ((value :: m :: indices))

let copy_op b ~src ~dst = Builder.emit0 b copy ~operands: [ src; dst ]

(* Extract an opaque pointer to the buffer, used by the mpi-to-func lowering
   (the analogue of unwrapping a memref into an !llvm.ptr). *)
let extract_ptr_op b m = Builder.emit1 b extract_ptr Typesys.Ptr ~operands: [ m ]

let shape_of v =
  match Value.ty v with
  | Typesys.Memref (shape, _) -> shape
  | t ->
      Op.ill_formed "expected memref, got %s" (Typesys.ty_to_string t)

let checks : Verifier.check list =
  [
    Verifier.for_op load (fun op ->
        match op.Op.operands with
        | m :: indices -> (
            match Value.ty m with
            | Typesys.Memref (shape, elt) ->
                if List.length indices <> List.length shape then
                  Error "load index count must match memref rank"
                else if
                  not
                    (List.for_all
                       (fun i -> Value.ty i = Typesys.Index)
                       indices)
                then Error "load indices must be index-typed"
                else if
                  match op.Op.results with
                  | [ r ] -> Typesys.equal_ty (Value.ty r) elt
                  | _ -> false
                then Ok ()
                else Error "load result must be the memref element type"
            | _ -> Error "load base must be a memref")
        | [] -> Error "load needs a memref operand");
    Verifier.for_op store (fun op ->
        match op.Op.operands with
        | v :: m :: indices -> (
            match Value.ty m with
            | Typesys.Memref (shape, elt) ->
                if List.length indices <> List.length shape then
                  Error "store index count must match memref rank"
                else if not (Typesys.equal_ty (Value.ty v) elt) then
                  Error "stored value must be the memref element type"
                else Ok ()
            | _ -> Error "store base must be a memref")
        | _ -> Error "store needs value and memref operands");
    Verifier.for_op alloc (fun op ->
        match op.Op.results with
        | [ r ] -> (
            match Value.ty r with
            | Typesys.Memref _ -> Ok ()
            | _ -> Error "alloc result must be a memref")
        | _ -> Error "alloc has exactly one result");
  ]

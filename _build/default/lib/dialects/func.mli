(** The func dialect: functions, calls and returns.  External declarations
    (e.g. MPI_Send after the mpi-to-func lowering) are funcs without a
    body. *)

open Ir

val func : string
val return : string
val call : string

val define :
  string ->
  arg_tys:Typesys.ty list ->
  res_tys:Typesys.ty list ->
  (Builder.t -> Value.t list -> unit) ->
  Op.t
(** Define a function whose body is built by the callback (receiving the
    entry block arguments). *)

val declare :
  string -> arg_tys:Typesys.ty list -> res_tys:Typesys.ty list -> Op.t
(** Declaration of an external function (no body). *)

val return_op : Builder.t -> Value.t list -> unit

val call_op :
  Builder.t -> string -> Value.t list -> Typesys.ty list -> Value.t list

val call1 : Builder.t -> string -> Value.t list -> Typesys.ty -> Value.t
(** Call with exactly one result. *)

val name_of : Op.t -> string
val signature_of : Op.t -> Typesys.ty list * Typesys.ty list
val is_declaration : Op.t -> bool
val body_exn : Op.t -> Op.region
val callee_of : Op.t -> string

val checks : Verifier.check list

(** The memref dialect: statically shaped memory buffers. *)

open Ir

val alloc : string
val dealloc : string
val load : string
val store : string
val copy : string
val extract_ptr : string

val alloc_op : Builder.t -> int list -> Typesys.ty -> Value.t
val dealloc_op : Builder.t -> Value.t -> unit
val load_op : Builder.t -> Value.t -> Value.t list -> Value.t
val store_op : Builder.t -> Value.t -> Value.t -> Value.t list -> unit
val copy_op : Builder.t -> src:Value.t -> dst:Value.t -> unit

val extract_ptr_op : Builder.t -> Value.t -> Value.t
(** Extract an opaque pointer to the buffer (the memref unwrapping of the
    mpi-to-func lowering). *)

val shape_of : Value.t -> int list

val checks : Verifier.check list

(* A miniature omp dialect: a parallel region wrapping a loop nest.  The
   interpreter runs the body sequentially; the machine model charges a
   fork/join barrier per region — the effect behind the paper's tracer
   advection findings (one omp.parallel per scf.parallel after conversion). *)

open Ir

let parallel = "omp.parallel"

let parallel_op b ?(num_threads = 0) body =
  let region = Builder.region_of body in
  let attrs =
    if num_threads > 0 then
      [ ("num_threads", Typesys.Int_attr (num_threads, Typesys.i64)) ]
    else []
  in
  Builder.emit0 b parallel ~attrs ~regions: [ region ]

(* Count omp.parallel regions in a module: the machine model's input for
   fork/join overhead. *)
let count_regions m =
  Op.fold (fun n op -> if op.Op.name = parallel then n + 1 else n) 0 m

let checks : Verifier.check list =
  [
    Verifier.for_op parallel (fun op ->
        if List.length op.Op.regions = 1 then Ok ()
        else Error "omp.parallel needs exactly one region");
  ]

(* The func dialect: functions, calls and returns.  External declarations
   (e.g. MPI_Send after the mpi-to-func lowering) are funcs without a body. *)

open Ir

let func = "func.func"
let return = "func.return"
let call = "func.call"

(* Define a function with a body built by [f], which receives a builder and
   the entry block arguments. *)
let define name ~arg_tys ~res_tys f =
  let body = Builder.region_with_args arg_tys f in
  Op.make func
    ~attrs:
      [
        ("sym_name", Typesys.String_attr name);
        ("function_type", Typesys.Type_attr (Typesys.Fn (arg_tys, res_tys)));
      ]
    ~regions: [ body ]

(* Declaration of an external function (no body). *)
let declare name ~arg_tys ~res_tys =
  Op.make func
    ~attrs:
      [
        ("sym_name", Typesys.String_attr name);
        ("function_type", Typesys.Type_attr (Typesys.Fn (arg_tys, res_tys)));
        ("sym_visibility", Typesys.String_attr "private");
      ]

let return_op b vs = Builder.emit0 b return ~operands: vs

let call_op b callee args res_tys =
  let results = List.map Value.fresh res_tys in
  Builder.add b
    (Op.make call ~operands: args ~results
       ~attrs: [ ("callee", Typesys.Symbol_attr callee) ]);
  results

let call1 b callee args res_ty =
  match call_op b callee args [ res_ty ] with
  | [ r ] -> r
  | _ -> assert false

let name_of (op : Op.t) = Op.string_attr_exn op "sym_name"

let signature_of (op : Op.t) =
  match Op.attr_exn op "function_type" with
  | Typesys.Type_attr (Typesys.Fn (args, res)) -> (args, res)
  | _ -> Op.ill_formed "func.func: bad function_type attribute"

let is_declaration (op : Op.t) = op.Op.regions = []

let body_exn (op : Op.t) =
  match op.Op.regions with
  | [ r ] -> r
  | _ -> Op.ill_formed "%s: expected a single body region" (name_of op)

let callee_of (op : Op.t) = Op.symbol_attr_exn op "callee"

let checks : Verifier.check list =
  [
    Verifier.for_op func (fun op ->
        match (Op.attr op "sym_name", Op.attr op "function_type") with
        | Some (Typesys.String_attr _), Some (Typesys.Type_attr (Typesys.Fn _))
          ->
            Ok ()
        | _ -> Error "func.func needs sym_name and function_type");
    Verifier.for_op call (fun op ->
        match Op.attr op "callee" with
        | Some (Typesys.Symbol_attr _) -> Ok ()
        | _ -> Error "func.call needs a callee symbol");
  ]

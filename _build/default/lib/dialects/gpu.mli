(** A miniature gpu dialect: device allocation, host/device transfer and
    kernel launches over an index space.  The machine model distinguishes
    explicit device buffers from managed memory and charges per-launch
    synchronization (paper fig. 9/10b). *)

open Ir

val alloc : string
val dealloc : string
val memcpy : string
val launch : string
val device_attr : string

val alloc_op : Builder.t -> int list -> Typesys.ty -> Value.t
val dealloc_op : Builder.t -> Value.t -> unit
val memcpy_op : Builder.t -> src:Value.t -> dst:Value.t -> unit

val launch_op :
  Builder.t ->
  ?synchronous:bool ->
  ubs:Value.t list ->
  (Builder.t -> Value.t list -> unit) ->
  unit
(** Launch a kernel body over an n-D index space; [synchronous] mirrors
    the MLIR scf-to-gpu limitation of a blocking host sync per kernel. *)

val count_launches : Op.t -> int
val checks : Verifier.check list

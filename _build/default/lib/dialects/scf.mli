(** The scf dialect: structured control flow — for loops with loop-carried
    values, conditionals, and parallel loop nests. *)

open Ir

val for_ : string
val if_ : string
val parallel : string
val yield : string

val for_op :
  Builder.t ->
  lo:Value.t ->
  hi:Value.t ->
  step:Value.t ->
  ?init:Value.t list ->
  (Builder.t -> Value.t -> Value.t list -> unit) ->
  Value.t list
(** [scf.for]: the body callback receives the induction variable and the
    iteration arguments and must end with an scf.yield of the next
    iteration values; returns the final values. *)

val yield_op : Builder.t -> Value.t list -> unit

val if_op :
  Builder.t ->
  Value.t ->
  res_tys:Typesys.ty list ->
  then_:(Builder.t -> unit) ->
  else_:(Builder.t -> unit) ->
  Value.t list

val parallel_op :
  Builder.t ->
  lbs:Value.t list ->
  ubs:Value.t list ->
  steps:Value.t list ->
  (Builder.t -> Value.t list -> unit) ->
  unit
(** [scf.parallel]: the operand list is lbs @ ubs @ steps with the loop
    count in the num_loops attribute. *)

val parallel_bounds : Op.t -> Value.t list * Value.t list * Value.t list
val for_bounds : Op.t -> Value.t * Value.t * Value.t * Value.t list

val checks : Verifier.check list

(* The scf dialect: structured control flow — for loops (with loop-carried
   values), conditionals, and parallel loop nests. *)

open Ir

let for_ = "scf.for"
let if_ = "scf.if"
let parallel = "scf.parallel"
let yield = "scf.yield"

(* scf.for %i = %lo to %hi step %st iter_args(...) { body }.
   [f] receives the builder, the induction variable and the iteration
   arguments and must end the region with an scf.yield of the next iteration
   values. *)
let for_op b ~lo ~hi ~step ?(init = []) f =
  let iter_tys = List.map Value.ty init in
  let region =
    Builder.region_with_args (Typesys.Index :: iter_tys) (fun body args ->
        match args with
        | iv :: iter_args -> f body iv iter_args
        | [] -> assert false)
  in
  let results = List.map Value.fresh iter_tys in
  Builder.add b
    (Op.make for_
       ~operands: ((lo :: hi :: step :: init))
       ~results ~regions: [ region ]);
  results

let yield_op b vs = Builder.emit0 b yield ~operands: vs

(* scf.if %cond -> (tys) { then } { else }. *)
let if_op b cond ~res_tys ~then_ ~else_ =
  let then_region = Builder.region_of then_ in
  let else_region = Builder.region_of else_ in
  let results = List.map Value.fresh res_tys in
  Builder.add b
    (Op.make if_ ~operands: [ cond ] ~results
       ~regions: [ then_region; else_region ]);
  results

(* scf.parallel (%i, %j, ...) = (lbs) to (ubs) step (steps) { body }.
   The operand list is lbs @ ubs @ steps; the loop count is recorded in the
   num_loops attribute so the three groups can be recovered. *)
let parallel_op b ~lbs ~ubs ~steps f =
  let n = List.length lbs in
  if List.length ubs <> n || List.length steps <> n then
    invalid_arg "Scf.parallel_op: rank mismatch";
  let region =
    Builder.region_with_args
      (List.init n (fun _ -> Typesys.Index))
      (fun body ivs ->
        f body ivs;
        yield_op body [])
  in
  Builder.add b
    (Op.make parallel
       ~operands: (lbs @ ubs @ steps)
       ~attrs: [ ("num_loops", Typesys.Int_attr (n, Typesys.i64)) ]
       ~regions: [ region ])

(* Accessors for scf.parallel operand groups. *)
let parallel_bounds (op : Op.t) =
  let n = Op.int_attr_exn op "num_loops" in
  let rec split k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | x :: rest ->
          let a, b = split (k - 1) rest in
          (x :: a, b)
      | [] -> Op.ill_formed "scf.parallel: not enough operands"
  in
  let lbs, rest = split n op.Op.operands in
  let ubs, steps = split n rest in
  (lbs, ubs, steps)

let for_bounds (op : Op.t) =
  match op.Op.operands with
  | lo :: hi :: step :: init -> (lo, hi, step, init)
  | _ -> Op.ill_formed "scf.for: expected at least 3 operands"

let checks : Verifier.check list =
  [
    Verifier.for_op for_ (fun op ->
        if List.length op.Op.operands >= 3 && List.length op.Op.regions = 1
        then Ok ()
        else Error "scf.for needs lo/hi/step and one region");
    Verifier.for_op if_ (fun op ->
        match (op.Op.operands, op.Op.regions) with
        | [ c ], [ _; _ ] when Value.ty c = Typesys.i1 -> Ok ()
        | _ -> Error "scf.if needs an i1 condition and two regions");
    Verifier.for_op parallel (fun op ->
        let n =
          match Op.attr op "num_loops" with
          | Some (Typesys.Int_attr (n, _)) -> n
          | _ -> -1
        in
        if n > 0 && List.length op.Op.operands = 3 * n then Ok ()
        else Error "scf.parallel needs num_loops and 3*n operands");
  ]

(* The arith dialect: SSA arithmetic on signless integers, floats and index
   values.  Mirrors the MLIR dialect subset used by the stencil lowering. *)

open Ir

let constant = "arith.constant"

(* Binary op names, grouped for the interpreter and the folder. *)
let addi = "arith.addi"
let subi = "arith.subi"
let muli = "arith.muli"
let divsi = "arith.divsi"
let remsi = "arith.remsi"
let andi = "arith.andi"
let ori = "arith.ori"
let xori = "arith.xori"
let addf = "arith.addf"
let subf = "arith.subf"
let mulf = "arith.mulf"
let divf = "arith.divf"
let maximumf = "arith.maximumf"
let minimumf = "arith.minimumf"
let negf = "arith.negf"
let cmpi = "arith.cmpi"
let cmpf = "arith.cmpf"
let select = "arith.select"
let index_cast = "arith.index_cast"
let sitofp = "arith.sitofp"
let fptosi = "arith.fptosi"
let extf = "arith.extf"
let truncf = "arith.truncf"

let int_binops = [ addi; subi; muli; divsi; remsi; andi; ori; xori ]
let float_binops = [ addf; subf; mulf; divf; maximumf; minimumf ]

(* Comparison predicates (carried as a string attribute). *)
type predicate = Eq | Ne | Lt | Le | Gt | Ge

let predicate_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let predicate_of_string = function
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "le" -> Le
  | "gt" -> Gt
  | "ge" -> Ge
  | s -> Op.ill_formed "unknown comparison predicate %S" s

(* Constructors *)

let const_int b ?(ty = Typesys.i64) v =
  Builder.emit1 b constant ty ~attrs: [ ("value", Typesys.Int_attr (v, ty)) ]

let const_index b v = const_int b ~ty: Typesys.Index v

let const_float b ?(ty = Typesys.f64) v =
  Builder.emit1 b constant ty
    ~attrs: [ ("value", Typesys.Float_attr (v, ty)) ]

let binop b name x y =
  Builder.emit1 b name (Value.ty x) ~operands: [ x; y ]

let add_i b x y = binop b addi x y
let sub_i b x y = binop b subi x y
let mul_i b x y = binop b muli x y
let div_i b x y = binop b divsi x y
let rem_i b x y = binop b remsi x y
let add_f b x y = binop b addf x y
let sub_f b x y = binop b subf x y
let mul_f b x y = binop b mulf x y
let div_f b x y = binop b divf x y
let max_f b x y = binop b maximumf x y
let min_f b x y = binop b minimumf x y

let neg_f b x = Builder.emit1 b negf (Value.ty x) ~operands: [ x ]

let cmp_i b pred x y =
  Builder.emit1 b cmpi Typesys.i1 ~operands: [ x; y ]
    ~attrs: [ ("predicate", Typesys.String_attr (predicate_to_string pred)) ]

let cmp_f b pred x y =
  Builder.emit1 b cmpf Typesys.i1 ~operands: [ x; y ]
    ~attrs: [ ("predicate", Typesys.String_attr (predicate_to_string pred)) ]

let select_op b cond if_true if_false =
  Builder.emit1 b select (Value.ty if_true)
    ~operands: [ cond; if_true; if_false ]

let index_cast_op b v ty = Builder.emit1 b index_cast ty ~operands: [ v ]
let si_to_fp b v ty = Builder.emit1 b sitofp ty ~operands: [ v ]

(* Matchers *)

let const_int_value (op : Op.t) =
  if op.name = constant then
    match Op.attr op "value" with
    | Some (Typesys.Int_attr (v, _)) -> Some v
    | _ -> None
  else None

let const_float_value (op : Op.t) =
  if op.name = constant then
    match Op.attr op "value" with
    | Some (Typesys.Float_attr (v, _)) -> Some v
    | _ -> None
  else None

let is_int_binop name = List.mem name int_binops
let is_float_binop name = List.mem name float_binops

let is_commutative name =
  List.mem name [ addi; muli; andi; ori; xori; addf; mulf; maximumf; minimumf ]

(* Dialect verifier checks. *)
let checks : Verifier.check list =
  let binop_check name : Verifier.check =
    Verifier.for_op name (fun op ->
        match (op.Op.operands, op.Op.results) with
        | [ a; b ], [ r ]
          when Typesys.equal_ty (Value.ty a) (Value.ty b)
               && Typesys.equal_ty (Value.ty a) (Value.ty r) ->
            Ok ()
        | _ -> Error "binary op operands/result types must all match")
  in
  List.map binop_check (int_binops @ float_binops)
  @ [
      Verifier.for_op constant (fun op ->
          match (Op.attr op "value", op.Op.results) with
          | Some (Typesys.Int_attr (_, t)), [ r ]
            when Typesys.equal_ty t (Value.ty r) ->
              Ok ()
          | Some (Typesys.Float_attr (_, t)), [ r ]
            when Typesys.equal_ty t (Value.ty r) ->
              Ok ()
          | Some _, _ -> Error "constant value type must match result type"
          | None, _ -> Error "constant needs a value attribute");
      Verifier.expect_operands cmpi 2;
      Verifier.expect_operands cmpf 2;
      Verifier.expect_operands select 3;
      Verifier.expect_operands negf 1;
    ]

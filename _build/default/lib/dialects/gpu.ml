(* A miniature gpu dialect: device allocation, host/device transfer and
   kernel launches over an index space.  Functionally the interpreter executes
   launches like parallel loops; the machine model distinguishes explicit
   device buffers from managed memory and charges per-launch synchronization
   (the behaviour behind the paper's Fig. 9/10b analysis). *)

open Ir

let alloc = "gpu.alloc"
let dealloc = "gpu.dealloc"
let memcpy = "gpu.memcpy"
let launch = "gpu.launch"
let device_attr = "on_device"

let alloc_op b shape elt =
  Builder.emit1 b alloc (Typesys.Memref (shape, elt))

let dealloc_op b m = Builder.emit0 b dealloc ~operands: [ m ]

(* Copy between host and device buffers (direction implied by operands). *)
let memcpy_op b ~src ~dst = Builder.emit0 b memcpy ~operands: [ src; dst ]

(* Launch a kernel body over an n-dimensional index space given by upper
   bounds.  [synchronous] mirrors the MLIR scf-to-gpu limitation: the host
   blocks at the end of every kernel. *)
let launch_op b ?(synchronous = true) ~ubs body =
  let n = List.length ubs in
  let region =
    Builder.region_with_args (List.init n (fun _ -> Typesys.Index)) body
  in
  Builder.emit0 b launch ~operands: ubs
    ~attrs: [ ("synchronous", Typesys.Bool_attr synchronous) ]
    ~regions: [ region ]

let count_launches m =
  Op.fold (fun n op -> if op.Op.name = launch then n + 1 else n) 0 m

let checks : Verifier.check list =
  [
    Verifier.for_op launch (fun op ->
        if List.length op.Op.regions = 1 then Ok ()
        else Error "gpu.launch needs exactly one region");
    Verifier.for_op memcpy (fun op ->
        match op.Op.operands with
        | [ a; b ] when Typesys.equal_ty (Value.ty a) (Value.ty b) -> Ok ()
        | _ -> Error "gpu.memcpy operands must be same-typed memrefs");
  ]

lib/dialects/gpu.mli: Builder Ir Op Typesys Value Verifier

lib/dialects/scf.mli: Builder Ir Op Typesys Value Verifier

lib/dialects/registry.ml: Arith Func Gpu Ir Memref Omp Scf

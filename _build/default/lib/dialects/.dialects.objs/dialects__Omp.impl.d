lib/dialects/omp.ml: Builder Ir List Op Typesys Verifier

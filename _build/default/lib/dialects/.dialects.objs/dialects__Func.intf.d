lib/dialects/func.mli: Builder Ir Op Typesys Value Verifier

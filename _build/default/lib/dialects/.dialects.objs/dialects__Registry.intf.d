lib/dialects/registry.mli: Ir

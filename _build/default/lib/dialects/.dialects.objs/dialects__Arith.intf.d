lib/dialects/arith.mli: Builder Ir Op Typesys Value Verifier

lib/dialects/memref.ml: Builder Ir List Op Typesys Value Verifier

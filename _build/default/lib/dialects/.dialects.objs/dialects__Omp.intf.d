lib/dialects/omp.mli: Builder Ir Op Verifier

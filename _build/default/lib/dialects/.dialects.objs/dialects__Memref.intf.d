lib/dialects/memref.mli: Builder Ir Typesys Value Verifier

lib/dialects/func.ml: Builder Ir List Op Typesys Value Verifier

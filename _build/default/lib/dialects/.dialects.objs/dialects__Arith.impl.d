lib/dialects/arith.ml: Builder Ir List Op Typesys Value Verifier

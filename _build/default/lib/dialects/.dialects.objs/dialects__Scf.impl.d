lib/dialects/scf.ml: Builder Ir List Op Typesys Value Verifier

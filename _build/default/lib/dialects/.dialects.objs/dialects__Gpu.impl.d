lib/dialects/gpu.ml: Builder Ir List Op Typesys Value Verifier

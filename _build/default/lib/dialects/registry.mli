(** Verifier checks of all generic dialects. *)

val checks : Ir.Verifier.check list

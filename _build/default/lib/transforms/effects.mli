(** Side-effect classification shared by CSE, DCE and LICM. *)

val pure : Ir.Op.t -> bool
(** Neither reads nor writes memory: safe to deduplicate and delete. *)

val hoistable : Ir.Op.t -> bool
(** Speculatable and idempotent, so it may move out of loops even when not
    pure (rank/size queries, allocations) — the paper's loop-invariant
    hoisting of MPI calls and communication buffers. *)

val read_only : Ir.Op.t -> bool

val removable_if_unused : Ir.Op.t -> bool

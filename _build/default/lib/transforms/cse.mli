(** Common sub-expression elimination: pure ops keyed by (name, operands,
    attributes); later duplicates in scope reuse the earlier results.
    Scoping follows region nesting. *)

val run : Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

lib/transforms/canonicalize.mli: Ir

lib/transforms/statistics.mli: Format Ir Map

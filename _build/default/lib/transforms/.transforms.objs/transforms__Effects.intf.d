lib/transforms/effects.mli: Ir

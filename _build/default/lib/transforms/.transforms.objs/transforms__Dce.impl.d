lib/transforms/dce.ml: Effects Ir List Op Pass Value

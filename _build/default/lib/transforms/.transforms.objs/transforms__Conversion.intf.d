lib/transforms/conversion.mli: Builder Ir Op Typesys Value

lib/transforms/conversion.ml: Builder Hashtbl Ir List Op Typesys Value

lib/transforms/licm.mli: Ir

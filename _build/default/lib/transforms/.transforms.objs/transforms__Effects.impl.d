lib/transforms/effects.ml: Ir List Op String

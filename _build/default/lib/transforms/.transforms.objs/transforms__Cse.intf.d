lib/transforms/cse.mli: Ir

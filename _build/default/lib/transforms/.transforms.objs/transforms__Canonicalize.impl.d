lib/transforms/canonicalize.ml: Arith Dce Dialects Float Ir List Op Pass Typesys Value

lib/transforms/licm.ml: Effects Ir List Op Pass Printer Value

lib/transforms/dce.mli: Ir

lib/transforms/statistics.ml: Format Hashtbl Ir List Map Op String Typesys Value

lib/transforms/cse.ml: Effects Ir List Op Pass Typesys Value

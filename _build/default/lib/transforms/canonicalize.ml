(* Canonicalization: constant folding and algebraic identities for the arith
   dialect, as rewrite patterns run to fixpoint by the greedy driver. *)

open Ir
open Dialects

let const_int_op v ty =
  let r = Value.fresh ty in
  ( Op.make Arith.constant ~results: [ r ]
      ~attrs: [ ("value", Typesys.Int_attr (v, ty)) ],
    r )

let const_float_op v ty =
  let r = Value.fresh ty in
  ( Op.make Arith.constant ~results: [ r ]
      ~attrs: [ ("value", Typesys.Float_attr (v, ty)) ],
    r )

(* A pattern needs to see its operands' defining constants; the driver only
   hands us single ops, so we fold pairs where *both* sides are constants by
   looking at an environment the pass maintains: instead, we implement
   folding as a dedicated pass that tracks constants per block, then re-use
   the pattern driver for pure algebraic identities that need no context. *)

let eval_int_binop name a b =
  match name with
  | "arith.addi" -> Some (a + b)
  | "arith.subi" -> Some (a - b)
  | "arith.muli" -> Some (a * b)
  | "arith.divsi" -> if b = 0 then None else Some (a / b)
  | "arith.remsi" -> if b = 0 then None else Some (a mod b)
  | "arith.andi" -> Some (a land b)
  | "arith.ori" -> Some (a lor b)
  | "arith.xori" -> Some (a lxor b)
  | _ -> None

let eval_float_binop name a b =
  match name with
  | "arith.addf" -> Some (a +. b)
  | "arith.subf" -> Some (a -. b)
  | "arith.mulf" -> Some (a *. b)
  | "arith.divf" -> Some (a /. b)
  | "arith.maximumf" -> Some (Float.max a b)
  | "arith.minimumf" -> Some (Float.min a b)
  | _ -> None

let eval_cmp pred a b =
  let open Arith in
  match pred with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* Constant propagation + folding over a block, tracking the defining
   constant of every value in scope (constants from enclosing blocks are
   visible in nested regions). *)

type const_value = Cint of int | Cfloat of float

let rec fold_block env (b : Op.block) : Op.block =
  let env = ref env in
  let subst = ref Value.Map.empty in
  let rev_ops =
    List.fold_left
      (fun acc op ->
        let op = Op.substitute !subst op in
        let op =
          if op.Op.regions = [] then op
          else
            {
              op with
              Op.regions =
                List.map
                  (fun (r : Op.region) ->
                    { Op.blocks = List.map (fold_block !env) r.Op.blocks })
                  op.Op.regions;
            }
        in
        let lookup v = Value.Map.find_opt v !env in
        let record_const r c = env := Value.Map.add r c !env in
        (* Try to fold this op to a constant. *)
        let folded =
          match (op.Op.name, op.Op.operands, op.Op.results) with
          | "arith.constant", _, [ r ] ->
              (match Op.attr op "value" with
              | Some (Typesys.Int_attr (v, _)) -> record_const r (Cint v)
              | Some (Typesys.Float_attr (v, _)) -> record_const r (Cfloat v)
              | _ -> ());
              None
          | name, [ a; b ], [ r ] when Arith.is_int_binop name -> (
              match (lookup a, lookup b) with
              | Some (Cint va), Some (Cint vb) -> (
                  match eval_int_binop name va vb with
                  | Some v ->
                      let cop, nr = const_int_op v (Value.ty r) in
                      Some (cop, r, nr, Cint v)
                  | None -> None)
              | _ -> None)
          | name, [ a; b ], [ r ] when Arith.is_float_binop name -> (
              match (lookup a, lookup b) with
              | Some (Cfloat va), Some (Cfloat vb) -> (
                  match eval_float_binop name va vb with
                  | Some v ->
                      let cop, nr = const_float_op v (Value.ty r) in
                      Some (cop, r, nr, Cfloat v)
                  | None -> None)
              | _ -> None)
          | "arith.negf", [ a ], [ r ] -> (
              match lookup a with
              | Some (Cfloat va) ->
                  let cop, nr = const_float_op (-.va) (Value.ty r) in
                  Some (cop, r, nr, Cfloat (-.va))
              | _ -> None)
          | "arith.cmpi", [ a; b ], [ r ] -> (
              match (lookup a, lookup b) with
              | Some (Cint va), Some (Cint vb) ->
                  let pred =
                    Arith.predicate_of_string
                      (Op.string_attr_exn op "predicate")
                  in
                  let v = if eval_cmp pred va vb then 1 else 0 in
                  let cop, nr = const_int_op v Typesys.i1 in
                  Some (cop, r, nr, Cint v)
              | _ -> None)
          | "arith.index_cast", [ a ], [ r ] -> (
              match lookup a with
              | Some (Cint va) ->
                  let cop, nr = const_int_op va (Value.ty r) in
                  Some (cop, r, nr, Cint va)
              | _ -> None)
          | "arith.sitofp", [ a ], [ r ] -> (
              match lookup a with
              | Some (Cint va) ->
                  let v = float_of_int va in
                  let cop, nr = const_float_op v (Value.ty r) in
                  Some (cop, r, nr, Cfloat v)
              | _ -> None)
          | _ -> None
        in
        match folded with
        | Some (cop, old_r, new_r, cv) ->
            subst := Value.Map.add old_r new_r !subst;
            record_const new_r cv;
            cop :: acc
        | None -> (
            (* Algebraic identities with one constant side. *)
            let identity =
              match (op.Op.name, op.Op.operands, op.Op.results) with
              | "arith.addf", [ a; b ], [ r ] -> (
                  match (lookup a, lookup b) with
                  | _, Some (Cfloat 0.) -> Some (r, a)
                  | Some (Cfloat 0.), _ -> Some (r, b)
                  | _ -> None)
              | "arith.subf", [ a; b ], [ r ] -> (
                  match lookup b with
                  | Some (Cfloat 0.) -> Some (r, a)
                  | _ -> None)
              | "arith.mulf", [ a; b ], [ r ] -> (
                  match (lookup a, lookup b) with
                  | _, Some (Cfloat 1.) -> Some (r, a)
                  | Some (Cfloat 1.), _ -> Some (r, b)
                  | _ -> None)
              | "arith.divf", [ a; b ], [ r ] -> (
                  match lookup b with
                  | Some (Cfloat 1.) -> Some (r, a)
                  | _ -> None)
              | "arith.addi", [ a; b ], [ r ] -> (
                  match (lookup a, lookup b) with
                  | _, Some (Cint 0) -> Some (r, a)
                  | Some (Cint 0), _ -> Some (r, b)
                  | _ -> None)
              | "arith.subi", [ a; b ], [ r ] -> (
                  match lookup b with
                  | Some (Cint 0) -> Some (r, a)
                  | _ -> None)
              | "arith.muli", [ a; b ], [ r ] -> (
                  match (lookup a, lookup b) with
                  | _, Some (Cint 1) -> Some (r, a)
                  | Some (Cint 1), _ -> Some (r, b)
                  | _ -> None)
              | "arith.select", [ c; t; f ], [ r ] -> (
                  match lookup c with
                  | Some (Cint 1) -> Some (r, t)
                  | Some (Cint 0) -> Some (r, f)
                  | _ -> None)
              | _ -> None
            in
            match identity with
            | Some (old_r, replacement) ->
                subst := Value.Map.add old_r replacement !subst;
                (match lookup replacement with
                | Some c -> record_const old_r c
                | None -> ());
                acc
            | None -> op :: acc))
      [] b.Op.ops
  in
  { b with Op.ops = List.rev rev_ops }

let run (m : Op.t) : Op.t =
  let m' =
    {
      m with
      Op.regions =
        List.map
          (fun (r : Op.region) ->
            { Op.blocks = List.map (fold_block Value.Map.empty) r.Op.blocks })
          m.Op.regions;
    }
  in
  (* Folding leaves behind unused constants; clean them up. *)
  Dce.run m'

let pass = Pass.make "canonicalize" run

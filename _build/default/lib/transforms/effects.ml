(* Side-effect classification shared by CSE, DCE and LICM. *)

open Ir

(* Ops that neither read nor write memory: safe to deduplicate and to delete
   when unused. *)
let pure (op : Op.t) =
  op.Op.regions = []
  &&
  let n = op.Op.name in
  let prefix p =
    String.length n >= String.length p && String.sub n 0 (String.length p) = p
  in
  prefix "arith."
  || n = "stencil.access" || n = "stencil.index" || n = "stencil.cast"
  || n = "memref.extract_ptr" || n = "mpi.null_request"

(* Ops that are speculatable and idempotent, so they may be hoisted out of
   loops even though they are not pure: rank/size queries never change after
   init, and allocations may legally be performed earlier (the paper hoists
   loop-invariant MPI calls and communication buffers out of time loops). *)
let hoistable (op : Op.t) =
  pure op
  || List.mem op.Op.name
       [ "mpi.comm_rank"; "mpi.comm_size"; "memref.alloc"; "gpu.alloc" ]

(* Ops that read memory: deletable when unused, but not CSE-able across
   writes (we simply never CSE them). *)
let read_only (op : Op.t) =
  List.mem op.Op.name [ "memref.load"; "mpi.comm_rank"; "mpi.comm_size" ]

(* Deletable when all results are unused. *)
let removable_if_unused (op : Op.t) =
  (pure op || read_only op || op.Op.name = "stencil.load")
  && op.Op.results <> []

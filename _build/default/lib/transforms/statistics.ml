(* IR statistics used by benchmarks and the analytic machine models: the
   kernel features (flops per point, memory accesses per point, parallel
   regions, ...) are measured from the compiled IR rather than hard-coded. *)

open Ir

module String_map = Map.Make (String)

let op_histogram (m : Op.t) : int String_map.t =
  Op.fold
    (fun acc op ->
      let n = try String_map.find op.Op.name acc with Not_found -> 0 in
      String_map.add op.Op.name (n + 1) acc)
    String_map.empty m

let count (m : Op.t) name =
  Op.fold (fun n op -> if op.Op.name = name then n + 1 else n) 0 m

let float_flop_ops =
  [
    "arith.addf";
    "arith.subf";
    "arith.mulf";
    "arith.divf";
    "arith.negf";
    "arith.maximumf";
    "arith.minimumf";
  ]

(* Floating point operations appearing in [op]'s own body (including nested
   regions). *)
let flops_in (op : Op.t) =
  Op.fold
    (fun n o -> if List.mem o.Op.name float_flop_ops then n + 1 else n)
    0 op

(* Memory reads/writes appearing in [op]. *)
let loads_in (op : Op.t) =
  Op.fold
    (fun n o ->
      if o.Op.name = "memref.load" || o.Op.name = "stencil.access" then n + 1
      else n)
    0 op

let stores_in (op : Op.t) =
  Op.fold
    (fun n o ->
      if o.Op.name = "memref.store" || o.Op.name = "stencil.return" then
        n + 1
      else n)
    0 op

(* Distinct access offsets of stencil.access / offset memref.load ops in a
   kernel body: the cache model uses distinct-plane counts rather than raw
   load counts because column-contiguous accesses hit in cache. *)
let distinct_access_offsets (op : Op.t) =
  let tbl = Hashtbl.create 16 in
  Op.walk
    (fun o ->
      if o.Op.name = "stencil.access" then
        match Op.attr o "offset" with
        | Some (Typesys.Dense_attr offs) ->
            Hashtbl.replace tbl
              (List.map Value.id o.Op.operands, offs)
              ()
        | _ -> ())
    op;
  Hashtbl.length tbl

let pp_histogram fmt m =
  String_map.iter
    (fun name n -> Format.fprintf fmt "%6d  %s@." n name)
    (op_histogram m)

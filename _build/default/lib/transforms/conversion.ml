(* A generic dialect-conversion driver in the style of MLIR's conversion
   framework: a type converter rewrites the types of every value, and op
   handlers translate individual ops while unhandled ops are rebuilt
   generically (operands remapped, result/block-argument types converted,
   regions recursed into). *)

open Ir

type ctx = {
  lookup : Value.t -> Value.t;  (* old value -> converted value *)
  bind : Value.t -> Value.t -> unit;  (* record old -> new *)
  fresh_converted : Value.t -> Value.t;  (* fresh value of converted type *)
}

(* A handler returns true when it fully handled the op (emitting whatever
   replacement into the builder and binding the old results). *)
type handler = ctx -> Builder.t -> Op.t -> bool

let convert ~(convert_ty : Typesys.ty -> Typesys.ty) ~(handler : handler)
    (m : Op.t) : Op.t =
  let vmap : (int, Value.t) Hashtbl.t = Hashtbl.create 128 in
  let lookup v =
    match Hashtbl.find_opt vmap (Value.id v) with
    | Some v' -> v'
    | None -> v
  in
  let bind old_v new_v = Hashtbl.replace vmap (Value.id old_v) new_v in
  let fresh_converted v =
    let v' = Value.fresh (convert_ty (Value.ty v)) in
    bind v v';
    v'
  in
  let ctx = { lookup; bind; fresh_converted } in
  let rec rewrite_block (b : Op.block) : Op.block =
    let args = List.map fresh_converted b.Op.args in
    let bld = Builder.create () in
    List.iter
      (fun (op : Op.t) ->
        if not (handler ctx bld op) then begin
          let operands = List.map lookup op.Op.operands in
          let results = List.map fresh_converted op.Op.results in
          let regions =
            List.map
              (fun (r : Op.region) ->
                { Op.blocks = List.map rewrite_block r.Op.blocks })
              op.Op.regions
          in
          (* Keep function signatures in sync with converted types. *)
          let attrs =
            List.map
              (fun (k, a) ->
                match a with
                | Typesys.Type_attr t -> (k, Typesys.Type_attr (conv_deep t))
                | a -> (k, a))
              op.Op.attrs
          in
          Builder.add bld { op with Op.operands; results; regions; attrs }
        end)
      b.Op.ops;
    { Op.args; ops = Builder.ops bld }
  and conv_deep (t : Typesys.ty) : Typesys.ty =
    match t with
    | Typesys.Fn (args, res) ->
        Typesys.Fn (List.map conv_deep args, List.map conv_deep res)
    | t -> convert_ty t
  in
  {
    m with
    Op.regions =
      List.map
        (fun (r : Op.region) ->
          { Op.blocks = List.map rewrite_block r.Op.blocks })
        m.Op.regions;
  }

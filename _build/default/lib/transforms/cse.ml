(* Common sub-expression elimination.

   Pure ops are keyed by (name, operand ids, attributes); a later op with the
   same key in scope is replaced by the earlier results.  Scoping follows
   region nesting, so an expression already available in an enclosing block
   is reused inside nested loop bodies as well. *)

open Ir

type key = string * int list * (string * Typesys.attr) list

let key_of (op : Op.t) : key =
  (op.Op.name, List.map Value.id op.Op.operands, op.Op.attrs)

(* Scopes are an immutable association list from keys to result values, so
   entering a region simply extends the enclosing scope. *)
let rec cse_block scope (b : Op.block) : Op.block =
  let subst = ref Value.Map.empty in
  let scope = ref scope in
  let rev_ops =
    List.fold_left
      (fun acc op ->
        let op = Op.substitute !subst op in
        let op =
          if op.Op.regions = [] then op
          else
            {
              op with
              Op.regions =
                List.map
                  (fun (r : Op.region) ->
                    { Op.blocks = List.map (cse_block !scope) r.Op.blocks })
                  op.Op.regions;
            }
        in
        if Effects.pure op then begin
          let k = key_of op in
          match List.assoc_opt k !scope with
          | Some earlier_results ->
              List.iter2
                (fun old_v new_v ->
                  subst := Value.Map.add old_v new_v !subst)
                op.Op.results earlier_results;
              acc
          | None ->
              scope := (k, op.Op.results) :: !scope;
              op :: acc
        end
        else op :: acc)
      [] b.Op.ops
  in
  { b with Op.ops = List.rev rev_ops }

let run (m : Op.t) : Op.t =
  {
    m with
    Op.regions =
      List.map
        (fun (r : Op.region) ->
          { Op.blocks = List.map (cse_block []) r.Op.blocks })
        m.Op.regions;
  }

let pass = Pass.make "cse" run

(** IR statistics used by benchmarks and the machine models: kernel
    features are measured from the compiled IR rather than hard-coded. *)

module String_map : Map.S with type key = string

val op_histogram : Ir.Op.t -> int String_map.t
val count : Ir.Op.t -> string -> int
val float_flop_ops : string list
val flops_in : Ir.Op.t -> int
val loads_in : Ir.Op.t -> int
val stores_in : Ir.Op.t -> int

val distinct_access_offsets : Ir.Op.t -> int
(** Distinct (input, offset) pairs of stencil accesses in a kernel body. *)

val pp_histogram : Format.formatter -> Ir.Op.t -> unit

(* Dead code elimination: drop side-effect-free ops whose results are never
   used.  Blocks are processed back-to-front so chains of dead ops disappear
   in one pass; the module-level driver iterates to a fixpoint anyway because
   uses may cross region boundaries. *)

open Ir

let rec live_uses (acc : Value.Set.t) (op : Op.t) =
  let acc =
    List.fold_left (fun s v -> Value.Set.add v s) acc op.Op.operands
  in
  List.fold_left
    (fun acc (r : Op.region) ->
      List.fold_left
        (fun acc (b : Op.block) -> List.fold_left live_uses acc b.Op.ops)
        acc r.Op.blocks)
    acc op.Op.regions

let rec dce_block (used_outside : Value.Set.t) (b : Op.block) : Op.block =
  (* Process ops back-to-front: a def is live if used by any later op in
     this block, by anything nested in a later op, or outside the block. *)
  let ops_rev = List.rev b.Op.ops in
  let used = ref used_outside in
  let kept =
    List.fold_left
      (fun kept op ->
        let dead =
          Effects.removable_if_unused op
          && List.for_all
               (fun r -> not (Value.Set.mem r !used))
               op.Op.results
        in
        if dead then kept
        else begin
          used := live_uses !used op;
          let op =
            if op.Op.regions = [] then op
            else
              {
                op with
                Op.regions =
                  List.map
                    (fun (r : Op.region) ->
                      { Op.blocks = List.map (dce_block !used) r.Op.blocks })
                    op.Op.regions;
              }
          in
          op :: kept
        end)
      [] ops_rev
  in
  { b with Op.ops = kept }

let run_once (m : Op.t) : Op.t =
  {
    m with
    Op.regions =
      List.map
        (fun (r : Op.region) ->
          { Op.blocks = List.map (dce_block Value.Set.empty) r.Op.blocks })
        m.Op.regions;
  }

let rec run ?(max_iters = 10) (m : Op.t) : Op.t =
  let m' = run_once m in
  if max_iters <= 1 || Op.count_ops m' = Op.count_ops m then m'
  else run ~max_iters: (max_iters - 1) m'

let pass = Pass.make "dce" (fun m -> run m)

(** Dead code elimination: remove side-effect-free ops whose results are
    never used, iterating to a fixpoint. *)

val run : ?max_iters:int -> Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

(** Canonicalization: constant propagation and folding plus algebraic
    identities (x+0, x*1, select on constants, ...) for the arith dialect,
    with a DCE sweep for the leftover constants. *)

val eval_int_binop : string -> int -> int -> int option
val eval_float_binop : string -> float -> float -> float option

val run : Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

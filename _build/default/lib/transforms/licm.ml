(* Loop-invariant code motion: hoist hoistable ops whose operands are all
   defined outside the loop body in front of the loop.  Applied to scf.for,
   scf.parallel and gpu.launch bodies; the mpi-lowering relies on this to
   hoist rank queries and communication buffers out of time loops. *)

open Ir

let loop_ops = [ "scf.for"; "scf.parallel"; "gpu.launch" ]

let is_loop (op : Op.t) = List.mem op.Op.name loop_ops

(* Hoist from the single-block body of [op]; returns (hoisted, op'). *)
let hoist_from_loop (op : Op.t) : Op.t list * Op.t =
  match op.Op.regions with
  | [ r ] -> (
      match r.Op.blocks with
      | [ body ] ->
          (* Values defined inside the body (block args + op results,
             including nested ones). *)
          let inside = ref Value.Set.empty in
          List.iter
            (fun v -> inside := Value.Set.add v !inside)
            body.Op.args;
          List.iter
            (fun o ->
              inside := Value.Set.union (Op.defined_values o) !inside)
            body.Op.ops;
          let hoisted = ref [] in
          let rec sweep ops =
            let changed = ref false in
            let remaining =
              List.filter
                (fun o ->
                  let invariant =
                    Effects.hoistable o
                    && List.for_all
                         (fun v -> not (Value.Set.mem v !inside))
                         o.Op.operands
                  in
                  if invariant then begin
                    hoisted := o :: !hoisted;
                    List.iter
                      (fun res -> inside := Value.Set.remove res !inside)
                      o.Op.results;
                    changed := true;
                    false
                  end
                  else true)
                ops
            in
            if !changed then sweep remaining else remaining
          in
          let remaining = sweep body.Op.ops in
          let op' =
            {
              op with
              Op.regions =
                [ { Op.blocks = [ { body with Op.ops = remaining } ] } ];
            }
          in
          (List.rev !hoisted, op')
      | _ -> ([], op))
  | _ -> ([], op)

let rec licm_block (b : Op.block) : Op.block =
  let rev_ops =
    List.fold_left
      (fun acc op ->
        (* Recurse first so inner loops bubble their invariants up one
           level per pass application. *)
        let op =
          if op.Op.regions = [] then op
          else
            {
              op with
              Op.regions =
                List.map
                  (fun (r : Op.region) ->
                    { Op.blocks = List.map licm_block r.Op.blocks })
                  op.Op.regions;
            }
        in
        if is_loop op then begin
          let hoisted, op' = hoist_from_loop op in
          op' :: List.rev_append hoisted acc
        end
        else op :: acc)
      [] b.Op.ops
  in
  { b with Op.ops = List.rev rev_ops }

let run_once (m : Op.t) : Op.t =
  {
    m with
    Op.regions =
      List.map
        (fun (r : Op.region) ->
          { Op.blocks = List.map licm_block r.Op.blocks })
        m.Op.regions;
  }

(* Iterate so invariants escape multiply-nested loops completely. *)
let run (m : Op.t) : Op.t =
  let rec go n m =
    if n = 0 then m
    else begin
      let m' = run_once m in
      if Printer.module_to_string m' = Printer.module_to_string m then m'
      else go (n - 1) m'
    end
  in
  go 8 m

let pass = Pass.make "loop-invariant-code-motion" run

(** First-order CPU node performance model: a roofline (compute vs memory
    bandwidth) plus a fork/join cost per parallel region — the mechanism
    behind the paper's tracer-advection findings (fig. 10a). *)

type spec = {
  name : string;
  cores : int;
  freq_ghz : float;
  sp_flops_per_cycle_core : float;
      (** achievable stencil flop rate per core per cycle *)
  mem_bw_gbs : float;
  numa_regions : int;
  barrier_us : float;  (** fork/join cost of one parallel region *)
}

val archer2_node : spec
(** A dual AMD EPYC 7742 ARCHER2 node. *)

(** Compiler-pipeline efficiency knobs: how well generated code uses the
    machine (the quantities the paper attributes fig. 7's differences to). *)
type code_quality = {
  vec_efficiency : float;
  flop_factor : float;  (** executed / naive flops (CSE, factorization) *)
  bw_efficiency : float;
}

val xdsl_cpu_quality : code_quality
(** The shared stack: weaker vectorization of the lowered IR, good
    streaming from the tiled lowering. *)

val devito_cpu_quality : flop_factor:float -> code_quality
(** Native Devito: aggressive flop reduction and SIMD. *)

val cray_quality : code_quality
val gnu_quality : code_quality

val sweep_time :
  spec -> code_quality -> Features.t -> points:float -> threads:int -> float
(** Seconds to sweep [points] once (roofline). *)

val step_time :
  spec -> code_quality -> Features.t -> points:float -> threads:int -> float
(** One timestep including per-region fork/join. *)

val throughput :
  spec -> code_quality -> Features.t -> points:float -> threads:int -> float
(** GPts/s. *)

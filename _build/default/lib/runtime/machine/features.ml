(* Kernel features measured from compiled IR.  The analytic machine models
   consume these rather than hard-coded workload tables, so a change to the
   compiler (e.g. better CSE, a different lowering) shows up in the modeled
   performance. *)

open Ir

type t = {
  flops_per_pt : float;  (* floating-point ops per grid point per step *)
  reads_per_pt : float;  (* access terms per point (register/cache hits) *)
  unique_bytes_per_pt : float;  (* streaming memory traffic per point *)
  stencil_regions : int;  (* applies -> parallel regions per timestep *)
  points_per_step : float;  (* grid points updated per timestep *)
  elt_bytes : int;
  radius : int;  (* max halo extent, for communication volume *)
}

(* Extract features from a stencil-level module: each stencil.apply is one
   kernel region; flops and accesses are counted in its body; streaming
   traffic is one read per distinct input field plus a write(+allocate) per
   output. *)
let of_stencil_module ?(elt_bytes = 4) (m : Op.t) : t =
  let flops = ref 0 and reads = ref 0 and regions = ref 0 in
  let unique_streams = ref 0. and points = ref 0. and radius = ref 0 in
  Op.walk
    (fun op ->
      if op.Op.name = "stencil.apply" then begin
        incr regions;
        flops := !flops + Transforms.Statistics.flops_in op;
        reads := !reads + Transforms.Statistics.distinct_access_offsets op;
        (* Inputs are streamed once per sweep, outputs written + allocated;
           cross-plane reuse is imperfect in practice, growing with the
           number of dimensions (TLB/NUMA effects), so input traffic is
           amplified by the rank. *)
        let rank_amp =
          match Typesys.rank_of (Value.ty (List.hd op.Op.results)) with
          | Some r -> float_of_int (max 1 r)
          | None -> 1.
        in
        unique_streams :=
          !unique_streams
          +. (rank_amp *. float_of_int (List.length op.Op.operands))
          +. (2. *. float_of_int (List.length op.Op.results));
        (match Typesys.bounds_of (Value.ty (List.hd op.Op.results)) with
        | Some bs ->
            points :=
              !points
              +. float_of_int
                   (List.fold_left
                      (fun acc b -> acc * Typesys.bound_size b)
                      1 bs)
        | None -> ());
        let rank =
          match Typesys.rank_of (Value.ty (List.hd op.Op.results)) with
          | Some r -> r
          | None -> 0
        in
        Array.iter
          (fun (n, p) -> radius := max !radius (max (-n) p))
          (Core.Stencil.combined_halo op ~rank)
      end)
    m;
  let regions_f = float_of_int (max 1 !regions) in
  (* Normalize per point of one region sweep: averages over regions. *)
  let avg_points = !points /. regions_f in
  {
    flops_per_pt = float_of_int !flops /. regions_f;
    reads_per_pt = float_of_int !reads /. regions_f;
    unique_bytes_per_pt =
      !unique_streams /. regions_f *. float_of_int elt_bytes;
    stencil_regions = !regions;
    points_per_step = avg_points *. regions_f;
    elt_bytes;
    radius = !radius;
  }

(* Override the per-step grid size (e.g. to model a problem size larger
   than what was compiled for functional validation). *)
let with_points f points = { f with points_per_step = points }

let pp fmt f =
  Format.fprintf fmt
    "flops/pt=%.1f reads/pt=%.1f bytes/pt=%.1f regions=%d points=%.3g r=%d"
    f.flops_per_pt f.reads_per_pt f.unique_bytes_per_pt f.stencil_regions
    f.points_per_step f.radius

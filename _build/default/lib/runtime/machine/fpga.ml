(* First-order FPGA model (AMD Xilinx Alveo U280 substitute) for Table 1.

   The model reads the compiled kernel's structure:

   - *initial* kernels (Von Neumann form): every stencil operand read goes
     to external DDR with limited memory-level parallelism and the loops
     are not pipelined, so a cell costs (total reads over all stencil
     regions) * effective-DDR-latency cycles;

   - *optimized* kernels (dataflow + shift buffer, II=1): cells flow
     through the pipelined dataflow at one per cycle; throughput is limited
     by the external streams contending for the DDR channels.  Intermediate
     values travel through on-chip streams, so only the kernel's primary
     inputs and final output touch DDR. *)

type spec = {
  name : string;
  clock_mhz : float;
  ddr_latency_cycles : float;
      (* effective external read latency after memory-level parallelism *)
  ddr_channels : int;
}

let u280 =
  {
    name = "Alveo U280";
    clock_mhz = 300.;
    ddr_latency_cycles = 12.;
    ddr_channels = 2;
  }

(* Structure of a compiled FPGA kernel, read off the hls-lowered module plus
   the kernel's external dataflow boundary. *)
type kernel_shape = {
  optimized : bool;
  stages : int;  (* dataflow stages (optimized mode) *)
  total_reads_per_pt : float;  (* stencil reads per point over all regions *)
  external_streams : int;  (* DDR streams of the fused dataflow *)
}

let shape_of_module (m : Ir.Op.t) ~(f : Features.t)
    ?(external_streams = 0) () : kernel_shape =
  let optimized = Core.Hls.has_shift_buffer m in
  let stages = max 1 (Core.Hls.count_stages m) in
  let external_streams =
    if external_streams > 0 then external_streams
    else
      (* Fall back to counting the read/write stages of the module. *)
      max 1
        (Ir.Op.fold
           (fun acc op ->
             if op.Ir.Op.name = Core.Hls.stage then
               match Ir.Op.attr op "stage_name" with
               | Some (Ir.Typesys.String_attr s)
                 when String.length s >= 4
                      && (String.sub s 0 4 = "read"
                         || String.sub s 0 4 = "writ") ->
                   acc + 1
               | _ -> acc
             else acc)
           0 m)
  in
  {
    optimized;
    stages;
    total_reads_per_pt =
      f.Features.reads_per_pt *. float_of_int f.Features.stencil_regions;
    external_streams;
  }

let step_time (spec : spec) (shape : kernel_shape) ~(points : float) : float
    =
  let clock = spec.clock_mhz *. 1e6 in
  if shape.optimized then begin
    (* One cell per cycle per pipeline; external streams share channels. *)
    let stream_pressure =
      Float.max 1.
        (float_of_int shape.external_streams
        /. float_of_int spec.ddr_channels)
    in
    let fill = float_of_int (shape.stages * 200) in
    ((points *. stream_pressure) +. fill) /. clock
  end
  else begin
    (* Unpipelined external reads dominate. *)
    let cycles_per_cell =
      shape.total_reads_per_pt *. spec.ddr_latency_cycles
    in
    points *. cycles_per_cell /. clock
  end

let throughput (spec : spec) (shape : kernel_shape) ~(points : float) : float
    =
  points /. step_time spec shape ~points /. 1e9

(* First-order interconnect model (alpha-beta with per-message overhead):
   the Slingshot substitute for the strong-scaling figures.  Message counts
   and volumes are supplied by the compiler output — either computed from
   the dmp.swap exchange declarations or measured from mpi_sim traffic. *)

type spec = {
  name : string;
  latency_us : float;  (* per-message latency (alpha) *)
  bw_gbs : float;  (* per-NIC bandwidth (1/beta) *)
  per_msg_cpu_us : float;  (* host-side overhead per message *)
}

let slingshot =
  { name = "HPE Slingshot"; latency_us = 1.7; bw_gbs = 25.; per_msg_cpu_us = 0.4 }

(* One rank's halo exchange schedule per timestep.  [host_us_per_msg] is
   the host-side cost per message (packing/unpacking and MPI progress):
   the shared stack's generated pack loops are plain scalar loops, while
   native Devito uses optimized MPI-derived datatypes — this asymmetry is
   part of why Devito scales more robustly (fig. 8). *)
type schedule = {
  messages : int;  (* sends posted by this rank per step *)
  bytes : float;  (* bytes sent by this rank per step *)
  overlap : bool;  (* communication/computation overlap *)
  host_us_per_msg : float;
}

(* Host-side per-message cost of the shared stack's scalar pack loops vs
   Devito's optimized derived-datatype path. *)
let xdsl_host_us_per_msg = 12.
let devito_host_us_per_msg = 2.

(* Schedule derived from the exchange declarations of the compiled dmp
   swaps: each exchange is one message of size volume * elt_bytes (counted
   per swap per step). *)
let schedule_of_exchanges ~(exchanges : Ir.Typesys.exchange list)
    ~(elt_bytes : int) ~(overlap : bool) : schedule =
  {
    messages = List.length exchanges;
    bytes =
      float_of_int (Core.Decomposition.exchange_volume exchanges)
      *. float_of_int elt_bytes;
    overlap;
    host_us_per_msg = xdsl_host_us_per_msg;
  }

(* Wire time: latency plus serialization. *)
let wire_time (spec : spec) (s : schedule) : float =
  (float_of_int s.messages *. (spec.latency_us +. spec.per_msg_cpu_us) *. 1e-6)
  +. (s.bytes /. (spec.bw_gbs *. 1e9))

(* Host time: packing/unpacking, never hidden by overlap. *)
let host_time (s : schedule) : float =
  float_of_int s.messages *. s.host_us_per_msg *. 1e-6

let comm_time (spec : spec) (s : schedule) : float =
  wire_time spec s +. host_time s

(* Combine one step's compute and communication: overlap hides most of the
   wire time behind compute but never the host-side costs. *)
let step_time (spec : spec) ~(compute : float) (s : schedule) : float =
  let wire = wire_time spec s in
  let host = host_time s in
  if s.overlap then compute +. host +. (0.10 *. wire)
  else compute +. host +. wire

(** First-order GPU model (NVIDIA V100 substitute): roofline over device
    bandwidth and SP peak, plus per-kernel launch and synchronization
    overhead.  Models the paper's fig. 9/10b mechanisms: synchronous
    per-kernel launches in the MLIR lowering, managed-memory page faults in
    OpenACC baselines, explicit device allocation in the xDSL path. *)

type spec = {
  name : string;
  peak_sp_tflops : float;
  mem_bw_gbs : float;
  launch_us : float;
  sync_us : float;
}

val v100 : spec

type code_quality = {
  vec_efficiency : float;
  bw_efficiency : float;
  managed_memory : bool;
  synchronous_launches : bool;
}

val xdsl_cuda_quality : code_quality
val devito_openacc_quality : dims:int -> code_quality
val psyclone_openacc_quality : code_quality
val psyclone_openacc_resident_quality : code_quality

val managed_penalty : float
(** Bandwidth derating under unified-memory page faults. *)

val step_time : spec -> code_quality -> Features.t -> points:float -> float
val throughput : spec -> code_quality -> Features.t -> points:float -> float

(* First-order CPU node performance model: a roofline (compute vs memory
   bandwidth) plus a fork/join cost per parallel region — the term behind
   the paper's tracer-advection observations (one omp.parallel per stencil
   region makes kmp_wait dominate at small problem sizes). *)

type spec = {
  name : string;
  cores : int;
  freq_ghz : float;
  sp_flops_per_cycle_core : float;
      (* peak single-precision flops per cycle per core with full SIMD+FMA *)
  mem_bw_gbs : float;  (* sustained node memory bandwidth *)
  numa_regions : int;
  barrier_us : float;  (* fork/join + barrier cost of one parallel region *)
}

(* A dual AMD EPYC 7742 ARCHER2 node: 128 cores at 2.25 GHz, 8 NUMA
   regions; sustained triad bandwidth around 330 GB/s.  The per-core flop
   rate is the *achievable stencil* rate (vectorized FMA limited by the
   dependency chains and register pressure of FD kernels), not the
   theoretical AVX2 peak. *)
let archer2_node =
  {
    name = "ARCHER2 node (2x EPYC 7742)";
    cores = 128;
    freq_ghz = 2.25;
    sp_flops_per_cycle_core = 4.;
    mem_bw_gbs = 330.;
    numa_regions = 8;
    barrier_us = 20.;
  }

(* Compiler-pipeline efficiency knobs (how well the generated code uses the
   machine), the quantities the paper attributes the fig. 7 differences to. *)
type code_quality = {
  vec_efficiency : float;  (* fraction of peak vector issue achieved *)
  flop_factor : float;  (* flops actually executed / naive flops (CSE etc.) *)
  bw_efficiency : float;  (* achieved fraction of stream bandwidth *)
}

(* xDSL pipeline: weaker vectorization of the lowered LLVM IR (the paper's
   stated reason Devito wins at high arithmetic intensity), but tight loops
   with tiling achieve good bandwidth. *)
let xdsl_cpu_quality =
  { vec_efficiency = 0.35; flop_factor = 1.0; bw_efficiency = 0.88 }

(* Native Devito: aggressive flop reduction (factorization, CSE) and good
   SIMD, slightly lower effective bandwidth due to extra temporaries. *)
let devito_cpu_quality ~flop_factor =
  { vec_efficiency = 0.90; flop_factor; bw_efficiency = 0.80 }

(* Cray Fortran quality for the PSyclone comparison; GNU lags on
   vectorization and streaming. *)
let cray_quality =
  { vec_efficiency = 0.80; flop_factor = 0.95; bw_efficiency = 0.85 }

let gnu_quality =
  { vec_efficiency = 0.30; flop_factor = 1.0; bw_efficiency = 0.55 }

(* Seconds to sweep [points] grid points once. *)
let sweep_time (spec : spec) (q : code_quality) (f : Features.t)
    ~(points : float) ~(threads : int) : float =
  let peak_flops =
    float_of_int threads *. spec.freq_ghz *. 1e9
    *. spec.sp_flops_per_cycle_core *. q.vec_efficiency
  in
  let bw =
    spec.mem_bw_gbs *. 1e9 *. q.bw_efficiency
    *. (float_of_int threads /. float_of_int spec.cores)
    |> Float.min (spec.mem_bw_gbs *. 1e9 *. q.bw_efficiency)
  in
  let flop_time = f.Features.flops_per_pt *. q.flop_factor /. peak_flops in
  let mem_time = f.Features.unique_bytes_per_pt /. bw in
  points *. Float.max flop_time mem_time

(* Seconds for one timestep including per-region fork/join. *)
let step_time (spec : spec) (q : code_quality) (f : Features.t)
    ~(points : float) ~(threads : int) : float =
  let compute = sweep_time spec q f ~points ~threads in
  let barriers =
    float_of_int f.Features.stencil_regions *. spec.barrier_us *. 1e-6
  in
  compute +. barriers

(* Throughput in GPts/s over a full run. *)
let throughput (spec : spec) (q : code_quality) (f : Features.t)
    ~(points : float) ~(threads : int) : float =
  let t = step_time spec q f ~points ~threads in
  points /. t /. 1e9

lib/runtime/machine/features.mli: Format Ir

lib/runtime/machine/fpga.ml: Core Features Float Ir String

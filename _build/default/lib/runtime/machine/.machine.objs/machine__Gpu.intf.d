lib/runtime/machine/gpu.mli: Features

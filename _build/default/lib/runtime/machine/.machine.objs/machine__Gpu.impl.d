lib/runtime/machine/gpu.ml: Features Float

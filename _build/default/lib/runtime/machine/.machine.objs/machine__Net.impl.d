lib/runtime/machine/net.ml: Core Ir List

lib/runtime/machine/cpu.mli: Features

lib/runtime/machine/net.mli: Ir

lib/runtime/machine/fpga.mli: Features Ir

lib/runtime/machine/features.ml: Array Core Format Ir List Op Transforms Typesys Value

lib/runtime/machine/cpu.ml: Features Float

(** Kernel features measured from compiled IR.  The analytic machine models
    consume these rather than hard-coded workload tables, so a change to
    the compiler (better CSE, a different lowering) shows up in the modeled
    performance. *)

type t = {
  flops_per_pt : float;  (** floating-point ops per grid point per region *)
  reads_per_pt : float;  (** distinct access terms per point *)
  unique_bytes_per_pt : float;  (** streaming memory traffic per point *)
  stencil_regions : int;  (** applies, i.e. parallel regions per timestep *)
  points_per_step : float;  (** grid points updated per timestep *)
  elt_bytes : int;
  radius : int;  (** max halo extent *)
}

val of_stencil_module : ?elt_bytes:int -> Ir.Op.t -> t
(** Measure features from a stencil-level module: flops and distinct
    accesses per apply body, streaming traffic (inputs amplified by the
    rank to model imperfect cross-plane reuse, outputs with
    write-allocate), regions and radius. *)

val with_points : t -> float -> t
(** Override the per-step grid size (e.g. the paper's problem sizes). *)

val pp : Format.formatter -> t -> unit

(** First-order interconnect model (alpha-beta with per-message host
    costs): the Slingshot substitute for the strong-scaling figures.
    Message counts and volumes come from the compiled dmp.swap
    declarations or from simulated-MPI traffic. *)

type spec = {
  name : string;
  latency_us : float;
  bw_gbs : float;
  per_msg_cpu_us : float;
}

val slingshot : spec

(** One rank's per-timestep exchange schedule.  [host_us_per_msg] is the
    host-side pack/unpack cost per message — the shared stack's generated
    scalar pack loops vs Devito's optimized derived datatypes (part of why
    Devito scales more robustly in fig. 8). *)
type schedule = {
  messages : int;
  bytes : float;
  overlap : bool;
  host_us_per_msg : float;
}

val xdsl_host_us_per_msg : float
val devito_host_us_per_msg : float

val schedule_of_exchanges :
  exchanges:Ir.Typesys.exchange list ->
  elt_bytes:int ->
  overlap:bool ->
  schedule

val wire_time : spec -> schedule -> float
val host_time : schedule -> float
val comm_time : spec -> schedule -> float

val step_time : spec -> compute:float -> schedule -> float
(** Combine compute and communication; overlap hides most wire time but
    never the host-side costs. *)

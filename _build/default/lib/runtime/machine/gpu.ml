(* First-order GPU model (NVIDIA V100-16GB substitute): roofline over device
   bandwidth and SP peak, plus per-kernel launch and synchronization
   overhead.  The paper's fig. 9/10b effects are modeled explicitly:

   - the MLIR scf-to-gpu lowering launches kernels synchronously, so every
     stencil region pays a host sync that is only amortized by large
     kernels;
   - OpenACC managed memory (PSyclone baseline) suffers unified-memory page
     faults, modeled as a bandwidth derating;
   - xDSL's explicit device allocation avoids the faults. *)

type spec = {
  name : string;
  peak_sp_tflops : float;
  mem_bw_gbs : float;
  launch_us : float;  (* kernel launch cost *)
  sync_us : float;  (* host-side synchronization cost per launch *)
}

let v100 =
  {
    name = "NVIDIA V100-SXM2-16GB";
    peak_sp_tflops = 14.0;
    mem_bw_gbs = 830.;
    launch_us = 4.;
    sync_us = 60.;
  }

type code_quality = {
  vec_efficiency : float;  (* achieved fraction of peak flops *)
  bw_efficiency : float;
  managed_memory : bool;  (* unified memory with page-fault traffic *)
  synchronous_launches : bool;  (* host blocks after every kernel *)
}

let xdsl_cuda_quality =
  {
    vec_efficiency = 0.55;
    bw_efficiency = 0.78;
    managed_memory = false;
    synchronous_launches = true;
  }

(* Devito's OpenACC backend: tiled collapse(2/3) kernels stay close to the
   CUDA path on 2D problems but lose coalescing efficiency on 3D, where
   the paper reports the MLIR CUDA path >= 1.5x ahead. *)
let devito_openacc_quality ~dims =
  {
    vec_efficiency = 0.50;
    bw_efficiency = (if dims >= 3 then 0.48 else 0.72);
    managed_memory = false;
    synchronous_launches = false;
  }

(* PSyclone's OpenACC with managed memory: the PW advection binaries show
   large unified-memory page-fault counts (fig. 10b). *)
let psyclone_openacc_quality =
  {
    vec_efficiency = 0.45;
    bw_efficiency = 0.60;
    managed_memory = true;
    synchronous_launches = false;
  }

(* PSyclone's OpenACC when the working set stays resident (tracer
   advection): no fault traffic, asynchronous queueing across kernels. *)
let psyclone_openacc_resident_quality =
  {
    vec_efficiency = 0.45;
    bw_efficiency = 0.60;
    managed_memory = false;
    synchronous_launches = false;
  }

(* Unified-memory page faults cost a large fraction of achievable
   bandwidth. *)
let managed_penalty = 0.30

let step_time (spec : spec) (q : code_quality) (f : Features.t)
    ~(points : float) : float =
  let peak = spec.peak_sp_tflops *. 1e12 *. q.vec_efficiency in
  let bw =
    spec.mem_bw_gbs *. 1e9 *. q.bw_efficiency
    *. if q.managed_memory then managed_penalty else 1.
  in
  let flop_time = f.Features.flops_per_pt /. peak in
  let mem_time = f.Features.unique_bytes_per_pt /. bw in
  let kernel = points *. Float.max flop_time mem_time in
  let per_launch =
    spec.launch_us +. (if q.synchronous_launches then spec.sync_us else 2.)
  in
  kernel
  +. (float_of_int f.Features.stencil_regions *. per_launch *. 1e-6)

let throughput (spec : spec) (q : code_quality) (f : Features.t)
    ~(points : float) : float =
  points /. step_time spec q f ~points /. 1e9

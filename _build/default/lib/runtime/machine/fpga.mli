(** First-order FPGA model (Alveo U280 substitute) for Table 1: initial
    (Von Neumann) kernels pay unpipelined external reads per stencil
    operand; optimized (dataflow + shift buffer, II=1) kernels process one
    cell per cycle limited by external streams contending for DDR
    channels. *)

type spec = {
  name : string;
  clock_mhz : float;
  ddr_latency_cycles : float;
  ddr_channels : int;
}

val u280 : spec

type kernel_shape = {
  optimized : bool;
  stages : int;
  total_reads_per_pt : float;
  external_streams : int;
}

val shape_of_module :
  Ir.Op.t -> f:Features.t -> ?external_streams:int -> unit -> kernel_shape
(** Read the kernel structure off an hls-lowered module;
    [external_streams] supplies the fused dataflow's DDR boundary
    (primary inputs + final output) when known. *)

val step_time : spec -> kernel_shape -> points:float -> float
val throughput : spec -> kernel_shape -> points:float -> float

(* A simulated MPI runtime: the execution substrate standing in for the
   paper's ARCHER2 deployment of mpich.

   Every rank runs as a fiber (an OCaml effect-handler continuation) under a
   deterministic cooperative round-robin scheduler.  Point-to-point messaging
   uses the eager protocol with FIFO matching per (destination, source, tag);
   collectives are built on top of point-to-point with a reserved tag, as in
   textbook MPI implementations.  The scheduler detects deadlock: if every
   live rank is blocked on an unsatisfiable condition the run aborts with
   [Deadlock].

   The runtime also keeps per-rank traffic counters (messages and bytes);
   the benchmarks feed these measured volumes into the network model. *)

type payload = Floats of float array | Ints of int array

let payload_elems = function
  | Floats a -> Array.length a
  | Ints a -> Array.length a

let copy_payload = function
  | Floats a -> Floats (Array.copy a)
  | Ints a -> Ints (Array.copy a)

exception Deadlock of string
exception Mpi_error of string

let error fmt = Format.kasprintf (fun s -> raise (Mpi_error s)) fmt

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

type comm = {
  size : int;
  (* FIFO mailboxes keyed by (dst, src, tag). *)
  mailboxes : (int * int * int, payload Queue.t) Hashtbl.t;
  per_rank : stats array;
}

type rank_ctx = { rank : int; comm : comm }

type request_kind =
  | Send_req
  | Recv_req of { source : int; tag : int; mutable data : payload option }
  | Null_req

type request = { kind : request_kind; ctx : rank_ctx }

(* Cooperative scheduling primitives. *)

type _ Effect.t += Block : (unit -> bool) -> unit Effect.t

let block_until pred =
  if pred () then () else Effect.perform (Block pred)

let collective_tag = -1

let create_comm size =
  {
    size;
    mailboxes = Hashtbl.create 64;
    per_rank = Array.init size (fun _ -> { messages = 0; bytes = 0; collectives = 0 });
  }

let mailbox comm key =
  match Hashtbl.find_opt comm.mailboxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add comm.mailboxes key q;
      q

let rank ctx = ctx.rank
let size ctx = ctx.comm.size

let check_peer ctx peer what =
  if peer < 0 || peer >= ctx.comm.size then
    error "rank %d: %s peer %d out of range [0, %d)" ctx.rank what peer
      ctx.comm.size

(* Eager send: the payload is copied into the destination mailbox and the
   operation completes immediately. *)
let post_send ctx ~dest ~tag ?(bytes = -1) payload =
  check_peer ctx dest "send to";
  let q = mailbox ctx.comm (dest, ctx.rank, tag) in
  Queue.push (copy_payload payload) q;
  let s = ctx.comm.per_rank.(ctx.rank) in
  s.messages <- s.messages + 1;
  s.bytes <-
    s.bytes + if bytes >= 0 then bytes else 8 * payload_elems payload

let isend ctx ~dest ~tag ?bytes payload =
  post_send ctx ~dest ~tag ?bytes payload;
  { kind = Send_req; ctx }

let try_match ctx ~source ~tag =
  let q = mailbox ctx.comm (ctx.rank, source, tag) in
  if Queue.is_empty q then None else Some (Queue.pop q)

let irecv ctx ~source ~tag =
  check_peer ctx source "receive from";
  { kind = Recv_req { source; tag; data = None }; ctx }

let request_complete (r : request) =
  match r.kind with
  | Send_req | Null_req -> true
  | Recv_req rr -> (
      match rr.data with
      | Some _ -> true
      | None -> (
          match try_match r.ctx ~source: rr.source ~tag: rr.tag with
          | Some p ->
              rr.data <- Some p;
              true
          | None -> false))

let null_request ctx = { kind = Null_req; ctx }

let test (r : request) = request_complete r

let wait (r : request) : payload option =
  block_until (fun () -> request_complete r);
  match r.kind with
  | Recv_req rr -> rr.data
  | Send_req | Null_req -> None

let waitall (rs : request list) : unit =
  block_until (fun () -> List.for_all request_complete rs);
  List.iter (fun r -> ignore (wait r)) rs

let send ctx ~dest ~tag ?bytes payload =
  ignore (isend ctx ~dest ~tag ?bytes payload)

let recv ctx ~source ~tag : payload =
  let r = irecv ctx ~source ~tag in
  match wait r with
  | Some p -> p
  | None -> error "recv completed without payload"

(* Collectives, built over point-to-point with the reserved tag.  FIFO
   matching per (dst, src, tag) keeps consecutive collectives ordered. *)

let note_collective ctx =
  let s = ctx.comm.per_rank.(ctx.rank) in
  s.collectives <- s.collectives + 1

let bcast ctx ~root (payload : payload) : payload =
  note_collective ctx;
  if ctx.rank = root then begin
    for dest = 0 to ctx.comm.size - 1 do
      if dest <> root then send ctx ~dest ~tag: collective_tag payload
    done;
    payload
  end
  else recv ctx ~source: root ~tag: collective_tag

let combine op a b =
  match (a, b) with
  | Floats x, Floats y ->
      Floats
        (Array.mapi
           (fun i v ->
             match op with
             | `Sum -> v +. y.(i)
             | `Max -> Float.max v y.(i)
             | `Min -> Float.min v y.(i))
           x)
  | Ints x, Ints y ->
      Ints
        (Array.mapi
           (fun i v ->
             match op with
             | `Sum -> v + y.(i)
             | `Max -> max v y.(i)
             | `Min -> min v y.(i))
           x)
  | _ -> error "reduce: mixed payload kinds"

let reduce ctx ~root op (payload : payload) : payload option =
  note_collective ctx;
  if ctx.rank = root then begin
    let acc = ref (copy_payload payload) in
    for source = 0 to ctx.comm.size - 1 do
      if source <> root then
        acc := combine op !acc (recv ctx ~source ~tag: collective_tag)
    done;
    Some !acc
  end
  else begin
    send ctx ~dest: root ~tag: collective_tag payload;
    None
  end

let allreduce ctx op (payload : payload) : payload =
  match reduce ctx ~root: 0 op payload with
  | Some combined -> bcast ctx ~root: 0 combined
  | None -> bcast ctx ~root: 0 payload

let gather ctx ~root (payload : payload) : payload list option =
  note_collective ctx;
  if ctx.rank = root then begin
    let parts =
      List.init ctx.comm.size (fun source ->
          if source = root then copy_payload payload
          else recv ctx ~source ~tag: collective_tag)
    in
    Some parts
  end
  else begin
    send ctx ~dest: root ~tag: collective_tag payload;
    None
  end

let barrier ctx =
  ignore (allreduce ctx `Sum (Ints [| 0 |]))

(* The scheduler. *)

let run ~ranks (body : rank_ctx -> unit) : comm =
  if ranks <= 0 then invalid_arg "Mpi_sim.run: ranks must be positive";
  let comm = create_comm ranks in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  let blocked : ((unit -> bool) * (unit -> unit)) list ref = ref [] in
  let failure : exn option ref = ref None in
  let open Effect.Deep in
  let make_fiber r () =
    match_with
      (fun () -> body { rank = r; comm })
      ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> if !failure = None then failure := Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block pred ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    blocked := (pred, fun () -> continue k ()) :: !blocked)
            | _ -> None);
      }
  in
  for r = 0 to ranks - 1 do
    Queue.push (make_fiber r) runnable
  done;
  let rec loop () =
    if !failure <> None then ()
    else if not (Queue.is_empty runnable) then begin
      let fiber = Queue.pop runnable in
      fiber ();
      loop ()
    end
    else if !blocked <> [] then begin
      (* Wake every fiber whose condition is now satisfied. *)
      let ready, still =
        List.partition (fun (pred, _) -> pred ()) !blocked
      in
      if ready = [] then
        raise
          (Deadlock
             (Printf.sprintf "%d rank(s) blocked with no runnable fiber"
                (List.length still)))
      else begin
        blocked := still;
        (* Preserve rough rank order for determinism. *)
        List.iter (fun (_, k) -> Queue.push k runnable) (List.rev ready);
        loop ()
      end
    end
  in
  loop ();
  (match !failure with Some e -> raise e | None -> ());
  comm

(* Aggregate traffic statistics. *)

let total_messages comm =
  Array.fold_left (fun acc s -> acc + s.messages) 0 comm.per_rank

let total_bytes comm =
  Array.fold_left (fun acc s -> acc + s.bytes) 0 comm.per_rank

let rank_stats comm r = comm.per_rank.(r)

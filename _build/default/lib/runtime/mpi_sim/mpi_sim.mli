(** A simulated MPI runtime: the execution substrate standing in for the
    paper's ARCHER2 deployment of mpich.

    Ranks run as effect-handler fibers under a deterministic cooperative
    scheduler; point-to-point messaging uses the eager protocol with FIFO
    matching per (destination, source, tag); collectives are built on
    point-to-point with a reserved tag.  The scheduler detects deadlock,
    and per-rank traffic counters feed the network model. *)

type payload = Floats of float array | Ints of int array

val payload_elems : payload -> int
val copy_payload : payload -> payload

exception Deadlock of string
(** Raised when every live rank is blocked on an unsatisfiable condition. *)

exception Mpi_error of string

type comm
(** A communicator (the world of one run). *)

type rank_ctx
(** One rank's handle onto the communicator. *)

type request

val rank : rank_ctx -> int
val size : rank_ctx -> int

val block_until : (unit -> bool) -> unit
(** Cooperative wait primitive (exposed for runtime extensions). *)

val isend :
  rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> request
(** Eager non-blocking send: the payload is copied out immediately.
    [bytes] overrides the accounted message size. *)

val irecv : rank_ctx -> source:int -> tag:int -> request
val test : request -> bool

val wait : request -> payload option
(** Blocks until completion; returns the payload for receive requests. *)

val waitall : request list -> unit
val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
val recv : rank_ctx -> source:int -> tag:int -> payload
val null_request : rank_ctx -> request

val bcast : rank_ctx -> root:int -> payload -> payload
val reduce : rank_ctx -> root:int -> [ `Sum | `Max | `Min ] -> payload -> payload option
val allreduce : rank_ctx -> [ `Sum | `Max | `Min ] -> payload -> payload
val gather : rank_ctx -> root:int -> payload -> payload list option
val barrier : rank_ctx -> unit

val run : ranks:int -> (rank_ctx -> unit) -> comm
(** Run an SPMD body on [ranks] fibers; returns the communicator for
    traffic inspection.  Deterministic: identical runs interleave
    identically. *)

(** {1 Traffic accounting} *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

val total_messages : comm -> int
val total_bytes : comm -> int
val rank_stats : comm -> int -> stats

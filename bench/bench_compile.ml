(* Measured compile-service performance: the content-addressed artifact
   cache (cold compile vs warm hit) and the sustained request rate of the
   --serve protocol.

   Five quantities per workload:
   - cold_ms: artifact acquisition with an empty cache — the full
     pipeline plus closure compilation (best of reps, each on a cleared
     cache);
   - warm_ms: the same request answered from the cache (best of many
     reps — this is a digest + hash lookup, microseconds);
   - serve_rps: sustained compile requests/second through an in-process
     --serve loop (one server domain, requests over a pipe, all warm
     after the first);
   - concurrent_rps: the socket daemon under contention — 4 client
     domains hammering one Unix-socket daemon with requests over 2
     distinct digests; the invariant measured alongside the rate is
     that each digest compiled exactly once and nothing failed;
   - restart_warm_ms: a "restarted daemon" answering from the on-disk
     artifact store — in-memory cache dropped, artifact restored from
     disk (pass pipeline skipped, only the executor's compile re-run).

   The machine-independent gate quantities are warm_speedup = cold/warm
   and restart_speedup = cold/restart_warm: the artifact layer's reason
   to exist is answering repeated requests without recompiling, and the
   store's is surviving a restart — either ratio collapsing toward 1x
   is a regression no matter the host.  Counters are checked to
   reconcile exactly (requests = hits + misses, one miss per cold
   compile, failed-entry hits counted apart from healthy ones). *)

type row = {
  workload : string;
  cold_ms : float;
  warm_ms : float;
  warm_speedup : float;  (* cold / warm *)
  serve_rps : float;
  serve_requests : int;
  concurrent_rps : float;
  concurrent_ok : bool;  (* 2 digests -> 2 misses, no failures, all ok *)
  restart_warm_ms : float;  (* store restore, pipeline skipped *)
  restart_speedup : float;  (* cold / restart_warm *)
  hits : int;  (* cache hits over this row's measurement *)
  misses : int;  (* cache misses (one per cleared-cache compile) *)
  failed_hits : int;  (* lookups answered by a cached failure *)
  counters_ok : bool;
}

let time_run f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let best ~reps f =
  let b = ref infinity in
  for _ = 1 to reps do
    b := Float.min !b (time_run f)
  done;
  !b

let target ~ranks =
  Core.Pipeline.Distributed_cpu
    {
      ranks;
      strategy = Core.Decomposition.Slice2d;
      mode = Core.Decomposition.Faces;
      tiles = [];
      overlap = true;
    }

(* Serve throughput: a server domain answering from the (warm) artifact
   cache, requests written down a pipe one line at a time, responses read
   back before the next request is issued — the single-client round-trip
   rate, protocol cost included. *)
let serve_requests_per_sec ~requests (m : Ir.Op.t) : float * int =
  let ir_text = Ir.Printer.module_to_string m in
  let payload = Printf.sprintf "compile ir=%d ranks=4\n%s" (String.length ir_text) ir_text in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.Serve.serve ic oc;
        close_in_noerr ic;
        close_out_noerr oc)
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let roundtrip () =
    output_string oc payload;
    flush oc;
    match In_channel.input_line ic with
    | Some line when String.length line >= 2 && String.sub line 0 2 = "ok" ->
        ()
    | Some line -> failwith ("serve error: " ^ line)
    | None -> failwith "serve closed the response pipe"
  in
  (* First request warms the cache (and the server); not measured. *)
  roundtrip ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to requests do
    roundtrip ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  output_string oc "quit\n";
  flush oc;
  (match In_channel.input_line ic with _ -> () | exception _ -> ());
  Domain.join server;
  List.iter Unix.close [ req_w; resp_r ];
  (float_of_int requests /. dt, requests)

(* The socket daemon under contention: [clients] domains connect to one
   Unix-domain daemon and issue [requests] compile requests each,
   alternating between two rank counts — two distinct digests total.
   The promise-per-key cache must collapse all that contention to
   exactly two cold compiles; the rate is the aggregate round-trips per
   second across all clients. *)
let concurrent_socket ~clients ~requests (name, m) : float * bool =
  Service.Artifact.clear ();
  let s0 = Service.Artifact.stats () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stencilc-bench-%d.sock" (Unix.getpid ()))
  in
  let handlers =
    {
      Service.Serve.resolve_demo =
        (fun n -> if n = name then Some m else None);
      run = None;
      scheduler = None;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Service.Socket_server.run ~handlers
          ~on_ready: (fun () -> Atomic.set ready true)
          (Service.Socket_server.Unix_path sock))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let connect () =
    let rec retry n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> fd
      | exception Unix.Unix_error _ when n > 0 ->
          Unix.close fd;
          Unix.sleepf 0.01;
          retry (n - 1)
    in
    retry 100
  in
  let client _ =
    Domain.spawn (fun () ->
        let fd = connect () in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let ok = ref 0 in
        for r = 1 to requests do
          let ranks = if r mod 2 = 0 then 2 else 4 in
          output_string oc
            (Printf.sprintf "compile demo=%s ranks=%d\n" name ranks);
          flush oc;
          match In_channel.input_line ic with
          | Some line when String.length line >= 2 && String.sub line 0 2 = "ok"
            ->
              incr ok
          | Some _ | None -> ()
        done;
        output_string oc "quit\n";
        flush oc;
        (match In_channel.input_line ic with _ -> () | exception _ -> ());
        Unix.close fd;
        !ok)
  in
  let t0 = Unix.gettimeofday () in
  let oks = List.map Domain.join (List.init clients client) in
  let dt = Unix.gettimeofday () -. t0 in
  let fd = connect () in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc "shutdown\n";
  flush oc;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  ignore (Domain.join server : Service.Socket_server.stats);
  let s1 = Service.Artifact.stats () in
  let ok =
    List.for_all (fun n -> n = requests) oks
    && s1.Service.Cache.misses - s0.Service.Cache.misses = 2
    && s1.Service.Cache.failures - s0.Service.Cache.failures = 0
    && s1.Service.Cache.failed_hits - s0.Service.Cache.failed_hits = 0
  in
  (float_of_int (clients * requests) /. dt, ok)

(* The restarted daemon: artifact persisted to a throwaway on-disk
   store, then each rep drops the in-memory cache (what a process
   restart does) and re-acquires — the store path skips the pass
   pipeline and re-runs only the executor's compile. *)
let restart_warm_s ~reps ~executor ~target m : float =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stencilc-bench-store-%d" (Unix.getpid ()))
  in
  let store = Service.Store.create dir in
  Service.Artifact.set_store (Some store);
  Fun.protect
    ~finally: (fun () ->
      Service.Artifact.set_store None;
      List.iter
        (fun d -> Service.Store.remove store ~digest: d)
        (Service.Store.list store);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Service.Artifact.clear ();
      (* Persist once; the flag must confirm a real cold compile. *)
      (match Service.Artifact.get_cached ~executor ~target m with
      | _, `Miss -> ()
      | _, (`Hit | `Store) -> failwith "restart bench: expected a cold miss");
      best ~reps (fun () ->
          Service.Artifact.clear ();
          match Service.Artifact.get_cached ~executor ~target m with
          | _, `Store -> ()
          | _, (`Hit | `Miss) ->
              failwith "restart bench: expected a store restore"))

let run_workload ~reps ~requests (name, m) : row =
  let target = target ~ranks: 4 in
  let executor = Exec_compile.executor in
  Service.Artifact.clear ();
  let s0 = Service.Artifact.stats () in
  (* Cold: every rep recompiles into an empty cache. *)
  let cold_s =
    best ~reps (fun () ->
        Service.Artifact.clear ();
        Service.Artifact.get ~executor ~target m)
  in
  (* Warm: the artifact is resident; reps are cheap, take many. *)
  let warm_reps = 100 * reps in
  ignore (Service.Artifact.get ~executor ~target m);
  let warm_s =
    best ~reps: warm_reps (fun () ->
        Service.Artifact.get ~executor ~target m)
  in
  let s1 = Service.Artifact.stats () in
  let misses = s1.Service.Cache.misses - s0.Service.Cache.misses in
  let hits = s1.Service.Cache.hits - s0.Service.Cache.hits in
  let failed_hits =
    s1.Service.Cache.failed_hits - s0.Service.Cache.failed_hits
  in
  (* Every cleared-cache get is a miss, every other get a hit, and
     nothing in this bench compiles a failing program. *)
  let counters_ok = misses = reps && hits = warm_reps + 1 && failed_hits = 0 in
  let serve_rps, serve_requests = serve_requests_per_sec ~requests m in
  let concurrent_rps, concurrent_ok =
    concurrent_socket ~clients: 4 ~requests: (max 5 (requests / 10)) (name, m)
  in
  let restart_s = restart_warm_s ~reps ~executor ~target m in
  {
    workload = name;
    cold_ms = cold_s *. 1000.;
    warm_ms = warm_s *. 1000.;
    warm_speedup = cold_s /. warm_s;
    serve_rps;
    serve_requests;
    concurrent_rps;
    concurrent_ok;
    restart_warm_ms = restart_s *. 1000.;
    restart_speedup = cold_s /. restart_s;
    hits;
    misses;
    failed_hits;
    counters_ok;
  }

let write_json (rows : row list) =
  let path = Bench_paths.artifact "BENCH_compile.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"compile\",\n  \"entries\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"cold_ms\": %.6f, \"warm_ms\": %.6f, \
         \"warm_speedup\": %.3f, \"serve_rps\": %.1f, \"serve_requests\": \
         %d, \"concurrent_rps\": %.1f, \"concurrent_ok\": %b, \
         \"restart_warm_ms\": %.6f, \"restart_speedup\": %.3f, \"hits\": \
         %d, \"misses\": %d, \"failed_hits\": %d, \"counters_ok\": %b}%s\n"
        r.workload r.cold_ms r.warm_ms r.warm_speedup r.serve_rps
        r.serve_requests r.concurrent_rps r.concurrent_ok r.restart_warm_ms
        r.restart_speedup r.hits r.misses r.failed_hits r.counters_ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  path

let run ?(smoke = false) () =
  Printf.printf "== Measured compile service (artifact cache + --serve) ==\n";
  let grid2 n = [ n; n ] in
  let workloads =
    if smoke then
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 64) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
      ]
    else
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
        ( "wave2d-so4",
          (Workloads.wave ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 4 ())
            .Workloads.module_ );
      ]
  in
  let reps = if smoke then 2 else 5 in
  let requests = if smoke then 50 else 500 in
  Printf.printf "   %-12s %9s %9s %8s %9s %9s %9s %8s %10s\n" "workload"
    "cold_ms" "warm_ms" "speedup" "serve_rps" "conc_rps" "restart" "re_spd"
    "counters";
  let rows =
    List.map
      (fun w ->
        let r = run_workload ~reps ~requests w in
        Printf.printf
          "   %-12s %9.3f %9.5f %7.0fx %9.0f %9.0f %9.3f %7.0fx %10s\n%!"
          r.workload r.cold_ms r.warm_ms r.warm_speedup r.serve_rps
          r.concurrent_rps r.restart_warm_ms r.restart_speedup
          (if r.counters_ok && r.concurrent_ok then "reconcile"
           else "MISMATCH");
        r)
      workloads
  in
  let path = write_json rows in
  Printf.printf "   (machine-readable copy: %s)\n" path;
  let bad =
    List.filter (fun r -> not (r.counters_ok && r.concurrent_ok)) rows
  in
  if bad <> [] then begin
    Printf.printf "   FAIL: %d row(s) with unreconciled cache counters\n"
      (List.length bad);
    exit 1
  end;
  print_newline ()

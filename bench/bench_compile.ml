(* Measured compile-service performance: the content-addressed artifact
   cache (cold compile vs warm hit) and the sustained request rate of the
   --serve protocol.

   Three quantities per workload:
   - cold_ms: artifact acquisition with an empty cache — the full
     pipeline plus closure compilation (best of reps, each on a cleared
     cache);
   - warm_ms: the same request answered from the cache (best of many
     reps — this is a digest + hash lookup, microseconds);
   - serve_rps: sustained compile requests/second through an in-process
     --serve loop (one server domain, requests over a pipe, all warm
     after the first).

   The machine-independent gate quantity is warm_speedup = cold/warm:
   the artifact layer's reason to exist is answering repeated requests
   without recompiling, and a warm hit that costs more than a fraction
   of a cold compile is a regression no matter the host.  Counters are
   checked to reconcile exactly (requests = hits + misses, one miss per
   cold compile). *)

type row = {
  workload : string;
  cold_ms : float;
  warm_ms : float;
  warm_speedup : float;  (* cold / warm *)
  serve_rps : float;
  serve_requests : int;
  hits : int;  (* cache hits over this row's measurement *)
  misses : int;  (* cache misses (one per cleared-cache compile) *)
  counters_ok : bool;
}

let time_run f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let best ~reps f =
  let b = ref infinity in
  for _ = 1 to reps do
    b := Float.min !b (time_run f)
  done;
  !b

let target ~ranks =
  Core.Pipeline.Distributed_cpu
    {
      ranks;
      strategy = Core.Decomposition.Slice2d;
      mode = Core.Decomposition.Faces;
      tiles = [];
      overlap = true;
    }

(* Serve throughput: a server domain answering from the (warm) artifact
   cache, requests written down a pipe one line at a time, responses read
   back before the next request is issued — the single-client round-trip
   rate, protocol cost included. *)
let serve_requests_per_sec ~requests (m : Ir.Op.t) : float * int =
  let ir_text = Ir.Printer.module_to_string m in
  let payload = Printf.sprintf "compile ir=%d ranks=4\n%s" (String.length ir_text) ir_text in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.Serve.serve ic oc;
        close_in_noerr ic;
        close_out_noerr oc)
  in
  let oc = Unix.out_channel_of_descr req_w in
  let ic = Unix.in_channel_of_descr resp_r in
  let roundtrip () =
    output_string oc payload;
    flush oc;
    match In_channel.input_line ic with
    | Some line when String.length line >= 2 && String.sub line 0 2 = "ok" ->
        ()
    | Some line -> failwith ("serve error: " ^ line)
    | None -> failwith "serve closed the response pipe"
  in
  (* First request warms the cache (and the server); not measured. *)
  roundtrip ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to requests do
    roundtrip ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  output_string oc "quit\n";
  flush oc;
  (match In_channel.input_line ic with _ -> () | exception _ -> ());
  Domain.join server;
  List.iter Unix.close [ req_w; resp_r ];
  (float_of_int requests /. dt, requests)

let run_workload ~reps ~requests (name, m) : row =
  let target = target ~ranks: 4 in
  let executor = Exec_compile.executor in
  Service.Artifact.clear ();
  let s0 = Service.Artifact.stats () in
  (* Cold: every rep recompiles into an empty cache. *)
  let cold_s =
    best ~reps (fun () ->
        Service.Artifact.clear ();
        Service.Artifact.get ~executor ~target m)
  in
  (* Warm: the artifact is resident; reps are cheap, take many. *)
  let warm_reps = 100 * reps in
  ignore (Service.Artifact.get ~executor ~target m);
  let warm_s =
    best ~reps: warm_reps (fun () ->
        Service.Artifact.get ~executor ~target m)
  in
  let s1 = Service.Artifact.stats () in
  let misses = s1.Service.Cache.misses - s0.Service.Cache.misses in
  let hits = s1.Service.Cache.hits - s0.Service.Cache.hits in
  (* Every cleared-cache get is a miss, every other get a hit. *)
  let counters_ok = misses = reps && hits = warm_reps + 1 in
  let serve_rps, serve_requests = serve_requests_per_sec ~requests m in
  {
    workload = name;
    cold_ms = cold_s *. 1000.;
    warm_ms = warm_s *. 1000.;
    warm_speedup = cold_s /. warm_s;
    serve_rps;
    serve_requests;
    hits;
    misses;
    counters_ok;
  }

let write_json (rows : row list) =
  let path = Bench_paths.artifact "BENCH_compile.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"compile\",\n  \"entries\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"cold_ms\": %.6f, \"warm_ms\": %.6f, \
         \"warm_speedup\": %.3f, \"serve_rps\": %.1f, \"serve_requests\": \
         %d, \"hits\": %d, \"misses\": %d, \"counters_ok\": %b}%s\n"
        r.workload r.cold_ms r.warm_ms r.warm_speedup r.serve_rps
        r.serve_requests r.hits r.misses r.counters_ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  path

let run ?(smoke = false) () =
  Printf.printf "== Measured compile service (artifact cache + --serve) ==\n";
  let grid2 n = [ n; n ] in
  let workloads =
    if smoke then
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 64) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
      ]
    else
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
        ( "wave2d-so4",
          (Workloads.wave ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 4 ())
            .Workloads.module_ );
      ]
  in
  let reps = if smoke then 2 else 5 in
  let requests = if smoke then 50 else 500 in
  Printf.printf "   %-12s %10s %10s %10s %12s %14s\n" "workload" "cold_ms"
    "warm_ms" "speedup" "serve_rps" "counters";
  let rows =
    List.map
      (fun w ->
        let r = run_workload ~reps ~requests w in
        Printf.printf "   %-12s %10.3f %10.5f %9.0fx %12.0f %14s\n%!"
          r.workload r.cold_ms r.warm_ms r.warm_speedup r.serve_rps
          (if r.counters_ok then "reconcile" else "MISMATCH");
        r)
      workloads
  in
  let path = write_json rows in
  Printf.printf "   (machine-readable copy: %s)\n" path;
  let bad = List.filter (fun r -> not r.counters_ok) rows in
  if bad <> [] then begin
    Printf.printf "   FAIL: %d row(s) with unreconciled cache counters\n"
      (List.length bad);
    exit 1
  end;
  print_newline ()

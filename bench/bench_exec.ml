(* Measured executor comparison: the tree-walking reference interpreter
   vs the ahead-of-time closure compiler (Exec_compile) on the same fully
   lowered modules.

   Two settings per workload:
   - serial: the cpu-sequential lowering of heat/wave, run single-rank on
     each executor with identically initialized inputs; results must agree
     bitwise (max abs diff exactly 0 — both executors perform the same
     float operations in the same order).
   - par4: the full distributed harness (mpi_par, 4 ranks) with each
     executor driving the rank bodies; both runs are compared against the
     interpreted serial oracle and against each other.

   Results are also written to BENCH_exec.json.  The compiled executor is
   the default for stencilc --run-par/--run-sim; this section is the
   regression guard for the speedup that justifies that default. *)

type row = {
  workload : string;
  mode : string;  (* "serial", "par4" or "par4-nooverlap" *)
  overlap : bool option;  (* None for serial rows *)
  interp_s : float;
  compiled_s : float;
  speedup : float;  (* interp / compiled wall *)
  host_cores : int;
  oversubscribed : bool;  (* ranks > host_cores: timing ratios are noise *)
  max_abs_diff : float;  (* compiled vs interpreted results *)
}

(* Fresh identically-initialized zero-based arguments for the lowered
   module: executions mutate their input buffers, so every measured run
   gets its own copy. *)
let make_args field_specs =
  List.map
    (fun spec ->
      Interp.Rtval.Rbuf (Driver.Harness.rebase (Driver.Harness.global_field ~seed: 0 spec)))
    field_specs

let buffers_of rvs =
  List.filter_map
    (function Interp.Rtval.Rbuf b -> Some b | _ -> None)
    rvs

(* All buffers an execution produced or mutated: results plus arguments. *)
let observable args results = buffers_of results @ buffers_of args

let max_diff_all a b =
  if List.length a <> List.length b then infinity
  else List.fold_left2 (fun acc x y -> Float.max acc (Driver.Simulate.max_abs_diff x y)) 0. a b

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Best-of-[reps] wall time; returns the last run's observable buffers. *)
let measure ~reps runf args_of =
  let best = ref infinity and obs = ref [] in
  for _ = 1 to reps do
    let args = args_of () in
    let dt, results = time_run (fun () -> runf args) in
    best := Float.min !best dt;
    obs := observable args results
  done;
  (!best, !obs)

let run_serial ~reps (name, m) : row =
  let func = Driver.Harness.default_func m in
  let specs = Driver.Harness.field_args m func in
  let lowered = Core.Pipeline.compile ~verify: false Core.Pipeline.Cpu_sequential m in
  let prep (e : Interp.Executor.t) = e.Interp.Executor.prepare lowered func in
  let interp_run = prep Interp.Executor.interpreter in
  let compiled_run = prep Exec_compile.executor in
  let interp_s, interp_obs =
    measure ~reps interp_run (fun () -> make_args specs)
  in
  let compiled_s, compiled_obs =
    measure ~reps compiled_run (fun () -> make_args specs)
  in
  {
    workload = name;
    mode = "serial";
    overlap = None;
    interp_s;
    compiled_s;
    speedup = interp_s /. compiled_s;
    host_cores = Bench_par.host_cores ();
    oversubscribed = false;
    max_abs_diff = max_diff_all interp_obs compiled_obs;
  }

(* Best-of-[reps] distributed run: wall times of domain runs on a shared
   host are noisy, so keep the fastest wall clock (correctness fields
   are identical across reps — the runs are deterministic). *)
let best_distributed ~reps run =
  let first = run () in
  let best = ref first in
  for _ = 2 to reps do
    let r = run () in
    if r.Driver.Harness.wall_s < !best.Driver.Harness.wall_s then best := r
  done;
  !best

let run_par ~reps ~ranks ~overlap (name, m) : row =
  let interp =
    best_distributed ~reps (fun () ->
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~ranks
          ~overlap m)
  in
  let compiled =
    best_distributed ~reps (fun () ->
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~ranks
          ~overlap ~executor: Exec_compile.executor m)
  in
  let host_cores = Bench_par.host_cores () in
  {
    workload = name;
    mode =
      Printf.sprintf "par%d%s" ranks (if overlap then "" else "-nooverlap");
    overlap = Some overlap;
    interp_s = interp.Driver.Harness.wall_s;
    compiled_s = compiled.Driver.Harness.wall_s;
    speedup = interp.Driver.Harness.wall_s /. compiled.Driver.Harness.wall_s;
    host_cores;
    oversubscribed = ranks > host_cores;
    max_abs_diff =
      Float.max
        (Driver.Harness.max_result_diff interp compiled)
        (Float.max interp.Driver.Harness.max_diff_vs_serial
           compiled.Driver.Harness.max_diff_vs_serial);
  }

let write_json (rows : row list) =
  let path = Bench_paths.artifact "BENCH_exec.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"exec\",\n  \"entries\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"mode\": %S, \"overlap\": %s, \"interp_s\": \
         %.6f, \"compiled_s\": %.6f, \"speedup\": %.3f, \"host_cores\": %d, \
         \"oversubscribed\": %b, \"max_abs_diff\": %.17g}%s\n"
        r.workload r.mode
        (match r.overlap with
        | Some b -> string_of_bool b
        | None -> "null")
        r.interp_s r.compiled_s r.speedup r.host_cores r.oversubscribed
        r.max_abs_diff
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  path

let run ?(smoke = false) () =
  Printf.printf "== Measured executor comparison (interp vs compiled) ==\n";
  let grid2 n = [ n; n ] in
  let workloads =
    if smoke then
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 64) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
      ]
    else
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
        ( "wave2d-so4",
          (Workloads.wave ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 4 ())
            .Workloads.module_ );
      ]
  in
  let reps = if smoke then 1 else 3 in
  Printf.printf "   %-12s %7s %10s %12s %8s %10s\n" "workload" "mode"
    "interp_s" "compiled_s" "speedup" "diff";
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun r ->
            Printf.printf "   %-12s %7s %10.4f %12.4f %7.1fx %10.2e%s\n%!"
              r.workload r.mode r.interp_s r.compiled_s r.speedup
              r.max_abs_diff
              (if r.max_abs_diff <> 0. then "  MISMATCH" else "");
            r)
          [
            run_serial ~reps w;
            run_par ~reps ~ranks: 4 ~overlap: true w;
            run_par ~reps ~ranks: 4 ~overlap: false w;
          ])
      workloads
  in
  let path = write_json rows in
  Printf.printf "   (machine-readable copy: %s)\n" path;
  let bad = List.filter (fun r -> r.max_abs_diff <> 0.) rows in
  if bad <> [] then begin
    Printf.printf "   FAIL: %d row(s) diverged between executors\n"
      (List.length bad);
    exit 1
  end;
  print_newline ()

(* Measured parallel execution: the fig7 heat and fig10-class wave
   workloads run end-to-end through the full distributed pipeline on BOTH
   substrates — the deterministic fiber simulator (mpi_sim) and the real
   multicore domain runtime (mpi_par) — at increasing rank counts, with
   the compiled executor driving every rank body (the same backend
   stencilc --run-par uses), and with communication/computation overlap
   both on (the default executed pipeline) and off (the ablation).

   Per (workload, ranks, overlap) row we report the serial interpreter
   wall time, each substrate's wall time, the substrate traffic
   (messages/bytes from the mpi_par run), and the cross-substrate max abs
   difference of the gathered results (must be exactly 0: both substrates
   share the collective reduction order, so floating point agrees
   bitwise).

   Speedup honesty: each row records the host's effective core count and
   an [oversubscribed] flag; when [ranks > host_cores] the domains time-
   share cores and serial/par is not a parallel speedup, so the speedup
   column is omitted (null in JSON, "-" in the table).

   Results are also written to BENCH_par.json at the repo root (or
   --out-dir), wherever the binary is run from. *)

type row = {
  workload : string;
  ranks : int;
  overlap : bool;
  grid : string;
  strategy : string;  (* decomposition strategy name, e.g. "2d-slice" *)
  mode : string;  (* exchange neighbor set, "faces" or "diagonals" *)
  tuned : bool;  (* decomposition chosen by the replay auto-tuner *)
  pred_s : float option;  (* tuner's replayed wall-clock prediction *)
  executor : string;
  serial_s : float;
  sim_s : float;
  par_s : float;
  host_cores : int;
  oversubscribed : bool;
  speedup : float option;  (* serial / par wall; None when oversubscribed *)
  messages : int;  (* mpi_par point-to-point messages *)
  bytes : int;  (* mpi_par payload bytes *)
  cross_diff : float;  (* par vs sim gathered results *)
  par_diff : float;  (* par vs serial reference *)
  overlap_efficiency : float option;
      (* hidden-comm / in-flight time from the traced par run *)
  critical_path_s : float;  (* longest happens-before chain, traced run *)
}

(* One cell of the tile x threads matrix: the first workload rerun on the
   par substrate at a fixed rank count while cache tiling and the per-rank
   domain-pool width vary.  Tiling must leave the halo traffic counters
   exactly unchanged (it only reorders the interior loop nest), and with
   enough host cores the threaded runs must not be slower than their
   1-thread counterpart at the same tile. *)
type matrix_row = {
  mx_workload : string;
  mx_ranks : int;
  mx_threads : int;
  mx_tile : string;  (* "off" or e.g. "8x8" *)
  mx_par_s : float;
  mx_oversubscribed : bool;  (* ranks * threads > host cores *)
  mx_speedup_vs_1t : float option;
      (* same-tile 1-thread par_s / this par_s; None on the 1-thread
         baseline rows and when oversubscribed (time-shared cores make
         the ratio meaningless) *)
  mx_messages : int;
  mx_bytes : int;
  mx_par_diff : float;  (* gathered result vs serial reference *)
}

(* Effective host core count, overridable with BENCH_HOST_CORES (useful
   in containers where [Domain.recommended_domain_count] sees a restricted
   cpuset that does not match the machine). *)
let host_cores () =
  match Sys.getenv_opt "BENCH_HOST_CORES" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          prerr_endline
            ("bench par: ignoring invalid BENCH_HOST_CORES=" ^ s);
          Mpi_par.host_cores ())
  | None -> Mpi_par.host_cores ()

(* Best-of-[reps] distributed run: wall times of domain runs on a shared
   host are noisy, so keep the fastest wall clock (correctness fields
   are identical across reps — the runs are deterministic). *)
let best_distributed ~reps run =
  let first = run () in
  let best = ref first in
  for _ = 2 to reps do
    let r = run () in
    if r.Driver.Harness.wall_s < !best.Driver.Harness.wall_s then best := r
  done;
  !best

(* Decomposition for one (workload, ranks, overlap) row: an explicit
   --grid override wins, otherwise the replay auto-tuner picks the
   strategy/mode (scored under the frozen reference network model so
   bench rows are reproducible across hosts), and when the tuner has
   nothing to say we fall back to the pipeline default. *)
let choose_decomposition m ~ranks ~overlap ~grid_override =
  let default =
    (Core.Decomposition.Slice2d, Core.Decomposition.Faces, false, None)
  in
  match grid_override with
  | Some dims when Core.Dmp_to_mpi.product dims = ranks ->
      ( Core.Decomposition.Custom ("cli-grid", fun _ _ -> dims),
        Core.Decomposition.Faces,
        false,
        None )
  | Some _ ->
      (* override does not factor this rank count; fall back loudly *)
      Printf.printf
        "   note: --grid override ignored at ranks=%d (product mismatch)\n"
        ranks;
      default
  | None -> (
      match
        Scale.Tune.tune ~model: Scale.Netmodel.reference
          ~overlaps: [ overlap ] ~ranks m
      with
      | Some choice ->
          let b = choice.Scale.Tune.best in
          ( b.Scale.Tune.c_strategy,
            b.Scale.Tune.c_mode,
            true,
            Some b.Scale.Tune.c_wall_s )
      | None -> default)

let run_workload (name, m) ~reps ~ranks ~overlap ~grid_override :
    row * Analysis.msg_sample list =
  let executor = Exec_compile.executor in
  let strategy, mode, tuned, pred_s =
    choose_decomposition m ~ranks ~overlap ~grid_override
  in
  let sim =
    best_distributed ~reps (fun () ->
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim
          ~strategy ~mode ~ranks ~overlap ~executor m)
  in
  let par =
    best_distributed ~reps (fun () ->
        Driver.Harness.run_distributed ~substrate: Driver.Harness.Par
          ~strategy ~mode ~ranks ~overlap ~executor m)
  in
  (* One extra traced par run for the analytics columns: tracing perturbs
     wall time, so it never contributes to the timing fields above. *)
  let traced =
    Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~strategy
      ~mode ~ranks ~overlap ~executor ~trace: true m
  in
  let analysis = traced.Driver.Harness.analysis in
  let host_cores = host_cores () in
  let oversubscribed = ranks > host_cores in
  ( {
    workload = name;
    ranks;
    overlap;
    grid = String.concat "x" (List.map string_of_int par.Driver.Harness.grid);
    strategy = Core.Decomposition.strategy_name strategy;
    mode =
      (match mode with
      | Core.Decomposition.Faces -> "faces"
      | Core.Decomposition.Diagonals -> "diagonals");
    tuned;
    pred_s;
    executor = par.Driver.Harness.executor_name;
    serial_s = par.Driver.Harness.serial_wall_s;
    sim_s = sim.Driver.Harness.wall_s;
    par_s = par.Driver.Harness.wall_s;
    host_cores;
    oversubscribed;
    speedup =
      (if oversubscribed then None
       else
         Some (par.Driver.Harness.serial_wall_s /. par.Driver.Harness.wall_s));
      messages = par.Driver.Harness.messages;
      bytes = par.Driver.Harness.bytes;
      cross_diff = Driver.Harness.max_result_diff par sim;
      par_diff = par.Driver.Harness.max_diff_vs_serial;
      overlap_efficiency =
        Option.bind analysis (fun a -> a.Analysis.r_overlap.Analysis.ov_efficiency);
      critical_path_s =
        (match analysis with
        | Some a -> a.Analysis.r_critical_path_s
        | None -> 0.);
    },
    match analysis with Some a -> a.Analysis.r_samples | None -> [] )

let tile_label tiles =
  if tiles = [] then "off"
  else String.concat "x" (List.map string_of_int tiles)

(* The matrix always uses the fixed default decomposition (no tuner):
   the point is to isolate the tiling/threading axes, so the halo pattern
   must be identical across every cell. *)
let run_matrix (name, m) ~reps ~ranks ~tiles_list ~threads_list :
    matrix_row list =
  let executor = Exec_compile.executor in
  let cores = host_cores () in
  let raw =
    List.concat_map
      (fun tiles ->
        List.map
          (fun threads ->
            let r =
              best_distributed ~reps (fun () ->
                  Driver.Harness.run_distributed
                    ~substrate: Driver.Harness.Par ~ranks ~tiles
                    ~threads_per_rank: threads ~executor m)
            in
            (tiles, threads, r))
          threads_list)
      tiles_list
  in
  List.map
    (fun (tiles, threads, r) ->
      let base =
        List.find_opt (fun (t, th, _) -> t = tiles && th = 1) raw
      in
      let oversubscribed = ranks * threads > cores in
      let speedup =
        match base with
        | Some (_, _, b)
          when threads > 1 && (not oversubscribed)
               && r.Driver.Harness.wall_s > 0. ->
            Some (b.Driver.Harness.wall_s /. r.Driver.Harness.wall_s)
        | _ -> None
      in
      {
        mx_workload = name;
        mx_ranks = ranks;
        mx_threads = threads;
        mx_tile = tile_label tiles;
        mx_par_s = r.Driver.Harness.wall_s;
        mx_oversubscribed = oversubscribed;
        mx_speedup_vs_1t = speedup;
        mx_messages = r.Driver.Harness.messages;
        mx_bytes = r.Driver.Harness.bytes;
        mx_par_diff = r.Driver.Harness.max_diff_vs_serial;
      })
    raw

let write_json (rows : row list) (matrix : matrix_row list) =
  let path = Bench_paths.artifact "BENCH_par.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"par\",\n  \"host_cores\": %d,\n  \"entries\": [\n"
    (host_cores ());
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"ranks\": %d, \"overlap\": %b, \"grid\": \
         %S, \"strategy\": %S, \"mode\": %S, \"tuned\": %b, \"pred_s\": %s, \
         \"executor\": %S, \"serial_s\": %.6f, \"sim_s\": %.6f, \
         \"par_s\": %.6f, \"host_cores\": %d, \"oversubscribed\": %b, \
         \"speedup\": %s, \"messages\": %d, \"bytes\": %d, \
         \"overlap_efficiency\": %s, \"critical_path_s\": %.6f, \
         \"max_abs_diff_par_vs_sim\": %.17g, \"max_abs_diff_par_vs_serial\": \
         %.17g}%s\n"
        r.workload r.ranks r.overlap r.grid r.strategy r.mode r.tuned
        (match r.pred_s with
        | Some p -> Printf.sprintf "%.6e" p
        | None -> "null")
        r.executor r.serial_s r.sim_s r.par_s r.host_cores r.oversubscribed
        (match r.speedup with
        | Some s -> Printf.sprintf "%.3f" s
        | None -> "null")
        r.messages r.bytes
        (match r.overlap_efficiency with
        | Some e -> Printf.sprintf "%.4f" e
        | None -> "null")
        r.critical_path_s r.cross_diff r.par_diff
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"matrix\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"ranks\": %d, \"threads\": %d, \"tile\": \
         %S, \"par_s\": %.6f, \"oversubscribed\": %b, \
         \"speedup_vs_1thread\": %s, \"messages\": %d, \"bytes\": %d, \
         \"max_abs_diff_par_vs_serial\": %.17g}%s\n"
        r.mx_workload r.mx_ranks r.mx_threads r.mx_tile r.mx_par_s
        r.mx_oversubscribed
        (match r.mx_speedup_vs_1t with
        | Some s -> Printf.sprintf "%.3f" s
        | None -> "null")
        r.mx_messages r.mx_bytes r.mx_par_diff
        (if i = List.length matrix - 1 then "" else ","))
    matrix;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  path

(* Pool every traced run's matched (bytes, latency) message samples and
   fit the alpha-beta postal model the scale-out replay engine consumes
   (bucketed, outlier-robust, constrained nonnegative — see
   Scale.Netmodel).  The JSON is written even when the fit degenerates:
   null coefficients plus a fit_error beat fabricated ones. *)
let write_netmodel ~workloads samples =
  let fit = Scale.Netmodel.fit_alpha_beta samples in
  let path = Bench_paths.artifact "BENCH_netmodel.json" in
  let oc = open_out path in
  output_string oc
    (Scale.Netmodel.fit_json
       ~meta:
         [
           ("substrate", "par");
           ("workloads", String.concat "," workloads);
         ]
       fit);
  close_out oc;
  (fit, path)

let run ?(smoke = false) ?grid_override () =
  Printf.printf "== Measured parallel execution (mpi_par vs mpi_sim) ==\n";
  (match grid_override with
  | Some dims ->
      Printf.printf "   --grid override: %s (tuner bypassed where it fits)\n"
        (String.concat "x" (List.map string_of_int dims))
  | None -> ());
  Printf.printf "   host cores: %d%s\n" (host_cores ())
    (if host_cores () = 1 then
       " (speedup > 1 not expected on a single-core host)"
     else "");
  let grid2 n = [ n; n ] in
  let workloads =
    if smoke then
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 16) ~timesteps: 2 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
      ]
    else
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
        ( "wave2d-so4",
          (Workloads.wave ~grid: (grid2 96) ~timesteps: 8 ~dims: 2 ~so: 4 ())
            .Workloads.module_ );
      ]
  in
  let rank_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  (* Smoke also takes 3 reps: its numbers feed the check.sh regression
     gate, so best-of-1 noise would trip the tolerance band. *)
  let reps = 3 in
  (* The overlap ablation runs at the largest rank count only; all other
     rows measure the default (overlap-on) executed pipeline. *)
  let ablation_ranks = List.fold_left max 1 rank_counts in
  let configs =
    List.concat_map
      (fun ranks ->
        if ranks = ablation_ranks then
          [ (ranks, true); (ranks, false) ]
        else [ (ranks, true) ])
      rank_counts
  in
  Printf.printf
    "   %-12s %5s %3s %6s %9s %10s %10s %10s %8s %9s %9s %7s %9s %10s\n"
    "workload" "ranks" "ov" "grid" "strategy" "serial_s" "sim_s" "par_s"
    "speedup" "msgs" "bytes" "ov_eff" "critpath" "par-sim";
  let all_samples = ref [] in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun (ranks, overlap) ->
            let r, samples =
              run_workload w ~reps ~ranks ~overlap ~grid_override
            in
            all_samples := samples :: !all_samples;
            Printf.printf
              "   %-12s %5d %3s %6s %9s %10.4f %10.4f %10.4f %8s %9d %9d %7s \
               %9.4f %10.2e%s\n\
               %!"
              r.workload r.ranks
              (if r.overlap then "on" else "off")
              r.grid
              (r.strategy ^ if r.tuned then "*" else "")
              r.serial_s r.sim_s r.par_s
              (match r.speedup with
              | Some s -> Printf.sprintf "%7.2fx" s
              | None -> "      -")
              r.messages r.bytes
              (match r.overlap_efficiency with
              | Some e -> Printf.sprintf "%5.1f%%" (100. *. e)
              | None -> "    -")
              r.critical_path_s r.cross_diff
              (if r.cross_diff <> 0. || r.par_diff <> 0. then "  MISMATCH"
               else "");
            r)
          configs)
      workloads
  in
  (* Tile x threads matrix: first workload, fixed rank count, default
     decomposition.  Exercises the per-rank domain pool and cache tiling
     the executed pipeline just gained. *)
  let mx_ranks = if smoke then 2 else 4 in
  let mx_tiles = if smoke then [ []; [ 8; 8 ] ]
                 else [ []; [ 16; 16 ]; [ 32; 32 ] ] in
  let mx_threads = [ 1; 2 ] in
  let matrix =
    run_matrix (List.hd workloads) ~reps ~ranks: mx_ranks
      ~tiles_list: mx_tiles ~threads_list: mx_threads
  in
  Printf.printf
    "   -- tile x threads matrix (%s, ranks=%d, par substrate) --\n"
    (fst (List.hd workloads)) mx_ranks;
  Printf.printf "   %-8s %7s %10s %10s %9s %9s\n" "tile" "threads" "par_s"
    "vs-1thr" "msgs" "bytes";
  List.iter
    (fun r ->
      Printf.printf "   %-8s %7d %10.4f %10s %9d %9d%s\n" r.mx_tile
        r.mx_threads r.mx_par_s
        (match r.mx_speedup_vs_1t with
        | Some s -> Printf.sprintf "%7.2fx" s
        | None -> "      -")
        r.mx_messages r.mx_bytes
        (if r.mx_par_diff <> 0. then "  MISMATCH" else ""))
    matrix;
  (if List.exists (fun r -> r.mx_oversubscribed) matrix then
     Printf.printf
       "   (vs-1thr omitted where ranks x threads > host cores: domains \
        time-share cores there)\n");
  let path = write_json rows matrix in
  Printf.printf "   (machine-readable copy: %s)\n" path;
  (let fit, nm_path =
     write_netmodel
       ~workloads: (List.map fst workloads)
       (List.concat (List.rev !all_samples))
   in
   match fit with
   | Ok f ->
       Printf.printf
         "   network model: alpha=%.3e s, beta=%.3e s/byte, r2=%.3f over %d \
          kept sample(s) in %d bucket(s), %d outlier(s) dropped (%s)\n"
         f.Scale.Netmodel.f_alpha_s f.Scale.Netmodel.f_beta_s_per_byte
         f.Scale.Netmodel.f_r2 f.Scale.Netmodel.f_samples
         (List.length f.Scale.Netmodel.f_buckets)
         f.Scale.Netmodel.f_dropped nm_path
   | Error reason ->
       Printf.printf
         "   network model: fit not identified (%s) — null coefficients \
          written (%s)\n"
         reason nm_path);
  (if List.exists (fun r -> r.tuned) rows then
     Printf.printf
       "   (* = decomposition picked by the replay auto-tuner under the \
        frozen reference model)\n");
  (if List.exists (fun r -> r.oversubscribed) rows then
     Printf.printf
       "   (speedup omitted on rows with ranks > host cores: domains \
        time-share cores there)\n");
  let bad =
    List.filter (fun r -> r.cross_diff <> 0. || r.par_diff <> 0.) rows
  in
  let bad_matrix = List.filter (fun r -> r.mx_par_diff <> 0.) matrix in
  (* Tiling only reorders the interior loop nest; any change in the halo
     traffic counters across tile variants is a decomposition bug. *)
  let traffic_bug =
    List.exists
      (fun r ->
        List.exists
          (fun r' ->
            r'.mx_threads = r.mx_threads
            && (r'.mx_messages <> r.mx_messages || r'.mx_bytes <> r.mx_bytes))
          matrix)
      matrix
  in
  if bad <> [] || bad_matrix <> [] || traffic_bug then begin
    if bad <> [] then
      Printf.printf "   FAIL: %d row(s) diverged between substrates\n"
        (List.length bad);
    if bad_matrix <> [] then
      Printf.printf "   FAIL: %d matrix cell(s) diverged from serial\n"
        (List.length bad_matrix);
    if traffic_bug then
      Printf.printf
        "   FAIL: tiling changed the halo traffic counters\n";
    exit 1
  end;
  print_newline ()

(* Measured parallel execution: the fig7 heat and fig10-class wave
   workloads run end-to-end through the full distributed pipeline on BOTH
   substrates — the deterministic fiber simulator (mpi_sim) and the real
   multicore domain runtime (mpi_par) — at increasing rank counts.

   Per (workload, ranks) row we report the serial interpreter wall time,
   each substrate's wall time, the mpi_par speedup over serial, and the
   cross-substrate max abs difference of the gathered results (must be
   exactly 0: both substrates share the collective reduction order, so
   floating point agrees bitwise).

   Results are also written to BENCH_par.json.  Note: measured speedup
   depends on the host core count ([Mpi_par.host_cores]); on a single-core
   host the parallel runtime is exercised for correctness but cannot beat
   serial. *)

type row = {
  workload : string;
  ranks : int;
  grid : string;
  serial_s : float;
  sim_s : float;
  par_s : float;
  speedup : float;  (* serial / par wall *)
  cross_diff : float;  (* par vs sim gathered results *)
  par_diff : float;  (* par vs serial reference *)
}

let run_workload (name, m) ~ranks : row =
  let sim = Driver.Harness.run_distributed ~substrate: Driver.Harness.Sim ~ranks m in
  let par = Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~ranks m in
  {
    workload = name;
    ranks;
    grid = String.concat "x" (List.map string_of_int par.Driver.Harness.grid);
    serial_s = par.Driver.Harness.serial_wall_s;
    sim_s = sim.Driver.Harness.wall_s;
    par_s = par.Driver.Harness.wall_s;
    speedup = par.Driver.Harness.serial_wall_s /. par.Driver.Harness.wall_s;
    cross_diff = Driver.Harness.max_result_diff par sim;
    par_diff = par.Driver.Harness.max_diff_vs_serial;
  }

let write_json (rows : row list) =
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"par\",\n  \"host_cores\": %d,\n  \"entries\": [\n"
    (Mpi_par.host_cores ());
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"ranks\": %d, \"grid\": %S, \"serial_s\": \
         %.6f, \"sim_s\": %.6f, \"par_s\": %.6f, \"speedup\": %.3f, \
         \"max_abs_diff_par_vs_sim\": %.17g, \"max_abs_diff_par_vs_serial\": \
         %.17g}%s\n"
        r.workload r.ranks r.grid r.serial_s r.sim_s r.par_s r.speedup
        r.cross_diff r.par_diff
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run ?(smoke = false) () =
  Printf.printf "== Measured parallel execution (mpi_par vs mpi_sim) ==\n";
  Printf.printf "   host cores: %d%s\n" (Mpi_par.host_cores ())
    (if (Mpi_par.host_cores ()) = 1 then
       " (speedup > 1 not expected on a single-core host)"
     else "");
  let grid2 n = [ n; n ] in
  let workloads =
    if smoke then
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 16) ~timesteps: 2 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
      ]
    else
      [
        ( "heat2d-so2",
          (Workloads.heat ~grid: (grid2 48) ~timesteps: 4 ~dims: 2 ~so: 2 ())
            .Workloads.module_ );
        ( "wave2d-so4",
          (Workloads.wave ~grid: (grid2 48) ~timesteps: 4 ~dims: 2 ~so: 4 ())
            .Workloads.module_ );
      ]
  in
  let rank_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf
    "   %-12s %5s %6s %10s %10s %10s %8s %10s\n" "workload" "ranks" "grid"
    "serial_s" "sim_s" "par_s" "speedup" "par-sim";
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun ranks ->
            let r = run_workload w ~ranks in
            Printf.printf
              "   %-12s %5d %6s %10.4f %10.4f %10.4f %7.2fx %10.2e%s\n%!"
              r.workload r.ranks r.grid r.serial_s r.sim_s r.par_s r.speedup
              r.cross_diff
              (if r.cross_diff <> 0. || r.par_diff <> 0. then "  MISMATCH"
               else "");
            r)
          rank_counts)
      workloads
  in
  write_json rows;
  Printf.printf "   (machine-readable copy: BENCH_par.json)\n";
  let bad = List.filter (fun r -> r.cross_diff <> 0. || r.par_diff <> 0.) rows in
  if bad <> [] then begin
    Printf.printf "   FAIL: %d row(s) diverged between substrates\n"
      (List.length bad);
    exit 1
  end;
  print_newline ()

(* Figure 7: single-node CPU throughput of xDSL-Devito vs native Devito on
   heat diffusion (a) and the acoustic wave equation (b), 2D and 3D, space
   orders 2/4/8, on an ARCHER2 node (8 MPI ranks x 16 OpenMP threads = 128
   cores).  Higher is better; the paper's shape: xDSL wins on the low
   arithmetic-intensity kernels, native Devito's flop-reduction wins at
   high AI. *)

let row (w : Workloads.devito_workload) =
  let points = Workloads.archer2_points w.Workloads.dims in
  let xf = Workloads.xdsl_features w ~points in
  let df = Workloads.devito_features w ~points in
  let node = Machine.Cpu.archer2_node in
  let xdsl =
    Machine.Cpu.throughput node Machine.Cpu.xdsl_cpu_quality xf ~points
      ~threads: 128
  in
  let devito =
    Machine.Cpu.throughput node
      (Machine.Cpu.devito_cpu_quality
         ~flop_factor: (Workloads.devito_flop_factor w))
      df ~points ~threads: 128
  in
  Printf.printf "  %-6s %dD so%-2d  %8.2f  %8.2f   %5.2fx  (flops/pt %.0f vs %.0f)\n"
    w.Workloads.w_name w.Workloads.dims w.Workloads.so xdsl devito
    (xdsl /. devito) xf.Machine.Features.flops_per_pt
    df.Machine.Features.flops_per_pt

let run () =
  Printf.printf
    "== Figure 7: single-node CPU, xDSL-Devito vs Devito (GPts/s) ==\n";
  Printf.printf "  %-6s %s      %8s  %8s   %s\n" "kernel" "cfg" "xDSL"
    "Devito" "ratio";
  Printf.printf " (a) heat diffusion, 16384^2 / 1024^3:\n";
  List.iter
    (fun (dims, so) -> row (Workloads.heat ~dims ~so ()))
    [ (2, 2); (2, 4); (2, 8); (3, 2); (3, 4); (3, 8) ];
  Printf.printf " (b) acoustic wave, 16384^2 / 1024^3:\n";
  List.iter
    (fun (dims, so) -> row (Workloads.wave ~dims ~so ()))
    [ (2, 2); (2, 4); (2, 8); (3, 2); (3, 4); (3, 8) ];
  print_newline ()

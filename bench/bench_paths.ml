(* Where bench artifacts (BENCH_*.json) land.

   The writers used to open cwd-relative paths, so running the bench
   binary from anywhere but the repo root scattered JSON files around the
   filesystem.  Artifacts now resolve against the repo root — found by
   walking up from the executable (dune places it under _build/ inside
   the root) to the TOPMOST directory containing a dune-project, which
   skips the dune-project copy inside _build/default — or against an
   explicit --out-dir override. *)

let out_dir_override : string option ref = ref None

(* Fail fast (and with a clear message) on an unusable --out-dir, rather
   than measuring for minutes and dying in the artifact writer. *)
let set_out_dir dir =
  (if Sys.file_exists dir then begin
     if not (Sys.is_directory dir) then begin
       prerr_endline ("--out-dir " ^ dir ^ " exists and is not a directory");
       exit 1
     end
   end
   else
     try Sys.mkdir dir 0o755
     with Sys_error msg ->
       prerr_endline ("--out-dir: cannot create " ^ dir ^ ": " ^ msg);
       exit 1);
  out_dir_override := Some dir

let repo_root () =
  let exe =
    if Filename.is_relative Sys.executable_name then
      Filename.concat (Sys.getcwd ()) Sys.executable_name
    else Sys.executable_name
  in
  let rec climb dir best =
    let best =
      if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
      else best
    in
    let parent = Filename.dirname dir in
    if parent = dir then best else climb parent best
  in
  match climb (Filename.dirname exe) None with
  | Some root -> root
  | None -> Sys.getcwd ()

let out_dir () =
  match !out_dir_override with Some d -> d | None -> repo_root ()

let artifact name = Filename.concat (out_dir ()) name
(** Absolute path for a named bench artifact. *)

(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) from the compiled IR and the machine models, and
   measures real executions of the stack with Bechamel.

   Run with: dune exec bench/main.exe
   (pass a section name — fig7 fig8 fig9 fig10 fig11 tab1 ablation
   measured — to run just that section).

   After each figure section the harness compiles that figure's
   representative workload(s) through the shared pipelines under the Obs
   sink and prints the per-pass time table, attributing compile cost the
   same way the figures attribute runtime.  The "measured" section is
   exempt: Bechamel times real compiles there, so instrumentation stays
   off. *)

let sections =
  [
    ("fig7", Bench_fig7.run);
    ("fig8", Bench_fig8.run);
    ("fig9", Bench_fig9.run);
    ("fig10", Bench_fig10.run);
    ("tab1", Bench_tab1.run);
    ("fig11", Bench_fig11.run);
    ("ablation", Bench_ablation.run);
    ("measured", Bench_measured.run);
  ]

(* Representative compile jobs per figure: the same workloads the section
   models, taken through the shared pipeline that figure evaluates. *)
let pass_table_jobs (section : string) :
    (Core.Pipeline.target * Ir.Op.t) list =
  let heat ~dims ~so = (Workloads.heat ~dims ~so ()).Workloads.module_ in
  let wave ~dims ~so = (Workloads.wave ~dims ~so ()).Workloads.module_ in
  let omp = Core.Pipeline.Cpu_openmp { tiles = [ 32; 32; 32 ] } in
  let dist ~overlap =
    Core.Pipeline.Distributed_cpu
      {
        ranks = 4;
        strategy = Core.Decomposition.Slice2d;
        mode = Core.Decomposition.Faces;
        tiles = [ 32; 32 ];
        overlap;
      }
  in
  match section with
  | "fig7" -> [ (omp, heat ~dims: 2 ~so: 2); (omp, wave ~dims: 2 ~so: 4) ]
  | "fig8" -> [ (dist ~overlap: false, heat ~dims: 3 ~so: 2) ]
  | "fig9" -> [ (dist ~overlap: false, wave ~dims: 3 ~so: 4) ]
  | "fig10" -> [ (omp, (Workloads.pw ()).Workloads.p_module) ]
  | "fig11" -> [ (dist ~overlap: false, (Workloads.traadv ()).Workloads.p_module) ]
  | "tab1" ->
      [ (Core.Pipeline.Fpga { optimized = true }, (Workloads.pw ()).Workloads.p_module) ]
  | "ablation" -> [ (dist ~overlap: true, heat ~dims: 2 ~so: 2) ]
  | _ -> []

let print_pass_table section =
  match pass_table_jobs section with
  | [] -> ()
  | jobs ->
      Obs.enable ();
      List.iter
        (fun (target, m) ->
          ignore (Core.Pipeline.compile ~verify: false target m))
        jobs;
      Printf.printf "-- %s: shared-stack pass times --\n%!" section;
      Format.printf "%a@?" Obs.Passes.pp_table ();
      Obs.disable ();
      print_newline ()

(* Strip a leading-anywhere [--out-dir DIR] pair from the argument list,
   configuring where BENCH_*.json artifacts land (default: the repo
   root, wherever the binary is run from). *)
let rec extract_out_dir = function
  | [] -> []
  | "--out-dir" :: dir :: rest ->
      Bench_paths.set_out_dir dir;
      extract_out_dir rest
  | [ "--out-dir" ] ->
      prerr_endline "--out-dir requires a directory argument";
      exit 1
  | a :: rest -> a :: extract_out_dir rest

let () =
  let args = extract_out_dir (List.tl (Array.to_list Sys.argv)) in
  (* "par" measures real multicore execution; it is dispatched explicitly
     (with an optional --smoke flag) and not part of the default model-based
     section sweep. *)
  (match args with
  | "par" :: rest ->
      (* par [--smoke] [--grid WxH]: the override pins the rank topology
         for A/B runs against whatever the auto-tuner would pick. *)
      let grid_override =
        let rec find = function
          | "--grid" :: v :: _ -> Some v
          | _ :: tl -> find tl
          | [] -> None
        in
        match find rest with
        | None -> None
        | Some s -> (
            let dims =
              String.split_on_char 'x' s
              |> List.map (fun d -> int_of_string_opt (String.trim d))
            in
            match
              List.fold_right
                (fun d acc ->
                  match (d, acc) with
                  | Some d, Some acc when d >= 1 -> Some (d :: acc)
                  | _ -> None)
                dims (Some [])
            with
            | Some dims when dims <> [] -> Some dims
            | _ ->
                prerr_endline ("par: invalid --grid " ^ s ^ " (want e.g. 4x2)");
                exit 1)
      in
      Bench_par.run ~smoke: (List.mem "--smoke" rest) ?grid_override ();
      exit 0
  | "scale" :: rest ->
      Bench_scale.run ~smoke: (List.mem "--smoke" rest) ();
      exit 0
  | "exec" :: rest ->
      Bench_exec.run ~smoke: (List.mem "--smoke" rest) ();
      exit 0
  | "compile" :: rest ->
      Bench_compile.run ~smoke: (List.mem "--smoke" rest) ();
      exit 0
  | "regress" :: rest ->
      (* regress [--baseline DIR] [--current DIR] [--tolerance F] *)
      let rec opt name = function
        | [] -> None
        | flag :: v :: _ when flag = name -> Some v
        | _ :: tl -> opt name tl
      in
      let tolerance =
        match opt "--tolerance" rest with
        | None -> None
        | Some s -> (
            match float_of_string_opt s with
            | Some f when f >= 0. -> Some f
            | _ ->
                prerr_endline ("regress: invalid --tolerance " ^ s);
                exit 1)
      in
      let ok =
        Bench_regress.run
          ?baseline_dir: (opt "--baseline" rest)
          ?current_dir: (opt "--current" rest)
          ?tolerance ()
      in
      exit (if ok then 0 else 1)
  | _ -> ());
  let selected =
    if args = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name args) sections
  in
  if selected = [] then begin
    prerr_endline "unknown section; available:";
    List.iter (fun (n, _) -> prerr_endline ("  " ^ n)) sections;
    prerr_endline
      "  par [--smoke] [--grid WxH]  (measured multicore execution)";
    prerr_endline
      "  scale [--smoke] (calibrated replay: strong-scaling curves to 1024 \
       ranks)";
    prerr_endline "  exec [--smoke]  (measured interp vs compiled executor)";
    prerr_endline
      "  compile [--smoke] (artifact cache cold/warm + --serve throughput)";
    prerr_endline
      "  regress [--baseline DIR] [--current DIR] [--tolerance F]";
    prerr_endline
      "                  (gate fresh BENCH_par/BENCH_exec/BENCH_compile vs \
       baselines)";
    prerr_endline "  --out-dir DIR   (where BENCH_*.json land; default repo root)";
    exit 1
  end;
  Printf.printf
    "shared stencil compilation stack: evaluation reproduction\n\
     (absolute numbers come from first-order machine models; the paper's\n\
     claims are about shapes/ratios — see EXPERIMENTS.md)\n\n";
  List.iter
    (fun (name, run) ->
      run ();
      print_pass_table name)
    selected

(* Ablations of the design choices DESIGN.md calls out:

   - bounds-in-types: halos inferred from stencil.access offsets match the
     minimal radius, per space order;
   - swap-before-every-load + elimination: exchange counts with and
     without the SSA-dataflow cleanup;
   - decomposition strategies: surface volume and message count of
     1D/2D/3D slicing for the same rank count;
   - tiled CPU lowering: loop-structure difference of the contributed
     tiling pipeline (ops and parallel regions);
   - rewrite driver: wall time and pattern applications of the worklist
     greedy driver vs the legacy whole-module sweep driver on the fig7
     and fig10 compile pipelines (written to BENCH_rewrite.json). *)

open Ir

let halo_inference () =
  Printf.printf " -- halo inference from access offsets (bounds in types):\n";
  List.iter
    (fun so ->
      let w = Workloads.heat ~dims: 3 ~so () in
      let halo = ref (0, 0) in
      Op.walk
        (fun op ->
          if op.Op.name = "stencil.apply" then
            halo := (Core.Stencil.combined_halo op ~rank: 3).(0))
        w.Workloads.module_;
      let neg, pos = !halo in
      Printf.printf
        "    so%-2d -> inferred halo (%d,%d), minimal radius %d: %s\n" so neg
        pos (so / 2)
        (if -neg = so / 2 && pos = so / 2 then "exact" else "OVER-APPROXIMATE"))
    [ 2; 4; 8 ]

let swap_elimination () =
  Printf.printf " -- redundant-swap elimination (dmp):\n";
  let cases =
    [
      ("heat3d so4 time loop", (Workloads.heat ~dims: 3 ~so: 4 ()).Workloads.module_);
      ("tracer advection", (Workloads.traadv ()).Workloads.p_module);
    ]
  in
  List.iter
    (fun (label, m) ->
      let dm =
        Core.Distribute.run
          (Core.Distribute.options ~ranks: 8 ~strategy: Core.Decomposition.Slice2d ())
          m
      in
      let before = Transforms.Statistics.count dm "dmp.swap" in
      let after =
        Transforms.Statistics.count (Core.Swap_elim.run dm) "dmp.swap"
      in
      Printf.printf "    %-24s swaps: %d before, %d after elimination\n" label
        before after)
    cases

let diagonal_modes () =
  Printf.printf
    " -- exchange modes at 16 ranks (2D, 1024^2, radius 1):\n";
  List.iter
    (fun (label, mode) ->
      let grid =
        Core.Decomposition.grid_of Core.Decomposition.Slice2d ~ranks: 16
          ~rank: 2
      in
      let interior =
        Core.Decomposition.local_interior ~interior: [ 1024; 1024 ] ~grid
      in
      let exs =
        Core.Decomposition.exchanges ~mode ~interior
          ~halo: [| (-1, 1); (-1, 1) |]
          ~grid ()
      in
      Printf.printf "    %-20s %2d msgs/rank/step, %6d pts exchanged\n" label
        (List.length exs)
        (Core.Decomposition.exchange_volume exs))
    [
      ("faces (prototype)", Core.Decomposition.Faces);
      ("faces + diagonals", Core.Decomposition.Diagonals);
    ]

let decomposition_strategies () =
  Printf.printf
    " -- decomposition strategies at 64 ranks, 1024^3, radius 2:\n";
  List.iter
    (fun strategy ->
      let grid =
        Core.Decomposition.grid_of strategy ~ranks: 64 ~rank: 3
      in
      let interior =
        Core.Decomposition.local_interior ~interior: [ 1024; 1024; 1024 ]
          ~grid
      in
      let exs =
        Core.Decomposition.exchanges ~interior
          ~halo: [| (-2, 2); (-2, 2); (-2, 2) |]
          ~grid ()
      in
      Printf.printf
        "    %-8s grid %-10s  %2d msgs/rank/step, %7d pts exchanged\n"
        (Core.Decomposition.strategy_name strategy)
        (String.concat "x" (List.map string_of_int grid))
        (List.length exs)
        (Core.Decomposition.exchange_volume exs))
    [ Core.Decomposition.Slice1d; Core.Decomposition.Slice2d;
      Core.Decomposition.Slice3d ]

let tiling () =
  Printf.printf " -- CPU lowering styles (heat3d so4):\n";
  let m = (Workloads.heat ~dims: 3 ~so: 4 ()).Workloads.module_ in
  List.iter
    (fun (label, style) ->
      let lowered = Core.Stencil_to_loops.run ~style m in
      Printf.printf
        "    %-10s %4d ops, %d scf.for, %d scf.parallel, %d omp regions\n"
        label (Op.count_ops lowered)
        (Transforms.Statistics.count lowered "scf.for")
        (Transforms.Statistics.count lowered "scf.parallel")
        (Dialects.Omp.count_regions lowered))
    [
      ("seq", Core.Stencil_to_loops.Sequential);
      ("parallel", Core.Stencil_to_loops.Parallel_flat);
      ("tiled", Core.Stencil_to_loops.Tiled_omp [ 32; 32; 32 ]);
    ]

let overlap_structure () =
  Printf.printf
    " -- implemented split-phase overlap (heat2d, 4 ranks):\n";
  let dm =
    Core.Swap_elim.run
      (Core.Distribute.run
         (Core.Distribute.options ~ranks: 4
            ~strategy: Core.Decomposition.Slice2d ())
         ((Workloads.heat ~dims: 2 ~so: 2 ()).Workloads.module_))
  in
  let ov = Core.Overlap.run dm in
  Printf.printf
    "    fused:   %d dmp.swap, %d applies\n    split:   %d swap_begin, %d \
     swap_wait, %d applies (interior + boundary slabs)\n"
    (Transforms.Statistics.count dm "dmp.swap")
    (Transforms.Statistics.count dm "stencil.apply")
    (Transforms.Statistics.count ov "dmp.swap_begin")
    (Transforms.Statistics.count ov "dmp.swap_wait")
    (Transforms.Statistics.count ov "stencil.apply")

let overlap () =
  Printf.printf
    " -- modeled communication/computation overlap at 512 ranks (heat3d so4):\n";
  let sched bytes overlap =
    {
      Machine.Net.messages = 6;
      bytes;
      overlap;
      host_us_per_msg =
        (if overlap then Machine.Net.devito_host_us_per_msg
         else Machine.Net.xdsl_host_us_per_msg);
    }
  in
  let compute = 3e-4 in
  List.iter
    (fun ov ->
      let t =
        Machine.Net.step_time Machine.Net.slingshot ~compute
          (sched 2e6 ov)
      in
      Printf.printf "    overlap=%-5b step %.2e s\n" ov t)
    [ false; true ]

(* A/B the two greedy-rewrite drivers on whole compile pipelines.  Both
   run the same patterns through the same Rewriter workspace; only the
   scheduling differs (worklist re-enqueues users of changed values, the
   sweep re-scans the whole module until a fixpoint).  Timing runs keep
   Obs off so neither driver pays instrumentation cost; a separate
   counted run per configuration collects pattern applications. *)
let rewrite_driver () =
  Printf.printf
    " -- rewrite drivers on compile pipelines (best of %d, warm):\n" 5;
  let pipelines =
    [
      ( "fig7-heat2d-so2-openmp",
        Core.Pipeline.Cpu_openmp { tiles = [ 32; 32 ] },
        (Workloads.heat ~dims: 2 ~so: 2 ()).Workloads.module_ );
      ( "fig10-traadv-distributed-4",
        Core.Pipeline.Distributed_cpu
          {
            ranks = 4;
            strategy = Core.Decomposition.Slice2d;
            mode = Core.Decomposition.Faces;
            tiles = [ 16; 16; 16 ];
            overlap = false;
          },
        (Workloads.traadv ()).Workloads.p_module );
      ( "fig10-pw-distributed-4",
        Core.Pipeline.Distributed_cpu
          {
            ranks = 4;
            strategy = Core.Decomposition.Slice2d;
            mode = Core.Decomposition.Faces;
            tiles = [ 16; 16; 8 ];
            overlap = true;
          },
        (Workloads.pw ()).Workloads.p_module );
    ]
  in
  let time_compile target m =
    ignore (Core.Pipeline.compile ~verify: false target m);
    let best = ref infinity in
    for _ = 1 to 5 do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      ignore (Core.Pipeline.compile ~verify: false target m);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let count_pattern_apps target m =
    Obs.enable ();
    Obs.Rewrites.clear ();
    ignore (Core.Pipeline.compile ~verify: false target m);
    let apps =
      List.fold_left
        (fun acc (s : Obs.rewrite_stat) -> acc + s.Obs.rw_applied)
        0 (Obs.Rewrites.stats ())
    in
    Obs.disable ();
    apps
  in
  let entries =
    List.concat_map
      (fun (label, target, m) ->
        List.map
          (fun driver ->
            Ir.Rewriter.set_default_driver driver;
            let wall = time_compile target m in
            let apps = count_pattern_apps target m in
            let dname = Ir.Rewriter.driver_to_string driver in
            Printf.printf "    %-26s %-9s %9.1f us, %4d pattern apps\n"
              label dname (wall *. 1e6) apps;
            (label, dname, wall, apps))
          [ Ir.Rewriter.Sweep; Ir.Rewriter.Worklist ])
      pipelines
  in
  Ir.Rewriter.set_default_driver Ir.Rewriter.Worklist;
  let json_path = Bench_paths.artifact "BENCH_rewrite.json" in
  let oc = open_out json_path in
  Printf.fprintf oc "{\n  \"bench\": \"rewrite_driver\",\n  \"entries\": [\n";
  List.iteri
    (fun i (label, dname, wall, apps) ->
      Printf.fprintf oc
        "    {\"pipeline\": %S, \"driver\": %S, \"wall_s\": %.9f, \
         \"pattern_apps\": %d}%s\n"
        label dname wall apps
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "    (machine-readable copy: %s)\n" json_path

let run () =
  Printf.printf "== Ablations ==\n";
  halo_inference ();
  swap_elimination ();
  diagonal_modes ();
  decomposition_strategies ();
  tiling ();
  overlap_structure ();
  overlap ();
  rewrite_driver ();
  print_newline ()

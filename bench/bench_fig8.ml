(* Figure 8: strong scaling of the 3D so4 heat (a) and acoustic wave (b)
   kernels on ARCHER2 up to 1024 MPI ranks (16384 cores), 1024^3 grid.
   xDSL-Devito uses the dmp-generated face exchanges without overlap;
   native Devito's schedule adds diagonal exchanges with computation/
   communication overlap (Bisbas et al. 2023), giving it the more robust
   scaling the paper reports. *)

open Ir

let ranks_list = [ 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* 16 threads per rank; a rank owns one NUMA region (1/8 node). *)
let threads_per_rank = 16

(* Each rank gets 16 of the node's 128 cores; the thread-fraction scaling
   inside the CPU model apportions the node bandwidth. *)
let rank_share_node = Machine.Cpu.archer2_node

(* Swaps the compiled distributed program performs per timestep, measured
   from the IR after redundant-swap elimination (wave loads two time
   levels, so it exchanges twice per step — a prototype inefficiency the
   dmp dialect's one-exchange-per-swap design makes visible). *)
let swaps_per_step (w : Workloads.devito_workload) =
  let dm =
    Core.Swap_elim.run
      (Core.Distribute.run
         (Core.Distribute.options ~ranks: 8 ~strategy: Core.Decomposition.Slice3d ())
         w.Workloads.module_)
  in
  max 1 (Transforms.Statistics.count dm "dmp.swap")

let scaling_row (w : Workloads.devito_workload) ranks =
  let n = 1024. in
  let total_points = n ** 3. in
  let local_points = total_points /. float_of_int ranks in
  let swaps = swaps_per_step w in
  (* xDSL: schedule measured from the compiled distributed module. *)
  let grid3 =
    Core.Decomposition.grid_of Core.Decomposition.Slice3d ~ranks ~rank: 3
  in
  let local_dims = List.map (fun g -> n /. float_of_int g) grid3 in
  let r =
    Array.fold_left
      (fun acc (neg, pos) -> max acc (max (-neg) pos))
      0 w.Workloads.spec.Devito.Operator.halo
  in
  (* Face message per decomposed dim per direction per exchanged field. *)
  let dims_cut = List.length (List.filter (fun g -> g > 1) grid3) in
  let face_bytes =
    List.mapi
      (fun d ld ->
        if List.nth grid3 d > 1 then
          let others =
            List.filteri (fun i _ -> i <> d) local_dims
            |> List.fold_left ( *. ) 1.
          in
          2. *. float_of_int r *. others *. 4.
        else (ignore ld; 0.))
      local_dims
    |> List.fold_left ( +. ) 0.
  in
  let xdsl_sched =
    {
      Machine.Net.messages = swaps * 2 * dims_cut;
      bytes = float_of_int swaps *. face_bytes;
      overlap = false;
      host_us_per_msg = Machine.Net.xdsl_host_us_per_msg;
    }
  in
  let devito_sched =
    Devito.Baseline.comm_schedule w.Workloads.spec ~grid: grid3 ~elt_bytes: 4
      ~local_interior: (List.map int_of_float local_dims)
  in
  let xf = Workloads.xdsl_features w ~points: local_points in
  let df = Workloads.devito_features w ~points: local_points in
  let xdsl_compute =
    Machine.Cpu.step_time rank_share_node Machine.Cpu.xdsl_cpu_quality xf
      ~points: local_points ~threads: threads_per_rank
  in
  let devito_compute =
    Machine.Cpu.step_time rank_share_node
      (Machine.Cpu.devito_cpu_quality
         ~flop_factor: (Workloads.devito_flop_factor w))
      df ~points: local_points ~threads: threads_per_rank
  in
  let xdsl_step =
    Machine.Net.step_time Machine.Net.slingshot ~compute: xdsl_compute
      xdsl_sched
  in
  (* The implemented split-phase extension: same schedule, wire time hidden
     behind the interior computation. *)
  let xdsl_overlap_step =
    Machine.Net.step_time Machine.Net.slingshot ~compute: xdsl_compute
      { xdsl_sched with Machine.Net.overlap = true }
  in
  let devito_step =
    Machine.Net.step_time Machine.Net.slingshot ~compute: devito_compute
      devito_sched
  in
  let gpts t = total_points /. t /. 1e9 in
  Printf.printf
    "  %6d  %10.1f  %10.1f  %10.1f   (comm share: xDSL %4.0f%%, Devito %4.0f%%)\n"
    ranks (gpts xdsl_step)
    (gpts xdsl_overlap_step)
    (gpts devito_step)
    (100. *. (1. -. (xdsl_compute /. xdsl_step)))
    (100. *. Float.max 0. (1. -. (devito_compute /. devito_step)))

(* Cross-check: the analytic message count must match what the simulated
   MPI run actually sends for a small configuration. *)
let validate_schedule () =
  let w = Workloads.heat ~dims: 2 ~so: 2 () in
  let ranks = 4 in
  let dm =
    Core.Swap_elim.run
      (Core.Distribute.run
         (Core.Distribute.options ~ranks ~strategy: Core.Decomposition.Slice2d ())
         w.Workloads.module_)
  in
  let lowered =
    Core.Mpi_to_func.run
      (Core.Dmp_to_mpi.run
         (Core.Stencil_to_loops.run ~style: Core.Stencil_to_loops.Sequential dm))
  in
  let fop = Option.get (Op.lookup_symbol lowered "heat") in
  ignore fop;
  let sfop =
    List.find
      (fun (op : Op.t) -> Op.attr op "dmp.topology" <> None)
      (Op.module_ops dm)
  in
  let grid = Driver.Domain.topology_of sfop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds sfop) in
  let global =
    Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ 18; 18 ] Typesys.f32
  in
  let rebase buf =
    { buf with Interp.Rtval.lo = List.map (fun _ -> 0) buf.Interp.Rtval.lo }
  in
  let comm =
    Driver.Simulate.run_spmd ~ranks ~func: "heat"
      ~make_args: (fun ctx ->
        let rank = Mpi_sim.rank ctx in
        List.init 2 (fun _ ->
            Interp.Rtval.Rbuf
              (rebase
                 (Driver.Domain.scatter_field ~global ~grid ~local_bounds
                    ~rank))))
      lowered
  in
  (* 4 ranks in a 2x2 grid: every rank has 2 neighbors, 1 swap per step. *)
  Printf.printf
    "  schedule cross-check (heat2d, 4 ranks, 1 step): simulated %d msgs, \
     analytic %d msgs\n"
    (Mpi_sim.total_messages comm)
    (4 * 2)

let run () =
  Printf.printf
    "== Figure 8: strong scaling 3D so4 on ARCHER2, 1024^3 (GPts/s) ==\n";
  Printf.printf "   ranks  %10s  %10s  %10s\n" "xDSL" "xDSL+ovl" "Devito";
  Printf.printf " (a) heat diffusion:\n";
  let heat = Workloads.heat ~dims: 3 ~so: 4 () in
  List.iter (scaling_row heat) ranks_list;
  Printf.printf " (b) acoustic wave:\n";
  let wave = Workloads.wave ~dims: 3 ~so: 4 () in
  List.iter (scaling_row wave) ranks_list;
  validate_schedule ();
  print_newline ()

(* Measured microbenchmarks (Bechamel): in addition to the analytic figure
   reproductions, these time *real* executions of the stack on this
   machine — compilation pipelines, interpreted kernel sweeps, simulated
   MPI halo exchanges and textual round-trips — one Test.make per
   table/figure family. *)

open Bechamel
open Toolkit
open Ir

(* fig. 7 family: compile + execute one heat2d step (xDSL pipeline). *)
let test_heat_compile =
  Test.make ~name: "fig7: compile heat2d (shared cpu pipeline)"
    (Staged.stage (fun () ->
         let w = Workloads.heat ~dims: 2 ~so: 2 () in
         ignore
           (Core.Pipeline.compile ~verify: false
              (Core.Pipeline.Cpu_openmp { tiles = [ 16; 16 ] })
              w.Workloads.module_)))

let heat_step_runner () =
  let w = Workloads.heat ~dims: 2 ~so: 4 () in
  let lowered =
    Core.Pipeline.compile ~verify: false Core.Pipeline.Cpu_sequential
      w.Workloads.module_
  in
  let n = 16 in
  let mk () = Interp.Rtval.alloc_buffer [ n + 4; n + 4 ] Typesys.f32 in
  let a = mk () and b = mk () in
  fun () ->
    ignore
      (Driver.Simulate.run_serial ~func: "heat" lowered
         [ Interp.Rtval.Rbuf a; Interp.Rtval.Rbuf b ])

let test_heat_exec =
  Test.make ~name: "fig7: interpret heat2d 16^2 step (lowered IR)"
    (Staged.stage (heat_step_runner ()))

(* fig. 8 family: a full 4-rank distributed step on the simulated MPI. *)
let distributed_runner () =
  let w = Workloads.heat ~dims: 2 ~so: 2 () in
  let dm =
    Core.Swap_elim.run
      (Core.Distribute.run
         (Core.Distribute.options ~ranks: 4 ~strategy: Core.Decomposition.Slice2d ())
         w.Workloads.module_)
  in
  let lowered =
    Core.Mpi_to_func.run
      (Core.Dmp_to_mpi.run
         (Core.Stencil_to_loops.run ~style: Core.Stencil_to_loops.Sequential dm))
  in
  let sfop =
    List.find
      (fun (op : Op.t) -> Op.attr op "dmp.topology" <> None)
      (Op.module_ops dm)
  in
  let grid = Driver.Domain.topology_of sfop in
  let local_bounds = List.hd (Driver.Domain.field_arg_bounds sfop) in
  let global = Interp.Rtval.alloc_buffer ~lo: [ -1; -1 ] [ 18; 18 ] Typesys.f32 in
  fun () ->
    ignore
      (Driver.Simulate.run_spmd ~ranks: 4 ~func: "heat"
         ~make_args: (fun ctx ->
           let rank = Mpi_sim.rank ctx in
           List.init 2 (fun _ ->
               let b =
                 Driver.Domain.scatter_field ~global ~grid ~local_bounds
                   ~rank
               in
               Interp.Rtval.Rbuf
                 { b with Interp.Rtval.lo = [ 0; 0 ] }))
         lowered)

let test_distributed =
  Test.make ~name: "fig8: 4-rank distributed heat step (simulated MPI)"
    (Staged.stage (distributed_runner ()))

(* fig. 10 / table 1 family: PSyclone frontend compilation. *)
let test_traadv_frontend =
  Test.make ~name: "fig10: PSyclone traadv -> stencil dialect"
    (Staged.stage (fun () ->
         ignore (Workloads.traadv ()).Workloads.p_module))

let test_hls_lowering =
  Test.make ~name: "tab1: pw -> hls optimized dataflow"
    (Staged.stage
       (let m = (Workloads.pw ()).Workloads.p_module in
        fun () ->
          ignore (Core.Stencil_to_hls.run ~mode: Core.Stencil_to_hls.Optimized m)))

(* infrastructure: textual round-trip of a lowered module. *)
let test_roundtrip =
  Test.make ~name: "infra: print+parse lowered heat3d"
    (Staged.stage
       (let w = Workloads.heat ~dims: 3 ~so: 4 () in
        let lowered =
          Core.Pipeline.compile ~verify: false Core.Pipeline.Cpu_sequential
            w.Workloads.module_
        in
        fun () ->
          ignore (Parser.parse_string (Printer.module_to_string lowered))))

let all_tests =
  [
    test_heat_compile;
    test_heat_exec;
    test_distributed;
    test_traadv_frontend;
    test_hls_lowering;
    test_roundtrip;
  ]

let run () =
  Printf.printf "== Measured microbenchmarks (Bechamel, this machine) ==\n%!";
  let ols =
    Analyze.ols ~r_square: false ~bootstrap: 0
      ~predictors: [| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit: 500 ~quota: (Time.second 0.5) ~kde: None ()
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> nan
          in
          Printf.printf "  %-50s %12.1f ns/run\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    all_tests;
  print_newline ()

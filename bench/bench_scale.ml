(* Scale-out projection: calibrate the replay engine's network model
   from real traced mpi_par runs at rank counts this host CAN execute,
   check the calibrated replay against those same measurements
   (validation rows), then replay the schedules at 16..1024 simulated
   ranks to produce strong-scaling curves no single host could measure —
   without spawning a single domain.

   Two models drive the curves:
     - "calibrated": fitted to this host's traced runs (alpha/beta from
       bucketed message samples, host rates from the phase breakdown) —
       physical, machine-dependent;
     - "reference": the frozen Scale.Netmodel.reference constants —
       machine-independent, so curve efficiencies are bit-identical
       across hosts and the bench regression gate can compare them.

   Each curve point also records tuned_vs_default: the auto-tuner's best
   replayed wall over the default decomposition's (Slice2d/Faces/
   overlap) replayed wall — <= 1 by construction, and a direct measure
   of how much the tuner buys at that scale.

   Results land in BENCH_scaling.json (repo root or --out-dir). *)

type validation_row = {
  v_workload : string;
  v_ranks : int;
  v_grid : string;
  v_measured_s : float;  (* max per-rank span of the traced par run *)
  v_predicted_s : float;  (* replayed wall, host oversubscription modeled *)
  v_rel_error : float;
  v_bound : float;
  v_within : bool;
}

type curve_row = {
  c_workload : string;
  c_model : string;  (* "reference" or "calibrated" *)
  c_ranks : int;
  c_grid : string;
  c_decomposition : string;  (* tuner's pick, e.g. "slice2d/faces/overlap" *)
  c_wall_s : float;
  c_efficiency : float;  (* strong-scaling vs the smallest curve point *)
  c_messages_per_step : int;
  c_bytes_per_step : int;
  c_tuned_vs_default : float;
}

(* One traced execution: the Analysis report plus the symbolic schedule
   of the same (strategy, mode, overlap) configuration — the pairing
   calibration and validation both need. *)
type traced = {
  t_workload : string;
  t_ranks : int;
  t_report : Analysis.report;
  t_schedule : Scale.Schedule.t;
}

(* Traced wall times on a time-shared host are noisy (domain
   descheduling stalls land inside whatever phase was open), so trace
   [reps] times and keep the run with the smallest max rank span: the
   cleanest observation of the schedule the model is asked to predict. *)
let trace_run (name, m) ~reps ~ranks : traced =
  let max_span (a : Analysis.report) =
    Array.fold_left
      (fun acc b -> Float.max acc b.Analysis.bd_span_s)
      0. a.Analysis.r_breakdown
  in
  let trace_once () =
    let r =
      Driver.Harness.run_distributed ~substrate: Driver.Harness.Par ~ranks
        ~executor: Exec_compile.executor ~trace: true m
    in
    match r.Driver.Harness.analysis with
    | Some a -> a
    | None -> failwith "bench scale: traced run produced no analysis"
  in
  let best = ref (trace_once ()) in
  for _ = 2 to reps do
    let a = trace_once () in
    if max_span a < max_span !best then best := a
  done;
  {
    t_workload = name;
    t_ranks = ranks;
    t_report = !best;
    t_schedule = Scale.Schedule.of_module ~ranks m;
  }

(* Host-side phase totals of one traced run, normalized by the
   oversubscription factor the host imposed: with [ranks] domains
   time-sharing [cores] cores, measured compute/pack/unpack walls are
   inflated by ranks/cores relative to the per-core rates the model
   wants (replay re-applies the factor when predicting for this host). *)
let normalized_phase_totals ~host_cores (t : traced) =
  let slow = Float.max 1. (float_of_int t.t_ranks /. float_of_int host_cores) in
  let sum f =
    Array.fold_left (fun acc b -> acc +. f b) 0. t.t_report.Analysis.r_breakdown
  in
  ( sum (fun b -> b.Analysis.bd_compute_s) /. slow,
    sum (fun b -> b.Analysis.bd_pack_s) /. slow,
    sum (fun b -> b.Analysis.bd_unpack_s) /. slow )

let calibrate_model ~host_cores (traces : traced list) =
  (* Deflate each run's observed message latencies by that run's
     oversubscription factor before fitting: the replay engine re-applies
     the factor when predicting for a time-shared host, so the fitted
     alpha/beta must be per-core-parity rates (symmetric with the
     host-rate normalization below). *)
  let samples =
    List.concat_map
      (fun t ->
        let slow =
          Float.max 1. (float_of_int t.t_ranks /. float_of_int host_cores)
        in
        List.map
          (fun (s : Analysis.msg_sample) ->
            {
              s with
              Analysis.ms_recv_ts =
                s.Analysis.ms_send_ts
                +. ((s.Analysis.ms_recv_ts -. s.Analysis.ms_send_ts) /. slow);
            })
          t.t_report.Analysis.r_samples)
      traces
  in
  let fit = Scale.Netmodel.fit_alpha_beta samples in
  let compute_s, pack_s, unpack_s =
    List.fold_left
      (fun (c, p, u) t ->
        let c', p', u' = normalized_phase_totals ~host_cores t in
        (c +. c', p +. p', u +. u'))
      (0., 0., 0.) traces
  in
  let compute_cells, halo_bytes =
    List.fold_left
      (fun (cells, bytes) t ->
        let s = t.t_schedule in
        ( cells
          +. float_of_int
               (Scale.Schedule.cells_per_step s
               * s.Scale.Schedule.steps * t.t_ranks),
          bytes +. float_of_int (Scale.Schedule.total_bytes s) ))
      (0., 0.) traces
  in
  let base =
    match fit with
    | Ok f -> Scale.Netmodel.of_fit f
    | Error _ -> Scale.Netmodel.default
  in
  ( Scale.Netmodel.calibrate ~compute_cells ~compute_s ~pack_bytes: halo_bytes
      ~pack_s ~unpack_bytes: halo_bytes ~unpack_s base,
    fit )

let validate ~model ~host_cores ~bound (t : traced) : validation_row =
  let measured =
    Array.fold_left
      (fun acc b -> Float.max acc b.Analysis.bd_span_s)
      0. t.t_report.Analysis.r_breakdown
  in
  let pred =
    Scale.Replay.run ~model ~cores: host_cores ~emit_timeline: false
      t.t_schedule
  in
  let rel_error =
    if measured > 0. then
      Float.abs (pred.Scale.Replay.p_wall_s -. measured) /. measured
    else 0.
  in
  {
    v_workload = t.t_workload;
    v_ranks = t.t_ranks;
    v_grid =
      String.concat "x"
        (List.map string_of_int t.t_schedule.Scale.Schedule.grid);
    v_measured_s = measured;
    v_predicted_s = pred.Scale.Replay.p_wall_s;
    v_rel_error = rel_error;
    v_bound = bound;
    v_within = rel_error <= bound;
  }

(* One strong-scaling curve: tuner-picked decomposition replayed at each
   rank count under [model], efficiency against the smallest point. *)
let curve (name, m) ~model ~model_name ~rank_counts : curve_row list =
  let points =
    List.filter_map
      (fun ranks ->
        match Scale.Tune.tune ~model ~ranks m with
        | None -> None
        | Some choice ->
            let best = choice.Scale.Tune.best in
            (* the stack's default decomposition, replayed under the
               same model — the tuner's baseline *)
            let default_wall =
              match
                Scale.Tune.tune ~model
                  ~strategies: [ Core.Decomposition.Slice2d ]
                  ~modes: [ Core.Decomposition.Faces ]
                  ~overlaps: [ true ] ~ranks m
              with
              | Some d -> d.Scale.Tune.best.Scale.Tune.c_wall_s
              | None -> best.Scale.Tune.c_wall_s
            in
            Some (ranks, best, default_wall))
      rank_counts
  in
  match points with
  | [] -> []
  | (base_ranks, base_best, _) :: _ ->
      let base_wall = base_best.Scale.Tune.c_wall_s in
      List.map
        (fun (ranks, best, default_wall) ->
          let open Scale.Tune in
          {
            c_workload = name;
            c_model = model_name;
            c_ranks = ranks;
            c_grid = String.concat "x" (List.map string_of_int best.c_grid);
            c_decomposition =
              Printf.sprintf "%s/%s/%s"
                (Core.Decomposition.strategy_name best.c_strategy)
                (match best.c_mode with
                | Core.Decomposition.Faces -> "faces"
                | Core.Decomposition.Diagonals -> "diagonals")
                (if best.c_overlap then "overlap" else "no-overlap");
            c_wall_s = best.c_wall_s;
            c_efficiency =
              Scale.Replay.predicted_efficiency ~baseline_ranks: base_ranks
                ~baseline_wall_s: base_wall ~ranks ~wall_s: best.c_wall_s;
            c_messages_per_step = best.c_messages_per_step;
            c_bytes_per_step = best.c_bytes_per_step;
            c_tuned_vs_default =
              (if default_wall > 0. then best.c_wall_s /. default_wall
               else 1.);
          })
        points

let write_json ~smoke ~host_cores ~(model : Scale.Netmodel.t)
    ~(fit : (Scale.Netmodel.fit, string) result)
    (validation : validation_row list) (curves : curve_row list) =
  let path = Bench_paths.artifact "BENCH_scaling.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"scale\",\n  \"smoke\": %b,\n  \"host_cores\": %d,\n"
    smoke host_cores;
  Printf.fprintf oc
    "  \"netmodel\": {\"source\": %S, \"alpha_s\": %.6e, \
     \"beta_s_per_byte\": %.6e, \"compute_s_per_cell\": %.6e, \
     \"pack_s_per_byte\": %.6e, \"unpack_s_per_byte\": %.6e, \"fit_ok\": \
     %b, \"fit_error\": %s},\n"
    model.Scale.Netmodel.nm_source model.Scale.Netmodel.alpha_s
    model.Scale.Netmodel.beta_s_per_byte model.Scale.Netmodel.compute_s_per_cell
    model.Scale.Netmodel.pack_s_per_byte model.Scale.Netmodel.unpack_s_per_byte
    (match fit with Ok _ -> true | Error _ -> false)
    (match fit with
    | Ok _ -> "null"
    | Error e -> Printf.sprintf "%S" e);
  Printf.fprintf oc "  \"validation\": [\n";
  List.iteri
    (fun i v ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"ranks\": %d, \"grid\": %S, \
         \"measured_s\": %.6e, \"predicted_s\": %.6e, \"rel_error\": %.4f, \
         \"bound\": %.2f, \"within_bound\": %b}%s\n"
        v.v_workload v.v_ranks v.v_grid v.v_measured_s v.v_predicted_s
        v.v_rel_error v.v_bound v.v_within
        (if i = List.length validation - 1 then "" else ","))
    validation;
  Printf.fprintf oc "  ],\n  \"curves\": [\n";
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"model\": %S, \"ranks\": %d, \"grid\": %S, \
         \"decomposition\": %S, \"wall_s\": %.6e, \"efficiency\": %.6f, \
         \"messages_per_step\": %d, \"bytes_per_step\": %d, \
         \"tuned_vs_default\": %.6f}%s\n"
        c.c_workload c.c_model c.c_ranks c.c_grid c.c_decomposition c.c_wall_s
        c.c_efficiency c.c_messages_per_step c.c_bytes_per_step
        c.c_tuned_vs_default
        (if i = List.length curves - 1 then "" else ","))
    curves;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  path

let run ?(smoke = false) () =
  Printf.printf "== Scale-out replay (calibrate, validate, project) ==\n";
  let host_cores = Bench_par.host_cores () in
  Printf.printf "   host cores: %d\n" host_cores;
  let grid2 n = [ n; n ] in
  let heat ~n ~steps =
    ( "heat2d-so2",
      (Workloads.heat ~grid: (grid2 n) ~timesteps: steps ~dims: 2 ~so: 2 ())
        .Workloads.module_ )
  in
  let wave ~n ~steps =
    ( "wave2d-so4",
      (Workloads.wave ~grid: (grid2 n) ~timesteps: steps ~dims: 2 ~so: 4 ())
        .Workloads.module_ )
  in
  (* Validation needs at least two rank counts so the traced message
     samples span two halo sizes (the alpha-beta fit is a line: one
     bucket cannot identify it). *)
  let validation_workloads, validation_ranks, bound =
    if smoke then ([ heat ~n: 64 ~steps: 6 ], [ 2; 4 ], 0.35)
    else
      ([ heat ~n: 96 ~steps: 8; wave ~n: 96 ~steps: 8 ], [ 2; 4; 8 ], 0.30)
  in
  let curve_workloads, curve_ranks =
    if smoke then
      ([ heat ~n: 128 ~steps: 4 ], [ 16; 64; 256; 1024 ])
    else
      ( [ heat ~n: 128 ~steps: 8; wave ~n: 128 ~steps: 8 ],
        [ 16; 32; 64; 128; 256; 512; 1024 ] )
  in
  (* 1. trace real runs at executable rank counts *)
  let reps = 3 in
  let traces =
    List.concat_map
      (fun w ->
        List.map (fun ranks -> trace_run w ~reps ~ranks) validation_ranks)
      validation_workloads
  in
  (* 2. calibrate the model from those traces *)
  let model, fit = calibrate_model ~host_cores traces in
  Printf.printf "   calibrated: %s\n" (Scale.Netmodel.describe model);
  (match fit with
  | Ok f ->
      Printf.printf
        "   alpha-beta fit: r2=%.3f over %d kept sample(s) in %d bucket(s), \
         %d dropped\n"
        f.Scale.Netmodel.f_r2 f.Scale.Netmodel.f_samples
        (List.length f.Scale.Netmodel.f_buckets) f.Scale.Netmodel.f_dropped
  | Error e ->
      Printf.printf
        "   alpha-beta fit not identified (%s); host rates calibrated over \
         default alpha/beta\n"
        e);
  (* 3. validate the calibrated replay against the measurements *)
  Printf.printf "   %-12s %5s %6s %12s %12s %9s %7s\n" "workload" "ranks"
    "grid" "measured_s" "predicted_s" "rel_err" "bound";
  let validation =
    List.map
      (fun t ->
        let v = validate ~model ~host_cores ~bound t in
        Printf.printf "   %-12s %5d %6s %12.6f %12.6f %8.1f%% %6.0f%%%s\n%!"
          v.v_workload v.v_ranks v.v_grid v.v_measured_s v.v_predicted_s
          (100. *. v.v_rel_error) (100. *. v.v_bound)
          (if v.v_within then "" else "  OUT OF BOUND");
        let sum f =
          Array.fold_left
            (fun acc b -> acc +. f b)
            0. t.t_report.Analysis.r_breakdown
        in
        Printf.printf
          "     [measured phases: compute=%.4f pack=%.4f wait=%.4f \
           unpack=%.4f]\n"
          (sum (fun b -> b.Analysis.bd_compute_s))
          (sum (fun b -> b.Analysis.bd_pack_s))
          (sum (fun b -> b.Analysis.bd_wait_s))
          (sum (fun b -> b.Analysis.bd_unpack_s));
        v)
      traces
  in
  (* 4. strong-scaling curves under both models *)
  let curves =
    List.concat_map
      (fun w ->
        curve w ~model: Scale.Netmodel.reference ~model_name: "reference"
          ~rank_counts: curve_ranks
        @ curve w ~model ~model_name: "calibrated" ~rank_counts: curve_ranks)
      curve_workloads
  in
  Printf.printf "   %-12s %-10s %5s %8s %22s %12s %6s %9s\n" "workload"
    "model" "ranks" "grid" "decomposition" "wall_s" "eff" "tuned/def";
  List.iter
    (fun c ->
      Printf.printf "   %-12s %-10s %5d %8s %22s %12.6f %5.0f%% %9.3f\n"
        c.c_workload c.c_model c.c_ranks c.c_grid c.c_decomposition c.c_wall_s
        (100. *. c.c_efficiency) c.c_tuned_vs_default)
    curves;
  let path = write_json ~smoke ~host_cores ~model ~fit validation curves in
  Printf.printf "   (machine-readable copy: %s)\n" path;
  let out_of_bound = List.filter (fun v -> not v.v_within) validation in
  if out_of_bound <> [] then begin
    Printf.printf
      "   FAIL: %d validation row(s) exceeded the %.0f%% prediction bound\n"
      (List.length out_of_bound) (100. *. bound);
    exit 1
  end;
  let bad_tuned =
    List.filter (fun c -> c.c_tuned_vs_default > 1. +. 1e-9) curves
  in
  if bad_tuned <> [] then begin
    Printf.printf
      "   FAIL: %d curve point(s) where the tuner lost to the default \
       decomposition\n"
      (List.length bad_tuned);
    exit 1
  end;
  print_newline ()

(* Figure 9: GPU throughput on an NVIDIA V100 (Cirrus), heat (a) and wave
   (b), 2D 8192^2 and 3D 512^3, so 2/4/8.  xDSL lowers through the MLIR
   CUDA path (explicit device memory, synchronous per-kernel launches);
   Devito uses tiled OpenACC.  The paper's shape: roughly on par for the
   small kernels, xDSL >= 1.5x ahead on the larger 3D wave kernels where
   the launch/sync overhead is amortized by kernel runtime. *)

let row (w : Workloads.devito_workload) =
  let points = Workloads.cirrus_points w.Workloads.dims in
  let xf = Workloads.xdsl_features w ~points in
  let df = Workloads.devito_features w ~points in
  let xdsl =
    Machine.Gpu.throughput Machine.Gpu.v100 Machine.Gpu.xdsl_cuda_quality xf
      ~points
  in
  let devito =
    Machine.Gpu.throughput Machine.Gpu.v100
      (Machine.Gpu.devito_openacc_quality ~dims: w.Workloads.dims)
      df ~points
  in
  Printf.printf "  %-6s %dD so%-2d  %8.2f  %8.2f   %5.2fx\n"
    w.Workloads.w_name w.Workloads.dims w.Workloads.so xdsl devito
    (xdsl /. devito)

let run () =
  Printf.printf
    "== Figure 9: V100 GPU, xDSL CUDA vs Devito OpenACC (GPts/s) ==\n";
  Printf.printf "  %-6s %s      %8s  %8s   %s\n" "kernel" "cfg" "xDSL"
    "OpenACC" "ratio";
  Printf.printf " (a) heat diffusion, 8192^2 / 512^3:\n";
  List.iter
    (fun (dims, so) -> row (Workloads.heat ~dims ~so ()))
    [ (2, 2); (2, 4); (2, 8); (3, 2); (3, 4); (3, 8) ];
  Printf.printf " (b) acoustic wave, 8192^2 / 512^3:\n";
  List.iter
    (fun (dims, so) -> row (Workloads.wave ~dims ~so ()))
    [ (2, 2); (2, 4); (2, 8); (3, 2); (3, 4); (3, 8) ];
  print_newline ()

(* The evaluation workloads (paper §6) and the feature-extraction helpers
   shared by all figure/table benches.

   Functional compilation happens at small grids (features are per-point
   and size-independent); the paper's problem sizes are applied via
   [Machine.Features.with_points]. *)

open Ir

(* --- Devito workloads (fig. 7/8/9) --- *)

type devito_workload = {
  w_name : string;
  dims : int;  (* 2 or 3 *)
  so : int;  (* space discretization order *)
  module_ : Op.t;  (* stencil-dialect module (small functional grid) *)
  spec : Devito.Operator.t;
}

let small_grid dims = if dims = 2 then [ 16; 16 ] else [ 8; 8; 8 ]

let heat ?grid ?(timesteps = 1) ~dims ~so () : devito_workload =
  let shape = match grid with Some s -> s | None -> small_grid dims in
  let g = Devito.Symbolic.grid ~dt: 0.1 shape in
  let u = Devito.Symbolic.function_ ~space_order: so "u" g in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt u)
      Devito.Symbolic.(f 0.5 *: laplace u)
  in
  let spec, m = Devito.Operator.operator ~name: "heat" ~timesteps eqn in
  { w_name = "heat"; dims; so; module_ = m; spec }

let wave ?grid ?(timesteps = 1) ~dims ~so () : devito_workload =
  let shape = match grid with Some s -> s | None -> small_grid dims in
  let g = Devito.Symbolic.grid ~dt: 0.02 shape in
  let u =
    Devito.Symbolic.function_ ~space_order: so ~time_order: 2 "u" g
  in
  let eqn =
    Devito.Symbolic.eq (Devito.Symbolic.Dt2 u)
      Devito.Symbolic.(f 2.25 *: laplace u)
  in
  let spec, m = Devito.Operator.operator ~name: "wave" ~timesteps eqn in
  { w_name = "wave"; dims; so; module_ = m; spec }

(* The paper's problem sizes: 16384^2 / 1024^3 on ARCHER2, 8192^2 / 512^3 on
   Cirrus. *)
let archer2_points dims = if dims = 2 then 16384. ** 2. else 1024. ** 3.
let cirrus_points dims = if dims = 2 then 8192. ** 2. else 512. ** 3.

(* Kernel features of the shared-stack pipeline, measured from the compiled
   stencil module. *)
let xdsl_features (w : devito_workload) ~points : Machine.Features.t =
  Machine.Features.with_points
    (Machine.Features.of_stencil_module ~elt_bytes: 4 w.module_)
    points

(* Kernel features of native Devito, from the symbolically optimized
   expression. *)
let devito_features (w : devito_workload) ~points : Machine.Features.t =
  let f = Devito.Baseline.features w.spec ~elt_bytes: 4 in
  (* Apply the same dimensional traffic amplification used for the IR-based
     measurement so both pipelines share the memory model. *)
  let f =
    {
      f with
      Machine.Features.unique_bytes_per_pt =
        f.Machine.Features.unique_bytes_per_pt
        +. (float_of_int ((w.dims - 1) * 4)
           *. float_of_int
                (List.length (Devito.Symbolic.distinct_reads w.spec.Devito.Operator.update)));
    }
  in
  Machine.Features.with_points f points

let devito_flop_factor (w : devito_workload) =
  let e = w.spec.Devito.Operator.update in
  let naive = float_of_int (Devito.Symbolic.flops e) in
  if naive = 0. then 1.
  else Float.min 1. (float_of_int (Devito.Baseline.factorized_flops e) /. naive)

(* --- PSyclone workloads (fig. 10/11, table 1) --- *)

type psyclone_workload = {
  p_name : string;
  kernel : Psyclone.Fortran.kernel;
  p_module : Op.t;
  regions : int;
}

let pw ?(shape = [ 16; 16; 8 ]) () : psyclone_workload =
  let kernel = Psyclone.Benchkernels.pw_advection ~shape in
  let p_module = Psyclone.Codegen.compile kernel in
  {
    p_name = "pw";
    kernel;
    p_module;
    regions = Psyclone.Psy_ir.count_regions (Psyclone.Psy_ir.of_kernel kernel);
  }

let traadv ?(shape = [ 8; 8; 8 ]) () : psyclone_workload =
  let kernel =
    Psyclone.Benchkernels.tracer_advection ~iterations: 1 ~shape ()
  in
  let p_module = Psyclone.Codegen.compile kernel in
  {
    p_name = "traadv";
    kernel;
    p_module;
    regions = Psyclone.Psy_ir.count_regions (Psyclone.Psy_ir.of_kernel kernel);
  }

let psyclone_features (w : psyclone_workload) ~points : Machine.Features.t =
  Machine.Features.with_points
    (Machine.Features.of_stencil_module ~elt_bytes: 4 w.p_module)
    points

(* --- communication schedules measured from the compiled IR --- *)

(* Per-rank, per-step message count and byte volume: read directly off the
   dmp.swap declarations of the distributed module (after redundant-swap
   elimination), exactly what the generated code would send. *)
let comm_per_step_of_module (dm : Op.t) ~elt_bytes : int * float =
  let messages = ref 0 and bytes = ref 0. in
  Op.walk
    (fun op ->
      if op.Op.name = "dmp.swap" then begin
        let exs = Core.Dmp.exchanges_of op in
        messages := !messages + List.length exs;
        bytes :=
          !bytes
          +. float_of_int
               (Core.Decomposition.exchange_volume exs * elt_bytes)
      end)
    dm;
  (!messages, !bytes)

(* Distribute a stencil module and return the per-step xDSL communication
   schedule scaled to the paper's local domain size. *)
let xdsl_schedule (m : Op.t) ~ranks ~strategy ~(global : float list)
    ~elt_bytes : Machine.Net.schedule =
  let dm = Core.Swap_elim.run (Core.Distribute.run (Core.Distribute.options ~ranks ~strategy ()) m) in
  let msgs, small_bytes = comm_per_step_of_module dm ~elt_bytes in
  (* Scale the measured (small-grid) volume to the target local domain:
     halo faces scale with the local surface. *)
  let fop =
    List.find
      (fun (op : Op.t) -> Op.attr op "dmp.topology" <> None)
      (Op.module_ops dm)
  in
  let grid = Driver.Domain.topology_of fop in
  let small_local =
    List.map2
      (fun (b : Typesys.bound) g ->
        ignore g;
        float_of_int (b.Typesys.hi + b.Typesys.lo))
      (List.hd (Driver.Domain.field_arg_bounds fop))
      grid
  in
  let target_local =
    List.map2 (fun n g -> n /. float_of_int g) global grid
  in
  (* Surface ratio per dimension pair: scale each face by the product of
     the other dimensions' ratios; a single aggregate ratio using the
     geometric structure is adequate at first order. *)
  let ratio =
    let prod l = List.fold_left ( *. ) 1. l in
    let full_ratio = prod target_local /. prod small_local in
    let lin_ratio =
      (prod target_local /. prod small_local)
      ** (1. /. float_of_int (List.length global))
    in
    full_ratio /. lin_ratio
  in
  {
    Machine.Net.messages = msgs;
    bytes = small_bytes *. ratio;
    overlap = false;
    host_us_per_msg = Machine.Net.xdsl_host_us_per_msg;
  }

(* Performance-regression gate: compare freshly produced BENCH_par.json /
   BENCH_exec.json against checked-in baselines and fail loudly on
   slowdowns beyond a tolerance band.

   Absolute wall times are machine speed; comparing them across hosts is
   meaningless.  The gate therefore checks machine-speed-independent
   quantities only:
     - par rows: the distributed/serial wall-time ratios (par_s/serial_s
       and sim_s/serial_s) may not grow by more than [tolerance] (default
       25%), and the deterministic traffic fields (messages, bytes) and
       correctness diffs must match the baseline exactly;
     - par matrix rows (the tile x threads sweep): traffic counters must
       match the baseline exactly AND be exactly invariant across tile
       variants at the same (workload, ranks, threads) — tiling only
       reorders the interior loop nest; result diffs vs serial must be 0;
       and the threaded speedup_vs_1thread may not fall under the 1.0x
       floor (gated only when the 1-thread wall clears the noise floor —
       oversubscribed cells carry a null speedup and are skipped);
     - exec rows: the compiled-vs-interpreter speedup may not drop by
       more than [tolerance] (skipped when either run was oversubscribed
       — domains time-sliced on too few cores are scheduler noise), and
       max_abs_diff must stay 0;
     - compile rows: the artifact cache's warm_speedup (cold compile /
       warm hit) may not drop by more than [tolerance] and must stay
       above an absolute 10x floor; cache counters must reconcile.
     - scaling rows: only the machine-independent slice is gated — the
       reference-model curve points (frozen Netmodel.reference constants,
       deterministic replay) must keep their strong-scaling efficiency
       within the tolerance band and their per-step traffic exactly, the
       tuner must never lose to the default decomposition
       (tuned_vs_default <= 1), and every current validation row must be
       within its prediction-error bound; calibrated-model rows are
       host-specific and skipped.
   A baseline row missing from the current run fails the gate (a silently
   dropped benchmark is a regression too); rows only present in the
   current run are reported but pass. *)

(* --- minimal JSON reader (objects, arrays, numbers, strings, bools,
   null) --- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'u' ->
              (* keep escaped code points verbatim; keys here are ASCII *)
              Buffer.add_string b "\\u"
          | Some c -> Buffer.add_char b c
          | None -> fail "unterminated escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Jarr (items [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> parse_lit "true" (Jbool true)
    | Some 'f' -> parse_lit "false" (Jbool false)
    | Some 'n' -> parse_lit "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  v

let member key = function
  | Jobj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Jnull)
  | _ -> Jnull

let jnum = function Jnum f -> Some f | _ -> None
let jstr = function Jstr s -> Some s | _ -> None
let jbool = function Jbool b -> Some b | _ -> None
let jarr = function Jarr vs -> vs | _ -> []

let load_json path =
  let content = In_channel.with_open_text path In_channel.input_all in
  parse_json content

(* --- the gate --- *)

type outcome = { mutable failures : string list; mutable checked : int }

let fail_row out fmt =
  Printf.ksprintf (fun msg -> out.failures <- msg :: out.failures) fmt

(* Keyed rows of one BENCH file's "entries" array. *)
let entries_by_key ~key json =
  List.filter_map
    (fun e -> match key e with Some k -> Some (k, e) | None -> None)
    (jarr (member "entries" json))

let par_key e =
  match (jstr (member "workload" e), jnum (member "ranks" e)) with
  | Some w, Some r ->
      let ov =
        match jbool (member "overlap" e) with
        | Some true -> "on"
        | Some false -> "off"
        | None -> "?"
      in
      Some (Printf.sprintf "%s/ranks=%d/overlap=%s" w (int_of_float r) ov)
  | _ -> None

(* Keyed rows of BENCH_par's "matrix" array (the tile x threads sweep). *)
let matrix_key e =
  match
    ( jstr (member "workload" e),
      jnum (member "ranks" e),
      jnum (member "threads" e),
      jstr (member "tile" e) )
  with
  | Some w, Some r, Some t, Some tile ->
      Some
        (Printf.sprintf "%s/ranks=%d/threads=%d/tile=%s" w (int_of_float r)
           (int_of_float t) tile)
  | _ -> None

let matrix_rows json =
  List.filter_map
    (fun e -> match matrix_key e with Some k -> Some (k, e) | None -> None)
    (jarr (member "matrix" json))

let exec_key e =
  match (jstr (member "workload" e), jstr (member "mode" e)) with
  | Some w, Some m -> Some (w ^ "/" ^ m)
  | _ -> None

(* A wall-time this short is dominated by scheduler noise: timing ratios
   from runs under it are reported, never gated. *)
let timing_noise_floor_s = 0.02

let check_ratio out ~key ~what ~tolerance ~base ~cur =
  match (base, cur) with
  | Some b, Some c when b > 0. ->
      out.checked <- out.checked + 1;
      if c > b *. (1. +. tolerance) then
        fail_row out "%s: %s regressed %.3f -> %.3f (+%.0f%%, tolerance %.0f%%)"
          key what b c
          (100. *. ((c /. b) -. 1.))
          (100. *. tolerance)
  | _ -> ()

let check_exact_num out ~key ~what ~base ~cur =
  match (base, cur) with
  | Some b, Some c ->
      out.checked <- out.checked + 1;
      if b <> c then
        fail_row out "%s: %s changed %g -> %g (expected exact match)" key what
          b c
  | _ -> ()

let check_zero out ~key ~what v =
  match v with
  | Some d ->
      out.checked <- out.checked + 1;
      if d <> 0. then fail_row out "%s: %s is %g (expected 0)" key what d
  | None -> ()

let ratio a b =
  match (a, b) with
  | Some x, Some y when y > 0. -> Some (x /. y)
  | _ -> None

let compare_par out ~tolerance ~baseline ~current =
  let base_rows = entries_by_key ~key: par_key baseline in
  let cur_rows = entries_by_key ~key: par_key current in
  List.iter
    (fun (key, b) ->
      match List.assoc_opt key cur_rows with
      | None -> fail_row out "%s: row missing from current BENCH_par" key
      | Some c ->
          let num fld e = jnum (member fld e) in
          let above_floor =
            match num "serial_s" b with
            | Some s -> s >= timing_noise_floor_s
            | None -> false
          in
          if above_floor then begin
            check_ratio out ~key ~what: "par_s/serial_s" ~tolerance
              ~base: (ratio (num "par_s" b) (num "serial_s" b))
              ~cur: (ratio (num "par_s" c) (num "serial_s" c));
            check_ratio out ~key ~what: "sim_s/serial_s" ~tolerance
              ~base: (ratio (num "sim_s" b) (num "serial_s" b))
              ~cur: (ratio (num "sim_s" c) (num "serial_s" c))
          end
          else
            Printf.printf
              "   note: %s: baseline serial %.4fs under the %.0fms noise \
               floor, timing ratios not gated\n"
              key
              (Option.value (num "serial_s" b) ~default: 0.)
              (timing_noise_floor_s *. 1e3);
          check_exact_num out ~key ~what: "messages" ~base: (num "messages" b)
            ~cur: (num "messages" c);
          check_exact_num out ~key ~what: "bytes" ~base: (num "bytes" b)
            ~cur: (num "bytes" c);
          check_zero out ~key ~what: "max_abs_diff_par_vs_sim"
            (num "max_abs_diff_par_vs_sim" c);
          check_zero out ~key ~what: "max_abs_diff_par_vs_serial"
            (num "max_abs_diff_par_vs_serial" c))
    base_rows;
  List.iter
    (fun (key, _) ->
      if List.assoc_opt key base_rows = None then
        Printf.printf "   note: %s is new (no baseline)\n" key)
    cur_rows;
  (* --- tile x threads matrix --- *)
  let base_mx = matrix_rows baseline in
  let cur_mx = matrix_rows current in
  List.iter
    (fun (key, b) ->
      let num fld e = jnum (member fld e) in
      match List.assoc_opt key cur_mx with
      | None ->
          fail_row out "%s: matrix row missing from current BENCH_par" key
      | Some c ->
          check_exact_num out ~key ~what: "messages"
            ~base: (num "messages" b) ~cur: (num "messages" c);
          check_exact_num out ~key ~what: "bytes" ~base: (num "bytes" b)
            ~cur: (num "bytes" c))
    base_mx;
  (* current-run self-checks: correctness, tiling traffic invariance and
     the threaded-speedup floor hold wherever the bench ran *)
  List.iter
    (fun (key, c) ->
      if List.assoc_opt key base_mx = None then
        Printf.printf "   note: %s is new (no baseline)\n" key;
      check_zero out ~key ~what: "max_abs_diff_par_vs_serial"
        (jnum (member "max_abs_diff_par_vs_serial" c)))
    cur_mx;
  List.iter
    (fun (key, c) ->
      List.iter
        (fun (key', c') ->
          if
            key < key'
            && jstr (member "workload" c) = jstr (member "workload" c')
            && jnum (member "ranks" c) = jnum (member "ranks" c')
            && jnum (member "threads" c) = jnum (member "threads" c')
          then begin
            out.checked <- out.checked + 1;
            if
              jnum (member "messages" c) <> jnum (member "messages" c')
              || jnum (member "bytes" c) <> jnum (member "bytes" c')
            then
              fail_row out
                "%s vs %s: tiling changed the traffic counters (must be \
                 exactly invariant)"
                key key'
          end)
        cur_mx)
    cur_mx;
  List.iter
    (fun (key, c) ->
      match jnum (member "speedup_vs_1thread" c) with
      | None -> ()  (* 1-thread baseline cell, or oversubscribed: null *)
      | Some s ->
          let one_thread_wall =
            List.find_map
              (fun (_, c') ->
                if
                  jstr (member "workload" c') = jstr (member "workload" c)
                  && jnum (member "ranks" c') = jnum (member "ranks" c)
                  && jstr (member "tile" c') = jstr (member "tile" c)
                  && jnum (member "threads" c') = Some 1.
                then jnum (member "par_s" c')
                else None)
              cur_mx
          in
          let above_floor =
            match one_thread_wall with
            | Some p -> p >= timing_noise_floor_s
            | None -> false
          in
          if above_floor then begin
            out.checked <- out.checked + 1;
            if s < 1. /. (1. +. tolerance) then
              fail_row out
                "%s: threaded speedup %.2fx is under the 1.0x floor \
                 (tolerance %.0f%%)"
                key s (100. *. tolerance)
          end
          else
            Printf.printf
              "   note: %s: 1-thread par wall under the %.0fms noise floor, \
               threaded speedup not gated\n"
              key
              (timing_noise_floor_s *. 1e3))
    cur_mx

let compare_exec out ~tolerance ~baseline ~current =
  let base_rows = entries_by_key ~key: exec_key baseline in
  let cur_rows = entries_by_key ~key: exec_key current in
  List.iter
    (fun (key, b) ->
      match List.assoc_opt key cur_rows with
      | None -> fail_row out "%s: row missing from current BENCH_exec" key
      | Some c ->
          let above_floor =
            (* speedup = interp/compiled: when the compiled run is down at
               the noise floor the ratio swings wildly, so don't gate it *)
            match jnum (member "compiled_s" b) with
            | Some s -> s >= timing_noise_floor_s /. 2.
            | None -> false
          in
          let oversub r = jbool (member "oversubscribed" r) = Some true in
          (* Domains time-sliced on too few cores make both walls scheduler
             noise (same policy as the par gate), in either run. *)
          if oversub b || oversub c then
            Printf.printf
              "   note: %s: ranks exceed host cores, timing ratios not gated\n"
              key;
          (match (jnum (member "speedup" b), jnum (member "speedup" c)) with
          | Some sb, Some sc
            when sb > 1. && above_floor && (not (oversub b))
                 && not (oversub c) ->
              out.checked <- out.checked + 1;
              if sc < sb /. (1. +. tolerance) then
                fail_row out
                  "%s: compiled speedup regressed %.2fx -> %.2fx (-%.0f%%, \
                   tolerance %.0f%%)"
                  key sb sc
                  (100. *. (1. -. (sc /. sb)))
                  (100. *. tolerance)
          | _ -> ());
          check_zero out ~key ~what: "max_abs_diff" (jnum (member "max_abs_diff" c)))
    base_rows;
  List.iter
    (fun (key, _) ->
      if List.assoc_opt key base_rows = None then
        Printf.printf "   note: %s is new (no baseline)\n" key)
    cur_rows

(* The artifact cache's whole value is warm hits costing a vanishing
   fraction of a cold compile: gate the machine-independent warm_speedup
   both against the baseline (tolerance band) and against an absolute
   floor — a warm hit within 10x of a cold compile means the cache
   stopped caching.  The on-disk store's value is the same claim across
   a restart: restart_speedup (cold / store-restore) gets the identical
   treatment.  Counters must reconcile exactly, failed-entry hits must
   be zero (this bench compiles nothing that fails — a nonzero count
   means lookups are being misattributed), and the concurrent-client
   invariant (N clients, 2 digests, exactly 2 compiles) must hold. *)
let warm_speedup_floor = 10.
let restart_speedup_floor = 10.

let compare_compile out ~tolerance ~baseline ~current =
  let key e = jstr (member "workload" e) in
  let base_rows = entries_by_key ~key baseline in
  let cur_rows = entries_by_key ~key current in
  List.iter
    (fun (key, b) ->
      match List.assoc_opt key cur_rows with
      | None -> fail_row out "%s: row missing from current BENCH_compile" key
      | Some c ->
          let num fld e = jnum (member fld e) in
          let above_floor =
            (* warm_speedup = cold/warm: a cold compile down at the noise
               floor makes the ratio meaningless, so don't gate it *)
            match num "cold_ms" b with
            | Some ms -> ms /. 1000. >= timing_noise_floor_s /. 2.
            | None -> false
          in
          (match (num "warm_speedup" b, num "warm_speedup" c) with
          | Some sb, Some sc when above_floor ->
              out.checked <- out.checked + 1;
              if sc < warm_speedup_floor then
                fail_row out
                  "%s: warm_speedup %.1fx is under the %.0fx floor (cache \
                   not caching?)"
                  key sc warm_speedup_floor
              else if sb > 1. && sc < sb /. (1. +. tolerance) then
                fail_row out
                  "%s: warm_speedup regressed %.0fx -> %.0fx (-%.0f%%, \
                   tolerance %.0f%%)"
                  key sb sc
                  (100. *. (1. -. (sc /. sb)))
                  (100. *. tolerance)
          | _ -> ());
          (match (num "restart_speedup" b, num "restart_speedup" c) with
          | Some sb, Some sc when above_floor ->
              out.checked <- out.checked + 1;
              if sc < restart_speedup_floor then
                fail_row out
                  "%s: restart_speedup %.1fx is under the %.0fx floor (store \
                   restore not skipping the pipeline?)"
                  key sc restart_speedup_floor
              else if sb > 1. && sc < sb /. (1. +. tolerance) then
                fail_row out
                  "%s: restart_speedup regressed %.0fx -> %.0fx (-%.0f%%, \
                   tolerance %.0f%%)"
                  key sb sc
                  (100. *. (1. -. (sc /. sb)))
                  (100. *. tolerance)
          | _ -> ());
          (match jbool (member "counters_ok" c) with
          | Some ok ->
              out.checked <- out.checked + 1;
              if not ok then
                fail_row out "%s: cache counters do not reconcile" key
          | None -> ()))
    base_rows;
  (* current-run self-checks: machine-independent invariants that must
     hold wherever the bench ran, baseline or not *)
  List.iter
    (fun (key, c) ->
      check_zero out ~key ~what: "failed_hits" (jnum (member "failed_hits" c));
      match jbool (member "concurrent_ok" c) with
      | Some ok ->
          out.checked <- out.checked + 1;
          if not ok then
            fail_row out
              "%s: concurrent-client invariant violated (expected 2 digests \
               -> exactly 2 compiles, no failures)"
              key
      | None -> ())
    cur_rows;
  List.iter
    (fun (key, _) ->
      if List.assoc_opt key base_rows = None then
        Printf.printf "   note: %s is new (no baseline)\n" key)
    cur_rows

(* BENCH_scaling.json: curves + validation rather than a flat entries
   array.  Gate only what is machine-independent (see header comment). *)
let compare_scale out ~tolerance ~baseline ~current =
  let curve_key e =
    match
      ( jstr (member "workload" e),
        jstr (member "model" e),
        jnum (member "ranks" e) )
    with
    | Some w, Some m, Some r ->
        Some (Printf.sprintf "%s/%s/ranks=%d" w m (int_of_float r))
    | _ -> None
  in
  let curves json =
    List.filter_map
      (fun e -> match curve_key e with Some k -> Some (k, e) | None -> None)
      (jarr (member "curves" json))
  in
  let reference (k, e) =
    jstr (member "model" e) = Some "reference" && String.length k > 0
  in
  let base_rows = List.filter reference (curves baseline) in
  let cur_rows = curves current in
  List.iter
    (fun (key, b) ->
      match List.assoc_opt key cur_rows with
      | None -> fail_row out "%s: row missing from current BENCH_scaling" key
      | Some c ->
          let num fld e = jnum (member fld e) in
          (* frozen-model efficiency: same replay, same constants — a
             drop is a real change in the predicted schedule *)
          (match (num "efficiency" b, num "efficiency" c) with
          | Some eb, Some ec when eb > 0. ->
              out.checked <- out.checked + 1;
              if ec < eb /. (1. +. tolerance) then
                fail_row out
                  "%s: reference-model efficiency regressed %.3f -> %.3f \
                   (tolerance %.0f%%)"
                  key eb ec (100. *. tolerance)
          | _ -> ());
          check_exact_num out ~key ~what: "messages_per_step"
            ~base: (num "messages_per_step" b)
            ~cur: (num "messages_per_step" c);
          check_exact_num out ~key ~what: "bytes_per_step"
            ~base: (num "bytes_per_step" b)
            ~cur: (num "bytes_per_step" c))
    base_rows;
  (* current-run self-checks: machine-independent invariants that must
     hold wherever the bench ran *)
  List.iter
    (fun (key, c) ->
      match jnum (member "tuned_vs_default" c) with
      | Some t ->
          out.checked <- out.checked + 1;
          if t > 1. +. 1e-9 then
            fail_row out
              "%s: tuner lost to the default decomposition \
               (tuned_vs_default=%.4f)"
              key t
      | None -> ())
    cur_rows;
  List.iter
    (fun v ->
      match
        ( jstr (member "workload" v),
          jnum (member "ranks" v),
          jbool (member "within_bound" v) )
      with
      | Some w, Some r, Some ok ->
          out.checked <- out.checked + 1;
          if not ok then
            fail_row out
              "%s/ranks=%d: replay prediction outside its error bound \
               (rel_error=%.3f > %.2f)"
              w (int_of_float r)
              (Option.value (jnum (member "rel_error" v)) ~default: nan)
              (Option.value (jnum (member "bound" v)) ~default: nan)
      | _ -> ())
    (jarr (member "validation" current))

let gate_file out ~tolerance ~compare ~name ~baseline_dir ~current_dir =
  let bpath = Filename.concat baseline_dir name in
  let cpath = Filename.concat current_dir name in
  if not (Sys.file_exists bpath) then
    fail_row out "%s: baseline %s does not exist" name bpath
  else if not (Sys.file_exists cpath) then
    fail_row out "%s: current %s does not exist (bench not run?)" name cpath
  else
    match (load_json bpath, load_json cpath) with
    | baseline, current -> compare out ~tolerance ~baseline ~current
    | exception Bad_json msg -> fail_row out "%s: unparseable (%s)" name msg

let run ?(baseline_dir : string option) ?(current_dir : string option)
    ?(tolerance = 0.25) () =
  let baseline_dir =
    match baseline_dir with
    | Some d -> d
    | None ->
        Filename.concat (Bench_paths.repo_root ())
          (Filename.concat "bench" "baselines")
  in
  let current_dir =
    match current_dir with Some d -> d | None -> Bench_paths.out_dir ()
  in
  Printf.printf "== Benchmark regression gate ==\n";
  Printf.printf "   baseline: %s\n   current:  %s\n   tolerance: %.0f%%\n"
    baseline_dir current_dir (100. *. tolerance);
  let out = { failures = []; checked = 0 } in
  gate_file out ~tolerance ~compare: compare_par ~name: "BENCH_par.json"
    ~baseline_dir ~current_dir;
  gate_file out ~tolerance ~compare: compare_exec ~name: "BENCH_exec.json"
    ~baseline_dir ~current_dir;
  gate_file out ~tolerance ~compare: compare_compile
    ~name: "BENCH_compile.json" ~baseline_dir ~current_dir;
  gate_file out ~tolerance ~compare: compare_scale ~name: "BENCH_scaling.json"
    ~baseline_dir ~current_dir;
  match out.failures with
  | [] ->
      Printf.printf "   PASS: %d check(s), no regression beyond %.0f%%\n\n"
        out.checked (100. *. tolerance);
      true
  | fs ->
      Printf.printf "   FAIL: %d regression(s) (%d check(s) run):\n"
        (List.length fs) out.checked;
      List.iter (fun f -> Printf.printf "     - %s\n" f) (List.rev fs);
      print_newline ();
      false

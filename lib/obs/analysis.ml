(* Timeline analytics: a pure layer turning one run's substrate timeline
   (Mpi_intf.timeline_event list) into per-rank phase breakdowns, a
   rank x rank communication matrix, the critical path through the
   happens-before graph, an overlap-efficiency figure and the matched
   (bytes, latency) samples a least-squares alpha-beta network model is
   fitted from.

   Phase attribution works on each rank's event sequence with a phase
   stack: pcontrol spans open pack/unpack phases, wait/waitall spans open
   exchange-wait (or collective, when the awaited request carries the
   reserved collective tag), and every gap between consecutive events is
   charged to the phase on top of the stack — compute when the stack is
   empty.  The five buckets therefore sum to the rank's span exactly.

   Message matching is FIFO per (src, dst, tag), mirroring the matching
   rule of both substrates, so the k-th Isend on a channel pairs with the
   k-th Recv_complete.  Those pairs induce the cross-rank edges of the
   happens-before DAG; within a rank consecutive events are chained.  The
   critical path is the longest path through that DAG (weights are
   clamped-nonnegative time gaps), which by construction is at least as
   long as the longest single-rank span. *)

type phase = Compute | Pack | Exchange_wait | Unpack | Collective_phase | Flight

let phase_name = function
  | Compute -> "compute"
  | Pack -> "pack"
  | Exchange_wait -> "wait"
  | Unpack -> "unpack"
  | Collective_phase -> "collective"
  | Flight -> "flight"

type rank_phases = {
  bd_rank : int;
  bd_span_s : float;
  bd_compute_s : float;
  bd_pack_s : float;
  bd_wait_s : float;
  bd_unpack_s : float;
  bd_collective_s : float;
  bd_events : int;
}

type comm_matrix = {
  cm_ranks : int;
  cm_messages : int array array;
  cm_bytes : int array array;
  cm_latency_s : float array array;
}

let matrix_total_messages m =
  Array.fold_left
    (fun acc row -> Array.fold_left ( + ) acc row)
    0 m.cm_messages

let matrix_total_bytes m =
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 m.cm_bytes

type msg_sample = {
  ms_src : int;
  ms_dst : int;
  ms_tag : int;
  ms_bytes : int;
  ms_send_ts : float;
  ms_recv_ts : float;
}

type path_link = { pl_rank : int; pl_phase : phase; pl_dur_s : float }

type overlap_stats = {
  ov_inflight_s : float;
  ov_exposed_s : float;
  ov_hidden_s : float;
  ov_efficiency : float option;
}

type report = {
  r_ranks : int;
  r_breakdown : rank_phases array;
  r_matrix : comm_matrix;
  r_critical_path : path_link list;
  r_critical_path_s : float;
  r_slack_s : float array;
  r_overlap : overlap_stats;
  r_samples : msg_sample list;
  r_unmatched_sends : int;
}

(* --- phase classification --- *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let phase_of_span_name = function
  | "pack" -> Pack
  | "unpack" -> Unpack
  | _ -> Compute

let phase_of_wait desc =
  if contains_substring desc "collective" then Collective_phase
  else Exchange_wait

(* Per-rank walk: classify the gap after each event.  [on_gap] receives
   (rank, phase, dt); [phase_after] is filled with the classification of
   the gap following each global event index. *)
let classify_gaps (events : Mpi_intf.timeline_event array)
    (by_rank : int list array) (phase_after : phase array)
    ~(on_gap : int -> phase -> float -> unit) : unit =
  Array.iteri
    (fun r idxs ->
      let stack = ref [] in
      let push p = stack := p :: !stack in
      let pop () = match !stack with [] -> () | _ :: rest -> stack := rest in
      let top () = match !stack with [] -> Compute | p :: _ -> p in
      let rec walk = function
        | [] -> ()
        | i :: rest ->
            (match events.(i).Mpi_intf.kind with
            | Mpi_intf.Span_begin name -> push (phase_of_span_name name)
            | Mpi_intf.Span_end _ -> pop ()
            | Mpi_intf.Wait_begin desc -> push (phase_of_wait desc)
            | Mpi_intf.Waitall_begin _ -> push Exchange_wait
            | Mpi_intf.Wait_end | Mpi_intf.Waitall_end -> pop ()
            | Mpi_intf.Isend _ | Mpi_intf.Irecv _ | Mpi_intf.Recv_complete _
            | Mpi_intf.Collective _ ->
                ());
            let p = top () in
            phase_after.(i) <- p;
            (match rest with
            | next :: _ ->
                let dt =
                  Float.max 0.
                    (events.(next).Mpi_intf.ts -. events.(i).Mpi_intf.ts)
                in
                on_gap r p dt
            | [] -> ());
            walk rest
      in
      walk idxs)
    by_rank

let analyze ~ranks (tl : Mpi_intf.timeline_event list) : report =
  let events =
    Array.of_list
      (List.sort
         (fun (a : Mpi_intf.timeline_event) (b : Mpi_intf.timeline_event) ->
           compare a.Mpi_intf.seq b.Mpi_intf.seq)
         tl)
  in
  let n = Array.length events in
  let rank_of i = events.(i).Mpi_intf.ev_rank in
  let ts_of i = events.(i).Mpi_intf.ts in
  (* Event indices per rank, in sequence order. *)
  let by_rank = Array.make ranks [] in
  for i = n - 1 downto 0 do
    let r = rank_of i in
    if r >= 0 && r < ranks then by_rank.(r) <- i :: by_rank.(r)
  done;
  (* Phase buckets: compute/pack/wait/unpack/collective per rank. *)
  let buckets = Array.make_matrix ranks 5 0. in
  let bucket_index = function
    | Compute -> 0
    | Pack -> 1
    | Exchange_wait -> 2
    | Unpack -> 3
    | Collective_phase -> 4
    | Flight -> 0
  in
  let phase_after = Array.make (max n 1) Compute in
  classify_gaps events by_rank phase_after ~on_gap: (fun r p dt ->
      buckets.(r).(bucket_index p) <- buckets.(r).(bucket_index p) +. dt);
  let breakdown =
    Array.init ranks (fun r ->
        let span =
          match by_rank.(r) with
          | [] -> 0.
          | first :: _ ->
              let rec last = function
                | [ x ] -> x
                | _ :: rest -> last rest
                | [] -> first
              in
              Float.max 0. (ts_of (last by_rank.(r)) -. ts_of first)
        in
        {
          bd_rank = r;
          bd_span_s = span;
          bd_compute_s = buckets.(r).(0);
          bd_pack_s = buckets.(r).(1);
          bd_wait_s = buckets.(r).(2);
          bd_unpack_s = buckets.(r).(3);
          bd_collective_s = buckets.(r).(4);
          bd_events = List.length by_rank.(r);
        })
  in
  (* One pass in global sequence order: FIFO message matching (comm
     matrix + calibration samples) fused with the longest-path DP over
     the happens-before DAG. *)
  let matrix =
    {
      cm_ranks = ranks;
      cm_messages = Array.make_matrix ranks ranks 0;
      cm_bytes = Array.make_matrix ranks ranks 0;
      cm_latency_s = Array.make_matrix ranks ranks 0.;
    }
  in
  let pending_sends : (int * int * int, int Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let sends_queue key =
    match Hashtbl.find_opt pending_sends key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add pending_sends key q;
        q
  in
  let dist = Array.make (max n 1) 0. in
  (* Predecessor: (index, is_flight_edge). *)
  let pred = Array.make (max n 1) None in
  let prev_on_rank = Array.make ranks (-1) in
  let rev_samples = ref [] in
  for i = 0 to n - 1 do
    let r = rank_of i in
    if r >= 0 && r < ranks then begin
      (match prev_on_rank.(r) with
      | -1 -> ()
      | j ->
          let d = dist.(j) +. Float.max 0. (ts_of i -. ts_of j) in
          if d > dist.(i) then begin
            dist.(i) <- d;
            pred.(i) <- Some (j, false)
          end);
      (match events.(i).Mpi_intf.kind with
      | Mpi_intf.Isend { dest; tag; bytes } ->
          if dest >= 0 && dest < ranks then begin
            matrix.cm_messages.(r).(dest) <- matrix.cm_messages.(r).(dest) + 1;
            matrix.cm_bytes.(r).(dest) <- matrix.cm_bytes.(r).(dest) + bytes;
            Queue.push i (sends_queue (r, dest, tag))
          end
      | Mpi_intf.Recv_complete { source; tag; bytes } ->
          if source >= 0 && source < ranks then begin
            let q = sends_queue (source, r, tag) in
            if not (Queue.is_empty q) then begin
              let si = Queue.pop q in
              let latency = Float.max 0. (ts_of i -. ts_of si) in
              matrix.cm_latency_s.(source).(r) <-
                matrix.cm_latency_s.(source).(r) +. latency;
              rev_samples :=
                {
                  ms_src = source;
                  ms_dst = r;
                  ms_tag = tag;
                  ms_bytes = bytes;
                  ms_send_ts = ts_of si;
                  ms_recv_ts = ts_of si +. latency;
                }
                :: !rev_samples;
              let d = dist.(si) +. latency in
              if d > dist.(i) then begin
                dist.(i) <- d;
                pred.(i) <- Some (si, true)
              end
            end
          end
      | _ -> ());
      prev_on_rank.(r) <- i
    end
  done;
  let unmatched =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) pending_sends 0
  in
  (* Critical path: backtrack from the farthest event, then merge
     consecutive links with the same (rank, phase). *)
  let critical_path_s, critical_path =
    if n = 0 then (0., [])
    else begin
      let best = ref 0 in
      for i = 1 to n - 1 do
        if dist.(i) > dist.(!best) then best := i
      done;
      let rec backtrack i acc =
        match pred.(i) with
        | None -> acc
        | Some (j, is_flight) ->
            let dur = Float.max 0. (ts_of i -. ts_of j) in
            let link =
              if is_flight then
                { pl_rank = rank_of i; pl_phase = Flight; pl_dur_s = dur }
              else
                {
                  pl_rank = rank_of i;
                  pl_phase = phase_after.(j);
                  pl_dur_s = dur;
                }
            in
            backtrack j (link :: acc)
      in
      let raw = backtrack !best [] in
      let merged =
        List.fold_left
          (fun acc link ->
            match acc with
            | prev :: rest
              when prev.pl_rank = link.pl_rank
                   && prev.pl_phase = link.pl_phase ->
                { prev with pl_dur_s = prev.pl_dur_s +. link.pl_dur_s } :: rest
            | _ -> link :: acc)
          [] raw
      in
      (dist.(!best), List.rev (List.filter (fun l -> l.pl_dur_s > 0.) merged))
    end
  in
  let slack =
    Array.map
      (fun bd -> Float.max 0. (critical_path_s -. bd.bd_span_s))
      breakdown
  in
  let samples = List.rev !rev_samples in
  let inflight =
    List.fold_left (fun acc s -> acc +. (s.ms_recv_ts -. s.ms_send_ts)) 0. samples
  in
  let exposed =
    Array.fold_left (fun acc bd -> acc +. bd.bd_wait_s) 0. breakdown
  in
  let hidden = Float.max 0. (inflight -. exposed) in
  let overlap =
    {
      ov_inflight_s = inflight;
      ov_exposed_s = exposed;
      ov_hidden_s = hidden;
      ov_efficiency =
        (if samples <> [] && inflight > 0. then Some (hidden /. inflight)
         else None);
    }
  in
  {
    r_ranks = ranks;
    r_breakdown = breakdown;
    r_matrix = matrix;
    r_critical_path = critical_path;
    r_critical_path_s = critical_path_s;
    r_slack_s = slack;
    r_overlap = overlap;
    r_samples = samples;
    r_unmatched_sends = unmatched;
  }

(* --- alpha-beta network-model calibration --- *)

type netmodel = {
  nm_alpha_s : float;
  nm_beta_s_per_byte : float;
  nm_r2 : float;
  nm_samples : int;
}

let fit_netmodel (samples : msg_sample list) : netmodel option =
  match samples with
  | [] -> None
  | _ ->
      let n = float_of_int (List.length samples) in
      let sx, sy =
        List.fold_left
          (fun (sx, sy) s ->
            (sx +. float_of_int s.ms_bytes, sy +. (s.ms_recv_ts -. s.ms_send_ts)))
          (0., 0.) samples
      in
      let mx = sx /. n and my = sy /. n in
      let sxx, sxy, syy =
        List.fold_left
          (fun (sxx, sxy, syy) s ->
            let dx = float_of_int s.ms_bytes -. mx in
            let dy = s.ms_recv_ts -. s.ms_send_ts -. my in
            (sxx +. (dx *. dx), sxy +. (dx *. dy), syy +. (dy *. dy)))
          (0., 0., 0.) samples
      in
      let beta = if sxx > 0. then sxy /. sxx else 0. in
      let alpha = my -. (beta *. mx) in
      let ss_res =
        List.fold_left
          (fun acc s ->
            let predicted = alpha +. (beta *. float_of_int s.ms_bytes) in
            let e = s.ms_recv_ts -. s.ms_send_ts -. predicted in
            acc +. (e *. e))
          0. samples
      in
      let r2 = if syy > 0. then 1. -. (ss_res /. syy) else 1. in
      Some
        {
          nm_alpha_s = alpha;
          nm_beta_s_per_byte = beta;
          nm_r2 = r2;
          nm_samples = List.length samples;
        }

(* --- rendering --- *)

let pp_report fmt (r : report) =
  let pct part whole = if whole > 0. then 100. *. part /. whole else 0. in
  Format.fprintf fmt "== run analysis: %d rank(s), %d matched message(s) ==@."
    r.r_ranks
    (List.length r.r_samples);
  Format.fprintf fmt "per-rank phase breakdown (seconds):@.";
  Format.fprintf fmt "  %4s %10s %10s %10s %10s %10s %10s %8s@." "rank" "span"
    "compute" "pack" "wait" "unpack" "collective" "wait%";
  Array.iter
    (fun bd ->
      Format.fprintf fmt
        "  %4d %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f %7.1f%%@." bd.bd_rank
        bd.bd_span_s bd.bd_compute_s bd.bd_pack_s bd.bd_wait_s bd.bd_unpack_s
        bd.bd_collective_s
        (pct bd.bd_wait_s bd.bd_span_s))
    r.r_breakdown;
  let m = r.r_matrix in
  Format.fprintf fmt "comm matrix (messages/bytes, rows send to columns):@.";
  Format.fprintf fmt "  %8s" "src\\dst";
  for dst = 0 to m.cm_ranks - 1 do
    Format.fprintf fmt " %12d" dst
  done;
  Format.fprintf fmt "@.";
  for src = 0 to m.cm_ranks - 1 do
    Format.fprintf fmt "  %8d" src;
    for dst = 0 to m.cm_ranks - 1 do
      if m.cm_messages.(src).(dst) = 0 then Format.fprintf fmt " %12s" "-"
      else
        Format.fprintf fmt " %12s"
          (Printf.sprintf "%d/%d" m.cm_messages.(src).(dst)
             m.cm_bytes.(src).(dst))
    done;
    Format.fprintf fmt "@."
  done;
  Format.fprintf fmt "  totals: %d message(s), %d byte(s)"
    (matrix_total_messages m) (matrix_total_bytes m);
  if r.r_unmatched_sends > 0 then
    Format.fprintf fmt " (%d unmatched send(s))" r.r_unmatched_sends;
  Format.fprintf fmt "@.";
  Format.fprintf fmt "critical path: %.6f s over %d link(s)@."
    r.r_critical_path_s
    (List.length r.r_critical_path);
  (* Time on the path per (rank, phase), largest first — the full link
     chain is in the json report. *)
  let path_totals = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let key = (l.pl_rank, l.pl_phase) in
      let t =
        match Hashtbl.find_opt path_totals key with Some t -> t | None -> 0.
      in
      Hashtbl.replace path_totals key (t +. l.pl_dur_s))
    r.r_critical_path;
  let rows =
    Hashtbl.fold (fun (rk, p) t acc -> (rk, p, t) :: acc) path_totals []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare (b : float) a)
  in
  List.iter
    (fun (rk, p, t) ->
      Format.fprintf fmt "  rank %d %-10s %.6f s (%.1f%% of path)@." rk
        (phase_name p) t
        (pct t r.r_critical_path_s))
    rows;
  Format.fprintf fmt "rank slack vs critical path (s):";
  Array.iteri (fun i s -> Format.fprintf fmt " r%d=%.6f" i s) r.r_slack_s;
  Format.fprintf fmt "@.";
  let ov = r.r_overlap in
  Format.fprintf fmt
    "overlap: in-flight %.6f s, exposed (blocked) %.6f s, hidden %.6f s"
    ov.ov_inflight_s ov.ov_exposed_s ov.ov_hidden_s;
  (match ov.ov_efficiency with
  | Some e -> Format.fprintf fmt ", efficiency %.1f%%@." (100. *. e)
  | None -> Format.fprintf fmt ", efficiency n/a (no matched messages)@.");
  match fit_netmodel r.r_samples with
  | None -> Format.fprintf fmt "network model: no message samples@."
  | Some nm ->
      Format.fprintf fmt
        "network model fit: alpha=%.3e s, beta=%.3e s/byte, r2=%.3f (n=%d)@."
        nm.nm_alpha_s nm.nm_beta_s_per_byte nm.nm_r2 nm.nm_samples

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let int_matrix_json (m : int array array) =
  "["
  ^ String.concat ","
      (Array.to_list
         (Array.map
            (fun row ->
              "["
              ^ String.concat "," (Array.to_list (Array.map string_of_int row))
              ^ "]")
            m))
  ^ "]"

let float_matrix_json (m : float array array) =
  "["
  ^ String.concat ","
      (Array.to_list
         (Array.map
            (fun row ->
              "["
              ^ String.concat ","
                  (Array.to_list
                     (Array.map (fun v -> Printf.sprintf "%.9g" v) row))
              ^ "]")
            m))
  ^ "]"

let report_json (r : report) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"ranks\": %d,\n" r.r_ranks);
  Buffer.add_string b "  \"breakdown\": [\n";
  Array.iteri
    (fun i bd ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"rank\": %d, \"span_s\": %.9g, \"compute_s\": %.9g, \
            \"pack_s\": %.9g, \"wait_s\": %.9g, \"unpack_s\": %.9g, \
            \"collective_s\": %.9g, \"events\": %d}%s\n"
           bd.bd_rank bd.bd_span_s bd.bd_compute_s bd.bd_pack_s bd.bd_wait_s
           bd.bd_unpack_s bd.bd_collective_s bd.bd_events
           (if i = Array.length r.r_breakdown - 1 then "" else ",")))
    r.r_breakdown;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"comm_matrix\": {\"messages\": %s, \"bytes\": %s, \"latency_s\": %s},\n"
       (int_matrix_json r.r_matrix.cm_messages)
       (int_matrix_json r.r_matrix.cm_bytes)
       (float_matrix_json r.r_matrix.cm_latency_s));
  Buffer.add_string b
    (Printf.sprintf "  \"critical_path_s\": %.9g,\n" r.r_critical_path_s);
  Buffer.add_string b "  \"critical_path\": [";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"rank\": %d, \"phase\": \"%s\", \"dur_s\": %.9g}"
           l.pl_rank
           (json_escape (phase_name l.pl_phase))
           l.pl_dur_s))
    r.r_critical_path;
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"slack_s\": [";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%.9g" s))
    r.r_slack_s;
  Buffer.add_string b "],\n";
  let ov = r.r_overlap in
  Buffer.add_string b
    (Printf.sprintf
       "  \"overlap\": {\"inflight_s\": %.9g, \"exposed_s\": %.9g, \
        \"hidden_s\": %.9g, \"efficiency\": %s},\n"
       ov.ov_inflight_s ov.ov_exposed_s ov.ov_hidden_s
       (match ov.ov_efficiency with
       | Some e -> Printf.sprintf "%.6f" e
       | None -> "null"));
  Buffer.add_string b
    (Printf.sprintf "  \"unmatched_sends\": %d,\n" r.r_unmatched_sends);
  (match fit_netmodel r.r_samples with
  | None -> Buffer.add_string b "  \"netmodel\": null\n"
  | Some nm ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"netmodel\": {\"alpha_s\": %.9g, \"beta_s_per_byte\": %.9g, \
            \"r2\": %.6f, \"samples\": %d}\n"
           nm.nm_alpha_s nm.nm_beta_s_per_byte nm.nm_r2 nm.nm_samples));
  Buffer.add_string b "}\n";
  Buffer.contents b

let netmodel_json ?(meta = []) (nm : netmodel) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"bench\": \"netmodel\",\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\": \"%s\",\n" (json_escape k) (json_escape v)))
    meta;
  Buffer.add_string b
    (Printf.sprintf
       "  \"alpha_s\": %.9g,\n  \"beta_s_per_byte\": %.9g,\n  \"r2\": %.6f,\n\
       \  \"samples\": %d\n}\n"
       nm.nm_alpha_s nm.nm_beta_s_per_byte nm.nm_r2 nm.nm_samples);
  Buffer.contents b

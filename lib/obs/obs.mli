(** Observability substrate shared by the whole stack: structured span
    tracing exportable as Chrome trace-event JSON (loadable in Perfetto),
    per-pass pipeline metrics, rewrite-pattern application counters, and
    the structured IR-dump reporter.

    All instrumentation funnels into one optional global sink and is off
    by default: every emit site first checks the sink (one load and one
    branch), so disabled builds pay no clock read, allocation or
    formatting on hot paths. *)

val now : unit -> float
(** Current clock reading in seconds (default: [Sys.time]). *)

val set_clock : (unit -> float) -> unit
(** Install a different clock (tests use a deterministic fake). *)

val enable : unit -> unit
(** Install a fresh sink, discarding any previous one. *)

val set_event_cap : int option -> unit
(** Bound the retained event buffer: keep-first semantics — once the cap
    is reached later events are counted as dropped instead of stored
    ([None] removes the bound).  Defaults to 1,000,000 events.  The
    dropped count is surfaced by {!Trace.pp_summary} and in the Chrome
    export metadata. *)

val event_cap : unit -> int option

val disable : unit -> unit

val enabled : unit -> bool

type arg = Str of string | Int of int | Float of float | Bool of bool
(** Structured event argument values. *)

type phase = Begin | End | Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;  (** seconds since the sink was installed *)
  dur : float;  (** seconds; meaningful only for [Complete] *)
  pid : int;
  tid : int;
  ev_args : (string * arg) list;
}

type pass_stat = {
  pipeline : string;
  pass_name : string;
  wall_s : float;
  verify_s : float;
  ops_before : int;
  ops_after : int;
  ir_bytes_before : int;
  ir_bytes_after : int;
  pattern_apps : (string * int) list;
      (** greedy-driver applications per named pattern during this pass *)
}

type rewrite_stat = {
  rw_pass : string;  (** the rewrite-driver run's pass label *)
  rw_driver : string;  (** "worklist" or "sweep" *)
  rw_enqueued : int;  (** worklist pushes (0 under the sweep driver) *)
  rw_processed : int;  (** ops popped / visited *)
  rw_max_depth : int;  (** high-water worklist depth *)
  rw_applied : int;  (** successful pattern applications *)
  rw_erased_dead : int;  (** trivially-dead ops the driver erased itself *)
  rw_sweeps : int;  (** full-module sweeps (sweep driver only) *)
}

(** Span tracing: begin/end spans, complete spans with explicit
    timestamps, instants and counters. *)
module Trace : sig
  val enabled : unit -> bool

  val begin_span :
    ?ts:float ->
    ?cat:string ->
    ?pid:int ->
    ?tid:int ->
    ?args:(string * arg) list ->
    string ->
    unit

  val end_span : ?ts:float -> ?pid:int -> ?tid:int -> string -> unit

  val with_span :
    ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
  (** [with_span name f] wraps [f] in a begin/end pair (exception-safe);
      when disabled it is exactly [f ()]. *)

  val complete :
    ?cat:string ->
    ?pid:int ->
    ?tid:int ->
    ?args:(string * arg) list ->
    ts:float ->
    dur:float ->
    string ->
    unit
  (** A complete span with caller-supplied timestamp and duration (used
      when converting external timelines, e.g. simulated MPI ranks). *)

  val instant :
    ?ts:float ->
    ?cat:string ->
    ?pid:int ->
    ?tid:int ->
    ?args:(string * arg) list ->
    string ->
    unit

  val counter : ?ts:float -> ?pid:int -> ?tid:int -> string -> float -> unit

  val events : unit -> event list
  (** In emission order; empty when disabled. *)

  val event_count : unit -> int
  (** Retained events (those past the cap are not counted here). *)

  val dropped_events : unit -> int
  (** Events discarded because the buffer cap was reached; 0 when
      disabled or unbounded. *)

  val open_spans : unit -> int
  (** Outstanding [Begin] without matching [End]; 0 when balanced. *)

  val to_chrome_json : unit -> string
  (** The whole sink as a Chrome trace-event JSON document. *)

  val write_chrome_json : string -> unit
  (** Write {!to_chrome_json} to a file path. *)

  val pp_summary : Format.formatter -> unit -> unit
  (** Human-readable per-span-name time totals. *)
end

(** Per-pass pipeline metrics recorded by the pass manager. *)
module Passes : sig
  val record : pass_stat -> unit
  val stats : unit -> pass_stat list
  val clear : unit -> unit

  val pp_table : Format.formatter -> unit -> unit
  (** Render the recorded stats as an aligned table (nothing when no
      stats were recorded). *)
end

(** Per-run counters recorded by the {!Ir.Rewriter} drivers. *)
module Rewrites : sig
  val record : rewrite_stat -> unit
  val stats : unit -> rewrite_stat list
  val clear : unit -> unit

  val pp_table : Format.formatter -> unit -> unit
  (** Render the recorded driver counters as an aligned table (nothing
      when none were recorded). *)
end

(** Rewrite-pattern application counters (fed by the greedy driver). *)
module Patterns : sig
  val note : string -> unit
  (** Count one application of the named pattern (no-op when disabled). *)

  val counts : unit -> (string * int) list
  (** Cumulative counts, sorted by name. *)

  val diff : (string * int) list -> (string * int) list
  (** [diff snapshot] is the per-name increase of {!counts} since
      [snapshot], dropping zero entries. *)
end

(** Structured reporters: labeled IR dumps (print-after-all). *)
module Report : sig
  val set_formatter : Format.formatter -> unit
  val formatter : unit -> Format.formatter

  val ir_dump :
    pipeline:string -> pass:string -> (Format.formatter -> unit) -> unit
  (** Emit one labeled after-pass IR dump through the reporter. *)
end

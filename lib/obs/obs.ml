(* Observability substrate shared by the whole stack: structured span
   tracing with a Chrome-trace-event exporter, per-pass pipeline metrics,
   rewrite-pattern application counters, and the structured IR-dump
   reporter used by print-after-all.

   Everything funnels into one optional global sink.  Instrumentation is
   off by default: every emit site first matches on the sink option (one
   load and one branch), so a disabled build pays no allocation, no
   formatting and no clock read on the hot paths. *)

(* --- clock --- *)

(* [Sys.time] (processor time) keeps the library dependency-free and is
   plenty for pass-level profiling; tests install a deterministic fake
   clock through [set_clock]. *)
let clock : (unit -> float) ref = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()

(* --- events --- *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type phase = Begin | End | Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float; (* seconds since the sink was installed *)
  dur : float; (* seconds; meaningful only for [Complete] *)
  pid : int;
  tid : int;
  ev_args : (string * arg) list;
}

type pass_stat = {
  pipeline : string;
  pass_name : string;
  wall_s : float;
  verify_s : float;
  ops_before : int;
  ops_after : int;
  ir_bytes_before : int;
  ir_bytes_after : int;
  pattern_apps : (string * int) list;
}

type rewrite_stat = {
  rw_pass : string;
  rw_driver : string;
  rw_enqueued : int;
  rw_processed : int;
  rw_max_depth : int;
  rw_applied : int;
  rw_erased_dead : int;
  rw_sweeps : int;
}

type sink = {
  t0 : float;
  mutable rev_events : event list;
  mutable n_events : int;
  mutable dropped_events : int;
  mutable open_spans : int;
  mutable rev_pass_stats : pass_stat list;
  mutable rev_rewrite_stats : rewrite_stat list;
  pattern_counts : (string, int) Hashtbl.t;
}

let current : sink option ref = ref None

let enabled () = !current <> None

(* Keep-first cap on the retained event list: long mpi_par runs would
   otherwise grow it without bound.  The earliest [cap] events are kept
   (they carry setup and the first iterations — the interesting part of a
   runaway trace); later ones are counted as dropped. *)
let default_event_cap = 1_000_000
let event_cap_ref : int option ref = ref (Some default_event_cap)
let set_event_cap c = event_cap_ref := c
let event_cap () = !event_cap_ref

let enable () =
  current :=
    Some
      {
        t0 = now ();
        rev_events = [];
        n_events = 0;
        dropped_events = 0;
        open_spans = 0;
        rev_pass_stats = [];
        rev_rewrite_stats = [];
        pattern_counts = Hashtbl.create 32;
      }

let disable () = current := None

(* --- span tracing --- *)

module Trace = struct
  let enabled = enabled

  let push s ev =
    match !event_cap_ref with
    | Some cap when s.n_events >= cap ->
        s.dropped_events <- s.dropped_events + 1
    | _ ->
        s.rev_events <- ev :: s.rev_events;
        s.n_events <- s.n_events + 1

  let emit ?ts ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ?(dur = 0.) ph
      name =
    match !current with
    | None -> ()
    | Some s ->
        let ts = match ts with Some t -> t | None -> now () -. s.t0 in
        push s { name; cat; ph; ts; dur; pid; tid; ev_args = args }

  let begin_span ?ts ?cat ?pid ?tid ?args name =
    (match !current with
    | None -> ()
    | Some s -> s.open_spans <- s.open_spans + 1);
    emit ?ts ?cat ?pid ?tid ?args Begin name

  let end_span ?ts ?pid ?tid name =
    (match !current with
    | None -> ()
    | Some s -> s.open_spans <- s.open_spans - 1);
    emit ?ts ?pid ?tid End name

  let with_span ?cat ?args name f =
    match !current with
    | None -> f ()
    | Some _ ->
        begin_span ?cat ?args name;
        Fun.protect ~finally: (fun () -> end_span name) f

  let complete ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~ts ~dur name =
    emit ~ts ~cat ~pid ~tid ~args ~dur Complete name

  let instant ?ts ?cat ?pid ?tid ?args name =
    emit ?ts ?cat ?pid ?tid ?args Instant name

  let counter ?ts ?pid ?tid name v =
    emit ?ts ?pid ?tid ~args: [ ("value", Float v) ] Counter name

  let events () =
    match !current with None -> [] | Some s -> List.rev s.rev_events

  let event_count () = match !current with None -> 0 | Some s -> s.n_events

  let dropped_events () =
    match !current with None -> 0 | Some s -> s.dropped_events

  let open_spans () =
    match !current with None -> 0 | Some s -> s.open_spans

  (* --- Chrome trace-event JSON (Perfetto / chrome://tracing) --- *)

  let json_escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let add_json_arg b (k, v) =
    Buffer.add_char b '"';
    json_escape b k;
    Buffer.add_string b "\":";
    match v with
    | Str s ->
        Buffer.add_char b '"';
        json_escape b s;
        Buffer.add_char b '"'
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
    | Bool v -> Buffer.add_string b (if v then "true" else "false")

  let phase_letter = function
    | Begin -> "B"
    | End -> "E"
    | Complete -> "X"
    | Instant -> "i"
    | Counter -> "C"

  let add_json_event b ev =
    Buffer.add_string b "{\"name\":\"";
    json_escape b ev.name;
    Buffer.add_string b "\",\"cat\":\"";
    json_escape b (if ev.cat = "" then "default" else ev.cat);
    Buffer.add_string b "\",\"ph\":\"";
    Buffer.add_string b (phase_letter ev.ph);
    Buffer.add_string b (Printf.sprintf "\",\"ts\":%.3f" (ev.ts *. 1e6));
    if ev.ph = Complete then
      Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" (ev.dur *. 1e6));
    if ev.ph = Instant then Buffer.add_string b ",\"s\":\"t\"";
    Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" ev.pid ev.tid);
    (match ev.ev_args with
    | [] -> ()
    | args ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_char b ',';
            add_json_arg b a)
          args;
        Buffer.add_char b '}');
    Buffer.add_char b '}'

  let to_chrome_json () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_string b ",\n";
        add_json_event b ev)
      (events ());
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\"";
    let dropped = dropped_events () in
    if dropped > 0 then
      Buffer.add_string b
        (Printf.sprintf ",\"metadata\":{\"droppedEvents\":%d}" dropped);
    Buffer.add_string b "}\n";
    Buffer.contents b

  let write_chrome_json path =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_chrome_json ()))

  (* --- human-readable summary: time per span name --- *)

  let pp_summary fmt () =
    (* Match Begin/End pairs per (pid, tid) with a stack; Complete events
       contribute their duration directly. *)
    let totals : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
    let stacks : (int * int, (string * float) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let stack_of k =
      match Hashtbl.find_opt stacks k with
      | Some st -> st
      | None ->
          let st = ref [] in
          Hashtbl.add stacks k st;
          st
    in
    let account name dur =
      let t, n =
        match Hashtbl.find_opt totals name with
        | Some tn -> tn
        | None -> (0., 0)
      in
      Hashtbl.replace totals name (t +. dur, n + 1)
    in
    List.iter
      (fun ev ->
        let st = stack_of (ev.pid, ev.tid) in
        match ev.ph with
        | Begin -> st := (ev.name, ev.ts) :: !st
        | End -> (
            match !st with
            | (name, t0) :: rest when name = ev.name ->
                st := rest;
                account name (ev.ts -. t0)
            | _ -> account ev.name 0.)
        | Complete -> account ev.name ev.dur
        | Instant | Counter -> ())
      (events ());
    let rows =
      Hashtbl.fold (fun name (t, n) acc -> (name, t, n) :: acc) totals []
    in
    let rows =
      List.sort (fun (_, a, _) (_, b, _) -> compare (b : float) a) rows
    in
    (match dropped_events () with
    | 0 -> Format.fprintf fmt "// trace summary: %d event(s)@." (event_count ())
    | d ->
        Format.fprintf fmt
          "// trace summary: %d event(s) (+%d dropped at buffer cap)@."
          (event_count ()) d);
    List.iter
      (fun (name, t, n) ->
        Format.fprintf fmt "//   %-40s %4d span(s) %10.3f ms@." name n
          (t *. 1e3))
      rows
end

(* --- per-pass pipeline metrics --- *)

module Passes = struct
  let record st =
    match !current with
    | None -> ()
    | Some s -> s.rev_pass_stats <- st :: s.rev_pass_stats

  let stats () =
    match !current with None -> [] | Some s -> List.rev s.rev_pass_stats

  let clear () =
    match !current with None -> () | Some s -> s.rev_pass_stats <- []

  let pp_table fmt () =
    let sts = stats () in
    if sts <> [] then begin
      Format.fprintf fmt
        "// %-14s %-32s %9s %9s %13s %13s %s@." "pipeline" "pass" "wall ms"
        "verify ms" "ops" "IR bytes" "pattern apps";
      List.iter
        (fun st ->
          let apps =
            match st.pattern_apps with
            | [] -> "-"
            | apps ->
                String.concat ", "
                  (List.map
                     (fun (name, n) -> Printf.sprintf "%s:%d" name n)
                     apps)
          in
          Format.fprintf fmt
            "// %-14s %-32s %9.3f %9.3f %5d->%-6d %6d->%-6d %s@."
            st.pipeline st.pass_name (st.wall_s *. 1e3)
            (st.verify_s *. 1e3) st.ops_before st.ops_after
            st.ir_bytes_before st.ir_bytes_after apps)
        sts
    end
end

(* --- rewrite-driver counters (worklist/sweep, per pass run) --- *)

module Rewrites = struct
  let record st =
    match !current with
    | None -> ()
    | Some s -> s.rev_rewrite_stats <- st :: s.rev_rewrite_stats

  let stats () =
    match !current with None -> [] | Some s -> List.rev s.rev_rewrite_stats

  let clear () =
    match !current with None -> () | Some s -> s.rev_rewrite_stats <- []

  let pp_table fmt () =
    let sts = stats () in
    if sts <> [] then begin
      Format.fprintf fmt "// %-32s %-8s %9s %9s %9s %8s %7s %6s@." "rewrite pass"
        "driver" "enqueued" "processed" "max-depth" "applied" "erased"
        "sweeps";
      List.iter
        (fun st ->
          Format.fprintf fmt "// %-32s %-8s %9d %9d %9d %8d %7d %6d@."
            st.rw_pass st.rw_driver st.rw_enqueued st.rw_processed
            st.rw_max_depth st.rw_applied st.rw_erased_dead st.rw_sweeps)
        sts
    end
end

(* --- rewrite-pattern application counters --- *)

module Patterns = struct
  let note name =
    match !current with
    | None -> ()
    | Some s ->
        let n =
          match Hashtbl.find_opt s.pattern_counts name with
          | Some n -> n
          | None -> 0
        in
        Hashtbl.replace s.pattern_counts name (n + 1)

  let counts () =
    match !current with
    | None -> []
    | Some s ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.pattern_counts []
        |> List.sort compare

  let diff before =
    let base name =
      match List.assoc_opt name before with Some n -> n | None -> 0
    in
    List.filter_map
      (fun (name, n) ->
        let d = n - base name in
        if d > 0 then Some (name, d) else None)
      (counts ())
end

(* --- structured reporters (print-after-all and friends) --- *)

module Report = struct
  let fmt_ref = ref Format.err_formatter
  let set_formatter fmt = fmt_ref := fmt
  let formatter () = !fmt_ref

  let ir_dump ~pipeline ~pass pp =
    let fmt = !fmt_ref in
    Format.fprintf fmt "// ----- IR dump after pass '%s' (pipeline '%s') -----@." pass
      pipeline;
    pp fmt;
    Format.pp_print_newline fmt ()
end

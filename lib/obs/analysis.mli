(** Timeline analytics: the decision-making layer over recorded MPI
    substrate timelines.

    [Obs] and the substrates record raw events (isend/irecv/wait spans,
    pcontrol phases); this module turns one run's
    {!Mpi_intf.timeline_event} list into answers: a per-rank
    compute/pack/wait/unpack/collective breakdown, a rank{^ 2}
    communication matrix whose byte totals reconcile with the timeline's
    [Isend] edge bytes, the critical path through the happens-before
    graph induced by send->recv edges, an overlap-efficiency figure
    (hidden-communication time over total in-flight time), and the
    matched (bytes, latency) message samples an alpha-beta network-model
    fit is computed from.

    Everything here is pure: no clocks, no global state.  Timestamps are
    whatever the substrate stamped — wall-clock seconds on [mpi_par]
    (where latencies and the fitted model are physical), the
    deterministic logical clock on [mpi_sim] (where the same analyses
    describe structure: event counts, orderings, message edges). *)

(** Phase classification of one slice of a rank's time.  [Flight] only
    appears on critical-path links (a message in the network between two
    ranks); rank breakdowns use the other five. *)
type phase = Compute | Pack | Exchange_wait | Unpack | Collective_phase | Flight

val phase_name : phase -> string

type rank_phases = {
  bd_rank : int;
  bd_span_s : float;  (** last event ts - first event ts on this rank *)
  bd_compute_s : float;  (** residual: not in any tracked phase *)
  bd_pack_s : float;  (** inside pcontrol "pack" spans *)
  bd_wait_s : float;  (** blocked in wait/waitall on halo exchanges *)
  bd_unpack_s : float;  (** inside pcontrol "unpack" spans *)
  bd_collective_s : float;  (** blocked in collective-tag waits *)
  bd_events : int;
}
(** The five phase durations sum to [bd_span_s] (up to float addition
    error): every inter-event gap is attributed to exactly one phase. *)

type comm_matrix = {
  cm_ranks : int;
  cm_messages : int array array;  (** [(src).(dst)] message count *)
  cm_bytes : int array array;  (** [(src).(dst)] accounted payload bytes *)
  cm_latency_s : float array array;
      (** [(src).(dst)] summed in-flight time (send post to matched
          receive completion) over matched messages on that edge *)
}

val matrix_total_messages : comm_matrix -> int
val matrix_total_bytes : comm_matrix -> int

type msg_sample = {
  ms_src : int;
  ms_dst : int;
  ms_tag : int;
  ms_bytes : int;
  ms_send_ts : float;
  ms_recv_ts : float;  (** >= [ms_send_ts]; clamped if clocks raced *)
}
(** One matched [Isend] -> [Recv_complete] pair (FIFO per (src, dst,
    tag), mirroring both substrates' matching rule). *)

type path_link = {
  pl_rank : int;  (** receiving rank for [Flight] links *)
  pl_phase : phase;
  pl_dur_s : float;
}

type overlap_stats = {
  ov_inflight_s : float;  (** total in-flight time of matched messages *)
  ov_exposed_s : float;  (** total time ranks sat blocked in exchange waits *)
  ov_hidden_s : float;  (** max 0 (inflight - exposed) *)
  ov_efficiency : float option;
      (** hidden / inflight; [None] when no messages were matched *)
}

type report = {
  r_ranks : int;
  r_breakdown : rank_phases array;  (** indexed by rank *)
  r_matrix : comm_matrix;
  r_critical_path : path_link list;
      (** merged (rank, phase, duration) links, run start to run end *)
  r_critical_path_s : float;
      (** length of the longest happens-before chain; at least the
          longest single-rank span *)
  r_slack_s : float array;
      (** per rank: critical path length minus that rank's span *)
  r_overlap : overlap_stats;
  r_samples : msg_sample list;  (** calibration input, matched order *)
  r_unmatched_sends : int;  (** Isend events with no Recv_complete *)
}

val analyze : ranks:int -> Mpi_intf.timeline_event list -> report
(** Analyze one run's timeline (as returned by a substrate's [timeline]
    accessor, any event order — events are re-sorted by [seq]). *)

(** {1 Network-model calibration} *)

type netmodel = {
  nm_alpha_s : float;  (** fixed per-message latency (seconds) *)
  nm_beta_s_per_byte : float;  (** per-byte transfer cost (seconds) *)
  nm_r2 : float;  (** coefficient of determination of the fit *)
  nm_samples : int;
}
(** Least-squares alpha-beta model [duration = alpha + beta * bytes] over
    observed message samples — the postal model the ROADMAP's simulated
    scale-out replays need. *)

val fit_netmodel : msg_sample list -> netmodel option
(** [None] when there are no samples.  With a single sample or zero
    byte-size variance the slope is 0 and alpha is the mean duration. *)

(** {1 Rendering} *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable multi-section report (breakdown table, comm matrix,
    critical path, overlap, fit). *)

val report_json : report -> string
(** The whole report as a JSON document (machine-readable [--report=json]
    form). *)

val netmodel_json : ?meta:(string * string) list -> netmodel -> string
(** BENCH_netmodel.json payload; [meta] adds extra string fields (e.g.
    substrate, workload list). *)

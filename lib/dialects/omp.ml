(* A miniature omp dialect: a parallel region wrapping a loop nest.  The
   interpreter runs the body sequentially (it is the bitwise oracle); the
   compiled executor schedules the wrapped scf.parallel onto a per-rank
   worker pool of domains; the machine model charges a fork/join barrier
   per region — the effect behind the paper's tracer advection findings
   (one omp.parallel per scf.parallel after conversion). *)

open Ir

let parallel = "omp.parallel"

(* [num_threads = 0] means "unset" (the runtime's threads-per-rank knob
   decides); anything negative is a caller bug, rejected here rather than
   silently dropped.  [tile] records the cache-block sizes the tiled
   lowering chose, so tiled and untiled modules are distinguishable (and
   ablatable) at the IR level. *)
let parallel_op b ?(num_threads = 0) ?tile body =
  if num_threads < 0 then
    invalid_arg
      (Printf.sprintf "Omp.parallel_op: num_threads must be positive (got %d)"
         num_threads);
  let region = Builder.region_of body in
  let attrs =
    (if num_threads > 0 then
       [ ("num_threads", Typesys.Int_attr (num_threads, Typesys.i64)) ]
     else [])
    @
    match tile with
    | Some ts when ts <> [] -> [ ("tile", Typesys.Dense_attr ts) ]
    | _ -> []
  in
  Builder.emit0 b parallel ~attrs ~regions: [ region ]

(* The region's requested thread count: 0 when unset (runtime decides). *)
let num_threads_of (op : Op.t) : int =
  match Op.attr op "num_threads" with
  | Some (Typesys.Int_attr (n, _)) -> n
  | _ -> 0

let tile_of (op : Op.t) : int list =
  match Op.attr op "tile" with Some (Typesys.Dense_attr ts) -> ts | _ -> []

(* Count omp.parallel regions in a module: the machine model's input for
   fork/join overhead. *)
let count_regions m =
  Op.fold (fun n op -> if op.Op.name = parallel then n + 1 else n) 0 m

let checks : Verifier.check list =
  [
    Verifier.for_op parallel (fun op ->
        if List.length op.Op.regions <> 1 then
          Error "omp.parallel needs exactly one region"
        else
          match Op.attr op "num_threads" with
          | Some (Typesys.Int_attr (n, _)) when n <= 0 ->
              Error
                (Printf.sprintf
                   "omp.parallel: num_threads must be positive (got %d)" n)
          | Some (Typesys.Int_attr _) | None -> (
              match Op.attr op "tile" with
              | Some (Typesys.Dense_attr ts)
                when List.exists (fun t -> t <= 0) ts ->
                  Error "omp.parallel: tile sizes must be positive"
              | Some (Typesys.Dense_attr _) | None -> (
                  (* The op has no results, so a region yielding values
                     would have them silently dropped — a lowering bug
                     the executors also refuse at runtime. *)
                  match op.Op.regions with
                  | [ r ] -> (
                      match List.rev (Op.region_ops r) with
                      | last :: _
                        when last.Op.name = "scf.yield"
                             && last.Op.operands <> [] ->
                          Error
                            "omp.parallel: region must not yield values \
                             (the op has no results)"
                      | _ -> Ok ())
                  | _ -> Ok ())
              | Some _ ->
                  Error "omp.parallel: tile must be a dense int array")
          | Some _ -> Error "omp.parallel: num_threads must be an integer");
  ]

(* The memref dialect: statically shaped memory buffers with load/store. *)

open Ir

let alloc = "memref.alloc"
let dealloc = "memref.dealloc"
let load = "memref.load"
let store = "memref.store"
let copy = "memref.copy"
let copy_strided = "memref.copy_strided"
let extract_ptr = "memref.extract_ptr"

let alloc_op b shape elt =
  Builder.emit1 b alloc (Typesys.Memref (shape, elt))

let dealloc_op b m = Builder.emit0 b dealloc ~operands: [ m ]

let load_op b m indices =
  let elt =
    match Value.ty m with
    | Typesys.Memref (_, t) -> t
    | t ->
        Op.ill_formed "memref.load on non-memref type %s"
          (Typesys.ty_to_string t)
  in
  Builder.emit1 b load elt ~operands: (m :: indices)

let store_op b value m indices =
  Builder.emit0 b store ~operands: ((value :: m :: indices))

let copy_op b ~src ~dst = Builder.emit0 b copy ~operands: [ src; dst ]

(* Bulk strided copy of a rectangular box between two memrefs.  All geometry
   is static (attributes): [sizes] is the box shape, the offsets are linear
   indices into each memref's row-major storage and the strides are each
   memref's row-major strides over the box dimensions.  This is the bulk
   halo pack/unpack primitive: one op replaces a scalar load/store loop
   nest, and both executors implement it as Array.blit runs. *)
let copy_strided_op b ~src ~dst ~(sizes : int list) ~(src_offset : int)
    ~(src_strides : int list) ~(dst_offset : int) ~(dst_strides : int list) =
  Builder.emit0 b copy_strided ~operands: [ src; dst ]
    ~attrs:
      [
        ("sizes", Typesys.Dense_attr sizes);
        ("src_offset", Typesys.Int_attr (src_offset, Typesys.Index));
        ("src_strides", Typesys.Dense_attr src_strides);
        ("dst_offset", Typesys.Int_attr (dst_offset, Typesys.Index));
        ("dst_strides", Typesys.Dense_attr dst_strides);
      ]

type strided_spec = {
  cs_sizes : int list;
  cs_src_offset : int;
  cs_src_strides : int list;
  cs_dst_offset : int;
  cs_dst_strides : int list;
}

let strided_spec_of (op : Op.t) : strided_spec =
  {
    cs_sizes = Op.dense_attr_exn op "sizes";
    cs_src_offset = Op.int_attr_exn op "src_offset";
    cs_src_strides = Op.dense_attr_exn op "src_strides";
    cs_dst_offset = Op.int_attr_exn op "dst_offset";
    cs_dst_strides = Op.dense_attr_exn op "dst_strides";
  }

(* Extract an opaque pointer to the buffer, used by the mpi-to-func lowering
   (the analogue of unwrapping a memref into an !llvm.ptr). *)
let extract_ptr_op b m = Builder.emit1 b extract_ptr Typesys.Ptr ~operands: [ m ]

let shape_of v =
  match Value.ty v with
  | Typesys.Memref (shape, _) -> shape
  | t ->
      Op.ill_formed "expected memref, got %s" (Typesys.ty_to_string t)

let checks : Verifier.check list =
  [
    Verifier.for_op load (fun op ->
        match op.Op.operands with
        | m :: indices -> (
            match Value.ty m with
            | Typesys.Memref (shape, elt) ->
                if List.length indices <> List.length shape then
                  Error "load index count must match memref rank"
                else if
                  not
                    (List.for_all
                       (fun i -> Value.ty i = Typesys.Index)
                       indices)
                then Error "load indices must be index-typed"
                else if
                  match op.Op.results with
                  | [ r ] -> Typesys.equal_ty (Value.ty r) elt
                  | _ -> false
                then Ok ()
                else Error "load result must be the memref element type"
            | _ -> Error "load base must be a memref")
        | [] -> Error "load needs a memref operand");
    Verifier.for_op store (fun op ->
        match op.Op.operands with
        | v :: m :: indices -> (
            match Value.ty m with
            | Typesys.Memref (shape, elt) ->
                if List.length indices <> List.length shape then
                  Error "store index count must match memref rank"
                else if not (Typesys.equal_ty (Value.ty v) elt) then
                  Error "stored value must be the memref element type"
                else Ok ()
            | _ -> Error "store base must be a memref")
        | _ -> Error "store needs value and memref operands");
    Verifier.for_op alloc (fun op ->
        match op.Op.results with
        | [ r ] -> (
            match Value.ty r with
            | Typesys.Memref _ -> Ok ()
            | _ -> Error "alloc result must be a memref")
        | _ -> Error "alloc has exactly one result");
    Verifier.for_op copy_strided (fun op ->
        match op.Op.operands with
        | [ src; dst ] -> (
            match (Value.ty src, Value.ty dst) with
            | Typesys.Memref (sshape, selt), Typesys.Memref (dshape, delt) ->
                let spec = strided_spec_of op in
                let rank = List.length spec.cs_sizes in
                let numel shape = List.fold_left ( * ) 1 shape in
                (* Largest linear index the box touches on one side. *)
                let reach off strides =
                  List.fold_left2
                    (fun acc size stride -> acc + ((size - 1) * stride))
                    off spec.cs_sizes strides
                in
                if not (Typesys.equal_ty selt delt) then
                  Error "copy_strided element types must match"
                else if
                  List.length spec.cs_src_strides <> rank
                  || List.length spec.cs_dst_strides <> rank
                then Error "copy_strided sizes/strides ranks must match"
                else if spec.cs_src_offset < 0 || spec.cs_dst_offset < 0 then
                  Error "copy_strided offsets must be non-negative"
                else if op.Op.results <> [] then
                  Error "copy_strided has no results"
                else if List.exists (fun s -> s <= 0) spec.cs_sizes then
                  Ok () (* empty box: nothing to check *)
                else if
                  reach spec.cs_src_offset spec.cs_src_strides >= numel sshape
                then Error "copy_strided reads out of bounds of its source"
                else if
                  reach spec.cs_dst_offset spec.cs_dst_strides >= numel dshape
                then Error "copy_strided writes out of bounds of its destination"
                else Ok ()
            | _ -> Error "copy_strided operands must be memrefs")
        | _ -> Error "copy_strided takes (src, dst) memref operands");
  ]

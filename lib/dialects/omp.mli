(** A miniature omp dialect: a parallel region wrapping a loop nest.  The
    machine model charges a fork/join barrier per region — the effect
    behind the paper's tracer-advection findings. *)

open Ir

val parallel : string

val parallel_op :
  Builder.t -> ?num_threads:int -> ?tile:int list -> (Builder.t -> unit) -> unit
(** [num_threads <= 0] is rejected ([0] = unset, the runtime knob
    decides); [tile] stamps the cache-block sizes the tiled lowering
    chose as a dense attribute. *)

val num_threads_of : Op.t -> int
(** The region's requested thread count; [0] when unset. *)

val tile_of : Op.t -> int list
(** The region's cache-block sizes; [[]] when untiled. *)

val count_regions : Op.t -> int
(** omp.parallel regions in a module: the fork/join overhead input. *)

val checks : Verifier.check list

(** The memref dialect: statically shaped memory buffers. *)

open Ir

val alloc : string
val dealloc : string
val load : string
val store : string
val copy : string
val copy_strided : string
val extract_ptr : string

val alloc_op : Builder.t -> int list -> Typesys.ty -> Value.t
val dealloc_op : Builder.t -> Value.t -> unit
val load_op : Builder.t -> Value.t -> Value.t list -> Value.t
val store_op : Builder.t -> Value.t -> Value.t -> Value.t list -> unit
val copy_op : Builder.t -> src:Value.t -> dst:Value.t -> unit

val copy_strided_op :
  Builder.t ->
  src:Value.t ->
  dst:Value.t ->
  sizes:int list ->
  src_offset:int ->
  src_strides:int list ->
  dst_offset:int ->
  dst_strides:int list ->
  unit
(** Bulk strided copy of a rectangular box between two memrefs, with all
    geometry static: [sizes] is the box shape, the offsets are linear
    indices into each memref's row-major storage, and the strides are each
    memref's row-major strides along the box dimensions.  The bulk halo
    pack/unpack primitive — executors implement it as [Array.blit] runs
    over the contiguous innermost dimension. *)

type strided_spec = {
  cs_sizes : int list;
  cs_src_offset : int;
  cs_src_strides : int list;
  cs_dst_offset : int;
  cs_dst_strides : int list;
}

val strided_spec_of : Op.t -> strided_spec
(** Decode a [copy_strided] op's geometry attributes. *)

val extract_ptr_op : Builder.t -> Value.t -> Value.t
(** Extract an opaque pointer to the buffer (the memref unwrapping of the
    mpi-to-func lowering). *)

val shape_of : Value.t -> int list

val checks : Verifier.check list

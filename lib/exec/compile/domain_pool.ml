(* A persistent pool of worker domains for executing omp.parallel regions
   in the compiled backend.

   One pool per rank instance, created at [Executor.instantiate] time and
   torn down by [Executor.release]: OCaml caps the number of live domains
   (around 128), so workers must be joined deterministically rather than
   leaked — a bench sweep or a qcheck suite would exhaust the cap in a few
   iterations otherwise.

   Shape: a pool of [n] participants holds [n - 1] worker domains; the
   caller itself is participant 0, so a pool of size 1 spawns nothing and
   [run] degenerates to a plain call.  Jobs are broadcast through a
   mutex/condvar pair with an epoch counter (workers wait for the epoch to
   advance, so a slow worker can never re-run a stale job), and [run]
   returns only after every participant finished — the job closures
   share buffers with the caller's frame, so returning earlier would
   race.  The first exception any participant raises is re-raised from
   [run] after the join barrier. *)

type t = {
  size : int;  (* participants, including the caller *)
  m : Mutex.t;
  cv : Condition.t;
  mutable epoch : int;
  mutable job : (int -> unit) option;
  mutable active : int;  (* workers still inside the current job *)
  mutable shutdown : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t array;
}

let size t = t.size

let worker_loop t index () =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while t.epoch = !last && not t.shutdown do
      Condition.wait t.cv t.m
    done;
    if t.shutdown then Mutex.unlock t.m
    else begin
      last := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      let outcome = try Ok (job index) with e -> Error e in
      Mutex.lock t.m;
      (match outcome with
      | Ok () -> ()
      | Error e -> if t.failure = None then t.failure <- Some e);
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.cv;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size = n;
      m = Mutex.create ();
      cv = Condition.create ();
      epoch = 0;
      job = None;
      active = 0;
      shutdown = false;
      failure = None;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (n - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
  t

let run t (f : int -> unit) : unit =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.m;
    if t.shutdown then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    t.job <- Some f;
    t.failure <- None;
    t.active <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    (* The caller is participant 0.  Its exception must still wait for
       the workers — they share frame buffers with the caller. *)
    let mine = try Ok (f 0) with e -> Error e in
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.cv t.m
    done;
    t.job <- None;
    let worker_failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match (mine, worker_failure) with
    | Error e, _ -> raise e
    | Ok (), Some e -> raise e
    | Ok (), None -> ()
  end

(* Idempotent: the executor's [release] may run under Fun.protect on
   paths that already shut the pool down explicitly. *)
let shutdown t =
  Mutex.lock t.m;
  let already = t.shutdown in
  t.shutdown <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if not already then Array.iter Domain.join t.workers

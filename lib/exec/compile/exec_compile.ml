(* Ahead-of-time closure compiler for fully lowered modules: the "compiled"
   executor of the [Interp.Executor.EXECUTOR] seam.

   The reference interpreter pays one hashtable lookup per SSA operand, a
   list allocation per op and a string dispatch on the op name inside the
   innermost stencil loop.  This backend removes all of that by staging the
   module into OCaml closures once, ahead of execution (the classic first
   Futamura projection, the same move MLIR's ExecutionEngine makes by
   JIT-compiling to LLVM):

   - every SSA value is resolved at compile time to a fixed integer slot in
     a flat frame; scalars are stored unboxed (an [int array] for
     int/index-typed values, a [float array] for float-typed values, an
     [Interp.Rtval.t array] for buffers and the rest), so the hot
     memref load/compute/store chains never allocate;
   - each op and region is compiled exactly once into a [frame -> unit]
     closure; loops re-run the closure, not the compiler;
   - external calls (the MPI_* symbols a fully lowered module contains) are
     pre-bound at compile time: the dispatch op handed to the externs
     handler is built once per call site, and arguments are boxed only at
     this boundary.

   Supported input is everything [Driver.Runtime_link] feeds the
   interpreter after full lowering — func/scf/arith/memref plus
   llvm-style external calls — as well as the mpi/dmp dialect ops (which
   dispatch to the externs handler like any unknown op).  Ops that require
   interpretation at a higher level (stencil.*, gpu.launch, hls streams)
   raise [Unsupported] at compile time; the interpreter remains the
   executor — and the differential-testing oracle — for those.

   Compilation is rank-independent: the extern handler is NOT baked into
   the closures — they read it from the executing frame — so one compiled
   module ([cmodule], immutable once [compile] returns) is shared by
   every rank, and [instantiate] only pairs it with a rank's externs.
   That is the once-per-program / once-per-rank split the artifact cache
   ([Service.Artifact]) builds on: N ranks perform exactly one closure
   compilation between them instead of one each. *)

open Ir
module R = Interp.Rtval

(* Re-exported: the library's entry module shadows its siblings, and the
   pool is part of the executor's public surface (tests drive it
   directly). *)
module Domain_pool = Domain_pool

exception Unsupported of string

let unsupported fmt =
  Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ---------- frames and slots ---------- *)

(* [ext] is the per-rank extern handler: keeping it in the frame (rather
   than capturing it in the compiled closures) is what makes compilation
   rank-independent.  [pool] is the rank's omp worker pool ([None] on
   sequential instances and inside worker frames — workers never spawn
   nested parallelism). *)
type frame = {
  ints : int array;
  flts : float array;
  objs : R.t array;
  ext : Interp.Executor.externs;
  pool : Domain_pool.t option;
}

type kind = Kint | Kflt | Kobj

let kind_of_ty (t : Typesys.ty) : kind =
  match t with
  | Typesys.Int _ | Typesys.Index -> Kint
  | Typesys.Float _ -> Kflt
  | _ -> Kobj

type slot = kind * int

(* A compiled single-block region body: straight-line statements plus
   readers for the terminator's operands (empty when the block does not
   end in scf.yield / func.return / stencil.return). *)
type cblock = {
  stmts : (frame -> unit) array;
  ret : (frame -> R.t) array;
}

type cfunc = {
  cf_name : string;
  cf_params : slot array;
  cf_n_int : int;
  cf_n_flt : int;
  cf_n_obj : int;
  cf_body : cblock;
}

(* The rank-independent compiled module: immutable after [compile]
   returns (every function with a body is compiled eagerly), so it is
   safe to share across domains and to cache across runs. *)
type cmodule = {
  funcs : (string, Op.t) Hashtbl.t;  (* source functions by sym_name *)
  compiled : (string, cfunc) Hashtbl.t;
}

(* A per-rank instance: the shared compiled module plus this rank's
   extern handler and (optional) omp worker pool. *)
type prog = {
  cm : cmodule;
  prog_externs : Interp.Executor.externs;
  prog_pool : Domain_pool.t option;
}

(* Per-function compilation state: the slot table maps SSA value ids to
   their frame slot; counters size the three frame arrays.  [omp_nt] is
   [Some n] while compiling the body of an omp.parallel region carrying
   num_threads=[n] (0 when the attribute is unset): scf.parallel ops seen
   under it compile to pool-scheduled loops. *)
type fctx = {
  cm : cmodule;
  slots : (int, slot) Hashtbl.t;
  mutable n_int : int;
  mutable n_flt : int;
  mutable n_obj : int;
  mutable omp_nt : int option;
}

let def (f : fctx) (v : Value.t) : slot =
  let k = kind_of_ty (Value.ty v) in
  let s =
    match k with
    | Kint ->
        let s = f.n_int in
        f.n_int <- s + 1;
        (Kint, s)
    | Kflt ->
        let s = f.n_flt in
        f.n_flt <- s + 1;
        (Kflt, s)
    | Kobj ->
        let s = f.n_obj in
        f.n_obj <- s + 1;
        (Kobj, s)
  in
  Hashtbl.replace f.slots (Value.id v) s;
  s

let slot_exn (f : fctx) (v : Value.t) : slot =
  match Hashtbl.find_opt f.slots (Value.id v) with
  | Some s -> s
  | None ->
      unsupported "compile: value %%%d is used before it is defined"
        (Value.id v)

(* ---------- slot accessors (compiled once per operand) ---------- *)

let get_int f v : frame -> int =
  match slot_exn f v with
  | Kint, i -> fun fr -> Array.unsafe_get fr.ints i
  | Kflt, _ -> fun _ -> R.error "expected integer value, got float"
  | Kobj, i -> fun fr -> R.as_int fr.objs.(i)

let get_flt f v : frame -> float =
  match slot_exn f v with
  | Kflt, i -> fun fr -> Array.unsafe_get fr.flts i
  | Kint, i -> fun fr -> float_of_int (Array.unsafe_get fr.ints i)
  | Kobj, i -> fun fr -> R.as_float fr.objs.(i)

let get_buf f v : frame -> R.buffer =
  match slot_exn f v with
  | Kobj, i -> fun fr -> R.as_buffer fr.objs.(i)
  | _ -> fun _ -> R.error "expected buffer value"

(* Boxed read/write, used only at slow boundaries (externs, calls, carried
   loop values, block results). *)
let read f v : frame -> R.t =
  match slot_exn f v with
  | Kint, i -> fun fr -> R.Ri fr.ints.(i)
  | Kflt, i -> fun fr -> R.Rf fr.flts.(i)
  | Kobj, i -> fun fr -> fr.objs.(i)

let write_slot ((k, i) : slot) : frame -> R.t -> unit =
  match k with
  | Kint -> fun fr v -> fr.ints.(i) <- R.as_int v
  | Kflt -> fun fr v -> fr.flts.(i) <- R.as_float v
  | Kobj -> fun fr v -> fr.objs.(i) <- v

(* ---------- fast buffer indexing (specialized per rank) ---------- *)

let oob i l s c =
  R.error "index %d out of bounds [%d, %d) (logical coordinate %d)" i l
    (l + s) c

let idx1 (b : R.buffer) c0 =
  match (b.R.shape, b.R.lo) with
  | [ s0 ], [ l0 ] ->
      let i0 = c0 - l0 in
      if i0 < 0 || i0 >= s0 then oob i0 l0 s0 c0;
      i0
  | _ -> R.error "rank mismatch in buffer access"

let idx2 (b : R.buffer) c0 c1 =
  match (b.R.shape, b.R.lo) with
  | [ s0; s1 ], [ l0; l1 ] ->
      let i0 = c0 - l0 in
      if i0 < 0 || i0 >= s0 then oob i0 l0 s0 c0;
      let i1 = c1 - l1 in
      if i1 < 0 || i1 >= s1 then oob i1 l1 s1 c1;
      (i0 * s1) + i1
  | _ -> R.error "rank mismatch in buffer access"

let idx3 (b : R.buffer) c0 c1 c2 =
  match (b.R.shape, b.R.lo) with
  | [ s0; s1; s2 ], [ l0; l1; l2 ] ->
      let i0 = c0 - l0 in
      if i0 < 0 || i0 >= s0 then oob i0 l0 s0 c0;
      let i1 = c1 - l1 in
      if i1 < 0 || i1 >= s1 then oob i1 l1 s1 c1;
      let i2 = c2 - l2 in
      if i2 < 0 || i2 >= s2 then oob i2 l2 s2 c2;
      ((((i0 * s1) + i1) * s2) + i2)
  | _ -> R.error "rank mismatch in buffer access"

(* [frame -> buffer -> linear index] for a coordinate operand list. *)
let index_fun (coords : (frame -> int) array) : frame -> R.buffer -> int =
  match coords with
  | [||] -> fun _ _ -> 0
  | [| g0 |] -> fun fr b -> idx1 b (g0 fr)
  | [| g0; g1 |] -> fun fr b -> idx2 b (g0 fr) (g1 fr)
  | [| g0; g1; g2 |] -> fun fr b -> idx3 b (g0 fr) (g1 fr) (g2 fr)
  | gs ->
      fun fr b ->
        R.linear_index b (Array.to_list (Array.map (fun g -> g fr) gs))

(* ---------- helpers ---------- *)

let is_terminator = function
  | "scf.yield" | "func.return" | "stencil.return" -> true
  | _ -> false

let exec_block (cb : cblock) (fr : frame) : unit =
  let stmts = cb.stmts in
  for i = 0 to Array.length stmts - 1 do
    (Array.unsafe_get stmts i) fr
  done

let new_frame ~(ext : Interp.Executor.externs) ~pool (cf : cfunc) : frame =
  {
    ints = Array.make cf.cf_n_int 0;
    flts = Array.make cf.cf_n_flt 0.;
    objs = Array.make cf.cf_n_obj R.Runit;
    ext;
    pool;
  }

(* The extern handler bound into worker frames: workers compute only.
   Any extern call (the MPI_* ABI included) from a worker is a lowering
   or scheduling bug and must fail loudly rather than race on the
   mailbox substrate — the rank's main domain is the only one allowed
   to communicate. *)
let worker_externs : Interp.Executor.externs =
 fun op _ ->
  R.error
    "omp worker: extern call %s from a worker domain (workers compute \
     only; the rank's main domain owns the MPI substrate)"
    op.Op.name

(* A worker's private copy of the caller's frame: scalar slots are
   copied (each participant has its own induction variables and
   temporaries), buffer slots share the underlying storage by reference
   — scf.parallel iterations write disjoint buffer regions, which is
   exactly the shared-memory part of the model.  [pool = None] forbids
   nested parallelism; the poisoned externs forbid communication. *)
let worker_frame (fr : frame) : frame =
  {
    ints = Array.copy fr.ints;
    flts = Array.copy fr.flts;
    objs = Array.copy fr.objs;
    ext = worker_externs;
    pool = None;
  }

(* Comparison on the already-computed [compare] result; the predicate
   string is resolved at compile time. *)
let pred_fn (op : Op.t) : int -> bool =
  match Op.string_attr_exn op "predicate" with
  | "eq" -> fun c -> c = 0
  | "ne" -> fun c -> c <> 0
  | "lt" -> fun c -> c < 0
  | "le" -> fun c -> c <= 0
  | "gt" -> fun c -> c > 0
  | "ge" -> fun c -> c >= 0
  | p -> unsupported "unknown predicate %s" p

(* ---------- the op compiler ---------- *)

(* Returns [None] for ops that compile to nothing (dealloc). *)
let rec compile_op (f : fctx) (op : Op.t) : (frame -> unit) option =
  let name = op.Op.name in
  let operand i = Op.operand_exn op i in
  let int1 () = get_int f (operand 0) in
  let flt_binop g =
    let a = get_flt f (operand 0) and b = get_flt f (operand 1) in
    let _, d = def f (Op.result_exn op) in
    Some (fun fr -> fr.flts.(d) <- g (a fr) (b fr))
  in
  let int_binop g =
    let a = get_int f (operand 0) and b = get_int f (operand 1) in
    let _, d = def f (Op.result_exn op) in
    Some (fun fr -> fr.ints.(d) <- g (a fr) (b fr))
  in
  match name with
  | "arith.constant" -> (
      let res = Op.result_exn op in
      match (Op.attr_exn op "value", def f res) with
      | Typesys.Int_attr (v, _), (Kint, d) ->
          Some (fun fr -> fr.ints.(d) <- v)
      | Typesys.Float_attr (v, _), (Kflt, d) ->
          Some (fun fr -> fr.flts.(d) <- v)
      | Typesys.Int_attr (v, _), (Kflt, d) ->
          let fv = float_of_int v in
          Some (fun fr -> fr.flts.(d) <- fv)
      | _ -> unsupported "arith.constant: bad value attribute")
  | "arith.addi" -> int_binop ( + )
  | "arith.subi" -> int_binop ( - )
  | "arith.muli" -> int_binop ( * )
  | "arith.divsi" ->
      int_binop (fun a b ->
          if b = 0 then R.error "division by zero" else a / b)
  | "arith.remsi" ->
      int_binop (fun a b ->
          if b = 0 then R.error "remainder by zero" else a mod b)
  | "arith.andi" -> int_binop ( land )
  | "arith.ori" -> int_binop ( lor )
  | "arith.xori" -> int_binop ( lxor )
  | "arith.addf" -> flt_binop ( +. )
  | "arith.subf" -> flt_binop ( -. )
  | "arith.mulf" -> flt_binop ( *. )
  | "arith.divf" -> flt_binop ( /. )
  | "arith.maximumf" -> flt_binop Float.max
  | "arith.minimumf" -> flt_binop Float.min
  | "arith.negf" ->
      let a = get_flt f (operand 0) in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.flts.(d) <- -.a fr)
  | "arith.cmpi" ->
      let p = pred_fn op in
      let a = get_int f (operand 0) and b = get_int f (operand 1) in
      let _, d = def f (Op.result_exn op) in
      Some
        (fun fr ->
          fr.ints.(d) <- (if p (Int.compare (a fr) (b fr)) then 1 else 0))
  | "arith.cmpf" ->
      let p = pred_fn op in
      let a = get_flt f (operand 0) and b = get_flt f (operand 1) in
      let _, d = def f (Op.result_exn op) in
      Some
        (fun fr ->
          fr.ints.(d) <- (if p (Float.compare (a fr) (b fr)) then 1 else 0))
  | "arith.select" -> (
      let c = int1 () in
      match def f (Op.result_exn op) with
      | Kint, d ->
          let a = get_int f (operand 1) and b = get_int f (operand 2) in
          Some (fun fr -> fr.ints.(d) <- (if c fr <> 0 then a fr else b fr))
      | Kflt, d ->
          let a = get_flt f (operand 1) and b = get_flt f (operand 2) in
          Some (fun fr -> fr.flts.(d) <- (if c fr <> 0 then a fr else b fr))
      | Kobj, d ->
          let a = read f (operand 1) and b = read f (operand 2) in
          Some (fun fr -> fr.objs.(d) <- (if c fr <> 0 then a fr else b fr)))
  | "arith.index_cast" ->
      let a = int1 () in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.ints.(d) <- a fr)
  | "arith.sitofp" ->
      let a = int1 () in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.flts.(d) <- float_of_int (a fr))
  | "arith.fptosi" ->
      let a = get_flt f (operand 0) in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.ints.(d) <- int_of_float (a fr))
  | "arith.extf" | "arith.truncf" ->
      let a = get_flt f (operand 0) in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.flts.(d) <- a fr)
  | "memref.alloc" | "gpu.alloc" -> (
      match Value.ty (Op.result_exn op) with
      | Typesys.Memref (shape, elt) ->
          let _, d = def f (Op.result_exn op) in
          Some (fun fr -> fr.objs.(d) <- R.Rbuf (R.alloc_buffer shape elt))
      | _ -> unsupported "%s: result must be a memref" name)
  | "memref.dealloc" | "gpu.dealloc" -> None
  | "memref.load" -> (
      let gb = get_buf f (operand 0) in
      let idx =
        index_fun
          (Array.of_list (List.map (get_int f) (List.tl op.Op.operands)))
      in
      match def f (Op.result_exn op) with
      | Kflt, d ->
          Some
            (fun fr ->
              let b = gb fr in
              let i = idx fr b in
              fr.flts.(d) <-
                (match b.R.data with
                | R.F a -> Array.unsafe_get a i
                | R.I a -> float_of_int a.(i)))
      | Kint, d ->
          Some
            (fun fr ->
              let b = gb fr in
              let i = idx fr b in
              fr.ints.(d) <-
                (match b.R.data with
                | R.I a -> Array.unsafe_get a i
                | R.F _ -> R.error "expected integer value, got float"))
      | Kobj, _ -> unsupported "memref.load: non-scalar element")
  | "memref.store" -> (
      let gb = get_buf f (operand 1) in
      let idx =
        index_fun
          (Array.of_list
             (List.map (get_int f) (List.tl (List.tl op.Op.operands))))
      in
      match slot_exn f (operand 0) with
      | Kflt, _ ->
          let gv = get_flt f (operand 0) in
          Some
            (fun fr ->
              let b = gb fr in
              let i = idx fr b in
              match b.R.data with
              | R.F a -> Array.unsafe_set a i (gv fr)
              | R.I a -> a.(i) <- int_of_float (gv fr))
      | Kint, _ ->
          let gv = get_int f (operand 0) in
          Some
            (fun fr ->
              let b = gb fr in
              let i = idx fr b in
              match b.R.data with
              | R.I a -> Array.unsafe_set a i (gv fr)
              | R.F a -> a.(i) <- float_of_int (gv fr))
      | Kobj, _ -> unsupported "memref.store: non-scalar value")
  | "memref.copy" | "gpu.memcpy" ->
      let gsrc = get_buf f (operand 0) and gdst = get_buf f (operand 1) in
      Some (fun fr -> R.blit ~src: (gsrc fr) ~dst: (gdst fr))
  | "memref.copy_strided" ->
      (* All geometry is static: bake the box/stride arrays into the
         closure once, so each execution is just Array.blit runs. *)
      let gsrc = get_buf f (operand 0) and gdst = get_buf f (operand 1) in
      let spec = Dialects.Memref.strided_spec_of op in
      let sizes = Array.of_list spec.Dialects.Memref.cs_sizes in
      let src_off = spec.Dialects.Memref.cs_src_offset in
      let src_strides = Array.of_list spec.Dialects.Memref.cs_src_strides in
      let dst_off = spec.Dialects.Memref.cs_dst_offset in
      let dst_strides = Array.of_list spec.Dialects.Memref.cs_dst_strides in
      Some
        (fun fr ->
          R.blit_strided ~src: (gsrc fr) ~dst: (gdst fr) ~sizes ~src_off
            ~src_strides ~dst_off ~dst_strides)
  | "memref.extract_ptr" ->
      let a = read f (operand 0) in
      let _, d = def f (Op.result_exn op) in
      Some (fun fr -> fr.objs.(d) <- a fr)
  | "scf.for" -> Some (compile_for f op)
  | "scf.if" -> Some (compile_if f op)
  | "scf.parallel" -> Some (compile_parallel f op)
  | "omp.parallel" ->
      (* The region compiles with the omp flag set, so scf.parallel ops
         inside it become pool-scheduled (see [compile_parallel]); the
         wrapper itself is just the body — fork/join happens at the
         scf.parallel level, once per region. *)
      let saved = f.omp_nt in
      f.omp_nt <- Some (Dialects.Omp.num_threads_of op);
      let body = compile_block f (Op.single_block (List.hd op.Op.regions)) in
      f.omp_nt <- saved;
      if Array.length body.ret > 0 then
        unsupported
          "omp.parallel: region yields %d value(s) but the op has no results"
          (Array.length body.ret);
      Some (fun fr -> exec_block body fr)
  | "hls.dataflow" | "hls.stage" ->
      let body = compile_block f (Op.single_block (List.hd op.Op.regions)) in
      if Array.length body.ret > 0 then
        unsupported
          "%s: region yields %d value(s) but the op has no results" name
          (Array.length body.ret);
      Some (fun fr -> exec_block body fr)
  | "func.call" -> Some (compile_call f op)
  | "func.return" | "scf.yield" | "stencil.return" ->
      unsupported "%s: terminator in non-terminating position" name
  | _
    when String.length name > 8
         && (String.sub name 0 8 = "stencil." || String.sub name 0 4 = "hls.")
    ->
      unsupported "compiled executor: %s requires the interpreter" name
  | "gpu.launch" ->
      unsupported "compiled executor: %s requires the interpreter" name
  | _ ->
      (* Unknown op (mpi./dmp. dialects): pre-bind the extern dispatch —
         the op record itself is the compile-time binding; the handler
         comes from the executing rank's frame. *)
      let arg_readers =
        Array.of_list (List.map (read f) op.Op.operands)
      in
      let writers =
        Array.of_list (List.map (fun r -> write_slot (def f r)) op.Op.results)
      in
      Some
        (fun fr ->
          let args =
            Array.to_list (Array.map (fun r -> r fr) arg_readers)
          in
          match fr.ext op args with
          | Some results -> write_results op writers fr results
          | None -> R.error "compiled executor: unhandled op %s" name)

and write_results (op : Op.t) (writers : (frame -> R.t -> unit) array) fr
    (results : R.t list) : unit =
  let n = List.length results in
  if n <> Array.length writers then
    R.error "%s: produced %d values for %d results" op.Op.name n
      (Array.length writers);
  List.iteri (fun i v -> writers.(i) fr v) results

and compile_for (f : fctx) (op : Op.t) : frame -> unit =
  let glo = get_int f (Op.operand_exn op 0) in
  let ghi = get_int f (Op.operand_exn op 1) in
  let gstep = get_int f (Op.operand_exn op 2) in
  let inits =
    match op.Op.operands with _ :: _ :: _ :: rest -> rest | _ -> []
  in
  let init_readers = Array.of_list (List.map (read f) inits) in
  let blk = Op.single_block (List.hd op.Op.regions) in
  let iv, iter_args =
    match blk.Op.args with
    | iv :: rest -> (iv, rest)
    | [] -> unsupported "scf.for: body block needs an induction argument"
  in
  let iv_slot =
    match def f iv with
    | Kint, i -> i
    | _ -> unsupported "scf.for: induction variable must be an index"
  in
  let arg_writers =
    Array.of_list (List.map (fun a -> write_slot (def f a)) iter_args)
  in
  let body = compile_block f blk in
  let n_carried = Array.length arg_writers in
  if Array.length init_readers <> n_carried then
    unsupported "scf.for: %d init operands for %d iteration arguments"
      (Array.length init_readers) n_carried;
  if n_carried > 0 && Array.length body.ret <> n_carried then
    unsupported "scf.for: yield arity %d does not match %d carried values"
      (Array.length body.ret) n_carried;
  let res_writers =
    Array.of_list (List.map (fun r -> write_slot (def f r)) op.Op.results)
  in
  (* Carried-slot readers, for the final copy into the result slots. *)
  let arg_readers = Array.of_list (List.map (read f) iter_args) in
  if Array.length res_writers <> 0
     && Array.length res_writers <> n_carried
  then
    unsupported "scf.for: %d results for %d carried values"
      (Array.length res_writers) n_carried;
  if n_carried = 0 then fun fr ->
    let lo = glo fr and hi = ghi fr and step = gstep fr in
    if step <= 0 then R.error "scf.for: step must be positive";
    let i = ref lo in
    while !i < hi do
      Array.unsafe_set fr.ints iv_slot !i;
      exec_block body fr;
      i := !i + step
    done
  else fun fr ->
    let lo = glo fr and hi = ghi fr and step = gstep fr in
    if step <= 0 then R.error "scf.for: step must be positive";
    for k = 0 to n_carried - 1 do
      arg_writers.(k) fr (init_readers.(k) fr)
    done;
    (* Fresh per entry: the loop body may re-enter this closure through a
       recursive call, so no mutable state is shared across invocations. *)
    let tmp = Array.make n_carried R.Runit in
    let i = ref lo in
    while !i < hi do
      fr.ints.(iv_slot) <- !i;
      exec_block body fr;
      (* Parallel move: read every yielded value before writing any
         carried slot (yield may permute the carried values). *)
      for k = 0 to n_carried - 1 do
        tmp.(k) <- body.ret.(k) fr
      done;
      for k = 0 to n_carried - 1 do
        arg_writers.(k) fr tmp.(k)
      done;
      i := !i + step
    done;
    for k = 0 to Array.length res_writers - 1 do
      res_writers.(k) fr (arg_readers.(k) fr)
    done

and compile_if (f : fctx) (op : Op.t) : frame -> unit =
  let gc = get_int f (Op.operand_exn op 0) in
  let then_b, else_b =
    match op.Op.regions with
    | [ t; e ] ->
        (compile_block f (Op.single_block t),
         compile_block f (Op.single_block e))
    | _ -> unsupported "scf.if needs two regions"
  in
  let res_writers =
    Array.of_list (List.map (fun r -> write_slot (def f r)) op.Op.results)
  in
  let n = Array.length res_writers in
  if (n > Array.length then_b.ret) || (n > Array.length else_b.ret) then
    unsupported "scf.if: a branch yields fewer values than the op results";
  if n = 0 then fun fr ->
    exec_block (if gc fr <> 0 then then_b else else_b) fr
  else fun fr ->
    let b = if gc fr <> 0 then then_b else else_b in
    exec_block b fr;
    for k = 0 to n - 1 do
      res_writers.(k) fr (b.ret.(k) fr)
    done

and compile_parallel (f : fctx) (op : Op.t) : frame -> unit =
  let omp_nt = f.omp_nt in
  let lbs, ubs, steps = Dialects.Scf.parallel_bounds op in
  let blk = Op.single_block (List.hd op.Op.regions) in
  if List.length blk.Op.args <> List.length lbs then
    unsupported "scf.parallel: block arity mismatch";
  let dims =
    List.map2
      (fun (lb, ub) (step, arg) ->
        let slot =
          match def f arg with
          | Kint, i -> i
          | _ -> unsupported "scf.parallel: induction must be an index"
        in
        (get_int f lb, get_int f ub, get_int f step, slot))
      (List.combine lbs ubs)
      (List.combine steps blk.Op.args)
  in
  let body = compile_block f blk in
  let rec build = function
    | [] -> fun fr -> exec_block body fr
    | (glo, ghi, gstep, slot) :: rest ->
        let inner = build rest in
        fun fr ->
          let lo = glo fr and hi = ghi fr and step = gstep fr in
          if step <= 0 then R.error "scf.parallel: bad step";
          let i = ref lo in
          while !i < hi do
            fr.ints.(slot) <- !i;
            inner fr;
            i := !i + step
          done
  in
  let seq = build dims in
  match (omp_nt, dims) with
  | None, _ | _, [] -> seq
  | Some nt, (glo0, ghi0, gstep0, slot0) :: rest ->
      (* Inside an omp.parallel region with a worker pool bound to the
         executing frame: chunk the outermost dimension's iteration
         range and let participants grab chunks dynamically through an
         atomic counter.  More chunks than participants (the factor
         below) absorbs imbalance from uneven tile tails; chunk order
         does not affect results — iterations of an scf.parallel are
         independent by construction, and each participant works on its
         own frame copy, so results stay bitwise identical to the
         sequential schedule. *)
      let inner = build rest in
      let chunk_factor = 4 in
      fun fr ->
        match fr.pool with
        | None -> seq fr
        | Some pool ->
            let avail = Domain_pool.size pool in
            let want = if nt > 0 then min nt avail else avail in
            let lo = glo0 fr and hi = ghi0 fr and step = gstep0 fr in
            if step <= 0 then R.error "scf.parallel: bad step";
            let n = if hi > lo then ((hi - lo) + step - 1) / step else 0 in
            if want <= 1 || n <= 1 then seq fr
            else begin
              let nchunks = min n (want * chunk_factor) in
              let next = Atomic.make 0 in
              Domain_pool.run pool (fun p ->
                  if p < want then begin
                    (* Participant 0 is the rank's main domain: it keeps
                       its extern handler (it owns the MPI substrate) but
                       loses the pool, so nested parallel loops inside
                       the body run sequentially instead of re-entering a
                       busy pool.  Workers get a scalar-copy frame with
                       poisoned externs. *)
                    let pfr =
                      if p = 0 then { fr with pool = None }
                      else worker_frame fr
                    in
                    let rec grab () =
                      let c = Atomic.fetch_and_add next 1 in
                      if c < nchunks then begin
                        let k0 = c * n / nchunks
                        and k1 = (c + 1) * n / nchunks in
                        let i = ref (lo + (k0 * step)) in
                        let stop = lo + (k1 * step) in
                        while !i < stop do
                          pfr.ints.(slot0) <- !i;
                          inner pfr;
                          i := !i + step
                        done;
                        grab ()
                      end
                    in
                    grab ()
                  end)
            end

and compile_call (f : fctx) (op : Op.t) : frame -> unit =
  let callee = Op.symbol_attr_exn op "callee" in
  let arg_readers = Array.of_list (List.map (read f) op.Op.operands) in
  let res_writers =
    Array.of_list (List.map (fun r -> write_slot (def f r)) op.Op.results)
  in
  match Hashtbl.find_opt f.cm.funcs callee with
  | Some fop when fop.Op.regions <> [] ->
      (* Internal call: resolved through the memo table on first use, so
         (mutually) recursive functions compile without ordering issues.
         (All functions are compiled eagerly before anything runs, so the
         first-use resolution is a read of the already-populated memo —
         nothing mutates the shared module under concurrent ranks.) *)
      let cm = f.cm in
      let cell = ref None in
      fun fr ->
        let cf =
          match !cell with
          | Some cf -> cf
          | None ->
              let cf = compile_func cm callee in
              cell := Some cf;
              cf
        in
        let args = Array.map (fun r -> r fr) arg_readers in
        write_results op res_writers fr
          (call_cfunc ~ext: fr.ext ~pool: fr.pool cf (Array.to_list args))
  | _ ->
      (* External function: the dispatch op is pre-built once, here. *)
      let stub =
        Op.make "func.call" ~attrs: [ ("callee", Typesys.Symbol_attr callee) ]
      in
      fun fr ->
        let args = Array.to_list (Array.map (fun r -> r fr) arg_readers) in
        (match fr.ext stub args with
        | Some results -> write_results op res_writers fr results
        | None -> R.error "call to undefined function %s" callee)

and compile_block (f : fctx) (blk : Op.block) : cblock =
  let rec go acc = function
    | [] -> (List.rev acc, [||])
    | [ last ] when is_terminator last.Op.name ->
        (List.rev acc,
         Array.of_list (List.map (read f) last.Op.operands))
    | op :: rest -> (
        match compile_op f op with
        | Some s -> go (s :: acc) rest
        | None -> go acc rest)
  in
  let stmts, ret = go [] blk.Op.ops in
  { stmts = Array.of_list stmts; ret }

and compile_func (cm : cmodule) (name : string) : cfunc =
  match Hashtbl.find_opt cm.compiled name with
  | Some cf -> cf
  | None -> (
      match Hashtbl.find_opt cm.funcs name with
      | Some fop when fop.Op.regions <> [] ->
          let f =
            { cm; slots = Hashtbl.create 64; n_int = 0; n_flt = 0;
              n_obj = 0; omp_nt = None }
          in
          let blk = Op.single_block (List.hd fop.Op.regions) in
          let params =
            Array.of_list (List.map (def f) blk.Op.args)
          in
          let body = compile_block f blk in
          let cf =
            {
              cf_name = name;
              cf_params = params;
              cf_n_int = f.n_int;
              cf_n_flt = f.n_flt;
              cf_n_obj = f.n_obj;
              cf_body = body;
            }
          in
          Hashtbl.replace cm.compiled name cf;
          cf
      | _ -> R.error "call to undefined function %s" name)

and call_cfunc ~(ext : Interp.Executor.externs) ?(pool = None) (cf : cfunc)
    (args : R.t list) : R.t list =
  let n = Array.length cf.cf_params in
  if List.length args <> n then
    R.error "%s: expected %d arguments, got %d" cf.cf_name n
      (List.length args);
  let fr = new_frame ~ext ~pool cf in
  List.iteri (fun i v -> write_slot cf.cf_params.(i) fr v) args;
  exec_block cf.cf_body fr;
  Array.to_list (Array.map (fun r -> r fr) cf.cf_body.ret)

(* ---------- the EXECUTOR instance ---------- *)

(* How many closure compilations this process performed: the artifact
   layer's once-per-program discipline is asserted against this counter
   (an N-rank run must bump it exactly once). *)
let compilations = Atomic.make 0
let compile_count () = Atomic.get compilations

let no_externs : Interp.Executor.externs = fun _ _ -> None

module Compiled : Interp.Executor.EXECUTOR = struct
  let name = "compiled"

  type shared_prog = cmodule
  type nonrec prog = prog

  (* Ahead of time: every function with a body compiles before anything
     runs, so unsupported ops surface as [Unsupported] here, not mid-run,
     and the returned module is immutable — ranks and cached runs share
     it without synchronization. *)
  let compile (m : Op.t) : cmodule =
    Obs.Trace.with_span ~cat: "exec" "closure-compile" (fun () ->
        Atomic.incr compilations;
        let funcs = Hashtbl.create 16 in
        List.iter
          (fun (op : Op.t) ->
            if op.Op.name = "func.func" then
              match Op.attr op "sym_name" with
              | Some (Typesys.String_attr name) -> Hashtbl.replace funcs name op
              | _ -> ())
          (Op.module_ops m);
        let cm = { funcs; compiled = Hashtbl.create 16 } in
        Hashtbl.iter
          (fun name (fop : Op.t) ->
            if fop.Op.regions <> [] then ignore (compile_func cm name))
          funcs;
        cm)

  (* [threads > 1] spins up this instance's worker pool; the domains
     are joined by [release], which every instance owner must call (the
     SPMD rank bodies do, under Fun.protect). *)
  let instantiate ?(externs = no_externs) ?(threads = 1) (cm : cmodule) :
      prog =
    let pool =
      if threads > 1 then Some (Domain_pool.create threads) else None
    in
    { cm; prog_externs = externs; prog_pool = pool }

  let release (prog : prog) = Option.iter Domain_pool.shutdown prog.prog_pool

  let run (prog : prog) (callee : string) (args : R.t list) : R.t list =
    match Hashtbl.find_opt prog.cm.compiled callee with
    | Some cf ->
        call_cfunc ~ext: prog.prog_externs ~pool: prog.prog_pool cf args
    | None -> (
        (* External function: same stub dispatch as the interpreter. *)
        let stub =
          Op.make "func.call"
            ~attrs: [ ("callee", Typesys.Symbol_attr callee) ]
        in
        match prog.prog_externs stub args with
        | Some results -> results
        | None -> R.error "call to undefined function %s" callee)
end

let executor : Interp.Executor.t = Interp.Executor.pack (module Compiled)

(* Register with the executor registry so [Interp.Executor.of_name]
   resolves "compiled" wherever this library is linked. *)
let () = Interp.Executor.register ~alias: [ "compile" ] executor

(* Runtime executor selection, shared by stencilc --exec and the bench
   harness; kept as thin wrappers over the registry. *)
let of_name name = Interp.Executor.of_name_opt name
let names = [ "compiled"; "interp" ]

(* The IR interpreter: a reference executor for every dialect in the stack.

   It runs programs at any lowering stage — high-level stencil programs,
   scf/memref loop nests, and fully lowered modules whose MPI_* calls are
   bound to external handlers — so each lowering can be validated by
   comparing executions before and after. *)

open Ir

type externs = Op.t -> Rtval.t list -> Rtval.t list option

type t = {
  funcs : (string, Op.t) Hashtbl.t;
  externs : externs;
  mutable ops_executed : int;
}

let create ?(externs = fun _ _ -> None) (m : Op.t) : t =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (op : Op.t) ->
      if op.Op.name = "func.func" then
        match Op.attr op "sym_name" with
        | Some (Typesys.String_attr name) -> Hashtbl.replace funcs name op
        | _ -> ())
    (Op.module_ops m);
  { funcs; externs; ops_executed = 0 }

type frame = {
  eng : t;
  env : (int, Rtval.t) Hashtbl.t;
  mutable point : int list;  (* current stencil.apply grid point *)
}

let lookup fr v =
  match Hashtbl.find_opt fr.env (Value.id v) with
  | Some rv -> rv
  | None -> Rtval.error "interpreter: value %%%d is unbound" (Value.id v)

let bind fr v rv = Hashtbl.replace fr.env (Value.id v) rv

let bind_results fr (op : Op.t) rvs =
  try List.iter2 (bind fr) op.Op.results rvs
  with Invalid_argument _ ->
    Rtval.error "%s: produced %d values for %d results" op.Op.name
      (List.length rvs) (List.length op.Op.results)

(* Integer/float helpers *)

let int_binop name a b =
  match name with
  | "arith.addi" -> a + b
  | "arith.subi" -> a - b
  | "arith.muli" -> a * b
  | "arith.divsi" ->
      if b = 0 then Rtval.error "division by zero" else a / b
  | "arith.remsi" ->
      if b = 0 then Rtval.error "remainder by zero" else a mod b
  | "arith.andi" -> a land b
  | "arith.ori" -> a lor b
  | "arith.xori" -> a lxor b
  | _ -> Rtval.error "unknown integer binop %s" name

let float_binop name a b =
  match name with
  | "arith.addf" -> a +. b
  | "arith.subf" -> a -. b
  | "arith.mulf" -> a *. b
  | "arith.divf" -> a /. b
  | "arith.maximumf" -> Float.max a b
  | "arith.minimumf" -> Float.min a b
  | _ -> Rtval.error "unknown float binop %s" name

let compare_pred pred c =
  match pred with
  | "eq" -> c = 0
  | "ne" -> c <> 0
  | "lt" -> c < 0
  | "le" -> c <= 0
  | "gt" -> c > 0
  | "ge" -> c >= 0
  | p -> Rtval.error "unknown predicate %s" p

(* Execute the ops of a block; returns the operands of the terminator
   (scf.yield / func.return / stencil.return) or []. *)
let rec exec_ops fr (ops : Op.t list) : Rtval.t list =
  match ops with
  | [] -> []
  | [ last ] -> (
      match last.Op.name with
      | "scf.yield" | "func.return" | "stencil.return" ->
          List.map (lookup fr) last.Op.operands
      | _ ->
          exec_op fr last;
          [])
  | op :: rest ->
      exec_op fr op;
      exec_ops fr rest

and exec_region_block fr (r : Op.region) (args : Rtval.t list) : Rtval.t list
    =
  let blk = Op.single_block r in
  List.iter2 (bind fr) blk.Op.args args;
  exec_ops fr blk.Op.ops

and exec_op fr (op : Op.t) : unit =
  fr.eng.ops_executed <- fr.eng.ops_executed + 1;
  let name = op.Op.name in
  let operand i = lookup fr (Op.operand_exn op i) in
  match name with
  | "arith.constant" -> (
      match Op.attr_exn op "value" with
      | Typesys.Int_attr (v, _) -> bind_results fr op [ Rtval.Ri v ]
      | Typesys.Float_attr (v, _) -> bind_results fr op [ Rtval.Rf v ]
      | _ -> Rtval.error "arith.constant: bad value attribute")
  | _ when Dialects.Arith.is_int_binop name ->
      let a = Rtval.as_int (operand 0) and b = Rtval.as_int (operand 1) in
      bind_results fr op [ Rtval.Ri (int_binop name a b) ]
  | _ when Dialects.Arith.is_float_binop name ->
      let a = Rtval.as_float (operand 0) and b = Rtval.as_float (operand 1) in
      bind_results fr op [ Rtval.Rf (float_binop name a b) ]
  | "arith.negf" ->
      bind_results fr op [ Rtval.Rf (-.Rtval.as_float (operand 0)) ]
  | "arith.cmpi" ->
      let a = Rtval.as_int (operand 0) and b = Rtval.as_int (operand 1) in
      let pred = Op.string_attr_exn op "predicate" in
      bind_results fr op
        [ Rtval.Ri (if compare_pred pred (compare a b) then 1 else 0) ]
  | "arith.cmpf" ->
      let a = Rtval.as_float (operand 0) and b = Rtval.as_float (operand 1) in
      let pred = Op.string_attr_exn op "predicate" in
      bind_results fr op
        [ Rtval.Ri (if compare_pred pred (compare a b) then 1 else 0) ]
  | "arith.select" ->
      let c = Rtval.as_int (operand 0) in
      bind_results fr op [ (if c <> 0 then operand 1 else operand 2) ]
  | "arith.index_cast" -> bind_results fr op [ operand 0 ]
  | "arith.sitofp" ->
      bind_results fr op [ Rtval.Rf (float_of_int (Rtval.as_int (operand 0))) ]
  | "arith.fptosi" ->
      bind_results fr op
        [ Rtval.Ri (int_of_float (Rtval.as_float (operand 0))) ]
  | "arith.extf" | "arith.truncf" -> bind_results fr op [ operand 0 ]
  | "memref.alloc" | "gpu.alloc" ->
      let shape, elt =
        match Value.ty (Op.result_exn op) with
        | Typesys.Memref (s, e) -> (s, e)
        | _ -> Rtval.error "alloc result must be a memref"
      in
      bind_results fr op [ Rtval.Rbuf (Rtval.alloc_buffer shape elt) ]
  | "memref.dealloc" | "gpu.dealloc" -> ()
  | "memref.load" ->
      let b = Rtval.as_buffer (operand 0) in
      let coords =
        List.map (fun v -> Rtval.as_int (lookup fr v)) (List.tl op.Op.operands)
      in
      bind_results fr op [ Rtval.get b coords ]
  | "memref.store" ->
      let v = operand 0 in
      let b = Rtval.as_buffer (operand 1) in
      let coords =
        List.map
          (fun u -> Rtval.as_int (lookup fr u))
          (List.tl (List.tl op.Op.operands))
      in
      Rtval.set b coords v
  | "memref.copy" | "gpu.memcpy" ->
      let src = Rtval.as_buffer (operand 0) in
      let dst = Rtval.as_buffer (operand 1) in
      Rtval.blit ~src ~dst
  | "memref.copy_strided" ->
      let src = Rtval.as_buffer (operand 0) in
      let dst = Rtval.as_buffer (operand 1) in
      let spec = Dialects.Memref.strided_spec_of op in
      Rtval.blit_strided ~src ~dst
        ~sizes: (Array.of_list spec.Dialects.Memref.cs_sizes)
        ~src_off: spec.Dialects.Memref.cs_src_offset
        ~src_strides: (Array.of_list spec.Dialects.Memref.cs_src_strides)
        ~dst_off: spec.Dialects.Memref.cs_dst_offset
        ~dst_strides: (Array.of_list spec.Dialects.Memref.cs_dst_strides)
  | "memref.extract_ptr" ->
      (* A pointer is an alias of the underlying buffer. *)
      bind_results fr op [ operand 0 ]
  | "scf.for" ->
      let lo = Rtval.as_int (operand 0) in
      let hi = Rtval.as_int (operand 1) in
      let step = Rtval.as_int (operand 2) in
      if step <= 0 then Rtval.error "scf.for: step must be positive";
      let init =
        List.map (lookup fr)
          (match op.Op.operands with
          | _ :: _ :: _ :: rest -> rest
          | _ -> [])
      in
      let region = List.hd op.Op.regions in
      let rec iterate i carried =
        if i >= hi then carried
        else
          let outs =
            exec_region_block fr region (Rtval.Ri i :: carried)
          in
          iterate (i + step) outs
      in
      bind_results fr op (iterate lo init)
  | "scf.if" ->
      let c = Rtval.as_int (operand 0) in
      let region =
        match op.Op.regions with
        | [ t; e ] -> if c <> 0 then t else e
        | _ -> Rtval.error "scf.if needs two regions"
      in
      bind_results fr op (exec_region_block fr region [])
  | "scf.parallel" ->
      let lbs, ubs, steps = Dialects.Scf.parallel_bounds op in
      let geti v = Rtval.as_int (lookup fr v) in
      let lbs = List.map geti lbs
      and ubs = List.map geti ubs
      and steps = List.map geti steps in
      let region = List.hd op.Op.regions in
      let rec nest dims coords =
        match dims with
        | [] ->
            ignore
              (exec_region_block fr region
                 (List.rev_map (fun i -> Rtval.Ri i) coords |> List.rev))
        | (lo, hi, step) :: rest ->
            if step <= 0 then Rtval.error "scf.parallel: bad step";
            let i = ref lo in
            while !i < hi do
              nest rest (coords @ [ !i ]);
              i := !i + step
            done
      in
      nest
        (List.map2 (fun (l, u) s -> (l, u, s))
           (List.map2 (fun l u -> (l, u)) lbs ubs)
           steps)
        []
  | "omp.parallel" | "hls.dataflow" | "hls.stage" -> (
      (* These region wrappers have no results: a region that yields
         values has nowhere to deliver them, so dropping them silently
         would mask a lowering bug.  Fail loudly instead. *)
      match exec_region_block fr (List.hd op.Op.regions) [] with
      | [] -> ()
      | vs ->
          Rtval.error
            "%s: region yielded %d value(s) but the op has no results"
            op.Op.name (List.length vs))
  | "gpu.launch" ->
      let ubs = List.map (fun v -> Rtval.as_int (lookup fr v)) op.Op.operands in
      let region = List.hd op.Op.regions in
      let rec nest dims coords =
        match dims with
        | [] ->
            ignore
              (exec_region_block fr region
                 (List.map (fun i -> Rtval.Ri i) (List.rev coords)))
        | n :: rest ->
            for i = 0 to n - 1 do
              nest rest (i :: coords)
            done
      in
      nest ubs []
  | "func.call" ->
      let callee = Op.symbol_attr_exn op "callee" in
      let args = List.map (lookup fr) op.Op.operands in
      bind_results fr op (call_function fr.eng callee args)
  | "hls.stream_create" ->
      bind_results fr op [ Rtval.Rstream (Queue.create ()) ]
  | "hls.stream_read" ->
      let q = Rtval.as_stream (operand 0) in
      if Queue.is_empty q then Rtval.error "hls.stream_read: empty stream";
      bind_results fr op [ Queue.pop q ]
  | "hls.stream_write" ->
      let q = Rtval.as_stream (operand 0) in
      Queue.push (operand 1) q
  | "hls.shift_buffer" ->
      (* Functionally: drain the window's worth of elements from the input
         stream into a fresh buffer (the dataflow cache). *)
      let q = Rtval.as_stream (operand 0) in
      let shape, elt =
        match Value.ty (Op.result_exn op) with
        | Typesys.Memref (s, e) -> (s, e)
        | _ -> Rtval.error "hls.shift_buffer result must be a memref"
      in
      let buf = Rtval.alloc_buffer shape elt in
      let n = List.fold_left ( * ) 1 shape in
      for i = 0 to n - 1 do
        if Queue.is_empty q then
          Rtval.error "hls.shift_buffer: stream underflow";
        Rtval.set_linear buf i (Queue.pop q)
      done;
      bind_results fr op [ Rtval.Rbuf buf ]
  | "stencil.load" | "stencil.cast" ->
      (* Value semantics at buffer granularity: alias with the bounds of
         the result type. *)
      let b = Rtval.as_buffer (operand 0) in
      let bounds =
        match Typesys.bounds_of (Value.ty (Op.result_exn op)) with
        | Some bs -> bs
        | None -> Rtval.error "%s: result must be a stencil type" name
      in
      let lo = List.map (fun (bd : Typesys.bound) -> bd.Typesys.lo) bounds in
      bind_results fr op [ Rtval.Rbuf { b with Rtval.lo } ]
  | "stencil.store" ->
      let src = Rtval.as_buffer (operand 0) in
      let dst = Rtval.as_buffer (operand 1) in
      let lb, ub = Core.Stencil.store_range op in
      iter_box lb ub (fun coords ->
          Rtval.set dst coords (Rtval.get src coords))
  | "stencil.apply" -> exec_apply fr op
  | "stencil.index" ->
      let d = Op.int_attr_exn op "dim" in
      bind_results fr op [ Rtval.Ri (List.nth fr.point d) ]
  | "stencil.access" ->
      let b = Rtval.as_buffer (operand 0) in
      let offsets = Core.Stencil.access_offset op in
      let coords = List.map2 ( + ) fr.point offsets in
      bind_results fr op [ Rtval.get b coords ]
  | "func.return" | "scf.yield" | "stencil.return" ->
      Rtval.error "%s: terminator in non-terminating position" name
  | _ -> (
      (* Unknown ops (mpi / dmp dialects) go to the external handler. *)
      let args = List.map (lookup fr) op.Op.operands in
      match fr.eng.externs op args with
      | Some results -> bind_results fr op results
      | None -> Rtval.error "interpreter: unhandled op %s" name)

and iter_box lb ub f =
  let rec nest lb ub coords =
    match (lb, ub) with
    | [], [] -> f (List.rev coords)
    | l :: lb', u :: ub' ->
        for i = l to u - 1 do
          nest lb' ub' (i :: coords)
        done
    | _ -> Rtval.error "box bounds rank mismatch"
  in
  nest lb ub []

and exec_apply fr (op : Op.t) : unit =
  let inputs = List.map (lookup fr) op.Op.operands in
  let out_bounds =
    match Typesys.bounds_of (Value.ty (List.hd op.Op.results)) with
    | Some bs -> bs
    | None -> Rtval.error "stencil.apply: results must be temps"
  in
  let results =
    List.map
      (fun r ->
        match Value.ty r with
        | Typesys.Temp (bs, elt) ->
            let shape = List.map Typesys.bound_size bs in
            let lo = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) bs in
            Rtval.alloc_buffer ~lo shape elt
        | _ -> Rtval.error "stencil.apply: results must be temps")
      op.Op.results
  in
  let body = Core.Stencil.apply_body op in
  let lb = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) out_bounds in
  let ub = List.map (fun (b : Typesys.bound) -> b.Typesys.hi) out_bounds in
  let saved_point = fr.point in
  iter_box lb ub (fun coords ->
      fr.point <- coords;
      List.iter2 (bind fr) body.Op.args inputs;
      let returned = exec_ops fr body.Op.ops in
      List.iter2 (fun buf v -> Rtval.set buf coords v) results returned);
  fr.point <- saved_point;
  bind_results fr op (List.map (fun b -> Rtval.Rbuf b) results)

and call_function (eng : t) (callee : string) (args : Rtval.t list) :
    Rtval.t list =
  match Hashtbl.find_opt eng.funcs callee with
  | Some fop when fop.Op.regions <> [] ->
      let fr = { eng; env = Hashtbl.create 64; point = [] } in
      exec_region_block fr (List.hd fop.Op.regions) args
  | _ -> (
      (* External function: synthesize a call op for the handler. *)
      let stub = Op.make "func.call"
          ~attrs: [ ("callee", Typesys.Symbol_attr callee) ]
      in
      match eng.externs stub args with
      | Some results -> results
      | None -> Rtval.error "call to undefined function %s" callee)

let run (eng : t) (callee : string) (args : Rtval.t list) : Rtval.t list =
  call_function eng callee args

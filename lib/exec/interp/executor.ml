(* The executor seam of the execution half of the stack.

   An executor turns a module into something runnable: the tree-walking
   reference interpreter ([Engine]) and the ahead-of-time closure compiler
   ([Exec_compile], in lib/exec/compile) both implement the [EXECUTOR]
   signature, and everything downstream — [Driver.Simulate.Spmd],
   [Driver.Harness], stencilc's --run-par/--run-sim, the bench harness —
   is written against the packed first-class form [t], so the execution
   backend is a runtime choice while the MPI substrates stay orthogonal. *)

(* External-call handler, shared by every executor: the [Runtime_link]
   binding implements the MPI_* ABI against either substrate through this
   type. *)
type externs = Engine.externs

module type EXECUTOR = sig
  val name : string

  (* A prepared module: interpreter state or compiled closures. *)
  type prog

  val prepare : ?externs:externs -> Ir.Op.t -> prog
  val run : prog -> string -> Rtval.t list -> Rtval.t list
end

(* Packed executor for runtime selection (e.g. stencilc --exec).
   [prepare] does all per-module work (slot resolution, closure
   compilation); the returned function only executes. *)
type t = {
  exec_name : string;
  prepare : ?externs:externs -> Ir.Op.t -> string -> Rtval.t list -> Rtval.t list;
}

let pack (module E : EXECUTOR) : t =
  {
    exec_name = E.name;
    prepare =
      (fun ?externs m ->
        let prog = E.prepare ?externs m in
        E.run prog);
  }

(* The reference interpreter as an executor. *)
module Interpreter : EXECUTOR = struct
  let name = "interp"

  type prog = Engine.t

  let prepare ?externs m = Engine.create ?externs m
  let run = Engine.run
end

let interpreter = pack (module Interpreter)

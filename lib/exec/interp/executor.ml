(* The executor seam of the execution half of the stack.

   An executor turns a module into something runnable: the tree-walking
   reference interpreter ([Engine]) and the ahead-of-time closure compiler
   ([Exec_compile], in lib/exec/compile) both implement the [EXECUTOR]
   signature, and everything downstream — [Driver.Simulate.Spmd],
   [Driver.Harness], stencilc's --run-par/--run-sim, the bench harness —
   is written against the packed first-class form [t], so the execution
   backend is a runtime choice while the MPI substrates stay orthogonal.

   Preparation is split in two since the artifact layer landed:

   - [compile] does all per-PROGRAM work (slot resolution, closure
     compilation) and returns a rank-independent [shared] program;
   - [shared.instantiate] does the cheap per-RANK work only — binding the
     extern handler (the MPI_* ABI of this rank's context) to the shared
     program.

   N ranks therefore share one compilation instead of each redoing it,
   and [Service.Artifact] caches the [shared] form across runs.  The
   historical one-shot [prepare] remains as compile-then-instantiate. *)

(* External-call handler, shared by every executor: the [Runtime_link]
   binding implements the MPI_* ABI against either substrate through this
   type. *)
type externs = Engine.externs

module type EXECUTOR = sig
  val name : string

  (* A compiled program, independent of any rank: safe to share across
     domains (no mutable state reachable from concurrent runs). *)
  type shared_prog

  (* A prepared per-rank instance: shared program + bound externs, plus
     any per-rank execution resources ([threads > 1] asks a backend for
     an intra-rank worker pool; backends without one ignore it). *)
  type prog

  val compile : Ir.Op.t -> shared_prog
  val instantiate : ?externs:externs -> ?threads:int -> shared_prog -> prog

  (* Tear down per-rank resources (joins worker domains).  Must be called
     when the instance is done — OCaml caps live domains, so a leaked
     pool is a hard failure a few instantiations later, not a slow drip.
     Idempotent; a no-op for pool-less backends. *)
  val release : prog -> unit
  val run : prog -> string -> Rtval.t list -> Rtval.t list
end

(* A live per-rank instance of a packed program: the run function plus
   the release hook that frees its execution resources. *)
type instance = {
  runf : string -> Rtval.t list -> Rtval.t list;
  release : unit -> unit;
}

(* A packed rank-independent compiled program: [instantiate] binds one
   rank's extern handler (and optional worker-pool width) and returns
   that rank's live instance. *)
type shared = {
  shared_exec : string;  (** executor name, e.g. "compiled" *)
  instantiate : ?externs:externs -> ?threads:int -> unit -> instance;
}

(* Packed executor for runtime selection (e.g. stencilc --exec).
   [compile] does all per-module work once; [prepare] is the historical
   compile-then-instantiate shorthand. *)
type t = {
  exec_name : string;
  prepare : ?externs:externs -> Ir.Op.t -> string -> Rtval.t list -> Rtval.t list;
  compile : Ir.Op.t -> shared;
}

let pack (module E : EXECUTOR) : t =
  {
    exec_name = E.name;
    prepare =
      (* The one-shot path never asks for threads, so no pool exists and
         nothing needs releasing. *)
      (fun ?externs m ->
        let prog = E.instantiate ?externs (E.compile m) in
        E.run prog);
    compile =
      (fun m ->
        let sp = E.compile m in
        {
          shared_exec = E.name;
          instantiate =
            (fun ?externs ?threads () ->
              let prog = E.instantiate ?externs ?threads sp in
              { runf = E.run prog; release = (fun () -> E.release prog) });
        });
  }

(* The reference interpreter as an executor.  Compilation is the identity
   — the tree walker needs no ahead-of-time work — so instantiation does
   what [Engine.create] always did, per rank.  [threads] is ignored: the
   interpreter is the sequential bitwise oracle, by design. *)
module Interpreter : EXECUTOR = struct
  let name = "interp"

  type shared_prog = Ir.Op.t
  type prog = Engine.t

  let compile m = m
  let instantiate ?externs ?threads:_ m = Engine.create ?externs m
  let release _ = ()
  let run = Engine.run
end

let interpreter = pack (module Interpreter)

(* ---------- the executor registry ---------- *)

(* Backends register themselves at module-initialization time; the
   interpreter is built in.  Aliases ("interpreter", "compile") resolve to
   the same packed executor as their primary name. *)

let registry : (string * t) list ref = ref [ ("interp", interpreter) ]
let aliases : (string * string) list ref = ref [ ("interpreter", "interp") ]

let register ?(alias = []) (e : t) : unit =
  if not (List.mem_assoc e.exec_name !registry) then
    registry := !registry @ [ (e.exec_name, e) ];
  List.iter
    (fun a ->
      if not (List.mem_assoc a !aliases) then
        aliases := !aliases @ [ (a, e.exec_name) ])
    alias

let names () = List.map fst !registry

let find_name name =
  match List.assoc_opt name !registry with
  | Some e -> Some e
  | None -> (
      match List.assoc_opt name !aliases with
      | Some primary -> List.assoc_opt primary !registry
      | None -> None)

let of_name_opt = find_name

(* Unknown names fail with the available names spelled out, so a typo'd
   --exec tells the user what would have worked. *)
let of_name name =
  match find_name name with
  | Some e -> e
  | None ->
      failwith
        (Printf.sprintf "unknown executor %S (available: %s)" name
           (String.concat ", " (List.sort String.compare (names ()))))

(* Runtime values of the IR interpreter.  Buffers carry their logical lower
   bounds so stencil fields and memrefs share one representation (memrefs
   simply have zero origins).  A buffer value is an alias: copies of the
   runtime value share the underlying array, which is exactly the semantics
   of memref and of pointers extracted from memrefs. *)

type data = F of float array | I of int array

type buffer = {
  shape : int list;
  lo : int list;  (* logical lower bound per dimension *)
  data : data;
  elt : Ir.Typesys.ty;
}

type t =
  | Ri of int
  | Rf of float
  | Rbuf of buffer
  | Rstream of t Queue.t
  | Runit

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let as_int = function
  | Ri i -> i
  | v -> error "expected integer value, got %s"
      (match v with
      | Rf _ -> "float"
      | Rbuf _ -> "buffer"
      | Rstream _ -> "stream"
      | Runit -> "unit"
      | Ri _ -> assert false)

let as_float = function
  | Rf f -> f
  | Ri i -> float_of_int i
  | _ -> error "expected float value"

let as_buffer = function Rbuf b -> b | _ -> error "expected buffer value"
let as_stream = function Rstream q -> q | _ -> error "expected stream value"

let num_elements b = List.fold_left ( * ) 1 b.shape

let alloc_buffer ?(lo = []) shape (elt : Ir.Typesys.ty) =
  let n = List.fold_left ( * ) 1 shape in
  let lo = if lo = [] then List.map (fun _ -> 0) shape else lo in
  let data =
    match elt with
    | Ir.Typesys.Float _ -> F (Array.make n 0.)
    | Ir.Typesys.Int _ | Ir.Typesys.Index -> I (Array.make n 0)
    | t ->
        error "cannot allocate buffer of element type %s"
          (Ir.Typesys.ty_to_string t)
  in
  { shape; lo; data; elt }

(* Row-major linear index of logical coordinates [coords]. *)
let linear_index b coords =
  let rec go acc shape lo coords =
    match (shape, lo, coords) with
    | [], [], [] -> acc
    | s :: shape, l :: lo, c :: coords ->
        let i = c - l in
        if i < 0 || i >= s then
          error "index %d out of bounds [%d, %d) (logical coordinate %d)" i l
            (l + s) c
        else go ((acc * s) + i) shape lo coords
    | _ -> error "rank mismatch in buffer access"
  in
  go 0 b.shape b.lo coords

let get b coords =
  let i = linear_index b coords in
  match b.data with F a -> Rf a.(i) | I a -> Ri a.(i)

let set b coords v =
  let i = linear_index b coords in
  match (b.data, v) with
  | F a, Rf f -> a.(i) <- f
  | F a, Ri n -> a.(i) <- float_of_int n
  | I a, Ri n -> a.(i) <- n
  | I a, Rf f -> a.(i) <- int_of_float f
  | _ -> error "cannot store non-scalar into buffer"

let get_linear b i =
  match b.data with F a -> Rf a.(i) | I a -> Ri a.(i)

let set_linear b i v =
  match (b.data, v) with
  | F a, Rf f -> a.(i) <- f
  | F a, Ri n -> a.(i) <- float_of_int n
  | I a, Ri n -> a.(i) <- n
  | _ -> error "cannot store non-scalar into buffer"

let fill b f =
  match b.data with
  | F a -> Array.iteri (fun i _ -> a.(i) <- f i) a
  | I a -> Array.iteri (fun i _ -> a.(i) <- int_of_float (f i)) a

let float_contents b =
  match b.data with
  | F a -> Array.copy a
  | I a -> Array.map float_of_int a

let blit ~src ~dst =
  match (src.data, dst.data) with
  | F a, F b' -> Array.blit a 0 b' 0 (min (Array.length a) (Array.length b'))
  | I a, I b' -> Array.blit a 0 b' 0 (min (Array.length a) (Array.length b'))
  | _ -> error "memref.copy between different element kinds"

(* Bulk strided copy of an [sizes]-shaped box between the flat storages of
   two buffers (memref.copy_strided).  When both innermost strides are 1 —
   always the case for halo pack/unpack, where boxes are full-rank slices —
   each innermost run is a single Array.blit; otherwise it degrades to an
   element-by-element loop over the run. *)
let blit_strided ~src ~dst ~(sizes : int array) ~(src_off : int)
    ~(src_strides : int array) ~(dst_off : int) ~(dst_strides : int array) =
  let rank = Array.length sizes in
  if
    rank <> Array.length src_strides || rank <> Array.length dst_strides
  then error "copy_strided: rank mismatch between sizes and strides";
  let empty = ref (rank = 0) in
  Array.iter (fun s -> if s <= 0 then empty := true) sizes;
  if not !empty then begin
    let run = sizes.(rank - 1) in
    let sstep = src_strides.(rank - 1) and dstep = dst_strides.(rank - 1) in
    let copy_run =
      match (src.data, dst.data) with
      | F a, F b ->
          if sstep = 1 && dstep = 1 then fun si di -> Array.blit a si b di run
          else fun si di ->
            for k = 0 to run - 1 do
              b.(di + (k * dstep)) <- a.(si + (k * sstep))
            done
      | I a, I b ->
          if sstep = 1 && dstep = 1 then fun si di -> Array.blit a si b di run
          else fun si di ->
            for k = 0 to run - 1 do
              b.(di + (k * dstep)) <- a.(si + (k * sstep))
            done
      | _ -> error "copy_strided between different element kinds"
    in
    (* Walk the outer dims with an odometer; the innermost dim is the run. *)
    let rec nest d si di =
      if d = rank - 1 then copy_run si di
      else
        for k = 0 to sizes.(d) - 1 do
          nest (d + 1) (si + (k * src_strides.(d))) (di + (k * dst_strides.(d)))
        done
    in
    nest 0 src_off dst_off
  end

let default_of (ty : Ir.Typesys.ty) : t =
  match ty with
  | Ir.Typesys.Float _ -> Rf 0.
  | Ir.Typesys.Int _ | Ir.Typesys.Index -> Ri 0
  | _ -> Runit

(** Runtime values of the IR interpreter.  Buffers carry their logical
    lower bounds so stencil fields and memrefs share one representation;
    a buffer value is an alias (copies share the underlying array), which
    is the semantics of memref and of pointers extracted from memrefs. *)

type data = F of float array | I of int array

type buffer = {
  shape : int list;
  lo : int list;  (** logical lower bound per dimension *)
  data : data;
  elt : Ir.Typesys.ty;
}

type t =
  | Ri of int
  | Rf of float
  | Rbuf of buffer
  | Rstream of t Queue.t
  | Runit

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val as_int : t -> int
val as_float : t -> float
val as_buffer : t -> buffer
val as_stream : t -> t Queue.t

val num_elements : buffer -> int

val alloc_buffer : ?lo:int list -> int list -> Ir.Typesys.ty -> buffer
(** Zero-initialized buffer of the given shape, element type and optional
    logical origin. *)

val linear_index : buffer -> int list -> int
(** Row-major index of logical coordinates; raises on out-of-bounds. *)

val get : buffer -> int list -> t
val set : buffer -> int list -> t -> unit
val get_linear : buffer -> int -> t
val set_linear : buffer -> int -> t -> unit

val fill : buffer -> (int -> float) -> unit
(** Initialize every element from its linear index. *)

val float_contents : buffer -> float array
(** A copy of the contents as floats. *)

val blit : src:buffer -> dst:buffer -> unit

val blit_strided :
  src:buffer ->
  dst:buffer ->
  sizes:int array ->
  src_off:int ->
  src_strides:int array ->
  dst_off:int ->
  dst_strides:int array ->
  unit
(** Bulk strided box copy between two buffers: linear offsets and
    row-major strides per box dimension on each side.  When the innermost
    dimension is contiguous on both sides each run is one [Array.blit] —
    the executor implementation of [memref.copy_strided]. *)

val default_of : Ir.Typesys.ty -> t

(* Automatic domain decomposition (paper §4.2): convert a stencil program on
   the global domain into a rank-local stencil program with dmp.swap halo
   exchanges.

   The pass is parameterized by the rank topology and a decomposition
   strategy.  It equally decomposes the domain onto the available ranks by
   rewriting every stencil-typed value to its rank-local bounds (the halo
   needed by the stencil access patterns doubles as the ghost margin already
   carried by the field types), and inserts a dmp.swap before each
   stencil.load so neighboring ranks hold updated data before each stencil
   computation.  Redundant exchanges this generates are removed by the
   subsequent Swap_elim pass analyzing the SSA data flow. *)

open Ir
open Dialects

type options = {
  ranks : int;
  strategy : Decomposition.strategy;
  mode : Decomposition.exchange_mode;
}

(* Convenience constructor defaulting to the paper's face-only prototype. *)
let options ?(mode = Decomposition.Faces) ~ranks ~strategy () =
  { ranks; strategy; mode }

(* The global interior domain: the output bounds of the first stencil.apply
   (all applies of a program share the logical domain, fields differ only by
   their ghost margins).  Domains must start at 0. *)
let find_domain (fop : Op.t) : int list =
  let domain = ref None in
  Op.walk
    (fun op ->
      if op.Op.name = Stencil.apply && !domain = None then
        match op.Op.results with
        | r :: _ -> (
            match Typesys.bounds_of (Value.ty r) with
            | Some bs ->
                List.iter
                  (fun (b : Typesys.bound) ->
                    if b.Typesys.lo <> 0 then
                      Op.ill_formed
                        "distribute: apply domains must start at 0")
                  bs;
                domain := Some (List.map Typesys.bound_size bs)
            | None -> ())
        | [] -> ())
    fop;
  match !domain with
  | Some d -> d
  | None -> Op.ill_formed "distribute: no stencil.apply found"

(* The combined stencil radius over every apply in the function: per
   dimension the (neg, pos) halo extents. *)
let function_halo (fop : Op.t) ~rank =
  let halo = Array.make rank (0, 0) in
  Op.walk
    (fun op ->
      if op.Op.name = Stencil.apply then begin
        let h = Stencil.combined_halo op ~rank in
        Array.iteri
          (fun d (n, p) ->
            let cn, cp = halo.(d) in
            halo.(d) <- (min cn n, max cp p))
          h
      end)
    fop;
  halo

(* Localize a global stencil type: keep the ghost margins, shrink the
   interior from N to N/P per dimension. *)
let localize_bounds ~domain ~grid (bs : Typesys.bound list) :
    Typesys.bound list =
  List.mapi
    (fun d (b : Typesys.bound) ->
      let n = List.nth domain d in
      let parts = List.nth grid d in
      let margin_hi = b.Typesys.hi - n in
      let n_loc = Decomposition.split_extent ~global: n ~parts in
      Typesys.{ lo = b.lo; hi = n_loc + margin_hi })
    bs

let localize_ty ~domain ~grid (t : Typesys.ty) : Typesys.ty =
  match t with
  | Typesys.Field (bs, elt) ->
      Typesys.Field (localize_bounds ~domain ~grid bs, elt)
  | Typesys.Temp (bs, elt) ->
      Typesys.Temp (localize_bounds ~domain ~grid bs, elt)
  | t -> t

(* The exchanges for a field: the function-wide halo clamped to the field's
   own ghost margins (a field without margins never participates in
   exchanges along that dimension). *)
let field_exchanges ~mode ~domain ~grid ~halo (bs : Typesys.bound list) =
  let n = List.length bs in
  let clamped =
    Array.init n (fun d ->
        let neg, pos = if d < Array.length halo then halo.(d) else (0, 0) in
        let b = List.nth bs d in
        let margin_lo = b.Typesys.lo in
        let margin_hi =
          b.Typesys.hi - List.nth domain d
        in
        (max neg margin_lo, min pos margin_hi))
  in
  let interior = Decomposition.local_interior ~interior: domain ~grid in
  Decomposition.exchanges ~mode ~interior ~halo: clamped ~grid ()

let run (opts : options) (m : Op.t) : Op.t =
  let lower_func (fop : Op.t) : Op.t =
    if Func.is_declaration fop then fop
    else if not (Op.exists (fun o -> o.Op.name = Stencil.apply) fop) then fop
    else begin
      let domain = find_domain fop in
      let rank = List.length domain in
      let grid = Decomposition.grid_of opts.strategy ~ranks: opts.ranks ~rank in
      let halo = function_halo fop ~rank in
      let localize = localize_ty ~domain ~grid in
      let vmap : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
      let rename v =
        let v' = Value.fresh (localize (Value.ty v)) in
        Hashtbl.replace vmap (Value.id v) v';
        v'
      in
      let lookup v =
        match Hashtbl.find_opt vmap (Value.id v) with
        | Some v' -> v'
        | None -> v
      in
      let rec rewrite_ops bld ops =
        List.iter
          (fun (op : Op.t) ->
            (* Insert a swap before each load (paper §4.2). *)
            if op.Op.name = Stencil.load then begin
              let field = lookup (Op.operand_exn op 0) in
              let bs =
                match Typesys.bounds_of (Value.ty (Op.operand_exn op 0)) with
                | Some bs -> bs
                | None -> assert false
              in
              let exchanges =
                field_exchanges ~mode: opts.mode ~domain ~grid ~halo bs
              in
              Dmp.swap_op bld field ~grid ~exchanges
            end;
            (* Localize the store range. *)
            let op =
              if op.Op.name = Stencil.store then begin
                let _lb, ub = Stencil.store_range op in
                let ub' =
                  List.mapi
                    (fun d u ->
                      let n = List.nth domain d in
                      let parts = List.nth grid d in
                      let n_loc =
                        Decomposition.split_extent ~global: n ~parts
                      in
                      u - n + n_loc)
                    ub
                in
                Op.set_attr op "ub" (Typesys.Dense_attr ub')
              end
              else op
            in
            let operands = List.map lookup op.Op.operands in
            let results = List.map rename op.Op.results in
            let regions =
              List.map
                (fun (r : Op.region) ->
                  { Op.blocks =
                      List.map
                        (fun (blk : Op.block) ->
                          let args = List.map rename blk.Op.args in
                          let b' = Builder.create () in
                          rewrite_ops b' blk.Op.ops;
                          { Op.args; ops = Builder.ops b' })
                        r.Op.blocks;
                  })
                op.Op.regions
            in
            Builder.add bld { op with Op.operands; results; regions })
          ops
      in
      let body = Op.single_block (Func.body_exn fop) in
      let args = List.map rename body.Op.args in
      let bld = Builder.create () in
      rewrite_ops bld body.Op.ops;
      let arg_tys, res_tys = Func.signature_of fop in
      {
        fop with
        Op.attrs =
          [
            ("sym_name", Typesys.String_attr (Func.name_of fop));
            ( "function_type",
              Typesys.Type_attr
                ( Typesys.Fn
                    (List.map localize arg_tys, List.map localize res_tys) )
            );
            ("dmp.ranks", Typesys.Int_attr (opts.ranks, Typesys.i64));
            ("dmp.topology", Typesys.Grid_attr grid);
            (* Localized argument field types, preserved as an attribute so
               the per-rank bounds survive the Field->Memref conversion in
               stencil-to-loops (Domain.local_field_bounds reads this off
               the fully lowered module). *)
            ( "dmp.local_fields",
              Typesys.Type_attr (Typesys.Fn (List.map localize arg_tys, []))
            );
            ( "dmp.strategy",
              Typesys.String_attr (Decomposition.strategy_name opts.strategy)
            );
          ];
        Op.regions = [ Op.region ~args (Builder.ops bld) ];
      }
    end
  in
  Op.with_module_ops m
    (List.map
       (fun top ->
         if top.Op.name = Func.func then lower_func top else top)
       (Op.module_ops m))

let pass opts = Pass.make "distribute-stencil" (run opts)

(* Stencil shape inference.

   The Open Earth Compiler infers the value ranges stencil temps must
   cover from the access patterns consuming them; with the paper's
   bounds-in-types design the same information lives in the types, so this
   pass both *checks* that every access stays within its operand's bounds
   and *computes* the minimal required input bounds per apply (used by
   diagnostics and by the distribution pass's halo reasoning). *)

open Ir

exception Shape_error of string

let error fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

(* The minimal bounds each input of [apply] must provide: the output
   bounds extended by that input's access extents. *)
let required_input_bounds (apply : Op.t) : Typesys.bound list array =
  let out_bounds =
    match Typesys.bounds_of (Value.ty (List.hd apply.Op.results)) with
    | Some bs -> bs
    | None -> error "apply results must be stencil temps"
  in
  let rank = List.length out_bounds in
  let extents = Stencil.halo_extents apply ~rank in
  Array.map
    (fun per_dim ->
      List.mapi
        (fun d (b : Typesys.bound) ->
          let neg, pos = per_dim.(d) in
          Typesys.bound (b.Typesys.lo + neg) (b.Typesys.hi + pos))
        out_bounds)
    extents

let covers (have : Typesys.bound list) (need : Typesys.bound list) =
  List.for_all2
    (fun (h : Typesys.bound) (n : Typesys.bound) ->
      h.Typesys.lo <= n.Typesys.lo && h.Typesys.hi >= n.Typesys.hi)
    have need

(* Check one apply: every stencil-typed operand must cover the bounds its
   accesses require. *)
let check_apply (apply : Op.t) : unit =
  let required = required_input_bounds apply in
  List.iteri
    (fun i operand ->
      match Typesys.bounds_of (Value.ty operand) with
      | None -> () (* scalar parameter *)
      | Some have ->
          let need = required.(i) in
          if not (covers have need) then
            error
              "stencil.apply input %d provides %s but accesses require %s" i
              (String.concat " x "
                 (List.map
                    (fun (b : Typesys.bound) ->
                      Printf.sprintf "[%d,%d)" b.Typesys.lo b.Typesys.hi)
                    have))
              (String.concat " x "
                 (List.map
                    (fun (b : Typesys.bound) ->
                      Printf.sprintf "[%d,%d)" b.Typesys.lo b.Typesys.hi)
                    need)))
    apply.Op.operands

(* Check stores: the written range must lie inside the destination field
   and inside the stored temp. *)
let check_store (store : Op.t) : unit =
  let lb, ub = Stencil.store_range store in
  let range = List.map2 Typesys.bound lb ub in
  let temp = Op.operand_exn store 0 in
  let field = Op.operand_exn store 1 in
  List.iter
    (fun v ->
      match Typesys.bounds_of (Value.ty v) with
      | Some have ->
          if not (covers have range) then
            error "stencil.store range exceeds %s bounds"
              (Typesys.ty_to_string (Value.ty v))
      | None -> error "stencil.store operands must be stencil-typed")
    [ temp; field ]

(* Traverses through the shared Rewriter workspace; applies are
   materialized in full because halo extents walk their body. *)
let run (m : Op.t) : Op.t =
  let ws = Rewriter.Workspace.of_op m in
  List.iter
    (fun nid ->
      let op = Rewriter.Workspace.shallow ws nid in
      if op.Op.name = Stencil.apply then
        check_apply (Rewriter.Workspace.op ws nid)
      else if op.Op.name = Stencil.store then check_store op)
    (Rewriter.Workspace.post_order ws);
  m

let pass = Pass.make "stencil-shape-inference" run

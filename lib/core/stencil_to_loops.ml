(* Lowering from the stencil dialect to memref + scf loops (paper §4.1).

   Fields and temps become statically sized memrefs; logical coordinates map
   to zero-based memref indices by subtracting the per-dimension lower bound
   carried in the stencil types (the paper's "bounds in types" enhancement
   makes this lowering purely local).  Three loop styles are provided:

   - [Sequential]: plain scf.for nests;
   - [Parallel_flat]: one scf.parallel per apply (the shape the MLIR
     scf-to-openmp / scf-to-gpu conversions consume — and the source of the
     one-parallel-region-per-stencil behaviour discussed in the paper);
   - [Tiled_omp tiles]: the additional CPU pipeline contributed by the
     paper: each apply becomes an omp.parallel region with a tiled
     scf.parallel over tile origins and bounded inner scf.for loops,
     improving data locality. *)

open Ir
open Dialects

type style =
  | Sequential
  | Parallel_flat
  | Tiled_omp of int list
  | Gpu_launch of { synchronous : bool; managed : bool }
      (* [synchronous] mirrors the MLIR scf-to-gpu limitation of a blocking
         host sync per kernel; [managed] models unified-memory allocation
         (no explicit device buffers), the default of OpenACC-based flows. *)

(* What a stencil-typed SSA value lowers to: the backing memref plus the
   logical bounds needed to translate coordinates to buffer indices. *)
type lowered = { buffer : Value.t; bounds : Typesys.bound list }

type env = {
  map : (int, lowered) Hashtbl.t;  (* stencil value id -> lowered *)
  vmap : (int, Value.t) Hashtbl.t;  (* any old value id -> new value *)
}

let convert_ty (t : Typesys.ty) : Typesys.ty =
  match t with
  | Typesys.Field (bs, elt) | Typesys.Temp (bs, elt) ->
      Typesys.Memref (List.map Typesys.bound_size bs, elt)
  | t -> t

let lookup_value env v =
  match Hashtbl.find_opt env.vmap (Value.id v) with
  | Some v' -> v'
  | None -> v

let lookup_lowered env v =
  match Hashtbl.find_opt env.map (Value.id v) with
  | Some l -> l
  | None ->
      Op.ill_formed "stencil-to-loops: value %%%d has no lowered buffer"
        (Value.id v)

let bind_value env old_v new_v =
  Hashtbl.replace env.vmap (Value.id old_v) new_v;
  match Typesys.bounds_of (Value.ty old_v) with
  | Some bounds ->
      Hashtbl.replace env.map (Value.id old_v) { buffer = new_v; bounds }
  | None -> ()

(* Translate a logical coordinate value to a buffer index for dimension
   [d] of a buffer with bounds [bounds]: idx = coord - lo. *)
let buffer_index b ~coord ~(bounds : Typesys.bound list) ~d =
  let lo = (List.nth bounds d).Typesys.lo in
  if lo = 0 then coord
  else begin
    let shift = Arith.const_index b (-lo) in
    Arith.add_i b coord shift
  end

(* Emit a loop nest over the logical box [lbs, ubs) in the requested style;
   [body] receives the builder and the logical coordinate values. *)
let emit_loop_nest bld style ~lbs ~ubs body =
  let n = List.length lbs in
  let consts b xs = List.map (Arith.const_index b) xs in
  match style with
  | Sequential ->
      let rec nest b d coords =
        if d = n then body b (List.rev coords)
        else begin
          let lo = Arith.const_index b (List.nth lbs d) in
          let hi = Arith.const_index b (List.nth ubs d) in
          let step = Arith.const_index b 1 in
          ignore
            (Scf.for_op b ~lo ~hi ~step (fun b' iv _ ->
                 nest b' (d + 1) (iv :: coords);
                 Scf.yield_op b' []))
        end
      in
      nest bld 0 []
  | Parallel_flat ->
      let lbs_v = consts bld lbs in
      let ubs_v = consts bld ubs in
      let steps_v = consts bld (List.init n (fun _ -> 1)) in
      Scf.parallel_op bld ~lbs: lbs_v ~ubs: ubs_v ~steps: steps_v
        (fun b ivs -> body b ivs)
  | Gpu_launch { synchronous; _ } ->
      (* gpu.launch over the zero-based extent; logical coordinates are
         recovered by adding the lower bound inside the kernel. *)
      let ubs_v =
        List.map2 (fun l u -> Arith.const_index bld (u - l)) lbs ubs
      in
      Gpu.launch_op bld ~synchronous ~ubs: ubs_v (fun b ivs ->
          let coords =
            List.map2
              (fun iv l ->
                if l = 0 then iv
                else begin
                  let lv = Arith.const_index b l in
                  Arith.add_i b iv lv
                end)
              ivs lbs
          in
          body b coords)
  | Tiled_omp tiles ->
      let tile d =
        match List.nth_opt tiles d with
        | Some t when t > 0 -> t
        | _ -> max 1 (List.nth ubs d - List.nth lbs d)
      in
      (* The chosen per-dimension block sizes are stamped on the region
         as a dense [tile] attribute: tiled and untiled modules differ
         at the IR level (so they digest differently through the
         artifact layer), and the rewriter can ablate the attribute. *)
      Omp.parallel_op bld ~tile: (List.init n tile) (fun b ->
          let lbs_v = consts b lbs in
          let ubs_v = consts b ubs in
          let steps_v = consts b (List.init n tile) in
          Scf.parallel_op b ~lbs: lbs_v ~ubs: ubs_v ~steps: steps_v
            (fun b origins ->
              (* Inner loops: for each dim, from origin to
                 min(origin + tile, ub). *)
              let rec nest b d coords =
                if d = n then body b (List.rev coords)
                else begin
                  let origin = List.nth origins d in
                  let t = Arith.const_index b (tile d) in
                  let tile_end = Arith.add_i b origin t in
                  let hi = Arith.const_index b (List.nth ubs d) in
                  let le = Arith.cmp_i b Arith.Le tile_end hi in
                  let bounded = Arith.select_op b le tile_end hi in
                  let step = Arith.const_index b 1 in
                  ignore
                    (Scf.for_op b ~lo: origin ~hi: bounded ~step
                       (fun b' iv _ ->
                         nest b' (d + 1) (iv :: coords);
                         Scf.yield_op b' []))
                end
              in
              nest b 0 []))

(* Lower the body of a stencil.apply at one grid point.  [coords] are the
   logical coordinates; [inputs] the lowered operand buffers (by position);
   [emit_result i v] consumes the i-th returned scalar. *)
let lower_apply_body bld (apply_op : Op.t) ~coords ~inputs ~emit_result =
  let body = Stencil.apply_body apply_op in
  let env = Hashtbl.create 16 in
  List.iteri
    (fun i arg -> Hashtbl.replace env (Value.id arg) (`Buffer (List.nth inputs i)))
    body.Op.args;
  let value_of v =
    match Hashtbl.find_opt env (Value.id v) with
    | Some (`Value v') -> v'
    | Some (`Buffer _) ->
        Op.ill_formed "stencil.apply: temp used outside stencil.access"
    | None -> v (* captured from enclosing scope; already lowered there *)
  in
  let buffer_of v =
    match Hashtbl.find_opt env (Value.id v) with
    | Some (`Buffer l) -> l
    | _ -> Op.ill_formed "stencil.access: operand is not an apply argument"
  in
  let rec lower_ops b ops =
    List.iter
      (fun (op : Op.t) ->
        match op.Op.name with
        | "stencil.access" ->
            let l = buffer_of (Op.operand_exn op 0) in
            let offsets = Stencil.access_offset op in
            let indices =
              List.mapi
                (fun d off ->
                  let coord = List.nth coords d in
                  let coord =
                    if off = 0 then coord
                    else begin
                      let o = Arith.const_index b off in
                      Arith.add_i b coord o
                    end
                  in
                  buffer_index b ~coord ~bounds: l.bounds ~d)
                offsets
            in
            let loaded = Memref.load_op b l.buffer indices in
            Hashtbl.replace env (Value.id (Op.result_exn op))
              (`Value loaded)
        | "stencil.index" ->
            let d = Op.int_attr_exn op "dim" in
            Hashtbl.replace env
              (Value.id (Op.result_exn op))
              (`Value (List.nth coords d))
        | "stencil.return" ->
            List.iteri
              (fun i v -> emit_result b i (value_of v))
              op.Op.operands
        | "scf.if" ->
            (* Conditionals over accesses (manually encoded boundary
               conditions) are rebuilt with lowered operands and bodies. *)
            let operands = List.map value_of op.Op.operands in
            let results =
              List.map (fun r -> Value.fresh (Value.ty r)) op.Op.results
            in
            let regions =
              List.map
                (fun (r : Op.region) ->
                  let blk = Op.single_block r in
                  let b' = Builder.create () in
                  lower_ops b' blk.Op.ops;
                  Op.region (Builder.ops b'))
                op.Op.regions
            in
            Builder.add b (Op.make "scf.if" ~operands ~results ~regions);
            List.iter2
              (fun old_r new_r ->
                Hashtbl.replace env (Value.id old_r) (`Value new_r))
              op.Op.results results
        | _ ->
            (* Plain computation (arith etc.): clone with substitution. *)
            let operands = List.map value_of op.Op.operands in
            let results =
              List.map (fun r -> Value.fresh (Value.ty r)) op.Op.results
            in
            Builder.add b { op with Op.operands; results };
            List.iter2
              (fun old_r new_r ->
                Hashtbl.replace env (Value.id old_r) (`Value new_r))
              op.Op.results results)
      ops
  in
  lower_ops bld body.Op.ops

(* The store that solely consumes [v], if any: enables writing apply results
   directly into their destination field instead of a temporary buffer.
   [uses] is the function indexed as a Rewriter workspace; [src] preserves
   the physical op record from the tree so the returned store can be
   recognized by identity in [skipped_stores] during lowering. *)
let sole_store (uses : Rewriter.Workspace.t) v =
  if Rewriter.Workspace.use_count uses v <> 1 then None
  else
    match Rewriter.Workspace.users uses v with
    | [ nid ] ->
        let op = Rewriter.Workspace.src uses nid in
        if op.Op.name = Stencil.store then Some op else None
    | _ -> None

let lower_apply env bld style uses (op : Op.t) ~skipped_stores =
  let inputs =
    List.map
      (fun operand ->
        match Value.ty operand with
        | Typesys.Field _ | Typesys.Temp _ -> lookup_lowered env operand
        | _ ->
            (* Scalar parameters are passed through. *)
            { buffer = lookup_value env operand; bounds = [] })
      op.Op.operands
  in
  (* Decide, per result, where it is written. *)
  let targets =
    List.map
      (fun res ->
        match
          if List.length op.Op.results = 1 then sole_store uses res else None
        with
        | Some store_op ->
            let field = Op.operand_exn store_op 1 in
            let l = lookup_lowered env field in
            let lb, ub = Stencil.store_range store_op in
            skipped_stores := store_op :: !skipped_stores;
            (res, l, Some (lb, ub))
        | None ->
            let bounds =
              match Typesys.bounds_of (Value.ty res) with
              | Some bs -> bs
              | None -> Op.ill_formed "apply result must be a temp"
            in
            let elt =
              match Typesys.element_of (Value.ty res) with
              | Some t -> t
              | None -> assert false
            in
            let sizes = List.map Typesys.bound_size bounds in
            let buffer = Memref.alloc_op bld sizes elt in
            let l = { buffer; bounds } in
            bind_value env res buffer;
            Hashtbl.replace env.map (Value.id res) l;
            (res, l, None))
      op.Op.results
  in
  (* Loop bounds: the fused store range if any, else the result bounds. *)
  let out_bounds =
    match targets with
    | (res, _, Some (lb, ub)) :: _ ->
        ignore res;
        List.map2 (fun l u -> Typesys.bound l u) lb ub
    | (res, _, None) :: _ -> (
        match Typesys.bounds_of (Value.ty res) with
        | Some bs -> bs
        | None -> assert false)
    | [] -> Op.ill_formed "stencil.apply with no results"
  in
  let lbs = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) out_bounds in
  let ubs = List.map (fun (b : Typesys.bound) -> b.Typesys.hi) out_bounds in
  emit_loop_nest bld style ~lbs ~ubs (fun b coords ->
      lower_apply_body b op ~coords ~inputs ~emit_result: (fun b i v ->
          let _, l, _ = List.nth targets i in
          let indices =
            List.mapi
              (fun d coord -> buffer_index b ~coord ~bounds: l.bounds ~d)
              coords
          in
          Memref.store_op b v l.buffer indices))

let lower_store env bld (op : Op.t) =
  let temp = Op.operand_exn op 0 in
  let field = Op.operand_exn op 1 in
  let src = lookup_lowered env temp in
  let dst = lookup_lowered env field in
  let lb, ub = Stencil.store_range op in
  emit_loop_nest bld Sequential ~lbs: lb ~ubs: ub (fun b coords ->
      let src_idx =
        List.mapi
          (fun d coord -> buffer_index b ~coord ~bounds: src.bounds ~d)
          coords
      in
      let v = Memref.load_op b src.buffer src_idx in
      let dst_idx =
        List.mapi
          (fun d coord -> buffer_index b ~coord ~bounds: dst.bounds ~d)
          coords
      in
      Memref.store_op b v dst.buffer dst_idx)

(* Rebuild a dmp swap/swap_begin/swap_wait on the lowered buffer, recording
   the buffer origin (the negated lower bound) so the mpi lowering can
   translate logical exchange offsets into zero-based buffer indices.
   Request operands/results pass through unchanged. *)
let lower_swap env bld (op : Op.t) =
  let field = Op.operand_exn op 0 in
  let l = lookup_lowered env field in
  let origin = List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) l.bounds in
  let operands =
    l.buffer :: List.map (lookup_value env) (List.tl op.Op.operands)
  in
  let results =
    List.map
      (fun r ->
        let r' = Value.fresh (Value.ty r) in
        bind_value env r r';
        r')
      op.Op.results
  in
  Builder.add bld
    {
      op with
      Op.operands = operands;
      results;
      Op.attrs = ("origin", Typesys.Dense_attr origin) :: op.Op.attrs;
    }

let rec lower_ops ?(on_return = fun _ -> ()) env style uses skipped_stores
    bld ops =
  List.iter
    (fun (op : Op.t) ->
      match op.Op.name with
      | "func.return" ->
          on_return bld;
          Builder.add bld
            { op with Op.operands = List.map (lookup_value env) op.Op.operands }
      | "stencil.load" ->
          let l = lookup_lowered env (Op.operand_exn op 0) in
          let res = Op.result_exn op in
          Hashtbl.replace env.vmap (Value.id res) l.buffer;
          Hashtbl.replace env.map (Value.id res)
            { l with bounds =
                (match Typesys.bounds_of (Value.ty res) with
                | Some bs -> bs
                | None -> l.bounds);
            }
      | "stencil.cast" ->
          let l = lookup_lowered env (Op.operand_exn op 0) in
          let res = Op.result_exn op in
          Hashtbl.replace env.vmap (Value.id res) l.buffer;
          Hashtbl.replace env.map (Value.id res)
            { l with bounds =
                (match Typesys.bounds_of (Value.ty res) with
                | Some bs -> bs
                | None -> l.bounds);
            }
      | "stencil.apply" -> lower_apply env bld style uses op ~skipped_stores
      | "stencil.store" ->
          if not (List.memq op !skipped_stores) then lower_store env bld op
      | "dmp.swap" | "dmp.swap_begin" | "dmp.swap_wait" ->
          lower_swap env bld op
      | _ ->
          (* Generic op: map operands, convert result/block-arg types,
             recurse into regions. *)
          let operands = List.map (lookup_value env) op.Op.operands in
          let results =
            List.map
              (fun r ->
                let r' = Value.fresh (convert_ty (Value.ty r)) in
                bind_value env r r';
                r')
              op.Op.results
          in
          let regions =
            List.map
              (fun (r : Op.region) ->
                { Op.blocks =
                    List.map
                      (fun (blk : Op.block) ->
                        let args =
                          List.map
                            (fun a ->
                              let a' =
                                Value.fresh (convert_ty (Value.ty a))
                              in
                              bind_value env a a';
                              a')
                            blk.Op.args
                        in
                        let b' = Builder.create () in
                        lower_ops ~on_return env style uses skipped_stores
                          b' blk.Op.ops;
                        { Op.args; ops = Builder.ops b' })
                      r.Op.blocks;
                })
              op.Op.regions
          in
          Builder.add bld { op with Op.operands; results; regions })
    ops

let lower_func style (fop : Op.t) : Op.t =
  if Func.is_declaration fop then fop
  else begin
    (* The shared workspace replaces the pass's private use-count walk. *)
    let uses = Rewriter.Workspace.of_op fop in
    let env = { map = Hashtbl.create 64; vmap = Hashtbl.create 64 } in
    let arg_tys, res_tys = Func.signature_of fop in
    let body = Op.single_block (Func.body_exn fop) in
    let args =
      List.map
        (fun a ->
          let a' = Value.fresh (convert_ty (Value.ty a)) in
          bind_value env a a';
          a')
        body.Op.args
    in
    let bld = Builder.create () in
    (* GPU path with explicit device memory: allocate device twins of the
       buffer arguments, copy in, compute on the twins, copy back before
       returning (data stays resident across the time loop). *)
    let device_pairs =
      match style with
      | Gpu_launch { managed = false; _ } ->
          List.map2
            (fun old_a host ->
              match Value.ty host with
              | Typesys.Memref (shape, elt) ->
                  let dev = Gpu.alloc_op bld shape elt in
                  Gpu.memcpy_op bld ~src: host ~dst: dev;
                  (* Stencil values now live on the device. *)
                  bind_value env old_a dev;
                  Some (host, dev)
              | _ -> None)
            body.Op.args args
      | _ -> []
    in
    let copy_back b =
      List.iter
        (function
          | Some (host, dev) -> Gpu.memcpy_op b ~src: dev ~dst: host
          | None -> ())
        device_pairs
    in
    let skipped_stores = ref [] in
    (* Fused stores can appear after their apply; lower_apply records the
       skip before the store is visited (applies dominate their uses), so a
       single forward pass is correct. *)
    lower_ops ~on_return: copy_back env style uses skipped_stores bld
      body.Op.ops;
    let new_arg_tys = List.map convert_ty arg_tys in
    let new_res_tys = List.map convert_ty res_tys in
    {
      fop with
      Op.attrs =
        [
          ("sym_name", Typesys.String_attr (Func.name_of fop));
          ( "function_type",
            Typesys.Type_attr (Typesys.Fn (new_arg_tys, new_res_tys)) );
        ]
        @ List.filter
            (fun (k, _) -> k <> "sym_name" && k <> "function_type")
            fop.Op.attrs;
      Op.regions = [ Op.region ~args (Builder.ops bld) ];
    }
  end

let run ?(style = Sequential) (m : Op.t) : Op.t =
  Op.with_module_ops m
    (List.map
       (fun top ->
         if top.Op.name = Func.func then lower_func style top else top)
       (Op.module_ops m))

let pass ?(style = Sequential) () =
  Pass.make "convert-stencil-to-loops" (run ~style)

(* Named pass pipelines: the shared compilation flows of fig. 1b / fig. 6.
   Every frontend (Devito, PSyclone, textual stencil IR) lowers into the
   stencil dialect and then takes one of these, sharing all passes below
   the stencil level. *)

open Ir

type target =
  | Cpu_sequential
  | Cpu_openmp of { tiles : int list }
  | Distributed_cpu of {
      ranks : int;
      strategy : Decomposition.strategy;
      mode : Decomposition.exchange_mode;
      tiles : int list;
      overlap : bool;
    }
  | Gpu of { managed : bool }
  | Fpga of { optimized : bool }

let target_name = function
  | Cpu_sequential -> "cpu-sequential"
  | Cpu_openmp _ -> "cpu-openmp"
  | Distributed_cpu _ -> "distributed-cpu"
  | Gpu _ -> "gpu"
  | Fpga { optimized } -> if optimized then "fpga-optimized" else "fpga-initial"

(* Every configuration knob that changes the pass pipeline must appear
   here: the artifact cache keys on (module digest, target fingerprint). *)
let target_fingerprint = function
  | Cpu_sequential -> "cpu-sequential"
  | Cpu_openmp { tiles } ->
      Printf.sprintf "cpu-openmp[tiles=%s]"
        (String.concat "," (List.map string_of_int tiles))
  | Distributed_cpu { ranks; strategy; mode; tiles; overlap } ->
      Printf.sprintf
        "distributed-cpu[ranks=%d;strategy=%s;mode=%s;tiles=%s;overlap=%b]"
        ranks
        (Decomposition.strategy_name strategy)
        (match mode with
        | Decomposition.Faces -> "faces"
        | Decomposition.Diagonals -> "diagonals")
        (String.concat "," (List.map string_of_int tiles))
        overlap
  | Gpu { managed } -> Printf.sprintf "gpu[managed=%b]" managed
  | Fpga { optimized } -> Printf.sprintf "fpga[optimized=%b]" optimized

(* Inverse of [target_fingerprint], for the on-disk artifact store: a
   persisted artifact records only the fingerprint string, and a warm
   start must rebuild the structured target from it.  Returns [None] on
   anything the renderer above could not have produced (including custom
   decomposition strategies, which carry a closure). *)
let target_of_fingerprint (s : string) : target option =
  let ( let* ) = Option.bind in
  (* "name[k=v;...]" -> (name, Some body); "name" -> (name, None) *)
  let name, body =
    match String.index_opt s '[' with
    | Some i when String.length s > 0 && s.[String.length s - 1] = ']' ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 2)) )
    | _ -> (s, None)
  in
  let fields body =
    String.split_on_char ';' body
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( String.sub kv 0 i,
                   String.sub kv (i + 1) (String.length kv - i - 1) )
           | None -> None)
  in
  let tiles_of v =
    if v = "" then Some []
    else
      let parts = String.split_on_char ',' v in
      let ints = List.filter_map int_of_string_opt parts in
      if List.length ints = List.length parts then Some ints else None
  in
  match (name, body) with
  | "cpu-sequential", None -> Some Cpu_sequential
  | "cpu-openmp", Some body ->
      let* tiles = Option.bind (List.assoc_opt "tiles" (fields body)) tiles_of in
      Some (Cpu_openmp { tiles })
  | "distributed-cpu", Some body ->
      let fs = fields body in
      let* ranks = Option.bind (List.assoc_opt "ranks" fs) int_of_string_opt in
      let* strategy =
        match List.assoc_opt "strategy" fs with
        | Some "1d-slice" -> Some Decomposition.Slice1d
        | Some "2d-slice" -> Some Decomposition.Slice2d
        | Some "3d-slice" -> Some Decomposition.Slice3d
        | _ -> None
      in
      let* mode =
        match List.assoc_opt "mode" fs with
        | Some "faces" -> Some Decomposition.Faces
        | Some "diagonals" -> Some Decomposition.Diagonals
        | _ -> None
      in
      let* tiles = Option.bind (List.assoc_opt "tiles" fs) tiles_of in
      let* overlap =
        Option.bind (List.assoc_opt "overlap" fs) bool_of_string_opt
      in
      Some (Distributed_cpu { ranks; strategy; mode; tiles; overlap })
  | "gpu", Some body ->
      let* managed =
        Option.bind (List.assoc_opt "managed" (fields body)) bool_of_string_opt
      in
      Some (Gpu { managed })
  | "fpga", Some body ->
      let* optimized =
        Option.bind
          (List.assoc_opt "optimized" (fields body))
          bool_of_string_opt
      in
      Some (Fpga { optimized })
  | _ -> None

let cleanup_passes =
  [ Transforms.Canonicalize.pass; Transforms.Cse.pass; Transforms.Licm.pass;
    Transforms.Dce.pass ]

let pipeline_for (t : target) : Pass.pipeline =
  match t with
  | Cpu_sequential ->
      Pass.pipeline "cpu-sequential"
        (Shape_inference.pass
         :: Stencil_to_loops.pass ~style: Stencil_to_loops.Sequential ()
         :: cleanup_passes)
  | Cpu_openmp { tiles } ->
      Pass.pipeline "cpu-openmp"
        (Shape_inference.pass
         :: Stencil_to_loops.pass ~style: (Stencil_to_loops.Tiled_omp tiles) ()
         :: cleanup_passes)
  | Distributed_cpu { ranks; strategy; mode; tiles; overlap } ->
      (* [tiles = []] selects the plain sequential per-rank loop nest —
         the executed flow Harness/stencilc/bench run through the
         artifact layer; non-empty tiles keep the OMP-tiled lowering. *)
      let style =
        match tiles with
        | [] -> Stencil_to_loops.Sequential
        | ts -> Stencil_to_loops.Tiled_omp ts
      in
      Pass.pipeline "distributed-cpu"
        ([ Shape_inference.pass;
           Distribute.pass (Distribute.options ~mode ~ranks ~strategy ());
           Swap_elim.pass ]
        @ (if overlap then [ Overlap.pass ] else [])
        @ [
            Stencil_to_loops.pass ~style ();
            Dmp_to_mpi.pass;
            Mpi_to_func.pass;
          ]
        @ cleanup_passes)
  | Gpu { managed } ->
      Pass.pipeline "gpu"
        (Stencil_to_loops.pass
           ~style: (Stencil_to_loops.Gpu_launch { synchronous = true; managed })
           ()
         :: cleanup_passes)
  | Fpga { optimized } ->
      Pass.pipeline (target_name t)
        (Stencil_to_hls.pass
           ~mode: (if optimized then Stencil_to_hls.Optimized else Stencil_to_hls.Initial)
           ()
         :: cleanup_passes)

(* Compile a stencil-dialect module for a target. *)
let compile ?(verify = true) (t : target) (m : Op.t) : Op.t =
  let out = Pass.run_pipeline (pipeline_for t) m in
  if verify then Verifier.verify ~checks: Registry.checks out;
  out

(* All named pipelines, for the stencilc CLI. *)
let named_pipelines : (string * Pass.pipeline) list =
  [
    ("cpu-sequential", pipeline_for Cpu_sequential);
    ("cpu-openmp", pipeline_for (Cpu_openmp { tiles = [ 32; 32; 32 ] }));
    ( "distributed-cpu-4",
      pipeline_for
        (Distributed_cpu
           {
             ranks = 4;
             strategy = Decomposition.Slice2d;
             mode = Decomposition.Faces;
             tiles = [ 32; 32 ];
             overlap = false;
           }) );
    ( "distributed-cpu-4-overlap",
      pipeline_for
        (Distributed_cpu
           {
             ranks = 4;
             strategy = Decomposition.Slice2d;
             mode = Decomposition.Faces;
             tiles = [ 32; 32 ];
             overlap = true;
           }) );
    ("gpu", pipeline_for (Gpu { managed = false }));
    ("fpga-initial", pipeline_for (Fpga { optimized = false }));
    ("fpga-optimized", pipeline_for (Fpga { optimized = true }));
    ("canonicalize", Pass.pipeline "canonicalize" cleanup_passes);
  ]

(* Lowering stencils to the hls dialect for FPGA execution (paper §6.2,
   Table 1; the Stencil-HMLS flow of Rodriguez-Canal et al.).

   Two modes reproduce the paper's comparison:

   - [Initial]: the algorithm unchanged from its Von-Neumann CPU design —
     plain sequential loops reading external DDR memory for every stencil
     access.  Functionally identical to the Sequential CPU lowering; kernels
     are marked so the FPGA machine model charges one external-memory access
     per operand read and no pipelining.

   - [Optimized]: the compiler restructures each stencil program into
     separate dataflow regions connected by streams: a reader stage streams
     the input once in linear order, a compute stage caches the stencil
     window in a shift buffer so every grid cell's operands are available
     each cycle while only one value is read from the stream, and a writer
     stage drains results.  Compute stages are pipelined with initiation
     interval 1.  Chained stencils (e.g. the three PW-advection kernels)
     become chained dataflow stages communicating through streams without
     round-tripping to DDR. *)

open Ir
open Dialects

type mode = Initial | Optimized

let kernel_attr = "hls.kernel"

(* Row-major linear span of the access offsets: the number of elements the
   shift buffer must hold so all stencil operands are on-chip. *)
let window_span ~shape ~offsets =
  let strides =
    let n = List.length shape in
    List.init n (fun d ->
        List.fold_left ( * ) 1 (List.filteri (fun i s -> ignore s; i > d) shape))
  in
  let linear off = List.fold_left2 (fun acc o s -> acc + (o * s)) 0 off strides in
  match offsets with
  | [] -> 1
  | o :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) off ->
            let l = linear off in
            (min lo l, max hi l))
          (linear o, linear o)
          rest
      in
      hi - lo + 1

(* --- Optimized mode --- *)

(* Each stencil-typed SSA value maps to a queue of streams (one per
   consumer) plus its logical bounds. *)
type stream_binding = {
  mutable streams : Value.t list;
  s_bounds : Typesys.bound list;
}

let run_optimized (m : Op.t) : Op.t =
  let lower_func (fop : Op.t) : Op.t =
    if
      Func.is_declaration fop
      || not (Op.exists (fun o -> o.Op.name = Stencil.apply) fop)
    then fop
    else begin
      let uses = Rewriter.Workspace.of_op fop in
      let use_count v = Rewriter.Workspace.use_count uses v in
      let env = { Stencil_to_loops.map = Hashtbl.create 32; vmap = Hashtbl.create 32 } in
      let stream_env : (int, stream_binding) Hashtbl.t = Hashtbl.create 16 in
      let pop_stream v =
        match Hashtbl.find_opt stream_env (Value.id v) with
        | Some ({ streams = s :: rest; _ } as b) ->
            b.streams <- rest;
            (s, b.s_bounds)
        | _ ->
            Op.ill_formed "hls: temp %%%d has no remaining stream"
              (Value.id v)
      in
      let elt_of v =
        match Typesys.element_of (Value.ty v) with
        | Some t -> t
        | None -> Op.ill_formed "hls: expected stencil-typed value"
      in
      (* Emit a loop nest over logical bounds running [body] in order. *)
      let box_loop bld (bounds : Typesys.bound list) body =
        let lbs = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) bounds in
        let ubs = List.map (fun (b : Typesys.bound) -> b.Typesys.hi) bounds in
        Stencil_to_loops.emit_loop_nest bld Stencil_to_loops.Sequential ~lbs
          ~ubs body
      in
      let rec lower_block (blk : Op.block) : Op.block =
        let bld = Builder.create () in
        let stages = ref [] in
        let add_stage ?(attrs = []) name body =
          let region = Builder.region_of body in
          stages :=
            Op.make Hls.stage
              ~attrs: (("stage_name", Typesys.String_attr name) :: attrs)
              ~regions: [ region ]
            :: !stages
        in
        let terminator = ref None in
        List.iter
          (fun (op : Op.t) ->
            match op.Op.name with
            | "stencil.load" ->
                let field = Op.operand_exn op 0 in
                let l = Stencil_to_loops.lookup_lowered env field in
                let res = Op.result_exn op in
                let n_consumers = max 1 (use_count res) in
                let elt = elt_of res in
                let streams =
                  List.init n_consumers (fun _ ->
                      Hls.stream_create_op bld elt)
                in
                let bounds =
                  match Typesys.bounds_of (Value.ty res) with
                  | Some bs -> bs
                  | None -> assert false
                in
                Hashtbl.replace stream_env (Value.id res)
                  { streams; s_bounds = bounds };
                add_stage
                  (Printf.sprintf "read_%d" (Value.id res))
                  (fun b ->
                    box_loop b bounds (fun b coords ->
                        let indices =
                          List.mapi
                            (fun d coord ->
                              Stencil_to_loops.buffer_index b ~coord
                                ~bounds: l.Stencil_to_loops.bounds ~d)
                            coords
                        in
                        let v =
                          Memref.load_op b l.Stencil_to_loops.buffer indices
                        in
                        List.iter
                          (fun s -> Hls.stream_write_op b s v)
                          streams))
            | "stencil.apply" ->
                (* Pop one stream per input; shift-buffer it; compute
                   pipelined; write each result to fresh streams. *)
                let inputs_info =
                  List.map
                    (fun operand ->
                      match Value.ty operand with
                      | Typesys.Field _ | Typesys.Temp _ ->
                          `Stream (pop_stream operand)
                      | _ ->
                          `Scalar
                            (Stencil_to_loops.lookup_value env operand))
                    op.Op.operands
                in
                let out_bounds =
                  match Typesys.bounds_of (Value.ty (List.hd op.Op.results)) with
                  | Some bs -> bs
                  | None -> assert false
                in
                let result_streams =
                  List.map
                    (fun res ->
                      let n = max 1 (use_count res) in
                      let elt = elt_of res in
                      let streams =
                        List.init n (fun _ -> Hls.stream_create_op bld elt)
                      in
                      Hashtbl.replace stream_env (Value.id res)
                        { streams; s_bounds = out_bounds };
                      streams)
                    op.Op.results
                in
                let offsets =
                  List.map snd (Stencil.apply_accesses op)
                in
                add_stage
                  ~attrs: [ (Hls.pipeline_attr, Typesys.Int_attr (1, Typesys.i64)) ]
                  (Printf.sprintf "compute_%d"
                     (Value.id (List.hd op.Op.results)))
                  (fun b ->
                    (* Shift buffers: drain each input stream into an
                       on-chip window buffer. *)
                    let inputs =
                      List.map
                        (function
                          | `Stream (s, bounds) ->
                              let shape =
                                List.map Typesys.bound_size bounds
                              in
                              let elt =
                                match Value.ty s with
                                | Typesys.Stream t -> t
                                | _ -> assert false
                              in
                              let window =
                                window_span ~shape ~offsets
                              in
                              let buf = Value.fresh (Typesys.Memref (shape, elt)) in
                              Builder.add b
                                (Op.make Hls.shift_buffer
                                   ~operands: [ s ] ~results: [ buf ]
                                   ~attrs:
                                     [ ("window",
                                        Typesys.Int_attr (window, Typesys.i64));
                                     ]);
                              { Stencil_to_loops.buffer = buf; bounds }
                          | `Scalar v ->
                              { Stencil_to_loops.buffer = v; bounds = [] })
                        inputs_info
                    in
                    box_loop b out_bounds (fun b coords ->
                        Stencil_to_loops.lower_apply_body b op ~coords
                          ~inputs ~emit_result: (fun b i v ->
                            List.iter
                              (fun s -> Hls.stream_write_op b s v)
                              (List.nth result_streams i))))
            | "stencil.store" ->
                let temp = Op.operand_exn op 0 in
                let field = Op.operand_exn op 1 in
                let l = Stencil_to_loops.lookup_lowered env field in
                let s, s_bounds = pop_stream temp in
                add_stage
                  (Printf.sprintf "write_%d" (Value.id temp))
                  (fun b ->
                    box_loop b s_bounds (fun b coords ->
                        let v = Hls.stream_read_op b s in
                        let indices =
                          List.mapi
                            (fun d coord ->
                              Stencil_to_loops.buffer_index b ~coord
                                ~bounds: l.Stencil_to_loops.bounds ~d)
                            coords
                        in
                        Memref.store_op b v l.Stencil_to_loops.buffer indices))
            | "func.return" | "scf.yield" ->
                terminator :=
                  Some
                    {
                      op with
                      Op.operands =
                        List.map (Stencil_to_loops.lookup_value env)
                          op.Op.operands;
                    }
            | _ ->
                (* Generic ops: rebuild with converted types, recursing. *)
                let operands =
                  List.map (Stencil_to_loops.lookup_value env) op.Op.operands
                in
                let results =
                  List.map
                    (fun r ->
                      let r' =
                        Value.fresh (Stencil_to_loops.convert_ty (Value.ty r))
                      in
                      Stencil_to_loops.bind_value env r r';
                      r')
                    op.Op.results
                in
                let regions =
                  List.map
                    (fun (r : Op.region) ->
                      { Op.blocks =
                          List.map
                            (fun (nested : Op.block) ->
                              let args =
                                List.map
                                  (fun a ->
                                    let a' =
                                      Value.fresh
                                        (Stencil_to_loops.convert_ty
                                           (Value.ty a))
                                    in
                                    Stencil_to_loops.bind_value env a a';
                                    a')
                                  nested.Op.args
                              in
                              let inner = lower_block { nested with Op.args } in
                              { inner with Op.args })
                            r.Op.blocks;
                      })
                    op.Op.regions
                in
                Builder.add bld { op with Op.operands; results; regions })
          blk.Op.ops;
        let stage_ops = List.rev !stages in
        if stage_ops <> [] then
          Builder.add bld
            (Op.make Hls.dataflow ~regions: [ Op.region stage_ops ]);
        (match !terminator with Some t -> Builder.add bld t | None -> ());
        { blk with Op.ops = Builder.ops bld }
      in
      let body = Op.single_block (Func.body_exn fop) in
      let args =
        List.map
          (fun a ->
            let a' = Value.fresh (Stencil_to_loops.convert_ty (Value.ty a)) in
            Stencil_to_loops.bind_value env a a';
            a')
          body.Op.args
      in
      let new_body = lower_block { body with Op.args } in
      let arg_tys, res_tys = Func.signature_of fop in
      let conv = Stencil_to_loops.convert_ty in
      {
        fop with
        Op.attrs =
          (kernel_attr, Typesys.String_attr "optimized")
          :: [
               ("sym_name", Typesys.String_attr (Func.name_of fop));
               ( "function_type",
                 Typesys.Type_attr
                   (Typesys.Fn (List.map conv arg_tys, List.map conv res_tys))
               );
             ]
          @ List.filter
              (fun (k, _) -> k <> "sym_name" && k <> "function_type")
              fop.Op.attrs;
        Op.regions = [ { Op.blocks = [ { new_body with Op.args } ] } ];
      }
    end
  in
  Op.with_module_ops m
    (List.map
       (fun top ->
         if top.Op.name = Func.func then lower_func top else top)
       (Op.module_ops m))

let run ~mode (m : Op.t) : Op.t =
  match mode with
  | Initial ->
      let lowered =
        Stencil_to_loops.run ~style: Stencil_to_loops.Sequential m
      in
      Op.with_module_ops lowered
        (List.map
           (fun (top : Op.t) ->
             if top.Op.name = Func.func && not (Func.is_declaration top) then
               Op.set_attr top kernel_attr (Typesys.String_attr "initial")
             else top)
           (Op.module_ops lowered))
  | Optimized -> run_optimized m

let pass ~mode () =
  Pass.make
    (match mode with
    | Initial -> "convert-stencil-to-hls-initial"
    | Optimized -> "convert-stencil-to-hls-optimized")
    (run ~mode)

(** Lowering dmp.swap to the mpi dialect (paper §4.2/§4.3, fig. 4): per
    exchange, temporary contiguous buffers, the neighbor-rank computation
    with boundary existence checks, packing, non-blocking isend/irecv under
    scf.if (skipped exchanges yield null requests), one waitall per swap,
    and unpacking.  Buffer allocations and rank queries are left for the
    shared LICM pass to hoist out of time loops. *)

open Ir

val product : int list -> int

val grid_strides : int list -> int list
(** Row-major strides of a cartesian rank grid. *)

val direction_of : Ir.Typesys.exchange -> int * int
(** First decomposed dimension and sign of an exchange's neighbor vector. *)

val encode_direction : int list -> int
(** Injective base-3 encoding of a neighbor direction vector (components
    in \{-1,0,1\}, not all zero): distinct directions — including
    diagonals — get distinct non-negative tags, clear of the reserved
    collective and wildcard values. *)

val send_tag : Typesys.exchange -> int
(** Message tags encode the direction of travel, so matching sends and
    receives pair up: a send toward direction [v] carries
    [encode_direction v] and the receiver posts for
    [encode_direction (-v)] on its own outgoing direction. *)

val recv_tag : Typesys.exchange -> int

val shape_strides : int list -> int list
(** Row-major strides of a buffer shape. *)

val linear_offset : int list -> int list -> int
(** [linear_offset shape coords]: row-major linear index of [coords] in a
    buffer of [shape]. *)

val lower_swap : Builder.t -> Op.t -> unit
(** Lower one dmp.swap into the builder. *)

val run : Op.t -> Op.t
val pass : Pass.t

(* Communication/computation overlap (paper §8, future work — implemented
   here as an extension).

   Operating after distribution at the stencil+dmp level, the pass splits
   each halo exchange into a dmp.swap_begin / dmp.swap_wait pair and splits
   the dependent stencil.apply into an *interior* computation (which needs
   no halo data and runs while messages are in flight) and *boundary slab*
   computations executed after the wait:

     dmp.swap %f                       %rs = dmp.swap_begin %f
     %t = stencil.load %f              %t  = stencil.load %f
     %r = stencil.apply(%t)     ==>    interior apply + store
     stencil.store %r ...              dmp.swap_wait %f, %rs
                                       reload + boundary applies + stores

   The transformation is conservative: a swap/load/apply/store segment is
   rewritten only when it matches exactly (one apply whose results feed
   only the segment's stores and whose store ranges equal its output
   bounds); anything else is left untouched. *)

open Ir

type box = int list * int list

let box_empty (lb, ub) = List.exists2 (fun l u -> l >= u) lb ub

let set_nth xs i v = List.mapi (fun j x -> if j = i then v else x) xs

(* The output subregion computable without halo data: shrink each side by
   the corresponding access extent. *)
let interior_box ~(halo : (int * int) array) ((lb, ub) : box) : box =
  ( List.mapi (fun d l -> l - fst halo.(d)) lb,
    List.mapi (fun d u -> u - snd halo.(d)) ub )

(* Disjoint slabs covering box minus interior: for each dimension, a low
   and a high slab over the current (progressively clamped) box. *)
let boundary_fragments ~(outer : box) ~(inner : box) : box list =
  let rank = List.length (fst outer) in
  let ilb, iub = inner in
  let rec go d (clb, cub) acc =
    if d = rank then acc
    else begin
      let l = List.nth clb d and u = List.nth cub d in
      (* Clamp the interior bounds so the low and high slabs stay disjoint
         even when the interior collapses along this dimension. *)
      let il = min (max (List.nth ilb d) l) u in
      let iu = max (min (List.nth iub d) u) il in
      let acc = if il > l then (clb, set_nth cub d il) :: acc else acc in
      let acc = if iu < u then (set_nth clb d iu, cub) :: acc else acc in
      go (d + 1) (set_nth clb d il, set_nth cub d iu) acc
    end
  in
  List.filter (fun b -> not (box_empty b)) (go 0 outer [])

(* One recognized segment. *)
type segment = {
  swaps : Op.t list;
  loads : Op.t list;
  apply : Op.t;
  stores : Op.t list;
}

(* Clone an apply over a sub-box, with fresh inputs. *)
let clone_apply bld (apply : Op.t) ~(inputs : Value.t list) ((lb, ub) : box)
    : Value.t list =
  let bounds = List.map2 Typesys.bound lb ub in
  let cloned = Op.clone apply in
  let results =
    List.map
      (fun r ->
        match Value.ty r with
        | Typesys.Temp (_, elt) -> Value.fresh (Typesys.Temp (bounds, elt))
        | t -> Op.ill_formed "overlap: apply result %s" (Typesys.ty_to_string t))
      cloned.Op.results
  in
  Builder.add bld { cloned with Op.operands = inputs; results };
  results

(* Rewrite one segment into the split-phase form. *)
let emit_overlapped bld (seg : segment) ~(halo : (int * int) array) : unit =
  (* Map original temp value id -> its source field + load op. *)
  let load_of_temp = Hashtbl.create 8 in
  List.iter
    (fun (l : Op.t) ->
      Hashtbl.replace load_of_temp (Value.id (Op.result_exn l)) l)
    seg.loads;
  let reload () =
    (* Fresh loads of every apply input, in operand order. *)
    List.map
      (fun operand ->
        match Hashtbl.find_opt load_of_temp (Value.id operand) with
        | Some (l : Op.t) ->
            Stencil.load_op bld (Op.operand_exn l 0)
        | None -> operand (* scalar parameter *))
      seg.apply.Op.operands
  in
  (* Post all exchanges. *)
  let pending =
    List.map
      (fun (sw : Op.t) ->
        let field = Dmp.buffer_of sw in
        let grid = Dmp.grid_of sw in
        let exchanges = Dmp.exchanges_of sw in
        let reqs = Dmp.swap_begin_op bld field ~grid ~exchanges in
        (field, grid, exchanges, reqs))
      seg.swaps
  in
  (* Interior compute while messages fly. *)
  let lb, ub = Stencil.store_range (List.hd seg.stores) in
  let inner = interior_box ~halo (lb, ub) in
  let emit_box box =
    let inputs = reload () in
    let results = clone_apply bld seg.apply ~inputs box in
    List.iter2
      (fun (store : Op.t) res ->
        let field = Op.operand_exn store 1 in
        Stencil.store_op bld res field ~lb: (fst box) ~ub: (snd box))
      seg.stores results
  in
  if not (box_empty inner) then emit_box inner;
  (* Complete the exchanges. *)
  List.iter
    (fun (field, grid, exchanges, reqs) ->
      Dmp.swap_wait_op bld field reqs ~grid ~exchanges)
    pending;
  (* Boundary slabs. *)
  List.iter emit_box (boundary_fragments ~outer: (lb, ub) ~inner)

(* Recognize a segment starting at op index [i] (a dmp.swap).  [uses] is
   the enclosing function indexed as a Rewriter workspace; its [src] ops
   are the physical records of this tree, so identity checks against the
   segment's ops work. *)
let recognize (uses : Rewriter.Workspace.t) (ops : Op.t array) (i : int) :
    (segment * int) option =
  let n = Array.length ops in
  let swaps = ref [] and loads = ref [] and stores = ref [] in
  let apply = ref None in
  let j = ref i in
  (try
     while !j < n do
       let op = ops.(!j) in
       (match op.Op.name with
       | "dmp.swap" when !apply = None && !loads = [] ->
           swaps := op :: !swaps
       | "stencil.load" when !apply = None -> loads := op :: !loads
       | "stencil.apply" when !apply = None -> apply := Some op
       | "stencil.store" when !apply <> None -> stores := op :: !stores
       | _ -> raise Exit);
       incr j
     done
   with Exit -> ());
  match !apply with
  | None -> None
  | Some apply ->
      let swaps = List.rev !swaps
      and loads = List.rev !loads
      and stores = List.rev !stores in
      if swaps = [] || stores = [] then None
      else begin
        let loaded_fields =
          List.map (fun (l : Op.t) -> Value.id (Op.operand_exn l 0)) loads
        in
        let swapped_fields =
          List.map (fun (s : Op.t) -> Value.id (Dmp.buffer_of s)) swaps
        in
        let temps = List.map (fun (l : Op.t) -> Op.result_exn l) loads in
        let store_ranges_ok =
          match Typesys.bounds_of (Value.ty (List.hd apply.Op.results)) with
          | Some bs ->
              List.for_all
                (fun (st : Op.t) ->
                  let lb, ub = Stencil.store_range st in
                  List.for_all2
                    (fun (b : Typesys.bound) (l, u) ->
                      b.Typesys.lo = l && b.Typesys.hi = u)
                    bs
                    (List.combine lb ub))
                stores
          | None -> false
        in
        let results_only_stored =
          List.for_all
            (fun r ->
              match Rewriter.Workspace.users uses r with
              | [] -> false
              | us ->
                  List.for_all
                    (fun nid ->
                      List.memq (Rewriter.Workspace.src uses nid) stores)
                    us)
            apply.Op.results
        in
        let temps_only_applied =
          List.for_all
            (fun t ->
              Rewriter.Workspace.use_count uses t = 1
              &&
              match Rewriter.Workspace.users uses t with
              | [ nid ] -> Rewriter.Workspace.src uses nid == apply
              | _ -> false)
            temps
        in
        let all_swapped_loaded =
          List.for_all (fun f -> List.mem f loaded_fields) swapped_fields
        in
        if
          store_ranges_ok && results_only_stored && temps_only_applied
          && all_swapped_loaded
          && List.length stores = List.length apply.Op.results
        then Some ({ swaps; loads; apply; stores }, !j)
        else None
      end

let rec rewrite_block uses (b : Op.block) : Op.block =
  let ops = Array.of_list b.Op.ops in
  let bld = Builder.create () in
  let i = ref 0 in
  while !i < Array.length ops do
    let op = ops.(!i) in
    if op.Op.name = Dmp.swap then begin
      match recognize uses ops !i with
      | Some (seg, next) ->
          let rank =
            match Typesys.rank_of (Value.ty (List.hd seg.apply.Op.results)) with
            | Some r -> r
            | None -> 0
          in
          let halo = Stencil.combined_halo seg.apply ~rank in
          emit_overlapped bld seg ~halo;
          i := next
      | None ->
          Builder.add bld op;
          incr i
    end
    else begin
      let op =
        if op.Op.regions = [] then op
        else
          {
            op with
            Op.regions =
              List.map
                (fun (r : Op.region) ->
                  { Op.blocks = List.map (rewrite_block uses) r.Op.blocks })
                op.Op.regions;
          }
      in
      Builder.add bld op;
      incr i
    end
  done;
  { b with Op.ops = Builder.ops bld }

let run (m : Op.t) : Op.t =
  Op.with_module_ops m
    (List.map
       (fun (top : Op.t) ->
         if top.Op.name = Dialects.Func.func && top.Op.regions <> [] then begin
           let uses = Rewriter.Workspace.of_op top in
           {
             top with
             Op.regions =
               List.map
                 (fun (r : Op.region) ->
                   { Op.blocks = List.map (rewrite_block uses) r.Op.blocks })
                 top.Op.regions;
           }
         end
         else top)
       (Op.module_ops m))

let pass = Pass.make "overlap-communication" run

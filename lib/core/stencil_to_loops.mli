(** Lowering from the stencil dialect to memref + scf loops (paper §4.1).

    Fields and temps become statically sized memrefs; logical coordinates
    translate to zero-based indices by subtracting the per-dimension lower
    bound carried in the stencil types.  Single-consumer applies write
    directly into their destination field (store fusion).

    Several helpers are exposed for the sibling lowerings
    ({!Stencil_to_hls} reuses the apply-body generator and the
    value-tracking environment). *)

open Ir

(** Loop-generation styles. *)
type style =
  | Sequential  (** plain scf.for nests *)
  | Parallel_flat
      (** one scf.parallel per apply — the shape the MLIR scf-to-openmp /
          scf-to-gpu conversions consume, and the source of the
          one-parallel-region-per-stencil behaviour in fig. 10 *)
  | Tiled_omp of int list
      (** the CPU pipeline contributed by the paper: omp.parallel per
          apply with a tiled scf.parallel over tile origins and bounded
          inner loops *)
  | Gpu_launch of { synchronous : bool; managed : bool }
      (** gpu.launch kernels; [synchronous] mirrors the MLIR per-kernel
          host sync, [managed] models unified memory (no explicit device
          buffers) *)

(** A stencil value's lowering: backing buffer plus logical bounds. *)
type lowered = { buffer : Value.t; bounds : Typesys.bound list }

type env = {
  map : (int, lowered) Hashtbl.t;
  vmap : (int, Value.t) Hashtbl.t;
}

val convert_ty : Typesys.ty -> Typesys.ty
(** Fields/temps become memrefs of their bound sizes. *)

val lookup_value : env -> Value.t -> Value.t
val lookup_lowered : env -> Value.t -> lowered
val bind_value : env -> Value.t -> Value.t -> unit

val buffer_index :
  Builder.t -> coord:Value.t -> bounds:Typesys.bound list -> d:int -> Value.t
(** Translate a logical coordinate into a buffer index (idx = coord - lo). *)

val emit_loop_nest :
  Builder.t ->
  style ->
  lbs:int list ->
  ubs:int list ->
  (Builder.t -> Value.t list -> unit) ->
  unit
(** Emit a loop nest over a logical box in the requested style; the body
    receives the logical coordinates. *)

val lower_apply_body :
  Builder.t ->
  Op.t ->
  coords:Value.t list ->
  inputs:lowered list ->
  emit_result:(Builder.t -> int -> Value.t -> unit) ->
  unit
(** Generate one grid point of an apply body: accesses become loads,
    stencil.index becomes the coordinate, scf.if conditionals are rebuilt,
    and each returned scalar is passed to [emit_result]. *)

val sole_store : Rewriter.Workspace.t -> Value.t -> Op.t option
(** The store that solely consumes a value, if any (store-fusion
    analysis over the function's Rewriter workspace); the returned op is
    the physical record from the source tree. *)

val run : ?style:style -> Op.t -> Op.t
val pass : ?style:style -> unit -> Pass.t

(** Named pass pipelines: the shared compilation flows of fig. 1b / fig. 6.
    Every frontend lowers into the stencil dialect and then takes one of
    these, sharing all passes below the stencil level. *)

open Ir

type target =
  | Cpu_sequential
  | Cpu_openmp of { tiles : int list }
  | Distributed_cpu of {
      ranks : int;
      strategy : Decomposition.strategy;
      mode : Decomposition.exchange_mode;  (** neighbor set to exchange with *)
      tiles : int list;
      overlap : bool;  (** use the split-phase swap_begin/swap_wait flow *)
    }
  | Gpu of { managed : bool }
  | Fpga of { optimized : bool }

val target_name : target -> string

val target_fingerprint : target -> string
(** Deterministic rendering of the full target configuration (not just its
    name): two targets with equal fingerprints select identical pass
    pipelines.  Combined with the canonical module digest to key the
    artifact cache. *)

val target_of_fingerprint : string -> target option
(** Inverse of {!target_fingerprint} (used by the on-disk artifact store
    to rebuild a persisted artifact's target).  [None] on malformed input
    and on custom decomposition strategies, which carry a closure the
    rendering cannot capture. *)

val cleanup_passes : Pass.t list
(** canonicalize, cse, licm, dce — the shared MLIR-community-style passes
    run after every lowering. *)

val pipeline_for : target -> Pass.pipeline

val compile : ?verify:bool -> target -> Op.t -> Op.t
(** Run the target's pipeline; verifies the result by default. *)

val named_pipelines : (string * Pass.pipeline) list
(** Pipelines exposed by the stencilc CLI. *)

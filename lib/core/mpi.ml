(* The mpi dialect (paper §4.3): message passing as a set of modular
   operations in a standardized SSA-based IR.

   Operations mirror MPI's point-to-point and collective calls; types
   represent request handles, communicators, statuses and datatypes.  The
   high-level ops work directly on memrefs ("reducing the friction between
   the MPI and the MLIR ecosystems"); [mpi.unwrap_memref] exposes the raw
   pointer/count/datatype triple used at the function-call level.

   Supported subset of MPI 1.0, as in the paper:
   - blocking and non-blocking point-to-point: send, recv, isend, irecv;
   - request operations: test, wait, waitall;
   - blocking reductions: reduce, allreduce;
   - broadcast and gather collectives;
   - process management: init, finalize, comm_rank, comm_size. *)

open Ir

let init = "mpi.init"
let finalize = "mpi.finalize"
let comm_rank = "mpi.comm_rank"
let comm_size = "mpi.comm_size"
let send = "mpi.send"
let recv = "mpi.recv"
let isend = "mpi.isend"
let irecv = "mpi.irecv"
let test = "mpi.test"
let wait = "mpi.wait"
let waitall = "mpi.waitall"
let reduce = "mpi.reduce"
let allreduce = "mpi.allreduce"
let bcast = "mpi.bcast"
let gather = "mpi.gather"
let barrier = "mpi.barrier"
let null_request = "mpi.null_request"
let unwrap_memref = "mpi.unwrap_memref"
let pcontrol = "mpi.pcontrol"

(* Phase markers carried through MPI_Pcontrol (the profiling-control API):
   a positive level opens a phase, its negation closes it.  Used by the
   dmp lowering to bracket halo pack/unpack so substrate timelines can
   attribute the time. *)
let pack_level = 1
let unpack_level = 2

let phase_name_of_level level =
  match abs level with
  | 1 -> "pack"
  | 2 -> "unpack"
  | n -> Printf.sprintf "phase%d" n

(* Reduction kinds carried as a string attribute. *)
type reduce_op = Sum | Max | Min

let reduce_op_to_string = function Sum -> "sum" | Max -> "max" | Min -> "min"

let reduce_op_of_string = function
  | "sum" -> Sum
  | "max" -> Max
  | "min" -> Min
  | s -> Op.ill_formed "unknown mpi reduction %S" s

(* Constructors *)

let init_op b = Builder.emit0 b init
let finalize_op b = Builder.emit0 b finalize
let comm_rank_op b = Builder.emit1 b comm_rank Typesys.i32
let comm_size_op b = Builder.emit1 b comm_size Typesys.i32

let send_op b buf ~dest ~tag =
  Builder.emit0 b send ~operands: [ buf; dest; tag ]

let recv_op b buf ~source ~tag =
  Builder.emit0 b recv ~operands: [ buf; source; tag ]

let isend_op b buf ~dest ~tag =
  Builder.emit1 b isend Typesys.Request ~operands: [ buf; dest; tag ]

let irecv_op b buf ~source ~tag =
  Builder.emit1 b irecv Typesys.Request ~operands: [ buf; source; tag ]

let test_op b req = Builder.emit1 b test Typesys.i1 ~operands: [ req ]
let wait_op b req = Builder.emit0 b wait ~operands: [ req ]
let waitall_op b reqs = Builder.emit0 b waitall ~operands: reqs
let barrier_op b = Builder.emit0 b barrier
let null_request_op b = Builder.emit1 b null_request Typesys.Request

let pcontrol_op b level =
  Builder.emit0 b pcontrol
    ~attrs: [ ("level", Typesys.Int_attr (level, Typesys.i32)) ]

let reduce_op_ b ~sendbuf ~recvbuf ~root op =
  Builder.emit0 b reduce ~operands: [ sendbuf; recvbuf; root ]
    ~attrs: [ ("op", Typesys.String_attr (reduce_op_to_string op)) ]

let allreduce_op b ~sendbuf ~recvbuf op =
  Builder.emit0 b allreduce ~operands: [ sendbuf; recvbuf ]
    ~attrs: [ ("op", Typesys.String_attr (reduce_op_to_string op)) ]

let bcast_op b buf ~root = Builder.emit0 b bcast ~operands: [ buf; root ]

let gather_op b ~sendbuf ~recvbuf ~root =
  Builder.emit0 b gather ~operands: [ sendbuf; recvbuf; root ]

(* Unwrap a memref into (pointer, element count, datatype). *)
let unwrap_memref_op b m =
  let results =
    [
      Value.fresh Typesys.Ptr;
      Value.fresh Typesys.i32;
      Value.fresh Typesys.Datatype;
    ]
  in
  Builder.add b (Op.make unwrap_memref ~operands: [ m ] ~results);
  results

(* Magic values of the mpich implementation (paper §4.3: the lowering
   extracts implementation constants from the library's header file; other
   MPI libraries would substitute their own values here). *)
module Mpich = struct
  let comm_world = 0x44000000
  let float = 0x4c00040a
  let double = 0x4c00080b
  let int = 0x4c000405
  let sum = 0x58000003
  let max = 0x58000001
  let min = 0x58000002
  let request_null = 0x2c000000
  let any_source = -2

  let datatype_for (ty : Typesys.ty) =
    match ty with
    | Typesys.Float F32 -> float
    | Typesys.Float F64 -> double
    | Typesys.Int W32 -> int
    | t ->
        Op.ill_formed "mpi: no mpich datatype for %s"
          (Typesys.ty_to_string t)

  let reduction_for = function Sum -> sum | Max -> max | Min -> min
end

let is_mpi_op (op : Op.t) =
  String.length op.Op.name > 4 && String.sub op.Op.name 0 4 = "mpi."

let memref_check name n_extra : Verifier.check =
  Verifier.for_op name (fun op ->
      match op.Op.operands with
      | buf :: rest -> (
          match Value.ty buf with
          | Typesys.Memref _ ->
              if List.length rest = n_extra then Ok ()
              else Error "wrong number of scalar operands"
          | _ -> Error "first operand must be a memref")
      | [] -> Error "missing memref operand")

let checks : Verifier.check list =
  [
    memref_check send 2;
    memref_check recv 2;
    memref_check isend 2;
    memref_check irecv 2;
    memref_check bcast 1;
    Verifier.for_op waitall (fun op ->
        if
          List.for_all
            (fun v -> Value.ty v = Typesys.Request)
            op.Op.operands
        then Ok ()
        else Error "waitall operands must be requests");
    Verifier.expect_operands wait 1;
    Verifier.expect_operands test 1;
    Verifier.expect_results comm_rank 1;
    Verifier.expect_results comm_size 1;
    Verifier.for_op unwrap_memref (fun op ->
        match (op.Op.operands, op.Op.results) with
        | [ m ], [ p; c; d ]
          when (match Value.ty m with Typesys.Memref _ -> true | _ -> false)
               && Value.ty p = Typesys.Ptr
               && Value.ty c = Typesys.i32
               && Value.ty d = Typesys.Datatype ->
            Ok ()
        | _ -> Error "unwrap_memref: (memref) -> (ptr, i32, datatype)");
  ]

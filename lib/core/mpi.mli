(** The mpi dialect (paper §4.3): message passing as modular operations in
    a standardized SSA-based IR.

    Operations mirror MPI's point-to-point and collective calls; types
    represent requests, communicators, statuses and datatypes.  The
    high-level ops work directly on memrefs; {!unwrap_memref} exposes the
    raw (pointer, count, datatype) triple of listing 3.  Supported subset
    of MPI 1.0, as in the paper: blocking and non-blocking point-to-point,
    request operations, blocking reductions, broadcast/gather, and process
    management. *)

open Ir

(** {1 Operation names} *)

val init : string
val finalize : string
val comm_rank : string
val comm_size : string
val send : string
val recv : string
val isend : string
val irecv : string
val test : string
val wait : string
val waitall : string
val reduce : string
val allreduce : string
val bcast : string
val gather : string
val barrier : string
val null_request : string
val unwrap_memref : string
val pcontrol : string

(** {1 Phase markers}

    [mpi.pcontrol] carries a signed [level] attribute, MPI_Pcontrol
    style: a positive level opens the corresponding profiling span on the
    executing rank's timeline, the negated level closes it.  The halo
    lowering brackets bulk pack/unpack copies with these markers. *)

val pack_level : int
val unpack_level : int

val phase_name_of_level : int -> string
(** Span name for a (possibly negative) pcontrol level. *)

val pcontrol_op : Builder.t -> int -> unit

(** {1 Reductions} *)

type reduce_op = Sum | Max | Min

val reduce_op_to_string : reduce_op -> string
val reduce_op_of_string : string -> reduce_op

(** {1 Constructors} *)

val init_op : Builder.t -> unit
val finalize_op : Builder.t -> unit
val comm_rank_op : Builder.t -> Value.t
val comm_size_op : Builder.t -> Value.t
val send_op : Builder.t -> Value.t -> dest:Value.t -> tag:Value.t -> unit
val recv_op : Builder.t -> Value.t -> source:Value.t -> tag:Value.t -> unit

val isend_op : Builder.t -> Value.t -> dest:Value.t -> tag:Value.t -> Value.t
(** Non-blocking send of a memref; returns the [!mpi.request]. *)

val irecv_op :
  Builder.t -> Value.t -> source:Value.t -> tag:Value.t -> Value.t

val test_op : Builder.t -> Value.t -> Value.t
val wait_op : Builder.t -> Value.t -> unit

val waitall_op : Builder.t -> Value.t list -> unit
(** Wait on a request list at once (the paper's request-list friction
    reducer). *)

val barrier_op : Builder.t -> unit

val null_request_op : Builder.t -> Value.t
(** The null request used for skipped exchanges (paper §4.3). *)

val reduce_op_ :
  Builder.t -> sendbuf:Value.t -> recvbuf:Value.t -> root:Value.t ->
  reduce_op -> unit

val allreduce_op :
  Builder.t -> sendbuf:Value.t -> recvbuf:Value.t -> reduce_op -> unit

val bcast_op : Builder.t -> Value.t -> root:Value.t -> unit

val gather_op :
  Builder.t -> sendbuf:Value.t -> recvbuf:Value.t -> root:Value.t -> unit

val unwrap_memref_op : Builder.t -> Value.t -> Value.t list
(** [(memref) -> (!llvm.ptr, i32 count, !mpi.datatype)], listing 3. *)

(** Magic values of the mpich implementation (paper §4.3): the func-level
    lowering substitutes these for datatype/communicator/op handles.
    Targeting another MPI library means swapping this table. *)
module Mpich : sig
  val comm_world : int
  val float : int
  val double : int
  val int : int
  val sum : int
  val max : int
  val min : int
  val request_null : int
  val any_source : int

  val datatype_for : Typesys.ty -> int
  val reduction_for : reduce_op -> int
end

val is_mpi_op : Op.t -> bool
val checks : Verifier.check list

(* Redundant halo-exchange elimination (paper §4.2).

   The distribution pass inserts a dmp.swap before *every* stencil.load,
   which may generate redundant data exchanges.  This pass analyzes the SSA
   data flow and removes a swap when the swapped buffer is already clean:
   no store has written to it since its previous swap in the same block.

   Block arguments (e.g. time-loop iteration buffers) start dirty, so
   exchanges inside time loops are conservatively kept — which is exactly
   the behaviour needed for buffer-swapping time iterations.

   Runs on the shared Rewriter workspace: redundant swaps are erased in
   place instead of rebuilding every block. *)

open Ir
module W = Rewriter.Workspace

module Int_set = Set.Make (Int)

let run (m : Op.t) : Op.t =
  let ws = W.of_op m in
  let rec elim_block bid =
    let clean = ref Int_set.empty in
    List.iter
      (fun nid ->
        let op = W.shallow ws nid in
        match op.Op.name with
        | "dmp.swap" ->
            let buf = Value.id (Dmp.buffer_of op) in
            if Int_set.mem buf !clean then ignore (W.erase_op ws nid)
            else clean := Int_set.add buf !clean
        | "stencil.store" ->
            clean := Int_set.remove (Value.id (Op.operand_exn op 1)) !clean
        | "memref.store" | "memref.copy" ->
            (* After lowering, conservatively dirty the written memref. *)
            clean := Int_set.remove (Value.id (Op.operand_exn op 1)) !clean
        | "stencil.apply" ->
            (* Value semantics: an apply reads temps and yields new temps;
               it can never write a field, so swap state survives it. *)
            ()
        | _ ->
            (* Other ops with regions may store into captured or aliased
               buffers (e.g. time loops whose iteration arguments alias the
               operands), so clear the state conservatively and recurse. *)
            if W.has_regions ws nid then begin
              clean := Int_set.empty;
              List.iter (List.iter elim_block) (W.blocks ws nid)
            end)
      (W.block_ops ws bid)
  in
  List.iter (List.iter elim_block) (W.blocks ws (W.root ws));
  W.to_op ws

let count_swaps m = Transforms.Statistics.count m Dmp.swap

let pass = Pass.make "eliminate-redundant-swaps" run

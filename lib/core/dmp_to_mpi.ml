(* Lowering dmp.swap to the mpi dialect (paper §4.2/§4.3, fig. 4).

   Each swap becomes, per exchange declaration:
   - temporary contiguous send/receive buffers (argument-less allocations,
     which the shared LICM pass hoists out of time loops, mirroring the
     paper's hoisting of loop-invariant calls — exchange buffers are
     allocated once, not per timestep);
   - the neighbor-rank computation from the cartesian topology, with an
     existence check for ranks on the domain boundary;
   - bulk packing of the send subregion into the send buffer with a single
     memref.copy_strided (all geometry static — executors turn it into
     Array.blit runs, not per-element loops), then non-blocking mpi.isend /
     mpi.irecv under an scf.if (skipped exchanges yield null requests, as
     the paper notes);
   - one mpi.waitall over all requests of the swap;
   - bulk unpacking of each received buffer into its halo subregion.

   Pack and unpack phases are bracketed by mpi.pcontrol markers (the MPI
   profiling-control API), so substrate timelines can attribute time to
   packing/unpacking in traces.

   Tags encode the full direction vector of the message in base 3 so that
   matching sends and receives pair up and no two exchanges between the
   same rank pair can collide — including the edge/corner exchanges of
   [Decomposition.Diagonals], where several directions may share their
   first nonzero component. *)

open Ir
open Dialects

let product = List.fold_left ( * ) 1

(* Row-major strides of the cartesian rank grid. *)
let grid_strides grid =
  let n = List.length grid in
  List.init n (fun d ->
      product (List.filteri (fun i _ -> i > d) grid))

let direction_of (e : Typesys.exchange) =
  let rec find d = function
    | [] -> Op.ill_formed "dmp.exchange: neighbor direction is zero"
    | 0 :: rest -> find (d + 1) rest
    | s :: _ -> (d, s)
  in
  find 0 e.ex_neighbor

(* Base-3 encoding of a direction vector with components in {-1, 0, 1}:
   injective over directions, so distinct exchanges between the same rank
   pair always carry distinct tags.  Tags are non-negative (the zero vector
   is rejected), keeping clear of the reserved collective (-1) and
   any-source (-2) values. *)
let encode_direction (v : int list) : int =
  ignore
    (match List.find_opt (fun c -> c <> 0) v with
    | Some _ -> ()
    | None -> Op.ill_formed "dmp.exchange: neighbor direction is zero");
  List.fold_left
    (fun acc c ->
      if c < -1 || c > 1 then
        Op.ill_formed "dmp.exchange: neighbor component %d out of {-1,0,1}" c
      else (3 * acc) + (c + 1))
    0 v

let send_tag (e : Typesys.exchange) = encode_direction e.Typesys.ex_neighbor

let recv_tag (e : Typesys.exchange) =
  encode_direction (List.map (fun c -> -c) e.Typesys.ex_neighbor)

(* Row-major strides of a box/shape. *)
let shape_strides (shape : int list) : int list =
  let n = List.length shape in
  List.init n (fun d -> product (List.filteri (fun i _ -> i > d) shape))

(* Linear row-major index of static coordinates in [shape]. *)
let linear_offset (shape : int list) (coords : int list) : int =
  List.fold_left2 (fun acc s c -> acc + (s * c)) 0 (shape_strides shape) coords

(* Shared prologue: my rank and cartesian coordinates. *)
let emit_rank_coords bld grid strides =
  let rank32 = Mpi.comm_rank_op bld in
  let rank = Arith.index_cast_op bld rank32 Typesys.Index in
  List.map2
    (fun g s ->
      let sv = Arith.const_index bld s in
      let gv = Arith.const_index bld g in
      let q = Arith.div_i bld rank sv in
      Arith.rem_i bld q gv)
    grid strides

(* What one posted exchange leaves behind for its completion phase. *)
type posted = {
  p_exchange : Typesys.exchange;
  p_rbuf : Value.t;
  p_exists : Value.t;
  p_reqs : Value.t list;
}

(* Post the sends/receives of one swap (the begin phase): allocate buffers,
   compute neighbor existence, pack and issue isend/irecv under scf.if with
   null requests on skipped exchanges. *)
let emit_swap_begin bld (op : Op.t) : posted list =
  let buf = Dmp.buffer_of op in
  let grid = Dmp.grid_of op in
  let exchanges = Dmp.exchanges_of op in
  let origin = Op.dense_attr_exn op "origin" in
  let shape, elt =
    match Value.ty buf with
    | Typesys.Memref (s, t) -> (s, t)
    | t -> Op.ill_formed "dmp swap on %s" (Typesys.ty_to_string t)
  in
  let buf_strides = shape_strides shape in
  let strides = grid_strides grid in
  let coords = emit_rank_coords bld grid strides in
  List.map
    (fun (e : Typesys.exchange) ->
      let n_elems = product e.Typesys.ex_size in
      let sbuf = Memref.alloc_op bld [ n_elems ] elt in
      let rbuf = Memref.alloc_op bld [ n_elems ] elt in
      let ncoords =
        List.map2
          (fun c d ->
            if d = 0 then c
            else begin
              let dv = Arith.const_index bld d in
              Arith.add_i bld c dv
            end)
          coords e.Typesys.ex_neighbor
      in
      let exists =
        List.fold_left2
          (fun acc nc g ->
            let zero = Arith.const_index bld 0 in
            let gv = Arith.const_index bld g in
            let ge = Arith.cmp_i bld Arith.Ge nc zero in
            let lt = Arith.cmp_i bld Arith.Lt nc gv in
            let ok = Arith.binop bld Arith.andi ge lt in
            match acc with
            | None -> Some ok
            | Some acc -> Some (Arith.binop bld Arith.andi acc ok))
          None ncoords grid
      in
      let exists =
        match exists with
        | Some e -> e
        | None -> Op.ill_formed "dmp swap: zero-dimensional grid"
      in
      let neighbor_rank =
        List.fold_left2
          (fun acc nc st ->
            let sv = Arith.const_index bld st in
            let scaled = Arith.mul_i bld nc sv in
            match acc with
            | None -> Some scaled
            | Some acc -> Some (Arith.add_i bld acc scaled))
          None ncoords strides
      in
      let neighbor_rank =
        match neighbor_rank with Some r -> r | None -> assert false
      in
      let reqs =
        Scf.if_op bld exists
          ~res_tys: [ Typesys.Request; Typesys.Request ]
          ~then_: (fun b ->
            (* Bulk pack: one strided copy of the send box out of the
               field into the contiguous send buffer. *)
            let src_coords =
              List.mapi
                (fun d o ->
                  o
                  + List.nth e.Typesys.ex_offset d
                  + List.nth e.Typesys.ex_source_offset d)
                origin
            in
            Mpi.pcontrol_op b Mpi.pack_level;
            Memref.copy_strided_op b ~src: buf ~dst: sbuf
              ~sizes: e.Typesys.ex_size
              ~src_offset: (linear_offset shape src_coords)
              ~src_strides: buf_strides ~dst_offset: 0
              ~dst_strides: (shape_strides e.Typesys.ex_size);
            Mpi.pcontrol_op b (-Mpi.pack_level);
            let nr32 = Arith.index_cast_op b neighbor_rank Typesys.i32 in
            let stag = Arith.const_int b ~ty: Typesys.i32 (send_tag e) in
            let rtag = Arith.const_int b ~ty: Typesys.i32 (recv_tag e) in
            let r_send = Mpi.isend_op b sbuf ~dest: nr32 ~tag: stag in
            let r_recv = Mpi.irecv_op b rbuf ~source: nr32 ~tag: rtag in
            Scf.yield_op b [ r_send; r_recv ])
          ~else_: (fun b ->
            let n1 = Mpi.null_request_op b in
            let n2 = Mpi.null_request_op b in
            Scf.yield_op b [ n1; n2 ])
      in
      { p_exchange = e; p_rbuf = rbuf; p_exists = exists; p_reqs = reqs })
    exchanges

(* Complete posted exchanges: waitall, then unpack each received halo. *)
let emit_swap_complete bld (op : Op.t) (posted : posted list) : unit =
  let buf = Dmp.buffer_of op in
  let origin = Op.dense_attr_exn op "origin" in
  let shape =
    match Value.ty buf with
    | Typesys.Memref (s, _) -> s
    | t -> Op.ill_formed "dmp swap on %s" (Typesys.ty_to_string t)
  in
  let buf_strides = shape_strides shape in
  let all_reqs = List.concat_map (fun p -> p.p_reqs) posted in
  if all_reqs <> [] then Mpi.waitall_op bld all_reqs;
  List.iter
    (fun p ->
      let e = p.p_exchange in
      ignore
        (Scf.if_op bld p.p_exists ~res_tys: []
           ~then_: (fun b ->
             (* Bulk unpack: one strided copy of the received contiguous
                buffer into the halo box of the field. *)
             let dst_coords =
               List.mapi
                 (fun d o -> o + List.nth e.Typesys.ex_offset d)
                 origin
             in
             Mpi.pcontrol_op b Mpi.unpack_level;
             Memref.copy_strided_op b ~src: p.p_rbuf ~dst: buf
               ~sizes: e.Typesys.ex_size ~src_offset: 0
               ~src_strides: (shape_strides e.Typesys.ex_size)
               ~dst_offset: (linear_offset shape dst_coords)
               ~dst_strides: buf_strides;
             Mpi.pcontrol_op b (-Mpi.unpack_level);
             Scf.yield_op b [])
           ~else_: (fun b -> Scf.yield_op b [])))
    posted

(* A fused swap is begin followed immediately by completion. *)
let lower_swap bld (op : Op.t) =
  emit_swap_complete bld op (emit_swap_begin bld op)

(* The lowering runs as three patterns on the shared Rewriter core.  The
   split-phase state (requests posted at swap_begin, completed at the
   matching swap_wait) is keyed by the begin's first replacement request
   value in a table the pattern closures share per [run].  The begin's
   rewrite remaps the wait's request operands, which is what re-enqueues
   (or, under the sweep driver, re-visits) the wait; a wait whose operand
   is not yet a lowered request simply does not match yet. *)
let patterns () =
  let pending : (int, posted list) Hashtbl.t = Hashtbl.create 4 in
  let swap =
    Rewriter.pattern ~roots: [ Dmp.swap ] "lower-dmp-swap" (fun _ op ->
        let bld = Builder.create () in
        lower_swap bld op;
        Pattern.replace_with (Builder.ops bld) [])
  in
  let swap_begin =
    Rewriter.pattern ~roots: [ Dmp.swap_begin ] "lower-dmp-swap-begin"
      (fun _ op ->
        let bld = Builder.create () in
        let posted = emit_swap_begin bld op in
        let new_reqs = List.concat_map (fun p -> p.p_reqs) posted in
        (match new_reqs with
        | first :: _ -> Hashtbl.replace pending (Value.id first) posted
        | [] -> ());
        Pattern.replace_with (Builder.ops bld)
          (List.combine op.Op.results new_reqs))
  in
  let swap_wait =
    Rewriter.pattern ~roots: [ Dmp.swap_wait ] "lower-dmp-swap-wait"
      (fun _ op ->
        match op.Op.operands with
        | _ :: first_req :: _ -> (
            match Hashtbl.find_opt pending (Value.id first_req) with
            | Some posted ->
                let bld = Builder.create () in
                emit_swap_complete bld op posted;
                Pattern.replace_with (Builder.ops bld) []
            | None -> None (* the matching begin has not been lowered yet *))
        | [ _buf ] ->
            (* A swap with no exchanges (e.g. every dimension undecomposed
               on this grid): nothing was posted, nothing to wait for. *)
            Pattern.replace_with [] []
        | [] -> Op.ill_formed "dmp.swap_wait: missing buffer operand")
  in
  [ swap; swap_begin; swap_wait ]

let run (m : Op.t) : Op.t =
  let m' = Rewriter.run ~name: "convert-dmp-to-mpi" (patterns ()) m in
  (* Every wait must have found its begin; a leftover one means the input
     was ill-formed (e.g. a wait before its begin's requests exist). *)
  if Op.exists (fun o -> o.Op.name = Dmp.swap_wait) m' then
    Op.ill_formed "dmp.swap_wait: no matching swap_begin in this block";
  m'

let pass = Pass.make "convert-dmp-to-mpi" run

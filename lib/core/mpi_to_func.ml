(* Lowering the mpi dialect to plain function calls (paper §4.3, listing 4).

   LLVM has no concept of MPI, so mpi ops become func.call ops on external
   MPI_* functions, with implementation-specific magic constants substituted
   for datatype/communicator/op handles.  As in the paper, the constants are
   mpich's (extracted from its header); swapping the [Mpi.Mpich] table makes
   the lowering target another library.  External declarations are appended
   to the end of the module.

   ABI note: where the C API returns values through pointer out-parameters
   (ranks, requests), our declared externals return them directly — the
   simulated MPI runtime implements the same ABI, and the call structure,
   constants and data movement match the real lowering. *)

open Ir
open Dialects

module String_set = Set.Make (String)

let convert_ty (t : Typesys.ty) : Typesys.ty =
  match t with
  | Typesys.Request | Typesys.Status | Typesys.Datatype | Typesys.Comm ->
      Typesys.i32
  | Typesys.Request_array n -> Typesys.Memref ([ n ], Typesys.i32)
  | t -> t

(* The external signatures we may declare. *)
let externals =
  [
    ("MPI_Init", ([], [ Typesys.i32 ]));
    ("MPI_Finalize", ([], [ Typesys.i32 ]));
    ("MPI_Comm_rank", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ("MPI_Comm_size", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ( "MPI_Send",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Recv",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Isend",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Irecv",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ("MPI_Pcontrol", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ("MPI_Wait", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ("MPI_Test", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ("MPI_Waitall", ([ Typesys.i32; Typesys.Ptr ], [ Typesys.i32 ]));
    ("MPI_Barrier", ([ Typesys.i32 ], [ Typesys.i32 ]));
    ( "MPI_Reduce",
      ( [ Typesys.Ptr; Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32; Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Allreduce",
      ( [ Typesys.Ptr; Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32;
          Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Bcast",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.i32; Typesys.i32 ],
        [ Typesys.i32 ] ) );
    ( "MPI_Gather",
      ( [ Typesys.Ptr; Typesys.i32; Typesys.i32; Typesys.Ptr; Typesys.i32;
          Typesys.i32; Typesys.i32; Typesys.i32 ],
        [ Typesys.i32 ] ) );
  ]

let run (m : Op.t) : Op.t =
  let used = ref String_set.empty in
  let call bld name args res_tys =
    used := String_set.add name !used;
    Func.call_op bld name args res_tys
  in
  let call1 bld name args =
    match call bld name args [ Typesys.i32 ] with
    | [ r ] -> r
    | _ -> assert false
  in
  let comm bld = Arith.const_int bld ~ty: Typesys.i32 Mpi.Mpich.comm_world in
  (* Unwrap a (converted) memref operand into pointer/count/datatype. *)
  let unwrap ctx bld mem_old =
    let mem = ctx.Transforms.Conversion.lookup mem_old in
    match Value.ty mem with
    | Typesys.Memref (shape, elt) ->
        let ptr = Memref.extract_ptr_op bld mem in
        let count =
          Arith.const_int bld ~ty: Typesys.i32 (List.fold_left ( * ) 1 shape)
        in
        let dtype =
          Arith.const_int bld ~ty: Typesys.i32 (Mpi.Mpich.datatype_for elt)
        in
        (ptr, count, dtype)
    | t ->
        Op.ill_formed "mpi-to-func: expected memref, got %s"
          (Typesys.ty_to_string t)
  in
  let handler (ctx : Transforms.Conversion.ctx) bld (op : Op.t) =
    let lk = ctx.Transforms.Conversion.lookup in
    let bind1 r =
      match op.Op.results with
      | [ old_r ] -> ctx.Transforms.Conversion.bind old_r r
      | _ -> Op.ill_formed "%s: expected one result" op.Op.name
    in
    match op.Op.name with
    | "mpi.init" ->
        ignore (call1 bld "MPI_Init" []);
        true
    | "mpi.finalize" ->
        ignore (call1 bld "MPI_Finalize" []);
        true
    | "mpi.comm_rank" ->
        bind1 (call1 bld "MPI_Comm_rank" [ comm bld ]);
        true
    | "mpi.comm_size" ->
        bind1 (call1 bld "MPI_Comm_size" [ comm bld ]);
        true
    | "mpi.send" | "mpi.recv" | "mpi.isend" | "mpi.irecv" ->
        let mem = Op.operand_exn op 0 in
        let peer = lk (Op.operand_exn op 1) in
        let tag = lk (Op.operand_exn op 2) in
        let ptr, count, dtype = unwrap ctx bld mem in
        let callee =
          match op.Op.name with
          | "mpi.send" -> "MPI_Send"
          | "mpi.recv" -> "MPI_Recv"
          | "mpi.isend" -> "MPI_Isend"
          | _ -> "MPI_Irecv"
        in
        let r =
          call1 bld callee [ ptr; count; dtype; peer; tag; comm bld ]
        in
        if op.Op.results <> [] then bind1 r;
        true
    | "mpi.pcontrol" ->
        let level =
          Arith.const_int bld ~ty: Typesys.i32 (Op.int_attr_exn op "level")
        in
        ignore (call1 bld "MPI_Pcontrol" [ level ]);
        true
    | "mpi.null_request" ->
        bind1 (Arith.const_int bld ~ty: Typesys.i32 Mpi.Mpich.request_null);
        true
    | "mpi.wait" ->
        ignore (call1 bld "MPI_Wait" [ lk (Op.operand_exn op 0) ]);
        true
    | "mpi.test" ->
        let flag = call1 bld "MPI_Test" [ lk (Op.operand_exn op 0) ] in
        let zero = Arith.const_int bld ~ty: Typesys.i32 0 in
        bind1 (Arith.cmp_i bld Arith.Ne flag zero);
        true
    | "mpi.waitall" ->
        (* Materialize the request array, as C's MPI_Waitall expects. *)
        let reqs = List.map lk op.Op.operands in
        let n = List.length reqs in
        let arr = Memref.alloc_op bld [ n ] Typesys.i32 in
        List.iteri
          (fun i r ->
            let idx = Arith.const_index bld i in
            Memref.store_op bld r arr [ idx ])
          reqs;
        let ptr = Memref.extract_ptr_op bld arr in
        let count = Arith.const_int bld ~ty: Typesys.i32 n in
        ignore (call1 bld "MPI_Waitall" [ count; ptr ]);
        Memref.dealloc_op bld arr;
        true
    | "mpi.barrier" ->
        ignore (call1 bld "MPI_Barrier" [ comm bld ]);
        true
    | "mpi.reduce" | "mpi.allreduce" ->
        let sptr, count, dtype = unwrap ctx bld (Op.operand_exn op 0) in
        let rptr, _, _ = unwrap ctx bld (Op.operand_exn op 1) in
        let red =
          Mpi.Mpich.reduction_for
            (Mpi.reduce_op_of_string (Op.string_attr_exn op "op"))
        in
        let redv = Arith.const_int bld ~ty: Typesys.i32 red in
        if op.Op.name = "mpi.reduce" then begin
          let root = lk (Op.operand_exn op 2) in
          ignore
            (call1 bld "MPI_Reduce"
               [ sptr; rptr; count; dtype; redv; root; comm bld ])
        end
        else
          ignore
            (call1 bld "MPI_Allreduce"
               [ sptr; rptr; count; dtype; redv; comm bld ]);
        true
    | "mpi.bcast" ->
        let ptr, count, dtype = unwrap ctx bld (Op.operand_exn op 0) in
        let root = lk (Op.operand_exn op 1) in
        ignore (call1 bld "MPI_Bcast" [ ptr; count; dtype; root; comm bld ]);
        true
    | "mpi.gather" ->
        let sptr, scount, dtype = unwrap ctx bld (Op.operand_exn op 0) in
        let rptr, rcount, rdtype = unwrap ctx bld (Op.operand_exn op 1) in
        let root = lk (Op.operand_exn op 2) in
        ignore
          (call1 bld "MPI_Gather"
             [ sptr; scount; dtype; rptr; rcount; rdtype; root; comm bld ]);
        true
    | "mpi.unwrap_memref" ->
        let ptr, count, dtype = unwrap ctx bld (Op.operand_exn op 0) in
        (match op.Op.results with
        | [ p; c; d ] ->
            ctx.Transforms.Conversion.bind p ptr;
            ctx.Transforms.Conversion.bind c count;
            ctx.Transforms.Conversion.bind d dtype
        | _ -> Op.ill_formed "mpi.unwrap_memref: expected three results");
        true
    | _ -> false
  in
  let m' = Transforms.Conversion.convert ~convert_ty ~handler m in
  (* Append external declarations for every MPI function we called. *)
  let existing =
    List.filter_map
      (fun (op : Op.t) ->
        if op.Op.name = Func.func then Some (Func.name_of op) else None)
      (Op.module_ops m')
  in
  let decls =
    List.filter_map
      (fun (name, (arg_tys, res_tys)) ->
        if String_set.mem name !used && not (List.mem name existing) then
          Some (Func.declare name ~arg_tys ~res_tys)
        else None)
      externals
  in
  Op.with_module_ops m' (Op.module_ops m' @ decls)

let pass = Pass.make "convert-mpi-to-func" run
